// Design-space-exploration end-to-end acceptance: the consumer-level proof
// of the dse.sweep contract over the real HTTP surface. One sweep fans out
// 100+ dse.point children through the shared queue and result cache; its
// SSE event stream carries at least two partial Pareto frontiers before the
// terminal state event; a resubmitted sweep is served byte-identically from
// the cache and an overlapping sweep dedupes every point evaluation; the
// final frontier is byte-identical across worker counts {1,4}; a
// crash-instant WAL replayed into a fresh service recovers the sweep to the
// byte-identical result; and the Fig. 17 CMOS-vs-ERSFQ sweep is pinned by a
// golden sha256 so any drift in the model or the canonical serialisation is
// caught here, not in a downstream consumer.
package qisim_test

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"qisim/internal/experiments"
	"qisim/internal/service"
)

// dseGoldenSHA256 pins the canonical bytes of the Fig. 17 CMOS-vs-ERSFQ
// sweep (experiments.DSESweepGrid + DSEObjectives, wave 8, pruned). If a
// deliberate model change moves it, re-pin from the failure message — but
// an unexplained move means the sweep lost determinism.
const dseGoldenSHA256 = "744f604dbbeea739914caf51ff68bfd754b0ca6f9a8696c931ffc5e9f937465d"

// dseFanoutSweep is the big end-to-end request: 2 designs x 54 extra-error
// points = 108 grid points, wave 8 -> 14 waves, so well over 100 children
// fan out and well over 2 partial frontiers are published. Prune is off so
// every point is evaluated (and therefore cached for the dedupe phases).
const dseFanoutSweep = `{"kind":"dse.sweep","params":{
  "axes":[
    {"name":"design","values":["4K-CMOS-advanced-opt67","ERSFQ-opt8"]},
    {"name":"extra_gate_error","log_range":{"from":1e-6,"to":1e-3,"points":54}}
  ],
  "wave":8,"prune":false}}`

const dseFanoutPoints = 108

// startDSEService boots a started service plus its httptest front end and
// tears both down with the test.
func startDSEService(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	svc.Start()
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := svc.Drain(context.Background()); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return svc, srv
}

// dseSubmit posts one job request and returns the submit outcome
// (queued/coalesced/cached) and the assigned job ID.
func dseSubmit(t *testing.T, base, body string) (outcome, id string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, raw)
	}
	var sub struct {
		Outcome string `json:"outcome"`
		Job     struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("decode submit response: %v (%s)", err, raw)
	}
	if sub.Job.ID == "" {
		t.Fatalf("submit response carries no job id: %s", raw)
	}
	return sub.Outcome, sub.Job.ID
}

// dseWaitResult polls one job to completion and returns its result bytes.
func dseWaitResult(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("get job %s: %v", id, err)
		}
		var snap struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		switch snap.State {
		case "done":
			return snap.Result
		case "failed":
			t.Fatalf("job %s failed: %s", id, snap.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// dseMetric scrapes /metrics and returns the value of one un-labelled
// series (0 if the series has not been emitted yet).
func dseMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse metric %s: %v (%q)", name, err, line)
		}
		return v
	}
	return 0
}

// dseFrontierOf extracts the final frontier block from a dse.sweep result
// envelope. The envelope is marshaled from structs and sorted maps, so the
// raw frontier bytes are canonical and byte-comparable.
func dseFrontierOf(t *testing.T, result []byte) []byte {
	t.Helper()
	var envl struct {
		Result struct {
			Frontier json.RawMessage `json:"frontier"`
		} `json:"result"`
	}
	if err := json.Unmarshal(result, &envl); err != nil {
		t.Fatalf("decode sweep envelope: %v", err)
	}
	if len(envl.Result.Frontier) == 0 {
		t.Fatalf("sweep result carries no frontier block: %.200s", result)
	}
	return envl.Result.Frontier
}

// TestDSESweepFanoutStreamingAndDedupe drives the headline scenario: one
// 108-point sweep fans out through the queue, streams partial frontiers
// over SSE, lands a final frontier in the result envelope — and both a
// byte-identical resubmission and an overlapping sweep are answered from
// the result cache instead of recomputing.
func TestDSESweepFanoutStreamingAndDedupe(t *testing.T) {
	_, srv := startDSEService(t, service.Config{Workers: 4, CacheEntries: 512, QueueDepth: 256})

	outcome, id := dseSubmit(t, srv.URL, dseFanoutSweep)
	if outcome != "queued" {
		t.Fatalf("first submission outcome %q, want queued", outcome)
	}

	// Stream the sweep's events. The stream replays the retained log and
	// then follows live until the job finalizes, so reading to EOF yields
	// every event in log order regardless of how fast the sweep runs; the
	// ordering assertion — partial frontiers strictly before the terminal
	// state — is therefore deterministic.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("event stream content type %q", ct)
	}
	frontiersBeforeDone, doneSeen := 0, false
	var lastFrontier struct {
		Wave     int `json:"wave"`
		Waves    int `json:"waves"`
		Frontier struct {
			Points []json.RawMessage `json:"points"`
		} `json:"frontier"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "frontier":
				if doneSeen {
					t.Fatalf("frontier event after the terminal state event")
				}
				frontiersBeforeDone++
				if err := json.Unmarshal([]byte(data), &lastFrontier); err != nil {
					t.Fatalf("decode frontier event: %v (%s)", err, data)
				}
			case "state":
				var st struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatalf("decode state event: %v (%s)", err, data)
				}
				if st.State == "done" || st.State == "failed" {
					if st.State == "failed" {
						t.Fatalf("sweep failed mid-stream: %s", data)
					}
					doneSeen = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read event stream: %v", err)
	}
	if !doneSeen {
		t.Fatalf("event stream closed without a terminal state event")
	}
	if frontiersBeforeDone < 2 {
		t.Fatalf("saw %d partial frontiers before completion, want >= 2", frontiersBeforeDone)
	}
	if lastFrontier.Wave != lastFrontier.Waves || len(lastFrontier.Frontier.Points) == 0 {
		t.Fatalf("last streamed frontier not final: wave %d/%d, %d points",
			lastFrontier.Wave, lastFrontier.Waves, len(lastFrontier.Frontier.Points))
	}

	result := dseWaitResult(t, srv.URL, id)
	frontier := dseFrontierOf(t, result)

	// The fan-out really went through the shared queue: the parent lists
	// 108 dse.point children, all done.
	listResp, err := http.Get(srv.URL + "/v1/jobs?parent=" + id + "&limit=1000")
	if err != nil {
		t.Fatalf("list children: %v", err)
	}
	var list struct {
		Jobs []struct {
			Kind  string `json:"kind"`
			State string `json:"state"`
		} `json:"jobs"`
		Count int `json:"count"`
	}
	err = json.NewDecoder(listResp.Body).Decode(&list)
	listResp.Body.Close()
	if err != nil {
		t.Fatalf("decode child list: %v", err)
	}
	if list.Count != dseFanoutPoints {
		t.Fatalf("sweep fanned out %d children, want %d", list.Count, dseFanoutPoints)
	}
	for _, kid := range list.Jobs {
		if kid.Kind != "dse.point" || kid.State != "done" {
			t.Fatalf("child not a finished dse.point: kind %q state %q", kid.Kind, kid.State)
		}
	}

	// Byte-identical resubmission: the sweep itself is served from the
	// result cache, no recomputation.
	outcome2, id2 := dseSubmit(t, srv.URL, dseFanoutSweep)
	if outcome2 != "cached" {
		t.Fatalf("resubmitted sweep outcome %q, want cached", outcome2)
	}
	if got := dseWaitResult(t, srv.URL, id2); !bytes.Equal(got, result) {
		t.Fatalf("cached sweep result differs from original:\ngot  %.200s\nwant %.200s", got, result)
	}

	// Overlapping sweep: same grid under a different wave size is a
	// different sweep key, but every one of its 108 point evaluations is
	// already cached — the cache-hit counter must advance by at least the
	// grid size, and the final frontier must match byte-for-byte.
	hitsBefore := dseMetric(t, srv.URL, "qisimd_cache_hits_total")
	overlap := strings.Replace(dseFanoutSweep, `"wave":8`, `"wave":32`, 1)
	outcome3, id3 := dseSubmit(t, srv.URL, overlap)
	if outcome3 != "queued" {
		t.Fatalf("overlapping sweep outcome %q, want queued", outcome3)
	}
	overlapResult := dseWaitResult(t, srv.URL, id3)
	if got := dseFrontierOf(t, overlapResult); !bytes.Equal(got, frontier) {
		t.Fatalf("overlapping sweep frontier differs:\ngot  %.200s\nwant %.200s", got, frontier)
	}
	hitsAfter := dseMetric(t, srv.URL, "qisimd_cache_hits_total")
	if delta := hitsAfter - hitsBefore; delta < dseFanoutPoints {
		t.Fatalf("overlapping sweep produced %v cache hits, want >= %d (points deduped through rescache)",
			delta, dseFanoutPoints)
	}
}

// TestDSESweepWorkerCountInvariance is the determinism headline: the same
// sweep request on a 1-worker and a 4-worker service produces byte-identical
// result envelopes — frontier, counters, everything — even with pruning on,
// because prune decisions read only fully committed waves.
func TestDSESweepWorkerCountInvariance(t *testing.T) {
	sweep := `{"kind":"dse.sweep","params":{
	  "axes":[
	    {"name":"design","values":["4K-CMOS-advanced-opt67","ERSFQ-opt8"]},
	    {"name":"distance","values":[11,17,23]},
	    {"name":"extra_gate_error","log_range":{"from":1e-6,"to":1e-3,"points":9}}
	  ],
	  "wave":8}}`

	results := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		_, srv := startDSEService(t, service.Config{Workers: workers, CacheEntries: 512, QueueDepth: 256})
		_, id := dseSubmit(t, srv.URL, sweep)
		results[workers] = dseWaitResult(t, srv.URL, id)
	}
	if !bytes.Equal(results[1], results[4]) {
		t.Fatalf("sweep result depends on worker count:\n1 worker  %.300s\n4 workers %.300s",
			results[1], results[4])
	}
}

// dseCaptureMidSweepWAL runs one journaled sweep of the given grid size and
// snapshots the WAL at a mid-sweep instant — triggered by the sweep's own
// first streamed frontier event, so the capture waits on a push instead of
// racing an HTTP poll loop. It returns the crash-instant WAL and the
// uninterrupted run's result bytes, or ok=false if even the event push lost
// the race against the whole sweep (caller retries with a bigger grid).
func dseCaptureMidSweepWAL(t *testing.T, cfg service.Config, sweep string) (wal, want []byte, ok bool) {
	t.Helper()
	dir := t.TempDir()
	cfg.DataDir = dir
	svc, srv := startDSEService(t, cfg)
	if _, err := svc.Recover(); err != nil {
		t.Fatalf("recover empty dir: %v", err)
	}
	_, id := dseSubmit(t, srv.URL, sweep)

	// The crash instant: snapshot the WAL when the first partial frontier
	// arrives — wave 1 of many committed, parent pending, later waves not
	// yet expanded.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: frontier") {
			if wal, err = os.ReadFile(dir + "/journal.wal"); err != nil {
				t.Fatalf("capture WAL: %v", err)
			}
			break
		}
	}
	resp.Body.Close()
	if len(wal) == 0 {
		t.Fatalf("event stream ended without a frontier event")
	}
	want = dseWaitResult(t, srv.URL, id)
	// If the whole sweep outran even the event-stream connection, the
	// capture is post-mortem and useless as a crash instant.
	if bytes.Contains(wal, []byte(`"op":"done","kind":"dse.sweep"`)) {
		return nil, nil, false
	}
	return wal, want, true
}

// TestDSESweepCrashRecover kills the coordinator mid-sweep — the WAL is
// captured at a mid-sweep instant, torn tail and all — and replays it into
// a fresh service. The recovered sweep must re-adopt its children and
// finish with the byte-identical result an uninterrupted run produces.
func TestDSESweepCrashRecover(t *testing.T) {
	cfg := service.Config{Workers: 2, CacheEntries: 2048, MaxRecords: 8192}

	// Wave 4 over hundreds of points leaves plenty of runway between the
	// first committed wave and sweep completion. If a heavily loaded machine
	// still lets the sweep outrun the capture, retry with a longer grid
	// (each size is a distinct sweep key, so no cached result short-circuits
	// the rerun).
	var wal, want []byte
	ok := false
	for _, points := range []int{96, 384, 1536} {
		sweep := fmt.Sprintf(`{"kind":"dse.sweep","params":{
	  "axes":[
	    {"name":"design","values":["ERSFQ-opt8","4K-CMOS-advanced-opt67"]},
	    {"name":"distance","values":[11,17,23]},
	    {"name":"extra_gate_error","log_range":{"from":1e-6,"to":1e-3,"points":%d}}
	  ],
	  "wave":4}}`, points)
		if wal, want, ok = dseCaptureMidSweepWAL(t, cfg, sweep); ok {
			break
		}
		t.Logf("sweep of %d points finished before the WAL capture; retrying larger", 6*points)
	}
	if !ok {
		t.Fatalf("could not capture a mid-sweep WAL even on the largest grid")
	}

	// Life 2: boot from the crash-instant WAL and let recovery finish the
	// sweep.
	dirB := t.TempDir()
	if err := os.WriteFile(dirB+"/journal.wal", wal, 0o644); err != nil {
		t.Fatalf("plant WAL: %v", err)
	}
	cfg.DataDir = dirB
	svcB, srvB := startDSEService(t, cfg)
	recovered, err := svcB.Recover()
	if err != nil {
		t.Fatalf("replay WAL: %v", err)
	}
	if recovered == 0 {
		t.Fatalf("crash-instant WAL recovered no jobs")
	}
	resp, err := http.Get(srvB.URL + "/v1/jobs?kind=dse.sweep")
	if err != nil {
		t.Fatalf("list recovered sweeps: %v", err)
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) == 0 {
		t.Fatalf("recovered sweep not listed (err %v, %d jobs)", err, len(list.Jobs))
	}
	got := dseWaitResult(t, srvB.URL, list.Jobs[0].ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered sweep differs from uninterrupted run:\ngot  %.300s\nwant %.300s", got, want)
	}
}

// TestDSEGoldenFrontier pins the Fig. 17 CMOS-vs-ERSFQ sweep: the canonical
// outcome bytes hash to a fixed sha256 and the frontier's leading point is
// the ERSFQ-opt8 design — the paper's headline conclusion (ERSFQ reaches
// ~82K qubits where advanced CMOS tops out near 64K) restated as Pareto
// dominance.
func TestDSEGoldenFrontier(t *testing.T) {
	r, err := experiments.DSE()
	if err != nil {
		t.Fatalf("experiments.DSE: %v", err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(r.Canonical)); got != dseGoldenSHA256 {
		t.Fatalf("Fig. 17 sweep canonical bytes drifted:\ngot  sha256 %s\nwant sha256 %s\ncanonical: %.400s",
			got, dseGoldenSHA256, r.Canonical)
	}
	if len(r.Outcome.Frontier.Points) == 0 {
		t.Fatalf("Fig. 17 sweep frontier is empty")
	}
	lead := r.Outcome.Frontier.Points[0]
	if design, _ := lead.Params["design"].(string); design != "ERSFQ-opt8" {
		t.Fatalf("Fig. 17 frontier led by %q, want ERSFQ-opt8", design)
	}
	if q := lead.Metrics["max_qubits"]; q < 80_000 {
		t.Fatalf("ERSFQ frontier point reaches %v qubits, want the paper's ~82K scale", q)
	}
}
