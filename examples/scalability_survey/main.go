// Scalability survey: reproduce the paper's core result — evaluate every
// temperature/technology candidate and print the Fig. 12/13/17 landscape,
// including per-stage utilisation curves around each design's limit.
//
//	go run ./examples/scalability_survey
package main

import (
	"fmt"

	"qisim/internal/microarch"
	"qisim/internal/scalability"
	"qisim/internal/wiring"
)

func main() {
	opt := scalability.DefaultOptions()
	as := scalability.AnalyzeAll(opt)
	fmt.Print(scalability.Table(as))
	fmt.Println()

	// Utilisation curve around the limit for two contrasting designs.
	for _, d := range []microarch.Design{microarch.CMOS4KBaseline(), microarch.ERSFQOpt8()} {
		a := scalability.Analyze(d, opt)
		fmt.Printf("%s — limit %.0f qubits (%s)\n", d.Name, a.MaxQubits, a.Binding)
		n := int(a.MaxQubits)
		counts := []int{n / 4, n / 2, n, n * 2}
		pts := scalability.Sweep(d, counts, opt)
		fmt.Printf("  %10s %8s %8s %8s %12s %12s %9s\n", "qubits", "4K", "100mK", "20mK", "p_L", "target", "feasible")
		for _, p := range pts {
			fmt.Printf("  %10d %7.1f%% %7.1f%% %7.1f%% %12.3g %12.3g %9v\n",
				p.Qubits,
				100*p.Utilization[wiring.Stage4K],
				100*p.Utilization[wiring.Stage100mK],
				100*p.Utilization[wiring.Stage20mK],
				p.LogicalError, p.Target, p.Feasible)
		}
		fmt.Println()
	}

	// The paper's punchline.
	best := as[0]
	for _, a := range as {
		if a.MaxQubits > best.MaxQubits {
			best = a
		}
	}
	fmt.Printf("best design: %s at %.0f qubits — beyond the 62,208-qubit (Jellium N=54) supremacy goal\n",
		best.Design.Name, best.MaxQubits)
}
