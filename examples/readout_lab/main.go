// Readout lab: explore the readout decision units of the paper — bin
// counting, single point, and the Opt-#7 multi-round early decision — plus
// the SFQ/JPM readout pipeline of Opt-#3 and Opt-#8.
//
//	go run ./examples/readout_lab
package main

import (
	"fmt"

	"qisim/internal/jpm"
	"qisim/internal/readout"
)

func main() {
	c, tm := readout.DefaultChain(), readout.DefaultTiming()

	fmt.Println("CMOS dispersive readout (Fig. 19):")
	fmt.Printf("  %-22s %12s %10s\n", "method", "error", "time")
	fmt.Printf("  %-22s %12.3g %7.0f ns\n", "bin counting", readout.BinCountingError(c, tm, 8), tm.TotalTime(8)*1e9)
	fmt.Printf("  %-22s %12.3g %7.0f ns\n", "single point", readout.SinglePointError(c, tm, 8), tm.TotalTime(8)*1e9)
	mr := readout.MultiRoundError(c, tm, readout.DefaultMultiRoundConfig())
	fmt.Printf("  %-22s %12.3g %7.0f ns (mean; %.1f%% faster)\n", "multi-round (Opt-#7)", mr.Error, mr.MeanTime*1e9, 100*mr.Speedup)

	fmt.Println("\nerror vs integration time (bin counting):")
	for rounds := 1; rounds <= 8; rounds++ {
		fmt.Printf("  %4.0f ns: %.3g\n", tm.TotalTime(float64(rounds))*1e9, readout.BinCountingError(c, tm, rounds))
	}

	fmt.Println("\nphysics-level cross-check (full cavity trajectories):")
	tr := readout.TrajectoryMC(readout.DefaultTrajectoryConfig(), c)
	fmt.Printf("  bin %.3g, single %.3g, pointer separation %.2f\n", tr.BinError, tr.SingleError, tr.Separation)

	fmt.Println("\nSFQ/JPM readout pipeline (Fig. 15 / Opt-#3, Opt-#8):")
	for _, mode := range []jpm.ShareMode{jpm.Unshared, jpm.NaiveShared, jpm.Pipelined} {
		p := jpm.NewPipeline(mode)
		fmt.Printf("  %-20s %8.1f ns (error %.3g)\n", mode, p.TotalLatency()*1e9, p.ReadoutError())
	}
	fast := jpm.NewPipeline(jpm.Unshared)
	fast.FastDriving = true
	fmt.Printf("  %-20s %8.1f ns (Opt-#8 fast driving, boost %.2fx)\n",
		"unshared+fast", fast.TotalLatency()*1e9, fast.Drive.RateBoost())

	fmt.Println("\npipelined timeline (first two qubits):")
	p := jpm.NewPipeline(jpm.Pipelined)
	for _, ev := range p.Timeline() {
		if ev.Qubit <= 1 {
			fmt.Printf("  q%d %-7s %7.1f → %7.1f ns\n", ev.Qubit, ev.Stage, ev.Start*1e9, ev.End*1e9)
		}
	}
	if err := p.Validate(); err != nil {
		fmt.Println("  INVALID SCHEDULE:", err)
	} else {
		fmt.Println("  schedule valid: no read overlaps any write on the shared line")
	}
}
