// Lattice-surgery CNOT: drive a logical two-qubit gate through the whole
// stack — PPM schedule → physical ESM instruction stream → cycle-accurate
// QCI timing → logical success estimate — on two contrasting QCI designs.
//
//	go run ./examples/lattice_cnot
package main

import (
	"fmt"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/qcp"
)

func main() {
	d := 5
	layout := lattice.NewLayout(3, d)
	prog := lattice.CNOTProgram(layout, 0, 1, 2)

	fmt.Printf("logical CNOT at d=%d on a %dx%d patch grid (%d physical qubits)\n",
		d, layout.Rows, layout.Cols, layout.PhysicalQubits())
	ops, rounds, err := prog.ScheduleAll()
	if err != nil {
		panic(err)
	}
	for _, op := range ops {
		fmt.Printf("  %-12s", op.PPM)
		for _, ph := range op.Phases {
			fmt.Printf("  %s(%d rounds)", ph.Name, ph.Rounds)
		}
		fmt.Println()
	}
	fmt.Printf("total: %d ESM rounds\n\n", rounds)

	tr := qcp.NewTranslator(layout)
	for _, cfg := range []struct {
		name   string
		sim    cyclesim.Config
		design microarch.Design
	}{
		{"4K CMOS (Opt-1/2)", cyclesim.CMOSConfig(), microarch.CMOS4KOpt12()},
		{"SFQ (#BS=1, Opt-3/4/5)", cyclesim.SFQConfig(1), microarch.RSFQOpt345()},
	} {
		opt := compile.DefaultOptions()
		opt.ReadoutTime = cfg.design.ReadoutLatency() // JPM pipeline vs CMOS RX
		rr, err := tr.Run(prog, cfg.sim, opt)
		if err != nil {
			panic(err)
		}
		ex, err := lattice.Execute(prog, cfg.design)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  cycle-accurate: %.2f µs total, %.0f ns/round\n",
			rr.Physical.TotalTime*1e6, rr.RoundTime*1e9)
		fmt.Printf("  analytic model: %.0f ns/round, logical error %.3g/patch/round, success %.6f\n",
			ex.RoundTime*1e9, ex.LogicalErr, ex.Success)
	}

	// How much distance does a 1000-round memory need on each design?
	mem := lattice.MemoryProgram(lattice.NewLayout(2, 3), 1000)
	fmt.Println("\ndistance needed for 99% over 1,000 memory rounds:")
	for _, d := range []microarch.Design{
		microarch.CMOS4KOpt12(), microarch.RSFQOpt345(), microarch.RSFQNaiveSharing(),
	} {
		fmt.Printf("  %-22s d = %d\n", d.Name, lattice.RequiredDistance(mem, d, 0.99))
	}
}
