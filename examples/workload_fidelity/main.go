// Workload fidelity: run the Fig. 11 benchmark suite through the full QIsim
// pipeline — QASM → compile → cycle-accurate simulation → Pauli-channel
// fidelity — on a set of IBMQ-like machines, and show the gate-timing trace
// of one circuit.
//
//	go run ./examples/workload_fidelity
package main

import (
	"fmt"
	"os"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/pauli"
	"qisim/internal/validate"
	"qisim/internal/workloads"
)

func main() {
	sizes := validate.BenchmarkSizes()
	machines := validate.Machines()

	fmt.Printf("%-14s", "benchmark")
	for _, m := range machines {
		fmt.Printf(" %14s", m.Name)
	}
	fmt.Println()
	for _, b := range workloads.Names() {
		fmt.Printf("%-14s", b)
		for _, m := range machines {
			f, err := validate.ModelFidelity(m, b, sizes[b])
			if err != nil {
				fmt.Fprintf(os.Stderr, "workload_fidelity: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf(" %14.4f", f)
		}
		fmt.Println()
	}

	// Peek inside the pipeline for one benchmark: GHZ-8 on ibm_mumbai.
	fmt.Println("\nGHZ-8 pipeline detail on ibm_mumbai:")
	prog := workloads.GHZ(8)
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("  ops %d, makespan %.0f ns, drive duty %.3f, readout duty %.3f\n",
		len(res.Ops), res.TotalTime*1e9, res.ActivityFactor("drive"), res.ActivityFactor("readout"))
	for _, op := range res.Ops[:6] {
		fmt.Printf("  %-8s q%-2d %7.0f → %7.0f ns\n", op.Name, op.Qubit, op.Start*1e9, op.End*1e9)
	}
	rates := machines[1].Rates
	cfg := pauli.DefaultConfig(rates)
	esp := pauli.ESP(res, cfg)
	cfg.Shots = 20000
	mc := pauli.MonteCarlo(res, cfg)
	fmt.Printf("  fidelity: analytic ESP %.4f, Monte-Carlo %.4f\n", esp, mc)
}
