// RTL co-simulation: generate the QCI digital parts as Verilog, check them,
// and co-simulate the fixed-point datapath models against the golden
// floating-point models — QIsim's "validate functionality with IVerilog"
// step, entirely in Go.
//
//	go run ./examples/rtl_cosim
package main

import (
	"fmt"
	"math"

	"qisim/internal/dsp"
	"qisim/internal/pulse"
	"qisim/internal/verilog"
)

func main() {
	// 1. Generate and check the RTL bundle (Opt-#2's 6-bit variant too).
	for _, cfg := range []struct {
		label   string
		amp, iq int
		bin     bool
	}{
		{"baseline (14-bit, bin-counting)", 14, 7, true},
		{"Opt-#1/#2 (6-bit, memory-less)", 6, 7, false},
	} {
		mods := verilog.GenerateQCI(32, 24, cfg.amp, cfg.iq, cfg.bin)
		if err := verilog.CheckBundle(mods); err != nil {
			panic(err)
		}
		total := 0
		for _, m := range mods {
			total += len(m.Source)
		}
		fmt.Printf("RTL %-32s %d modules, %d bytes, elaboration clean\n", cfg.label, len(mods), total)
	}

	// 2. Co-simulate the fixed-point NCO against Eq. (1).
	n := dsp.NewFixedNCO(24, 10, 14)
	fw := n.FreqWord(200e6, 2.5e9)
	fullScale := int64(1)<<13 - 1
	var errPow, sigPow float64
	for k := 0; k < 2000; k++ {
		i, _ := n.Sample(fullScale, 0)
		ref := float64(fullScale) * math.Cos(n.Phase())
		d := float64(i) - ref
		errPow += d * d
		sigPow += ref * ref
		n.Step(fw)
	}
	snr := 10 * math.Log10(sigPow/errPow)
	fmt.Printf("\nfixed-point NCO vs Eq.(1): quantisation SNR %.1f dB (10-bit LUT)\n", snr)

	// 3. Co-simulate the AWG walker against the CZ envelope.
	samples := pulse.Samples(pulse.FlatTopEnvelope{RampFrac: 0.14}, 125, 50e-9)
	table := dsp.EncodeEnvelope(samples, 14)
	w := &dsp.AWGWalker{Table: table}
	wave := w.Waveform(0)
	fmt.Printf("AWG pulse table: %d samples → %d table entries (%.0fx compression)\n",
		len(samples), len(table), float64(len(samples))/float64(len(table)))
	var maxDev float64
	scale := float64(int64(1)<<13) - 1
	for k := range wave {
		d := math.Abs(float64(wave[k])/scale - samples[k])
		if d > maxDev {
			maxDev = d
		}
	}
	fmt.Printf("AWG walker vs golden envelope: max deviation %.5f (half an LSB = %.5f)\n",
		maxDev, 0.5/scale)

	// 4. CORDIC option for the polar modulator.
	c := dsp.NewCORDIC(16)
	var worst float64
	for th := -3.1; th < 3.1; th += 0.05 {
		co, si := c.SinCos(th)
		if d := math.Hypot(co-math.Cos(th), si-math.Sin(th)); d > worst {
			worst = d
		}
	}
	fmt.Printf("CORDIC(16 stages) vs math library: worst error %.2e\n", worst)
}
