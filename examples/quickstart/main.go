// Quickstart: analyse one QCI design end to end — power, timing, logical
// error, and the maximum number of qubits it can support.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"qisim/internal/microarch"
	"qisim/internal/scalability"
	"qisim/internal/wiring"
)

func main() {
	// Pick a design point: the near-term optimised 4 K CMOS QCI
	// (Opt-#1 memory-less decision unit + Opt-#2 6-bit drive).
	design := microarch.CMOS4KOpt12()
	fmt.Printf("design: %v\n\n", design)

	// 1. Per-qubit power at every refrigerator stage.
	pb := design.PerQubitPower()
	fmt.Println("per-qubit power:")
	for _, st := range []wiring.Stage{wiring.Stage4K, wiring.Stage100mK, wiring.Stage20mK} {
		fmt.Printf("  %-6s %12.4g W\n", st, pb.StageW[st])
	}
	fmt.Printf("  of which 4K device %.4g W, 300K→4K wire %.4g W\n\n", pb.DeviceW, pb.WireW)

	// 2. ESM round timing (the peak-power FTQC workload).
	rt := design.RoundTiming()
	fmt.Printf("ESM round: %.0f ns (1Q %.0f ns x2 with FDM serialisation %.1f, 4 CZ layers, readout %.0f ns)\n\n",
		rt.RoundTime()*1e9, rt.OneQTime*1e9, rt.DriveSerialization, rt.ReadoutTime*1e9)

	// 3. Logical error at distance 23 and the scalability verdict.
	a := scalability.Analyze(design, scalability.DefaultOptions())
	fmt.Printf("logical error (d=23):   %.3g\n", a.LogicalError)
	fmt.Printf("error-limited qubits:   %.0f\n", a.ErrorLimit)
	fmt.Printf("max supported qubits:   %.0f (binding: %s)\n", a.MaxQubits, a.Binding)
	if a.MaxQubits >= 1152 {
		fmt.Println("→ clears the near-term 1,152-qubit (d=23 single-patch) target")
	}
}
