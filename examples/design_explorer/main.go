// Design explorer: search the QCI design space automatically — sweep FDM
// degree, readout sharing, technology and optimisation toggles, and report
// the Pareto frontier of maximum supported qubits — the kind of exploration
// QIsim exists to enable ("architects can analyze future systems by
// changing the simulation parameters").
//
//	go run ./examples/design_explorer
package main

import (
	"fmt"
	"sort"

	"qisim/internal/jpm"
	"qisim/internal/microarch"
	"qisim/internal/scalability"
)

type candidate struct {
	name string
	a    scalability.Analysis
}

func main() {
	opt := scalability.DefaultOptions()
	var cands []candidate

	// CMOS space: FDM × bits × bin-counter × node.
	for _, fdm := range []int{8, 16, 20, 32, 64} {
		for _, bits := range []int{6, 14} {
			for _, bin := range []bool{true, false} {
				d := microarch.CMOS4KBaseline()
				d.CMOSCfg.DriveFDM = fdm
				d.CMOSCfg.DriveBits = bits
				d.CMOSCfg.BinCounter = bin
				name := fmt.Sprintf("cmos fdm=%-2d bits=%-2d bin=%-5v", fdm, bits, bin)
				cands = append(cands, candidate{name, scalability.Analyze(d, opt)})
			}
		}
	}
	// SFQ space: #BS × bitgen × readout mode.
	for _, bs := range []int{1, 8} {
		for _, lp := range []bool{false, true} {
			for _, mode := range []jpm.ShareMode{jpm.Unshared, jpm.Pipelined} {
				d := microarch.RSFQBaseline()
				d.DriveSpec.BS = bs
				d.LowPowerBitgen = lp
				d.ReadoutMode = mode
				name := fmt.Sprintf("rsfq bs=%d lpgen=%-5v %-16v", bs, lp, mode)
				cands = append(cands, candidate{name, scalability.Analyze(d, opt)})
			}
		}
	}

	sort.Slice(cands, func(i, j int) bool { return cands[i].a.MaxQubits > cands[j].a.MaxQubits })
	fmt.Printf("%-34s %12s %-14s %10s\n", "candidate", "max qubits", "binding", "p_L")
	for i, c := range cands {
		marker := "  "
		if c.a.MaxQubits >= 1152 {
			marker = "✓ " // clears the near-term target
		}
		fmt.Printf("%s%-32s %12.0f %-14s %10.2g\n", marker, c.name, c.a.MaxQubits, c.a.Binding, c.a.LogicalError)
		if i > 14 {
			fmt.Printf("  ... (%d more)\n", len(cands)-i-1)
			break
		}
	}

	best := cands[0]
	fmt.Printf("\nbest near-term candidate: %s at %.0f qubits (%s-limited)\n",
		best.name, best.a.MaxQubits, best.a.Binding)
	fmt.Println("→ matches the paper's conclusion: memory-less decision + low-bit drive for CMOS;")
	fmt.Println("  pipelined sharing + low-power bitgen + #BS=1 for SFQ")
}
