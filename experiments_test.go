package qisim_test

import (
	"strings"
	"testing"

	"qisim/internal/experiments"
)

// TestReproduceEveryExperiment regenerates every table and figure of the
// paper's evaluation and logs the reports — the end-to-end reproduction
// entry point (`go test -run TestReproduceEveryExperiment -v`).
func TestReproduceEveryExperiment(t *testing.T) {
	for _, id := range experiments.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			s, err := experiments.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(s, "==") {
				t.Fatalf("report missing header:\n%s", s)
			}
			t.Log("\n" + s)
		})
	}
}

// TestReproductionScorecard asserts the headline numbers stay within the
// documented bands of the paper's results.
func TestReproductionScorecard(t *testing.T) {
	hs := experiments.Headlines()
	if len(hs) < 13 {
		t.Fatalf("scorecard shrank: %d headlines", len(hs))
	}
	t.Log("\n" + experiments.HeadlineTable())
	if w := experiments.WorstHeadlineRatio(); w > 2.2 {
		t.Fatalf("worst headline deviation %.2fx exceeds the documented band", w)
	}
}
