// Determinism regression: every seeded Monte-Carlo entry point must produce
// bit-identical results when run twice with the same seed — the property the
// robustness layer's guard loops must preserve (the guard never consumes
// random numbers), and the property that makes truncated partial results
// reproducible for debugging.
package qisim_test

import (
	"context"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/jpm"
	"qisim/internal/pauli"
	"qisim/internal/readout"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/workloads"
)

func TestSurfaceMCDeterministic(t *testing.T) {
	ctx := context.Background()
	opt := simrun.Options{}
	run := func() [3]surface.DecoderResult {
		a, err := surface.MonteCarloLogicalErrorCtx(ctx, 5, 0.01, 4000, 17, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := surface.MonteCarloUnionFindCtx(ctx, 5, 0.01, 4000, 17, opt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := surface.MonteCarloPhenomenologicalCtx(ctx, 5, 0.01, 0.01, 5, 2000, 17, opt)
		if err != nil {
			t.Fatal(err)
		}
		return [3]surface.DecoderResult{a, b, c}
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("surface MC not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestSurfaceMCDeterministicUnderConvergenceGuard(t *testing.T) {
	// The convergence guard must not change which random numbers each shot
	// consumes: two guarded runs agree bit-exactly with each other.
	ctx := context.Background()
	opt := simrun.Options{TargetRelStdErr: 0.05, MinShots: 500, CheckEvery: 100}
	run := func() surface.DecoderResult {
		r, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 50000, 23, opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("guarded surface MC not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestSurfaceMCDeterministicParallel(t *testing.T) {
	// The parallel engine must be as repeatable as the serial one: two
	// multi-worker runs with the same seed agree bit-exactly, including under
	// the convergence guard (the stop point is decided at shard boundaries
	// over the in-order prefix, so it cannot depend on scheduling).
	ctx := context.Background()
	for _, opt := range []simrun.Options{
		{Workers: 4, ShardSize: 128},
		{Workers: 7, ShardSize: 100, TargetRelStdErr: 0.05, MinShots: 500, CheckEvery: 50},
	} {
		run := func() surface.DecoderResult {
			r, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 30000, 23, opt)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		if r1, r2 := run(), run(); r1 != r2 {
			t.Fatalf("parallel surface MC not deterministic (%+v):\n%+v\n%+v", opt, r1, r2)
		}
	}
}

func TestPauliMCDeterministic(t *testing.T) {
	prog, err := workloads.Generate("ghz", 6)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	rates := pauli.ErrorRates{OneQ: 2.5e-4, TwoQ: 1.2e-2, Readout: 2.0e-2, T1: 100e-6, T2: 95e-6}
	cfg := pauli.DefaultConfig(rates)
	cfg.Shots, cfg.Seed = 4000, 9

	ctx := context.Background()
	run := func() pauli.MCResult {
		mc, err := pauli.MonteCarloCtx(ctx, res, cfg, simrun.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return mc
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("pauli MC not deterministic:\n%+v\n%+v", r1, r2)
	}

	ch := pauli.DecoherenceChannel(100e-9, 280e-6, 175e-6)
	traj := func() pauli.TrajectoryResult {
		tr, err := pauli.TrajectoryAverageFidelityCtx(ctx, ch, 2000, 9, simrun.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if r1, r2 := traj(), traj(); r1 != r2 {
		t.Fatalf("pauli trajectory MC not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestReadoutMCDeterministic(t *testing.T) {
	ctx := context.Background()
	mrCfg := readout.DefaultMultiRoundConfig()
	mrCfg.Shots = 20000
	mr := func() readout.MultiRoundResult {
		r, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, simrun.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r1, r2 := mr(), mr(); r1 != r2 {
		t.Fatalf("multi-round MC not deterministic:\n%+v\n%+v", r1, r2)
	}

	tCfg := readout.DefaultTrajectoryConfig()
	tCfg.Shots = 200
	traj := func() readout.TrajectoryResult {
		r, err := readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), simrun.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r1, r2 := traj(), traj(); r1 != r2 {
		t.Fatalf("trajectory MC not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestJPMPipelineDeterministic(t *testing.T) {
	// The JPM readout model is closed-form (no RNG): identical pipelines
	// must report identical timelines and latencies — this pins the
	// contract that no hidden state creeps into the model.
	for _, mode := range []jpm.ShareMode{jpm.Unshared, jpm.NaiveShared, jpm.Pipelined} {
		p1, p2 := jpm.NewPipeline(mode), jpm.NewPipeline(mode)
		if p1.TotalLatency() != p2.TotalLatency() {
			t.Fatalf("%v: latencies differ", mode)
		}
		t1, t2 := p1.Timeline(), p2.Timeline()
		if len(t1) != len(t2) {
			t.Fatalf("%v: timeline lengths differ", mode)
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("%v: timeline event %d differs: %+v vs %+v", mode, i, t1[i], t2[i])
			}
		}
	}
}
