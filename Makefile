GO ?= go

# Build identity injected into every binary (see internal/buildinfo).
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo "")
DATE    ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
LDFLAGS  = -X qisim/internal/buildinfo.Version=$(VERSION) \
           -X qisim/internal/buildinfo.Commit=$(COMMIT) \
           -X qisim/internal/buildinfo.Date=$(DATE)

.PHONY: all build test vet race race-parallel race-service race-resume race-obs race-dist race-dse race-chaos race-fleet bench-baseline bench-compare fuzz serve trace-demo verify clean help

# Benchmark sampling knobs shared by bench-baseline and bench-compare:
# time-based benchtime with repetition, so each snapshot carries min/mean
# statistics instead of one noisy single-iteration sample.
BENCHTIME  ?= 100ms
BENCHCOUNT ?= 3

all: build

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the parallel Monte-Carlo engine: sharded-engine
# properties, the serial-vs-parallel equivalence suite, and the cancellation
# fault-injection scenarios, run twice so goroutine scheduling varies.
race-parallel:
	$(GO) test -race -count=2 ./internal/simrun ./internal/faultinject
	$(GO) test -race -count=2 -run 'Equivalence|DeterministicParallel' .

# Focused race pass over the qisimd service stack: job queue + singleflight,
# the content-addressed cache, the metrics registry, and the HTTP E2E/drain
# suites, run twice so goroutine scheduling varies.
race-service:
	$(GO) test -race -count=2 ./internal/service ./internal/jobs ./internal/rescache ./internal/metrics

# Focused race pass over the crash-safety layer: the checkpoint container +
# saver, the engine's resume path, the job journal, qisimd recovery, and the
# consumer-level crash-resume equivalence suite, run twice so goroutine
# scheduling varies.
race-resume:
	$(GO) test -race -count=2 ./internal/checkpoint ./internal/simrun
	$(GO) test -race -count=2 -run 'Recovery|Journal' ./internal/service ./internal/jobs
	$(GO) test -race -count=2 -run 'CrashResume' .

# Focused race pass over the observability layer: the span tracer +
# exporters + slog handler, traced runs of the sharded engine, the qisimd
# trace endpoint + stage histograms, and the root traced-determinism suite
# (byte-identical Monte-Carlo results with tracing on and off), run twice so
# goroutine scheduling varies.
race-obs:
	$(GO) test -race -count=2 ./internal/obs
	$(GO) test -race -count=2 -run 'Trace|StageHistograms|Pprof' ./internal/simrun ./internal/service
	$(GO) test -race -count=2 -run 'WithTracing|TracedShardOverhead' .

# Focused race pass over the distributed-execution layer: the coordinator's
# lease/steal/evict machinery and fold determinism, the worker claim loop,
# the dist fault-injection scenarios, the service fleet E2E, and the root
# chaos kill-matrix, run twice so goroutine scheduling varies.
race-dist:
	$(GO) test -race -count=2 ./internal/dist ./internal/backoff
	$(GO) test -race -count=2 -run 'Dist|Fleet|Probe|Degraded|FaultSuite/dist' ./internal/service ./internal/faultinject
	$(GO) test -race -count=2 -run 'ChaosKillMatrix' .

# Focused race pass over the chaos/Byzantine-defense layer: the seeded
# fault-injection transport + middleware, the retry budget + backoff
# boundary properties, the spot-check/quarantine/idempotency suites, the
# chaos fault-injection scenarios, and the root network-equivalence matrix
# (4 chaotic workers, byte-identical to standalone) plus the wire-level
# quarantine test, run twice so goroutine scheduling varies.
race-chaos:
	$(GO) test -race -count=2 ./internal/chaos ./internal/backoff
	$(GO) test -race -count=2 -run 'SpotCheck|Quarantine|Idempotency|Digest|Client|FaultSuite/chaos' ./internal/dist ./internal/faultinject
	$(GO) test -race -count=2 -run 'ChaosNetworkEquivalence|ChaosCorruptWorkerQuarantined' .

# Focused race pass over the fleet observability plane: the dependency-free
# metrics registry + RED middleware + federation summaries, the flight
# recorder ring, the coordinator's fleet snapshot + federated folds, the
# service-level fleet-status/flight/chaos-export/leak suites, and the root
# observability E2E + exposition-rules validator, run twice so goroutine
# scheduling varies.
race-fleet:
	$(GO) test -race -count=2 ./internal/metrics ./internal/obs
	$(GO) test -race -count=2 -run 'Fleet|Flight|Federated|RED|ChaosInjection|BuildInfo|Renew' ./internal/dist ./internal/service
	$(GO) test -race -count=2 -run 'FleetObservabilityE2E|MetricsExpositionStaysParseable' .

# Focused race pass over the design-space-exploration layer: grid expansion
# + Pareto-fold properties, the sweep engine's committed-prefix determinism,
# parent/child orchestration in the jobs manager (tenant quotas, cancel
# cascades, journaled re-adoption), the dse.sweep service endpoints + SSE
# frontier stream, the DSE fault-injection scenarios, and the root
# end-to-end acceptance suite, run twice so goroutine scheduling varies.
race-dse:
	$(GO) test -race -count=2 ./internal/dse
	$(GO) test -race -count=2 -run 'DSE|Sweep|Tenant|Cancel|Orchestrator|List|Event|Journal' ./internal/service ./internal/jobs
	$(GO) test -race -count=2 -run 'FaultSuite/(canceled-parent|dominated-point|sweep-coordinator)' ./internal/faultinject
	$(GO) test -race -count=2 -run 'TestDSE' .

# Regenerate BENCH_baseline.json: $(BENCHCOUNT) timed samples of every
# benchmark in the repo, aggregated to per-unit min/mean/max, recorded so a
# future change can diff hot-path cost against the baseline. Commit the
# refreshed file together with the change that moved it.
bench-baseline:
	$(GO) test -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -run '^$$' ./... | python3 scripts/bench_baseline.py > BENCH_baseline.json

# Run the benchmarks now and diff against the committed BENCH_baseline.json.
# Exits non-zero when any benchmark regresses beyond its FAIL threshold
# (see scripts/bench_compare.py for the per-benchmark bands); small drift
# warns without failing. This is the perf gate CI runs on every change.
bench-compare:
	$(GO) test -bench . -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -run '^$$' ./... | python3 scripts/bench_baseline.py > /tmp/bench_current.json
	python3 scripts/bench_compare.py BENCH_baseline.json /tmp/bench_current.json

# Record a span trace of a parallel Monte-Carlo decoder run and leave the
# Chrome trace_event JSON next to the repo. Open it in chrome://tracing or
# https://ui.perfetto.dev to see the engine fan-out: mc.run → per-shard
# spans on worker lanes, in-order merges, checkpoint flushes.
trace-demo:
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/qisim -trace-out qisim-trace.json -workers 4 mc -d 7 -shots 100000
	@echo "trace written to qisim-trace.json — load it in chrome://tracing or https://ui.perfetto.dev"

# Short fuzz smoke of the QASM parser boundary (the long runs happen in CI
# and on demand: `go test ./internal/qasm -fuzz FuzzParse -fuzztime 5m`).
fuzz:
	$(GO) test ./internal/qasm -fuzz FuzzParse -fuzztime 15s

# Build and run the qisimd analysis service on :8080 with version stamping.
serve:
	$(GO) run -ldflags "$(LDFLAGS)" ./cmd/qisimd -addr :8080

# The CI gate: everything that must be green before a change lands.
verify: vet build race fuzz

clean:
	$(GO) clean ./...

help:
	@echo "Common targets:"
	@echo "  build           compile everything with version stamping"
	@echo "  test            run the full test suite"
	@echo "  verify          the CI gate: vet + build + race + fuzz"
	@echo "  race-*          focused race passes (parallel/service/resume/obs/dist/dse/chaos/fleet)"
	@echo "  bench-baseline  re-record BENCH_baseline.json ($(BENCHCOUNT)x $(BENCHTIME) samples)"
	@echo "  bench-compare   run benchmarks and diff against BENCH_baseline.json;"
	@echo "                  exits non-zero on a regression beyond threshold"
	@echo "  trace-demo      record a Chrome trace of a parallel decoder run"
	@echo "  serve           run the qisimd analysis service on :8080"
