GO ?= go

.PHONY: all build test vet race race-parallel fuzz verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the parallel Monte-Carlo engine: sharded-engine
# properties, the serial-vs-parallel equivalence suite, and the cancellation
# fault-injection scenarios, run twice so goroutine scheduling varies.
race-parallel:
	$(GO) test -race -count=2 ./internal/simrun ./internal/faultinject
	$(GO) test -race -count=2 -run 'Equivalence|DeterministicParallel' .

# Short fuzz smoke of the QASM parser boundary (the long runs happen in CI
# and on demand: `go test ./internal/qasm -fuzz FuzzParse -fuzztime 5m`).
fuzz:
	$(GO) test ./internal/qasm -fuzz FuzzParse -fuzztime 15s

# The CI gate: everything that must be green before a change lands.
verify: vet build race fuzz

clean:
	$(GO) clean ./...
