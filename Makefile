GO ?= go

.PHONY: all build test vet race fuzz verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke of the QASM parser boundary (the long runs happen in CI
# and on demand: `go test ./internal/qasm -fuzz FuzzParse -fuzztime 5m`).
fuzz:
	$(GO) test ./internal/qasm -fuzz FuzzParse -fuzztime 15s

# The CI gate: everything that must be green before a change lands.
verify: vet build race fuzz

clean:
	$(GO) clean ./...
