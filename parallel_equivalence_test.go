// Serial-vs-parallel equivalence regression: every Monte-Carlo entry point
// must produce bit-identical results for every worker count. The sharded
// engine guarantees this by deriving each shard's RNG stream from (seed,
// shard index) alone and merging in shard order — so Workers=1 (the serial
// reference) and any parallel fan-out walk exactly the same random numbers
// per shot and fold them in the same order.
//
// These tests deliberately use a small shard size so runs span many shards;
// a single-shard run would be trivially worker-invariant.
package qisim_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/microarch"
	"qisim/internal/pauli"
	"qisim/internal/readout"
	"qisim/internal/scalability"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/workloads"
)

// workerCounts are the fan-outs compared against the Workers=1 serial
// reference: an even divisor of typical shard counts, a prime that isn't,
// and 0 (= all cores) to cover whatever the CI machine has.
var workerCounts = []int{4, 7, 0}

// equivOpts returns Options with a small shard size so every run below
// spans many shards, exercising the cross-shard merge path.
func equivOpts(workers int) simrun.Options {
	return simrun.Options{Workers: workers, ShardSize: 100}
}

func TestSurfaceDecoderEquivalence(t *testing.T) {
	ctx := context.Background()
	type variant struct {
		name string
		run  func(opt simrun.Options) (surface.DecoderResult, error)
	}
	variants := []variant{
		{"mwpm", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloLogicalErrorCtx(ctx, 5, 0.01, 3000, 17, opt)
		}},
		{"unionfind", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloUnionFindCtx(ctx, 5, 0.01, 3000, 17, opt)
		}},
		{"phenomenological", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloPhenomenologicalCtx(ctx, 5, 0.01, 0.01, 5, 1500, 17, opt)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			serial, err := v.run(equivOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			if serial.Shots == 0 || serial.Failures == 0 {
				t.Fatalf("degenerate serial reference: %+v", serial)
			}
			for _, w := range workerCounts {
				par, err := v.run(equivOpts(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if par != serial {
					t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
				}
			}
		})
	}
}

func TestPauliMCEquivalence(t *testing.T) {
	prog, err := workloads.Generate("ghz", 6)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	rates := pauli.ErrorRates{OneQ: 2.5e-4, TwoQ: 1.2e-2, Readout: 2.0e-2, T1: 100e-6, T2: 95e-6}
	cfg := pauli.DefaultConfig(rates)
	cfg.Shots, cfg.Seed = 3000, 9

	ctx := context.Background()
	serial, err := pauli.MonteCarloCtx(ctx, res, cfg, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := pauli.MonteCarloCtx(ctx, res, cfg, equivOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}

func TestPauliTrajectoryEquivalence(t *testing.T) {
	ctx := context.Background()
	ch := pauli.DecoherenceChannel(100e-9, 280e-6, 175e-6)
	serial, err := pauli.TrajectoryAverageFidelityCtx(ctx, ch, 2000, 9, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := pauli.TrajectoryAverageFidelityCtx(ctx, ch, 2000, 9, equivOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}

func TestReadoutEquivalence(t *testing.T) {
	ctx := context.Background()

	mrCfg := readout.DefaultMultiRoundConfig()
	mrCfg.Shots = 10000
	mrSerial, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, equivOpts(w))
		if err != nil {
			t.Fatalf("multiround workers=%d: %v", w, err)
		}
		if par != mrSerial {
			t.Errorf("multiround workers=%d diverges:\nserial:   %+v\nparallel: %+v", w, mrSerial, par)
		}
	}

	tCfg := readout.DefaultTrajectoryConfig()
	tCfg.Shots = 600
	// Shard size 50 so even this small trajectory budget spans many shards.
	opt := func(w int) simrun.Options { return simrun.Options{Workers: w, ShardSize: 50} }
	tSerial, err := readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), opt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), opt(w))
		if err != nil {
			t.Fatalf("trajectory workers=%d: %v", w, err)
		}
		if par != tSerial {
			t.Errorf("trajectory workers=%d diverges:\nserial:   %+v\nparallel: %+v", w, tSerial, par)
		}
	}
}

func TestScalabilitySweepEquivalence(t *testing.T) {
	ctx := context.Background()
	counts := []int{100, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000}
	run := func(w int) scalability.SweepResult {
		opt := scalability.DefaultOptions()
		opt.Workers = w
		res, err := scalability.SweepCtx(ctx, microarch.CMOS4KOpt12(), counts, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return res
	}
	serial := run(1)
	if len(serial.Points) != len(counts) {
		t.Fatalf("serial sweep returned %d points, want %d", len(serial.Points), len(counts))
	}
	for _, w := range workerCounts {
		par := run(w)
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("workers=%d sweep diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}

	serialAll, serialStatus, err := scalability.AnalyzeAllCtx(ctx, scalability.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if serialStatus.Truncated {
		t.Fatal("uncancelled AnalyzeAllCtx reported truncation")
	}
	for _, w := range workerCounts {
		opt := scalability.DefaultOptions()
		opt.Workers = w
		parAll, _, err := scalability.AnalyzeAllCtx(ctx, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(parAll, serialAll) {
			t.Errorf("workers=%d analyze-all diverges from serial", w)
		}
	}
}

// TestConvergenceGuardEquivalence pins the harder property: even with the
// convergence guard stopping the run early, the stop point and the estimate
// are identical for every worker count, because convergence is evaluated at
// shard boundaries over the committed in-order prefix.
func TestConvergenceGuardEquivalence(t *testing.T) {
	ctx := context.Background()
	opt := func(w int) simrun.Options {
		return simrun.Options{Workers: w, ShardSize: 100, TargetRelStdErr: 0.05, MinShots: 500, CheckEvery: 50}
	}
	serial, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 50000, 23, opt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Status.Converged {
		t.Fatalf("expected the guarded serial run to converge, got %+v", serial.Status)
	}
	for _, w := range workerCounts {
		par, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 50000, 23, opt(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d guarded run diverges:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}

// ---- golden bit-equality pins ----
//
// The digests below are SHA-256 hashes of the canonical JSON encoding of
// each Monte-Carlo result, captured BEFORE the hot-path speed campaign
// (PR 7) touched any kernel. Every optimization to the MC paths must keep
// these bytes identical: a single changed bit in any estimate fails the
// pin. The workloads intentionally mirror the equivalence suite above
// (small shard size, many shards) so the pins also cover the merge path.

func goldenDigest(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestGoldenBitEquality(t *testing.T) {
	ctx := context.Background()
	opt := simrun.Options{ShardSize: 100}

	prog, err := workloads.Generate("ghz", 6)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	pcfg := pauli.DefaultConfig(pauli.ErrorRates{OneQ: 2.5e-4, TwoQ: 1.2e-2, Readout: 2.0e-2, T1: 100e-6, T2: 95e-6})
	pcfg.Shots, pcfg.Seed = 3000, 9

	mrCfg := readout.DefaultMultiRoundConfig()
	mrCfg.Shots = 10000
	tCfg := readout.DefaultTrajectoryConfig()
	tCfg.Shots = 600

	cases := []struct {
		name string
		run  func() (any, error)
		want string
	}{
		{"surface-mwpm", func() (any, error) {
			return surface.MonteCarloLogicalErrorCtx(ctx, 5, 0.01, 3000, 17, opt)
		}, "351aa8d89fb361847efc061f7da9f9005fec2d502dd71ff4fc813b52d4a7479c"},
		{"surface-phenomenological", func() (any, error) {
			return surface.MonteCarloPhenomenologicalCtx(ctx, 5, 0.01, 0.01, 5, 1500, 17, opt)
		}, "08a0f2971a3b4a1c43784fdd26a9fca5181e3a1a74ca452d69f064db3d6a0c7c"},
		{"pauli-mc", func() (any, error) {
			return pauli.MonteCarloCtx(ctx, cyc, pcfg, opt)
		}, "d2db0d64efbf71f247dc3abcdf2fade989f75f901c11eb2e9eec922911fb4946"},
		{"pauli-trajectory", func() (any, error) {
			return pauli.TrajectoryAverageFidelityCtx(ctx, pauli.DecoherenceChannel(100e-9, 280e-6, 175e-6), 2000, 9, opt)
		}, "dfd74da99910212fa4b2cc383e620846b86c21b95c0dab48573b9624dc6253ec"},
		{"readout-multiround", func() (any, error) {
			return readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, opt)
		}, "aff331f33aa8135f47dd7709616abd9f56da82f67c3756e37785c0a3101f7984"},
		{"readout-trajectory", func() (any, error) {
			return readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), simrun.Options{ShardSize: 50})
		}, "dddd8a99fc62cc9efb08915337c22e1d91dbd0eca10bddffcb017bb782cfe303"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			got := goldenDigest(t, res)
			if c.want == "" {
				t.Errorf("golden digest not pinned yet; computed %s", got)
			} else if got != c.want {
				t.Errorf("result bytes diverged from the pre-optimization golden:\n got %s\nwant %s", got, c.want)
			}
		})
	}
}
