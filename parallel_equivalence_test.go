// Serial-vs-parallel equivalence regression: every Monte-Carlo entry point
// must produce bit-identical results for every worker count. The sharded
// engine guarantees this by deriving each shard's RNG stream from (seed,
// shard index) alone and merging in shard order — so Workers=1 (the serial
// reference) and any parallel fan-out walk exactly the same random numbers
// per shot and fold them in the same order.
//
// These tests deliberately use a small shard size so runs span many shards;
// a single-shard run would be trivially worker-invariant.
package qisim_test

import (
	"context"
	"reflect"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/microarch"
	"qisim/internal/pauli"
	"qisim/internal/readout"
	"qisim/internal/scalability"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/workloads"
)

// workerCounts are the fan-outs compared against the Workers=1 serial
// reference: an even divisor of typical shard counts, a prime that isn't,
// and 0 (= all cores) to cover whatever the CI machine has.
var workerCounts = []int{4, 7, 0}

// equivOpts returns Options with a small shard size so every run below
// spans many shards, exercising the cross-shard merge path.
func equivOpts(workers int) simrun.Options {
	return simrun.Options{Workers: workers, ShardSize: 100}
}

func TestSurfaceDecoderEquivalence(t *testing.T) {
	ctx := context.Background()
	type variant struct {
		name string
		run  func(opt simrun.Options) (surface.DecoderResult, error)
	}
	variants := []variant{
		{"mwpm", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloLogicalErrorCtx(ctx, 5, 0.01, 3000, 17, opt)
		}},
		{"unionfind", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloUnionFindCtx(ctx, 5, 0.01, 3000, 17, opt)
		}},
		{"phenomenological", func(opt simrun.Options) (surface.DecoderResult, error) {
			return surface.MonteCarloPhenomenologicalCtx(ctx, 5, 0.01, 0.01, 5, 1500, 17, opt)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			serial, err := v.run(equivOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			if serial.Shots == 0 || serial.Failures == 0 {
				t.Fatalf("degenerate serial reference: %+v", serial)
			}
			for _, w := range workerCounts {
				par, err := v.run(equivOpts(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if par != serial {
					t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
				}
			}
		})
	}
}

func TestPauliMCEquivalence(t *testing.T) {
	prog, err := workloads.Generate("ghz", 6)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	rates := pauli.ErrorRates{OneQ: 2.5e-4, TwoQ: 1.2e-2, Readout: 2.0e-2, T1: 100e-6, T2: 95e-6}
	cfg := pauli.DefaultConfig(rates)
	cfg.Shots, cfg.Seed = 3000, 9

	ctx := context.Background()
	serial, err := pauli.MonteCarloCtx(ctx, res, cfg, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := pauli.MonteCarloCtx(ctx, res, cfg, equivOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}

func TestPauliTrajectoryEquivalence(t *testing.T) {
	ctx := context.Background()
	ch := pauli.DecoherenceChannel(100e-9, 280e-6, 175e-6)
	serial, err := pauli.TrajectoryAverageFidelityCtx(ctx, ch, 2000, 9, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := pauli.TrajectoryAverageFidelityCtx(ctx, ch, 2000, 9, equivOpts(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}

func TestReadoutEquivalence(t *testing.T) {
	ctx := context.Background()

	mrCfg := readout.DefaultMultiRoundConfig()
	mrCfg.Shots = 10000
	mrSerial, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), mrCfg, equivOpts(w))
		if err != nil {
			t.Fatalf("multiround workers=%d: %v", w, err)
		}
		if par != mrSerial {
			t.Errorf("multiround workers=%d diverges:\nserial:   %+v\nparallel: %+v", w, mrSerial, par)
		}
	}

	tCfg := readout.DefaultTrajectoryConfig()
	tCfg.Shots = 600
	// Shard size 50 so even this small trajectory budget spans many shards.
	opt := func(w int) simrun.Options { return simrun.Options{Workers: w, ShardSize: 50} }
	tSerial, err := readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), opt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		par, err := readout.TrajectoryMCCtx(ctx, tCfg, readout.DefaultChain(), opt(w))
		if err != nil {
			t.Fatalf("trajectory workers=%d: %v", w, err)
		}
		if par != tSerial {
			t.Errorf("trajectory workers=%d diverges:\nserial:   %+v\nparallel: %+v", w, tSerial, par)
		}
	}
}

func TestScalabilitySweepEquivalence(t *testing.T) {
	ctx := context.Background()
	counts := []int{100, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000}
	run := func(w int) scalability.SweepResult {
		opt := scalability.DefaultOptions()
		opt.Workers = w
		res, err := scalability.SweepCtx(ctx, microarch.CMOS4KOpt12(), counts, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return res
	}
	serial := run(1)
	if len(serial.Points) != len(counts) {
		t.Fatalf("serial sweep returned %d points, want %d", len(serial.Points), len(counts))
	}
	for _, w := range workerCounts {
		par := run(w)
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("workers=%d sweep diverges from serial:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}

	serialAll, serialStatus, err := scalability.AnalyzeAllCtx(ctx, scalability.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if serialStatus.Truncated {
		t.Fatal("uncancelled AnalyzeAllCtx reported truncation")
	}
	for _, w := range workerCounts {
		opt := scalability.DefaultOptions()
		opt.Workers = w
		parAll, _, err := scalability.AnalyzeAllCtx(ctx, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(parAll, serialAll) {
			t.Errorf("workers=%d analyze-all diverges from serial", w)
		}
	}
}

// TestConvergenceGuardEquivalence pins the harder property: even with the
// convergence guard stopping the run early, the stop point and the estimate
// are identical for every worker count, because convergence is evaluated at
// shard boundaries over the committed in-order prefix.
func TestConvergenceGuardEquivalence(t *testing.T) {
	ctx := context.Background()
	opt := func(w int) simrun.Options {
		return simrun.Options{Workers: w, ShardSize: 100, TargetRelStdErr: 0.05, MinShots: 500, CheckEvery: 50}
	}
	serial, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 50000, 23, opt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Status.Converged {
		t.Fatalf("expected the guarded serial run to converge, got %+v", serial.Status)
	}
	for _, w := range workerCounts {
		par, err := surface.MonteCarloLogicalErrorCtx(ctx, 3, 0.08, 50000, 23, opt(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par != serial {
			t.Errorf("workers=%d guarded run diverges:\nserial:   %+v\nparallel: %+v", w, serial, par)
		}
	}
}
