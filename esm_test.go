package qisim_test

import (
	"qisim/internal/qasm"
	"qisim/internal/surface"
)

// esmProgram renders one ESM round of a patch as a QASM program, shared by
// the root-level tests and benchmarks.
func esmProgram(patch *surface.Patch) *qasm.Program {
	prog := &qasm.Program{NQubits: patch.TotalQubits()}
	c := 0
	for _, op := range patch.ESMCircuit() {
		switch op.Kind {
		case "h":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{op.Q}, CBit: -1})
		case "cz":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{op.Q, op.Q2}, CBit: -1})
		case "measure":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{op.Q}, CBit: c})
			c++
		}
	}
	prog.NClbits = c
	return prog
}
