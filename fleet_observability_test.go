// Fleet observability E2E: one 4-worker fleet run must light up the whole
// plane — every worker in /v1/fleet/status, per-worker qisimd_fleet_* series
// federated onto the coordinator's /metrics, RED series for the dist routes,
// and the run's lease transitions in the flight recorder — while the merged
// result JSON stays byte-identical to a standalone run. A second test pins
// the /metrics body to the Prometheus text-exposition rules (one HELP/TYPE
// per family, contiguous family blocks, sorted unique series), so the
// federation fold can never corrupt the scrape.
package qisim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/dist"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/service"
)

// startObsFleet launches n workers with the full federation wiring of a
// real `qisimd -role worker`: a worker-local registry whose summary rides
// renewals and reports, the unit-seconds histogram, the units-total
// counter, and a flight recorder.
func startObsFleet(t *testing.T, base string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("obs-%d", i)
		client := &dist.Client{Base: base}
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			cancel()
			t.Fatalf("register %s: %v", id, err)
		}
		wreg := metrics.New()
		unitSeconds := wreg.Histogram("qisimd_worker_unit_seconds",
			"Work-unit execution wall clock on this worker.",
			metrics.DefaultLatencyBuckets())
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: service.BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1), Trace: true,
			Metrics: wreg.Summary, UnitSeconds: unitSeconds.Observe,
			Flight: obs.NewFlightRecorder(256),
		})
		if err != nil {
			cancel()
			t.Fatalf("NewWorker: %v", err)
		}
		fw := w
		wreg.CounterFunc("qisimd_worker_units_total",
			"Work units fully executed by this worker.",
			func() float64 { return float64(fw.Stats().Executions) })
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestFleetObservabilityE2E drives one job across a 4-worker observed fleet
// and asserts the whole plane lit up without perturbing the result.
func TestFleetObservabilityE2E(t *testing.T) {
	_, solo := chaosServer(t, service.Config{Workers: 2})
	want := chaosRun(t, solo.URL, chaosNetJob)
	if len(want) == 0 {
		t.Fatal("standalone run produced no body")
	}

	srv, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
		Enabled: true, LeaseTTL: 2 * time.Second, UnitShards: 4,
	}})
	startObsFleet(t, ts.URL, 4)
	got := chaosRun(t, ts.URL, chaosNetJob)
	if !bytes.Equal(got, want) {
		t.Fatalf("observed fleet differs from standalone:\n%s\n%s", got, want)
	}

	// Every worker is visible in /v1/fleet/status, healthy, and at least
	// the ones that executed units are federated.
	resp, err := http.Get(ts.URL + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Enabled bool `json:"enabled"`
		Workers []struct {
			ID        string  `json:"id"`
			State     string  `json:"state"`
			Federated bool    `json:"federated"`
			UnitsDone float64 `json:"units_done"`
		} `json:"workers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode fleet status: %v", err)
	}
	if !status.Enabled || len(status.Workers) != 4 {
		t.Fatalf("fleet status shows %d workers (enabled=%v), want 4", len(status.Workers), status.Enabled)
	}
	var federated int
	var fedUnits float64
	for _, w := range status.Workers {
		if w.State != "healthy" {
			t.Errorf("worker %s state %q, want healthy", w.ID, w.State)
		}
		if w.Federated {
			federated++
			fedUnits += w.UnitsDone
		}
	}
	if federated == 0 || fedUnits == 0 {
		t.Fatalf("no federated workers in status (federated=%d units=%v)", federated, fedUnits)
	}

	// Per-worker federated series on the coordinator's own /metrics.
	var unitsTotal float64
	for i := 0; i < 4; i++ {
		unitsTotal += scrapeMetric(t, ts.URL,
			fmt.Sprintf(`qisimd_fleet_worker_units_total{worker="obs-%d"}`, i))
	}
	if unitsTotal == 0 {
		t.Fatal("no per-worker qisimd_fleet_worker_units_total series on the coordinator")
	}
	if n := scrapeMetric(t, ts.URL, `qisimd_fleet_workers{state="healthy"}`); n != 4 {
		t.Fatalf("qisimd_fleet_workers{healthy} = %v, want 4", n)
	}
	if n := scrapeMetric(t, ts.URL, "qisimd_fleet_unit_seconds_count"); n == 0 {
		t.Fatal("federated qisimd_fleet_unit_seconds histogram is empty")
	}

	// RED series exist for the dist routes the fleet exercised.
	for _, route := range []string{"/v1/dist/claim", "/v1/dist/report"} {
		series := fmt.Sprintf(`qisimd_http_request_seconds_count{route=%q}`, route)
		if n := scrapeMetric(t, ts.URL, series); n < 1 {
			t.Errorf("%s = %v, want >= 1", series, n)
		}
	}

	// The flight recorder holds the run's lease transitions.
	resp, err = http.Get(ts.URL + "/v1/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode flight dump: %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range dump.Events {
		kinds[ev.Kind]++
	}
	for _, k := range []string{"worker.register", "lease.grant", "lease.done"} {
		if kinds[k] == 0 {
			t.Errorf("flight dump missing %s events (have %v)", k, kinds)
		}
	}

	_ = srv // lifecycle owned by chaosServer's cleanup
}

// validateExposition checks a /metrics body against the text-exposition
// rules this repo relies on: exactly one HELP and one TYPE line per family,
// emitted before its samples; family blocks contiguous (a family never
// reappears after another family's samples); every sample attributable to
// the current family (histogram _bucket/_sum/_count included); and series
// unique and sorted within each family.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	closed := map[string]bool{} // families whose block has ended
	seriesSeen := map[string]bool{}
	current := ""
	var prevSeries string

	sampleFamily := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && (base == current) {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			name := parts[0]
			if helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			if closed[name] {
				t.Errorf("line %d: family %s reopened after its block ended", ln+1, name)
			}
			helpSeen[name] = true
			if current != "" && current != name {
				closed[current] = true
			}
			current, prevSeries = name, ""
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 3)
			name := parts[0]
			if typeSeen[name] {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if len(parts) < 2 {
				t.Errorf("line %d: TYPE without a type: %q", ln+1, line)
			}
			typeSeen[name] = true
			if current != "" && current != name {
				closed[current] = true
			}
			current, prevSeries = name, ""
		case strings.HasPrefix(line, "#"):
			// comments are legal anywhere
		default:
			sp := strings.IndexAny(line, " \t")
			if sp < 0 {
				t.Errorf("line %d: sample without a value: %q", ln+1, line)
				continue
			}
			series := line[:sp]
			name := series
			if br := strings.IndexByte(series, '{'); br >= 0 {
				name = series[:br]
			}
			fam := sampleFamily(name)
			if fam != current {
				t.Errorf("line %d: sample %s outside its family block (current %q)", ln+1, series, current)
			}
			if !typeSeen[fam] {
				t.Errorf("line %d: sample %s before any TYPE for %s", ln+1, series, fam)
			}
			if seriesSeen[series] {
				t.Errorf("line %d: duplicate series %s", ln+1, series)
			}
			seriesSeen[series] = true
			// Histogram expansions (_bucket/_sum/_count) order buckets by
			// numeric le, not lexicographically; the sort rule applies to
			// plain samples of the family only.
			if name == fam {
				if prevSeries != "" && series < prevSeries {
					t.Errorf("line %d: series %s not sorted after %s", ln+1, series, prevSeries)
				}
				prevSeries = series
			}
		}
	}
	if len(seriesSeen) == 0 {
		t.Error("exposition contained no samples at all")
	}
}

// TestMetricsExpositionStaysParseable scrapes a coordinator that has every
// observability feature lit (fleet federation, RED, chaos export, flight,
// build info) and runs the full exposition-rule validator over the body.
func TestMetricsExpositionStaysParseable(t *testing.T) {
	_, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
		Enabled: true, LeaseTTL: 2 * time.Second, UnitShards: 4,
	}})
	startObsFleet(t, ts.URL, 2)
	chaosRun(t, ts.URL, chaosNetJob)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	validateExposition(t, body)

	// Spot checks that the families the plane added are actually present —
	// an empty exposition would vacuously pass the rules.
	for _, family := range []string{
		"qisimd_build_info", "qisimd_http_requests_total",
		"qisimd_fleet_workers", "qisimd_fleet_worker_units_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from exposition", family)
		}
	}
}
