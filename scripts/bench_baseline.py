#!/usr/bin/env python3
"""Convert `go test -bench` output on stdin into BENCH_baseline.json.

Each `BenchmarkName-P  N  T ns/op [extra unit]...` line becomes one record;
everything else (pkg headers, PASS/ok lines) is passed over. The output is
sorted by (package, name) so regeneration diffs cleanly.
"""
import json
import sys

records = []
pkg = ""
for line in sys.stdin:
    line = line.rstrip("\n")
    if line.startswith("pkg: "):
        pkg = line[len("pkg: "):].strip()
        continue
    if not line.startswith("Benchmark"):
        continue
    fields = line.split()
    if len(fields) < 4 or "ns/op" not in fields:
        continue
    name = fields[0]
    try:
        iterations = int(fields[1])
    except (IndexError, ValueError):
        continue
    metrics = {}
    rest = fields[2:]
    for value, unit in zip(rest[0::2], rest[1::2]):
        try:
            metrics[unit] = float(value)
        except ValueError:
            continue
    records.append({
        "package": pkg,
        "name": name,
        "iterations": iterations,
        "metrics": metrics,
    })

records.sort(key=lambda r: (r["package"], r["name"]))
json.dump({"benchmarks": records}, sys.stdout, indent=2, sort_keys=True)
sys.stdout.write("\n")
