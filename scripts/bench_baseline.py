#!/usr/bin/env python3
"""Convert `go test -bench` output on stdin into a benchmark snapshot JSON.

Run the benchmarks with repetition so the snapshot carries real statistics,
e.g.:

    go test -bench . -benchtime 100ms -count 3 -run '^$' ./... \
        | python3 scripts/bench_baseline.py > BENCH_baseline.json

Every `BenchmarkName-P  N  T ns/op [extra unit]...` line becomes one sample;
samples of the same (package, benchmark) are aggregated into per-unit
min/mean/max. A single `-benchtime 1x -count 1` run still works — it simply
yields samples=1 with min == mean == max. The output is sorted by
(package, name) so regeneration diffs cleanly.

Snapshot schema (the "aggregate" format):

    {"benchmarks": [
        {"package": "qisim", "name": "BenchmarkFoo/workers=1",
         "samples": 3, "iterations": 123,
         "metrics": {"ns/op": {"min": ..., "mean": ..., "max": ...}, ...}}
    ]}

scripts/bench_compare.py reads this format as well as the legacy
single-sample format ({"metrics": {"ns/op": 123.0}}).
"""
import json
import sys


def main() -> None:
    # (package, name) -> {"iterations": max, "units": {unit: [samples...]}}
    agg = {}
    pkg = ""
    for line in sys.stdin:
        line = line.rstrip("\n")
        if line.startswith("pkg: "):
            pkg = line[len("pkg: "):].strip()
            continue
        if not line.startswith("Benchmark"):
            continue
        fields = line.split()
        if len(fields) < 4 or "ns/op" not in fields:
            continue
        name = fields[0]
        try:
            iterations = int(fields[1])
        except (IndexError, ValueError):
            continue
        rec = agg.setdefault((pkg, name), {"iterations": 0, "units": {}})
        rec["iterations"] = max(rec["iterations"], iterations)
        rest = fields[2:]
        for value, unit in zip(rest[0::2], rest[1::2]):
            try:
                rec["units"].setdefault(unit, []).append(float(value))
            except ValueError:
                continue

    records = []
    for (rpkg, name), rec in agg.items():
        metrics = {}
        nsamples = 0
        for unit, samples in rec["units"].items():
            nsamples = max(nsamples, len(samples))
            metrics[unit] = {
                "min": min(samples),
                "mean": sum(samples) / len(samples),
                "max": max(samples),
            }
        records.append({
            "package": rpkg,
            "name": name,
            "samples": nsamples,
            "iterations": rec["iterations"],
            "metrics": metrics,
        })

    records.sort(key=lambda r: (r["package"], r["name"]))
    json.dump({"benchmarks": records}, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
