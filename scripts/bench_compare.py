#!/usr/bin/env python3
"""Compare a fresh benchmark snapshot against a committed baseline.

    go test -bench . -benchtime 100ms -count 3 -run '^$' ./... \
        | python3 scripts/bench_baseline.py > /tmp/bench_current.json
    python3 scripts/bench_compare.py BENCH_baseline.json /tmp/bench_current.json

Both files may be in either snapshot format bench_baseline.py has produced:
the legacy single-sample format ({"metrics": {"ns/op": 123.0}}) or the
aggregate format ({"metrics": {"ns/op": {"min":..,"mean":..,"max":..}}}).
Comparison is on min ns/op — the most repeatable statistic of a benchmark,
immune to one-off scheduler hiccups in either snapshot.

Exit status is non-zero iff any benchmark regresses beyond its FAIL
threshold. Drift between the warn and fail thresholds prints a WARN line but
does not fail the gate (benchmarks on shared CI runners jitter); speedups
never fail. Per-benchmark thresholds: sub-10µs benchmarks get wider bands
(a single descheduling tick is a large relative error there), and OVERRIDES
pins explicit bands for benchmarks known to be noisy.
"""
import argparse
import json
import sys

# Default regression thresholds on the current/baseline min-ns/op ratio.
WARN_RATIO = 1.15
FAIL_RATIO = 1.60

# Wider bands for very fast benchmarks: at sub-10µs per op, one scheduler
# tick or cache-migration in the harness swamps the signal.
MICRO_NS = 10_000.0
MICRO_WARN = 1.50
MICRO_FAIL = 3.00

# Explicit per-benchmark overrides (name -> (warn, fail)). These take
# precedence over the magnitude-based defaults.
OVERRIDES = {
    # Single-digit-nanosecond kernel; timer granularity dominates.
    "BenchmarkFixedPointNCO": (2.0, 5.0),
    # Spawns goroutine fleets; highly sensitive to machine load.
    "BenchmarkTracedShardOverhead/off": (1.3, 2.0),
    "BenchmarkTracedShardOverhead/on": (1.3, 2.0),
}


def load(path):
    """Return {(package, name): min ns/op} for either snapshot format."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for rec in doc.get("benchmarks", []):
        m = rec.get("metrics", {}).get("ns/op")
        if m is None:
            continue
        if isinstance(m, dict):
            val = float(m["min"])
        else:
            val = float(m)  # legacy single sample
        out[(rec.get("package", ""), rec["name"])] = val
    return out


def thresholds(name, base_ns):
    if name in OVERRIDES:
        return OVERRIDES[name]
    if base_ns < MICRO_NS:
        return MICRO_WARN, MICRO_FAIL
    return WARN_RATIO, FAIL_RATIO


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed snapshot (e.g. BENCH_baseline.json)")
    ap.add_argument("current", help="fresh snapshot from scripts/bench_baseline.py")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = warnings = improvements = 0
    rows = []
    for key in sorted(base):
        pkg, name = key
        if key not in cur:
            rows.append((name, "MISSING", "-", "benchmark absent from current run", "WARN"))
            warnings += 1
            continue
        b, c = base[key], cur[key]
        ratio = c / b if b > 0 else float("inf")
        warn, fail = thresholds(name, b)
        if ratio > fail:
            status, note = "FAIL", f"regressed beyond {fail:.2f}x"
            failures += 1
        elif ratio > warn:
            status, note = "WARN", f"drift beyond {warn:.2f}x (non-blocking)"
            warnings += 1
        elif ratio < 1 / warn:
            status, note = "FAST", "improved — consider refreshing the baseline"
            improvements += 1
        else:
            status, note = "ok", ""
        rows.append((name, f"{ratio:5.2f}x", f"{b:>12.0f} -> {c:>12.0f} ns/op", note, status))
    for key in sorted(set(cur) - set(base)):
        rows.append((key[1], "NEW", "-", "not in baseline; refresh to track it", "info"))

    width = max((len(r[0]) for r in rows), default=20)
    for name, ratio, detail, note, status in rows:
        print(f"{status:>4}  {name:<{width}}  {ratio:>7}  {detail}  {note}")

    print(f"\n{len(base)} baselined, {failures} fail, {warnings} warn, {improvements} improved")
    if failures:
        print("bench-compare: FAIL — performance regressed beyond threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
