package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("noop", String("k", "v")) // must not panic
	d := f.Snapshot()
	if d.Recorded != 0 || d.Dropped != 0 || len(d.Events) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", d)
	}
}

func TestFlightRecorderOrderAndWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	f.SetClock(func() time.Time { return time.Unix(100, 0) })
	for i := 0; i < 10; i++ {
		f.Record("ev", Int("i", i))
	}
	d := f.Snapshot()
	if d.Recorded != 10 || d.Dropped != 6 {
		t.Fatalf("recorded=%d dropped=%d, want 10/6", d.Recorded, d.Dropped)
	}
	if len(d.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(d.Events))
	}
	for i, ev := range d.Events {
		wantSeq := uint64(7 + i) // events 7..10 survive a capacity-4 ring
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq=%d, want %d", i, ev.Seq, wantSeq)
		}
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	if len(f.slots) != DefaultFlightEvents {
		t.Fatalf("capacity %d, want %d", len(f.slots), DefaultFlightEvents)
	}
}

func TestFlightRecorderConcurrentAppend(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record("concurrent", Int("writer", w), Int("i", i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must be safe too
		defer close(done)
		for i := 0; i < 50; i++ {
			f.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	d := f.Snapshot()
	if d.Recorded != writers*perWriter {
		t.Fatalf("recorded=%d, want %d", d.Recorded, writers*perWriter)
	}
	if len(d.Events) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, d.Events[i-1].Seq, d.Events[i].Seq)
		}
	}
}

func TestFlightDumpWriteText(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetClock(func() time.Time { return time.Unix(0, 42).UTC() })
	f.Record("lease.grant", String("worker", "w1"), String("key", "mc.1"))
	var b strings.Builder
	f.Snapshot().WriteText(&b)
	out := b.String()
	if !strings.Contains(out, "flight: 1 events (0 dropped, 1 recorded)") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "lease.grant worker=w1 key=mc.1") {
		t.Fatalf("missing event line:\n%s", out)
	}
}
