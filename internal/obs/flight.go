package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is an always-on bounded ring of structured events — the
// black box an operator dumps after an incident the WAL alone can't
// explain. Producers (lease transitions, retries, evictions, quarantines,
// chaos injections, journal appends) call Record from hot paths, so the
// append path is lock-free-ish: a single atomic sequence claim picks the
// slot, and only writers landing on the *same* slot (a full ring-lap apart)
// ever contend on its mutex. Old events are overwritten silently; Snapshot
// reports how many were lost.
//
// A nil *FlightRecorder is valid and records nothing, mirroring the
// nil-safety contract of Span.
type FlightRecorder struct {
	clock func() time.Time
	slots []flightSlot
	seq   atomic.Uint64
}

type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// FlightEvent is one entry in the recorder.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"time_ns"` // wall clock, unix nanoseconds
	Kind   string `json:"kind"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// FlightDump is a point-in-time copy of the ring, oldest event first.
type FlightDump struct {
	Recorded uint64        `json:"recorded"` // events ever recorded
	Dropped  uint64        `json:"dropped"`  // overwritten by ring wrap
	Events   []FlightEvent `json:"events"`
}

// DefaultFlightEvents is the ring capacity used when none is configured.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a recorder holding the most recent capacity
// events (DefaultFlightEvents when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{clock: time.Now, slots: make([]flightSlot, capacity)}
}

// SetClock replaces the wall clock (tests only; not safe once recording).
func (f *FlightRecorder) SetClock(clock func() time.Time) {
	if f != nil && clock != nil {
		f.clock = clock
	}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Safe for concurrent use; no-op on a nil recorder.
func (f *FlightRecorder) Record(kind string, attrs ...Attr) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) // 1-based so zero-valued slots read as empty
	slot := &f.slots[seq%uint64(len(f.slots))]
	ev := FlightEvent{Seq: seq, TimeNS: f.clock().UnixNano(), Kind: kind, Attrs: attrs}
	slot.mu.Lock()
	slot.ev = ev
	slot.mu.Unlock()
}

// Snapshot copies the surviving events in sequence order. Safe to call
// while writers run; a write racing the copy keeps whichever version of
// that slot the lock hands out, which is always a complete event. Returns
// an empty dump on a nil recorder.
func (f *FlightRecorder) Snapshot() FlightDump {
	if f == nil {
		return FlightDump{Events: []FlightEvent{}}
	}
	evs := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		f.slots[i].mu.Lock()
		ev := f.slots[i].ev
		f.slots[i].mu.Unlock()
		if ev.Seq != 0 {
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	d := FlightDump{Recorded: f.seq.Load(), Events: evs}
	d.Dropped = d.Recorded - uint64(len(evs))
	return d
}

// WriteText renders the dump as one line per event — the SIGQUIT / tree
// format:
//
//	flight: 12 events (0 dropped, 12 recorded)
//	  #3 2026-02-11T09:00:01.123Z lease.grant worker=w1 key=mc.1 range=[0,4)
func (d FlightDump) WriteText(w io.Writer) {
	fmt.Fprintf(w, "flight: %d events (%d dropped, %d recorded)\n",
		len(d.Events), d.Dropped, d.Recorded)
	for _, ev := range d.Events {
		fmt.Fprintf(w, "  #%d %s %s", ev.Seq,
			time.Unix(0, ev.TimeNS).UTC().Format("2006-01-02T15:04:05.000Z"), ev.Kind)
		for _, a := range ev.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w)
	}
}
