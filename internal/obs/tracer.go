package obs

import (
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's span buffer when TracerConfig.MaxSpans
// is zero. Sized so a full 200k-shot Monte-Carlo run (≈400 shards × ~3
// spans each plus the job envelope) fits with headroom, while a runaway
// sweep cannot grow memory without bound.
const DefaultMaxSpans = 4096

// TracerConfig parameterises a Tracer.
type TracerConfig struct {
	// ID is the trace identity stamped on exports and log records (default
	// "trace"). qisimd uses the job ID.
	ID string
	// MaxSpans bounds the span buffer (default DefaultMaxSpans). Spans
	// started past the bound are counted as dropped, never recorded and
	// never blocking.
	MaxSpans int
	// Clock is the time source (default time.Now). Tests inject a
	// deterministic stepping clock so exports are byte-stable.
	Clock func() time.Time
}

// Tracer records a bounded buffer of spans for one trace (one CLI run, one
// qisimd job). All methods are safe for concurrent use; span mutation goes
// through the tracer lock, so a Snapshot taken after the traced work
// finishes is race-free even under `go test -race`.
//
// Determinism contract: a Tracer consumes no random numbers and span IDs
// come from a plain counter — installing a tracer cannot change any
// Monte-Carlo draw, and the engine's merged results are bit-identical with
// tracing on or off.
type Tracer struct {
	id    string
	max   int
	clock func() time.Time
	epoch time.Time

	mu      sync.Mutex
	spans   []*Span
	nextID  uint64
	dropped int
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.ID == "" {
		cfg.ID = "trace"
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Tracer{id: cfg.ID, max: cfg.MaxSpans, clock: cfg.Clock, epoch: cfg.Clock()}
}

// ID returns the trace identity.
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// sinceEpochLocked returns monotonic nanoseconds since the tracer was
// built. Callers hold t.mu.
func (t *Tracer) sinceEpochLocked() int64 { return t.clock().Sub(t.epoch).Nanoseconds() }

// Start begins a span as an explicit child of parent (nil = root) and
// records it on the tracer. Returns nil — counted as dropped — once the
// span buffer is full. Nil receivers return nil, so callers wired to an
// optional tracer need no branches.
func (t *Tracer) Start(name string, parent *Span, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{
		tr:      t,
		id:      t.nextID,
		name:    name,
		startNS: t.sinceEpochLocked(),
		endNS:   -1,
	}
	if parent != nil {
		s.parent = parent.id
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	t.spans = append(t.spans, s)
	return s
}

// Dropped returns how many spans were discarded by the buffer bound.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns an immutable copy of the trace. Spans still open are
// snapshotted with EndNS set to the current clock reading and an
// `unfinished=true` attribute, so a snapshot is always a well-formed
// interval set.
func (t *Tracer) Snapshot() Trace {
	if t == nil {
		return Trace{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.sinceEpochLocked()
	out := Trace{ID: t.id, Dropped: t.dropped, Spans: make([]SpanData, len(t.spans))}
	for i, s := range t.spans {
		sd := SpanData{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNS: s.startNS,
			EndNS:   s.endNS,
		}
		if len(s.attrs) > 0 {
			sd.Attrs = append(sd.Attrs, s.attrs...)
		}
		if s.endNS < 0 {
			sd.EndNS = now
			sd.Attrs = append(sd.Attrs, Bool("unfinished", true))
		}
		out.Spans[i] = sd
	}
	return out
}

// Graft splices a remote trace under parent: every span of sub is
// re-recorded on t with a freshly allocated local ID, sub's internal
// parent/child edges preserved via an ID remap, root spans re-parented to
// parent (top-level if parent is nil), and all timestamps shifted so sub's
// earliest span start aligns with parent's start — remote clocks and the
// local epoch never agree, so only sub's internal relative timing is
// trusted. attrs are appended to each grafted root span (typically the
// worker identity). Spans past the buffer bound are counted as dropped,
// and sub's own dropped count carries over. Returns the number of spans
// grafted. This is how a coordinator stitches per-shard worker traces into
// the job trace served by /v1/jobs/{id}/trace.
func (t *Tracer) Graft(parent *Span, sub Trace, attrs ...Attr) int {
	if t == nil || len(sub.Spans) == 0 {
		if t != nil && sub.Dropped > 0 {
			t.mu.Lock()
			t.dropped += sub.Dropped
			t.mu.Unlock()
		}
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped += sub.Dropped

	minStart := sub.Spans[0].StartNS
	for _, sd := range sub.Spans[1:] {
		if sd.StartNS < minStart {
			minStart = sd.StartNS
		}
	}
	anchor := t.sinceEpochLocked()
	parentID := uint64(0)
	if parent != nil {
		parentID = parent.id
		anchor = parent.startNS
	}
	shift := anchor - minStart

	remap := make(map[uint64]uint64, len(sub.Spans))
	grafted := 0
	for _, sd := range sub.Spans {
		if len(t.spans) >= t.max {
			t.dropped++
			continue
		}
		t.nextID++
		remap[sd.ID] = t.nextID
		s := &Span{
			tr:      t,
			id:      t.nextID,
			name:    sd.Name,
			startNS: sd.StartNS + shift,
			endNS:   sd.EndNS + shift,
		}
		if pid, ok := remap[sd.Parent]; ok && sd.Parent != 0 {
			s.parent = pid
		} else {
			// Root of the remote trace (or an orphan whose parent was
			// dropped remotely): hang it off the graft point.
			s.parent = parentID
			if len(attrs) > 0 {
				s.attrs = append(s.attrs, attrs...)
			}
		}
		if len(sd.Attrs) > 0 {
			s.attrs = append(s.attrs, sd.Attrs...)
		}
		t.spans = append(t.spans, s)
		grafted++
	}
	return grafted
}

// Span is one timed, named, attributed interval in a trace. A Span is owned
// by the goroutine that started it; End and SetAttr synchronise through the
// tracer lock, so snapshots taken concurrently observe consistent state.
// All methods are nil-safe (the disabled-tracing fast path hands out nil
// spans).
type Span struct {
	tr      *Tracer
	id      uint64
	parent  uint64
	name    string
	attrs   []Attr
	startNS int64
	endNS   int64 // -1 while open
}

// ID returns the span's trace-local identity (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span at the tracer's current clock reading. Idempotent;
// no-op on nil spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.endNS < 0 {
		s.endNS = s.tr.sinceEpochLocked()
	}
	s.tr.mu.Unlock()
}

// SetAttr appends attributes to the span (typically results known only at
// the end, like an event count). No-op on nil spans.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tr.mu.Unlock()
}
