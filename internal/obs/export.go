// Trace exporters: Chrome trace_event JSON (chrome://tracing, Perfetto) and
// a compact indented text tree, plus the parser that makes the Chrome form
// round-trippable and the structural validator the tests and the qisimd
// trace endpoint rely on.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SpanData is one exported span: the immutable form of a Span.
type SpanData struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"` // 0 = root
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// DurNS returns the span's duration in nanoseconds.
func (s SpanData) DurNS() int64 { return s.EndNS - s.StartNS }

// Attr returns the value of the named attribute ("" when absent).
func (s SpanData) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is a finished trace: a flat span list (creation order — IDs are
// ascending) plus the trace identity and the dropped-span count.
type Trace struct {
	ID      string     `json:"id"`
	Dropped int        `json:"dropped,omitempty"`
	Spans   []SpanData `json:"spans"`
}

// Find returns the first span with the given name (creation order) and
// whether one exists.
func (t Trace) Find(name string) (SpanData, bool) {
	for _, s := range t.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanData{}, false
}

// Count returns how many spans carry the given name.
func (t Trace) Count(name string) int {
	n := 0
	for _, s := range t.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// Check validates the trace's structural invariants: unique span IDs,
// parents that exist (or 0), non-negative durations, and children nested
// within their parent's interval. The qisimd trace endpoint's E2E suite
// runs every served trace through it.
func (t Trace) Check() error {
	byID := make(map[uint64]SpanData, len(t.Spans))
	for _, s := range t.Spans {
		if s.ID == 0 {
			return fmt.Errorf("obs: span %q has zero ID", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("obs: duplicate span ID %d (%q)", s.ID, s.Name)
		}
		byID[s.ID] = s
	}
	for _, s := range t.Spans {
		if s.EndNS < s.StartNS {
			return fmt.Errorf("obs: span %d (%q) ends before it starts (%d < %d)",
				s.ID, s.Name, s.EndNS, s.StartNS)
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("obs: span %d (%q) has unknown parent %d", s.ID, s.Name, s.Parent)
		}
		if s.StartNS < p.StartNS || s.EndNS > p.EndNS {
			return fmt.Errorf("obs: span %d (%q) [%d,%d] escapes parent %d (%q) [%d,%d]",
				s.ID, s.Name, s.StartNS, s.EndNS, p.ID, p.Name, p.StartNS, p.EndNS)
		}
	}
	return nil
}

// chromeEvent is one trace_event record. We emit "X" (complete) events with
// microsecond ts/dur for the viewers, and carry the exact nanosecond
// interval plus the span identity in args so ParseChrome reconstructs the
// span tree bytes-exactly.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// chromeFile is the trace_event container object form.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChrome renders the trace in Chrome trace_event JSON. Concurrent
// spans are laid out on separate tid lanes (greedy flame-stack assignment,
// children preferring their parent's lane) so Perfetto renders a proper
// flame graph instead of interleaved garbage.
func (t Trace) WriteChrome(w io.Writer) error {
	lanes := assignLanes(t.Spans)
	f := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(t.Spans)),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"trace_id": t.ID},
	}
	if t.Dropped > 0 {
		f.OtherData["dropped_spans"] = fmt.Sprintf("%d", t.Dropped)
	}
	for _, s := range t.Spans {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "qisim",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS()) / 1e3,
			PID:  1,
			TID:  lanes[s.ID],
			Args: chromeArgs{ID: s.ID, Parent: s.Parent, StartNS: s.StartNS, EndNS: s.EndNS, Attrs: s.Attrs},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteChromeFile snapshots the tracer and writes the Chrome trace_event
// JSON to path. Export failures leave the traced run untouched: callers log
// a warning and keep their exit code (see the CLI contract).
func WriteChromeFile(path string, tr *Tracer) error {
	if tr == nil {
		return fmt.Errorf("obs: no tracer to export")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.Snapshot().WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ParseChrome parses Chrome trace_event JSON produced by WriteChrome back
// into a Trace. The span tree reconstructs exactly: the golden round-trip
// test pins Trace → WriteChrome → ParseChrome → identical Trace.
func ParseChrome(r io.Reader) (Trace, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return Trace{}, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	out := Trace{ID: f.OtherData["trace_id"], Spans: make([]SpanData, 0, len(f.TraceEvents))}
	if d := f.OtherData["dropped_spans"]; d != "" {
		if _, err := fmt.Sscanf(d, "%d", &out.Dropped); err != nil {
			return Trace{}, fmt.Errorf("obs: parse dropped_spans %q: %w", d, err)
		}
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Args.ID == 0 {
			return Trace{}, fmt.Errorf("obs: event %q carries no span identity", ev.Name)
		}
		out.Spans = append(out.Spans, SpanData{
			ID:      ev.Args.ID,
			Parent:  ev.Args.Parent,
			Name:    ev.Name,
			StartNS: ev.Args.StartNS,
			EndNS:   ev.Args.EndNS,
			Attrs:   ev.Args.Attrs,
		})
	}
	// Restore creation order (ascending IDs) regardless of event order.
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].ID < out.Spans[j].ID })
	return out, nil
}

// assignLanes maps span IDs to Chrome tid lanes: spans are treated as call
// stacks per lane — a span lands on the first lane whose innermost open
// interval is one of its ancestors and fully contains it (children
// therefore prefer their parent's lane), otherwise a fresh lane opens.
func assignLanes(spans []SpanData) map[uint64]int {
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	isAncestor := func(anc, id uint64) bool {
		for id != 0 {
			id = parent[id]
			if id == anc {
				return true
			}
		}
		return false
	}
	order := make([]SpanData, len(spans))
	copy(order, spans)
	sort.Slice(order, func(i, j int) bool {
		if order[i].StartNS != order[j].StartNS {
			return order[i].StartNS < order[j].StartNS
		}
		return order[i].ID < order[j].ID
	})
	lanes := map[uint64]int{}
	type openSpan struct {
		id    uint64
		endNS int64
	}
	var stacks [][]openSpan // per-lane open-interval stacks
	for _, s := range order {
		placed := false
		for li := range stacks {
			// Pop intervals that ended before this span starts.
			st := stacks[li]
			for len(st) > 0 && st[len(st)-1].endNS <= s.StartNS {
				st = st[:len(st)-1]
			}
			stacks[li] = st
			if len(st) == 0 {
				stacks[li] = append(st, openSpan{s.ID, s.EndNS})
				lanes[s.ID] = li
				placed = true
				break
			}
			top := st[len(st)-1]
			if isAncestor(top.id, s.ID) && top.endNS >= s.EndNS {
				stacks[li] = append(st, openSpan{s.ID, s.EndNS})
				lanes[s.ID] = li
				placed = true
				break
			}
		}
		if !placed {
			stacks = append(stacks, []openSpan{{s.ID, s.EndNS}})
			lanes[s.ID] = len(stacks) - 1
		}
	}
	return lanes
}

// TreeString renders the span tree as an indented text outline with
// durations and attributes — the quick-look form behind `qisim mc
// -trace-out=-`-style debugging and the service's trace endpoint.
func (t Trace) TreeString() string {
	children := map[uint64][]SpanData{}
	byID := map[uint64]bool{}
	for _, s := range t.Spans {
		byID[s.ID] = true
	}
	var roots []SpanData
	for _, s := range t.Spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", t.ID, len(t.Spans))
	if t.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", t.Dropped)
	}
	b.WriteString(")\n")
	var walk func(s SpanData, depth int)
	walk = func(s SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth+1), s.Name, fmtDur(s.DurNS()))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
