// Package obs is QIsim's dependency-free observability layer: a span-based
// tracer propagated through context.Context plus structured logging on
// log/slog, with a shared handler that stamps every record with the trace,
// span and job IDs carried by the context.
//
// Design constraints (see DESIGN.md "Observability"):
//
//   - Zero-cost when disabled: StartSpan on a context without a tracer is a
//     single context lookup returning a nil *Span, and every Span method is
//     nil-safe — the hot simulation paths carry the instrumentation
//     unconditionally and pay (almost) nothing when no tracer is installed.
//   - Bounded when enabled: each Tracer holds at most MaxSpans spans; spans
//     past the bound are counted as dropped and never block or grow memory.
//   - Deterministic in tests: the clock is injectable, and span IDs come
//     from a per-tracer counter — they never feed RNG seeding, so tracing
//     cannot perturb Monte-Carlo results.
//
// Finished traces export as Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto) and as a compact indented text tree.
package obs

import (
	"context"
	"fmt"
	"strconv"
)

// Attr is one key/value annotation on a span. Values are stored as strings
// so traces round-trip bytes-exactly through the Chrome JSON exporter.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Float64 builds a float attribute (shortest round-trippable form).
func Float64(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// context keys (unexported types so no external package can collide).
type tracerKey struct{}
type spanKey struct{}
type jobKey struct{}

// WithTracer returns a context carrying tr. Spans started from the returned
// context (and its descendants) are recorded on tr. A nil tr returns ctx
// unchanged.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// FromContext returns the tracer carried by ctx, or nil (tracing disabled).
func FromContext(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithJobID returns a context stamped with a job identity; the shared log
// handler attaches it to every record logged under the context.
func WithJobID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, jobKey{}, id)
}

// JobID returns the job identity carried by ctx ("" when absent).
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobKey{}).(string)
	return id
}

// StartSpan begins a span named name as a child of the span carried by ctx
// (a root span when there is none), on the tracer carried by ctx. It
// returns a derived context carrying the new span, and the span itself.
//
// Fast path: when ctx carries no tracer, StartSpan performs one context
// lookup and returns (ctx, nil); the nil *Span accepts End/SetAttr calls as
// no-ops, so call sites need no branches. When the tracer's span buffer is
// full the span is counted as dropped and (ctx, nil) is returned likewise —
// tracing degrades by losing spans, never by blocking the engine.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	s := tr.Start(name, SpanFromContext(ctx), attrs...)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// ContextWithSpan returns ctx carrying both tr and s, so spans started from
// the result nest under s. It is the bridge for callers (like the job
// manager) that create spans explicitly with Tracer.Start rather than
// through a context chain. Nil tr or s return ctx with whatever parts are
// non-nil.
func ContextWithSpan(ctx context.Context, tr *Tracer, s *Span) context.Context {
	ctx = WithTracer(ctx, tr)
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// fmtDur renders a nanosecond duration compactly for the text tree.
func fmtDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
