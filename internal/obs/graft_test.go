package obs

import (
	"testing"
)

// remoteTrace builds a two-level trace on its own tracer (its own epoch and
// ID counter), simulating a worker-side trace shipped over the wire.
func remoteTrace() Trace {
	rt := NewTracer(TracerConfig{ID: "worker-1", Clock: stepClock()})
	root := rt.Start("mc.window", nil, Int("start", 3))
	child := rt.Start("shard", root, Int("shard", 3))
	child.End()
	root.End()
	return rt.Snapshot()
}

func TestGraftRemapsAndReparents(t *testing.T) {
	tr := NewTracer(TracerConfig{ID: "coord", Clock: stepClock()})
	job := tr.Start("job", nil)
	lease := tr.Start("dist.lease", job)

	sub := remoteTrace()
	if n := tr.Graft(lease, sub, String("worker", "w1")); n != 2 {
		t.Fatalf("grafted %d spans, want 2", n)
	}
	lease.End()
	job.End()

	sn := tr.Snapshot()
	if len(sn.Spans) != 4 {
		t.Fatalf("snapshot has %d spans, want 4", len(sn.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range sn.Spans {
		byName[sd.Name] = sd
	}
	win, ok := byName["mc.window"]
	if !ok {
		t.Fatal("grafted root missing")
	}
	if win.Parent != byName["dist.lease"].ID {
		t.Fatalf("grafted root parent = %d, want lease id %d", win.Parent, byName["dist.lease"].ID)
	}
	if win.ID == sub.Spans[0].ID && byName["shard"].ID == sub.Spans[1].ID {
		t.Fatal("grafted spans must get fresh local IDs")
	}
	if byName["shard"].Parent != win.ID {
		t.Fatalf("internal edge lost: shard parent = %d, want %d", byName["shard"].Parent, win.ID)
	}
	// Time shift: the grafted root starts exactly at the graft point's
	// start, and internal relative timing is preserved.
	if win.StartNS != byName["dist.lease"].StartNS {
		t.Fatalf("grafted root start %d != lease start %d", win.StartNS, byName["dist.lease"].StartNS)
	}
	if d := byName["shard"].StartNS - win.StartNS; d != sub.Spans[1].StartNS-sub.Spans[0].StartNS {
		t.Fatalf("relative offset changed: %d", d)
	}
	// Root picked up the graft attrs; the child did not.
	foundWorker := false
	for _, a := range win.Attrs {
		if a.Key == "worker" {
			foundWorker = true
		}
	}
	if !foundWorker {
		t.Fatal("graft attrs not applied to remote root")
	}
	for _, a := range byName["shard"].Attrs {
		if a.Key == "worker" {
			t.Fatal("graft attrs leaked onto a non-root span")
		}
	}
}

func TestGraftNilParentAndBufferBound(t *testing.T) {
	// Nil parent: grafted roots become top-level spans.
	tr := NewTracer(TracerConfig{Clock: stepClock()})
	if n := tr.Graft(nil, remoteTrace()); n != 2 {
		t.Fatalf("grafted %d, want 2", n)
	}
	sn := tr.Snapshot()
	for _, sd := range sn.Spans {
		if sd.Name == "mc.window" && sd.Parent != 0 {
			t.Fatalf("nil-parent graft root has parent %d", sd.Parent)
		}
	}

	// Buffer bound: overflow counts as dropped, and the remote trace's own
	// dropped count carries over.
	small := NewTracer(TracerConfig{MaxSpans: 1, Clock: stepClock()})
	sub := remoteTrace()
	sub.Dropped = 3
	if n := small.Graft(nil, sub); n != 1 {
		t.Fatalf("bounded graft recorded %d, want 1", n)
	}
	if got := small.Dropped(); got != 4 {
		t.Fatalf("dropped = %d, want 4 (1 overflow + 3 carried)", got)
	}

	// Nil tracer is a safe no-op.
	var nilT *Tracer
	if n := nilT.Graft(nil, remoteTrace()); n != 0 {
		t.Fatalf("nil tracer graft = %d", n)
	}
}
