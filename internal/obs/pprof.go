package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. qisimd mounts it on a separate listener (-pprof)
// so profiling traffic never shares the API port.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
