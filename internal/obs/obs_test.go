package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a deterministic clock stepping 1ms per reading.
func stepClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestStartSpanWithoutTracerIsNilAndSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything", Int("k", 1))
	if s != nil {
		t.Fatalf("expected nil span without tracer, got %v", s)
	}
	if ctx2 != ctx {
		t.Fatalf("expected unchanged context without tracer")
	}
	// All nil-span methods must be no-ops.
	s.End()
	s.SetAttr(String("a", "b"))
	if s.ID() != 0 {
		t.Fatalf("nil span ID = %d, want 0", s.ID())
	}
	var tr *Tracer
	if tr.ID() != "" || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer accessors not zero")
	}
	if got := tr.Start("x", nil); got != nil {
		t.Fatalf("nil tracer Start = %v, want nil", got)
	}
	if sn := tr.Snapshot(); len(sn.Spans) != 0 {
		t.Fatalf("nil tracer snapshot has spans")
	}
}

func TestTracerNestingAndSnapshot(t *testing.T) {
	tr := NewTracer(TracerConfig{ID: "t1", Clock: stepClock()})
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "root", String("kind", "test"))
	if root == nil {
		t.Fatal("root span is nil")
	}
	ctx2, child := StartSpan(ctx1, "child")
	_, grand := StartSpan(ctx2, "grand")
	grand.End()
	child.SetAttr(Int("n", 42))
	child.End()
	root.End()

	snap := tr.Snapshot()
	if err := snap.Check(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if snap.ID != "t1" || len(snap.Spans) != 3 {
		t.Fatalf("snapshot = %q %d spans, want t1 / 3", snap.ID, len(snap.Spans))
	}
	r, _ := snap.Find("root")
	c, _ := snap.Find("child")
	g, _ := snap.Find("grand")
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent = %d, want %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Fatalf("grand parent = %d, want %d", g.Parent, c.ID)
	}
	if c.Attr("n") != "42" {
		t.Fatalf("child attr n = %q, want 42", c.Attr("n"))
	}
	if r.Attr("kind") != "test" {
		t.Fatalf("root attr kind = %q", r.Attr("kind"))
	}
	// Stepping clock: every reading is strictly later, so durations > 0
	// and children nest inside parents (Check already verified nesting).
	for _, s := range snap.Spans {
		if s.DurNS() <= 0 {
			t.Fatalf("span %q duration %d, want > 0", s.Name, s.DurNS())
		}
	}
}

func TestTracerBoundedBufferCountsDropped(t *testing.T) {
	tr := NewTracer(TracerConfig{ID: "b", MaxSpans: 3, Clock: stepClock()})
	ctx := WithTracer(context.Background(), tr)
	var spans []*Span
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, "s")
		spans = append(spans, s)
	}
	for _, s := range spans {
		s.End() // nil-safe for the dropped ones
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
	snap := tr.Snapshot()
	if snap.Dropped != 7 || len(snap.Spans) != 3 {
		t.Fatalf("snapshot dropped=%d spans=%d", snap.Dropped, len(snap.Spans))
	}
	if err := snap.Check(); err != nil {
		t.Fatalf("bounded snapshot invalid: %v", err)
	}
}

func TestSnapshotMarksUnfinishedSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: stepClock()})
	ctx := WithTracer(context.Background(), tr)
	_, open := StartSpan(ctx, "open")
	_ = open // never ended
	snap := tr.Snapshot()
	s, ok := snap.Find("open")
	if !ok {
		t.Fatal("open span missing from snapshot")
	}
	if s.Attr("unfinished") != "true" {
		t.Fatalf("unfinished attr = %q, want true", s.Attr("unfinished"))
	}
	if s.EndNS < s.StartNS {
		t.Fatalf("unfinished span has invalid interval [%d,%d]", s.StartNS, s.EndNS)
	}
	if err := snap.Check(); err != nil {
		t.Fatalf("snapshot with open span invalid: %v", err)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{Clock: stepClock()})
	s := tr.Start("once", nil)
	s.End()
	first := tr.Snapshot().Spans[0].EndNS
	s.End()
	second := tr.Snapshot().Spans[0].EndNS
	if first != second {
		t.Fatalf("End not idempotent: %d then %d", first, second)
	}
}

func TestConcurrentSpansAreRaceFree(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 64})
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, s := StartSpan(ctx, "worker", Int("i", i))
			_, in := StartSpan(c, "inner")
			in.SetAttr(Bool("ok", true))
			in.End()
			s.End()
		}(i)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if err := snap.Check(); err != nil {
		t.Fatalf("concurrent snapshot invalid: %v", err)
	}
	if got := snap.Count("worker"); got != 8 {
		t.Fatalf("worker spans = %d, want 8", got)
	}
	if got := snap.Count("inner"); got != 8 {
		t.Fatalf("inner spans = %d, want 8", got)
	}
}

// buildGoldenTrace makes a small deterministic trace with concurrency,
// attributes and a dropped count — the round-trip fixture.
func buildGoldenTrace() Trace {
	tr := NewTracer(TracerConfig{ID: "golden", Clock: stepClock()})
	ctx := WithTracer(context.Background(), tr)
	ctx, job := StartSpan(ctx, "job", String("kind", "surface.mc"))
	c1, sh0 := StartSpan(ctx, "shard", Int("shard", 0))
	_, dec := StartSpan(c1, "decode")
	dec.End()
	sh0.SetAttr(Int("shots", 512))
	sh0.End()
	_, sh1 := StartSpan(ctx, "shard", Int("shard", 1))
	sh1.End()
	_, mg := StartSpan(ctx, "merge")
	mg.SetAttr(Float64("p", 0.03125))
	mg.End()
	job.End()
	t := tr.Snapshot()
	t.Dropped = 2
	return t
}

func TestChromeRoundTripGolden(t *testing.T) {
	want := buildGoldenTrace()
	var buf bytes.Buffer
	if err := want.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	// The emitted bytes must be valid JSON in trace_event container form.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("emitted chrome trace is not valid JSON: %v", err)
	}
	if _, ok := generic["traceEvents"].([]any); !ok {
		t.Fatalf("chrome trace missing traceEvents array")
	}
	got, err := ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseChrome: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if err := got.Check(); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	// Second pass must be byte-stable.
	var buf2 bytes.Buffer
	if err := got.WriteChrome(&buf2); err != nil {
		t.Fatalf("WriteChrome(2): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("chrome export not byte-stable")
	}
}

func TestParseChromeRejectsForeignEvents(t *testing.T) {
	in := `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"args":{}}]}`
	if _, err := ParseChrome(strings.NewReader(in)); err == nil {
		t.Fatal("expected error for event without span identity")
	}
	if _, err := ParseChrome(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestTraceCheckRejectsBadTrees(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
	}{
		{"zero-id", Trace{Spans: []SpanData{{ID: 0, Name: "a", StartNS: 0, EndNS: 1}}}},
		{"dup-id", Trace{Spans: []SpanData{
			{ID: 1, Name: "a", StartNS: 0, EndNS: 2},
			{ID: 1, Name: "b", StartNS: 0, EndNS: 1},
		}}},
		{"unknown-parent", Trace{Spans: []SpanData{{ID: 1, Parent: 99, Name: "a", StartNS: 0, EndNS: 1}}}},
		{"negative-dur", Trace{Spans: []SpanData{{ID: 1, Name: "a", StartNS: 5, EndNS: 1}}}},
		{"escapes-parent", Trace{Spans: []SpanData{
			{ID: 1, Name: "p", StartNS: 0, EndNS: 10},
			{ID: 2, Parent: 1, Name: "c", StartNS: 5, EndNS: 15},
		}}},
	}
	for _, c := range cases {
		if err := c.tr.Check(); err == nil {
			t.Errorf("%s: Check accepted invalid trace", c.name)
		}
	}
}

func TestTreeString(t *testing.T) {
	got := buildGoldenTrace().TreeString()
	for _, want := range []string{
		"trace golden (5 spans, 2 dropped)",
		"job", "kind=surface.mc",
		"shard", "decode", "merge", "shots=512",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("TreeString missing %q:\n%s", want, got)
		}
	}
	// Nesting: decode is indented deeper than shard, which is deeper than job.
	lines := strings.Split(got, "\n")
	indent := func(name string) int {
		for _, l := range lines {
			trimmed := strings.TrimLeft(l, " ")
			if strings.HasPrefix(trimmed, name+" ") {
				return len(l) - len(trimmed)
			}
		}
		t.Fatalf("line for %q not found in:\n%s", name, got)
		return -1
	}
	if !(indent("job") < indent("shard") && indent("shard") < indent("decode")) {
		t.Fatalf("tree indentation wrong:\n%s", got)
	}
}

func TestAssignLanesSeparatesConcurrentSiblings(t *testing.T) {
	// Two siblings overlapping in time must land on different lanes; the
	// child nested in sibling A shares A's lane.
	spans := []SpanData{
		{ID: 1, Name: "root", StartNS: 0, EndNS: 100},
		{ID: 2, Parent: 1, Name: "a", StartNS: 10, EndNS: 60},
		{ID: 3, Parent: 1, Name: "b", StartNS: 20, EndNS: 70}, // overlaps a
		{ID: 4, Parent: 2, Name: "a.child", StartNS: 15, EndNS: 50},
	}
	lanes := assignLanes(spans)
	if lanes[2] == lanes[3] {
		t.Fatalf("overlapping siblings share lane %d", lanes[2])
	}
	if lanes[4] != lanes[2] {
		t.Fatalf("child lane %d != parent lane %d", lanes[4], lanes[2])
	}
	if lanes[2] != lanes[1] {
		t.Fatalf("first child should stack on root's lane")
	}
}

func TestLoggerStampsContextIdentity(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	tr := NewTracer(TracerConfig{ID: "trace-7", Clock: stepClock()})
	ctx := WithJobID(WithTracer(context.Background(), tr), "job-42")
	ctx, s := StartSpan(ctx, "work")
	lg.InfoContext(ctx, "hello", "k", "v")
	s.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log record not JSON: %v\n%s", err, buf.String())
	}
	if rec["job"] != "job-42" {
		t.Fatalf("job = %v, want job-42", rec["job"])
	}
	if rec["trace"] != "trace-7" {
		t.Fatalf("trace = %v, want trace-7", rec["trace"])
	}
	if rec["span"] != float64(s.ID()) {
		t.Fatalf("span = %v, want %d", rec["span"], s.ID())
	}
	if rec["k"] != "v" {
		t.Fatalf("user attr lost: %v", rec)
	}
}

func TestLoggerPlainContextHasNoStamps(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	lg.InfoContext(context.Background(), "dropped below level")
	if buf.Len() != 0 {
		t.Fatalf("info record passed warn level: %s", buf.String())
	}
	lg.WarnContext(context.Background(), "plain")
	out := buf.String()
	for _, forbidden := range []string{"job=", "trace=", "span="} {
		if strings.Contains(out, forbidden) {
			t.Fatalf("plain record carries %q: %s", forbidden, out)
		}
	}
}

func TestNewLoggerRejectsBadFlags(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Fatal("expected error for bad level")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Fatal("expected error for bad format")
	}
}

func TestDiscardLoggerDropsEverything(t *testing.T) {
	lg := Discard()
	lg.Error("nothing happens")
	if OrDiscard(nil) == nil {
		t.Fatal("OrDiscard(nil) returned nil")
	}
	real := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if OrDiscard(real) != real {
		t.Fatal("OrDiscard replaced a real logger")
	}
}

func TestPprofMuxServesIndex(t *testing.T) {
	mux := PprofMux()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		h, pattern := mux.Handler(req)
		if pattern == "" || h == nil {
			t.Fatalf("no handler registered for %s", path)
		}
	}
	// The index must actually render.
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "profile") {
		t.Fatalf("pprof index does not list profiles")
	}
}
