// Structured logging on log/slog: a shared handler that stamps every
// record with the trace, span and job IDs carried by the logging context,
// plus the level/format parsing behind the CLIs' -log-level/-log-format
// flags and a dependency-free discard logger for quiet defaults.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Handler wraps an inner slog.Handler and appends the observability
// identity carried by the record's context — job ID, trace ID and span ID —
// as attributes on every record. Records logged without any identity pass
// through unchanged.
type Handler struct {
	inner slog.Handler
}

// NewHandler wraps inner with context stamping.
func NewHandler(inner slog.Handler) *Handler { return &Handler{inner: inner} }

// Enabled defers to the inner handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle appends job/trace/span attributes from ctx and forwards to the
// inner handler.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	if id := JobID(ctx); id != "" {
		r.AddAttrs(slog.String("job", id))
	}
	if tr := FromContext(ctx); tr != nil {
		r.AddAttrs(slog.String("trace", tr.ID()))
	}
	if s := SpanFromContext(ctx); s != nil {
		r.AddAttrs(slog.Uint64("span", s.ID()))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs returns a stamped handler over the inner handler's WithAttrs.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup returns a stamped handler over the inner handler's WithGroup.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name)}
}

// ParseLevel maps the CLI -log-level values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the shared logger: level is debug|info|warn|error,
// format is text|json. The returned logger stamps every record with the
// job/trace/span identity carried by the logging context.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var inner slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		inner = slog.NewTextHandler(w, opts)
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return slog.New(NewHandler(inner)), nil
}

// discardHandler drops every record. (go.mod targets Go 1.22, which
// predates slog.DiscardHandler.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything — the default for
// libraries whose callers didn't install a logger.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// OrDiscard returns l, or the discard logger when l is nil, so library
// code can log unconditionally.
func OrDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}
