package workloads

import (
	"strings"
	"testing"

	"qisim/internal/qasm"
)

func TestFeaturesInUnitInterval(t *testing.T) {
	for _, name := range Names() {
		f := Analyze(Catalog()[name](12))
		for label, v := range map[string]float64{
			"comm": f.ProgramCommunication, "crit": f.CriticalDepth,
			"entang": f.Entanglement, "paral": f.Parallelism, "live": f.Liveness,
		} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: feature %s = %v out of [0,1]", name, label, v)
			}
		}
	}
}

func TestGHZFeatureShape(t *testing.T) {
	// GHZ is the canonical high-entanglement, fully-serial benchmark.
	f := Analyze(GHZ(12))
	if f.Entanglement < 0.8 {
		t.Fatalf("GHZ entanglement %v, want ~0.92", f.Entanglement)
	}
	if f.Parallelism > 0.05 {
		t.Fatalf("GHZ parallelism %v should be ~0 (serial chain)", f.Parallelism)
	}
	if f.CriticalDepth < 0.8 {
		t.Fatalf("GHZ critical depth %v should be ~1", f.CriticalDepth)
	}
}

func TestBVFeatureShape(t *testing.T) {
	// BV is the low-entanglement, high-parallelism member of the suite.
	bv := Analyze(BernsteinVazirani(12))
	ghz := Analyze(GHZ(12))
	if bv.Entanglement >= ghz.Entanglement {
		t.Fatal("BV should entangle far less than GHZ")
	}
	if bv.Parallelism <= ghz.Parallelism {
		t.Fatal("BV should parallelise more than GHZ")
	}
}

func TestSuiteCoversFeatureSpace(t *testing.T) {
	// SupermarQ's argument: the suite must spread across the feature space.
	var minE, maxE, minP, maxP float64 = 2, -1, 2, -1
	for _, name := range Names() {
		f := Analyze(Catalog()[name](12))
		if f.Entanglement < minE {
			minE = f.Entanglement
		}
		if f.Entanglement > maxE {
			maxE = f.Entanglement
		}
		if f.Parallelism < minP {
			minP = f.Parallelism
		}
		if f.Parallelism > maxP {
			maxP = f.Parallelism
		}
	}
	if maxE-minE < 0.4 {
		t.Fatalf("entanglement spread %v too narrow", maxE-minE)
	}
	if maxP-minP < 0.1 {
		t.Fatalf("parallelism spread %v too narrow", maxP-minP)
	}
}

func TestAnalyzeEmptyAndTrivial(t *testing.T) {
	if f := Analyze(&qasm.Program{}); f != (Features{}) {
		t.Fatal("empty program should yield zero features")
	}
	p := &qasm.Program{NQubits: 2, Gates: []qasm.Gate{{Name: "measure", Qubits: []int{0}, CBit: 0}}}
	if f := Analyze(p); f != (Features{}) {
		t.Fatal("measure-only program should yield zero features")
	}
}

func TestFeatureTableRendering(t *testing.T) {
	s := FeatureTable(8)
	if !strings.Contains(s, "ghz") || !strings.Contains(s, "entang") {
		t.Fatalf("feature table malformed:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 10 {
		t.Fatal("feature table should have header + 9 benchmarks")
	}
}
