package workloads

import (
	"fmt"
	"strings"

	"qisim/internal/qasm"
)

// Features is the SupermarQ-style feature vector of a benchmark circuit —
// the characterisation the suite uses to argue coverage of the application
// space. All features are normalised to [0, 1].
type Features struct {
	// ProgramCommunication: average degree of the qubit interaction graph
	// over the maximum possible (n-1).
	ProgramCommunication float64
	// CriticalDepth: fraction of the circuit's depth occupied by two-qubit
	// gates on the longest dependency chain.
	CriticalDepth float64
	// Entanglement: ratio of two-qubit gates to all gates.
	Entanglement float64
	// Parallelism: how many gates run per layer relative to width.
	Parallelism float64
	// Liveness: fraction of qubit·layer slots where the qubit is active.
	Liveness float64
}

// Analyze computes the feature vector of a program (measurements excluded,
// as SupermarQ does).
func Analyze(p *qasm.Program) Features {
	n := p.NQubits
	if n == 0 {
		return Features{}
	}
	// Interaction graph degrees.
	adj := map[[2]int]bool{}
	var total, twoQ int
	// Layering: greedy ASAP levels per qubit.
	level := make([]int, n)
	layerGates := map[int]int{}
	layerBusy := map[int]int{}
	critTwoQ := make([]int, n) // 2Q gates on the chain ending at qubit q
	for _, g := range p.Gates {
		if g.Name == "measure" || g.Name == "barrier" {
			continue
		}
		total++
		if len(g.Qubits) == 2 {
			twoQ++
			a, b := g.Qubits[0], g.Qubits[1]
			if a > b {
				a, b = b, a
			}
			adj[[2]int{a, b}] = true
			lv := max(level[g.Qubits[0]], level[g.Qubits[1]]) + 1
			level[g.Qubits[0]], level[g.Qubits[1]] = lv, lv
			c := max(critTwoQ[g.Qubits[0]], critTwoQ[g.Qubits[1]]) + 1
			critTwoQ[g.Qubits[0]], critTwoQ[g.Qubits[1]] = c, c
			layerGates[lv]++
			layerBusy[lv] += 2
		} else {
			level[g.Qubits[0]]++
			layerGates[level[g.Qubits[0]]]++
			layerBusy[level[g.Qubits[0]]]++
		}
	}
	if total == 0 {
		return Features{}
	}
	depth := 0
	maxCrit := 0
	for q := 0; q < n; q++ {
		depth = max(depth, level[q])
		maxCrit = max(maxCrit, critTwoQ[q])
	}
	degree := make([]int, n)
	for e := range adj {
		degree[e[0]]++
		degree[e[1]]++
	}
	var degSum float64
	for _, d := range degree {
		degSum += float64(d)
	}

	f := Features{Entanglement: float64(twoQ) / float64(total)}
	if n > 1 {
		f.ProgramCommunication = degSum / float64(n) / float64(n-1)
	}
	if depth > 0 {
		f.CriticalDepth = float64(maxCrit) / float64(depth)
		f.Parallelism = (float64(total)/float64(depth) - 1) / float64(max(n-1, 1))
		busy := 0
		for _, b := range layerBusy {
			busy += b
		}
		f.Liveness = float64(busy) / float64(depth*n)
	}
	return clampFeatures(f)
}

func clampFeatures(f Features) Features {
	c := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return Features{
		ProgramCommunication: c(f.ProgramCommunication),
		CriticalDepth:        c(f.CriticalDepth),
		Entanglement:         c(f.Entanglement),
		Parallelism:          c(f.Parallelism),
		Liveness:             c(f.Liveness),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FeatureTable renders the suite's feature vectors — the SupermarQ coverage
// table.
func FeatureTable(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s\n",
		"benchmark", "comm", "crit", "entang", "paral", "live")
	for _, name := range Names() {
		f := Analyze(Catalog()[name](n))
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			name, f.ProgramCommunication, f.CriticalDepth, f.Entanglement, f.Parallelism, f.Liveness)
	}
	return b.String()
}
