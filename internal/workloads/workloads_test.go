package workloads

import (
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/qasm"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 9 {
		t.Fatalf("catalog has %d benchmarks, want 9 (Fig. 11)", len(cat))
	}
	for _, name := range Names() {
		if cat[name] == nil {
			t.Fatalf("missing benchmark %q", name)
		}
	}
}

func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, name := range Names() {
		gen := Catalog()[name]
		for _, n := range []int{4, 8, 16} {
			p := gen(n)
			if p.NQubits != n {
				t.Fatalf("%s(%d): NQubits = %d", name, n, p.NQubits)
			}
			if len(p.Gates) == 0 {
				t.Fatalf("%s(%d): empty circuit", name, n)
			}
			ex, err := compile.Compile(p, compile.DefaultOptions())
			if err != nil {
				t.Fatalf("%s(%d): compile: %v", name, n, err)
			}
			r, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
			if err != nil {
				t.Fatalf("%s(%d): simulate: %v", name, n, err)
			}
			if r.TotalTime <= 0 {
				t.Fatalf("%s(%d): zero execution time", name, n)
			}
		}
	}
}

func TestBenchmarksEmitValidQASM(t *testing.T) {
	for _, name := range Names() {
		p := Catalog()[name](8)
		src := qasm.Emit(p)
		if _, err := qasm.Parse(src); err != nil {
			t.Fatalf("%s: emitted QASM does not re-parse: %v", name, err)
		}
	}
}

func TestGHZStructure(t *testing.T) {
	p := GHZ(5)
	// 1 H + 4 CX + 5 measures.
	var h, cx, m int
	for _, g := range p.Gates {
		switch g.Name {
		case "h":
			h++
		case "cx":
			cx++
		case "measure":
			m++
		}
	}
	if h != 1 || cx != 4 || m != 5 {
		t.Fatalf("GHZ(5) structure h=%d cx=%d m=%d", h, cx, m)
	}
}

func TestBVMeasuresDataOnly(t *testing.T) {
	p := BernsteinVazirani(6)
	for _, g := range p.Gates {
		if g.Name == "measure" && g.Qubits[0] == 5 {
			t.Fatal("BV must not measure the oracle ancilla")
		}
	}
}

func TestTwoQubitGateDensityVaries(t *testing.T) {
	// The benchmarks should span a range of 2Q densities (that is what makes
	// the Fig. 11 fidelity spread informative).
	densities := map[string]float64{}
	for _, name := range Names() {
		p := Catalog()[name](12)
		twoQ, tot := 0, 0
		for _, g := range p.Gates {
			if g.Name == "measure" {
				continue
			}
			tot++
			if len(g.Qubits) == 2 {
				twoQ++
			}
		}
		densities[name] = float64(twoQ) / float64(tot)
	}
	if densities["ghz"] <= densities["vqe"]-1 {
		t.Fatal("sanity")
	}
	var lo, hi float64 = 2, -1
	for _, d := range densities {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("benchmark 2Q densities too uniform: %v", densities)
	}
}
