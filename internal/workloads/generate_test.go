package workloads

import (
	"errors"
	"testing"

	"qisim/internal/simerr"
)

func TestGenerateAllBenchmarksValid(t *testing.T) {
	for _, name := range Names() {
		for n := minQubits[name]; n <= 16; n++ {
			p, err := Generate(name, n)
			if err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			if p.NQubits != n {
				t.Fatalf("%s(%d): NQubits %d", name, n, p.NQubits)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s(%d): generated invalid program: %v", name, n, err)
			}
		}
	}
}

func TestGenerateRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Generate("no-such-bench", 8); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
}

func TestGenerateRejectsUndersizedInstanceWithoutPanic(t *testing.T) {
	for _, name := range Names() {
		for n := -1; n < minQubits[name]; n++ {
			if _, err := Generate(name, n); !errors.Is(err, simerr.ErrInvalidConfig) {
				t.Fatalf("%s(%d): want ErrInvalidConfig, got %v", name, n, err)
			}
		}
	}
}
