// Package workloads generates the benchmark circuits of the Fig. 11
// validation: SupermarQ-style kernels (GHZ, mermin-bell, QAOA, VQE,
// Hamiltonian simulation, bit code, phase code) and ScaffCC-style kernels
// (Bernstein–Vazirani, adder) at the ≤16-qubit scales the paper uses, in our
// OpenQASM subset.
package workloads

import (
	"fmt"
	"math"

	"qisim/internal/qasm"
	"qisim/internal/simerr"
)

// Generator builds a benchmark program over n qubits.
type Generator func(n int) *qasm.Program

// Catalog returns the nine named benchmarks of the Fig. 11 validation.
func Catalog() map[string]Generator {
	return map[string]Generator{
		"ghz":         GHZ,
		"mermin-bell": MerminBell,
		"qaoa":        QAOA,
		"vqe":         VQE,
		"hamiltonian": HamiltonianSim,
		"bit-code":    BitCode,
		"phase-code":  PhaseCode,
		"bv":          BernsteinVazirani,
		"adder":       Adder,
	}
}

// Names returns the catalog keys in a fixed presentation order.
func Names() []string {
	return []string{"ghz", "mermin-bell", "qaoa", "vqe", "hamiltonian", "bit-code", "phase-code", "bv", "adder"}
}

// minQubits is the smallest instance each generator supports.
var minQubits = map[string]int{
	"ghz": 2, "mermin-bell": 3, "qaoa": 2, "vqe": 2, "hamiltonian": 2,
	"bit-code": 3, "phase-code": 3, "bv": 2, "adder": 3,
}

// Generate is the erroring public boundary over the generator catalog: an
// unknown benchmark name or an instance size below the generator's minimum
// returns a typed ErrInvalidConfig instead of panicking, and the produced
// program is structurally validated before it is handed to the compiler.
func Generate(name string, n int) (p *qasm.Program, err error) {
	defer simerr.RecoverInto(&err, simerr.ErrInvalidConfig)
	gen, ok := Catalog()[name]
	if !ok {
		return nil, simerr.Invalidf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	if mn := minQubits[name]; n < mn {
		return nil, simerr.Invalidf("workloads: %s needs >= %d qubits, got %d", name, mn, n)
	}
	p = gen(n)
	if verr := p.Validate(); verr != nil {
		return nil, fmt.Errorf("workloads: %s(%d) generated an invalid program: %w", name, n, verr)
	}
	return p, nil
}

func newProg(n int) *qasm.Program {
	return &qasm.Program{NQubits: n, NClbits: n}
}

func g1(name string, q int, params ...float64) qasm.Gate {
	return qasm.Gate{Name: name, Qubits: []int{q}, Params: params, CBit: -1}
}

func g2(name string, a, b int) qasm.Gate {
	return qasm.Gate{Name: name, Qubits: []int{a, b}, CBit: -1}
}

func meas(q int) qasm.Gate {
	return qasm.Gate{Name: "measure", Qubits: []int{q}, CBit: q}
}

func measureAll(p *qasm.Program) {
	for q := 0; q < p.NQubits; q++ {
		p.Gates = append(p.Gates, meas(q))
	}
}

// GHZ prepares the n-qubit GHZ state with a CNOT chain.
func GHZ(n int) *qasm.Program {
	p := newProg(n)
	p.Gates = append(p.Gates, g1("h", 0))
	for q := 0; q < n-1; q++ {
		p.Gates = append(p.Gates, g2("cx", q, q+1))
	}
	measureAll(p)
	return p
}

// MerminBell is the SupermarQ Mermin–Bell test: GHZ preparation followed by
// a rotated measurement basis.
func MerminBell(n int) *qasm.Program {
	p := newProg(n)
	p.Gates = append(p.Gates, g1("h", 0))
	for q := 0; q < n-1; q++ {
		p.Gates = append(p.Gates, g2("cx", q, q+1))
	}
	for q := 0; q < n; q++ {
		p.Gates = append(p.Gates, g1("rz", q, math.Pi/4), g1("h", q))
	}
	measureAll(p)
	return p
}

// QAOA is one cost+mixer layer of MaxCut QAOA on a ring.
func QAOA(n int) *qasm.Program {
	p := newProg(n)
	for q := 0; q < n; q++ {
		p.Gates = append(p.Gates, g1("h", q))
	}
	gamma, beta := 0.7, 0.3
	for q := 0; q < n; q++ {
		a, b := q, (q+1)%n
		if b == 0 && n > 2 {
			a, b = 0, n-1
		}
		p.Gates = append(p.Gates, g2("cx", a, b), g1("rz", b, 2*gamma), g2("cx", a, b))
	}
	for q := 0; q < n; q++ {
		p.Gates = append(p.Gates, g1("rx", q, 2*beta))
	}
	measureAll(p)
	return p
}

// VQE is one hardware-efficient ansatz layer (Ry ladder + CZ entangler).
func VQE(n int) *qasm.Program {
	p := newProg(n)
	for rep := 0; rep < 2; rep++ {
		for q := 0; q < n; q++ {
			p.Gates = append(p.Gates, g1("ry", q, 0.1+0.2*float64(q+rep)))
		}
		for q := 0; q < n-1; q++ {
			p.Gates = append(p.Gates, g2("cz", q, q+1))
		}
	}
	measureAll(p)
	return p
}

// HamiltonianSim is one Trotter step of a transverse-field Ising chain.
func HamiltonianSim(n int) *qasm.Program {
	p := newProg(n)
	dt := 0.2
	for step := 0; step < 2; step++ {
		for q := 0; q < n; q++ {
			p.Gates = append(p.Gates, g1("rx", q, 2*dt))
		}
		for q := 0; q < n-1; q++ {
			p.Gates = append(p.Gates, g2("cx", q, q+1), g1("rz", q+1, 2*dt), g2("cx", q, q+1))
		}
	}
	measureAll(p)
	return p
}

// BitCode is the SupermarQ bit-flip code memory benchmark: encode, one
// stabilizer round, decode.
func BitCode(n int) *qasm.Program {
	p := newProg(n)
	// Data on even indices, ancillas on odd.
	for q := 0; q+2 < n; q += 2 {
		p.Gates = append(p.Gates, g2("cx", q, q+2))
	}
	for q := 1; q < n-1; q += 2 {
		p.Gates = append(p.Gates, g2("cx", q-1, q), g2("cx", q+1, q))
	}
	measureAll(p)
	return p
}

// PhaseCode is the phase-flip analogue (Hadamard-conjugated bit code).
func PhaseCode(n int) *qasm.Program {
	p := newProg(n)
	for q := 0; q < n; q += 2 {
		p.Gates = append(p.Gates, g1("h", q))
	}
	for q := 0; q+2 < n; q += 2 {
		p.Gates = append(p.Gates, g2("cz", q, q+2))
	}
	for q := 1; q < n-1; q += 2 {
		p.Gates = append(p.Gates, g1("h", q), g2("cz", q-1, q), g2("cz", q+1, q), g1("h", q))
	}
	for q := 0; q < n; q += 2 {
		p.Gates = append(p.Gates, g1("h", q))
	}
	measureAll(p)
	return p
}

// BernsteinVazirani recovers the secret 1010... over n-1 data qubits.
func BernsteinVazirani(n int) *qasm.Program {
	if n < 2 {
		panic(fmt.Sprintf("workloads: BV needs >= 2 qubits, got %d", n))
	}
	p := newProg(n)
	anc := n - 1
	p.Gates = append(p.Gates, g1("x", anc), g1("h", anc))
	for q := 0; q < anc; q++ {
		p.Gates = append(p.Gates, g1("h", q))
	}
	for q := 0; q < anc; q += 2 { // secret bits
		p.Gates = append(p.Gates, g2("cx", q, anc))
	}
	for q := 0; q < anc; q++ {
		p.Gates = append(p.Gates, g1("h", q))
	}
	for q := 0; q < anc; q++ {
		p.Gates = append(p.Gates, meas(q))
	}
	return p
}

// Adder is a ripple-carry-style adder kernel (ScaffCC family) using
// Toffoli-free majority gates approximated with CX/CZ+T layers.
func Adder(n int) *qasm.Program {
	p := newProg(n)
	for q := 0; q+2 < n; q += 2 {
		a, b, c := q, q+1, q+2
		p.Gates = append(p.Gates,
			g2("cx", a, b),
			g1("t", b),
			g2("cx", b, c),
			g1("tdg", c),
			g2("cx", a, c),
			g1("t", c),
		)
	}
	measureAll(p)
	return p
}
