package validate

import "qisim/internal/readout"

// readoutChain returns the calibrated readout noise chain.
func readoutChain() readout.Chain { return readout.DefaultChain() }

// binErr evaluates the full-integration bin-counting error.
func binErr(c readout.Chain) float64 {
	return readout.BinCountingError(c, readout.DefaultTiming(), 8)
}
