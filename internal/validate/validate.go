// Package validate implements QIsim's validation campaign (Section 5):
//
//   - Fig. 8: the 4 K CMOS circuit model against Horse Ridge I & II,
//   - Fig. 10: the RSFQ circuit model against post-layout analyses,
//   - Table 1: the gate/readout error models against IBMQ machines and the
//     best published references, and
//   - Fig. 11: the workload-level fidelity model against IBMQ executions of
//     nine SupermarQ/ScaffCC benchmarks.
//
// Reference provenance: the paper reports its references graphically, so
// where exact numbers are not in the text we embed documented stand-ins at
// the published accuracy levels (≤5.1% CMOS, ≤6.7%/7.2% SFQ, ≤10.2% error
// models, 5.1% average fidelity difference); Table 1's reference column is
// reproduced verbatim from the paper.
package validate

import (
	"fmt"
	"math"
	"strings"

	"qisim/internal/cmos"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/gateerror"
	"qisim/internal/jpm"
	"qisim/internal/pauli"
	"qisim/internal/sfq"
	"qisim/internal/workloads"
)

// Row is one validation comparison.
type Row struct {
	Name      string
	Reference float64
	Model     float64
	Unit      string
}

// Error returns the relative model error vs. the reference.
func (r Row) Error() float64 {
	if r.Reference == 0 {
		return 0
	}
	return math.Abs(r.Model-r.Reference) / r.Reference
}

// Report renders rows with their relative errors.
func Report(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%-28s %12s %12s %8s\n", title, "item", "reference", "model", "error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12.4g %12.4g %7.1f%%  %s\n", r.Name, r.Reference, r.Model, 100*r.Error(), r.Unit)
	}
	return b.String()
}

// MaxError returns the largest relative error across rows.
func MaxError(rows []Row) float64 {
	var mx float64
	for _, r := range rows {
		if e := r.Error(); e > mx {
			mx = e
		}
	}
	return mx
}

// MeanError returns the average relative error.
func MeanError(rows []Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range rows {
		s += r.Error()
	}
	return s / float64(len(rows))
}

// Fig8CMOSPower validates the 4 K CMOS circuit model against the Horse
// Ridge I (drive) and II (TX/RX) 22 nm peak powers. The reference values are
// per-circuit stand-ins consistent with the published parts (see package
// comment); the paper reports 5.1% maximum error (in RX), and so do we.
func Fig8CMOSPower() []Row {
	n, c, f := cmos.Node22, cmos.Cryo4K(), 2.5e9
	drive := cmos.DriveCircuit(32).TotalPower(n, c, f, 14)
	tx := cmos.TXCircuit(8).TotalPower(n, c, f, 14)
	rx := cmos.RXCircuit(8, true).TotalPower(n, c, f, 14)
	return []Row{
		{Name: "drive (Horse Ridge I)", Reference: 0.0224, Model: drive, Unit: "W"},
		{Name: "tx (Horse Ridge II)", Reference: 0.00174, Model: tx, Unit: "W"},
		{Name: "rx (Horse Ridge II)", Reference: 0.0161, Model: rx, Unit: "W"},
	}
}

// Fig10SFQ validates the RSFQ circuit model against the AIST-process
// post-layout values for the four most power-hungry drive circuits (21-bit
// bitstream, 8 qubits, #BS = 8). The paper reports 6.7% (frequency) and
// 7.2% (power) maximum errors.
func Fig10SFQ() (freq, power []Row) {
	d := sfq.MITLLSFQ5ee(sfq.RSFQ)
	s := sfq.DefaultDriveSpec()
	type ref struct {
		c            *sfq.Circuit
		fGHz, pMilli float64
	}
	refs := []ref{
		{sfq.ControlDataBuffer(s), 17.1, 0.157},
		{sfq.BitstreamGenerator(s), 20.4, 5.85},
		{sfq.BitstreamController(s), 14.7, 8.91},
		{sfq.PerQubitController(s), 25.5, 0.950},
	}
	for _, r := range refs {
		freq = append(freq, Row{Name: r.c.Name, Reference: r.fGHz, Model: r.c.FMax(d) / 1e9, Unit: "GHz"})
		power = append(power, Row{Name: r.c.Name, Reference: r.pMilli, Model: r.c.TotalPower(d, 24e9) * 1e3, Unit: "mW"})
	}
	return freq, power
}

// Table1GateErrors validates the five error models against the references of
// Table 1 (the reference column is verbatim from the paper).
func Table1GateErrors() []Row {
	cmos1q := gateerror.CMOS1QError(gateerror.DefaultCMOS1QConfig()).Error
	cmos1qDec := gateerror.WithDecoherence(cmos1q, 25e-9, 280e-6, 175e-6)
	sfq1q := gateerror.SFQ1QError(gateerror.ValidationSFQ1QConfig()).Error
	cz := gateerror.CZError(gateerror.DefaultSFQCZConfig()).Error
	// CMOS readout incl. decoherence vs ibm_washington Q117: the bin-count
	// model with the reference machine's T1 folded into the decay channel.
	roChain := defaultWashingtonChain()
	cmosRO := binCountingAt(roChain)
	// SFQ readout vs the microwave-photon-counter experiment: Table 1 notes
	// the comparison excludes state preparation, so the 7.8e-3 driving+
	// tunnelling operating point sheds its state-preparation component.
	const statePrepError = 1.7e-3
	sfqRO := jpm.NewPipeline(jpm.Unshared).Spec.ResonatorDriving.Error - statePrepError
	return []Row{
		{Name: "CMOS 1Q (ibm_peekskill)", Reference: 6.59e-5, Model: cmos1qDec},
		{Name: "SFQ 1Q (Li et al.)", Reference: 1.37e-5, Model: sfq1q},
		{Name: "2Q CZ (Sung et al.)", Reference: 9.00e-4, Model: cz},
		{Name: "CMOS readout (ibm_washington)", Reference: 1.50e-3, Model: cmosRO},
		{Name: "SFQ readout (Opremcak et al.)", Reference: 6.00e-3, Model: sfqRO},
	}
}

// Machine is one IBMQ reference machine for the Fig. 11 validation.
type Machine struct {
	Name  string
	Rates pauli.ErrorRates
}

// Machines returns the five IBMQ reference machines with their published
// calibration-scale error rates.
func Machines() []Machine {
	return []Machine{
		{"ibm_washington", pauli.ErrorRates{OneQ: 2.5e-4, TwoQ: 1.2e-2, Readout: 2.0e-2, T1: 100e-6, T2: 95e-6}},
		{"ibm_mumbai", pauli.ErrorRates{OneQ: 2.1e-4, TwoQ: 8.0e-3, Readout: 1.8e-2, T1: 122e-6, T2: 118e-6}},
		{"ibm_auckland", pauli.ErrorRates{OneQ: 2.4e-4, TwoQ: 8.7e-3, Readout: 1.3e-2, T1: 160e-6, T2: 130e-6}},
		{"ibm_hanoi", pauli.ErrorRates{OneQ: 2.0e-4, TwoQ: 9.1e-3, Readout: 1.4e-2, T1: 140e-6, T2: 120e-6}},
		{"ibm_peekskill", pauli.ErrorRates{OneQ: 6.6e-5, TwoQ: 7.0e-3, Readout: 1.2e-2, T1: 280e-6, T2: 175e-6}},
	}
}

// BenchmarkSizes returns the ≤16-qubit sizes of the Fig. 11 runs.
func BenchmarkSizes() map[string]int {
	return map[string]int{
		"ghz": 16, "mermin-bell": 8, "qaoa": 12, "vqe": 12, "hamiltonian": 12,
		"bit-code": 9, "phase-code": 9, "bv": 14, "adder": 10,
	}
}

// fig11Perturbations is the deterministic measured-vs-model deviation
// pattern applied to synthesise the reference fidelities (the experimental
// numbers exist only graphically in the paper; the pattern's mean magnitude
// matches the reported 5.1% average fidelity difference).
var fig11Perturbations = []float64{
	+0.055, -0.048, +0.062, -0.039, +0.071, -0.058, +0.044, -0.066, +0.051,
	-0.043, +0.057, -0.061, +0.036, -0.052, +0.068, -0.047, +0.059, -0.041,
}

// ModelFidelity predicts one benchmark's fidelity on one machine. Unknown
// benchmarks, undersized instances and pipeline failures come back as
// wrapped errors (ErrInvalidConfig and friends) instead of panics.
func ModelFidelity(m Machine, bench string, n int) (float64, error) {
	prog, err := workloads.Generate(bench, n)
	if err != nil {
		return 0, fmt.Errorf("validate: generate %s(%d): %w", bench, n, err)
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		return 0, fmt.Errorf("validate: compile %s(%d): %w", bench, n, err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		return 0, fmt.Errorf("validate: simulate %s(%d): %w", bench, n, err)
	}
	return pauli.ESP(res, pauli.DefaultConfig(m.Rates)), nil
}

// Fig11Workloads validates workload-level fidelity across machines and
// benchmarks; rows are "machine/benchmark". Any pipeline failure aborts the
// campaign with a wrapped error naming the failing machine/benchmark pair.
func Fig11Workloads() ([]Row, error) {
	sizes := BenchmarkSizes()
	var rows []Row
	i := 0
	for _, m := range Machines() {
		for _, b := range workloads.Names() {
			model, err := ModelFidelity(m, b, sizes[b])
			if err != nil {
				return nil, fmt.Errorf("validate: fig11 %s/%s: %w", m.Name, b, err)
			}
			pert := fig11Perturbations[i%len(fig11Perturbations)]
			i++
			ref := model * (1 + pert)
			if ref > 1 {
				ref = 1
			}
			rows = append(rows, Row{Name: m.Name + "/" + b, Reference: ref, Model: model})
		}
	}
	return rows, nil
}

func defaultWashingtonChain() washingtonChain {
	return washingtonChain{t1: 100e-6}
}

type washingtonChain struct{ t1 float64 }

// binCountingAt evaluates the CMOS readout error with the reference
// machine's T1 in the decay channel: the qubit is exposed through the whole
// 517 ns window (ring-up included).
func binCountingAt(w washingtonChain) float64 {
	ch := readoutChain()
	ch.DecayProb = 517e-9 / w.t1
	return binErr(ch)
}
