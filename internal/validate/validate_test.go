package validate

import (
	"strings"
	"testing"
)

func TestFig8AccuracyBand(t *testing.T) {
	rows := Fig8CMOSPower()
	if len(rows) != 3 {
		t.Fatalf("expected 3 Horse Ridge comparisons, got %d", len(rows))
	}
	// Paper: 5.1% maximum error (in the RX circuit).
	if e := MaxError(rows); e > 0.065 {
		t.Fatalf("Fig. 8 max error %.3f exceeds the published accuracy band", e)
	}
	// RX must be the worst row, as in the paper.
	worst := rows[0]
	for _, r := range rows {
		if r.Error() > worst.Error() {
			worst = r
		}
	}
	if !strings.Contains(worst.Name, "rx") {
		t.Errorf("worst Fig. 8 row is %q, paper reports RX", worst.Name)
	}
}

func TestFig10AccuracyBands(t *testing.T) {
	freq, power := Fig10SFQ()
	if len(freq) != 4 || len(power) != 4 {
		t.Fatal("expected 4 circuits in each Fig. 10 panel")
	}
	// Paper: 6.7% (frequency) and 7.2% (power) maximum errors.
	if e := MaxError(freq); e > 0.08 {
		t.Fatalf("Fig. 10 frequency max error %.3f too high", e)
	}
	if e := MaxError(power); e > 0.085 {
		t.Fatalf("Fig. 10 power max error %.3f too high", e)
	}
	// Circuit fmax must clear the 24 GHz clock requirement at least for the
	// per-qubit controller (the others are internally pipelined).
	for _, r := range freq {
		if r.Model <= 10 {
			t.Fatalf("%s fmax %.1f GHz implausibly low", r.Name, r.Model)
		}
	}
}

func TestTable1AccuracyBands(t *testing.T) {
	rows := Table1GateErrors()
	if len(rows) != 5 {
		t.Fatalf("Table 1 must have 5 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// The paper's own Table 1 deviations reach 21% (CZ, within the
		// reference's experimental error bar); hold every row within 30%.
		if r.Error() > 0.30 {
			t.Errorf("%s: model %.3g vs reference %.3g (%.0f%%)", r.Name, r.Model, r.Reference, 100*r.Error())
		}
		if r.Model <= 0 {
			t.Errorf("%s: non-positive model value", r.Name)
		}
	}
}

func TestTable1OrderOfMagnitude(t *testing.T) {
	// Each error class sits in its Table 1 decade.
	rows := Table1GateErrors()
	decades := map[string][2]float64{
		"CMOS 1Q (ibm_peekskill)":       {1e-5, 1e-4},
		"SFQ 1Q (Li et al.)":            {1e-6, 1e-4},
		"2Q CZ (Sung et al.)":           {1e-4, 1e-2},
		"CMOS readout (ibm_washington)": {1e-4, 1e-2},
		"SFQ readout (Opremcak et al.)": {1e-3, 1e-2},
	}
	for _, r := range rows {
		band := decades[r.Name]
		if r.Model < band[0] || r.Model > band[1] {
			t.Errorf("%s: model %.3g outside decade [%g, %g]", r.Name, r.Model, band[0], band[1])
		}
	}
}

func TestFig11AverageDifference(t *testing.T) {
	rows, err := Fig11Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 45 {
		t.Fatalf("Fig. 11 should compare 9 benchmarks x 5 machines, got %d", len(rows))
	}
	// Paper: 5.1% average fidelity difference.
	mean := MeanError(rows)
	if mean < 0.02 || mean > 0.08 {
		t.Fatalf("Fig. 11 mean difference %.3f, want ~0.051", mean)
	}
	for _, r := range rows {
		if r.Model <= 0 || r.Model > 1 || r.Reference <= 0 || r.Reference > 1 {
			t.Fatalf("%s: fidelities out of range (%v, %v)", r.Name, r.Model, r.Reference)
		}
	}
}

func TestFig11MachineOrdering(t *testing.T) {
	// ibm_peekskill (best published error rates) must beat ibm_washington
	// on average — the model must capture machine quality.
	sizes := BenchmarkSizes()
	var wash, peek float64
	for b, n := range sizes {
		w, err := ModelFidelity(Machines()[0], b, n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ModelFidelity(Machines()[4], b, n)
		if err != nil {
			t.Fatal(err)
		}
		wash += w
		peek += p
	}
	if peek <= wash {
		t.Fatalf("peekskill (%f) should outperform washington (%f)", peek, wash)
	}
}

func TestReportRendering(t *testing.T) {
	s := Report("fig8", Fig8CMOSPower())
	if !strings.Contains(s, "fig8") || !strings.Contains(s, "drive") {
		t.Fatalf("report malformed:\n%s", s)
	}
}

func TestRowErrorZeroReference(t *testing.T) {
	r := Row{Reference: 0, Model: 1}
	if r.Error() != 0 {
		t.Fatal("zero reference should not divide by zero")
	}
}
