package qcp

import (
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/qasm"
)

func TestTranslateMemoryProgram(t *testing.T) {
	l := lattice.NewLayout(2, 3)
	tr := NewTranslator(l)
	pr := lattice.MemoryProgram(l, 2)
	prog, err := tr.Translate(pr)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NQubits != tr.TotalQubits() {
		t.Fatalf("physical qubits %d, want %d", prog.NQubits, tr.TotalQubits())
	}
	// Every round measures all ancillas of the involved patch.
	na := tr.PatchQubits() - l.D*l.D
	_, rounds, _ := pr.ScheduleAll()
	want := rounds * na
	if prog.NClbits != want {
		t.Fatalf("measurements %d, want %d", prog.NClbits, want)
	}
	// Emitted QASM must re-parse.
	if _, err := qasm.Parse(qasm.Emit(prog)); err != nil {
		t.Fatalf("translated program does not round-trip: %v", err)
	}
}

func TestRunLogicalCNOTOnQCI(t *testing.T) {
	l := lattice.NewLayout(3, 3)
	tr := NewTranslator(l)
	pr := lattice.CNOTProgram(l, 0, 1, 2)
	rr, err := tr.Run(pr, cyclesim.CMOSConfig(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Physical.TotalTime <= 0 {
		t.Fatal("zero execution time")
	}
	if rr.Rounds != 2*3+3 {
		t.Fatalf("CNOT rounds %d, want 9 at d=3", rr.Rounds)
	}
	// A round on this QCI takes between 0.5 and 3 µs.
	if rr.RoundTime < 500e-9 || rr.RoundTime > 3e-6 {
		t.Fatalf("measured round time %.0f ns implausible", rr.RoundTime*1e9)
	}
}

func TestMeasuredRoundTimeMatchesAnalyticModel(t *testing.T) {
	// The calibrated analytic RoundTiming (used by the scalability
	// analysis) and the cycle-accurate measurement must agree within the
	// cross-check band.
	l := lattice.NewLayout(1, 5)
	tr := NewTranslator(l)
	pr := lattice.MemoryProgram(l, 4)
	rr, err := tr.Run(pr, cyclesim.CMOSConfig(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	model := microarch.CMOS4KBaseline().RoundTiming().RoundTime()
	if err := ValidateAgainstModel(rr.RoundTime, model); err != nil {
		t.Fatal(err)
	}
}

func TestSFQRunFasterSingleQLayer(t *testing.T) {
	// On the SFQ QCI, the broadcast drive keeps rounds shorter than the
	// FDM-serialised CMOS drive for the same program.
	l := lattice.NewLayout(1, 5)
	tr := NewTranslator(l)
	pr := lattice.MemoryProgram(l, 3)
	cm, err := tr.Run(pr, cyclesim.CMOSConfig(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sf, err := tr.Run(pr, cyclesim.SFQConfig(1), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sf.RoundTime >= cm.RoundTime {
		t.Fatalf("SFQ round %.0f ns should beat CMOS %.0f ns", sf.RoundTime*1e9, cm.RoundTime*1e9)
	}
}

func TestValidateAgainstModelRejectsDivergence(t *testing.T) {
	if err := ValidateAgainstModel(1e-6, 1e-7); err == nil {
		t.Fatal("10x divergence must be rejected")
	}
	if err := ValidateAgainstModel(1e-6, 1.2e-6); err != nil {
		t.Fatal(err)
	}
}
