package qcp

import (
	"fmt"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/isa"
)

// StreamStats summarises the encoded 300 K→4 K instruction stream of an
// executed program: the actual bits the QCP ships to the QCI, per class.
type StreamStats struct {
	DriveWords, PulseWords, ReadoutWords int
	DriveBits, PulseBits, ReadoutBits    int
	TotalBits                            int
	// MeasuredBandwidthBps is TotalBits over the schedule's makespan.
	MeasuredBandwidthBps float64
}

// EncodeStream walks a cycle-accurate schedule and encodes every physical
// operation into its instruction word using the extended-drive, mask-pulse
// and grouped-readout formats — the bit-level counterpart of the analytic
// bandwidth model in internal/isa. Pulse and readout instructions are
// issued per group per start time (the mask covers the group).
func EncodeStream(res *cyclesim.Result, driveGroup, readoutGroup int) (StreamStats, error) {
	var st StreamStats
	pulse := isa.PulseISA(driveGroup)
	ro := isa.ReadoutISA(readoutGroup)

	// Pulse/readout issues deduplicate by (group, start).
	type key struct {
		group int
		start float64
	}
	pulseSeen := map[key]bool{}
	roSeen := map[key]bool{}

	for _, op := range res.Ops {
		switch op.Kind {
		case compile.OneQ:
			if op.Virtual {
				// Virtual Rz still ships a drive word (rz-mode set) but the
				// angle reuses the gate-address field: same width.
			}
			w, err := isa.EncodeDrive(isa.DriveInstr{
				// Cycle timestamp modulo the 24-bit field (the QCP re-bases
				// the epoch every wrap, as real controllers do).
				StartTime: uint64(op.Start*2.5e9) & ((1 << 24) - 1),
				Target:    op.Qubit % 32,
				GateAddr:  0,
				RzMode:    op.Virtual,
			})
			if err != nil {
				return st, fmt.Errorf("qcp: drive encode: %w", err)
			}
			st.DriveWords++
			st.DriveBits += w.Width
		case compile.TwoQ:
			if op.Qubit > op.Partner {
				continue // count each CZ once
			}
			k := key{op.Qubit / driveGroup, op.Start}
			if pulseSeen[k] {
				continue
			}
			pulseSeen[k] = true
			st.PulseWords++
			st.PulseBits += pulse.Bits()
		case compile.Measure:
			k := key{op.Qubit / readoutGroup, op.Start}
			if roSeen[k] {
				continue
			}
			roSeen[k] = true
			st.ReadoutWords++
			st.ReadoutBits += ro.Bits()
		}
	}
	st.TotalBits = st.DriveBits + st.PulseBits + st.ReadoutBits
	if res.TotalTime > 0 {
		st.MeasuredBandwidthBps = float64(st.TotalBits) / res.TotalTime
	}
	return st, nil
}

// BandwidthPerQubit normalises the measured bandwidth by qubit count.
func (s StreamStats) BandwidthPerQubit(nQubits int) float64 {
	if nQubits == 0 {
		return 0
	}
	return s.MeasuredBandwidthBps / float64(nQubits)
}
