package qcp

import (
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/isa"
	"qisim/internal/lattice"
)

func esmRun(t *testing.T, d int) (*cyclesim.Result, int) {
	t.Helper()
	l := lattice.NewLayout(1, d)
	tr := NewTranslator(l)
	rr, err := tr.Run(lattice.MemoryProgram(l, 2), cyclesim.CMOSConfig(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rr.Physical, tr.TotalQubits()
}

func TestEncodeStreamCounts(t *testing.T) {
	res, _ := esmRun(t, 5)
	st, err := EncodeStream(res, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.DriveWords == 0 || st.PulseWords == 0 || st.ReadoutWords == 0 {
		t.Fatalf("every stream class must carry words: %+v", st)
	}
	if st.TotalBits != st.DriveBits+st.PulseBits+st.ReadoutBits {
		t.Fatal("bit accounting broken")
	}
	// Drive words carry the 43-bit extended format.
	if st.DriveBits != st.DriveWords*isa.ExtendedDrive().Bits() {
		t.Fatal("drive width accounting broken")
	}
}

func TestMeasuredBandwidthTracksAnalyticModel(t *testing.T) {
	// The bit-level encoded stream and the analytic isa bandwidth model
	// must agree within a small factor (the analytic model normalises per
	// ESM round; the measured stream includes the real schedule).
	res, nq := esmRun(t, 7)
	st, err := EncodeStream(res, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	measured := st.BandwidthPerQubit(nq)
	round := res.TotalTime / 2 // two ESM rounds
	analytic := isa.BaselineCMOSBandwidth(round)
	ratio := measured / analytic
	if ratio < 0.1 || ratio > 3 {
		t.Fatalf("measured %.3g b/s/qubit vs analytic %.3g diverge (%.2fx)", measured, analytic, ratio)
	}
}

func TestEncodeStreamDedupesGroupIssues(t *testing.T) {
	// Two qubits of the same readout group measured at the same start must
	// share one readout word.
	res, _ := esmRun(t, 3)
	st, _ := EncodeStream(res, 32, 8)
	measures := 0
	for _, op := range res.Ops {
		if op.Kind == compile.Measure {
			measures++
		}
	}
	if st.ReadoutWords >= measures {
		t.Fatalf("grouped readout should dedupe: %d words for %d measures", st.ReadoutWords, measures)
	}
}
