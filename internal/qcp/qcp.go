// Package qcp is the quantum-control-processor interface of Section 7.2:
// the layer an XQsim-class QCP occupies between logical instructions and the
// QCI. It translates lattice-surgery operations (internal/lattice) into
// physical gate streams — per-round ESM circuits over the involved patches —
// and feeds them to the cycle-accurate simulator, closing the loop from
// logical program to physical timing and activity.
package qcp

import (
	"fmt"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/lattice"
	"qisim/internal/qasm"
	"qisim/internal/surface"
)

// Translator lowers logical programs onto a physical qubit map: each patch
// owns a contiguous block of TotalQubits() physical indices.
type Translator struct {
	Layout lattice.Layout
	patch  *surface.Patch
}

// NewTranslator builds a translator for a layout.
func NewTranslator(l lattice.Layout) *Translator {
	return &Translator{Layout: l, patch: surface.NewPatch(l.D)}
}

// PatchQubits returns the physical qubits per patch (data + ancilla).
func (t *Translator) PatchQubits() int { return t.patch.TotalQubits() }

// TotalQubits returns the machine's physical qubit count.
func (t *Translator) TotalQubits() int {
	return t.Layout.LogicalQubits() * t.PatchQubits()
}

// base returns the physical index base of a patch.
func (t *Translator) base(patchIdx int) int { return patchIdx * t.PatchQubits() }

// appendESMRound emits one ESM round on the given patch into the program.
func (t *Translator) appendESMRound(prog *qasm.Program, patchIdx int, cbit *int) {
	b := t.base(patchIdx)
	for _, op := range t.patch.ESMCircuit() {
		switch op.Kind {
		case "h":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{b + op.Q}, CBit: -1})
		case "cz":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{b + op.Q, b + op.Q2}, CBit: -1})
		case "measure":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{b + op.Q}, CBit: *cbit})
			*cbit++
		}
	}
}

// Translate lowers a logical program into the full physical circuit: every
// phase of every scheduled operation becomes that many ESM rounds over its
// involved patches, with barriers separating rounds (the QCP's round
// boundary).
func (t *Translator) Translate(pr lattice.Program) (*qasm.Program, error) {
	ops, _, err := pr.ScheduleAll()
	if err != nil {
		return nil, err
	}
	prog := &qasm.Program{NQubits: t.TotalQubits()}
	cbit := 0
	for _, op := range ops {
		for _, ph := range op.Phases {
			for r := 0; r < ph.Rounds; r++ {
				for _, p := range ph.Patches {
					t.appendESMRound(prog, p, &cbit)
				}
				prog.Gates = append(prog.Gates, qasm.Gate{Name: "barrier", CBit: -1})
			}
		}
	}
	prog.NClbits = cbit
	return prog, nil
}

// RunResult couples the physical simulation with logical accounting.
type RunResult struct {
	Physical  *cyclesim.Result
	Rounds    int
	RoundTime float64 // measured mean time per ESM round
}

// Run translates a logical program and executes it on a QCI configuration —
// the end-to-end QCP→QCI pipeline.
func (t *Translator) Run(pr lattice.Program, cfg cyclesim.Config, opt compile.Options) (RunResult, error) {
	prog, err := t.Translate(pr)
	if err != nil {
		return RunResult{}, err
	}
	ex, err := compile.Compile(prog, opt)
	if err != nil {
		return RunResult{}, err
	}
	res, err := cyclesim.Run(ex, cfg)
	if err != nil {
		return RunResult{}, err
	}
	_, rounds, err := pr.ScheduleAll()
	if err != nil {
		return RunResult{}, err
	}
	rr := RunResult{Physical: res, Rounds: rounds}
	if rounds > 0 {
		rr.RoundTime = res.TotalTime / float64(rounds)
	}
	return rr, nil
}

// ValidateAgainstModel compares the measured per-round time with the
// analytic RoundTiming model for a design — the cross-check between the
// cycle-accurate simulator and the calibrated analytic timing the
// scalability analysis uses.
func ValidateAgainstModel(measured, modeled float64) error {
	if measured <= 0 || modeled <= 0 {
		return fmt.Errorf("qcp: non-positive round times %v / %v", measured, modeled)
	}
	ratio := measured / modeled
	if ratio < 0.3 || ratio > 3 {
		return fmt.Errorf("qcp: measured round time %.0f ns and model %.0f ns diverge beyond 3x",
			measured*1e9, modeled*1e9)
	}
	return nil
}
