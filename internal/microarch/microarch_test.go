package microarch

import (
	"math"
	"testing"

	"qisim/internal/jpm"
	"qisim/internal/wiring"
)

func TestDesignInventoryComplete(t *testing.T) {
	ds := AllDesigns()
	if len(ds) != 12 {
		t.Fatalf("design inventory has %d entries, want 12", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name] {
			t.Fatalf("duplicate design name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestRoundTimes(t *testing.T) {
	cases := []struct {
		d      Design
		wantNS float64
		tolNS  float64
	}{
		{CMOS4KBaseline(), 1373.4, 2}, // 2·25·13.13 + 200 + 517
		{RSFQBaseline(), 915, 1},      // 50 + 200 + 665
		{RSFQNaiveSharing(), 5642, 1}, // 50 + 200 + 5392
		{RSFQOpt345(), 1505, 1},       // 50 + 200 + 1255
		{ERSFQOpt8(), 565.1, 2},       // 50 + 200 + ~315
		{CMOS4KAdvancedOpt67(), 916.2, 2},
	}
	for _, c := range cases {
		got := c.d.RoundTiming().RoundTime() * 1e9
		if math.Abs(got-c.wantNS) > c.tolNS {
			t.Errorf("%s round time %.1f ns, want %.1f", c.d.Name, got, c.wantNS)
		}
	}
}

func TestBaselineBindingStages(t *testing.T) {
	// Fig. 12/13 binding constraints.
	cases := []struct {
		d     Design
		stage wiring.Stage
	}{
		{Baseline300KCoax(), wiring.Stage100mK},
		{Baseline300KMicrostrip(), wiring.Stage100mK},
		{Baseline300KPhotonic(), wiring.Stage20mK},
		{CMOS4KBaseline(), wiring.Stage4K},
		{RSFQBaseline(), wiring.Stage20mK},
	}
	budgets := map[wiring.Stage]float64{wiring.Stage4K: 1.5, wiring.Stage100mK: 200e-6, wiring.Stage20mK: 20e-6}
	for _, c := range cases {
		pb := c.d.PerQubitPower()
		var worst wiring.Stage
		bestN := math.Inf(1)
		for st, w := range pb.StageW {
			if w <= 0 {
				continue
			}
			if n := budgets[st] / w; n < bestN {
				bestN, worst = n, st
			}
		}
		if worst != c.stage {
			t.Errorf("%s binding stage %v, want %v", c.d.Name, worst, c.stage)
		}
	}
}

func TestFig12QubitLimits(t *testing.T) {
	// 300 K QCIs: coax ≈400, microstrip ≈650, photonic ≈70 (ours ~34).
	limit := func(d Design) float64 {
		pb := d.PerQubitPower()
		return math.Min(math.Min(1.5/pb.StageW[wiring.Stage4K],
			200e-6/pb.StageW[wiring.Stage100mK]), 20e-6/pb.StageW[wiring.Stage20mK])
	}
	if n := limit(Baseline300KCoax()); n < 330 || n > 470 {
		t.Errorf("coax limit %.0f, want ~400", n)
	}
	if n := limit(Baseline300KMicrostrip()); n < 560 || n > 820 {
		t.Errorf("microstrip limit %.0f, want ~650", n)
	}
	if n := limit(Baseline300KPhotonic()); n < 20 || n > 110 {
		t.Errorf("photonic limit %.0f, want ~70 (ours ~34)", n)
	}
	// No 300 K design reaches 1,000 qubits (Section 6.2.1 conclusion).
	for _, d := range []Design{Baseline300KCoax(), Baseline300KMicrostrip(), Baseline300KPhotonic()} {
		if limit(d) >= 1000 {
			t.Errorf("%s should not reach 1,000 qubits", d.Name)
		}
	}
}

func TestOpt12LiftsCMOS(t *testing.T) {
	base := CMOS4KBaseline().PerQubitPower().StageW[wiring.Stage4K]
	opt := CMOS4KOpt12().PerQubitPower().StageW[wiring.Stage4K]
	nBase, nOpt := 1.5/base, 1.5/opt
	if nBase >= 700 {
		t.Errorf("baseline limit %.0f, want <700", nBase)
	}
	if nOpt < 1152 {
		t.Errorf("Opt-#1/2 limit %.0f must clear the 1,152 near-term target", nOpt)
	}
	if nOpt > 1600 {
		t.Errorf("Opt-#1/2 limit %.0f implausibly high (paper: 1,399)", nOpt)
	}
}

func TestAdvancedWireShare(t *testing.T) {
	// Fig. 18(a): wire power dominates the advanced design's 4 K power
	// (~81%).
	pb := CMOS4KAdvanced().PerQubitPower()
	share := pb.WireW / pb.StageW[wiring.Stage4K]
	if share < 0.70 || share > 0.90 {
		t.Fatalf("advanced wire share %.3f, want ~0.81", share)
	}
}

func TestOpt6CutsWirePower(t *testing.T) {
	base := CMOS4KAdvanced().PerQubitPower().WireW
	opt := CMOS4KAdvancedOpt6().PerQubitPower().WireW
	red := 1 - opt/base
	if red < 0.88 || red > 0.99 {
		t.Fatalf("Opt-#6 wire reduction %.3f, want ~0.93", red)
	}
}

func TestRSFQSharingPowerAndError(t *testing.T) {
	base := RSFQBaseline().PerQubitPower().StageW[wiring.Stage20mK]
	shared := RSFQOpt345().PerQubitPower().StageW[wiring.Stage20mK]
	if r := base / shared; r < 6.5 || r > 9.5 {
		t.Fatalf("Opt-#3 mK power reduction %.2f, want ~8x", r)
	}
	// Naive sharing wrecks the logical error (Fig. 15): 3.5e-7 vs 1.34e-13.
	naive := RSFQNaiveSharing().LogicalError(0)
	pipe := RSFQOpt345().LogicalError(0)
	if naive < 1e5*pipe {
		t.Fatalf("naive sharing p_L %.3g should dwarf pipelined %.3g", naive, pipe)
	}
}

func TestERSFQEliminatesPowerBottleneck(t *testing.T) {
	rsfq := RSFQOpt345().PerQubitPower()
	ersfq := ERSFQOpt8().PerQubitPower()
	if ersfq.DeviceW > rsfq.DeviceW/50 {
		t.Fatalf("ERSFQ device power %.3g should collapse vs RSFQ %.3g", ersfq.DeviceW, rsfq.DeviceW)
	}
	if ersfq.StageW[wiring.Stage20mK] > rsfq.StageW[wiring.Stage20mK]/50 {
		t.Fatal("ERSFQ mK power should collapse (zero static)")
	}
}

func TestOpt8ErrorReduction(t *testing.T) {
	pipe := RSFQOpt345().LogicalError(0)
	fast := ERSFQOpt8().LogicalError(0)
	ratio := pipe / fast
	if ratio < 5e3 || ratio > 1e5 {
		t.Fatalf("Opt-#8 logical-error reduction %.0fx, paper 28,355x", ratio)
	}
}

func TestFDMAccessors(t *testing.T) {
	if Baseline300KPhotonic().DriveFDM() != 1 {
		t.Fatal("photonic design uses per-qubit AWGs")
	}
	if CMOS4KBaseline().DriveFDM() != 32 || CMOS4KAdvancedOpt67().DriveFDM() != 20 {
		t.Fatal("CMOS FDM degrees wrong")
	}
	if RSFQBaseline().DriveFDM() != 8 {
		t.Fatal("SFQ drive group size wrong")
	}
}

func TestReadoutLatencies(t *testing.T) {
	if got := CMOS4KBaseline().ReadoutLatency(); math.Abs(got-517e-9) > 1e-12 {
		t.Fatalf("CMOS readout %v, want 517 ns", got)
	}
	if got := CMOS4KAdvancedOpt67().ReadoutLatency(); math.Abs(got-306e-9) > 1e-12 {
		t.Fatalf("multi-round readout %v, want 306 ns", got)
	}
	if got := RSFQOpt345().ReadoutLatency(); math.Abs(got-1255e-9) > 2e-9 {
		t.Fatalf("pipelined readout %v, want 1,255 ns", got)
	}
}

func TestSFQBandwidthBelowCMOS(t *testing.T) {
	sfq := RSFQBaseline().InstructionBandwidth()
	cmos := CMOS4KBaseline().InstructionBandwidth()
	if sfq >= cmos {
		t.Fatal("SFQ broadcast ISA should need less bandwidth than Horse Ridge")
	}
}

func TestReadoutModeWiring(t *testing.T) {
	d := RSFQOpt345()
	if d.ReadoutMode != jpm.Pipelined || !d.LowPowerBitgen || d.DriveSpec.BS != 1 {
		t.Fatal("RSFQOpt345 must bundle Opt-#3, #4 and #5")
	}
}
