package microarch

import "testing"

func TestMeasuredDutiesPlausible(t *testing.T) {
	for _, d := range []Design{CMOS4KBaseline(), RSFQBaseline(), RSFQOpt345()} {
		m, err := d.MeasureESMDuties(7)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for name, v := range map[string]float64{"drive": m.Drive, "pulse": m.Pulse, "readout": m.Readout} {
			if v <= 0 || v > 1 {
				t.Fatalf("%s: %s duty %v out of range", d.Name, name, v)
			}
		}
		if m.RoundTime <= 0 {
			t.Fatalf("%s: zero round time", d.Name)
		}
	}
}

func TestDutyConsistencyAnalyticVsMeasured(t *testing.T) {
	// The analytic duty cycles feeding the power model must track the
	// cycle-accurate measurement within a small factor (the single-round
	// measurement saturates the readout units at 1.0, so allow ~3.5x).
	for _, d := range []Design{CMOS4KBaseline(), RSFQOpt345()} {
		rep, worst, err := d.DutyConsistency(9)
		if err != nil {
			t.Fatal(err)
		}
		if worst > 3.5 {
			t.Fatalf("duty mismatch beyond 3.5x: %s", rep)
		}
	}
}

func TestMeasuredSFQRoundMatchesAnalytic(t *testing.T) {
	// For the SFQ design (no FDM serialisation) the measured single-round
	// time must equal the analytic round time exactly.
	d := RSFQOpt345()
	m, err := d.MeasureESMDuties(7)
	if err != nil {
		t.Fatal(err)
	}
	want := d.RoundTiming().RoundTime()
	if diff := m.RoundTime - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("SFQ measured round %v vs analytic %v", m.RoundTime, want)
	}
}
