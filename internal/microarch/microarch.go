// Package microarch assembles full QCI design points — the five
// temperature/technology candidates of Fig. 3 plus every optimisation stage
// of Section 6 — from the device models (internal/cmos, internal/sfq), the
// wiring models (internal/wiring), the JPM readout pipeline (internal/jpm),
// and the ISA bandwidth accounting (internal/isa). Each design yields its
// per-qubit per-stage power, its ESM round timing, and its effective
// physical error rate, which internal/scalability converts into a maximum
// supportable qubit count.
package microarch

import (
	"fmt"

	"qisim/internal/cmos"
	"qisim/internal/isa"
	"qisim/internal/jpm"
	"qisim/internal/phys"
	"qisim/internal/sfq"
	"qisim/internal/surface"
	"qisim/internal/wiring"
)

// Family is the device-technology family of a QCI.
type Family int

const (
	// CMOS300K is a room-temperature CMOS QCI (cable choice varies).
	CMOS300K Family = iota
	// CMOS4K is the in-fridge CMOS QCI.
	CMOS4K
	// SFQ4K is the in-fridge SFQ QCI.
	SFQ4K
)

func (f Family) String() string {
	switch f {
	case CMOS300K:
		return "300K-CMOS"
	case CMOS4K:
		return "4K-CMOS"
	default:
		return "4K-SFQ"
	}
}

// Design is one fully specified QCI design point.
type Design struct {
	Name   string
	Family Family

	// CMOSCfg is the digital-part configuration for CMOS families.
	CMOSCfg cmos.QCIConfig
	// SFQTech and DriveSpec configure the SFQ family.
	SFQTech   sfq.Tech
	DriveSpec sfq.DriveSpec
	// LowPowerBitgen applies Opt-#4.
	LowPowerBitgen bool
	// ReadoutMode/FastDriving configure the JPM readout (Opt-#3/#8).
	ReadoutMode jpm.ShareMode
	FastDriving bool

	// SignalCable carries drive/pulse/readout signals to the mK stages.
	SignalCable wiring.CableType
	// SignalStages lists the stages the signal cables load. 300 K QCIs load
	// 4K+100mK+20mK; 4 K QCIs only 100mK+20mK.
	SignalStages []wiring.Stage
	// DataLink is the 300 K→4 K instruction link (4 K families only).
	DataLink *wiring.DataLink
	// MaskedISA applies Opt-#6 instruction masking.
	MaskedISA bool
	// MultiRound applies the Opt-#7 readout (306 ns expected latency).
	MultiRound bool

	// PerQubitAWG drops frequency multiplexing on the drive/TX (photonic
	// link designs, Section 3.2).
	PerQubitAWG bool

	// SignalActiveScale scales the Table 2 per-cable active loads, which
	// are specified for full-power microwaves. SFQ designs carry
	// microvolt-scale flux pulses, so their delivered signal power at the
	// mK stages is negligible (~0).
	SignalActiveScale float64

	// Offload70K applies the Section 7.3 extension: the drive and RX analog
	// front-ends move to the 30 W 70 K stage (with a cabling/driver
	// overhead), freeing 4 K budget. CMOS 4 K designs only.
	Offload70K bool
}

// offload70KOverhead is the power penalty of driving signals across the
// extra 70 K↔4 K boundary.
const offload70KOverhead = 1.2

// signalActive returns the effective active-load scale (default 1).
func (d Design) signalActive() float64 {
	if d.Family == SFQ4K {
		return d.SignalActiveScale // zero by construction for SFQ designs
	}
	if d.SignalActiveScale == 0 {
		return 1
	}
	return d.SignalActiveScale
}

// DriveFDM returns the effective drive multiplexing degree.
func (d Design) DriveFDM() int {
	if d.PerQubitAWG {
		return 1
	}
	if d.Family == SFQ4K {
		return d.DriveSpec.Qubits
	}
	return d.CMOSCfg.DriveFDM
}

// ReadoutFDM returns the readout multiplexing degree.
func (d Design) ReadoutFDM() int {
	if d.PerQubitAWG {
		return 1
	}
	if d.Family == SFQ4K {
		return 8
	}
	return d.CMOSCfg.ReadoutFDM
}

// ReadoutLatency returns the per-round readout latency of the design.
func (d Design) ReadoutLatency() float64 {
	if d.Family == SFQ4K {
		p := jpm.NewPipeline(d.ReadoutMode)
		p.FastDriving = d.FastDriving
		return p.TotalLatency()
	}
	if d.MultiRound {
		return 306e-9 // Opt-#7 expected latency (Fig. 19)
	}
	return phys.CMOSOperationSpecs().Readout.Latency
}

// RoundTiming returns the ESM round schedule of the design.
func (d Design) RoundTiming() surface.RoundTiming {
	t := surface.RoundTiming{
		OneQTime:           25e-9,
		TwoQTime:           50e-9,
		ReadoutTime:        d.ReadoutLatency(),
		DriveSerialization: 1,
	}
	if d.Family != SFQ4K && !d.PerQubitAWG {
		t.DriveSerialization = surface.CMOSSerialization(d.DriveFDM())
	}
	return t
}

// ErrorParams returns the calibrated effective-error coefficients.
func (d Design) ErrorParams() surface.ErrorParams {
	if d.Family == SFQ4K {
		return surface.SFQErrorParams()
	}
	return surface.CMOSErrorParams()
}

// LogicalError returns p_L at distance d23 for the design's round timing,
// with an optional extra gate error (bit-precision sweeps).
func (d Design) LogicalError(extraGateError float64) float64 {
	pr := surface.DefaultProjection()
	p := d.ErrorParams().Effective(d.RoundTiming().RoundTime(), extraGateError)
	return pr.Logical(p)
}

// dutyCycles returns the per-cable duty cycles of the ESM workload for the
// drive, pulse and readout lines (active-load scaling of Table 2).
func (d Design) dutyCycles() (drive, pulse, readout float64) {
	t := d.RoundTiming()
	round := t.RoundTime()
	ser := t.DriveSerialization
	if ser < 1 {
		ser = 1
	}
	drive = 2 * t.OneQTime * ser / round
	if drive > 1 {
		drive = 1
	}
	pulse = 4 * t.TwoQTime / round
	readout = t.ReadoutTime / round
	return
}

// signalCablesPerQubit returns the per-qubit signal-cable counts by line.
func (d Design) signalCablesPerQubit() (drive, pulse, tx, rx float64) {
	drive = 1 / float64(d.DriveFDM())
	pulse = 1
	tx = 1 / float64(d.ReadoutFDM())
	rx = 1 / float64(d.ReadoutFDM())
	return
}

// InstructionBandwidth returns the per-qubit 300 K→4 K bandwidth (bits/s).
func (d Design) InstructionBandwidth() float64 {
	round := d.RoundTiming().RoundTime()
	switch {
	case d.Family == SFQ4K:
		return isa.SFQBandwidth(round, d.DriveSpec.Qubits, d.DriveSpec.BS)
	case d.MaskedISA:
		return isa.MaskedCMOSBandwidth(round, d.DriveFDM())
	default:
		return isa.BaselineCMOSBandwidth(round)
	}
}

// PowerBreakdown is the per-qubit power accounting of a design.
type PowerBreakdown struct {
	// Device power at the QCI's own stage (4 K for in-fridge designs; the
	// 300 K device power is free).
	DeviceW float64
	// WireW is the 300 K→4 K instruction-link power (4 K families).
	WireW float64
	// StageW is the total per-qubit dissipation per temperature stage,
	// including device, wire, signal-cable, and mK-device terms.
	StageW map[wiring.Stage]float64
}

// PerQubitPower computes the design's per-qubit power at every stage under
// the ESM duty cycles.
func (d Design) PerQubitPower() PowerBreakdown {
	b := PowerBreakdown{StageW: map[wiring.Stage]float64{}}
	driveDuty, pulseDuty, roDuty := d.dutyCycles()
	nd, np, ntx, nrx := d.signalCablesPerQubit()

	if d.SignalCable.Name == wiring.PhotonicLink.Name {
		// Photonic link (Section 3.2): drive and TX fibers end in 20 mK
		// photodetectors (the active load); the RX path returns through a
		// passive mK EOM; the pulse line stays electrical microstrip (no
		// two-qubit photonic demonstration exists).
		ms := wiring.Microstrip
		for _, st := range d.SignalStages {
			fiber := d.SignalCable.Load(st)
			w := nd*fiber.At(driveDuty) + ntx*fiber.At(roDuty) + // fibers w/ PD
				nrx*fiber.PassiveW + // EOM return path: passive only
				np*ms.Load(st).At(pulseDuty) // electrical pulse line
			b.StageW[st] += w
		}
	} else {
		// Electrical signal cables load their listed stages.
		as := d.signalActive()
		for _, st := range d.SignalStages {
			l := d.SignalCable.Load(st)
			w := nd*l.At(driveDuty*as) + np*l.At(pulseDuty*as) + ntx*l.At(roDuty*as) + nrx*l.At(roDuty*as)
			b.StageW[st] += w
		}
	}

	switch d.Family {
	case CMOS4K:
		bd := cmos.Breakdown(d.CMOSCfg)
		b.DeviceW = bd.Total()
		if d.Offload70K {
			// Re-home the analog front-ends at 70 K (Section 7.3).
			moved := bd.DriveAnalog + bd.RXAnalog
			b.DeviceW -= moved
			b.StageW[wiring.Stage70K] += moved * offload70KOverhead
		}
		b.StageW[wiring.Stage4K] += b.DeviceW
		if d.DataLink != nil {
			b.WireW = d.DataLink.PowerAt4K(d.InstructionBandwidth())
			b.StageW[wiring.Stage4K] += b.WireW
		}
	case SFQ4K:
		b.DeviceW = d.sfqPerQubit4K()
		b.StageW[wiring.Stage4K] += b.DeviceW
		if d.DataLink != nil {
			b.WireW = d.DataLink.PowerAt4K(d.InstructionBandwidth())
			b.StageW[wiring.Stage4K] += b.WireW
		}
		// mK JPM readout device power.
		mk := sfq.MKJPMReadout(1)
		dev := sfq.MKDevice(d.SFQTech)
		per := mk.StaticPower(dev) + mk.DynamicPower(dev, 24e9*roDuty)
		if d.ReadoutMode != jpm.Unshared {
			per /= 8
		}
		b.StageW[wiring.Stage20mK] += per
	}
	return b
}

// sfqPerQubit4K sums the 4 K SFQ drive/pulse/readout circuits per qubit.
func (d Design) sfqPerQubit4K() float64 {
	dev := sfq.MITLLSFQ5ee(d.SFQTech)
	s := d.DriveSpec
	var group float64
	add := func(c *sfq.Circuit) {
		f := 24e9
		group += c.StaticPower(dev) + c.DynamicPower(dev, f)
	}
	add(sfq.ControlDataBuffer(s))
	if d.LowPowerBitgen {
		add(sfq.LowPowerBitstreamGenerator(s))
	} else {
		add(sfq.BitstreamGenerator(s))
	}
	add(sfq.BitstreamController(s))
	add(sfq.PerQubitController(s))
	add(sfq.PulseCircuit(s.Qubits, 4, 6))
	add(sfq.ReadoutFrontEnd(s.Qubits))
	return group / float64(s.Qubits)
}

func (d Design) String() string {
	return fmt.Sprintf("%s (%s)", d.Name, d.Family)
}

// ---- Design-point constructors (the Section 6 case studies) ----

func stages300K() []wiring.Stage {
	return []wiring.Stage{wiring.Stage4K, wiring.Stage100mK, wiring.Stage20mK}
}

func stagesMK() []wiring.Stage {
	return []wiring.Stage{wiring.Stage100mK, wiring.Stage20mK}
}

// Baseline300KCoax is today's room-temperature QCI with stainless coax
// (Fig. 12(a)).
func Baseline300KCoax() Design {
	return Design{
		Name: "300K-coax", Family: CMOS300K,
		CMOSCfg:      cmos.Baseline14nm(),
		SignalCable:  wiring.CoaxialCable,
		SignalStages: stages300K(),
	}
}

// Baseline300KMicrostrip swaps the coax for flexible microstrip (Fig. 12(b)).
func Baseline300KMicrostrip() Design {
	d := Baseline300KCoax()
	d.Name = "300K-microstrip"
	d.SignalCable = wiring.Microstrip
	return d
}

// Baseline300KPhotonic is the photonic-link QCI with per-qubit AWGs and
// 20 mK photodetectors (Fig. 12(c)).
func Baseline300KPhotonic() Design {
	d := Baseline300KCoax()
	d.Name = "300K-photonic"
	d.SignalCable = wiring.PhotonicLink
	d.PerQubitAWG = true
	return d
}

// CMOS4KBaseline is the Section 3.3 Horse-Ridge-derived 4 K CMOS QCI with
// superconducting coax to the mK stages (Fig. 13(a) baseline).
func CMOS4KBaseline() Design {
	link := wiring.DefaultDataLink()
	return Design{
		Name: "4K-CMOS-baseline", Family: CMOS4K,
		CMOSCfg:      cmos.Baseline14nm(),
		SignalCable:  wiring.SuperconductingCoax,
		SignalStages: stagesMK(),
		DataLink:     &link,
	}
}

// CMOS4KOpt12 applies Opt-#1 (memory-less decision unit) and Opt-#2 (6-bit
// drive) — the 1,399-qubit near-term design.
func CMOS4KOpt12() Design {
	d := CMOS4KBaseline()
	d.Name = "4K-CMOS-opt12"
	d.CMOSCfg = cmos.Optimized14nm()
	return d
}

// CMOS4KAdvanced applies the long-term technology (7 nm) and voltage
// scalings over Opt-#1/2, with superconducting microstrip (Fig. 17(a)).
func CMOS4KAdvanced() Design {
	d := CMOS4KOpt12()
	d.Name = "4K-CMOS-advanced"
	d.CMOSCfg = cmos.Advanced7nm()
	d.SignalCable = wiring.SuperconductingMicrostrip
	return d
}

// CMOS4KAdvancedOpt6 adds the FTQC-friendly instruction masking.
func CMOS4KAdvancedOpt6() Design {
	d := CMOS4KAdvanced()
	d.Name = "4K-CMOS-advanced-opt6"
	d.MaskedISA = true
	return d
}

// CMOS4KAdvancedOpt67 adds Opt-#7: FDM 32→20 and the fast multi-round
// readout — the 63,883-qubit design.
func CMOS4KAdvancedOpt67() Design {
	d := CMOS4KAdvancedOpt6()
	d.Name = "4K-CMOS-advanced-opt67"
	d.CMOSCfg.DriveFDM = 20
	d.MultiRound = true
	return d
}

// CMOS4KOpt12With70K is the Section 7.3 exploration: the Opt-#1/2 design
// with its analog front-ends re-homed at the 30 W 70 K stage.
func CMOS4KOpt12With70K() Design {
	d := CMOS4KOpt12()
	d.Name = "4K-CMOS-opt12+70K"
	d.Offload70K = true
	return d
}

// RSFQBaseline is the Section 3.4 RSFQ QCI with unshared JPM readout
// (Fig. 13(b) baseline).
func RSFQBaseline() Design {
	link := wiring.DefaultDataLink()
	return Design{
		Name: "RSFQ-baseline", Family: SFQ4K,
		SFQTech:     sfq.RSFQ,
		DriveSpec:   sfq.DefaultDriveSpec(),
		ReadoutMode: jpm.Unshared,
		// SFQ pulses are microvolt-scale: the flexible superconducting
		// microstrip carries them with negligible mK heat load, so the SFQ
		// QCI's mK power is dominated by the JPM readout devices (99.7%,
		// Section 6.3.2).
		SignalCable:  wiring.SuperconductingMicrostrip,
		SignalStages: stagesMK(),
		DataLink:     &link,
	}
}

// RSFQNaiveSharing shares the JPM readout without pipelining — the
// cautionary tale of Fig. 15.
func RSFQNaiveSharing() Design {
	d := RSFQBaseline()
	d.Name = "RSFQ-naive-sharing"
	d.ReadoutMode = jpm.NaiveShared
	return d
}

// RSFQOpt345 applies Opt-#3 (shared+pipelined readout), Opt-#4 (low-power
// bitgen) and Opt-#5 (#BS = 1) — the 1,248-qubit design.
func RSFQOpt345() Design {
	d := RSFQBaseline()
	d.Name = "RSFQ-opt345"
	d.ReadoutMode = jpm.Pipelined
	d.LowPowerBitgen = true
	d.DriveSpec.BS = 1
	return d
}

// ERSFQOpt8 is the long-term ERSFQ design with fast resonator driving and
// unshared readout — the 82,413-qubit design (Fig. 17(b)/20).
func ERSFQOpt8() Design {
	d := RSFQOpt345()
	d.Name = "ERSFQ-opt8"
	d.SFQTech = sfq.ERSFQ
	d.ReadoutMode = jpm.Unshared
	d.FastDriving = true
	return d
}

// AllDesigns returns every named design point of the Section 6 analysis.
func AllDesigns() []Design {
	return []Design{
		Baseline300KCoax(),
		Baseline300KMicrostrip(),
		Baseline300KPhotonic(),
		CMOS4KBaseline(),
		CMOS4KOpt12(),
		CMOS4KAdvanced(),
		CMOS4KAdvancedOpt6(),
		CMOS4KAdvancedOpt67(),
		RSFQBaseline(),
		RSFQNaiveSharing(),
		RSFQOpt345(),
		ERSFQOpt8(),
	}
}
