package microarch

import (
	"fmt"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/qasm"
	"qisim/internal/surface"
)

// MeasuredDuties runs one ESM round of a distance-d patch through the
// cycle-accurate simulator with this design's resources and returns the
// measured per-unit activity factors — the cross-check for the analytic
// duty cycles the power model uses (Section 4.2's "activity factor" output
// feeding Section 4.3's runtime-power model).
type MeasuredDuties struct {
	Drive, Pulse, Readout float64
	RoundTime             float64
}

// MeasureESMDuties simulates one ESM round at distance d on this design.
func (d Design) MeasureESMDuties(dist int) (MeasuredDuties, error) {
	patch := surface.NewPatch(dist)
	prog := &qasm.Program{NQubits: patch.TotalQubits()}
	c := 0
	for _, op := range patch.ESMCircuit() {
		switch op.Kind {
		case "h":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{op.Q}, CBit: -1})
		case "cz":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{op.Q, op.Q2}, CBit: -1})
		case "measure":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{op.Q}, CBit: c})
			c++
		}
	}
	prog.NClbits = c
	opt := compile.DefaultOptions()
	opt.ReadoutTime = d.ReadoutLatency()
	ex, err := compile.Compile(prog, opt)
	if err != nil {
		return MeasuredDuties{}, err
	}
	var cfg cyclesim.Config
	if d.Family == SFQ4K {
		cfg = cyclesim.SFQConfig(d.DriveSpec.BS)
	} else {
		cfg = cyclesim.CMOSConfig()
		cfg.DriveGroupSize = d.DriveFDM()
		cfg.ReadoutGroupSize = d.ReadoutFDM()
		cfg.ReadoutSlots = d.ReadoutFDM()
		if cfg.DriveGroupSize < 1 {
			cfg.DriveGroupSize = 1
		}
	}
	res, err := cyclesim.Run(ex, cfg)
	if err != nil {
		return MeasuredDuties{}, err
	}
	return MeasuredDuties{
		Drive:     res.ActivityFactor("drive"),
		Pulse:     res.ActivityFactor("pulse"),
		Readout:   res.ActivityFactor("readout"),
		RoundTime: res.TotalTime,
	}, nil
}

// DutyConsistency compares the analytic duty cycles against the measured
// ones at a given distance, returning a formatted report and the worst
// ratio.
func (d Design) DutyConsistency(dist int) (string, float64, error) {
	m, err := d.MeasureESMDuties(dist)
	if err != nil {
		return "", 0, err
	}
	aDrive, aPulse, aRO := d.dutyCycles()
	worst := 1.0
	cmp := func(a, b float64) float64 {
		if a <= 0 || b <= 0 {
			return 1
		}
		r := a / b
		if r < 1 {
			r = 1 / r
		}
		return r
	}
	for _, pair := range [][2]float64{{aDrive, m.Drive}, {aPulse, m.Pulse}, {aRO, m.Readout}} {
		if r := cmp(pair[0], pair[1]); r > worst {
			worst = r
		}
	}
	rep := fmt.Sprintf("%s d=%d: drive %.3f/%.3f  pulse %.3f/%.3f  readout %.3f/%.3f (analytic/measured), round %.0f ns",
		d.Name, dist, aDrive, m.Drive, aPulse, m.Pulse, aRO, m.Readout, m.RoundTime*1e9)
	return rep, worst, nil
}
