package ham

import (
	"math"
	"testing"

	"qisim/internal/cmath"
)

func TestLindbladPureDecay(t *testing.T) {
	// Single qubit, H = 0, jump √γ·σ-: excited population decays as e^{-γt}.
	gamma := 1e8
	sm := cmath.NewMatrix(2, 2)
	sm.Set(0, 1, complex(math.Sqrt(gamma), 0))
	l := NewLindblad(cmath.NewMatrix(2, 2), []*cmath.Matrix{sm})
	rho := cmath.NewMatrix(2, 2)
	rho.Set(1, 1, 1)
	tt := 10e-9
	final := l.Evolve(rho, tt, 1e-11)
	want := math.Exp(-gamma * tt)
	if got := real(final.At(1, 1)); math.Abs(got-want) > 1e-3 {
		t.Fatalf("excited population %v, want e^{-γt} = %v", got, want)
	}
	// Trace preserved.
	if tr := real(cmath.Trace(final)); math.Abs(tr-1) > 1e-6 {
		t.Fatalf("trace %v, want 1", tr)
	}
}

func TestLindbladDephasingKillsCoherence(t *testing.T) {
	// Jump √γ·σz dephases: off-diagonals decay as e^{-2γt}.
	gamma := 5e7
	sz := cmath.Scale(complex(math.Sqrt(gamma), 0), cmath.PauliZ())
	l := NewLindblad(cmath.NewMatrix(2, 2), []*cmath.Matrix{sz})
	rho := cmath.FromRows([][]complex128{{0.5, 0.5}, {0.5, 0.5}}) // |+><+|
	tt := 8e-9
	final := l.Evolve(rho, tt, 1e-11)
	want := 0.5 * math.Exp(-2*gamma*tt)
	if got := real(final.At(0, 1)); math.Abs(got-want) > 1e-3 {
		t.Fatalf("coherence %v, want %v", got, want)
	}
	// Populations untouched by pure dephasing.
	if math.Abs(real(final.At(0, 0))-0.5) > 1e-6 {
		t.Fatal("dephasing must not move population")
	}
}

func TestLindbladHamiltonianOnlyMatchesUnitary(t *testing.T) {
	// Without jumps the Lindblad evolution equals the unitary one.
	h := cmath.Scale(complex(2*math.Pi*50e6/2, 0), cmath.PauliX())
	l := NewLindblad(h, nil)
	rho := cmath.NewMatrix(2, 2)
	rho.Set(0, 0, 1)
	tt := 5e-9 // θ = 2π·50e6·5e-9 = π/2 worth of X rotation
	final := l.Evolve(rho, tt, 1e-12)
	u := cmath.Expm(cmath.Scale(complex(0, -tt), h))
	psi := u.ApplyTo(cmath.BasisVec(2, 0))
	wantP1 := real(psi[1])*real(psi[1]) + imag(psi[1])*imag(psi[1])
	if got := real(final.At(1, 1)); math.Abs(got-wantP1) > 1e-4 {
		t.Fatalf("P(1) = %v, want %v", got, wantP1)
	}
}

func TestJPMTunnelDarkStateQuiet(t *testing.T) {
	m := DefaultJPMTunnelModel()
	if p := m.TunnelProbability(0, 12.8e-9); p > 1e-6 {
		t.Fatalf("empty resonator must not tunnel the JPM, got %v", p)
	}
}

func TestJPMTunnelMonotoneInPhotons(t *testing.T) {
	// The bright (qubit |1>) resonator state tunnels the JPM far more often
	// than the residual dark occupation — the discrimination mechanism.
	m := DefaultJPMTunnelModel()
	prev := -1.0
	for _, nbar := range []float64{0, 0.05, 0.5, 1.5, 3.0} {
		p := m.TunnelProbability(nbar, 12.8e-9)
		if p < prev {
			t.Fatalf("tunnel probability not monotone at nbar=%v: %v < %v", nbar, p, prev)
		}
		prev = p
	}
	dark := m.TunnelProbability(0.05, 12.8e-9)
	bright := m.TunnelProbability(3.0, 12.8e-9)
	if bright < 10*dark {
		t.Fatalf("bright/dark contrast too low: %v vs %v", bright, dark)
	}
}

func TestJPMTunnelGrowsWithDuration(t *testing.T) {
	m := DefaultJPMTunnelModel()
	short := m.TunnelProbability(1.0, 4e-9)
	long := m.TunnelProbability(1.0, 12.8e-9)
	if long <= short {
		t.Fatalf("longer tunnelling stage should tunnel more: %v vs %v", long, short)
	}
}

func TestJPMTunnelDetuningSuppresses(t *testing.T) {
	// Off-resonance (flux pulse off) the JPM must stay quiet — the reset
	// stage's premise ("just turning off the JPM flux").
	m := DefaultJPMTunnelModel()
	on := m.TunnelProbability(1.5, 12.8e-9)
	m.DetuneHz = 1.5e9
	off := m.TunnelProbability(1.5, 12.8e-9)
	if off > on/5 {
		t.Fatalf("detuned JPM should be suppressed: %v vs %v", off, on)
	}
}
