// Package ham builds the Hamiltonians of QIsim's gate- and readout-error
// models and evolves them in time. All Hamiltonians are expressed in angular
// frequency units (rad/s) so that the propagator of a constant slice of
// duration dt is exp(-i·H·dt).
//
// Three physical systems are covered:
//
//   - a single driven transmon, truncated to Levels levels, in the frame
//     rotating at the drive frequency (CMOS/SFQ single-qubit gates),
//   - two coupled flux-tunable transmons with a time-dependent detuning
//     (the CZ gate of both CMOS and SFQ pulse circuits), and
//   - a dispersively coupled qubit–resonator pair treated semi-classically
//     (CMOS dispersive readout and SFQ resonator driving).
package ham

import (
	"math"

	"qisim/internal/cmath"
)

// TimeDependent is a Hamiltonian H(t) in rad/s.
type TimeDependent func(t float64) *cmath.Matrix

// Evolve integrates U(T) = T·exp(-i ∫ H dt) with piecewise-constant steps of
// size dt, evaluating H at the midpoint of each step (midpoint rule keeps the
// error O(dt²) per step for smooth drives).
func Evolve(h TimeDependent, total, dt float64) *cmath.Matrix {
	steps := int(math.Ceil(total / dt))
	if steps < 1 {
		steps = 1
	}
	dt = total / float64(steps)
	var u *cmath.Matrix
	for k := 0; k < steps; k++ {
		t := (float64(k) + 0.5) * dt
		hk := h(t)
		uk := cmath.Expm(cmath.Scale(complex(0, -dt), hk))
		if u == nil {
			u = uk
		} else {
			u = cmath.Mul(uk, u)
		}
	}
	return u
}

// EvolveSamples evolves under a piecewise-constant Hamiltonian defined by one
// matrix per digital sample of duration ts each.
func EvolveSamples(hs []*cmath.Matrix, ts float64) *cmath.Matrix {
	if len(hs) == 0 {
		panic("ham: EvolveSamples requires at least one sample")
	}
	u := cmath.Identity(hs[0].Rows)
	for _, hk := range hs {
		uk := cmath.Expm(cmath.Scale(complex(0, -ts), hk))
		u = cmath.Mul(uk, u)
	}
	return u
}

// EvolveWorkspace holds the scratch matrices repeated sample-evolutions
// need, so calibration searches (which re-run EvolveSamples hundreds of
// times on same-sized systems) allocate nothing after warm-up. The zero
// value is ready to use. The operation sequence of EvolveSamplesInto
// replays EvolveSamples exactly, so results are bit-identical.
type EvolveWorkspace struct {
	gen, uk, u, tmp *cmath.Matrix
	hs              []*cmath.Matrix
	expw            cmath.ExpmWorkspace
}

func (w *EvolveWorkspace) ensure(n int) {
	if w.gen == nil || w.gen.Rows != n {
		w.gen = cmath.NewMatrix(n, n)
		w.uk = cmath.NewMatrix(n, n)
		w.u = cmath.NewMatrix(n, n)
		w.tmp = cmath.NewMatrix(n, n)
	}
}

// HamiltonianBuffer returns n reusable dim×dim sample slots owned by the
// workspace, for callers that rebuild per-sample Hamiltonians in place with
// the *Into variants each evolution.
func (w *EvolveWorkspace) HamiltonianBuffer(n, dim int) []*cmath.Matrix {
	if len(w.hs) != n || (n > 0 && w.hs[0].Rows != dim) {
		w.hs = make([]*cmath.Matrix, n)
		for i := range w.hs {
			w.hs[i] = cmath.NewMatrix(dim, dim)
		}
	}
	return w.hs
}

// EvolveSamplesInto computes the same propagator as EvolveSamples into dst,
// reusing the workspace's scratch. dst must not be one of the hs samples.
func (w *EvolveWorkspace) EvolveSamplesInto(dst *cmath.Matrix, hs []*cmath.Matrix, ts float64) {
	if len(hs) == 0 {
		panic("ham: EvolveSamples requires at least one sample")
	}
	n := hs[0].Rows
	w.ensure(n)
	u, tmp := w.u, w.tmp
	for i := range u.Data {
		u.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		u.Data[i*n+i] = 1
	}
	s := complex(0, -ts)
	for _, hk := range hs {
		for i, v := range hk.Data {
			w.gen.Data[i] = s * v
		}
		w.expw.ExpmInto(w.uk, w.gen)
		cmath.MulInto(tmp, w.uk, u)
		u, tmp = tmp, u
	}
	copy(dst.Data, u.Data)
}

// DrivenTransmon models one transmon driven through its charge line, in the
// frame rotating at the drive frequency.
type DrivenTransmon struct {
	// Levels is the truncation of the transmon ladder (3 captures leakage).
	Levels int
	// DetuningRad is ω_q - ω_d in rad/s (0 for resonant drive).
	DetuningRad float64
	// AnharmonicityRad is the angular anharmonicity α (negative).
	AnharmonicityRad float64
	// RabiRad is the peak Rabi rate Ω in rad/s for unit envelope amplitude.
	RabiRad float64

	n, x, y *cmath.Matrix // cached operators
}

// NewDrivenTransmon builds the model and caches its operators.
func NewDrivenTransmon(levels int, detuningRad, anharmRad, rabiRad float64) *DrivenTransmon {
	d := &DrivenTransmon{
		Levels:           levels,
		DetuningRad:      detuningRad,
		AnharmonicityRad: anharmRad,
		RabiRad:          rabiRad,
	}
	a := cmath.Destroy(levels)
	ad := cmath.Create(levels)
	d.n = cmath.Mul(ad, a)
	d.x = cmath.Add(a, ad)                  // a + a†
	d.y = cmath.Scale(1i, cmath.Sub(ad, a)) // i(a† - a)
	return d
}

// Hamiltonian returns H for instantaneous I/Q drive amplitudes (unit scale):
//
//	H = Δ·n + (α/2)·n(n-1) + (Ω/2)·(I·(a+a†) + Q·i(a†-a))
func (d *DrivenTransmon) Hamiltonian(i, q float64) *cmath.Matrix {
	h := cmath.NewMatrix(d.Levels, d.Levels)
	d.HamiltonianInto(h, i, q)
	return h
}

// HamiltonianInto writes Hamiltonian(i, q) into h, which must be
// Levels×Levels. Results are bit-identical to Hamiltonian.
func (d *DrivenTransmon) HamiltonianInto(h *cmath.Matrix, i, q float64) {
	for idx := range h.Data {
		h.Data[idx] = 0
	}
	for k := 0; k < d.Levels; k++ {
		fk := float64(k)
		diag := d.DetuningRad*fk + d.AnharmonicityRad/2*fk*(fk-1)
		h.Set(k, k, complex(diag, 0))
	}
	cmath.AddInPlace(h, complex(d.RabiRad*i/2, 0), d.x)
	cmath.AddInPlace(h, complex(d.RabiRad*q/2, 0), d.y)
}

// RabiForRotation returns the peak Rabi rate (rad/s) that makes a pulse with
// the given envelope area (∫env dt over the gate, in seconds) produce a
// rotation of angle theta in the two-level subspace: Ω_peak = θ / area.
func RabiForRotation(theta, envelopeArea float64) float64 {
	return theta / envelopeArea
}

// CoupledTransmons models two flux-tunable transmons with exchange coupling g
// for the CZ gate. Qubit 1's frequency is pulsed; the model works in the
// frame rotating at each qubit's idle frequency, so the flux pulse appears as
// a time-dependent detuning δ(t) on qubit 1.
type CoupledTransmons struct {
	Levels     int     // per transmon
	Anharm1Rad float64 // α1 (the pulsed qubit)
	Anharm2Rad float64
	GRad       float64 // exchange coupling g in rad/s
	// IdleDetuningRad is qubit 1's idle detuning from qubit 2 (ω1-ω2 at zero
	// flux), which determines how far the pulse must travel to reach the
	// |11>↔|20> resonance at δ = -α1.
	IdleDetuningRad float64

	hStatic *cmath.Matrix
	n1      *cmath.Matrix
}

// NewCoupledTransmons builds the two-transmon model.
func NewCoupledTransmons(levels int, anharm1, anharm2, g, idleDetuning float64) *CoupledTransmons {
	c := &CoupledTransmons{
		Levels:          levels,
		Anharm1Rad:      anharm1,
		Anharm2Rad:      anharm2,
		GRad:            g,
		IdleDetuningRad: idleDetuning,
	}
	d := levels
	id := cmath.Identity(d)
	a := cmath.Destroy(d)
	ad := cmath.Create(d)
	n := cmath.Mul(ad, a)

	c.n1 = cmath.Kron(n, id)
	n2 := cmath.Kron(id, n)

	// Anharmonic terms (α/2)·n(n-1) for both transmons.
	anh := func(alpha float64, nOp *cmath.Matrix) *cmath.Matrix {
		nn := cmath.Mul(nOp, nOp)
		return cmath.Scale(complex(alpha/2, 0), cmath.Sub(nn, nOp))
	}
	h := cmath.Add(anh(anharm1, c.n1), anh(anharm2, n2))

	// Exchange coupling g(a1†a2 + a1a2†).
	coup := cmath.Add(cmath.Kron(ad, a), cmath.Kron(a, ad))
	cmath.AddInPlace(h, complex(g, 0), coup)
	c.hStatic = h
	return c
}

// ResonanceDetuning returns the qubit-1 detuning at which |11> and |20> are
// degenerate: δ = -α1.
func (c *CoupledTransmons) ResonanceDetuning() float64 { return -c.Anharm1Rad }

// CZHoldTime returns the |11>↔|20> half-oscillation time π/(√2·2g)... the
// coupling matrix element between |11> and |20> is √2·g, so a full 2π phase
// return takes t = 2π/(2·√2·g) = π/(√2·g).
func (c *CoupledTransmons) CZHoldTime() float64 {
	return math.Pi / (math.Sqrt2 * c.GRad)
}

// Hamiltonian returns H for a given instantaneous qubit-1 detuning δ(t)
// (rad/s relative to qubit 2).
func (c *CoupledTransmons) Hamiltonian(delta float64) *cmath.Matrix {
	h := c.hStatic.Clone()
	cmath.AddInPlace(h, complex(delta, 0), c.n1)
	return h
}

// HamiltonianInto writes Hamiltonian(delta) into h, which must match
// hStatic's shape. Results are bit-identical to Hamiltonian.
func (c *CoupledTransmons) HamiltonianInto(h *cmath.Matrix, delta float64) {
	copy(h.Data, c.hStatic.Data)
	cmath.AddInPlace(h, complex(delta, 0), c.n1)
}

// IdealCZ returns the target two-qubit unitary in the computational basis,
// with single-qubit phases removed (the QCI tracks those in software via
// virtual Rz).
func IdealCZ() *cmath.Matrix { return cmath.CZ() }

// StripSingleQubitPhases removes the single-qubit Z phases from a 4x4
// two-qubit diagonal-dominant unitary, returning the entangling part. This
// mirrors the standard CZ calibration convention: phases on |01> and |10> are
// absorbed into virtual Rz, leaving the conditional phase on |11>.
func StripSingleQubitPhases(u *cmath.Matrix) *cmath.Matrix {
	if u.Rows != 4 || u.Cols != 4 {
		panic("ham: StripSingleQubitPhases requires a 4x4 matrix")
	}
	phase := func(v complex128) float64 { return math.Atan2(imag(v), real(v)) }
	p00 := phase(u.At(0, 0))
	p01 := phase(u.At(1, 1)) - p00
	p10 := phase(u.At(2, 2)) - p00
	corr := cmath.NewMatrix(4, 4)
	ph := []float64{-p00, -p00 - p01, -p00 - p10, -p00 - p01 - p10}
	for k := 0; k < 4; k++ {
		corr.Set(k, k, complex(math.Cos(ph[k]), math.Sin(ph[k])))
	}
	return cmath.Mul(corr, u)
}

// DispersiveResonator is the semi-classical cavity model used by the readout
// error models: a driven, damped oscillator whose frequency is pulled by ±χ
// depending on the qubit state. The coherent-state amplitude α(t) obeys
//
//	dα/dt = -i(Δr ± χ)·α - (κ/2)·α - i·ε(t)
type DispersiveResonator struct {
	DetuningRad float64 // resonator-drive detuning Δr (rad/s)
	ChiRad      float64 // dispersive shift χ (rad/s)
	KappaRad    float64 // linewidth κ (rad/s)
}

// Trajectory integrates α(t) over n steps of dt for the given qubit state
// (+1 → qubit |1>, -1 → qubit |0>) and drive amplitude ε(t) (rad/s), using
// the exact per-step solution of the linear ODE with constant drive.
func (r DispersiveResonator) Trajectory(qubitSign float64, eps func(t float64) float64, n int, dt float64) []complex128 {
	out := make([]complex128, n)
	lam := complex(-r.KappaRad/2, -(r.DetuningRad + qubitSign*r.ChiRad))
	var alpha complex128
	for k := 0; k < n; k++ {
		t := float64(k) * dt
		e := complex(0, -eps(t))
		// α(t+dt) = e^{λ dt}α + (e^{λ dt}-1)/λ · (-iε)
		eld := cexp(lam * complex(dt, 0))
		if lam != 0 {
			alpha = eld*alpha + (eld-1)/lam*e
		} else {
			alpha += e * complex(dt, 0)
		}
		out[k] = alpha
	}
	return out
}

// SteadyState returns the steady-state amplitude for constant drive eps.
func (r DispersiveResonator) SteadyState(qubitSign, eps float64) complex128 {
	lam := complex(-r.KappaRad/2, -(r.DetuningRad + qubitSign*r.ChiRad))
	return complex(0, -eps) / (-lam)
}

func cexp(z complex128) complex128 {
	e := math.Exp(real(z))
	return complex(e*math.Cos(imag(z)), e*math.Sin(imag(z)))
}
