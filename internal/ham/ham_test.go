package ham

import (
	"math"
	"math/cmplx"
	"testing"

	"qisim/internal/cmath"
)

func TestEvolveConstantHamiltonian(t *testing.T) {
	// H = (Ω/2)·X drives a Rabi rotation: U(T) = Rx(ΩT).
	omega := 2 * math.Pi * 10e6
	h := func(t float64) *cmath.Matrix {
		return cmath.Scale(complex(omega/2, 0), cmath.PauliX())
	}
	total := 25e-9
	u := Evolve(h, total, total/200)
	want := cmath.Rx(omega * total)
	if e := cmath.GateError(want, u); e > 1e-8 {
		t.Fatalf("constant-H evolution error %g", e)
	}
}

func TestEvolveUnitarity(t *testing.T) {
	h := func(t float64) *cmath.Matrix {
		m := cmath.Scale(complex(math.Sin(t*1e9)*1e8, 0), cmath.PauliX())
		cmath.AddInPlace(m, complex(math.Cos(t*1e9)*1e8, 0), cmath.PauliZ())
		return m
	}
	u := Evolve(h, 50e-9, 0.1e-9)
	if !cmath.IsUnitary(u, 1e-8) {
		t.Fatal("evolution must be unitary")
	}
}

func TestDrivenTransmonPiPulse(t *testing.T) {
	// Resonant square pulse with area π must flip the qubit (ideal 2-level).
	d := NewDrivenTransmon(2, 0, 0, 0)
	gate := 25e-9
	rabi := RabiForRotation(math.Pi, gate) // square envelope: area = T
	d.RabiRad = rabi
	h := func(t float64) *cmath.Matrix { return d.Hamiltonian(1, 0) }
	u := Evolve(h, gate, gate/500)
	// |0> → |1> up to phase.
	v := u.ApplyTo(cmath.BasisVec(2, 0))
	if p := cmplx.Abs(v[1]); math.Abs(p-1) > 1e-6 {
		t.Fatalf("π pulse |1> population = %v, want 1", p*p)
	}
}

func TestDrivenTransmonLeakage(t *testing.T) {
	// On a 3-level transmon, a fast pulse leaks more than a slow one.
	leak := func(gate float64) float64 {
		alpha := -2 * math.Pi * 330e6
		d := NewDrivenTransmon(3, 0, alpha, RabiForRotation(math.Pi, gate/2)) // cosine env area = T/2
		env := func(t float64) float64 { return 0.5 * (1 - math.Cos(2*math.Pi*t/gate)) }
		h := func(t float64) *cmath.Matrix { return d.Hamiltonian(env(t), 0) }
		u := Evolve(h, gate, gate/400)
		v := u.ApplyTo(cmath.BasisVec(3, 0))
		return real(v[2])*real(v[2]) + imag(v[2])*imag(v[2])
	}
	fast, slow := leak(5e-9), leak(50e-9)
	if fast <= slow {
		t.Fatalf("faster gate should leak more: fast=%g slow=%g", fast, slow)
	}
	if slow > 1e-3 {
		t.Fatalf("slow-gate leakage %g implausibly high", slow)
	}
}

func TestDrivenTransmonQPhaseAxis(t *testing.T) {
	// Driving on Q instead of I rotates about Y instead of X.
	d := NewDrivenTransmon(2, 0, 0, RabiForRotation(math.Pi/2, 25e-9))
	h := func(t float64) *cmath.Matrix { return d.Hamiltonian(0, 1) }
	u := Evolve(h, 25e-9, 25e-9/400)
	if e := cmath.GateError(cmath.Ry(math.Pi/2), u); e > 1e-7 {
		t.Fatalf("Q drive should give Ry, error %g", e)
	}
}

func TestCoupledTransmonsCZResonance(t *testing.T) {
	// At δ = -α1, holding for CZHoldTime returns |11> with a -1 phase
	// (conditional phase π): the textbook CZ.
	alpha := -2 * math.Pi * 300e6
	g := 2 * math.Pi * 20e6
	c := NewCoupledTransmons(3, alpha, alpha, g, 2*math.Pi*800e6)
	hold := c.CZHoldTime()
	h := func(t float64) *cmath.Matrix { return c.Hamiltonian(c.ResonanceDetuning()) }
	u := Evolve(h, hold, hold/2000)
	u4 := cmath.QubitSubspace2(u, 3)
	u4 = StripSingleQubitPhases(u4)
	// A sudden (unramped) resonance hold leaves ~(g/Δ)² residual exchange in
	// the single-excitation manifold, so expect ~1e-2, not an ideal gate; the
	// gateerror package's calibrated ramped pulse drives this much lower.
	if e := cmath.GateError(IdealCZ(), u4); e > 2e-2 {
		t.Fatalf("resonant hold should approximate CZ, error %g", e)
	}
	// The conditional phase on |11> must be π (the entangling part is right).
	condPhase := math.Atan2(imag(u4.At(3, 3)), real(u4.At(3, 3)))
	if math.Abs(math.Abs(condPhase)-math.Pi) > 0.1 {
		t.Fatalf("conditional phase %v, want ±π", condPhase)
	}
}

func TestCZHoldTimeScale(t *testing.T) {
	g := 2 * math.Pi * 20e6
	c := NewCoupledTransmons(3, -2*math.Pi*300e6, -2*math.Pi*300e6, g, 0)
	// π/(√2 g) with g = 2π·20MHz → ~17.7 ns.
	want := math.Pi / (math.Sqrt2 * g)
	if math.Abs(c.CZHoldTime()-want) > 1e-15 {
		t.Fatal("CZHoldTime formula changed")
	}
	if c.CZHoldTime() < 10e-9 || c.CZHoldTime() > 30e-9 {
		t.Fatalf("hold time %v ns outside plausible range", c.CZHoldTime()*1e9)
	}
}

func TestStripSingleQubitPhases(t *testing.T) {
	// Rz⊗Rz·CZ must strip back to CZ exactly.
	rz := cmath.Kron(cmath.Rz(0.3), cmath.Rz(-0.7))
	u := cmath.Mul(rz, cmath.CZ())
	got := StripSingleQubitPhases(u)
	if e := cmath.GateError(cmath.CZ(), got); e > 1e-10 {
		t.Fatalf("phase stripping failed, error %g", e)
	}
}

func TestDispersiveResonatorSteadyState(t *testing.T) {
	r := DispersiveResonator{DetuningRad: 0, ChiRad: 2 * math.Pi * 1.5e6, KappaRad: 2 * math.Pi * 2.7e6}
	eps := 1e7
	// Trajectory converges to the closed-form steady state.
	n := 4000
	dt := 1e-9
	traj := r.Trajectory(+1, func(float64) float64 { return eps }, n, dt)
	ss := r.SteadyState(+1, eps)
	if cmplx.Abs(traj[n-1]-ss) > 1e-3*cmplx.Abs(ss) {
		t.Fatalf("trajectory end %v != steady state %v", traj[n-1], ss)
	}
}

func TestDispersiveStatesSeparate(t *testing.T) {
	// The two qubit states pull the resonator oppositely; their steady states
	// must be distinguishable (that is the whole point of readout).
	r := DispersiveResonator{DetuningRad: 0, ChiRad: 2 * math.Pi * 1.5e6, KappaRad: 2 * math.Pi * 2.7e6}
	s0 := r.SteadyState(-1, 1e7)
	s1 := r.SteadyState(+1, 1e7)
	sep := cmplx.Abs(s0 - s1)
	if sep < 0.5*cmplx.Abs(s0) {
		t.Fatalf("state separation %v too small vs amplitude %v", sep, cmplx.Abs(s0))
	}
}

func TestDispersiveRingUp(t *testing.T) {
	// Amplitude grows monotonically toward steady state on resonance.
	r := DispersiveResonator{ChiRad: 2 * math.Pi * 1.5e6, KappaRad: 2 * math.Pi * 2.7e6}
	traj := r.Trajectory(+1, func(float64) float64 { return 1e7 }, 300, 1e-9)
	for k := 1; k < len(traj); k++ {
		if cmplx.Abs(traj[k]) < cmplx.Abs(traj[k-1])-1e-9 {
			// allow tiny oscillation from the chi detuning
			if cmplx.Abs(traj[k]) < 0.95*cmplx.Abs(traj[k-1]) {
				t.Fatalf("ring-up not monotonic at step %d", k)
			}
		}
	}
}

func TestEvolveSamplesMatchesEvolve(t *testing.T) {
	d := NewDrivenTransmon(2, 0, 0, 2*math.Pi*5e6)
	n := 100
	dt := 0.25e-9
	hs := make([]*cmath.Matrix, n)
	for k := range hs {
		hs[k] = d.Hamiltonian(1, 0)
	}
	u1 := EvolveSamples(hs, dt)
	u2 := Evolve(func(float64) *cmath.Matrix { return d.Hamiltonian(1, 0) }, float64(n)*dt, dt)
	if e := cmath.GateError(u1, u2); e > 1e-10 {
		t.Fatalf("sample-based and functional evolution disagree: %g", e)
	}
}
