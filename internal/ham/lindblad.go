package ham

import (
	"math"

	"qisim/internal/cmath"
)

// Lindblad evolves a density matrix under
//
//	dρ/dt = -i[H, ρ] + Σ_k ( L_k ρ L_k† − ½{L_k†L_k, ρ} )
//
// with fixed-step RK2. It backs the JPM-tunnelling model of Section
// 4.4.5-ii ("a detailed Hamiltonian simulation using the Lindblad master
// equation of resonator–JPM-coupled systems") and the dissipative readout
// validations.
type Lindblad struct {
	H     *cmath.Matrix
	Jumps []*cmath.Matrix

	// cached products
	jdagj []*cmath.Matrix
}

// NewLindblad builds the evolver, caching L†L.
func NewLindblad(h *cmath.Matrix, jumps []*cmath.Matrix) *Lindblad {
	l := &Lindblad{H: h, Jumps: jumps}
	for _, j := range jumps {
		l.jdagj = append(l.jdagj, cmath.Mul(cmath.Dagger(j), j))
	}
	return l
}

// deriv computes dρ/dt.
func (l *Lindblad) deriv(rho *cmath.Matrix) *cmath.Matrix {
	comm := cmath.Sub(cmath.Mul(l.H, rho), cmath.Mul(rho, l.H))
	out := cmath.Scale(complex(0, -1), comm)
	for k, j := range l.Jumps {
		cmath.AddInPlace(out, 1, cmath.Mul(cmath.Mul(j, rho), cmath.Dagger(j)))
		cmath.AddInPlace(out, -0.5, cmath.Mul(l.jdagj[k], rho))
		cmath.AddInPlace(out, -0.5, cmath.Mul(rho, l.jdagj[k]))
	}
	return out
}

// Evolve advances ρ by total time with steps of dt (midpoint RK2), returning
// the final density matrix.
func (l *Lindblad) Evolve(rho *cmath.Matrix, total, dt float64) *cmath.Matrix {
	steps := int(math.Ceil(total / dt))
	if steps < 1 {
		steps = 1
	}
	dt = total / float64(steps)
	r := rho.Clone()
	for s := 0; s < steps; s++ {
		k1 := l.deriv(r)
		mid := r.Clone()
		cmath.AddInPlace(mid, complex(dt/2, 0), k1)
		k2 := l.deriv(mid)
		cmath.AddInPlace(r, complex(dt, 0), k2)
	}
	return r
}

// JPMTunnelModel is the resonator–JPM system of the SFQ readout's second
// stage: the resonator's coherent state (bright for qubit |1>, dark for
// |0>) drives the JPM across its metastable barrier while the flux pulse
// holds the JPM frequency on resonance. The JPM's tunnelled state is an
// absorbing level reached at rate proportional to its excitation.
type JPMTunnelModel struct {
	// ResonatorLevels truncates the cavity ladder.
	ResonatorLevels int
	// CouplingHz is the resonator–JPM exchange coupling.
	CouplingHz float64
	// DetuneHz is the residual resonator–JPM detuning during the pulse.
	DetuneHz float64
	// TunnelRateHz is the escape rate from the JPM excited state.
	TunnelRateHz float64
	// KappaHz is the resonator decay.
	KappaHz float64
}

// DefaultJPMTunnelModel matches the 12.8 ns tunnelling stage of Table 2.
func DefaultJPMTunnelModel() JPMTunnelModel {
	return JPMTunnelModel{
		ResonatorLevels: 5,
		CouplingHz:      40e6,
		DetuneHz:        0,
		TunnelRateHz:    0.8e9,
		KappaHz:         0.5e6,
	}
}

// TunnelProbability evolves the coupled system for the stage duration from a
// resonator coherent state with mean photon number nbar and returns the
// probability the JPM has tunnelled. The JPM is modelled as a 3-state
// system: ground, excited, tunnelled (absorbing).
func (m JPMTunnelModel) TunnelProbability(nbar, duration float64) float64 {
	nr := m.ResonatorLevels
	const nj = 3 // |g>, |e>, |tunnelled>
	dim := nr * nj

	// Operators: resonator ⊗ JPM ordering, index = r*nj + j.
	ar := cmath.Kron(cmath.Destroy(nr), cmath.Identity(nj))
	// JPM lowering |g><e|.
	sm := cmath.NewMatrix(nj, nj)
	sm.Set(0, 1, 1)
	sj := cmath.Kron(cmath.Identity(nr), sm)
	// Tunnel jump |t><e|.
	tj := cmath.NewMatrix(nj, nj)
	tj.Set(2, 1, 1)
	tunnel := cmath.Scale(complex(math.Sqrt(2*math.Pi*m.TunnelRateHz), 0),
		cmath.Kron(cmath.Identity(nr), tj))
	decay := cmath.Scale(complex(math.Sqrt(2*math.Pi*m.KappaHz), 0), ar)

	// H = Δ·a†a + g(a σ+ + a† σ-), rad/s.
	g := 2 * math.Pi * m.CouplingHz
	delta := 2 * math.Pi * m.DetuneHz
	h := cmath.Scale(complex(delta, 0), cmath.Mul(cmath.Dagger(ar), ar))
	cmath.AddInPlace(h, complex(g, 0), cmath.Mul(ar, cmath.Dagger(sj)))
	cmath.AddInPlace(h, complex(g, 0), cmath.Mul(cmath.Dagger(ar), sj))

	// Initial state: coherent-ish resonator (Poisson-truncated) ⊗ |g>.
	psiR := coherentVec(nr, nbar)
	rho := cmath.NewMatrix(dim, dim)
	for i := 0; i < nr; i++ {
		for k := 0; k < nr; k++ {
			rho.Set(i*nj+0, k*nj+0, psiR[i]*complex(real(psiR[k]), -imag(psiR[k])))
		}
	}

	l := NewLindblad(h, []*cmath.Matrix{tunnel, decay})
	// Time step: resolve the fastest scale (coupling and tunnel rate).
	dt := 1 / (40 * (m.CouplingHz*2*math.Pi + m.TunnelRateHz) / (2 * math.Pi))
	dt /= 2 * math.Pi
	final := l.Evolve(rho, duration, dt)

	// P(tunnelled) = Σ_r <r,t|ρ|r,t>.
	var p float64
	for r := 0; r < nr; r++ {
		p += real(final.At(r*nj+2, r*nj+2))
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// coherentVec builds a normalised truncated coherent state |α|² = nbar.
func coherentVec(n int, nbar float64) []complex128 {
	alpha := math.Sqrt(nbar)
	v := make([]complex128, n)
	for k := 0; k < n; k++ {
		logAmp := float64(k)*math.Log(alpha+1e-300) - 0.5*logFact(k) - nbar/2
		v[k] = complex(math.Exp(logAmp), 0)
	}
	return cmath.NormalizeVec(v)
}

func logFact(n int) float64 {
	s := 0.0
	for k := 2; k <= n; k++ {
		s += math.Log(float64(k))
	}
	return s
}
