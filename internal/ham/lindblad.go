package ham

import (
	"math"

	"qisim/internal/cmath"
)

// Lindblad evolves a density matrix under
//
//	dρ/dt = -i[H, ρ] + Σ_k ( L_k ρ L_k† − ½{L_k†L_k, ρ} )
//
// with fixed-step RK2. It backs the JPM-tunnelling model of Section
// 4.4.5-ii ("a detailed Hamiltonian simulation using the Lindblad master
// equation of resonator–JPM-coupled systems") and the dissipative readout
// validations.
type Lindblad struct {
	H     *cmath.Matrix
	Jumps []*cmath.Matrix

	// cached products
	jdagj []*cmath.Matrix
	jdag  []*cmath.Matrix

	// RK2 + derivative scratch, sized on first Evolve. Caching these makes
	// each step allocation-free: the JPM tunnelling model integrates tens of
	// thousands of 15×15 RK2 steps per probability evaluation.
	k1, k2, mid, t1, t2 *cmath.Matrix
}

// NewLindblad builds the evolver, caching L† and L†L.
func NewLindblad(h *cmath.Matrix, jumps []*cmath.Matrix) *Lindblad {
	l := &Lindblad{H: h, Jumps: jumps}
	for _, j := range jumps {
		l.jdag = append(l.jdag, cmath.Dagger(j))
		l.jdagj = append(l.jdagj, cmath.Mul(cmath.Dagger(j), j))
	}
	return l
}

func (l *Lindblad) ensure(n int) {
	if l.k1 == nil || l.k1.Rows != n {
		l.k1 = cmath.NewMatrix(n, n)
		l.k2 = cmath.NewMatrix(n, n)
		l.mid = cmath.NewMatrix(n, n)
		l.t1 = cmath.NewMatrix(n, n)
		l.t2 = cmath.NewMatrix(n, n)
	}
}

// derivInto computes dρ/dt into dst using the cached scratch. The operation
// sequence matches the allocating formulation term for term, so results are
// bit-identical.
func (l *Lindblad) derivInto(dst, rho *cmath.Matrix) {
	// -i[H, ρ]
	cmath.MulInto(l.t1, l.H, rho)
	cmath.MulInto(l.t2, rho, l.H)
	for i := range dst.Data {
		dst.Data[i] = complex(0, -1) * (l.t1.Data[i] - l.t2.Data[i])
	}
	for k, j := range l.Jumps {
		cmath.MulInto(l.t1, j, rho)
		cmath.MulInto(l.t2, l.t1, l.jdag[k])
		cmath.AddInPlace(dst, 1, l.t2)
		cmath.MulInto(l.t1, l.jdagj[k], rho)
		cmath.AddInPlace(dst, -0.5, l.t1)
		cmath.MulInto(l.t1, rho, l.jdagj[k])
		cmath.AddInPlace(dst, -0.5, l.t1)
	}
}

// Evolve advances ρ by total time with steps of dt (midpoint RK2), returning
// the final density matrix.
func (l *Lindblad) Evolve(rho *cmath.Matrix, total, dt float64) *cmath.Matrix {
	steps := int(math.Ceil(total / dt))
	if steps < 1 {
		steps = 1
	}
	dt = total / float64(steps)
	r := rho.Clone()
	l.ensure(r.Rows)
	for s := 0; s < steps; s++ {
		l.derivInto(l.k1, r)
		copy(l.mid.Data, r.Data)
		cmath.AddInPlace(l.mid, complex(dt/2, 0), l.k1)
		l.derivInto(l.k2, l.mid)
		cmath.AddInPlace(r, complex(dt, 0), l.k2)
	}
	return r
}

// JPMTunnelModel is the resonator–JPM system of the SFQ readout's second
// stage: the resonator's coherent state (bright for qubit |1>, dark for
// |0>) drives the JPM across its metastable barrier while the flux pulse
// holds the JPM frequency on resonance. The JPM's tunnelled state is an
// absorbing level reached at rate proportional to its excitation.
type JPMTunnelModel struct {
	// ResonatorLevels truncates the cavity ladder.
	ResonatorLevels int
	// CouplingHz is the resonator–JPM exchange coupling.
	CouplingHz float64
	// DetuneHz is the residual resonator–JPM detuning during the pulse.
	DetuneHz float64
	// TunnelRateHz is the escape rate from the JPM excited state.
	TunnelRateHz float64
	// KappaHz is the resonator decay.
	KappaHz float64
}

// DefaultJPMTunnelModel matches the 12.8 ns tunnelling stage of Table 2.
func DefaultJPMTunnelModel() JPMTunnelModel {
	return JPMTunnelModel{
		ResonatorLevels: 5,
		CouplingHz:      40e6,
		DetuneHz:        0,
		TunnelRateHz:    0.8e9,
		KappaHz:         0.5e6,
	}
}

// TunnelProbability evolves the coupled system for the stage duration from a
// resonator coherent state with mean photon number nbar and returns the
// probability the JPM has tunnelled. The JPM is modelled as a 3-state
// system: ground, excited, tunnelled (absorbing).
func (m JPMTunnelModel) TunnelProbability(nbar, duration float64) float64 {
	nr := m.ResonatorLevels
	const nj = 3 // |g>, |e>, |tunnelled>
	dim := nr * nj

	// Operators: resonator ⊗ JPM ordering, index = r*nj + j.
	ar := cmath.Kron(cmath.Destroy(nr), cmath.Identity(nj))
	// JPM lowering |g><e|.
	sm := cmath.NewMatrix(nj, nj)
	sm.Set(0, 1, 1)
	sj := cmath.Kron(cmath.Identity(nr), sm)
	// Tunnel jump |t><e|.
	tj := cmath.NewMatrix(nj, nj)
	tj.Set(2, 1, 1)
	tunnel := cmath.Scale(complex(math.Sqrt(2*math.Pi*m.TunnelRateHz), 0),
		cmath.Kron(cmath.Identity(nr), tj))
	decay := cmath.Scale(complex(math.Sqrt(2*math.Pi*m.KappaHz), 0), ar)

	// H = Δ·a†a + g(a σ+ + a† σ-), rad/s.
	g := 2 * math.Pi * m.CouplingHz
	delta := 2 * math.Pi * m.DetuneHz
	h := cmath.Scale(complex(delta, 0), cmath.Mul(cmath.Dagger(ar), ar))
	cmath.AddInPlace(h, complex(g, 0), cmath.Mul(ar, cmath.Dagger(sj)))
	cmath.AddInPlace(h, complex(g, 0), cmath.Mul(cmath.Dagger(ar), sj))

	// Initial state: coherent-ish resonator (Poisson-truncated) ⊗ |g>,
	// composed with the non-materializing Kronecker kernel (column-vector
	// factors applied to the scalar [1]), then ρ = |ψ><ψ|. The resonator
	// amplitudes pass through ApplyKron exactly (each term is amp·1·1), so
	// ρ is bit-identical to setting the r⊗g block directly.
	psiR := coherentVec(nr, nbar)
	rvec := &cmath.Matrix{Rows: nr, Cols: 1, Data: psiR}
	ground := cmath.NewMatrix(nj, 1)
	ground.Set(0, 0, 1)
	psi := cmath.ApplyKron(rvec, ground, []complex128{1})
	rho := cmath.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		if psi[i] == 0 {
			continue
		}
		for k := 0; k < dim; k++ {
			if psi[k] == 0 {
				continue
			}
			rho.Set(i, k, psi[i]*complex(real(psi[k]), -imag(psi[k])))
		}
	}

	l := NewLindblad(h, []*cmath.Matrix{tunnel, decay})
	// Time step: resolve the fastest scale (coupling and tunnel rate).
	dt := 1 / (40 * (m.CouplingHz*2*math.Pi + m.TunnelRateHz) / (2 * math.Pi))
	dt /= 2 * math.Pi
	final := l.Evolve(rho, duration, dt)

	// P(tunnelled) = Σ_r <r,t|ρ|r,t>.
	var p float64
	for r := 0; r < nr; r++ {
		p += real(final.At(r*nj+2, r*nj+2))
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// coherentVec builds a normalised truncated coherent state |α|² = nbar.
func coherentVec(n int, nbar float64) []complex128 {
	alpha := math.Sqrt(nbar)
	v := make([]complex128, n)
	for k := 0; k < n; k++ {
		logAmp := float64(k)*math.Log(alpha+1e-300) - 0.5*logFact(k) - nbar/2
		v[k] = complex(math.Exp(logAmp), 0)
	}
	return cmath.NormalizeVec(v)
}

func logFact(n int) float64 {
	s := 0.0
	for k := 2; k <= n; k++ {
		s += math.Log(float64(k))
	}
	return s
}
