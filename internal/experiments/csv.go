package experiments

import (
	"fmt"
	"strings"

	"qisim/internal/microarch"
	"qisim/internal/scalability"
	"qisim/internal/wiring"
)

// figureDesigns maps scalability figures to their design sets.
func figureDesigns(id string) ([]string, error) {
	switch id {
	case "fig12":
		return []string{"300K-coax", "300K-microstrip", "300K-photonic"}, nil
	case "fig13":
		return []string{"4K-CMOS-baseline", "4K-CMOS-opt12", "RSFQ-baseline", "RSFQ-naive-sharing", "RSFQ-opt345"}, nil
	case "fig17":
		return []string{"4K-CMOS-advanced", "4K-CMOS-advanced-opt6", "4K-CMOS-advanced-opt67", "ERSFQ-opt8"}, nil
	default:
		return nil, fmt.Errorf("experiments: no CSV sweep for %q (fig12/fig13/fig17)", id)
	}
}

// FigureCSV renders the sweep data behind a scalability figure as CSV: one
// row per (design, qubit count) with per-stage utilisation, logical error,
// target, and feasibility — the series the paper plots.
func FigureCSV(id string) (string, error) {
	names, err := figureDesigns(id)
	if err != nil {
		return "", err
	}
	opt := scalability.DefaultOptions()
	var b strings.Builder
	b.WriteString("design,qubits,util_4k,util_100mk,util_20mk,logical_error,target,feasible\n")
	for _, name := range names {
		var design microarch.Design
		found := false
		for _, d := range microarch.AllDesigns() {
			if d.Name == name {
				design, found = d, true
			}
		}
		if !found {
			return "", fmt.Errorf("experiments: unknown design %q", name)
		}
		a := scalability.Analyze(design, opt)
		counts := sweepPoints(a.MaxQubits)
		for _, p := range scalability.Sweep(design, counts, opt) {
			fmt.Fprintf(&b, "%s,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%v\n",
				name, p.Qubits,
				p.Utilization[wiring.Stage4K],
				p.Utilization[wiring.Stage100mK],
				p.Utilization[wiring.Stage20mK],
				p.LogicalError, p.Target, p.Feasible)
		}
	}
	return b.String(), nil
}

// sweepPoints builds a log-ish grid bracketing the design's limit.
func sweepPoints(limit float64) []int {
	if limit < 8 {
		limit = 8
	}
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}
	out := make([]int, 0, len(fracs))
	for _, f := range fracs {
		n := int(limit * f)
		if n < 1 {
			n = 1
		}
		out = append(out, n)
	}
	return out
}
