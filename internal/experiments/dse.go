package experiments

import (
	"context"
	"fmt"
	"strings"

	"qisim/internal/dse"
	"qisim/internal/microarch"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/simerr"
)

// DSESweepGrid is the Fig. 17 CMOS-vs-ERSFQ design-space sweep: the two
// long-term endpoint designs crossed with code distance and an
// extra-gate-error log sweep. Distance is a real trade-off axis (higher
// distance suppresses logical error but burns qubits and power), so the
// frontier keeps points from several distances rather than collapsing to
// a single winner. The grid is shared by the "dse" experiment, the
// service end-to-end test and the golden frontier pin, so all three
// exercise the same points.
func DSESweepGrid() dse.Grid {
	return dse.Grid{Axes: []dse.Axis{
		{Name: "design", Values: []any{"4K-CMOS-advanced-opt67", "ERSFQ-opt8"}},
		{Name: "distance", Values: []any{11, 17, 23}},
		{Name: "extra_gate_error", LogRange: &dse.LogRange{From: 1e-6, To: 1e-3, Points: 8}},
	}}
}

// DSEObjectives is the default three-way trade-off the service sweeps:
// scale up, power down, logical error down.
func DSEObjectives() []dse.Objective {
	return []dse.Objective{
		{Metric: scalability.MetricMaxQubits, Goal: dse.Max},
		{Metric: scalability.MetricPower4K, Goal: dse.Min},
		{Metric: scalability.MetricLogicalError, Goal: dse.Min},
	}
}

// DSEResult carries the deterministic sweep outcome plus its canonical
// serialisation — the bytes the golden-frontier pin hashes.
type DSEResult struct {
	Outcome   dse.Outcome
	Canonical []byte
	Report    string
}

// DSE runs the Fig. 17 CMOS-vs-ERSFQ sweep through the dse layer directly
// (no service, no cache): wave-based, pruned, committed-prefix
// deterministic. The outcome is byte-identical to what a dse.sweep job over
// the same grid reports in its result envelope.
func DSE() (DSEResult, error) {
	grid, objs := DSESweepGrid(), DSEObjectives()
	pol := dse.Policy{Wave: 8, Prune: true}
	bound := func(p dse.Point) map[string]float64 {
		d, extra, opt, err := dsePointArgs(p)
		if err != nil {
			return nil
		}
		return scalability.PointBound(d, extra, opt)
	}
	eval := func(_ context.Context, pts []dse.Point) ([]map[string]float64, error) {
		out := make([]map[string]float64, len(pts))
		for i, p := range pts {
			d, extra, opt, err := dsePointArgs(p)
			if err != nil {
				return nil, err
			}
			if out[i], err = scalability.AnalyzePointChecked(d, extra, opt); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	outcome, err := dse.RunSweep(context.Background(), grid, objs, pol, bound, eval, nil)
	if err != nil {
		return DSEResult{}, err
	}
	canon, err := rescache.CanonicalJSON(outcome)
	if err != nil {
		return DSEResult{}, err
	}

	var b strings.Builder
	b.WriteString("== DSE — Fig. 17 CMOS-vs-ERSFQ Pareto sweep ==\n")
	fmt.Fprintf(&b, "grid %d points, %d waves: evaluated %d, pruned %d, frontier %d\n",
		outcome.GridSize, outcome.Waves, outcome.Evaluated, outcome.Pruned, len(outcome.Frontier.Points))
	fmt.Fprintf(&b, "%-24s %4s %14s %12s %12s %12s\n", "design", "d", "extra error", "max qubits", "4K power W", "logical err")
	for _, c := range outcome.Frontier.Points {
		design, _ := c.Params["design"].(string)
		dist, _ := c.Params["distance"].(float64)
		extra, _ := c.Params["extra_gate_error"].(float64)
		fmt.Fprintf(&b, "%-24s %4.0f %14.3g %12.0f %12.4g %12.3g\n",
			design, dist, extra,
			c.Metrics[scalability.MetricMaxQubits],
			c.Metrics[scalability.MetricPower4K],
			c.Metrics[scalability.MetricLogicalError])
	}
	b.WriteString("objectives: max max_qubits, min power_4k_w, min logical_error\n")
	if len(outcome.Frontier.Points) == 1 {
		b.WriteString("ERSFQ-opt8 at d=23 and the lowest extra error dominates the whole grid —\n" +
			"the paper's Fig. 17 conclusion (ERSFQ 82,413 vs advanced CMOS 63,883 qubits)\n" +
			"restated as Pareto dominance.\n")
	}
	return DSEResult{Outcome: outcome, Canonical: canon, Report: b.String()}, nil
}

// dsePointArgs resolves one grid point's design, extra gate error and
// per-point analysis options (code distance).
func dsePointArgs(p dse.Point) (microarch.Design, float64, scalability.Options, error) {
	name, _ := p.Coords["design"].(string)
	extra, _ := p.Coords["extra_gate_error"].(float64)
	opt := scalability.DefaultOptions()
	if dist, ok := p.Coords["distance"].(float64); ok {
		opt.Distance = int(dist)
	}
	for _, d := range microarch.AllDesigns() {
		if d.Name == name {
			return d, extra, opt, nil
		}
	}
	return microarch.Design{}, 0, opt, simerr.Invalidf("experiments: unknown design %q", name)
}
