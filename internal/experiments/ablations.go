package experiments

import (
	"fmt"
	"math"
	"strings"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/gateerror"
	"qisim/internal/jpm"
	"qisim/internal/microarch"
	"qisim/internal/phys"
	"qisim/internal/qasm"
	"qisim/internal/readout"
	"qisim/internal/scalability"
	"qisim/internal/sfq"
	"qisim/internal/surface"
	"qisim/internal/wiring"
)

// Ablations runs the design-choice studies behind the eight optimisations
// and returns one combined report. Individual studies are exported for the
// tests and benchmarks. A pipeline failure in any study aborts the suite
// with a wrapped error rather than a panic.
func Ablations() (string, error) {
	var b strings.Builder
	b.WriteString(AblationDRAG())
	b.WriteString(AblationCZShape())
	b.WriteString(AblationIQBits())
	b.WriteString(AblationMultiRoundRange())
	b.WriteString(AblationFDM())
	bs, err := AblationBS()
	if err != nil {
		return "", fmt.Errorf("experiments: ablation suite: %w", err)
	}
	b.WriteString(bs)
	b.WriteString(AblationSharing())
	b.WriteString(AblationBottomUp())
	b.WriteString(AblationLinkEnergy())
	return b.String(), nil
}

// AblationDRAG quantifies the DRAG quadrature's effect on leakage.
func AblationDRAG() string {
	cfg := gateerror.DefaultCMOS1QConfig()
	cfg.SNRdB = 0
	with := gateerror.CMOS1QError(cfg)
	cfg.DRAG = false
	without := gateerror.CMOS1QError(cfg)
	var b strings.Builder
	b.WriteString("== Ablation: DRAG correction (1Q drive) ==\n")
	fmt.Fprintf(&b, "with DRAG:    error %.3g, leakage %.3g\n", with.Error, with.Leakage)
	fmt.Fprintf(&b, "without DRAG: error %.3g, leakage %.3g\n", without.Error, without.Leakage)
	fmt.Fprintf(&b, "leakage suppression: %.0fx\n\n", without.Leakage/with.Leakage)
	return b.String()
}

// AblationCZShape contrasts the pulse-circuit shapes of Section 3.3.2.
func AblationCZShape() string {
	ramped := gateerror.CZError(gateerror.DefaultCZConfig())
	step := gateerror.UnitStepCZError()
	var b strings.Builder
	b.WriteString("== Ablation: CZ pulse shape (new AWG vs Horse Ridge II unit step) ==\n")
	fmt.Fprintf(&b, "flat-top+ramps: error %.3g (cond. phase %.3f)\n", ramped.Error, ramped.CondPhase)
	fmt.Fprintf(&b, "unit step:      error %.3g (cond. phase %.3f) — 'almost cannot realize the CZ gate'\n\n",
		step.Error, step.CondPhase)
	return b.String()
}

// AblationIQBits justifies Opt-#1: 7-bit IQ is the error-saturating point,
// so dropping the bin memory loses nothing.
func AblationIQBits() string {
	tm := readout.DefaultTiming()
	var b strings.Builder
	b.WriteString("== Ablation: readout IQ precision (Opt-#1 saturating point) ==\n")
	for _, bits := range []int{2, 3, 4, 5, 6, 7, 8, 0} {
		c := readout.DefaultChain()
		c.IQBits = bits
		label := fmt.Sprintf("%d-bit", bits)
		if bits == 0 {
			label = "ideal"
		}
		fmt.Fprintf(&b, "%-7s %.4g\n", label, readout.BinCountingError(c, tm, 8))
	}
	b.WriteString("\n")
	return b.String()
}

// AblationMultiRoundRange sweeps the Opt-#7 indecision range.
func AblationMultiRoundRange() string {
	c, tm := readout.DefaultChain(), readout.DefaultTiming()
	var b strings.Builder
	b.WriteString("== Ablation: multi-round decision range (Opt-#7) ==\n")
	fmt.Fprintf(&b, "%7s %12s %10s %9s\n", "range", "error", "mean time", "speedup")
	for _, rg := range []float64{10, 20, 30, 40, 60, 90} {
		cfg := readout.DefaultMultiRoundConfig()
		cfg.Range = rg
		cfg.Shots = 100000
		r := readout.MultiRoundError(c, tm, cfg)
		fmt.Fprintf(&b, "%7.0f %12.3g %7.0f ns %8.1f%%\n", rg, r.Error, r.MeanTime*1e9, 100*r.Speedup)
	}
	b.WriteString("\n")
	return b.String()
}

// AblationFDM sweeps the drive FDM degree — the Opt-#7 power/error trade.
func AblationFDM() string {
	var b strings.Builder
	b.WriteString("== Ablation: drive FDM degree (power vs logical error, Opt-#7) ==\n")
	fmt.Fprintf(&b, "%5s %12s %12s %12s %12s\n", "FDM", "round", "p_L", "4K W/qubit", "max qubits")
	for _, fdm := range []int{8, 16, 20, 32, 64} {
		d := microarch.CMOS4KAdvancedOpt6()
		d.CMOSCfg.DriveFDM = fdm
		d.MultiRound = true
		a := scalability.Analyze(d, scalability.DefaultOptions())
		fmt.Fprintf(&b, "%5d %9.0f ns %12.3g %12.3g %12.0f\n",
			fdm, d.RoundTiming().RoundTime()*1e9, a.LogicalError,
			a.PerQubit[wiring.Stage4K], a.MaxQubits)
	}
	b.WriteString("\n")
	return b.String()
}

// AblationBS sweeps #BS through the cycle-accurate simulator on real ESM —
// the Opt-#5 evidence. Compile or simulation failures surface as wrapped
// errors instead of panics.
func AblationBS() (string, error) {
	patch := surface.NewPatch(7)
	prog := &qasm.Program{NQubits: patch.TotalQubits()}
	c := 0
	for _, op := range patch.ESMCircuit() {
		switch op.Kind {
		case "h":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{op.Q}, CBit: -1})
		case "cz":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{op.Q, op.Q2}, CBit: -1})
		case "measure":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{op.Q}, CBit: c})
			c++
		}
	}
	prog.NClbits = c
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		return "", fmt.Errorf("experiments: AblationBS compile ESM circuit: %w", err)
	}
	dev := sfq.MITLLSFQ5ee(sfq.RSFQ)
	var b strings.Builder
	b.WriteString("== Ablation: SFQ #BS (ESM time vs controller power, Opt-#5) ==\n")
	fmt.Fprintf(&b, "%5s %12s %16s\n", "#BS", "ESM time", "controller power")
	for _, bs := range []int{1, 2, 4, 8} {
		r, err := cyclesim.Run(ex, cyclesim.SFQConfig(bs))
		if err != nil {
			return "", fmt.Errorf("experiments: AblationBS simulate #BS=%d: %w", bs, err)
		}
		spec := sfq.DefaultDriveSpec()
		spec.BS = bs
		p := sfq.BitstreamController(spec).TotalPower(dev, 24e9) +
			sfq.PerQubitController(spec).TotalPower(dev, 24e9)
		fmt.Fprintf(&b, "%5d %9.0f ns %13.2f mW\n", bs, r.TotalTime*1e9, p*1e3)
	}
	b.WriteString("→ ESM time is #BS-independent (broadcast), so #BS=1 is free (Opt-#5)\n\n")
	return b.String(), nil
}

// AblationSharing sweeps the JPM readout sharing degree beyond the paper's 8.
func AblationSharing() string {
	var b strings.Builder
	b.WriteString("== Ablation: JPM readout sharing degree (Opt-#3 generalised) ==\n")
	fmt.Fprintf(&b, "%8s %14s %12s %12s\n", "sharing", "mK nW/qubit", "readout", "p_L")
	dev := sfq.MKDevice(sfq.RSFQ)
	core := sfq.MKJPMReadout(1).StaticPower(dev)
	pr := surface.DefaultProjection()
	ep := surface.SFQErrorParams()
	for _, share := range []int{1, 2, 4, 8, 16} {
		p := jpm.NewPipeline(jpm.Pipelined)
		p.GroupSize = share
		p.LJJ.JPMsPerLine = share
		if share == 1 {
			p = jpm.NewPipeline(jpm.Unshared)
		}
		lat := p.TotalLatency()
		rt := surface.RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: lat, DriveSerialization: 1}
		pl := pr.Logical(ep.Effective(rt.RoundTime(), 0))
		fmt.Fprintf(&b, "%8d %14.1f %9.0f ns %12.3g\n", share, core/float64(share)*1e9, lat*1e9, pl)
	}
	b.WriteString("→ 8-way sharing balances mK power against decoherence; 16-way overshoots the error budget\n\n")
	return b.String()
}

// AblationBottomUp contrasts the calibrated effective-error model
// (P0 + C·t, fitted to the paper's logical-error anchors) against a naive
// bottom-up per-round physical-error sum. The gap is the weighting the
// paper's surface-code error model [Ghosh et al.] applies when distributing
// physical errors across the X/Z syndrome sectors — the reason QIsim
// calibrates holistically instead of adding raw error rates.
func AblationBottomUp() string {
	var b strings.Builder
	b.WriteString("== Ablation: calibrated p_eff vs naive bottom-up sum ==\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %8s\n", "design", "calibrated", "naive sum", "ratio")
	for _, d := range []microarch.Design{microarch.RSFQBaseline(), microarch.CMOS4KBaseline()} {
		rt := d.RoundTiming().RoundTime()
		cal := d.ErrorParams().Effective(rt, 0)
		// Naive per-data-qubit per-round: 2 1Q + 4 CZ shares + readout share
		// + full decoherence over the round.
		var oneQ, twoQ, ro float64
		if d.Family == microarch.SFQ4K {
			s, _ := phys.SFQOperationSpecs()
			oneQ, twoQ, ro = s.OneQ.Error, s.TwoQ.Error, s.Readout.Error
		} else {
			s := phys.CMOSOperationSpecs()
			oneQ, twoQ, ro = s.OneQ.Error, s.TwoQ.Error, s.Readout.Error
		}
		dec := 1 - (0.5 + math.Exp(-rt/122e-6)/6 + math.Exp(-rt/118e-6)/3)
		naive := 2*oneQ + 4*twoQ/2 + ro/2 + dec
		fmt.Fprintf(&b, "%-18s %12.3g %12.3g %8.1f\n", d.Name, cal, naive, naive/cal)
	}
	b.WriteString("→ the ~10-30x gap is the error model's sector weighting; see EXPERIMENTS.md 'Calibration record'\n\n")
	return b.String()
}

// AblationLinkEnergy sweeps the 300K→4K link energy — the sensitivity of the
// Fig. 17(a) endpoint to the wire model.
func AblationLinkEnergy() string {
	var b strings.Builder
	b.WriteString("== Ablation: 300K→4K link energy (Fig. 17(a) sensitivity) ==\n")
	fmt.Fprintf(&b, "%10s %14s %12s %-14s\n", "pJ/bit", "wire W/qubit", "max qubits", "binding")
	for _, e := range []float64{0.1e-12, 0.2e-12, 0.31e-12, 0.6e-12, 1.2e-12} {
		d := microarch.CMOS4KAdvancedOpt67()
		link := wiring.DefaultDataLink()
		link.EnergyPerBitJ = e
		d.DataLink = &link
		a := scalability.Analyze(d, scalability.DefaultOptions())
		fmt.Fprintf(&b, "%10.2f %14.3g %12.0f %-14s\n", e*1e12, d.PerQubitPower().WireW, a.MaxQubits, a.Binding)
	}
	b.WriteString("→ below ~0.6 pJ/bit the design stays error-limited at ~64k qubits (robust endpoint)\n\n")
	return b.String()
}
