// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md): each function returns
// the rows/series the paper reports, as printable text plus structured
// values the tests assert on. cmd/qisim-experiments prints them;
// experiments_test.go and bench_test.go at the repo root exercise them.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"qisim/internal/gateerror"
	"qisim/internal/isa"
	"qisim/internal/jpm"
	"qisim/internal/microarch"
	"qisim/internal/phys"
	"qisim/internal/readout"
	"qisim/internal/scalability"
	"qisim/internal/sfq"
	"qisim/internal/validate"
	"qisim/internal/wiring"
	"qisim/internal/workloads"
)

// IDs lists every experiment identifier in paper order, followed by the
// extensions ("section7.3" offloading and the ablation suite).
func IDs() []string {
	return []string{
		"fig8", "fig10", "table1", "fig11", "table2",
		"fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "table3",
		"section7.3", "ablations", "features", "dse",
	}
}

// Run dispatches one experiment by id and returns its report.
func Run(id string) (string, error) {
	switch id {
	case "fig8":
		return validate.Report("Fig. 8 — 4K CMOS power validation (vs Horse Ridge I & II)", validate.Fig8CMOSPower()), nil
	case "fig10":
		f, p := validate.Fig10SFQ()
		return validate.Report("Fig. 10(a) — RSFQ frequency validation", f) +
			validate.Report("Fig. 10(b) — RSFQ power validation", p), nil
	case "table1":
		return validate.Report("Table 1 — gate error-rate validation", validate.Table1GateErrors()), nil
	case "fig11":
		rows, err := validate.Fig11Workloads()
		if err != nil {
			return "", fmt.Errorf("experiments: fig11: %w", err)
		}
		return validate.Report("Fig. 11 — workload-level fidelity validation", rows) +
			fmt.Sprintf("average fidelity difference: %.1f%% (paper: 5.1%%)\n", 100*validate.MeanError(rows)), nil
	case "table2":
		return Table2(), nil
	case "fig12":
		return Fig12(), nil
	case "fig13":
		return Fig13(), nil
	case "fig14":
		return Fig14().Report, nil
	case "fig15":
		return Fig15().Report, nil
	case "fig16":
		return Fig16().Report, nil
	case "fig17":
		return Fig17(), nil
	case "fig18":
		return Fig18().Report, nil
	case "fig19":
		return Fig19().Report, nil
	case "fig20":
		return Fig20().Report, nil
	case "table3":
		return Table3(), nil
	case "ablations":
		return Ablations()
	case "section7.3":
		return Section73(), nil
	case "features":
		return Features(), nil
	case "dse":
		r, err := DSE()
		if err != nil {
			return "", err
		}
		return r.Report, nil
	default:
		return "", fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
}

// Table2 prints the scalability-analysis setup.
func Table2() string {
	var b strings.Builder
	b.WriteString("== Table 2 — scalability analysis setup ==\n")
	c := phys.CMOSOperationSpecs()
	s, ro := phys.SFQOperationSpecs()
	fmt.Fprintf(&b, "CMOS ops: 1Q %.3g/%.0fns  2Q %.3g/%.0fns  RO %.3g/%.0fns\n",
		c.OneQ.Error, c.OneQ.Latency*1e9, c.TwoQ.Error, c.TwoQ.Latency*1e9, c.Readout.Error, c.Readout.Latency*1e9)
	fmt.Fprintf(&b, "SFQ ops:  1Q %.3g/%.0fns  2Q %.3g/%.0fns  RO %.3g/%.1fns\n",
		s.OneQ.Error, s.OneQ.Latency*1e9, s.TwoQ.Error, s.TwoQ.Latency*1e9, s.Readout.Error, s.Readout.Latency*1e9)
	fmt.Fprintf(&b, "SFQ readout stages: drive %.1fns, tunnel %.1fns, read %.1fns, reset %.1fns\n",
		ro.ResonatorDriving.Latency*1e9, ro.JPMTunneling.Latency*1e9, ro.JPMReadout.Latency*1e9, ro.Reset.Latency*1e9)
	for _, ct := range []wiring.CableType{wiring.CoaxialCable, wiring.Microstrip, wiring.PhotonicLink, wiring.SuperconductingMicrostrip} {
		fmt.Fprintf(&b, "%-28s", ct.Name)
		for _, st := range []wiring.Stage{wiring.Stage4K, wiring.Stage100mK, wiring.Stage20mK} {
			l := ct.Load(st)
			fmt.Fprintf(&b, "  %s %.3g/%.3gW", st, l.PassiveW, l.ActiveW)
		}
		b.WriteByte('\n')
	}
	cl := phys.DefaultClocks()
	q := phys.DefaultTransmon()
	fmt.Fprintf(&b, "budgets: 1.5W@4K 200µW@100mK 20µW@20mK; clocks %.1fGHz CMOS / %.0fGHz SFQ; T1 %.0fµs T2 %.0fµs\n",
		cl.CMOS4KHz/1e9, cl.SFQHz/1e9, q.T1*1e6, q.T2*1e6)
	return b.String()
}

func analyses(names ...string) []scalability.Analysis {
	all := scalability.AnalyzeAll(scalability.DefaultOptions())
	var out []scalability.Analysis
	for _, n := range names {
		for _, a := range all {
			if a.Design.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}

// Fig12 reports the 300 K QCI scalability (coax / microstrip / photonic).
func Fig12() string {
	as := analyses("300K-coax", "300K-microstrip", "300K-photonic")
	return "== Fig. 12 — scalability of 300K QCIs ==\n" + scalability.Table(as) +
		"paper: coax 400 / microstrip 650 / photonic 70 qubits\n"
}

// Fig13 reports the near-term 4 K QCI scalability with optimisation stages.
func Fig13() string {
	as := analyses("4K-CMOS-baseline", "4K-CMOS-opt12", "RSFQ-baseline", "RSFQ-naive-sharing", "RSFQ-opt345")
	return "== Fig. 13 — scalability of 4K QCIs (near term) ==\n" + scalability.Table(as) +
		"paper: CMOS <700 → 1,399 (Opt-1,2); RSFQ <160 → 1,248 (Opt-3,4,5)\n"
}

// Fig14Result carries the Opt-#1/#2 bit-precision sweep.
type Fig14Result struct {
	Bits       []int
	GateErrors []float64
	Logical    []float64
	// GateSaturationBits and LogicalSaturationBits are the first bit counts
	// within 2x of the 14-bit floor for each curve (paper: ~9 and ~6).
	GateSaturationBits    int
	LogicalSaturationBits int
	Report                string
}

// Fig14 sweeps the drive DAC precision (Opt-#2's justification).
func Fig14() Fig14Result {
	bits := []int{3, 4, 5, 6, 7, 8, 9, 10, 12, 14}
	r := Fig14Result{Bits: bits}
	cfg := gateerror.DefaultCMOS1QConfig()
	cfg.SNRdB = 0 // isolate quantisation, as Fig. 14(b) does
	var floorGate float64
	errs := make([]float64, len(bits))
	for i, bt := range bits {
		cfg.Bits = bt
		errs[i] = gateerror.CMOS1QError(cfg).Error
	}
	floorGate = errs[len(errs)-1]
	d := microarch.CMOS4KBaseline()
	var floorLog float64
	logs := make([]float64, len(bits))
	for i := range bits {
		extra := errs[i] - floorGate
		logs[i] = d.LogicalError(extra)
	}
	floorLog = logs[len(logs)-1]
	r.GateErrors, r.Logical = errs, logs
	for i, bt := range bits {
		if r.GateSaturationBits == 0 && errs[i] <= 2*floorGate {
			r.GateSaturationBits = bt
		}
		if r.LogicalSaturationBits == 0 && logs[i] <= 2*floorLog {
			r.LogicalSaturationBits = bt
		}
	}
	var b strings.Builder
	b.WriteString("== Fig. 14 — single-qubit gate & logical error vs drive bit precision ==\n")
	fmt.Fprintf(&b, "%6s %14s %14s\n", "bits", "1Q gate error", "logical error")
	for i, bt := range bits {
		fmt.Fprintf(&b, "%6d %14.3g %14.3g\n", bt, errs[i], logs[i])
	}
	fmt.Fprintf(&b, "gate error saturates at %d bits (paper ~9); logical at %d bits (paper 6)\n",
		r.GateSaturationBits, r.LogicalSaturationBits)
	r.Report = b.String()
	return r
}

// Fig15Result carries the Opt-#3 readout-sharing comparison.
type Fig15Result struct {
	UnsharedNS, NaiveNS, PipelinedNS float64
	UnsharedPL, NaivePL, PipelinedPL float64
	Report                           string
}

// Fig15 reports the JPM readout sharing/pipelining latencies and logical
// errors.
func Fig15() Fig15Result {
	var r Fig15Result
	r.UnsharedNS = jpm.NewPipeline(jpm.Unshared).TotalLatency() * 1e9
	r.NaiveNS = jpm.NewPipeline(jpm.NaiveShared).TotalLatency() * 1e9
	r.PipelinedNS = jpm.NewPipeline(jpm.Pipelined).TotalLatency() * 1e9
	r.UnsharedPL = microarch.RSFQBaseline().LogicalError(0)
	r.NaivePL = microarch.RSFQNaiveSharing().LogicalError(0)
	r.PipelinedPL = microarch.RSFQOpt345().LogicalError(0)
	var b strings.Builder
	b.WriteString("== Fig. 15 — Opt-#3 JPM readout sharing & pipelining ==\n")
	fmt.Fprintf(&b, "%-20s %12s %14s\n", "scheme", "latency", "logical error")
	fmt.Fprintf(&b, "%-20s %9.1f ns %14.3g   (paper: 665 ns, 4.13e-16)\n", "unshared", r.UnsharedNS, r.UnsharedPL)
	fmt.Fprintf(&b, "%-20s %9.1f ns %14.3g   (paper: 5,320 ns, 3.50e-7)\n", "naive sharing", r.NaiveNS, r.NaivePL)
	fmt.Fprintf(&b, "%-20s %9.1f ns %14.3g   (paper: 1,255 ns, 1.34e-13)\n", "sharing+pipelining", r.PipelinedNS, r.PipelinedPL)
	// Timeline of the pipelined schedule.
	p := jpm.NewPipeline(jpm.Pipelined)
	for _, ev := range p.Timeline() {
		if ev.Qubit <= 1 {
			fmt.Fprintf(&b, "  q%d %-7s %7.1f → %7.1f ns\n", ev.Qubit, ev.Stage, ev.Start*1e9, ev.End*1e9)
		}
	}
	r.Report = b.String()
	return r
}

// Fig16Result carries the Opt-#4/#5 power reductions.
type Fig16Result struct {
	BitgenReduction   float64 // of bitgen power (paper 98.2%)
	BitgenTotalSaving float64 // of 4K group power (paper 23.2%)
	BSReductionSaving float64 // of 4K group power (paper 43.8%)
	Report            string
}

// Fig16 reports the low-power bitstream generator and controller savings.
func Fig16() Fig16Result {
	d := sfq.MITLLSFQ5ee(sfq.RSFQ)
	s := sfq.DefaultDriveSpec()
	group := func(sp sfq.DriveSpec, lowBitgen bool) float64 {
		tot := sfq.ControlDataBuffer(sp).TotalPower(d, 24e9) +
			sfq.BitstreamController(sp).TotalPower(d, 24e9) +
			sfq.PerQubitController(sp).TotalPower(d, 24e9) +
			sfq.PulseCircuit(sp.Qubits, 4, 6).TotalPower(d, 24e9) +
			sfq.ReadoutFrontEnd(sp.Qubits).TotalPower(d, 24e9)
		if lowBitgen {
			tot += sfq.LowPowerBitstreamGenerator(sp).TotalPower(d, 24e9)
		} else {
			tot += sfq.BitstreamGenerator(sp).TotalPower(d, 24e9)
		}
		return tot
	}
	base := group(s, false)
	var r Fig16Result
	r.BitgenReduction = 1 - sfq.LowPowerBitstreamGenerator(s).TotalPower(d, 24e9)/sfq.BitstreamGenerator(s).TotalPower(d, 24e9)
	r.BitgenTotalSaving = 1 - group(s, true)/base
	s1 := s
	s1.BS = 1
	r.BSReductionSaving = 1 - group(s1, false)/base
	var b strings.Builder
	b.WriteString("== Fig. 16 — Opt-#4/#5 low-power bitgen and controllers ==\n")
	fmt.Fprintf(&b, "bitgen power reduction:        %5.1f%% (paper 98.2%%)\n", 100*r.BitgenReduction)
	fmt.Fprintf(&b, "4K saving from Opt-#4:         %5.1f%% (paper 23.2%%)\n", 100*r.BitgenTotalSaving)
	fmt.Fprintf(&b, "4K saving from Opt-#5 (#BS→1): %5.1f%% (paper 43.8%%)\n", 100*r.BSReductionSaving)
	r.Report = b.String()
	return r
}

// Fig17 reports the long-term scalability endpoints.
func Fig17() string {
	as := analyses("4K-CMOS-advanced", "4K-CMOS-advanced-opt6", "4K-CMOS-advanced-opt67", "RSFQ-opt345", "ERSFQ-opt8")
	return "== Fig. 17 — long-term scalability (advanced CMOS & ERSFQ) ==\n" + scalability.Table(as) +
		"paper: advanced CMOS 63,883 (Opt-6,7); ERSFQ 82,413 (Opt-8); goal 62,208\n"
}

// Fig18Result carries the Opt-#6 instruction-masking numbers.
type Fig18Result struct {
	WireShare      float64 // of advanced 4K power (paper 81.2%)
	BandwidthSaved float64 // paper 93%
	Report         string
}

// Fig18 reports the 4 K power breakdown and masking compression.
func Fig18() Fig18Result {
	adv := microarch.CMOS4KAdvanced()
	pb := adv.PerQubitPower()
	var r Fig18Result
	r.WireShare = pb.WireW / pb.StageW[wiring.Stage4K]
	round := adv.RoundTiming().RoundTime()
	base := isa.BaselineCMOSBandwidth(round)
	opt := isa.MaskedCMOSBandwidth(round, 32)
	r.BandwidthSaved = 1 - opt/base
	var b strings.Builder
	b.WriteString("== Fig. 18 — Opt-#6 FTQC-friendly instruction masking ==\n")
	fmt.Fprintf(&b, "advanced-CMOS 4K power: device %.3g W + wire %.3g W → wire share %.1f%% (paper 81.2%%)\n",
		pb.DeviceW, pb.WireW, 100*r.WireShare)
	fmt.Fprintf(&b, "instruction bandwidth: %.1f → %.1f Mb/s per qubit (−%.1f%%, paper −93%%)\n",
		base/1e6, opt/1e6, 100*r.BandwidthSaved)
	fmt.Fprintf(&b, "ISA: %v → %v\n", isa.HorseRidgeDrive(), isa.MaskedDrive(32))
	r.Report = b.String()
	return r
}

// Fig19Result carries the Opt-#7 readout-method comparison.
type Fig19Result struct {
	BinError, SingleError float64
	MultiRound            readout.MultiRoundResult
	Report                string
}

// Fig19 reports the decision-method errors and the multi-round speedup.
func Fig19() Fig19Result {
	c, tm := readout.DefaultChain(), readout.DefaultTiming()
	var r Fig19Result
	r.BinError = readout.BinCountingError(c, tm, 8)
	r.SingleError = readout.SinglePointError(c, tm, 8)
	r.MultiRound = readout.MultiRoundError(c, tm, readout.DefaultMultiRoundConfig())
	var b strings.Builder
	b.WriteString("== Fig. 19 — Opt-#7 fast multi-round readout ==\n")
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "method", "error", "readout")
	fmt.Fprintf(&b, "%-22s %12.3g %9.0f ns\n", "bin counting", r.BinError, tm.TotalTime(8)*1e9)
	fmt.Fprintf(&b, "%-22s %12.3g %9.0f ns\n", "single point", r.SingleError, tm.TotalTime(8)*1e9)
	fmt.Fprintf(&b, "%-22s %12.3g %9.0f ns (mean; %.1f%% faster, paper 40.9%%)\n",
		"multi-round (Opt-#7)", r.MultiRound.Error, r.MultiRound.MeanTime*1e9, 100*r.MultiRound.Speedup)
	fmt.Fprintf(&b, "3-round accuracy: %.2f%% within %.0f ns (paper: 98.6%% within 267 ns)\n",
		100*(1-readout.BinCountingError(c, tm, 3)), tm.TotalTime(3)*1e9)
	r.Report = b.String()
	return r
}

// Fig20Result carries the Opt-#8 fast-driving numbers.
type Fig20Result struct {
	SlowDriveNS, FastDriveNS float64
	ReadoutNS                float64
	ErrorReduction           float64 // vs pipelined (paper 28,355x)
	MaxQubits                float64
	Report                   string
}

// Fig20 reports fast resonator driving, unsharing, and the resulting scale.
func Fig20() Fig20Result {
	m := jpm.DefaultResonatorDriveModel()
	var r Fig20Result
	r.SlowDriveNS = m.BaselineDriveTime() * 1e9
	r.FastDriveNS = m.FastDriveTime() * 1e9
	p := jpm.NewPipeline(jpm.Unshared)
	p.FastDriving = true
	r.ReadoutNS = p.TotalLatency() * 1e9
	r.ErrorReduction = microarch.RSFQOpt345().LogicalError(0) / microarch.ERSFQOpt8().LogicalError(0)
	a := analyses("ERSFQ-opt8")[0]
	r.MaxQubits = a.MaxQubits
	var b strings.Builder
	b.WriteString("== Fig. 20 — Opt-#8 fast resonator driving & unsharing ==\n")
	fmt.Fprintf(&b, "resonator driving: %.1f → %.1f ns (paper 578.2 → 230.9 ns); rate boost %.2fx\n",
		r.SlowDriveNS, r.FastDriveNS, m.RateBoost())
	fmt.Fprintf(&b, "unshared fast readout: %.1f ns (paper 317.7 ns)\n", r.ReadoutNS)
	fmt.Fprintf(&b, "logical error reduction vs pipelined: %.0fx (paper 28,355x)\n", r.ErrorReduction)
	fmt.Fprintf(&b, "ERSFQ supported qubits: %.0f (paper 82,413)\n", r.MaxQubits)
	r.Report = b.String()
	return r
}

// Section73 reports the 70 K-stage extension: offloading the analog
// front-ends to the 30 W stage, the future direction the paper's discussion
// names ("QIsim does not yet support temperature domains with higher power
// budgets (e.g., 30W at 70K) at which we may further improve scalability by
// moving power-hungry components").
func Section73() string {
	base := scalability.Analyze(microarch.CMOS4KOpt12(), scalability.DefaultOptions())
	ext := scalability.Analyze(microarch.CMOS4KOpt12With70K(), scalability.ExtendedOptions())
	var b strings.Builder
	b.WriteString("== Section 7.3 extension — analog offloading to the 30 W 70 K stage ==\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %-12s\n", "design", "4K W/qubit", "70K W/qubit", "max qubits", "binding")
	fmt.Fprintf(&b, "%-24s %12.3g %12s %12.0f %-12s\n",
		base.Design.Name, base.PerQubit[wiring.Stage4K], "—", base.MaxQubits, base.Binding)
	fmt.Fprintf(&b, "%-24s %12.3g %12.3g %12.0f %-12s\n",
		ext.Design.Name, ext.PerQubit[wiring.Stage4K], ext.PerQubit[wiring.Stage70K], ext.MaxQubits, ext.Binding)
	fmt.Fprintf(&b, "offloading lifts the near-term design %.0f → %.0f qubits (+%.0f%%)\n",
		base.MaxQubits, ext.MaxQubits, 100*(ext.MaxQubits/base.MaxQubits-1))
	return b.String()
}

// Table3 prints the technology-maturity matrix (documentation).
func Table3() string {
	rows := []struct{ gate, c300, c4k, sfq4k, cable, ustrip, photonic string }{
		{"1Q gate", "E", "D", "D", "E", "C", "D"},
		{"2Q gate (CZ)", "E", "C", "C", "E", "C", "A"},
		{"Readout", "E", "C", "A", "E", "C", "D"},
	}
	var b strings.Builder
	b.WriteString("== Table 3 — maturity of QCI technologies ==\n")
	fmt.Fprintf(&b, "%-14s %10s %8s %7s %11s %10s %9s\n", "gate type", "300K CMOS", "4K CMOS", "4K SFQ", "300K cable", "4K µstrip", "photonic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10s %8s %7s %11s %10s %9s\n", r.gate, r.c300, r.c4k, r.sfq4k, r.cable, r.ustrip, r.photonic)
	}
	b.WriteString("A: no full approach / B: theoretical / C: circuit-level / D: qubit demo / E: >50-qubit system\n")
	return b.String()
}

// RunAll executes every experiment and concatenates the reports.
func RunAll() string {
	var b strings.Builder
	for _, id := range IDs() {
		s, err := Run(id)
		if err != nil {
			fmt.Fprintf(&b, "%s: ERROR %v\n", id, err)
			continue
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

// Headline is a compact machine-checkable summary of the reproduction.
type Headline struct {
	Name  string
	Ours  float64
	Paper float64
}

// Headlines returns the reproduction scorecard (ours vs paper).
func Headlines() []Headline {
	get := func(name string) float64 { return analyses(name)[0].MaxQubits }
	f15 := Fig15()
	f20 := Fig20()
	return []Headline{
		{"300K coax qubits", get("300K-coax"), 400},
		{"300K microstrip qubits", get("300K-microstrip"), 650},
		{"300K photonic qubits", get("300K-photonic"), 70},
		{"4K CMOS baseline qubits", get("4K-CMOS-baseline"), 700},
		{"4K CMOS Opt-1/2 qubits", get("4K-CMOS-opt12"), 1399},
		{"RSFQ baseline qubits", get("RSFQ-baseline"), 160},
		{"RSFQ Opt-3/4/5 qubits", get("RSFQ-opt345"), 1248},
		{"advanced CMOS qubits", get("4K-CMOS-advanced-opt67"), 63883},
		{"ERSFQ Opt-8 qubits", get("ERSFQ-opt8"), 82413},
		{"pipelined readout ns", f15.PipelinedNS, 1255},
		{"naive sharing ns", f15.NaiveNS, 5320},
		{"fast driving ns", f20.FastDriveNS, 230.9},
		{"Opt-8 error reduction", f20.ErrorReduction, 28355},
	}
}

// WorstHeadlineRatio returns the largest |ours/paper| deviation factor.
func WorstHeadlineRatio() float64 {
	worst := 1.0
	for _, h := range Headlines() {
		r := h.Ours / h.Paper
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// HeadlineTable renders the scorecard.
func HeadlineTable() string {
	var b strings.Builder
	b.WriteString("== Reproduction scorecard (ours vs paper) ==\n")
	fmt.Fprintf(&b, "%-28s %14s %14s %8s\n", "headline", "ours", "paper", "ratio")
	for _, h := range Headlines() {
		fmt.Fprintf(&b, "%-28s %14.4g %14.4g %8.2f\n", h.Name, h.Ours, h.Paper, h.Ours/h.Paper)
	}
	fmt.Fprintf(&b, "worst deviation factor: %.2fx\n", WorstHeadlineRatio())
	return b.String()
}

// ensure math is referenced even if future edits drop direct uses.
var _ = math.Inf

// Features prints the SupermarQ-style feature vectors of the Fig. 11 suite.
func Features() string {
	return "== SupermarQ feature vectors (12-qubit instances) ==\n" + workloads.FeatureTable(12)
}
