package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRun(t *testing.T) {
	s, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"DRAG", "CZ pulse shape", "IQ precision", "decision range",
		"FDM degree", "#BS", "sharing degree", "link energy"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("ablation report missing %q", marker)
		}
	}
}

func TestAblationRegisteredAsExperiment(t *testing.T) {
	if _, err := Run("ablations"); err != nil {
		t.Fatal(err)
	}
}

func TestAblationIQBitsShowsSaturation(t *testing.T) {
	s := AblationIQBits()
	// The 7-bit row must exist and the report must show a 2-bit penalty.
	if !strings.Contains(s, "7-bit") || !strings.Contains(s, "2-bit") {
		t.Fatalf("IQ ablation malformed:\n%s", s)
	}
}

func TestAblationBSTimeIndependent(t *testing.T) {
	s, err := AblationBS()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "#BS=1 is free") {
		t.Fatalf("missing Opt-#5 conclusion:\n%s", s)
	}
}

func TestAblationSharingSixteenOvershoots(t *testing.T) {
	// The generalised Opt-#3 study: 16-way sharing must push p_L above the
	// near-term target (1.11e-11) while 8-way stays below — exactly why the
	// paper picked 8.
	s := AblationSharing()
	if !strings.Contains(s, "16") {
		t.Fatalf("sharing ablation missing the 16-way row:\n%s", s)
	}
}

func TestFigureCSV(t *testing.T) {
	for _, id := range []string{"fig12", "fig13", "fig17"} {
		s, err := FigureCSV(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "design,qubits") || len(strings.Split(s, "\n")) < 10 {
			t.Fatalf("%s CSV malformed:\n%s", id, s)
		}
	}
	if _, err := FigureCSV("fig8"); err == nil {
		t.Fatal("non-sweep figures must be rejected")
	}
}
