package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		s, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(s) < 40 {
			t.Fatalf("%s: suspiciously short report:\n%s", id, s)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestHeadlinesWithinBand(t *testing.T) {
	for _, h := range Headlines() {
		r := h.Ours / h.Paper
		if r < 1 {
			r = 1 / r
		}
		// Every headline within ~2.1x (the photonic design is the worst at
		// ~2x — same order, same binding constraint); most are within 15%.
		if r > 2.2 {
			t.Errorf("%s: ours %.4g vs paper %.4g (%.2fx)", h.Name, h.Ours, h.Paper, r)
		}
	}
	if w := WorstHeadlineRatio(); w > 2.2 {
		t.Fatalf("worst headline deviation %.2fx", w)
	}
}

func TestMostHeadlinesTight(t *testing.T) {
	tight := 0
	for _, h := range Headlines() {
		r := h.Ours / h.Paper
		if r < 1 {
			r = 1 / r
		}
		if r <= 1.15 {
			tight++
		}
	}
	if tight < 10 {
		t.Fatalf("only %d/%d headlines within 15%% of the paper", tight, len(Headlines()))
	}
}

func TestFig14Saturation(t *testing.T) {
	r := Fig14()
	if r.LogicalSaturationBits > r.GateSaturationBits {
		t.Fatalf("logical error must saturate earlier (at %d bits) than gate error (%d)",
			r.LogicalSaturationBits, r.GateSaturationBits)
	}
	if r.LogicalSaturationBits < 4 || r.LogicalSaturationBits > 7 {
		t.Fatalf("logical saturation at %d bits, paper says 6", r.LogicalSaturationBits)
	}
	if r.GateSaturationBits < 7 || r.GateSaturationBits > 11 {
		t.Fatalf("gate saturation at %d bits, paper says ~9", r.GateSaturationBits)
	}
}

func TestFig15Ordering(t *testing.T) {
	r := Fig15()
	if !(r.UnsharedNS < r.PipelinedNS && r.PipelinedNS < r.NaiveNS) {
		t.Fatalf("latency ordering broken: %v / %v / %v", r.UnsharedNS, r.PipelinedNS, r.NaiveNS)
	}
	if !(r.UnsharedPL < r.PipelinedPL && r.PipelinedPL < r.NaivePL) {
		t.Fatalf("error ordering broken: %v / %v / %v", r.UnsharedPL, r.PipelinedPL, r.NaivePL)
	}
}

func TestFig16Bands(t *testing.T) {
	r := Fig16()
	if r.BitgenReduction < 0.93 {
		t.Fatalf("bitgen reduction %.3f, paper 0.982", r.BitgenReduction)
	}
	if r.BSReductionSaving < 0.38 || r.BSReductionSaving > 0.50 {
		t.Fatalf("#BS saving %.3f, paper 0.438", r.BSReductionSaving)
	}
}

func TestFig18Bands(t *testing.T) {
	r := Fig18()
	if r.WireShare < 0.70 || r.WireShare > 0.90 {
		t.Fatalf("wire share %.3f, paper 0.812", r.WireShare)
	}
	if r.BandwidthSaved < 0.88 {
		t.Fatalf("bandwidth saving %.3f, paper 0.93", r.BandwidthSaved)
	}
}

func TestFig19Bands(t *testing.T) {
	r := Fig19()
	if r.MultiRound.Speedup < 0.30 || r.MultiRound.Speedup > 0.55 {
		t.Fatalf("multi-round speedup %.3f, paper 0.409", r.MultiRound.Speedup)
	}
	if r.MultiRound.Error > 1.3*r.BinError {
		t.Fatal("multi-round must match bin-counting error")
	}
}

func TestFig20Bands(t *testing.T) {
	r := Fig20()
	if r.ErrorReduction < 5e3 || r.ErrorReduction > 1e5 {
		t.Fatalf("Opt-#8 error reduction %.0f, paper 28,355", r.ErrorReduction)
	}
	if r.MaxQubits < 62208 {
		t.Fatalf("ERSFQ scale %.0f must exceed the 62,208 long-term goal", r.MaxQubits)
	}
}

func TestRunAllContainsEverySection(t *testing.T) {
	s := RunAll()
	for _, marker := range []string{"Fig. 8", "Fig. 10", "Table 1", "Fig. 11", "Table 2",
		"Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17", "Fig. 18",
		"Fig. 19", "Fig. 20", "Table 3"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("RunAll output missing %q", marker)
		}
	}
}

func TestDSEExperiment(t *testing.T) {
	r1, err := DSE()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome.GridSize != 48 || r1.Outcome.Evaluated+r1.Outcome.Pruned != 48 {
		t.Fatalf("outcome %+v", r1.Outcome)
	}
	if len(r1.Outcome.Frontier.Points) == 0 {
		t.Fatal("empty frontier")
	}
	// The Fig. 17 conclusion: ERSFQ-opt8 leads the frontier.
	if got, _ := r1.Outcome.Frontier.Points[0].Params["design"].(string); got != "ERSFQ-opt8" {
		t.Fatalf("frontier leader %q, want ERSFQ-opt8", got)
	}
	// Deterministic: a second run serialises byte-identically.
	r2, err := DSE()
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Canonical) != string(r2.Canonical) {
		t.Fatalf("canonical outcome differs across runs:\n%s\n%s", r1.Canonical, r2.Canonical)
	}
}
