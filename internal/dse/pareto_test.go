package dse

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

var testObjs = []Objective{
	{Metric: "q", Goal: Max},
	{Metric: "p", Goal: Min},
	{Metric: "e", Goal: Min},
}

func TestDominates(t *testing.T) {
	a := map[string]float64{"q": 10, "p": 1, "e": 0.1}
	b := map[string]float64{"q": 5, "p": 2, "e": 0.1}
	if !Dominates(testObjs, a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(testObjs, b, a) {
		t.Error("b must not dominate a")
	}
	// Equal points: neither dominates.
	if Dominates(testObjs, a, a) {
		t.Error("a point must not dominate itself")
	}
	// Trade-off: better q, worse p — no dominance either way.
	c := map[string]float64{"q": 20, "p": 5, "e": 0.1}
	if Dominates(testObjs, a, c) || Dominates(testObjs, c, a) {
		t.Error("trade-off points must be incomparable")
	}
	// Missing metric counts as worst.
	d := map[string]float64{"q": 10, "p": 1}
	if !Dominates(testObjs, a, d) {
		t.Error("a should dominate d (missing metric is worst-case)")
	}
}

func TestStrictlyDominates(t *testing.T) {
	a := map[string]float64{"q": 10, "p": 1, "e": 0.1}
	weak := map[string]float64{"q": 5, "p": 2, "e": 0.1} // ties on e
	if StrictlyDominates(testObjs, a, weak) {
		t.Error("tie on one objective must defeat strict dominance")
	}
	strict := map[string]float64{"q": 5, "p": 2, "e": 0.2}
	if !StrictlyDominates(testObjs, a, strict) {
		t.Error("a should strictly dominate strict")
	}
}

// naiveFrontier is the O(n²) reference: keep exactly the points not
// dominated by any other point.
func naiveFrontier(objs []Objective, cs []Candidate) []Candidate {
	var out []Candidate
	for i, c := range cs {
		dominated := false
		for j, d := range cs {
			if i != j && Dominates(objs, d.Metrics, c.Metrics) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func frontierKey(cs []Candidate) string {
	b, _ := json.Marshal(cs)
	return string(b)
}

// TestFrontierMatchesNaiveReference folds random point clouds through the
// incremental frontier and checks the surviving set against the quadratic
// reference, across sizes, dimensionalities and duplicate densities.
func TestFrontierMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		nObjs := 1 + rng.Intn(4)
		objs := make([]Objective, nObjs)
		for i := range objs {
			g := Max
			if rng.Intn(2) == 0 {
				g = Min
			}
			objs[i] = Objective{Metric: fmt.Sprintf("m%d", i), Goal: g}
		}
		n := 1 + rng.Intn(60)
		// Small value alphabet so exact ties and duplicates are common.
		vals := []float64{0, 1, 2, 3}
		cs := make([]Candidate, n)
		for i := range cs {
			m := map[string]float64{}
			for _, o := range objs {
				m[o.Metric] = vals[rng.Intn(len(vals))]
			}
			cs[i] = Candidate{Index: i, Metrics: m}
		}
		f := NewFrontier(objs)
		for _, c := range cs {
			f.Add(c)
		}
		got := f.Snapshot().Points
		want := naiveFrontier(objs, cs)
		if frontierKey(got) != frontierKey(want) {
			t.Fatalf("trial %d (%d objs, %d pts): frontier mismatch\n got %s\nwant %s",
				trial, nObjs, n, frontierKey(got), frontierKey(want))
		}
	}
}

// TestFrontierFoldOrderIndependent shuffles the fold order and checks the
// surviving set never changes — the property the sweep's byte-identity
// contract leans on.
func TestFrontierFoldOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{Index: i, Metrics: map[string]float64{
				"q": float64(rng.Intn(5)),
				"p": float64(rng.Intn(5)),
				"e": float64(rng.Intn(5)),
			}}
		}
		fold := func(order []int) string {
			f := NewFrontier(testObjs)
			for _, i := range order {
				f.Add(cs[i])
			}
			return frontierKey(f.Snapshot().Points)
		}
		base := make([]int, n)
		for i := range base {
			base[i] = i
		}
		ref := fold(base)
		for shuffle := 0; shuffle < 5; shuffle++ {
			rng.Shuffle(n, func(i, j int) { base[i], base[j] = base[j], base[i] })
			if got := fold(base); got != ref {
				t.Fatalf("trial %d: fold order changed the frontier\n got %s\nwant %s", trial, got, ref)
			}
		}
	}
}

func TestPruneBoundSafety(t *testing.T) {
	f := NewFrontier(testObjs)
	f.Add(Candidate{Index: 0, Metrics: map[string]float64{"q": 10, "p": 1, "e": 0.1}})
	// Bound strictly worse on all objectives: prunable.
	if !f.PruneBound(map[string]float64{"q": 5, "p": 2, "e": 0.2}) {
		t.Error("strictly dominated bound should prune")
	}
	// Bound that ties on one objective: NOT prunable (the real point could
	// tie the member and equal points are kept on the frontier).
	if f.PruneBound(map[string]float64{"q": 10, "p": 2, "e": 0.2}) {
		t.Error("bound tying a member on q must not prune")
	}
	// Bound better on one objective: not prunable.
	if f.PruneBound(map[string]float64{"q": 20, "p": 2, "e": 0.2}) {
		t.Error("bound beating the member on q must not prune")
	}
}

func TestCheckObjectives(t *testing.T) {
	if err := CheckObjectives(nil); err == nil {
		t.Error("empty objectives: expected error")
	}
	if err := CheckObjectives([]Objective{{Metric: "a", Goal: "maximize"}}); err == nil {
		t.Error("bad goal: expected error")
	}
	if err := CheckObjectives([]Objective{{Metric: "a", Goal: Max}, {Metric: "a", Goal: Min}}); err == nil {
		t.Error("duplicate metric: expected error")
	}
	if err := CheckObjectives(testObjs); err != nil {
		t.Errorf("valid objectives rejected: %v", err)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	f := NewFrontier(testObjs)
	f.Add(Candidate{Index: 3, Metrics: map[string]float64{"q": 1, "p": 1, "e": 1}})
	s := f.Snapshot()
	f.Add(Candidate{Index: 1, Metrics: map[string]float64{"q": 9, "p": 0.1, "e": 0.1}})
	if len(s.Points) != 1 || s.Points[0].Index != 3 {
		t.Errorf("snapshot mutated by later Add: %+v", s.Points)
	}
	if !reflect.DeepEqual(s.Objectives, testObjs) {
		t.Errorf("snapshot objectives = %+v", s.Objectives)
	}
}
