package dse

import (
	"context"

	"qisim/internal/simerr"
)

// DefaultWave is the number of grid points dispatched per wave when the
// policy does not override it.
const DefaultWave = 32

// Policy controls how a sweep walks its grid.
type Policy struct {
	// Wave is the number of points dispatched together; the sweep waits for
	// a whole wave to commit before deciding anything about the next one.
	Wave int `json:"wave,omitempty"`
	// Prune skips points whose optimistic bound is strictly dominated by
	// the committed frontier (safe: cannot change the final frontier).
	Prune bool `json:"prune"`
}

// Normalized applies defaults.
func (p Policy) Normalized() Policy {
	if p.Wave <= 0 {
		p.Wave = DefaultWave
	}
	return p
}

// EvalWave evaluates one wave of points and returns their objective
// metrics in the same order. Implementations may fan the points out across
// workers or a fleet; the driver folds the returned metrics in point-index
// order, so parallelism inside a wave never affects the outcome.
type EvalWave func(ctx context.Context, pts []Point) ([]map[string]float64, error)

// BoundFn returns optimistic metrics for an unevaluated point: for every
// objective, a value at least as good as the point can actually achieve.
// nil disables pruning regardless of policy.
type BoundFn func(p Point) map[string]float64

// Progress is the per-wave report passed to the sweep observer.
type Progress struct {
	Wave      int      `json:"wave"`  // waves committed so far
	Waves     int      `json:"waves"` // total waves in the grid
	Evaluated int      `json:"evaluated"`
	Pruned    int      `json:"pruned"`
	Total     int      `json:"total"`
	Frontier  Snapshot `json:"frontier"`
}

// Outcome is the deterministic result of a sweep: for a fixed grid,
// objectives and policy it is identical no matter how EvalWave scheduled
// the work. It deliberately excludes volatile facts (cache hits, worker
// counts, timing) so its serialised form can be pinned byte-for-byte.
type Outcome struct {
	GridSize  int      `json:"grid_size"`
	Waves     int      `json:"waves"`
	Evaluated int      `json:"evaluated"`
	Pruned    int      `json:"pruned"`
	Frontier  Snapshot `json:"frontier"`
}

// RunSweep walks the grid in waves: each wave's unpruned points are handed
// to eval as a batch, the results fold into the frontier in index order,
// and only then is the next wave planned — so prune decisions depend only
// on fully-committed earlier waves (the committed-prefix rule, mirroring
// the Monte-Carlo engine's contiguous-prefix merge). onWave, if non-nil,
// observes the frontier after every committed wave.
//
// On cancellation (or an eval error) RunSweep returns the outcome built
// from the waves committed so far together with the error, so callers can
// publish a truncated partial with the same determinism guarantee.
func RunSweep(ctx context.Context, g Grid, objs []Objective, pol Policy, bound BoundFn, eval EvalWave, onWave func(Progress)) (Outcome, error) {
	if err := CheckObjectives(objs); err != nil {
		return Outcome{}, err
	}
	pts, err := g.Points()
	if err != nil {
		return Outcome{}, err
	}
	pol = pol.Normalized()
	out := Outcome{GridSize: len(pts), Waves: (len(pts) + pol.Wave - 1) / pol.Wave}
	frontier := NewFrontier(objs)
	out.Frontier = frontier.Snapshot()
	for w := 0; w < out.Waves; w++ {
		if err := ctx.Err(); err != nil {
			return out, simerr.Interruptedf("dse: sweep canceled after wave %d/%d: %v", w, out.Waves, err)
		}
		lo, hi := w*pol.Wave, (w+1)*pol.Wave
		if hi > len(pts) {
			hi = len(pts)
		}
		batch := make([]Point, 0, hi-lo)
		for _, p := range pts[lo:hi] {
			if pol.Prune && bound != nil && frontier.PruneBound(bound(p)) {
				out.Pruned++
				continue
			}
			batch = append(batch, p)
		}
		metrics, err := eval(ctx, batch)
		if err != nil {
			out.Frontier = frontier.Snapshot()
			return out, err
		}
		if len(metrics) != len(batch) {
			out.Frontier = frontier.Snapshot()
			return out, simerr.Numericalf("dse: eval returned %d results for a %d-point wave", len(metrics), len(batch))
		}
		for i, p := range batch {
			frontier.Add(Candidate{Index: p.Index, Params: p.Coords, Metrics: metrics[i]})
		}
		out.Evaluated += len(batch)
		out.Frontier = frontier.Snapshot()
		if onWave != nil {
			onWave(Progress{
				Wave: w + 1, Waves: out.Waves,
				Evaluated: out.Evaluated, Pruned: out.Pruned, Total: out.GridSize,
				Frontier: out.Frontier,
			})
		}
	}
	return out, nil
}
