package dse

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"qisim/internal/simerr"
)

// synthetic objective surface: q rises with x, p rises with x², e falls
// with y — so the frontier is a genuine trade-off curve.
func synthEval(ctx context.Context, pts []Point) ([]map[string]float64, error) {
	out := make([]map[string]float64, len(pts))
	for i, p := range pts {
		x := p.Coords["x"].(float64)
		y := p.Coords["y"].(float64)
		out[i] = map[string]float64{
			"q": x * 10,
			"p": x * x,
			"e": 1 / (1 + y),
		}
	}
	return out, nil
}

func synthGrid() Grid {
	return Grid{Axes: []Axis{
		{Name: "x", Range: &Range{From: 1, To: 10, Step: 1}},
		{Name: "y", Range: &Range{From: 0, To: 4, Step: 1}},
	}}
}

func outcomeKey(t *testing.T, o Outcome) string {
	t.Helper()
	b, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunSweepCoversGrid(t *testing.T) {
	o, err := RunSweep(context.Background(), synthGrid(), testObjs, Policy{Wave: 7}, nil, synthEval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.GridSize != 50 || o.Evaluated != 50 || o.Pruned != 0 {
		t.Errorf("outcome = %+v, want 50 evaluated", o)
	}
	if o.Waves != 8 { // ceil(50/7)
		t.Errorf("waves = %d, want 8", o.Waves)
	}
	if len(o.Frontier.Points) == 0 {
		t.Error("empty frontier")
	}
}

// TestRunSweepPruningPreservesFrontier is the load-bearing safety property:
// with a correct optimistic bound, the pruned sweep's frontier is identical
// to the unpruned one (and the prune counter actually fires).
func TestRunSweepPruningPreservesFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(60)
		metricsByIdx := make([]map[string]float64, n)
		for i := range metricsByIdx {
			metricsByIdx[i] = map[string]float64{
				"q": float64(rng.Intn(8)),
				"p": float64(rng.Intn(8)),
				"e": float64(rng.Intn(8)),
			}
		}
		g := Grid{Axes: []Axis{{Name: "i", Range: &Range{From: 0, To: float64(n - 1), Step: 1}}}}
		eval := func(ctx context.Context, pts []Point) ([]map[string]float64, error) {
			out := make([]map[string]float64, len(pts))
			for i, p := range pts {
				out[i] = metricsByIdx[p.Index]
			}
			return out, nil
		}
		// A correct optimistic bound: each metric nudged toward its goal.
		bound := func(p Point) map[string]float64 {
			m := metricsByIdx[p.Index]
			return map[string]float64{"q": m["q"] + 0.5, "p": m["p"] - 0.5, "e": m["e"] - 0.5}
		}
		plain, err := RunSweep(context.Background(), g, testObjs, Policy{Wave: 8}, nil, eval, nil)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := RunSweep(context.Background(), g, testObjs, Policy{Wave: 8, Prune: true}, bound, eval, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(plain.Frontier)
		b, _ := json.Marshal(pruned.Frontier)
		if string(a) != string(b) {
			t.Fatalf("trial %d: pruning changed the frontier\n plain %s\npruned %s", trial, a, b)
		}
		if pruned.Evaluated+pruned.Pruned != n {
			t.Errorf("trial %d: evaluated %d + pruned %d != %d", trial, pruned.Evaluated, pruned.Pruned, n)
		}
	}
}

func TestRunSweepPruneActuallyFires(t *testing.T) {
	// First wave contains the global optimum, so later dominated points
	// must be skipped.
	g := Grid{Axes: []Axis{{Name: "i", Range: &Range{From: 0, To: 63, Step: 1}}}}
	eval := func(ctx context.Context, pts []Point) ([]map[string]float64, error) {
		out := make([]map[string]float64, len(pts))
		for i, p := range pts {
			if p.Index == 0 {
				out[i] = map[string]float64{"q": 100, "p": 0, "e": 0}
			} else {
				out[i] = map[string]float64{"q": 1, "p": 10, "e": 10}
			}
		}
		return out, nil
	}
	bound := func(p Point) map[string]float64 {
		if p.Index == 0 {
			return map[string]float64{"q": 100, "p": 0, "e": 0}
		}
		return map[string]float64{"q": 2, "p": 9, "e": 9}
	}
	o, err := RunSweep(context.Background(), g, testObjs, Policy{Wave: 8, Prune: true}, bound, eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Pruned != 56 { // waves 2..8 entirely pruned
		t.Errorf("pruned = %d, want 56", o.Pruned)
	}
	if len(o.Frontier.Points) != 1 || o.Frontier.Points[0].Index != 0 {
		t.Errorf("frontier = %+v, want just point 0", o.Frontier.Points)
	}
}

func TestRunSweepWaveProgress(t *testing.T) {
	var waves []Progress
	_, err := RunSweep(context.Background(), synthGrid(), testObjs, Policy{Wave: 13}, nil, synthEval,
		func(p Progress) { waves = append(waves, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 4 {
		t.Fatalf("got %d wave reports, want 4", len(waves))
	}
	for i, w := range waves {
		if w.Wave != i+1 || w.Waves != 4 || w.Total != 50 {
			t.Errorf("wave %d report = %+v", i, w)
		}
		if len(w.Frontier.Points) == 0 {
			t.Errorf("wave %d: empty partial frontier", i)
		}
	}
	if waves[3].Evaluated != 50 {
		t.Errorf("final evaluated = %d, want 50", waves[3].Evaluated)
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	eval := func(c context.Context, pts []Point) ([]map[string]float64, error) {
		evals++
		if evals == 2 {
			cancel() // cancel after the second wave commits
		}
		return synthEval(c, pts)
	}
	o, err := RunSweep(ctx, synthGrid(), testObjs, Policy{Wave: 10}, nil, eval, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, simerr.ErrInterrupted) {
		t.Errorf("error class = %v, want interrupted", simerr.Class(err))
	}
	if o.Evaluated != 20 {
		t.Errorf("evaluated = %d, want the two committed waves (20)", o.Evaluated)
	}
	if len(o.Frontier.Points) == 0 {
		t.Error("truncated outcome lost its committed frontier")
	}
}

// TestRunSweepDeterministicOutcome pins that two identical sweeps produce
// byte-identical serialised outcomes, including with pruning on.
func TestRunSweepDeterministicOutcome(t *testing.T) {
	bound := func(p Point) map[string]float64 {
		x := p.Coords["x"].(float64)
		return map[string]float64{"q": x*10 + 1, "p": x*x - 1, "e": 0}
	}
	run := func() string {
		o, err := RunSweep(context.Background(), synthGrid(), testObjs, Policy{Wave: 9, Prune: true}, bound, synthEval, nil)
		if err != nil {
			t.Fatal(err)
		}
		return outcomeKey(t, o)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical sweeps diverged:\n%s\n%s", a, b)
	}
}
