package dse

import (
	"math"
	"sort"

	"qisim/internal/simerr"
)

// Goal orients one objective: maximise or minimise its metric.
type Goal string

const (
	Max Goal = "max"
	Min Goal = "min"
)

// Objective names one metric of the multi-objective comparison.
type Objective struct {
	Metric string `json:"metric"`
	Goal   Goal   `json:"goal"`
}

// CheckObjectives validates an objective list: at least one, no duplicate
// metrics, goals restricted to max|min.
func CheckObjectives(objs []Objective) error {
	if len(objs) == 0 {
		return simerr.Invalidf("dse: need at least one objective")
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if o.Metric == "" {
			return simerr.Invalidf("dse: objective needs a metric name")
		}
		if seen[o.Metric] {
			return simerr.Invalidf("dse: duplicate objective metric %q", o.Metric)
		}
		seen[o.Metric] = true
		if o.Goal != Max && o.Goal != Min {
			return simerr.Invalidf("dse: objective %q goal must be \"max\" or \"min\", got %q", o.Metric, o.Goal)
		}
	}
	return nil
}

// better reports whether value a improves on b under the goal (strictly).
func (o Objective) better(a, b float64) bool {
	if o.Goal == Max {
		return a > b
	}
	return a < b
}

// Candidate is one evaluated design point entering the frontier fold.
// Metrics holds every objective metric (and may carry extras, ignored by
// dominance). Params is the point's canonical coordinate JSON.
type Candidate struct {
	Index   int                `json:"index"`
	Params  map[string]any     `json:"params"`
	Metrics map[string]float64 `json:"metrics"`
}

// Dominates reports whether a Pareto-dominates b under objs: a is at least
// as good on every objective and strictly better on at least one. Metrics
// missing from a map count as the worst possible value for that goal.
func Dominates(objs []Objective, a, b map[string]float64) bool {
	strict := false
	for _, o := range objs {
		av, bv := metric(o, a), metric(o, b)
		if o.better(bv, av) {
			return false
		}
		if o.better(av, bv) {
			strict = true
		}
	}
	return strict
}

// StrictlyDominates reports whether a is strictly better than b on EVERY
// objective. This is the pruning predicate: if a frontier member strictly
// dominates a point's optimistic bound, the point's true metrics (each no
// better than the bound) are strictly dominated too, so the point can never
// join the frontier — pruning it provably cannot change the final frontier.
func StrictlyDominates(objs []Objective, a, b map[string]float64) bool {
	for _, o := range objs {
		if !o.better(metric(o, a), metric(o, b)) {
			return false
		}
	}
	return true
}

func metric(o Objective, m map[string]float64) float64 {
	v, ok := m[o.Metric]
	if !ok {
		// Missing metric: worst value for the goal, so the point never
		// spuriously dominates anything on data it does not have.
		if o.Goal == Max {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	return v
}

// Frontier incrementally maintains the Pareto-optimal subset of the
// candidates folded into it. The surviving set is the set of non-dominated
// points, which is independent of fold order; points equal on every
// objective are all kept. Members are stored sorted by grid index so
// snapshots serialise deterministically.
type Frontier struct {
	objs []Objective
	pts  []Candidate
}

// NewFrontier builds an empty frontier over the given objectives.
func NewFrontier(objs []Objective) *Frontier {
	return &Frontier{objs: append([]Objective(nil), objs...)}
}

// Add folds one candidate: dominated members are evicted, and c joins
// unless some member dominates it. Returns whether c survived.
func (f *Frontier) Add(c Candidate) bool {
	keep := f.pts[:0]
	for _, p := range f.pts {
		if Dominates(f.objs, p.Metrics, c.Metrics) {
			// c is dominated: no existing member can be dominated by c
			// (dominance is transitive), so the frontier is unchanged.
			return false
		}
		if !Dominates(f.objs, c.Metrics, p.Metrics) {
			keep = append(keep, p)
		}
	}
	f.pts = append(keep, c)
	sort.Slice(f.pts, func(i, j int) bool { return f.pts[i].Index < f.pts[j].Index })
	return true
}

// PruneBound reports whether a point with the given optimistic bound can be
// skipped: true iff some frontier member strictly dominates the bound on
// every objective (see StrictlyDominates for why that is frontier-safe).
func (f *Frontier) PruneBound(bound map[string]float64) bool {
	for _, p := range f.pts {
		if StrictlyDominates(f.objs, p.Metrics, bound) {
			return true
		}
	}
	return false
}

// Len returns the number of frontier members.
func (f *Frontier) Len() int { return len(f.pts) }

// Snapshot is a serialisable frontier state: objectives plus the members
// sorted by grid index.
type Snapshot struct {
	Objectives []Objective `json:"objectives"`
	Points     []Candidate `json:"points"`
}

// Snapshot copies the current frontier (members in index order).
func (f *Frontier) Snapshot() Snapshot {
	out := Snapshot{Objectives: append([]Objective(nil), f.objs...)}
	out.Points = append([]Candidate(nil), f.pts...)
	return out
}
