package dse

import (
	"encoding/json"
	"math"
	"testing"
)

func TestAxisExpandList(t *testing.T) {
	a := Axis{Name: "design", Values: []any{"a", "b", 3.5}}
	got, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []any{"a", "b", 3.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAxisExpandRange(t *testing.T) {
	a := Axis{Name: "distance", Range: &Range{From: 3, To: 11, Step: 2}}
	got, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].(float64) != w {
			t.Errorf("value %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestAxisExpandLogRange(t *testing.T) {
	a := Axis{Name: "err", LogRange: &LogRange{From: 1e-5, To: 1e-3, Points: 3}}
	got, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Endpoints exact, midpoint geometric.
	if got[0].(float64) != 1e-5 || got[2].(float64) != 1e-3 {
		t.Errorf("endpoints = %v, %v; want exact 1e-5, 1e-3", got[0], got[2])
	}
	mid := got[1].(float64)
	if math.Abs(mid-1e-4)/1e-4 > 1e-12 {
		t.Errorf("midpoint = %v, want ~1e-4", mid)
	}
}

func TestAxisExpandErrors(t *testing.T) {
	cases := []Axis{
		{},                               // no name
		{Name: "x"},                      // no generator
		{Name: "x", Values: []any{}},     // empty list
		{Name: "x", Values: []any{true}}, // bad type
		{Name: "x", Values: []any{math.NaN()}},
		{Name: "x", Range: &Range{From: 0, To: 1, Step: 0}},
		{Name: "x", Range: &Range{From: 2, To: 1, Step: 1}},
		{Name: "x", Range: &Range{From: 0, To: 1e9, Step: 1e-3}}, // too many
		{Name: "x", LogRange: &LogRange{From: 0, To: 1, Points: 4}},
		{Name: "x", LogRange: &LogRange{From: 1, To: 2, Points: 0}},
		{Name: "x", Values: []any{1.0}, Range: &Range{From: 0, To: 1, Step: 1}}, // two forms
	}
	for i, a := range cases {
		if _, err := a.Expand(); err == nil {
			t.Errorf("case %d: expected error, got none", i)
		}
	}
}

func TestGridPointsRowMajor(t *testing.T) {
	g := Grid{Axes: []Axis{
		{Name: "a", Values: []any{"x", "y"}},
		{Name: "b", Values: []any{1.0, 2.0, 3.0}},
	}}
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("size = %d, want 6", len(pts))
	}
	// Axis 0 slowest, axis 1 fastest.
	wantA := []string{"x", "x", "x", "y", "y", "y"}
	wantB := []float64{1, 2, 3, 1, 2, 3}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if p.Coords["a"] != wantA[i] || p.Coords["b"] != wantB[i] {
			t.Errorf("point %d = %v, want a=%v b=%v", i, p.Coords, wantA[i], wantB[i])
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := (Grid{}).Points(); err == nil {
		t.Error("empty grid: expected error")
	}
	dup := Grid{Axes: []Axis{
		{Name: "a", Values: []any{1.0}},
		{Name: "a", Values: []any{2.0}},
	}}
	if _, err := dup.Points(); err == nil {
		t.Error("duplicate axis: expected error")
	}
	big := Grid{Axes: []Axis{
		{Name: "a", Range: &Range{From: 0, To: 999, Step: 1}},
		{Name: "b", Range: &Range{From: 0, To: 999, Step: 1}},
	}}
	if _, err := big.Points(); err == nil {
		t.Error("oversized grid: expected error")
	}
}

func TestCanonicalParamsDeterministic(t *testing.T) {
	p := Point{Index: 0, Coords: map[string]any{"b": 2.0, "a": "x", "c": 1e-4}}
	raw, err := p.CanonicalParams()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":"x","b":2,"c":0.0001}`
	if string(raw) != want {
		t.Errorf("canonical params = %s, want %s", raw, want)
	}
	if !json.Valid(raw) {
		t.Error("canonical params are not valid JSON")
	}
}

func TestGridRoundTripsThroughJSON(t *testing.T) {
	// A grid decoded from a request body (axis values land as float64)
	// expands identically to one built in Go.
	blob := `{"axes":[{"name":"design","values":["a","b"]},{"name":"distance","range":{"from":3,"to":7,"step":2}}]}`
	var g Grid
	if err := json.Unmarshal([]byte(blob), &g); err != nil {
		t.Fatal(err)
	}
	n, err := g.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("size = %d, want 6", n)
	}
}
