// Package dse is the design-space exploration layer (ROADMAP item 4): it
// expands multi-axis parameter grids into deterministic point sequences,
// folds evaluated points into Pareto frontiers, and drives wave-based
// sweeps whose pruning decisions depend only on a committed prefix of
// results — so the final frontier is byte-identical regardless of how many
// workers evaluated the points, which tenants interleaved, or whether the
// coordinator crashed and recovered mid-sweep (see DESIGN.md
// "Design-space exploration").
package dse

import (
	"encoding/json"
	"math"
	"sort"

	"qisim/internal/simerr"
)

// MaxAxisValues bounds a single axis expansion and MaxGridSize bounds the
// whole grid, so a typo'd step cannot OOM the coordinator.
const (
	MaxAxisValues = 4096
	MaxGridSize   = 100_000
)

// Range generates the inclusive arithmetic progression from, from+step, …
// up to (and including, within rounding) to.
type Range struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

// LogRange generates Points values multiplicatively spaced between From and
// To inclusive (both endpoints exact).
type LogRange struct {
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
}

// Axis is one dimension of a design-space grid. Exactly one generator form
// must be set. Values entries are either strings (e.g. design names) or
// numbers; Range/LogRange always produce numbers.
type Axis struct {
	Name     string    `json:"name"`
	Values   []any     `json:"values,omitempty"`
	Range    *Range    `json:"range,omitempty"`
	LogRange *LogRange `json:"log_range,omitempty"`
}

// Expand materialises the axis values in their deterministic order.
func (a Axis) Expand() ([]any, error) {
	if a.Name == "" {
		return nil, simerr.Invalidf("dse: axis needs a name")
	}
	forms := 0
	if a.Values != nil {
		forms++
	}
	if a.Range != nil {
		forms++
	}
	if a.LogRange != nil {
		forms++
	}
	if forms != 1 {
		return nil, simerr.Invalidf("dse: axis %q must set exactly one of values, range, log_range", a.Name)
	}
	switch {
	case a.Values != nil:
		if len(a.Values) == 0 {
			return nil, simerr.Invalidf("dse: axis %q has an empty values list", a.Name)
		}
		if len(a.Values) > MaxAxisValues {
			return nil, simerr.Invalidf("dse: axis %q lists %d values (max %d)", a.Name, len(a.Values), MaxAxisValues)
		}
		out := make([]any, len(a.Values))
		for i, v := range a.Values {
			switch t := v.(type) {
			case string:
				out[i] = t
			case float64:
				if math.IsNaN(t) || math.IsInf(t, 0) {
					return nil, simerr.Invalidf("dse: axis %q value %d is not finite", a.Name, i)
				}
				out[i] = t
			case int:
				out[i] = float64(t)
			default:
				return nil, simerr.Invalidf("dse: axis %q value %d must be a string or number, got %T", a.Name, i, v)
			}
		}
		return out, nil
	case a.Range != nil:
		r := *a.Range
		if !finite(r.From) || !finite(r.To) || !finite(r.Step) {
			return nil, simerr.Invalidf("dse: axis %q range bounds must be finite", a.Name)
		}
		if r.Step <= 0 {
			return nil, simerr.Invalidf("dse: axis %q range step must be positive, got %v", a.Name, r.Step)
		}
		if r.To < r.From {
			return nil, simerr.Invalidf("dse: axis %q range has to < from", a.Name)
		}
		// Count first, then generate by index: from + i*step accumulates no
		// rounding drift, so the sequence is reproducible bit-for-bit.
		n := int(math.Floor((r.To-r.From)/r.Step+1e-9)) + 1
		if n > MaxAxisValues {
			return nil, simerr.Invalidf("dse: axis %q range expands to %d values (max %d)", a.Name, n, MaxAxisValues)
		}
		out := make([]any, n)
		for i := 0; i < n; i++ {
			out[i] = r.From + float64(i)*r.Step
		}
		return out, nil
	default:
		lr := *a.LogRange
		if !finite(lr.From) || !finite(lr.To) {
			return nil, simerr.Invalidf("dse: axis %q log_range bounds must be finite", a.Name)
		}
		if lr.From <= 0 || lr.To < lr.From {
			return nil, simerr.Invalidf("dse: axis %q log_range needs 0 < from <= to", a.Name)
		}
		if lr.Points < 1 || lr.Points > MaxAxisValues {
			return nil, simerr.Invalidf("dse: axis %q log_range points must be in [1, %d], got %d", a.Name, MaxAxisValues, lr.Points)
		}
		if lr.Points == 1 {
			return []any{lr.From}, nil
		}
		out := make([]any, lr.Points)
		// Endpoints are pinned exactly; interior points interpolate in log
		// space by index so the sequence never drifts with accumulation.
		out[0], out[lr.Points-1] = lr.From, lr.To
		lf, lt := math.Log(lr.From), math.Log(lr.To)
		for i := 1; i < lr.Points-1; i++ {
			frac := float64(i) / float64(lr.Points-1)
			out[i] = math.Exp(lf + frac*(lt-lf))
		}
		return out, nil
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Grid is an ordered list of axes. Point order is row-major: axis 0 varies
// slowest, the last axis fastest — the mixed-radix decode of the point
// index. The order is part of the deterministic contract: wave boundaries
// and therefore prune decisions are defined over it.
type Grid struct {
	Axes []Axis `json:"axes"`
}

// Expanded validates the grid and materialises every axis.
func (g Grid) Expanded() ([][]any, error) {
	if len(g.Axes) == 0 {
		return nil, simerr.Invalidf("dse: grid needs at least one axis")
	}
	seen := map[string]bool{}
	vals := make([][]any, len(g.Axes))
	size := 1
	for i, a := range g.Axes {
		if seen[a.Name] {
			return nil, simerr.Invalidf("dse: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		v, err := a.Expand()
		if err != nil {
			return nil, err
		}
		vals[i] = v
		size *= len(v)
		if size > MaxGridSize {
			return nil, simerr.Invalidf("dse: grid expands to more than %d points", MaxGridSize)
		}
	}
	return vals, nil
}

// Size returns the number of grid points, or an error if the grid is invalid.
func (g Grid) Size() (int, error) {
	vals, err := g.Expanded()
	if err != nil {
		return 0, err
	}
	n := 1
	for _, v := range vals {
		n *= len(v)
	}
	return n, nil
}

// Point is one coordinate of the grid: its row-major index plus the
// axis-name → value map.
type Point struct {
	Index  int            `json:"index"`
	Coords map[string]any `json:"coords"`
}

// Points expands the whole grid in index order.
func (g Grid) Points() ([]Point, error) {
	vals, err := g.Expanded()
	if err != nil {
		return nil, err
	}
	n := 1
	for _, v := range vals {
		n *= len(v)
	}
	pts := make([]Point, n)
	for idx := 0; idx < n; idx++ {
		coords := make(map[string]any, len(g.Axes))
		rem := idx
		// Mixed-radix decode, last axis fastest.
		for ax := len(g.Axes) - 1; ax >= 0; ax-- {
			k := len(vals[ax])
			coords[g.Axes[ax].Name] = vals[ax][rem%k]
			rem /= k
		}
		pts[idx] = Point{Index: idx, Coords: coords}
	}
	return pts, nil
}

// CanonicalParams renders a point's coordinates as canonical JSON (sorted
// keys, stable number formatting) — the form embedded in child-job params
// and in frontier snapshots so byte-identity claims hold end to end.
func (p Point) CanonicalParams() (json.RawMessage, error) {
	keys := make([]string, 0, len(p.Coords))
	for k := range p.Coords {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte{'{'}
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(p.Coords[k])
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}
