// Distributed-execution fault scenarios: worker death mid-shard, duplicate
// shard reports, and a coordinator crash with outstanding leases. Each one
// drives the dist coordinator through its public API with a manual clock —
// lease expiry, backoff and adoption are functions of injected time, so the
// scenarios are reproducible without real timers. The contract under test
// mirrors the engine's: every fault must surface as retried-and-completed
// work with bytes identical to a standalone run, never as a lost shard, a
// double-counted shard, or a re-executed one.
package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qisim/internal/dist"
	"qisim/internal/jobs"
	"qisim/internal/rescache"
	"qisim/internal/simrun"
)

// distToyCore builds the deterministic int-sum core used by the dist
// scenarios: each shard's partial encodes the shard identity, so any lost,
// replayed or reordered shard changes the folded sum. A non-nil executed
// counter tallies shard executions — the no-re-run proof for recovery.
func distToyCore(executed *atomic.Int64) dist.Core {
	return dist.NewCore(dist.CoreSpec[int]{
		Run: func(t *simrun.ShardTask) (int, int, error) {
			if executed != nil {
				executed.Add(1)
			}
			sum := 0
			for s := 0; t.Continue(s); s++ {
				sum += int(t.RNG.Int63() % 1000)
			}
			return sum + t.Index*1_000_000, 1, nil
		},
		Merge: func(dst *int, src int) { *dst += src },
		Finish: func(acc int, st simrun.Status) ([]byte, error) {
			return json.Marshal(struct {
				Sum    int           `json:"sum"`
				Status simrun.Status `json:"status"`
			}{acc, st})
		},
	})
}

var distToyPlan = dist.Plan{Shots: 1024, Seed: 9, ShardSize: 128} // 8 shards

// manualClock is the injected time source: lease deadlines and backoff
// windows move only when a scenario advances it.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (m *manualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

func (m *manualClock) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	return m.now
}

// claimUntil polls Claim until the coordinator hands out a grant (Execute
// admits the job asynchronously) or the wall-clock guard expires.
func claimUntil(c *dist.Coordinator, worker string) (*dist.LeaseGrant, error) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g, err := c.Claim(context.Background(), worker, "")
		if err != nil {
			return nil, err
		}
		if g != nil {
			return g, nil
		}
		time.Sleep(time.Millisecond)
	}
	return nil, fmt.Errorf("no grant became available")
}

// reportGrant executes a grant's shard window and uploads the unit result.
func reportGrant(c *dist.Coordinator, core dist.Core, worker string, g *dist.LeaseGrant) error {
	states, events, err := core.RunWindow(context.Background(), g.Plan, g.Start, g.End)
	if err != nil {
		return err
	}
	body, err := dist.EncodeUnitResult(dist.UnitResult{Kind: g.Kind, Key: g.Key,
		Start: g.Start, End: g.End, States: states, Events: events, Worker: worker})
	if err != nil {
		return err
	}
	return c.Report(context.Background(), worker, body)
}

type distOutcome struct {
	body   []byte
	status simrun.Status
	err    error
}

func startDistExecute(c *dist.Coordinator, ctx context.Context, key string, core dist.Core, p dist.Plan) chan distOutcome {
	ch := make(chan distOutcome, 1)
	go func() {
		b, st, err := c.Execute(ctx, "toy", key, nil, core, p, nil)
		ch <- distOutcome{b, st, err}
	}()
	return ch
}

func waitDistOutcome(ch chan distOutcome) (distOutcome, error) {
	select {
	case o := <-ch:
		return o, o.err
	case <-time.After(30 * time.Second):
		return distOutcome{}, fmt.Errorf("distributed Execute did not finish")
	}
}

// distScenarios returns the distributed-execution fault suite, appended to
// Scenarios().
func distScenarios() []Scenario {
	return []Scenario{
		{
			// (h) Worker killed mid-shard: a worker claims a unit and dies
			// without reporting or renewing. The lease must expire at the
			// injected deadline, the unit requeue with backoff, and a
			// surviving worker finish the job — folded bytes identical to a
			// standalone run, the dead worker's half-done window invisible.
			Name: "dist-worker-killed-mid-shard",
			Run: func() Outcome {
				clk := &manualClock{now: time.Unix(1000, 0)}
				c := dist.NewCoordinator(dist.Config{Clock: clk.Now, LeaseTTL: time.Second, UnitShards: 4})
				core := distToyCore(nil)
				want, _, err := core.RunFull(context.Background(), distToyPlan)
				if err != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", err)}
				}
				c.Register(context.Background(), dist.WorkerInfo{ID: "doomed"}) //nolint:errcheck
				c.Register(context.Background(), dist.WorkerInfo{ID: "alive"})  //nolint:errcheck
				ch := startDistExecute(c, context.Background(), "k-killed", core, distToyPlan)

				// The doomed worker grabs the first unit and is killed: no
				// report, no renewal ever arrives.
				if _, err := claimUntil(c, "doomed"); err != nil {
					return Outcome{Err: err}
				}
				// The injected fault: its lease deadline passes un-renewed.
				c.Sweep(clk.Advance(90 * time.Second))
				// The survivor drains everything, including the requeue. The
				// requeued unit sits behind a backoff window, so the clock
				// advances between empty claims to walk past it.
				for {
					g, err := c.Claim(context.Background(), "alive", "")
					if err != nil {
						return Outcome{Err: err}
					}
					if g == nil {
						clk.Advance(time.Second)
						select {
						case o := <-ch:
							if o.err != nil {
								return Outcome{Err: o.err}
							}
							if string(o.body) != string(want) {
								return Outcome{Err: fmt.Errorf("retried bytes differ from standalone:\n%s\n%s", o.body, want)}
							}
							st := c.Stats()
							if st.Expired == 0 || st.UnitRetries == 0 {
								return Outcome{Err: fmt.Errorf("kill not observed: stats %+v", st)}
							}
							return Outcome{Status: o.status,
								Detail: fmt.Sprintf("lease expired and unit retried (%d expiries); bytes identical", st.Expired)}
						default:
							time.Sleep(time.Millisecond)
							continue
						}
					}
					if err := reportGrant(c, core, "alive", g); err != nil {
						return Outcome{Err: err}
					}
				}
			},
		},
		{
			// (h') Duplicate shard report: a retried or partitioned worker
			// uploads the same (job, shard-range) unit twice. The idempotent
			// report path must fold it exactly once — the duplicate is
			// acknowledged, counted, and discarded, never double-merged.
			Name: "dist-duplicate-shard-report",
			Run: func() Outcome {
				c := dist.NewCoordinator(dist.Config{LeaseTTL: time.Minute, UnitShards: 4})
				core := distToyCore(nil)
				want, _, err := core.RunFull(context.Background(), distToyPlan)
				if err != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", err)}
				}
				c.Register(context.Background(), dist.WorkerInfo{ID: "w1"}) //nolint:errcheck
				ch := startDistExecute(c, context.Background(), "k-dup", core, distToyPlan)

				// Two units: report the first one TWICE while the second is
				// still outstanding, then finish normally.
				g1, err := claimUntil(c, "w1")
				if err != nil {
					return Outcome{Err: err}
				}
				for i := 0; i < 2; i++ { // the injected fault: double upload
					if err := reportGrant(c, core, "w1", g1); err != nil {
						return Outcome{Err: fmt.Errorf("report %d: %w", i+1, err)}
					}
				}
				g2, err := claimUntil(c, "w1")
				if err != nil {
					return Outcome{Err: err}
				}
				if err := reportGrant(c, core, "w1", g2); err != nil {
					return Outcome{Err: err}
				}
				o, err := waitDistOutcome(ch)
				if err != nil {
					return Outcome{Err: err}
				}
				if string(o.body) != string(want) {
					return Outcome{Err: fmt.Errorf("deduped bytes differ from standalone:\n%s\n%s", o.body, want)}
				}
				st := c.Stats()
				if st.DupReports != 1 || st.UnitsDone != 2 {
					return Outcome{Err: fmt.Errorf("dedupe not observed: stats %+v", st)}
				}
				return Outcome{Status: o.status,
					Detail: "duplicate report acknowledged and dropped; folded exactly once"}
			},
		},
		{
			// (h'') Coordinator crash with outstanding leases: the process
			// dies holding one reported unit (durable in the unit directory)
			// and one granted-but-unreported lease (durable in the WAL). The
			// next life must adopt the lease from the journal, reload the
			// reported unit from disk without re-running it, and complete
			// with standalone-identical bytes.
			Name: "dist-coordinator-crash-outstanding-leases",
			Run: func() Outcome {
				dir, err := os.MkdirTemp("", "faultinject-dist-crash-*")
				if err != nil {
					return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
				}
				defer os.RemoveAll(dir)
				key, err := rescache.KeyFor("toy", map[string]any{"scenario": "crash"}, 9, 128)
				if err != nil {
					return Outcome{Err: err, Detail: "keying failed"}
				}
				jrn, err := jobs.OpenJournal(dir + "/journal.wal")
				if err != nil {
					return Outcome{Err: fmt.Errorf("open journal: %w", err)}
				}
				// The job must be journaled as pending for its leases to
				// survive replay.
				if err := jrn.Append(jobs.OpSubmit, jobs.Kind("toy"), key, nil); err != nil {
					return Outcome{Err: fmt.Errorf("journal submit: %w", err)}
				}
				want, _, err := distToyCore(nil).RunFull(context.Background(), distToyPlan)
				if err != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", err)}
				}
				// executed counts shard executions across both coordinator
				// lives: exactly 8 (4 in each life) proves the already-
				// reported unit was reloaded, never re-run.
				var executed atomic.Int64
				core := distToyCore(&executed)

				// Life 1: one unit reported, one lease outstanding — then the
				// injected fault: the coordinator's context dies mid-job.
				c1 := dist.NewCoordinator(dist.Config{LeaseTTL: time.Minute, UnitShards: 4,
					Journal: jrn, UnitDir: dir + "/units"})
				c1.Register(context.Background(), dist.WorkerInfo{ID: "w1"}) //nolint:errcheck
				ctx1, crash := context.WithCancel(context.Background())
				defer crash()
				ch1 := startDistExecute(c1, ctx1, string(key), core, distToyPlan)
				g1, err := claimUntil(c1, "w1")
				if err != nil {
					return Outcome{Err: err}
				}
				if err := reportGrant(c1, core, "w1", g1); err != nil {
					return Outcome{Err: err}
				}
				outstanding, err := claimUntil(c1, "w1") // granted, never reported in this life
				if err != nil {
					return Outcome{Err: err}
				}
				crash()
				if o, _ := waitDistOutcome(ch1); !o.status.Truncated && o.err == nil {
					return Outcome{Err: fmt.Errorf("crashed run neither truncated nor errored: %+v", o.status)}
				}
				jrn.Close() //nolint:errcheck

				// Life 2: replayed journal + unit directory.
				jrn2, err := jobs.OpenJournal(dir + "/journal.wal")
				if err != nil {
					return Outcome{Err: fmt.Errorf("reopen journal: %w", err)}
				}
				defer jrn2.Close()
				c2 := dist.NewCoordinator(dist.Config{LeaseTTL: time.Minute, UnitShards: 4,
					Journal: jrn2, UnitDir: dir + "/units"})
				c2.Register(context.Background(), dist.WorkerInfo{ID: "w1"}) //nolint:errcheck
				ch2 := startDistExecute(c2, context.Background(), string(key), core, distToyPlan)
				// The adopted lease still belongs to w1: the worker that held
				// it through the crash finishes its window ONCE and reports
				// it — the unit is never re-granted to anyone else (Claim
				// stays empty). A report landing before the job is
				// re-admitted is an orphan ack, so the same container is
				// re-sent until the fold completes; the idempotent report
				// path folds it exactly once regardless.
				states, events, err := core.RunWindow(context.Background(),
					outstanding.Plan, outstanding.Start, outstanding.End)
				if err != nil {
					return Outcome{Err: err}
				}
				container, err := dist.EncodeUnitResult(dist.UnitResult{
					Kind: outstanding.Kind, Key: outstanding.Key,
					Start: outstanding.Start, End: outstanding.End,
					States: states, Events: events, Worker: "w1"})
				if err != nil {
					return Outcome{Err: err}
				}
				deadline := time.Now().Add(10 * time.Second)
				for {
					if err := c2.Report(context.Background(), "w1", container); err != nil {
						return Outcome{Err: fmt.Errorf("report adopted lease: %w", err)}
					}
					if g, err := c2.Claim(context.Background(), "w1", ""); err != nil {
						return Outcome{Err: err}
					} else if g != nil {
						return Outcome{Err: fmt.Errorf("adopted unit [%d,%d) was re-granted: got [%d,%d)",
							outstanding.Start, outstanding.End, g.Start, g.End)}
					}
					select {
					case o := <-ch2:
						if o.err != nil {
							return Outcome{Err: o.err}
						}
						if string(o.body) != string(want) {
							return Outcome{Err: fmt.Errorf("recovered bytes differ from standalone:\n%s\n%s", o.body, want)}
						}
						if st := c2.Stats(); st.FileReloads < 1 {
							return Outcome{Err: fmt.Errorf("reported unit not reloaded from disk: stats %+v", st)}
						}
						if n := executed.Load(); n != 8 {
							return Outcome{Err: fmt.Errorf("executed %d shards across both lives, want 8 — a reported range was re-run", n)}
						}
						return Outcome{Status: o.status,
							Detail: fmt.Sprintf("lease for [%d,%d) adopted from the journal; unit [%d,%d) reloaded, not re-run; bytes identical",
								outstanding.Start, outstanding.End, g1.Start, g1.End)}
					default:
					}
					if time.Now().After(deadline) {
						return Outcome{Err: fmt.Errorf("recovered job did not complete")}
					}
					time.Sleep(time.Millisecond)
				}
			},
		},
	}
}
