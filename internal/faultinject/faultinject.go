// Package faultinject is the deterministic fault-injection harness of the
// robustness layer: each Scenario corrupts one input of the simulation
// pipeline — NaN pulse samples, corrupted instruction streams, exhausted
// shot budgets, forced non-convergence — and records what the public API
// surfaced. The contract under test: every injected fault must come back as
// a typed error (matched with errors.Is against the simerr sentinels) or as
// a flagged partial result (Status.Truncated / !Status.Converged) — never a
// panic, a hang, or silent numerical garbage.
package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"qisim/internal/checkpoint"
	"qisim/internal/cmath"
	"qisim/internal/compile"
	"qisim/internal/ham"
	"qisim/internal/jobs"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/pauli"
	"qisim/internal/pulse"
	"qisim/internal/qasm"
	"qisim/internal/readout"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/workloads"
)

// Outcome is what one fault scenario surfaced at its public boundary.
type Outcome struct {
	// Err is the typed error surfaced (nil when the fault surfaced as a
	// flagged result instead).
	Err error
	// Status is the run status of context-aware scenarios (zero value when
	// the scenario fails before a run starts).
	Status simrun.Status
	// Detail describes what came back, for the suite's failure messages.
	Detail string
}

// Scenario is one deterministic fault-injection case.
type Scenario struct {
	// Name identifies the scenario in test output.
	Name string
	// Class is the simerr sentinel the fault must surface as. Nil means the
	// fault must surface as a flagged result (see WantTruncated /
	// WantUnconverged) with a nil error.
	Class error
	// WantTruncated marks scenarios that must return a flagged partial
	// result (Status.Truncated).
	WantTruncated bool
	// WantUnconverged marks scenarios that must exhaust their budget
	// without satisfying the convergence guard (Status.Converged false with
	// a convergence target set).
	WantUnconverged bool
	// Run injects the fault and reports the outcome.
	Run func() Outcome
}

// Check executes one scenario with a panic backstop and verifies the
// outcome against the scenario's expectation. A non-nil returned error is a
// contract violation: a panic escaped a public API, a fault was classified
// wrongly, or a partial result was not flagged.
func Check(s Scenario) (out Outcome, verdict error) {
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				verdict = fmt.Errorf("faultinject %s: panic escaped public API: %v", s.Name, r)
			}
		}()
		out = s.Run()
	}()
	if panicked {
		return out, verdict
	}
	if s.Class != nil {
		if !errors.Is(out.Err, s.Class) {
			return out, fmt.Errorf("faultinject %s: want error class %v, got %v (%s)",
				s.Name, s.Class, out.Err, out.Detail)
		}
		return out, nil
	}
	if out.Err != nil {
		return out, fmt.Errorf("faultinject %s: want flagged result, got error %v", s.Name, out.Err)
	}
	if s.WantTruncated && !out.Status.Truncated {
		return out, fmt.Errorf("faultinject %s: partial result not flagged Truncated (status %+v)",
			s.Name, out.Status)
	}
	if s.WantUnconverged && out.Status.Converged {
		return out, fmt.Errorf("faultinject %s: run reported convergence it cannot have reached (status %+v)",
			s.Name, out.Status)
	}
	return out, nil
}

// canceledCtx returns an already-canceled context: the deterministic
// analogue of "the deadline fired mid-sweep".
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// Scenarios returns the deterministic fault-injection suite. Every scenario
// is reproducible: no real timers or signals — cancellation is injected with
// pre-canceled contexts, corruption with explicit NaNs, and the distributed
// scenarios (see dist.go) drive lease expiry with a manual clock.
func Scenarios() []Scenario {
	return append([]Scenario{
		{
			// (a) Numerical corruption: a NaN sample injected into a drive
			// pulse must be caught by the cmath sentinels after Hamiltonian
			// evolution, not propagate into a garbage fidelity.
			Name:  "nan-pulse-sample",
			Class: simerr.ErrNumerical,
			Run: func() Outcome {
				const n = 32
				gateTime := 25e-9
				ts := gateTime / n
				amps := pulse.Samples(pulse.CosineEnvelope{}, n, gateTime)
				amps[n/2] = math.NaN() // the injected fault
				d := ham.NewDrivenTransmon(3, 0, 2*math.Pi*-240e6, 2*math.Pi*25e6)
				hs := make([]*cmath.Matrix, n)
				for k := 0; k < n; k++ {
					hs[k] = d.Hamiltonian(amps[k], 0)
				}
				u := ham.EvolveSamples(hs, ts)
				err := cmath.CheckFinite("pulse-driven propagator", u)
				return Outcome{Err: err, Detail: "NaN drive sample through 3-level evolution"}
			},
		},
		{
			// (a') The same corruption at the Expm boundary: the checked
			// kernel must reject a non-finite generator up front.
			Name:  "nan-hamiltonian-expm",
			Class: simerr.ErrNumerical,
			Run: func() Outcome {
				h := cmath.NewMatrix(2, 2)
				h.Data[0] = complex(math.NaN(), 0)
				_, err := cmath.ExpmChecked(h)
				return Outcome{Err: err, Detail: "NaN generator into ExpmChecked"}
			},
		},
		{
			// (a'') A corrupted Kraus operator must be rejected before the
			// trajectory sampler averages it into a fidelity.
			Name:  "nan-kraus-operator",
			Class: simerr.ErrNumerical,
			Run: func() Outcome {
				c := pauli.DecoherenceChannel(25e-9, 280e-6, 175e-6)
				c.Ops[0].Data[0] = complex(math.Inf(1), 0) // the injected fault
				res, err := pauli.TrajectoryAverageFidelityCtx(context.Background(), c, 256, 7, simrun.Options{})
				return Outcome{Err: err, Status: res.Status, Detail: "Inf Kraus entry into trajectory MC"}
			},
		},
		{
			// (b) Corrupted instruction stream, textual form: garbage QASM
			// must come back as ErrUnsupportedQASM from Parse.
			Name:  "corrupted-qasm-source",
			Class: simerr.ErrUnsupportedQASM,
			Run: func() Outcome {
				_, err := qasm.Parse("OPENQASM 2.0;\nqreg q[4];\nfrobnicate q[0], q[99;\n")
				return Outcome{Err: err, Detail: "malformed statement into Parse"}
			},
		},
		{
			// (b') Corrupted instruction stream, programmatic form: an
			// out-of-range qubit index built directly into a Program must be
			// rejected by the compiler's Validate boundary, not crash the
			// queue indexing.
			Name:  "corrupted-instruction-stream",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				p := &qasm.Program{NQubits: 4, NClbits: 4}
				p.Gates = append(p.Gates,
					qasm.Gate{Name: "h", Qubits: []int{0}, CBit: -1},
					qasm.Gate{Name: "cx", Qubits: []int{0, 17}, CBit: -1}, // the injected fault
				)
				_, err := compile.Compile(p, compile.DefaultOptions())
				return Outcome{Err: err, Detail: "qubit 17 in a 4-qubit program"}
			},
		},
		{
			// (b'') NaN gate parameter: structural validation must catch a
			// non-finite rotation angle before it reaches pulse generation.
			Name:  "nan-gate-parameter",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				p := &qasm.Program{NQubits: 2, NClbits: 2}
				p.Gates = append(p.Gates,
					qasm.Gate{Name: "rz", Qubits: []int{0}, Params: []float64{math.NaN()}, CBit: -1})
				_, err := compile.Compile(p, compile.DefaultOptions())
				return Outcome{Err: err, Detail: "NaN rz angle into Compile"}
			},
		},
		{
			// Undersized workload instance: the generator boundary must
			// return a typed error instead of producing a panic deep in a
			// generator loop.
			Name:  "undersized-workload",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				_, err := workloads.Generate("adder", 1)
				return Outcome{Err: err, Detail: "adder(1) below its 3-qubit minimum"}
			},
		},
		{
			// Invalid lattice request through the checked constructor.
			Name:  "invalid-lattice-layout",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				_, err := lattice.NewLayoutChecked(0, 7)
				return Outcome{Err: err, Detail: "zero logical qubits into NewLayoutChecked"}
			},
		},
		{
			// (c) Budget exhaustion mid-decode: a canceled context during a
			// phenomenological Monte-Carlo run must yield a flagged partial
			// result, not a thrown-away run or an error.
			Name:          "canceled-decoder-mc",
			WantTruncated: true,
			Run: func() Outcome {
				res, err := surface.MonteCarloPhenomenologicalCtx(
					canceledCtx(), 5, 0.02, 0.02, 5, 20000, 11, simrun.Options{CheckEvery: 1})
				return Outcome{Err: err, Status: res.Status,
					Detail: fmt.Sprintf("completed %d/%d shots", res.Status.Completed, res.Status.Requested)}
			},
		},
		{
			// (c') The same exhaustion inside a scalability sweep: the
			// points already computed must survive, flagged Truncated.
			Name:          "canceled-scalability-sweep",
			WantTruncated: true,
			Run: func() Outcome {
				d := microarch.AllDesigns()[0]
				res, err := scalability.SweepCtx(canceledCtx(), d,
					[]int{100, 1000, 10000}, scalability.DefaultOptions())
				return Outcome{Err: err, Status: res.Status,
					Detail: fmt.Sprintf("kept %d sweep points", len(res.Points))}
			},
		},
		{
			// (c-par) The same budget exhaustion with a parallel fan-out: a
			// canceled context with Workers=4 must drain the worker pool
			// cleanly and surface the same flagged-partial contract as the
			// serial path — the partial is the contiguous prefix of completed
			// shards, never a torn shard.
			Name:          "canceled-parallel-decoder-mc",
			WantTruncated: true,
			Run: func() Outcome {
				res, err := surface.MonteCarloPhenomenologicalCtx(
					canceledCtx(), 5, 0.02, 0.02, 5, 20000, 11,
					simrun.Options{CheckEvery: 1, Workers: 4, ShardSize: 100})
				if err == nil && res.Status.Completed%100 != 0 {
					err = fmt.Errorf("parallel partial kept a torn shard: %d shots", res.Status.Completed)
				}
				return Outcome{Err: err, Status: res.Status,
					Detail: fmt.Sprintf("completed %d/%d shots across 4 workers", res.Status.Completed, res.Status.Requested)}
			},
		},
		{
			// (c-par') Interrupted parallel runs must surface the typed
			// Interrupted sentinel through Status.Err, so exit-code mapping
			// (code 3) works identically for every worker count.
			Name:  "interrupted-parallel-status-err",
			Class: simerr.ErrInterrupted,
			Run: func() Outcome {
				res, err := surface.MonteCarloLogicalErrorCtx(
					canceledCtx(), 3, 0.01, 5000, 7,
					simrun.Options{CheckEvery: 1, Workers: 4, ShardSize: 64})
				if err != nil {
					return Outcome{Err: err, Detail: "unexpected hard error from canceled parallel run"}
				}
				return Outcome{Err: res.Status.Err(), Status: res.Status,
					Detail: fmt.Sprintf("stop reason %q", res.Status.StopReason)}
			},
		},
		{
			// A negative worker count is a configuration fault, rejected at
			// the Options boundary before any goroutine is spawned.
			Name:  "invalid-worker-count",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				_, err := surface.MonteCarloLogicalErrorCtx(
					context.Background(), 3, 0.01, 1000, 3, simrun.Options{Workers: -2})
				return Outcome{Err: err, Detail: "Workers=-2 into the sharded engine"}
			},
		},
		{
			// A negative shard size likewise: shard planning must not be
			// reachable with a nonsense layout.
			Name:  "invalid-shard-size",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				_, err := surface.MonteCarloUnionFindCtx(
					context.Background(), 3, 0.01, 1000, 3, simrun.Options{ShardSize: -5})
				return Outcome{Err: err, Detail: "ShardSize=-5 into the sharded engine"}
			},
		},
		{
			// (c'') An infeasible convergence floor — MinShots above the
			// capped budget — must be rejected as ErrBudgetInfeasible before
			// any shots are spent.
			Name:  "infeasible-shot-budget",
			Class: simerr.ErrBudgetInfeasible,
			Run: func() Outcome {
				_, err := surface.MonteCarloLogicalErrorCtx(
					context.Background(), 3, 0.01, 10000, 3,
					simrun.Options{MaxShots: 100, MinShots: 5000, TargetRelStdErr: 0.1})
				return Outcome{Err: err, Detail: "MinShots 5000 against a 100-shot cap"}
			},
		},
		{
			// (d) Forced non-convergence: a zero-error-rate channel never
			// produces a failure event, so the relative-standard-error guard
			// can never fire; the run must exhaust its budget and report
			// Converged=false rather than spin forever or claim success.
			Name:            "forced-non-convergence",
			WantUnconverged: true,
			Run: func() Outcome {
				res, err := surface.MonteCarloLogicalErrorCtx(
					context.Background(), 3, 0, 2000, 5,
					simrun.Options{TargetRelStdErr: 0.05, MinShots: 100, CheckEvery: 50})
				return Outcome{Err: err, Status: res.Status,
					Detail: fmt.Sprintf("stop reason %q after %d shots", res.Status.StopReason, res.Status.Completed)}
			},
		},
		{
			// Invalid scalability options: an even code distance is a
			// configuration fault, typed accordingly.
			Name:  "invalid-scalability-distance",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				opt := scalability.DefaultOptions()
				opt.Distance = 4 // the injected fault
				_, err := scalability.AnalyzeChecked(microarch.AllDesigns()[0], opt)
				return Outcome{Err: err, Detail: "even distance into AnalyzeChecked"}
			},
		},
		{
			// Corrupted readout configuration: a negative decision range is
			// rejected by the multi-round boundary.
			Name:  "invalid-readout-range",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				cfg := readout.DefaultMultiRoundConfig()
				cfg.Range = math.NaN() // the injected fault
				_, err := readout.MultiRoundErrorCtx(context.Background(),
					readout.DefaultChain(), readout.DefaultTiming(), cfg, simrun.Options{})
				return Outcome{Err: err, Detail: "NaN decision range into MultiRoundErrorCtx"}
			},
		},
		{
			// (e) A service job canceled mid-flight (drain, deadline) must
			// finish DONE with a Truncated partial body through the job
			// manager — and that partial must NEVER enter the
			// content-addressed cache, where it would be replayed as if
			// complete to every future identical request.
			Name:          "canceled-service-job-partial",
			WantTruncated: true,
			Run: func() Outcome {
				cache := rescache.New(8)
				m := jobs.NewManager(jobs.Config{
					Workers: 1, Cache: cache, BaseContext: canceledCtx(),
				})
				m.Start()
				key, err := rescache.KeyFor("surface.mc", map[string]any{"distance": 5}, 11, 100)
				if err != nil {
					return Outcome{Err: err, Detail: "keying failed"}
				}
				snap, _, err := m.Submit(jobs.KindSurfaceMC, key, nil,
					func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
						res, err := surface.MonteCarloPhenomenologicalCtx(ctx, 5, 0.02, 0.02, 5, 20000, 11,
							simrun.Options{CheckEvery: 1, ShardSize: 100, Progress: progress})
						if err != nil {
							return nil, simrun.Status{}, err
						}
						body, merr := json.Marshal(res)
						return body, res.Status, merr
					})
				if err != nil {
					return Outcome{Err: err, Detail: "submit refused"}
				}
				final, err := m.Wait(context.Background(), snap.ID)
				drainErr := m.Drain(context.Background())
				if err != nil {
					return Outcome{Err: err, Detail: "wait failed"}
				}
				if drainErr != nil {
					return Outcome{Err: drainErr, Detail: "drain failed"}
				}
				var st simrun.Status
				if final.Status != nil {
					st = *final.Status
				}
				out := Outcome{Status: st,
					Detail: fmt.Sprintf("job state %s after %d/%d shots", final.State, st.Completed, st.Requested)}
				switch {
				case final.State != jobs.StateDone:
					out.Err = fmt.Errorf("canceled job finished %s (%s)", final.State, final.Error)
				case len(final.Result) == 0:
					out.Err = fmt.Errorf("canceled job lost its partial result body")
				case cache.Contains(key):
					out.Err = fmt.Errorf("truncated partial entered the result cache")
				}
				return out
			},
		},
		{
			// (e') A corrupted cache entry — bytes flipped underneath the
			// index — must be detected by checksum verification on Get,
			// counted, and dropped so the next submission recomputes; the
			// corrupted bytes must never be served.
			Name: "corrupted-cache-entry",
			Run: func() Outcome {
				c := rescache.New(4)
				key, err := rescache.KeyFor("surface.mc", map[string]any{"distance": 5}, 1, 64)
				if err != nil {
					return Outcome{Err: err, Detail: "keying failed"}
				}
				body := []byte(`{"logical_error_rate":0.125}`)
				c.Put(key, "surface.mc", body)
				if !c.Tamper(key, func(b []byte) { b[0] ^= 0xff }) { // the injected fault
					return Outcome{Err: fmt.Errorf("tamper hook found no entry")}
				}
				if served, ok := c.Get(key); ok {
					return Outcome{Err: fmt.Errorf("corrupted entry was served: %q", served)}
				}
				if st := c.Stats(); st.Corruptions != 1 {
					return Outcome{Err: fmt.Errorf("corruption count %d, want 1", st.Corruptions)}
				}
				// Recompute-and-refill: a fresh Put serves cleanly again.
				c.Put(key, "surface.mc", body)
				served, ok := c.Get(key)
				if !ok || !bytes.Equal(served, body) {
					return Outcome{Err: fmt.Errorf("recomputed entry not served (hit=%v)", ok)}
				}
				return Outcome{Detail: "corrupted entry detected, dropped and recomputed; never served"}
			},
		},
		{
			// (f) A torn checkpoint file — the crash hit mid-write, or the
			// filesystem truncated the snapshot — must be rejected as a typed
			// configuration error when a resume is attempted. Replaying half
			// a snapshot would silently skew the committed prefix.
			Name:  "torn-checkpoint-file",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				dir, err := os.MkdirTemp("", "faultinject-torn-*")
				if err != nil {
					return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
				}
				defer os.RemoveAll(dir)
				meta := checkpoint.Meta{
					Kind: "surface.mc", Key: "k-torn", Seed: 7, ShardSize: 100, Budget: 1000,
				}
				snap := checkpoint.Snapshot{
					Version: checkpoint.Version, Meta: meta,
					Shards: 3, Shots: 300, Events: 11,
					State: json.RawMessage(`{"failures":11}`), SavedAt: time.Now(),
				}
				path := checkpoint.PathFor(dir, meta.Key)
				if err := checkpoint.Save(path, snap); err != nil {
					return Outcome{Err: fmt.Errorf("save: %w", err)}
				}
				full, err := os.ReadFile(path)
				if err != nil {
					return Outcome{Err: fmt.Errorf("read back: %w", err)}
				}
				// The injected fault: tear the file mid-payload.
				if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
					return Outcome{Err: fmt.Errorf("tear: %w", err)}
				}
				var opt simrun.Options
				_, loaded, err := checkpoint.Attach(&opt, dir, true, 1, meta)
				if err == nil {
					return Outcome{Err: fmt.Errorf("torn snapshot accepted for resume (loaded=%v)", loaded != nil)}
				}
				return Outcome{Err: err,
					Detail: fmt.Sprintf("snapshot torn to %d of %d bytes", len(full)/2, len(full))}
			},
		},
		{
			// (f') A journal entry whose checkpoint never made it to disk —
			// the daemon crashed after the WAL append but before the first
			// shard committed. Recovery must run the job cold to completion
			// and resolve the journal entry; a missing snapshot is a cold
			// start, never an error.
			Name: "journal-entry-missing-checkpoint",
			Run: func() Outcome {
				dir, err := os.MkdirTemp("", "faultinject-wal-*")
				if err != nil {
					return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
				}
				defer os.RemoveAll(dir)
				key, err := rescache.KeyFor("surface.mc", map[string]any{"distance": 3}, 7, 100)
				if err != nil {
					return Outcome{Err: err, Detail: "keying failed"}
				}
				// Previous life: the submit hit the WAL, then the process died
				// before any checkpoint was flushed.
				j, err := jobs.OpenJournal(dir + "/journal.wal")
				if err != nil {
					return Outcome{Err: fmt.Errorf("open journal: %w", err)}
				}
				if err := j.Append(jobs.OpSubmit, jobs.KindSurfaceMC, key, nil); err != nil {
					return Outcome{Err: fmt.Errorf("append: %w", err)}
				}
				j.Close()

				// Next life: replay finds the pending job, no snapshot exists.
				j2, err := jobs.OpenJournal(dir + "/journal.wal")
				if err != nil {
					return Outcome{Err: fmt.Errorf("reopen journal: %w", err)}
				}
				defer j2.Close()
				pend := j2.Pending()
				if len(pend) != 1 {
					return Outcome{Err: fmt.Errorf("replay found %d pending jobs, want 1", len(pend))}
				}
				meta := checkpoint.Meta{
					Kind: string(jobs.KindSurfaceMC), Key: string(key),
					Seed: 7, ShardSize: 100, Budget: 1000,
				}
				opt := simrun.Options{ShardSize: 100}
				sv, loaded, err := checkpoint.Attach(&opt, dir, true, 1, meta)
				if err != nil {
					return Outcome{Err: err, Detail: "missing snapshot must not be an error"}
				}
				if loaded != nil {
					return Outcome{Err: fmt.Errorf("resume loaded a snapshot that cannot exist: %+v", *loaded)}
				}
				res, err := surface.MonteCarloLogicalErrorCtx(context.Background(), 3, 0.01, 1000, 7, opt)
				if err != nil {
					return Outcome{Err: err, Detail: "cold recovery run failed"}
				}
				if res.Status.Truncated {
					return Outcome{Err: fmt.Errorf("cold recovery run truncated: %+v", res.Status)}
				}
				if serr := j2.Append(jobs.OpDone, jobs.KindSurfaceMC, key, nil); serr != nil {
					return Outcome{Err: fmt.Errorf("resolve journal entry: %w", serr)}
				}
				if rem := j2.Pending(); len(rem) != 0 {
					return Outcome{Err: fmt.Errorf("journal entry not resolved: %+v", rem)}
				}
				return Outcome{Status: res.Status,
					Detail: fmt.Sprintf("cold recovery completed %d/%d shots, %d checkpoint saves",
						res.Status.Completed, res.Status.Requested, sv.Saves())}
			},
		},
		{
			// (f'') A snapshot that does not belong to the requested run — a
			// stale file for a different seed landed under the same path —
			// must be refused as a typed configuration error. Resuming it
			// would splice shard prefixes from two different RNG streams.
			Name:  "checkpoint-request-key-mismatch",
			Class: simerr.ErrInvalidConfig,
			Run: func() Outcome {
				dir, err := os.MkdirTemp("", "faultinject-mismatch-*")
				if err != nil {
					return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
				}
				defer os.RemoveAll(dir)
				stale := checkpoint.Meta{
					Kind: "surface.mc", Key: "k-shared", Seed: 1, ShardSize: 100, Budget: 1000,
				}
				snap := checkpoint.Snapshot{
					Version: checkpoint.Version, Meta: stale,
					Shards: 2, Shots: 200, Events: 5,
					State: json.RawMessage(`{"failures":5}`), SavedAt: time.Now(),
				}
				if err := checkpoint.Save(checkpoint.PathFor(dir, stale.Key), snap); err != nil {
					return Outcome{Err: fmt.Errorf("save stale snapshot: %w", err)}
				}
				// The injected fault: the incoming run has the same key path
				// but a different seed — the snapshot is not its prefix.
				want := stale
				want.Seed = 2
				var opt simrun.Options
				_, _, err = checkpoint.Attach(&opt, dir, true, 1, want)
				if err == nil {
					return Outcome{Err: fmt.Errorf("mismatched snapshot accepted for resume")}
				}
				return Outcome{Err: err, Detail: "seed-1 snapshot against a seed-2 run"}
			},
		},
		{
			// (g) Trace-buffer overflow: a span buffer far too small for the
			// run must drop spans (counted), never block a worker, and never
			// perturb the Monte-Carlo result — tracing is a pure observer
			// even when saturated.
			Name: "trace-buffer-overflow",
			Run: func() Outcome {
				const (
					d, p, shots, seed = 3, 0.05, 6400, 11
					shardSize         = 64 // 100 shards >> 4-span buffer
				)
				opt := simrun.Options{Workers: 4, ShardSize: shardSize}
				plain, err := surface.MonteCarloLogicalErrorCtx(
					context.Background(), d, p, shots, seed, opt)
				if err != nil {
					return Outcome{Err: fmt.Errorf("untraced baseline failed: %w", err)}
				}
				tr := obs.NewTracer(obs.TracerConfig{ID: "overflow", MaxSpans: 4}) // the injected fault
				traced, err := surface.MonteCarloLogicalErrorCtx(
					obs.WithTracer(context.Background(), tr), d, p, shots, seed, opt)
				if err != nil {
					return Outcome{Err: fmt.Errorf("traced run failed: %w", err), Status: traced.Status}
				}
				if traced != plain {
					return Outcome{Err: fmt.Errorf("saturated tracer perturbed the result:\nplain  %+v\ntraced %+v", plain, traced)}
				}
				if tr.Dropped() == 0 {
					return Outcome{Err: fmt.Errorf("100-shard run through a 4-span buffer dropped nothing")}
				}
				if tr.Len() > 4 {
					return Outcome{Err: fmt.Errorf("span buffer exceeded its bound: %d > 4", tr.Len())}
				}
				snap := tr.Snapshot()
				if err := snap.Check(); err != nil {
					return Outcome{Err: fmt.Errorf("overflowed trace fails validation: %w", err)}
				}
				return Outcome{Status: traced.Status,
					Detail: fmt.Sprintf("result bit-identical, %d spans kept, %d dropped", tr.Len(), tr.Dropped())}
			},
		},
		{
			// (g') Trace-export write failure: the trace file landing on an
			// unwritable path must surface as an ordinary error from the
			// export boundary — the traced run's result stays valid and the
			// caller's exit code is unchanged (the CLIs log a warning and
			// keep going; this scenario pins the API contract they rely on).
			Name: "trace-export-write-failure",
			Run: func() Outcome {
				tr := obs.NewTracer(obs.TracerConfig{ID: "export-fail"})
				res, err := surface.MonteCarloLogicalErrorCtx(
					obs.WithTracer(context.Background(), tr), 3, 0.05, 640, 11,
					simrun.Options{ShardSize: 64})
				if err != nil {
					return Outcome{Err: fmt.Errorf("traced run failed: %w", err)}
				}
				if res.Status.Truncated || res.Status.Completed != 640 {
					return Outcome{Err: fmt.Errorf("traced run incomplete: %+v", res.Status)}
				}
				dir, err := os.MkdirTemp("", "faultinject-export-*")
				if err != nil {
					return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
				}
				defer os.RemoveAll(dir)
				// The injected fault: the export path's parent is a regular
				// file, so os.Create must fail.
				blocker := dir + "/not-a-dir"
				if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
					return Outcome{Err: fmt.Errorf("write blocker: %w", err)}
				}
				exportErr := obs.WriteChromeFile(blocker+"/trace.json", tr)
				if exportErr == nil {
					return Outcome{Err: fmt.Errorf("export into a non-directory succeeded")}
				}
				// The run's own outcome is untouched by the failed export.
				if res.Rate() < 0 || res.Shots != 640 {
					return Outcome{Err: fmt.Errorf("result corrupted after export failure: %+v", res)}
				}
				return Outcome{Status: res.Status,
					Detail: fmt.Sprintf("export failed cleanly (%v); run result intact", exportErr)}
			},
		},
	}, append(distScenarios(), append(dseScenarios(), chaosScenarios()...)...)...)
}
