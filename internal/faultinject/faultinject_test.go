package faultinject

import (
	"errors"
	"testing"

	"qisim/internal/simerr"
)

// TestFaultSuite is the acceptance gate of the robustness layer: every
// injected fault must surface as a typed error or a flagged partial result,
// never a panic, a hang, or silent garbage. Check converts escaping panics
// and misclassified faults into test failures.
func TestFaultSuite(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			out, verdict := Check(s)
			if verdict != nil {
				t.Fatal(verdict)
			}
			t.Logf("%s: err=%v status=%+v (%s)", s.Name, out.Err, out.Status, out.Detail)
		})
	}
}

// TestFaultSuiteCoversEveryErrorClass pins the suite's breadth: each simerr
// sentinel (and both flagged-result modes) must be exercised by at least one
// scenario, so a future edit cannot silently drop a fault family.
func TestFaultSuiteCoversEveryErrorClass(t *testing.T) {
	classes := map[error]bool{
		simerr.ErrInvalidConfig:    false,
		simerr.ErrNumerical:        false,
		simerr.ErrBudgetInfeasible: false,
		simerr.ErrUnsupportedQASM:  false,
	}
	truncated, unconverged := false, false
	for _, s := range Scenarios() {
		for class := range classes {
			if s.Class != nil && errors.Is(s.Class, class) {
				classes[class] = true
			}
		}
		truncated = truncated || s.WantTruncated
		unconverged = unconverged || s.WantUnconverged
	}
	for class, seen := range classes {
		if !seen {
			t.Errorf("no scenario exercises error class %v", class)
		}
	}
	if !truncated {
		t.Error("no scenario exercises the flagged-partial-result path")
	}
	if !unconverged {
		t.Error("no scenario exercises the forced-non-convergence path")
	}
}

// TestCheckRejectsEscapedPanic proves the harness itself catches panics: a
// scenario that panics must produce a verdict, not crash the suite.
func TestCheckRejectsEscapedPanic(t *testing.T) {
	s := Scenario{
		Name:  "deliberate-panic",
		Class: simerr.ErrInvalidConfig,
		Run:   func() Outcome { panic("boom") },
	}
	if _, verdict := Check(s); verdict == nil {
		t.Fatal("Check must convert an escaped panic into a failing verdict")
	}
}

// TestCheckRejectsMisclassification proves Check catches wrongly classed
// faults and unflagged partial results.
func TestCheckRejectsMisclassification(t *testing.T) {
	wrongClass := Scenario{
		Name:  "wrong-class",
		Class: simerr.ErrNumerical,
		Run:   func() Outcome { return Outcome{Err: simerr.Invalidf("not numerical")} },
	}
	if _, verdict := Check(wrongClass); verdict == nil {
		t.Fatal("Check must reject a misclassified fault")
	}
	unflagged := Scenario{
		Name:          "unflagged-partial",
		WantTruncated: true,
		Run:           func() Outcome { return Outcome{} },
	}
	if _, verdict := Check(unflagged); verdict == nil {
		t.Fatal("Check must reject an unflagged partial result")
	}
}
