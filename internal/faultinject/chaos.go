// Byzantine and network-chaos fault scenarios for the distributed fleet:
// a worker that lies about its results, a claim RPC delivered twice, and a
// worker whose retry budget runs dry against a misbehaving coordinator.
// Like the dist scenarios these drive public APIs deterministically — the
// contract is always the same: the fault is detected, counted, and the
// folded result stays byte-identical to a standalone run.
package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"qisim/internal/backoff"
	"qisim/internal/dist"
)

// chaosScenarios returns the chaos/Byzantine fault suite, appended to
// Scenarios().
func chaosScenarios() []Scenario {
	return []Scenario{
		{
			// (i) Corrupted unit result: a worker reports well-formed but
			// forged shard states (valid container CRC, valid digest over the
			// forged content — the worker computes both honestly over its
			// lie). The coordinator's spot-check re-executes the window,
			// catches the mismatch, quarantines the worker, and completes the
			// job on the local lane with standalone-identical bytes.
			Name: "chaos-corrupted-result-quarantines-worker",
			Run: func() Outcome {
				clk := &manualClock{now: time.Unix(2000, 0)}
				c := dist.NewCoordinator(dist.Config{Clock: clk.Now, LeaseTTL: time.Minute,
					UnitShards: 4, SpotCheck: 1, SpotCheckProbation: 1,
					QuarantineFor: 10 * time.Minute})
				core := distToyCore(nil)
				want, _, err := core.RunFull(context.Background(), distToyPlan)
				if err != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", err)}
				}
				c.Register(context.Background(), dist.WorkerInfo{ID: "liar"}) //nolint:errcheck
				ch := startDistExecute(c, context.Background(), "k-chaos-liar", core, distToyPlan)

				g, err := claimUntil(c, "liar")
				if err != nil {
					return Outcome{Err: err}
				}
				// The injected fault: forged states — decodable ints that
				// cannot match the coordinator's own re-execution.
				n := g.End - g.Start
				states := make([]json.RawMessage, n)
				events := make([]int, n)
				for i := range states {
					states[i] = json.RawMessage(fmt.Sprintf("%d", 5_555_000+i))
					events[i] = 1
				}
				body, err := dist.EncodeUnitResult(dist.UnitResult{Kind: g.Kind, Key: g.Key,
					Start: g.Start, End: g.End, States: states, Events: events, Worker: "liar"})
				if err != nil {
					return Outcome{Err: err}
				}
				if err := c.Report(context.Background(), "liar", body); err != nil {
					return Outcome{Err: err}
				}
				// Quarantined: the liar gets no further grants.
				if g2, err := c.Claim(context.Background(), "liar", ""); err != nil || g2 != nil {
					return Outcome{Err: fmt.Errorf("quarantined worker still claimed: %v %v", g2, err)}
				}
				o, err := waitDistOutcome(ch)
				if err != nil {
					return Outcome{Err: err}
				}
				if string(o.body) != string(want) {
					return Outcome{Err: fmt.Errorf("post-quarantine bytes differ from standalone:\n%s\n%s", o.body, want)}
				}
				st := c.Stats()
				if st.SpotChecksFailed != 1 || st.Quarantines != 1 {
					return Outcome{Err: fmt.Errorf("quarantine not observed: %+v", st)}
				}
				return Outcome{Status: o.status,
					Detail: "forged unit caught by spot-check; worker quarantined; bytes identical"}
			},
		},
		{
			// (i') Duplicated claim delivery: the network replays a claim RPC
			// (chaos duplicate fault). With an idempotency key the replay
			// returns the SAME grant — no second lease, no double-assigned
			// window — and the job still folds to standalone bytes.
			Name: "chaos-duplicated-claim-delivery-idempotent",
			Run: func() Outcome {
				c := dist.NewCoordinator(dist.Config{LeaseTTL: time.Minute, UnitShards: 4})
				core := distToyCore(nil)
				want, _, err := core.RunFull(context.Background(), distToyPlan)
				if err != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", err)}
				}
				c.Register(context.Background(), dist.WorkerInfo{ID: "w1"}) //nolint:errcheck
				ch := startDistExecute(c, context.Background(), "k-chaos-dup-claim", core, distToyPlan)

				// First delivery of claim. Distinct keys per poll: a nil
				// (no-work) outcome must not be replayed forever while the
				// job is still being admitted.
				var g1 *dist.LeaseGrant
				var lastKey string
				deadline := time.Now().Add(10 * time.Second)
				for seq := 0; g1 == nil; seq++ {
					if time.Now().After(deadline) {
						return Outcome{Err: fmt.Errorf("no grant became available")}
					}
					lastKey = fmt.Sprintf("w1.c%d", seq)
					g1, err = c.Claim(context.Background(), "w1", lastKey)
					if err != nil {
						return Outcome{Err: err}
					}
					if g1 == nil {
						time.Sleep(time.Millisecond)
					}
				}
				grantsAfterFirst := c.Stats().Grants
				// The injected fault: the SAME logical claim arrives again —
				// the key that produced the grant is replayed verbatim.
				g1b, err := c.Claim(context.Background(), "w1", lastKey)
				if err != nil {
					return Outcome{Err: err}
				}
				if g1b == nil || g1b.Start != g1.Start || g1b.End != g1.End {
					return Outcome{Err: fmt.Errorf("replay returned %+v, want the original grant [%d,%d)", g1b, g1.Start, g1.End)}
				}
				st := c.Stats()
				if st.Grants != grantsAfterFirst || st.IdemReplays != 1 {
					return Outcome{Err: fmt.Errorf("duplicate claim leaked a grant: %+v (had %d)", st, grantsAfterFirst)}
				}
				// Drain the rest of the job normally.
				if err := reportGrant(c, core, "w1", g1); err != nil {
					return Outcome{Err: err}
				}
				for {
					g, err := c.Claim(context.Background(), "w1", "")
					if err != nil {
						return Outcome{Err: err}
					}
					if g == nil {
						break
					}
					if err := reportGrant(c, core, "w1", g); err != nil {
						return Outcome{Err: err}
					}
				}
				o, err := waitDistOutcome(ch)
				if err != nil {
					return Outcome{Err: err}
				}
				if string(o.body) != string(want) {
					return Outcome{Err: fmt.Errorf("deduped-claim bytes differ from standalone:\n%s\n%s", o.body, want)}
				}
				return Outcome{Status: o.status,
					Detail: "duplicated claim replayed the original grant; no lease leaked; bytes identical"}
			},
		},
		{
			// (i'') Retry budget exhausted: a worker facing an all-503
			// coordinator burns its single budgeted retry and gives up FAST
			// (2 HTTP calls, not MaxAttempts), while the coordinator side —
			// with no live fleet — degrades the job to the local lane and
			// still produces standalone-identical bytes.
			Name: "chaos-retry-budget-exhausted-degrades-to-local",
			Run: func() Outcome {
				var calls atomic.Int64
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					calls.Add(1)
					w.WriteHeader(http.StatusServiceUnavailable)
				}))
				defer srv.Close()
				budget := backoff.NewBudget(0.1, 1)
				cl := &dist.Client{Base: srv.URL, MaxAttempts: 10, Budget: budget,
					Backoff: backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 2},
					Rand:    func() float64 { return 0 },
				}
				_, err := cl.Claim(context.Background(), "w1", "c1")
				if err == nil {
					return Outcome{Err: fmt.Errorf("claim against an all-503 coordinator succeeded")}
				}
				if got := calls.Load(); got != 2 {
					return Outcome{Err: fmt.Errorf("%d HTTP calls, want 2 (first attempt + one budgeted retry)", got)}
				}
				if allowed, denied := budget.Stats(); allowed != 1 || denied == 0 {
					return Outcome{Err: fmt.Errorf("budget stats (%d, %d), want 1 allowed and ≥1 denied", allowed, denied)}
				}

				// The worker has stopped hammering the fleet; the job itself
				// must not stall: with zero live workers the coordinator
				// refuses with ErrNoWorkers and the caller (the service
				// layer's degraded lane) runs the plan fully locally — same
				// engine, so the bytes match a standalone run by
				// construction, and nothing waits on the dead fleet.
				c := dist.NewCoordinator(dist.Config{LeaseTTL: time.Minute, UnitShards: 4})
				core := distToyCore(nil)
				want, wantSt, ferr := core.RunFull(context.Background(), distToyPlan)
				if ferr != nil {
					return Outcome{Err: fmt.Errorf("standalone reference failed: %w", ferr)}
				}
				_, _, derr := c.Execute(context.Background(), "toy", "k-chaos-budget", nil, core, distToyPlan, nil)
				if derr != dist.ErrNoWorkers {
					return Outcome{Err: fmt.Errorf("empty fleet: got %v, want ErrNoWorkers", derr)}
				}
				body, status, lerr := core.RunFull(context.Background(), distToyPlan)
				if lerr != nil {
					return Outcome{Err: lerr}
				}
				if string(body) != string(want) || status != wantSt {
					return Outcome{Err: fmt.Errorf("degraded-local bytes differ from standalone:\n%s\n%s", body, want)}
				}
				return Outcome{Status: status,
					Detail: fmt.Sprintf("retry budget stopped the loop after %d calls; empty fleet degraded to local with identical bytes", calls.Load())}
			},
		},
	}
}
