package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"qisim/internal/dse"
	"qisim/internal/jobs"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/service"
	"qisim/internal/simrun"
)

// findDesignByName resolves a microarchitecture design by its public name.
func findDesignByName(name string) (microarch.Design, bool) {
	for _, d := range microarch.AllDesigns() {
		if d.Name == name {
			return d, true
		}
	}
	return microarch.Design{}, false
}

// dseScenarios injects faults into the design-space exploration layer: a
// parent sweep canceled mid-fan-out, pruning racing dispatch, and a
// coordinator crash between waves. The contracts under test: cancellation
// cascades parent → children and every child finalizes as a flagged
// partial; pruning a dominated point can never change the final frontier;
// and a journal-replayed sweep re-adopts its children and converges to the
// byte-identical frontier an uninterrupted run produces.
func dseScenarios() []Scenario {
	return []Scenario{
		{
			// A dse.sweep parent canceled mid-sweep must cascade the
			// cancellation to every child it fanned out: the children
			// finalize as Truncated partials (StopCanceled), the parent
			// folds them into its own truncated partial, and nothing is
			// left queued or running. The children here block until their
			// context dies, so the scenario is deterministic: the cascade
			// is the only thing that can finish them.
			Name:          "canceled-parent-sweep-children-cancelled",
			WantTruncated: true,
			Run:           runCanceledParentSweep,
		},
		{
			// Prune soundness under dispatch: a point whose optimistic
			// bound is strictly dominated by the committed frontier must be
			// pruned BEFORE dispatch — its evaluator is never invoked — and
			// pruning must provably not change the final frontier: the
			// pruned sweep's frontier is byte-identical to an unpruned
			// sweep over the same grid.
			Name: "dominated-point-pruned-before-dispatch",
			Run:  runDominatedPointPruned,
		},
		{
			// Coordinator crash mid-sweep: the WAL is captured while the
			// sweep is fanning out (parent + current-wave children
			// pending), then replayed into a fresh service. Recovery must
			// resubmit the parent as an orchestrator, skip its journaled
			// children (the parent re-expands and re-adopts them), and the
			// recovered sweep's final frontier must be byte-identical to an
			// uninterrupted run of the same request.
			Name: "sweep-coordinator-crash-partial-frontier",
			Run:  runSweepCoordinatorCrash,
		},
	}
}

// runCanceledParentSweep drives the jobs layer directly so the
// mid-fan-out instant is deterministic: children park on ctx.Done and only
// the parent's cancel cascade can release them.
func runCanceledParentSweep() Outcome {
	const children = 4
	m := jobs.NewManager(jobs.Config{Workers: 2, Cache: rescache.New(16)})
	m.Start()
	defer m.Drain(context.Background()) //nolint:errcheck

	childRun := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		<-ctx.Done()
		return nil, simrun.Status{Requested: 1, Truncated: true, StopReason: simrun.StopCanceled}, nil
	}
	parentRun := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		parentID := obs.JobID(ctx)
		ids := make([]string, 0, children)
		for i := 0; i < children; i++ {
			key := rescache.Key(fmt.Sprintf("fi-cancel-child-%d", i))
			snap, _, err := m.SubmitOpts(jobs.KindDSEPoint, key, nil, childRun,
				jobs.SubmitOptions{Parent: parentID})
			if err != nil {
				return nil, simrun.Status{}, err
			}
			ids = append(ids, snap.ID)
		}
		done := 0
		for _, id := range ids {
			snap, err := m.Wait(context.Background(), id)
			if err != nil {
				return nil, simrun.Status{}, err
			}
			if snap.Status != nil && snap.Status.Truncated {
				done++
			}
		}
		body, _ := json.Marshal(map[string]int{"children_truncated": done})
		return body, simrun.Status{
			Requested: children, Completed: 0,
			Truncated: true, StopReason: simrun.StopCanceled,
		}, nil
	}

	parent, _, err := m.SubmitOpts(jobs.KindDSESweep, "fi-cancel-parent", nil, parentRun,
		jobs.SubmitOptions{Orchestrator: true})
	if err != nil {
		return Outcome{Err: fmt.Errorf("submit parent: %w", err)}
	}
	// Wait for the fan-out to land, then inject the fault: cancel the parent.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if kids := m.List(jobs.Filter{Parent: parent.ID}, 0); len(kids) == children {
			break
		}
		if time.Now().After(deadline) {
			return Outcome{Err: fmt.Errorf("fan-out never reached %d children", children)}
		}
		time.Sleep(time.Millisecond)
	}
	if !m.Cancel(parent.ID) {
		return Outcome{Err: fmt.Errorf("cancel refused for running parent")}
	}
	final, err := m.Wait(context.Background(), parent.ID)
	if err != nil {
		return Outcome{Err: fmt.Errorf("wait parent: %w", err)}
	}
	var st simrun.Status
	if final.Status != nil {
		st = *final.Status
	}
	out := Outcome{Status: st, Detail: fmt.Sprintf("parent %s, %d children", final.State, children)}
	if final.State != jobs.StateDone {
		out.Err = fmt.Errorf("canceled parent finished %s (%s)", final.State, final.Error)
		return out
	}
	for _, kid := range m.List(jobs.Filter{Parent: parent.ID}, 0) {
		if kid.State != jobs.StateDone || kid.Status == nil || !kid.Status.Truncated {
			out.Err = fmt.Errorf("child %s not a truncated partial: state %s status %+v",
				kid.ID, kid.State, kid.Status)
			return out
		}
	}
	if n := m.InFlight(); n != 0 {
		out.Err = fmt.Errorf("%d jobs still in flight after cascade", n)
	}
	return out
}

// runDominatedPointPruned crafts a grid where the first wave's committed
// frontier strictly dominates the later points' bounds: ERSFQ-opt8 beats
// the CMOS points on both objectives, so with the design axis ordered
// ERSFQ-first every CMOS point must be pruned without dispatch.
func runDominatedPointPruned() Outcome {
	grid := dse.Grid{Axes: []dse.Axis{
		{Name: "design", Values: []any{"ERSFQ-opt8", "4K-CMOS-advanced-opt67"}},
		{Name: "extra_gate_error", LogRange: &dse.LogRange{From: 1e-6, To: 1e-4, Points: 4}},
	}}
	objs := []dse.Objective{
		{Metric: scalability.MetricPower4K, Goal: dse.Min},
		{Metric: scalability.MetricLogicalError, Goal: dse.Min},
	}
	opt := scalability.DefaultOptions()
	dispatched := map[int]bool{}
	eval := func(_ context.Context, pts []dse.Point) ([]map[string]float64, error) {
		out := make([]map[string]float64, len(pts))
		for i, p := range pts {
			dispatched[p.Index] = true
			name, _ := p.Coords["design"].(string)
			extra, _ := p.Coords["extra_gate_error"].(float64)
			d, ok := findDesignByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown design %q", name)
			}
			m, err := scalability.AnalyzePointChecked(d, extra, opt)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
	bound := func(p dse.Point) map[string]float64 {
		name, _ := p.Coords["design"].(string)
		extra, _ := p.Coords["extra_gate_error"].(float64)
		d, ok := findDesignByName(name)
		if !ok {
			return nil
		}
		return scalability.PointBound(d, extra, opt)
	}
	pol := dse.Policy{Wave: 4, Prune: true}
	pruned, err := dse.RunSweep(context.Background(), grid, objs, pol, bound, eval, nil)
	if err != nil {
		return Outcome{Err: fmt.Errorf("pruned sweep: %w", err)}
	}
	if pruned.Pruned == 0 {
		return Outcome{Err: fmt.Errorf("no point was pruned (evaluated %d of %d)", pruned.Evaluated, pruned.GridSize)}
	}
	if got := len(dispatched); got != pruned.Evaluated {
		return Outcome{Err: fmt.Errorf("pruned points reached dispatch: %d dispatched, %d evaluated", got, pruned.Evaluated)}
	}
	// Soundness: the unpruned sweep over the same grid lands on the
	// byte-identical frontier.
	full, err := dse.RunSweep(context.Background(), grid, objs, dse.Policy{Wave: 4}, nil, eval, nil)
	if err != nil {
		return Outcome{Err: fmt.Errorf("reference sweep: %w", err)}
	}
	a, err := rescache.CanonicalJSON(pruned.Frontier)
	if err != nil {
		return Outcome{Err: err}
	}
	b, err := rescache.CanonicalJSON(full.Frontier)
	if err != nil {
		return Outcome{Err: err}
	}
	if !bytes.Equal(a, b) {
		return Outcome{Err: fmt.Errorf("pruning changed the frontier:\npruned %s\nfull   %s", a, b)}
	}
	return Outcome{Detail: fmt.Sprintf("%d of %d points pruned pre-dispatch; frontier byte-identical to unpruned run",
		pruned.Pruned, pruned.GridSize)}
}

// runSweepCoordinatorCrash snapshots a live sweep's WAL mid-fan-out (the
// crash instant, torn tail and all), replays it into a fresh service, and
// compares the recovered sweep's result bytes against an uninterrupted run.
func runSweepCoordinatorCrash() Outcome {
	sweep := `{"kind":"dse.sweep","params":{` +
		`"axes":[{"name":"extra_gate_error","log_range":{"from":1e-6,"to":1e-3,"points":24}}],` +
		`"wave":8}}`

	dirA, err := os.MkdirTemp("", "faultinject-dse-crash-a-*")
	if err != nil {
		return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "faultinject-dse-crash-b-*")
	if err != nil {
		return Outcome{Err: fmt.Errorf("tempdir: %w", err)}
	}
	defer os.RemoveAll(dirB)

	// Life 1: a journaled service starts the sweep; the WAL is copied the
	// moment children appear — parent and current-wave children pending.
	svcA, err := service.New(service.Config{Workers: 2, DataDir: dirA})
	if err != nil {
		return Outcome{Err: fmt.Errorf("service A: %w", err)}
	}
	svcA.Start()
	srvA := httptest.NewServer(svcA.Handler())
	defer srvA.Close()
	defer svcA.Drain(context.Background()) //nolint:errcheck
	if _, err := svcA.Recover(); err != nil {
		return Outcome{Err: fmt.Errorf("service A recover: %w", err)}
	}
	id, err := submitJSON(srvA.URL, sweep)
	if err != nil {
		return Outcome{Err: fmt.Errorf("submit sweep: %w", err)}
	}
	var wal []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srvA.URL + "/v1/jobs?parent=" + id)
		if err != nil {
			return Outcome{Err: fmt.Errorf("list children: %w", err)}
		}
		var list struct {
			Count int `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return Outcome{Err: fmt.Errorf("decode list: %w", err)}
		}
		if list.Count > 0 {
			// The crash instant: capture the WAL as-is, mid-append races
			// included (a torn tail line is the journal's problem to
			// survive).
			if wal, err = os.ReadFile(dirA + "/journal.wal"); err != nil {
				return Outcome{Err: fmt.Errorf("capture WAL: %w", err)}
			}
			break
		}
		if time.Now().After(deadline) {
			return Outcome{Err: fmt.Errorf("sweep never fanned out children")}
		}
		time.Sleep(time.Millisecond)
	}
	// Life 1 keeps running to completion — its result is the uninterrupted
	// reference the recovered run must match byte-for-byte.
	want, err := waitResult(srvA.URL, id)
	if err != nil {
		return Outcome{Err: fmt.Errorf("reference sweep: %w", err)}
	}

	// Life 2: a fresh service boots from the crash-instant WAL.
	if err := os.WriteFile(dirB+"/journal.wal", wal, 0o644); err != nil {
		return Outcome{Err: fmt.Errorf("plant WAL: %w", err)}
	}
	svcB, err := service.New(service.Config{Workers: 2, DataDir: dirB})
	if err != nil {
		return Outcome{Err: fmt.Errorf("service B: %w", err)}
	}
	svcB.Start()
	srvB := httptest.NewServer(svcB.Handler())
	defer srvB.Close()
	defer svcB.Drain(context.Background()) //nolint:errcheck
	recovered, err := svcB.Recover()
	if err != nil {
		return Outcome{Err: fmt.Errorf("replay WAL: %w", err)}
	}
	if recovered == 0 {
		return Outcome{Err: fmt.Errorf("crash-instant WAL recovered no jobs")}
	}
	resp, err := http.Get(srvB.URL + "/v1/jobs?kind=dse.sweep")
	if err != nil {
		return Outcome{Err: fmt.Errorf("list recovered sweeps: %w", err)}
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) == 0 {
		return Outcome{Err: fmt.Errorf("recovered sweep not listed (err %v)", err)}
	}
	got, err := waitResult(srvB.URL, list.Jobs[0].ID)
	if err != nil {
		return Outcome{Err: fmt.Errorf("recovered sweep: %w", err)}
	}
	if !bytes.Equal(got, want) {
		return Outcome{Err: fmt.Errorf("recovered frontier differs from uninterrupted run:\ngot  %.200s\nwant %.200s", got, want)}
	}
	return Outcome{Detail: fmt.Sprintf("recovered %d journaled jobs; frontier byte-identical to uninterrupted run (%d bytes)",
		recovered, len(got))}
}

// submitJSON posts one job request and returns the assigned job ID.
func submitJSON(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("submit returned %d: %s", resp.StatusCode, raw)
	}
	var sub struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		return "", err
	}
	if sub.Job.ID == "" {
		return "", fmt.Errorf("submit response carries no job id: %s", raw)
	}
	return sub.Job.ID, nil
}

// waitResult polls a job until it is done and returns its result bytes.
func waitResult(base, id string) ([]byte, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var snap struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch snap.State {
		case "done":
			return snap.Result, nil
		case "failed":
			return nil, fmt.Errorf("job %s failed: %s", id, snap.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %s never finished", id)
}
