// Package buildinfo is the single source of build identity for every QIsim
// binary. The Version/Commit/Date variables are injected at link time by the
// Makefile:
//
//	go build -ldflags "-X qisim/internal/buildinfo.Version=v1.2.3 \
//	                   -X qisim/internal/buildinfo.Commit=abc1234 \
//	                   -X qisim/internal/buildinfo.Date=2026-08-06"
//
// When the ldflags are absent (a plain `go build`), the package falls back
// to the VCS stamp Go embeds in the binary (runtime/debug.ReadBuildInfo), so
// `-version` output is still meaningful for ad-hoc builds.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Link-time injected identity (see package comment). The zero values are the
// ad-hoc-build defaults.
var (
	Version = "dev"
	Commit  = ""
	Date    = ""
)

// Info is the resolved build identity of the running binary.
type Info struct {
	Version   string `json:"version"`
	Commit    string `json:"commit,omitempty"`
	Date      string `json:"date,omitempty"`
	GoVersion string `json:"go_version"`
	Platform  string `json:"platform"`
}

// Resolve merges the ldflags-injected identity with the VCS stamp embedded
// by the Go toolchain (used only for fields the ldflags left empty).
func Resolve() Info {
	info := Info{
		Version:   Version,
		Commit:    Commit,
		Date:      Date,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if info.Commit == "" {
					info.Commit = s.Value
				}
			case "vcs.time":
				if info.Date == "" {
					info.Date = s.Value
				}
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if dirty && info.Commit != "" {
			info.Commit += "-dirty"
		}
	}
	info.Commit = shorten(info.Commit)
	return info
}

// shorten truncates a full revision hash to 12 characters, preserving a
// "-dirty" suffix.
func shorten(c string) string {
	const suffix = "-dirty"
	dirty := len(c) >= len(suffix) && c[len(c)-len(suffix):] == suffix
	if dirty {
		c = c[:len(c)-len(suffix)]
	}
	if len(c) > 12 {
		c = c[:12]
	}
	if dirty {
		c += suffix
	}
	return c
}

// String renders the one-line `-version` output for a named binary, e.g.
//
//	qisimd dev (commit 1a2b3c4d5e6f, go1.22.1 linux/amd64)
func String(binary string) string {
	info := Resolve()
	meta := ""
	if info.Commit != "" {
		meta = "commit " + info.Commit + ", "
	}
	if info.Date != "" {
		meta += "built " + info.Date + ", "
	}
	return fmt.Sprintf("%s %s (%s%s %s)", binary, info.Version, meta, info.GoVersion, info.Platform)
}
