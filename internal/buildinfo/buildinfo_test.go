package buildinfo

import (
	"strings"
	"testing"
)

// TestStringContainsIdentity pins the `-version` line format every binary
// shares: name, version, Go toolchain and platform must all appear.
func TestStringContainsIdentity(t *testing.T) {
	s := String("qisimd")
	for _, want := range []string{"qisimd", Version, "go", "/"} {
		if !strings.Contains(s, want) {
			t.Errorf("version string %q missing %q", s, want)
		}
	}
}

// TestResolveLdflagsPrecedence verifies link-time injected values win over
// the VCS stamp fallback.
func TestResolveLdflagsPrecedence(t *testing.T) {
	oldV, oldC, oldD := Version, Commit, Date
	defer func() { Version, Commit, Date = oldV, oldC, oldD }()
	Version, Commit, Date = "v9.9.9", "feedface0000", "2026-08-06"
	info := Resolve()
	if info.Version != "v9.9.9" || info.Commit != "feedface0000" || info.Date != "2026-08-06" {
		t.Fatalf("ldflags identity not honoured: %+v", info)
	}
	if info.GoVersion == "" || info.Platform == "" {
		t.Fatalf("runtime identity missing: %+v", info)
	}
}

// TestResolveTruncatesLongCommit: a full 40-char SHA is shortened for the
// one-line output, but a -dirty suffix is preserved untruncated.
func TestResolveTruncatesLongCommit(t *testing.T) {
	oldC := Commit
	defer func() { Commit = oldC }()
	Commit = "0123456789abcdef0123456789abcdef01234567"
	if got := Resolve().Commit; got != "0123456789ab" {
		t.Fatalf("long commit not truncated: %q", got)
	}
}
