package pauli

import (
	"math"
	"testing"

	"qisim/internal/gateerror"
)

func TestDecoherenceChannelTracePreserving(t *testing.T) {
	for _, tt := range []float64{0, 10e-9, 1e-6, 100e-6, 1e-3} {
		c := DecoherenceChannel(tt, 122e-6, 118e-6)
		if !c.TracePreserving(1e-10) {
			t.Fatalf("channel at t=%v not trace preserving", tt)
		}
	}
}

func TestChannelFidelityMatchesClosedForm(t *testing.T) {
	// The 2-design average over the Kraus channel must equal the
	// Bloch–Redfield closed form used throughout the error models:
	// F = 1/2 + e^{-t/T1}/6 + e^{-t/T2}/3.
	t1, t2 := 122e-6, 118e-6
	for _, tt := range []float64{0, 25e-9, 517e-9, 5e-6, 50e-6, 500e-6} {
		got := AverageChannelFidelity(DecoherenceChannel(tt, t1, t2))
		want := gateerror.DecoherenceFidelity(tt, t1, t2)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("t=%v: Kraus average %v vs closed form %v", tt, got, want)
		}
	}
}

func TestChannelFidelityT2LimitedCase(t *testing.T) {
	// Strong dephasing (T2 << 2T1) must also match.
	t1, t2 := 200e-6, 50e-6
	tt := 10e-6
	got := AverageChannelFidelity(DecoherenceChannel(tt, t1, t2))
	want := gateerror.DecoherenceFidelity(tt, t1, t2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Kraus average %v vs closed form %v", got, want)
	}
}

func TestTrajectoryConvergesToExact(t *testing.T) {
	c := DecoherenceChannel(20e-6, 122e-6, 118e-6)
	exact := AverageChannelFidelity(c)
	mc := TrajectoryAverageFidelity(c, 120000, 7)
	if math.Abs(mc-exact) > 0.01 {
		t.Fatalf("trajectory MC %v vs exact %v", mc, exact)
	}
}

func TestChannelLimits(t *testing.T) {
	// t=0 → identity channel.
	if f := AverageChannelFidelity(DecoherenceChannel(0, 1e-4, 1e-4)); math.Abs(f-1) > 1e-12 {
		t.Fatalf("F(0) = %v", f)
	}
	// t→∞ → relax to |0>: F = 1/2.
	if f := AverageChannelFidelity(DecoherenceChannel(1, 1e-4, 1e-4)); math.Abs(f-0.5) > 1e-6 {
		t.Fatalf("F(∞) = %v", f)
	}
}
