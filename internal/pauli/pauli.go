// Package pauli is QIsim's workload-level error simulator (Section 4.5): it
// combines the cycle-accurate gate-timing trace with gate/readout error
// rates and a decoherence-error injector (identity gates inserted over idle
// periods, converted to Pauli-channel probabilities from T1/T2) to predict
// end-to-end workload fidelity. Two estimators are provided: the analytic
// estimated-success-probability (ESP) product — the SupermarQ metric — and a
// Monte-Carlo Pauli-event sampler that agrees with it in expectation.
package pauli

import (
	"context"
	"math"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// ErrorRates carries the physical error rates of a machine or QCI model.
type ErrorRates struct {
	OneQ    float64
	TwoQ    float64
	Readout float64
	T1, T2  float64
}

// DecoherenceError converts an idle interval into a Pauli error probability
// using the depolarising-equivalent of the T1/T2 channel:
// p = 1 - F_avg(t) with F_avg = 1/2 + e^{-t/T1}/6 + e^{-t/T2}/3.
func (e ErrorRates) DecoherenceError(idle float64) float64 {
	if idle <= 0 {
		return 0
	}
	f := 0.5 + math.Exp(-idle/e.T1)/6 + math.Exp(-idle/e.T2)/3
	return 1 - f
}

// GateError returns the error probability of one executed op.
func (e ErrorRates) GateError(in compile.Instr) float64 {
	switch in.Kind {
	case compile.OneQ:
		if in.Virtual {
			return 0
		}
		return e.OneQ
	case compile.TwoQ:
		return e.TwoQ
	case compile.Measure:
		return e.Readout
	default:
		return 0
	}
}

// Config controls the simulator.
type Config struct {
	Rates ErrorRates
	// DecoherencePeriod is the identity-injection granularity (the paper
	// inserts identity gates "for every specified period (e.g., 100ns)").
	DecoherencePeriod float64
	// Shots for the Monte-Carlo estimator.
	Shots int
	Seed  int64
}

// DefaultConfig returns a 100 ns injection period and 4,000 shots.
func DefaultConfig(r ErrorRates) Config {
	return Config{Rates: r, DecoherencePeriod: 100e-9, Shots: 4000, Seed: 3}
}

// ESP returns the analytic estimated success probability of a simulated
// workload: the product of per-operation survival probabilities, including
// the injected decoherence identities over each qubit's idle exposure.
func ESP(res *cyclesim.Result, cfg Config) float64 {
	logp := 0.0
	for _, op := range res.Ops {
		p := cfg.Rates.GateError(op.Instr)
		if p > 0 {
			logp += math.Log1p(-clamp(p))
		}
	}
	// Decoherence: quantise each qubit's idle time into injection periods,
	// each contributing the period's decoherence error (matching the
	// identity-injection procedure of Section 4.5).
	period := cfg.DecoherencePeriod
	if period <= 0 {
		period = 100e-9
	}
	pp := cfg.Rates.DecoherenceError(period)
	for q := 0; q < len(res.QubitBusy); q++ {
		n := int(res.IdleTime(q) / period)
		if n > 0 {
			logp += float64(n) * math.Log1p(-clamp(pp))
		}
	}
	return math.Exp(logp)
}

// MonteCarlo samples Pauli error events shot by shot: a shot succeeds when
// no error event fires (the discrete-event equivalent of ESP; it converges
// to ESP with shot count and provides the hook for correlated-error
// extensions).
func MonteCarlo(res *cyclesim.Result, cfg Config) float64 {
	mc, err := MonteCarloCtx(context.Background(), res, cfg, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return mc.Fidelity
}

// MCResult is the context-aware Monte-Carlo outcome: Fidelity is the success
// fraction over the completed shots; Status flags truncation/convergence.
type MCResult struct {
	Fidelity  float64       `json:"fidelity"`
	Successes int           `json:"successes"`
	Status    simrun.Status `json:"status"`
}

// MonteCarloCtx is the context-aware Pauli-event Monte-Carlo, executed on
// the sharded parallel engine: shard RNG streams derive deterministically
// from cfg.Seed, shard results merge in shard order, and the success
// fraction is bit-identical for every opt.Workers count. Cancellation keeps
// the completed shard prefix as a partial, Truncated-flagged estimate; opt
// can enable the cross-shard standard-error convergence guard (on the
// failure count).
func MonteCarloCtx(ctx context.Context, res *cyclesim.Result, cfg Config, opt simrun.Options) (MCResult, error) {
	cfg, run, merge, err := MonteCarloCore(res, cfg)
	if err != nil {
		return MCResult{}, err
	}
	success, status, gerr := simrun.RunSharded(ctx, cfg.Shots, cfg.Seed, opt, run, merge)
	if gerr != nil {
		return MCResult{}, gerr
	}
	return MCResultFrom(success, status), nil
}

// MonteCarloCore validates and normalizes the Pauli-event MC configuration
// and returns (normalized cfg, per-shard sampler, in-order merge) — the
// pieces a distributed executor needs to run an arbitrary shard window of
// this model and fold it bit-identically to a local run.
func MonteCarloCore(res *cyclesim.Result, cfg Config) (Config, simrun.ShardFunc[int], func(*int, int), error) {
	if res == nil {
		return cfg, nil, nil, simerr.Invalidf("pauli: nil cyclesim result")
	}
	if cfg.Shots <= 0 {
		cfg.Shots = 4000
	}
	period := cfg.DecoherencePeriod
	if period <= 0 {
		period = 100e-9
	}
	pp := cfg.Rates.DecoherenceError(period)
	// Pre-collect idle identity counts (read-only across shards).
	var idleIDs int
	for q := 0; q < len(res.QubitBusy); q++ {
		idleIDs += int(res.IdleTime(q) / period)
	}
	// Pre-resolve the per-op error probabilities, keeping only the p > 0
	// entries in op order. The shot loop only ever draws where p > 0, so
	// iterating the compacted table consumes the exact same draw sequence as
	// re-deriving p per op — the result is bit-identical, without the
	// per-shot × per-op GateError dispatch.
	pTable := make([]float64, 0, len(res.Ops))
	for _, op := range res.Ops {
		if p := cfg.Rates.GateError(op.Instr); p > 0 {
			pTable = append(pTable, p)
		}
	}
	run := func(t *simrun.ShardTask) (int, int, error) {
		succ := 0
		done := 0
		for s := 0; t.Continue(s); s++ {
			done++
			ok := true
			for _, p := range pTable {
				if t.RNG.Float64() < p {
					ok = false
					break
				}
			}
			if ok {
				for i := 0; i < idleIDs; i++ {
					if t.RNG.Float64() < pp {
						ok = false
						break
					}
				}
			}
			if ok {
				succ++
			}
		}
		return succ, done - succ, nil
	}
	return cfg, run, func(dst *int, src int) { *dst += src }, nil
}

// MCResultFrom assembles the Pauli-event MC result from a folded success
// count and the run's status — shared by the local path and the
// distributed merge so both produce identical result bytes.
func MCResultFrom(success int, status simrun.Status) MCResult {
	out := MCResult{Successes: success, Status: status}
	if status.Completed > 0 {
		out.Fidelity = float64(success) / float64(status.Completed)
	}
	return out
}

func clamp(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.999999 {
		return 0.999999
	}
	return p
}
