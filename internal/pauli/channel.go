package pauli

import (
	"context"
	"math"

	"qisim/internal/cmath"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// KrausChannel is a completely positive map given by Kraus operators.
type KrausChannel struct {
	Ops []*cmath.Matrix
}

// Apply returns E(ρ) = Σ K ρ K†.
func (c KrausChannel) Apply(rho *cmath.Matrix) *cmath.Matrix {
	out := cmath.NewMatrix(rho.Rows, rho.Cols)
	for _, k := range c.Ops {
		term := cmath.Mul(cmath.Mul(k, rho), cmath.Dagger(k))
		cmath.AddInPlace(out, 1, term)
	}
	return out
}

// TracePreserving checks Σ K†K = I within tol.
func (c KrausChannel) TracePreserving(tol float64) bool {
	if len(c.Ops) == 0 {
		return false
	}
	n := c.Ops[0].Rows
	sum := cmath.NewMatrix(n, n)
	for _, k := range c.Ops {
		cmath.AddInPlace(sum, 1, cmath.Mul(cmath.Dagger(k), k))
	}
	return cmath.Sub(sum, cmath.Identity(n)).FrobeniusNorm() < tol
}

// DecoherenceChannel builds the single-qubit T1/T2 channel over duration t:
// amplitude damping with γ = 1 − e^{−t/T1} composed with pure dephasing so
// the off-diagonals decay as e^{−t/T2} (requires T2 ≤ 2·T1).
func DecoherenceChannel(t, t1, t2 float64) KrausChannel {
	gamma := 1 - math.Exp(-t/t1)
	// Off-diagonal decay from amplitude damping alone is √(1−γ) = e^{−t/2T1};
	// pure dephasing supplies the rest of e^{−t/T2}.
	target := math.Exp(-t / t2)
	fromAD := math.Sqrt(1 - gamma)
	lam := 0.0
	if fromAD > 0 {
		r := target / fromAD
		if r < 1 {
			lam = 1 - r*r // dephasing parameter: off-diag × √(1−λ)
		}
	}
	k0 := cmath.FromRows([][]complex128{
		{1, 0},
		{0, complex(math.Sqrt((1-gamma)*(1-lam)), 0)},
	})
	k1 := cmath.FromRows([][]complex128{
		{0, complex(math.Sqrt(gamma), 0)},
		{0, 0},
	})
	k2 := cmath.FromRows([][]complex128{
		{0, 0},
		{0, complex(math.Sqrt((1-gamma)*lam), 0)},
	})
	return KrausChannel{Ops: []*cmath.Matrix{k0, k1, k2}}
}

// cardinalStates returns the six single-qubit 2-design states.
func cardinalStates() [][]complex128 {
	s := complex(1/math.Sqrt2, 0)
	return [][]complex128{
		{1, 0},
		{0, 1},
		{s, s},
		{s, -s},
		{s, 1i * s},
		{s, -1i * s},
	}
}

// AverageChannelFidelity computes F_avg = mean over the six cardinal states
// of ⟨ψ|E(|ψ⟩⟨ψ|)|ψ⟩ — an exact 2-design average, the first-principles
// counterpart of gateerror.DecoherenceFidelity.
func AverageChannelFidelity(c KrausChannel) float64 {
	var sum float64
	for _, psi := range cardinalStates() {
		rho := outer(psi)
		rho2 := c.Apply(rho)
		sum += real(expectation(rho2, psi))
	}
	return sum / 6
}

// TrajectoryAverageFidelity estimates the same quantity by Monte-Carlo
// quantum trajectories: sampling a Kraus outcome per shot.
func TrajectoryAverageFidelity(c KrausChannel, shots int, seed int64) float64 {
	res, err := TrajectoryAverageFidelityCtx(context.Background(), c, shots, seed, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res.Fidelity
}

// TrajectoryResult is a context-aware trajectory-MC outcome: Fidelity is the
// mean over the completed shots; Status flags truncation.
type TrajectoryResult struct {
	Fidelity float64       `json:"fidelity"`
	Status   simrun.Status `json:"status"`
}

// TrajectoryAverageFidelityCtx is the context-aware trajectory MC:
// cancellation stops the shot loop and returns the best-so-far mean fidelity
// over the completed shots, flagged Truncated. Non-finite fidelity
// accumulation (a corrupted Kraus operator) surfaces as ErrNumerical rather
// than a silent garbage number.
func TrajectoryAverageFidelityCtx(ctx context.Context, c KrausChannel, shots int, seed int64, opt simrun.Options) (TrajectoryResult, error) {
	if len(c.Ops) == 0 {
		return TrajectoryResult{}, simerr.Invalidf("pauli: channel has no Kraus operators")
	}
	for i, k := range c.Ops {
		if !k.IsFinite() {
			return TrajectoryResult{}, simerr.Numericalf("pauli: Kraus operator %d contains NaN/Inf", i)
		}
	}
	states := cardinalStates()
	// Shard bodies: each shard accumulates its own partial fidelity sum on
	// its private RNG stream; the in-shard-order merge keeps the floating
	// point accumulation deterministic for every worker count. The cardinal
	// state cycles over the GLOBAL shot index so the state sequence is
	// independent of the shard layout's execution order.
	sum, status, gerr := simrun.RunSharded(ctx, shots, seed, opt,
		func(t *simrun.ShardTask) (float64, int, error) {
			var partial float64
			kpsi := make([]complex128, c.Ops[0].Rows) // per-shard K·ψ scratch
			for s := 0; t.Continue(s); s++ {
				psi := states[t.GlobalShot(s)%len(states)]
				// Outcome probabilities p_k = ⟨ψ|K†K|ψ⟩.
				r := t.RNG.Float64()
				var acc float64
				for _, k := range c.Ops {
					k.ApplyToInto(kpsi, psi)
					p := 0.0
					for _, a := range kpsi {
						p += real(a)*real(a) + imag(a)*imag(a)
					}
					acc += p
					if r < acc || acc >= 1-1e-12 {
						cmath.NormalizeVec(kpsi)
						ov := cmath.Overlap(psi, kpsi)
						partial += real(ov)*real(ov) + imag(ov)*imag(ov)
						break
					}
				}
			}
			// No binomial statistic: the estimator is a mean, not a rate.
			return partial, -1, nil
		},
		func(dst *float64, src float64) { *dst += src })
	if gerr != nil {
		return TrajectoryResult{}, gerr
	}
	if err := cmath.CheckFiniteScalar("TrajectoryAverageFidelity sum", sum); err != nil {
		return TrajectoryResult{}, err
	}
	res := TrajectoryResult{Status: status}
	if status.Completed > 0 {
		res.Fidelity = sum / float64(status.Completed)
	}
	return res, nil
}

func outer(psi []complex128) *cmath.Matrix {
	n := len(psi)
	m := cmath.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, psi[i]*conj(psi[j]))
		}
	}
	return m
}

func expectation(rho *cmath.Matrix, psi []complex128) complex128 {
	v := rho.ApplyTo(psi)
	return cmath.Overlap(psi, v)
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
