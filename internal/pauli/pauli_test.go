package pauli

import (
	"math"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/qasm"
)

func simulate(t *testing.T, src string) *cyclesim.Result {
	t.Helper()
	p, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(p, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ibmishRates() ErrorRates {
	return ErrorRates{OneQ: 3e-4, TwoQ: 8e-3, Readout: 1.5e-2, T1: 120e-6, T2: 100e-6}
}

func TestESPSimpleCircuit(t *testing.T) {
	res := simulate(t, "qreg q[1]; creg c[1]; h q[0]; measure q[0]->c[0];")
	cfg := DefaultConfig(ibmishRates())
	esp := ESP(res, cfg)
	want := (1 - 3e-4) * (1 - 1.5e-2)
	if math.Abs(esp-want) > 1e-6 {
		t.Fatalf("ESP %v, want %v", esp, want)
	}
}

func TestESPDecreasesWithDepth(t *testing.T) {
	shallow := simulate(t, "qreg q[2]; creg c[2]; cz q[0],q[1]; measure q[0]->c[0];")
	deep := simulate(t, "qreg q[2]; creg c[2]; cz q[0],q[1]; cz q[0],q[1]; cz q[0],q[1]; measure q[0]->c[0];")
	cfg := DefaultConfig(ibmishRates())
	if ESP(deep, cfg) >= ESP(shallow, cfg) {
		t.Fatal("deeper circuits must have lower fidelity")
	}
}

func TestVirtualRzIsFree(t *testing.T) {
	a := simulate(t, "qreg q[1]; h q[0];")
	b := simulate(t, "qreg q[1]; rz(0.5) q[0]; h q[0];")
	cfg := DefaultConfig(ibmishRates())
	if math.Abs(ESP(a, cfg)-ESP(b, cfg)) > 1e-12 {
		t.Fatal("virtual Rz must not cost fidelity")
	}
}

func TestDecoherenceErrorLimits(t *testing.T) {
	r := ibmishRates()
	if r.DecoherenceError(0) != 0 {
		t.Fatal("zero idle → zero decoherence")
	}
	p1 := r.DecoherenceError(100e-9)
	p2 := r.DecoherenceError(1e-6)
	if !(p2 > p1 && p1 > 0) {
		t.Fatal("decoherence error must grow with idle time")
	}
	if pInf := r.DecoherenceError(1); math.Abs(pInf-0.5) > 1e-3 {
		t.Fatalf("fully decohered error = %v, want 0.5", pInf)
	}
}

func TestIdleQubitsDecohere(t *testing.T) {
	// Same workload but one extra spectator qubit that idles: fidelity must
	// drop when the spectator is entangled into the timing (identity
	// injection covers all qubits).
	busy := simulate(t, "qreg q[2]; creg c[2]; h q[0]; h q[0]; h q[0]; h q[0]; h q[0]; h q[1];")
	cfg := DefaultConfig(ibmishRates())
	cfg.Rates.OneQ = 0 // isolate decoherence
	esp := ESP(busy, cfg)
	if esp >= 1 {
		t.Fatal("idle spectator should decohere")
	}
}

func TestMonteCarloAgreesWithESP(t *testing.T) {
	res := simulate(t, `qreg q[4]; creg c[4];
h q[0]; cx q[0],q[1]; cx q[1],q[2]; cx q[2],q[3];
measure q[0]->c[0]; measure q[1]->c[1]; measure q[2]->c[2]; measure q[3]->c[3];`)
	cfg := DefaultConfig(ibmishRates())
	cfg.Shots = 60000
	esp := ESP(res, cfg)
	mc := MonteCarlo(res, cfg)
	if math.Abs(esp-mc) > 0.01 {
		t.Fatalf("MC %v vs ESP %v disagree beyond MC noise", mc, esp)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	res := simulate(t, "qreg q[1]; creg c[1]; h q[0]; measure q[0]->c[0];")
	cfg := DefaultConfig(ibmishRates())
	cfg.Shots = 5000
	if MonteCarlo(res, cfg) != MonteCarlo(res, cfg) {
		t.Fatal("seeded MC must be deterministic")
	}
}

func TestESPInUnitInterval(t *testing.T) {
	res := simulate(t, "qreg q[3]; creg c[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2]; measure q[2]->c[2];")
	for _, scale := range []float64{0.1, 1, 10} {
		r := ibmishRates()
		r.OneQ *= scale
		r.TwoQ *= scale
		esp := ESP(res, DefaultConfig(r))
		if esp < 0 || esp > 1 {
			t.Fatalf("ESP %v out of range at scale %v", esp, scale)
		}
	}
}
