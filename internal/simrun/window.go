package simrun

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"qisim/internal/obs"
	"qisim/internal/simerr"
)

// PlanShards returns the number of shards a budget partitions into at the
// given shard size — the shard geometry distributed executors must agree on
// before splitting a run into windows.
func PlanShards(budget, size int) int {
	if size <= 0 {
		size = DefaultShardSize
	}
	return (budget + size - 1) / size
}

// PlanShots returns the total shots covered by the first k shards of a
// budget partitioned at size — the committed-prefix shot count a
// distributed merge reports for a prefix of k shards.
func PlanShots(budget, size, k int) int {
	if size <= 0 {
		size = DefaultShardSize
	}
	return shardShots(budget, size, k)
}

// RunWindow executes shards [start, end) of the shard plan for (shots,
// seed, opt.ShardSize) — the same plan RunSharded executes in full — and
// emits each shard's result in strictly ascending shard index order. It is
// the worker-side primitive of distributed execution: a coordinator that
// folds the emitted per-shard results of adjacent windows in global shard
// order reproduces RunSharded's accumulator fold bit-exactly, because each
// shard's result depends only on (seed, shard index) and the fold sequence
// is identical.
//
// Unlike RunSharded there is no convergence guard and no checkpointing
// here: a window is a dumb slice of work; stop decisions belong to the
// coordinator, which sees the global committed prefix. opt.Workers
// parallelises within the window (in-order emit preserved); cancellation
// surfaces as a typed ErrInterrupted — a window is all-or-nothing, the
// caller reports nothing for an interrupted window and the lease expiry
// path re-runs it elsewhere.
func RunWindow[R any](ctx context.Context, shots int, seed int64, opt Options,
	start, end int, run ShardFunc[R], emit func(sh Shard, res R, events int) error) error {

	if err := opt.Validate(shots); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.CheckEvery == 0 {
		opt.CheckEvery = 256
	}
	if opt.ShardSize == 0 {
		opt.ShardSize = DefaultShardSize
	}
	budget := shots
	if opt.MaxShots > 0 && opt.MaxShots < budget {
		budget = opt.MaxShots
	}
	shards := shardPlan(budget, opt.ShardSize, seed)
	if start < 0 || end > len(shards) || start > end {
		return simerr.Invalidf("simrun: window [%d,%d) outside the %d-shard plan", start, end, len(shards))
	}
	if start == end {
		return nil
	}

	ctx, winSpan := obs.StartSpan(ctx, "mc.window",
		obs.Int("start", start), obs.Int("end", end), obs.Int("shard_size", opt.ShardSize))
	defer winSpan.End()

	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > end-start {
		workers = end - start
	}

	recs := make([]shardRecord[R], end-start)
	var (
		mu       sync.Mutex
		frontier = start
		emitErr  error
	)
	next := int64(start)

	// flush advances the contiguous emitted prefix in ascending shard order.
	// Called with mu held; an emit error latches and stops further emission.
	flush := func() {
		for frontier < end && recs[frontier-start].done && emitErr == nil {
			r := &recs[frontier-start]
			if err := emit(shards[frontier], r.res, r.events); err != nil {
				emitErr = err
				return
			}
			*r = shardRecord[R]{done: true} // release the shard's result
			frontier++
		}
	}

	worker := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= end {
				return
			}
			mu.Lock()
			stop := emitErr != nil
			mu.Unlock()
			if stop {
				return
			}
			shardCtx, shardSpan := obs.StartSpan(ctx, "shard",
				obs.Int("shard", i), obs.Int("shots", shards[i].N))
			t := &ShardTask{
				Shard: shards[i],
				RNG:   rand.New(rand.NewSource(shards[i].Seed)),
				ctx:   shardCtx,
				every: opt.CheckEvery,
			}
			res, events, err := run(t)
			if t.interrupted {
				shardSpan.SetAttr(obs.Bool("interrupted", true))
			} else if err == nil && events >= 0 {
				shardSpan.SetAttr(obs.Int("events", events))
			}
			shardSpan.End()
			mu.Lock()
			if err != nil {
				recs[i-start].err = err
			} else if !t.interrupted {
				recs[i-start] = shardRecord[R]{res: res, events: events, done: true}
				flush()
			}
			mu.Unlock()
		}
	}

	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	for i := range recs {
		if recs[i].err != nil {
			return recs[i].err
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if frontier < end {
		// Cancellation cut the window short: all-or-nothing, typed.
		winSpan.SetAttr(obs.Int("emitted", frontier-start))
		return simerr.Interruptedf("simrun: window [%d,%d) interrupted after %d shards (%v)",
			start, end, frontier-start, ctx.Err())
	}
	winSpan.SetAttr(obs.Int("emitted", end-start))
	return nil
}
