package simrun

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"qisim/internal/obs"
	"qisim/internal/simerr"
)

// Tally is the locked cross-shard event counter of the parallel engine.
//
// The Guard is single-goroutine by contract (see its doc comment): its
// ContinueBinomial check mutates unguarded fields, so it must never be
// shared across workers. The pool instead aggregates per-shard (shots,
// events) pairs into a Tally, whose methods are safe for concurrent use,
// and the engine runs the convergence test over the tally's committed
// totals at shard boundaries.
type Tally struct {
	mu     sync.Mutex
	shots  int
	events int
	// noConverge latches when a consumer reports a negative event count,
	// meaning "this estimator has no binomial convergence statistic".
	noConverge bool
}

// Add accumulates one shard's completed shots and observed events. A
// negative event count disables convergence for the whole run (the
// estimator exposes no binomial statistic).
func (t *Tally) Add(shots, events int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shots += shots
	if events < 0 {
		t.noConverge = true
		return
	}
	t.events += events
}

// Snapshot returns the committed totals so far.
func (t *Tally) Snapshot() (shots, events int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shots, t.events
}

// State returns the committed totals plus the no-convergence latch — the
// triple a checkpoint must capture to restore the tally exactly.
func (t *Tally) State() (shots, events int, noConverge bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shots, t.events, t.noConverge
}

// Converged reports whether the committed totals satisfy the binomial
// convergence guard: at least minShots shots and a relative standard error
// of the event rate at or below target. Always false when target <= 0 or
// when any consumer disabled convergence with a negative event count.
func (t *Tally) Converged(target float64, minShots int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if target <= 0 || t.noConverge || t.shots < minShots {
		return false
	}
	return binomialConverged(t.events, t.shots, target)
}

// ShardTask is the per-shard execution context handed to a ShardFunc. It
// bundles the shard geometry, the shard's private deterministic RNG stream,
// and the cancellation poll. A ShardTask is owned by exactly one worker
// goroutine and must not escape the ShardFunc invocation.
type ShardTask struct {
	Shard
	// RNG is the shard's private stream, seeded with Shard.Seed. Every
	// random draw of the shard MUST come from this stream (and only this
	// stream) or cross-worker determinism is lost.
	RNG *rand.Rand

	ctx         context.Context
	every       int
	interrupted bool
}

// rngPool recycles the ~5 KiB Go-1 source state behind each shard's private
// stream. Rand.Seed fully reinitializes the source and resets the Rand's
// cached read state, so a pooled, re-seeded Rand emits a bitstream identical
// to a fresh rand.New(rand.NewSource(seed)) — shard results are unchanged.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

// taskPool recycles ShardTask headers; tasks must not escape the ShardFunc
// invocation (see ShardTask), so the engine can reclaim them immediately.
var taskPool = sync.Pool{New: func() any { return new(ShardTask) }}

// NewShardTask builds a standalone shard task for tests and benchmarks that
// drive a ShardFunc outside the engine. A checkEvery <= 0 defaults to the
// engine's 256-shot cancellation poll interval.
func NewShardTask(ctx context.Context, sh Shard, checkEvery int) *ShardTask {
	if ctx == nil {
		ctx = context.Background()
	}
	if checkEvery <= 0 {
		checkEvery = 256
	}
	return &ShardTask{
		Shard: sh,
		RNG:   rand.New(rand.NewSource(sh.Seed)),
		ctx:   ctx,
		every: checkEvery,
	}
}

// Continue reports whether local shot i (0-based) should run: false once the
// shard's N shots are done or — polled every CheckEvery shots — the context
// is cancelled. An interrupted shard is discarded wholesale by the engine
// (the merged result only ever contains complete shards), so consumers do
// not need to flag partial shard state themselves.
func (t *ShardTask) Continue(i int) bool {
	if t.interrupted || i >= t.N {
		return false
	}
	if i > 0 && i%t.every == 0 && t.ctx.Err() != nil {
		t.interrupted = true
		return false
	}
	return true
}

// Interrupted reports whether the shard loop was cut short by cancellation.
func (t *ShardTask) Interrupted() bool { return t.interrupted }

// Context returns the shard's context: it carries the engine's cancellation
// signal plus — when tracing is enabled — the shard's span, so a ShardFunc
// can open child spans with obs.StartSpan (the scalability sweep opens one
// per design point). The context must not outlive the ShardFunc invocation.
func (t *ShardTask) Context() context.Context { return t.ctx }

// GlobalShot maps a local loop index to the run-global shot index.
func (t *ShardTask) GlobalShot(i int) int { return t.Start + i }

// ShardFunc runs one shard to completion and returns the shard's partial
// result plus its event count for the convergence guard (negative = this
// estimator has no binomial statistic). The function must be pure given
// (Shard, RNG): no shared mutable state, no RNG draws outside t.RNG.
type ShardFunc[R any] func(t *ShardTask) (R, int, error)

// MergeFunc folds one shard's partial result into the accumulator. The
// engine calls it in strictly ascending shard order, so non-commutative
// accumulation (floating-point sums, appends) is still deterministic.
type MergeFunc[R any] func(dst *R, src R)

// shardRecord holds one shard's outcome until the deterministic in-order
// merge.
type shardRecord[R any] struct {
	res    R
	events int
	done   bool
	err    error
}

// RunSharded is the parallel Monte-Carlo shot engine. It partitions the
// requested budget into fixed-size shards (Options.ShardSize, default 512
// shots), derives an independent deterministic RNG stream per shard from the
// top-level seed (ShardSeed), executes the shards on Options.Workers worker
// goroutines (default GOMAXPROCS; 1 = serial reference, no goroutines), and
// merges shard results in shard order.
//
// Determinism contract: the merged result is always the in-order fold of a
// PREFIX of the shard sequence, and each shard's contribution depends only
// on (seed, shard index). Consequences:
//
//   - The full-budget result is bit-identical for every worker count.
//   - Convergence early-stop is decided from the cross-shard Tally over the
//     committed contiguous prefix, at shard boundaries only — so the
//     converged prefix length, and therefore the converged result, is also
//     bit-identical for every worker count. Shards that finish beyond the
//     converged prefix are discarded, never merged.
//   - Cancellation (the one intentionally non-deterministic stop, as with
//     wall-clock deadlines before this engine) keeps the longest contiguous
//     prefix of completed shards: the partial result is flagged Truncated
//     and is itself reproducible — rerunning the same prefix of shards
//     regenerates it bit-exactly.
//
// The returned Status counts shots over the merged prefix (Completed is
// always a whole number of shards).
//
// Checkpoint/resume: opt.Checkpoint observes every commit (and a Final
// flush) with the merged-so-far accumulator; opt.Resume skips an already-
// committed prefix and restores the accumulator, making a crash-resumed run
// bit-identical to a cold one — the accumulator is folded in strictly
// ascending shard order in both cases, so the floating-point/merge sequence
// is the same sequence either way.
func RunSharded[R any](ctx context.Context, shots int, seed int64, opt Options,
	run ShardFunc[R], merge MergeFunc[R]) (R, Status, error) {

	var zero R
	if err := opt.Validate(shots); err != nil {
		return zero, Status{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.CheckEvery == 0 {
		opt.CheckEvery = 256
	}
	if opt.ShardSize == 0 {
		opt.ShardSize = DefaultShardSize
	}
	if opt.TargetRelStdErr > 0 && opt.MinShots == 0 {
		opt.MinShots = 1000
	}
	budget := shots
	if opt.MaxShots > 0 && opt.MaxShots < budget {
		budget = opt.MaxShots
	}
	shards := shardPlan(budget, opt.ShardSize, seed)
	nShards := len(shards)

	// Tracing: one root span for the whole run, per-shard spans under it,
	// merge/checkpoint spans on the commit path. The tracer consumes no
	// random numbers and never blocks (bounded buffer, counted drops), so
	// results are bit-identical with tracing on or off.
	ctx, runSpan := obs.StartSpan(ctx, "mc.run",
		obs.Int("shots", budget), obs.Int("shards", nShards),
		obs.Int("shard_size", opt.ShardSize))
	defer runSpan.End()

	// Restore a committed prefix. The geometry is re-validated so a snapshot
	// taken under a different budget or shard size (or simply corrupted) can
	// never be silently replayed into a double-count.
	var out R
	start := 0
	var tally Tally
	if opt.Resume != nil {
		r := opt.Resume
		_, resumeSpan := obs.StartSpan(ctx, "resume",
			obs.Int("shards", r.Shards), obs.Int("resumed_shots", r.Shots))
		if r.Shards < 0 || r.Shards > nShards {
			resumeSpan.End()
			return zero, Status{}, simerr.Invalidf(
				"simrun: resume prefix of %d shards outside the %d-shard plan", r.Shards, nShards)
		}
		if want := shardShots(budget, opt.ShardSize, r.Shards); r.Shots != want {
			resumeSpan.End()
			return zero, Status{}, simerr.Invalidf(
				"simrun: resume prefix covers %d shots, but %d shards of %d-shot budget at shard size %d cover %d",
				r.Shots, r.Shards, budget, opt.ShardSize, want)
		}
		if len(r.StateJSON) > 0 {
			if err := json.Unmarshal(r.StateJSON, &out); err != nil {
				resumeSpan.End()
				return zero, Status{}, simerr.Invalidf("simrun: resume state does not decode into %T: %v", out, err)
			}
		} else if r.Shards > 0 {
			resumeSpan.End()
			return zero, Status{}, simerr.Invalidf(
				"simrun: resume prefix of %d shards has no accumulator state", r.Shards)
		}
		start = r.Shards
		if r.NoConverge {
			tally.Add(r.Shots, -1)
		} else {
			tally.Add(r.Shots, r.Events)
		}
		if opt.Progress != nil {
			opt.Progress(r.Shots, budget)
		}
		resumeSpan.End()
		finish := func(reason string) (R, Status, error) {
			st := Status{
				Requested:  budget,
				Completed:  r.Shots,
				Converged:  reason == StopConverged,
				StopReason: reason,
			}
			if opt.Checkpoint != nil {
				_, ckSpan := obs.StartSpan(ctx, "checkpoint.save",
					obs.Int("shards", start), obs.Bool("final", true))
				sh, ev, nc := tally.State()
				opt.Checkpoint(CheckpointState{Shards: start, Shots: sh, Requested: budget,
					Events: ev, NoConverge: nc, State: out, Final: true})
				ckSpan.End()
			}
			runSpan.SetAttr(obs.String("stop", reason), obs.Int("completed", r.Shots))
			return out, st, nil
		}
		// A snapshot of the full plan, or one whose prefix already satisfies
		// the convergence guard, is a finished run: return it as-is (the
		// bytes a cold run would have produced) without spending a shot.
		if r.Shards == nShards {
			return finish(StopCompleted)
		}
		if tally.Converged(opt.TargetRelStdErr, opt.MinShots) {
			return finish(StopConverged)
		}
	}

	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards-start {
		workers = nShards - start
	}
	runSpan.SetAttr(obs.Int("workers", workers))

	recs := make([]shardRecord[R], nShards)
	var (
		mu       sync.Mutex
		frontier = start   // next shard index awaiting commit
		stopAt   = nShards // shards >= stopAt are never merged
		reason   string
	)
	next := int64(start) // atomic shard issuance counter

	// commit advances the contiguous committed prefix over freshly completed
	// shards, folding each one into the accumulator in strictly ascending
	// shard order, feeding the cross-shard tally and running the convergence
	// test at each shard boundary. Called with mu held.
	//
	// Reentrancy: Progress, Checkpoint and the tracer all run under mu here
	// (see the Options contract) — a slow callback slows commits but can
	// never deadlock the engine (workers finish their current shard and
	// queue on mu; nothing the engine holds is required by the callbacks)
	// and can never reorder the merge, which happened before the callback
	// fired. The tracer's own lock is leaf-level: it is never held while
	// acquiring mu.
	commit := func() {
		if frontier >= stopAt || !recs[frontier].done {
			return // nothing to fold: the frontier shard is still running
		}
		mergeCtx, mergeSpan := obs.StartSpan(ctx, "merge", obs.Int("from", frontier))
		for frontier < stopAt && recs[frontier].done {
			tally.Add(shards[frontier].N, recs[frontier].events)
			merge(&out, recs[frontier].res)
			recs[frontier] = shardRecord[R]{done: true} // release the shard's result
			frontier++
			if tally.Converged(opt.TargetRelStdErr, opt.MinShots) {
				stopAt = frontier
				reason = StopConverged
				break
			}
		}
		mergeSpan.SetAttr(obs.Int("to", frontier))
		// Observational only: both callbacks see the committed prefix,
		// never uncommitted shards, so they cannot perturb determinism.
		if opt.Progress != nil {
			opt.Progress(shardShots(budget, opt.ShardSize, frontier), budget)
		}
		if opt.Checkpoint != nil {
			_, ckSpan := obs.StartSpan(mergeCtx, "checkpoint.save", obs.Int("shards", frontier))
			sh, ev, nc := tally.State()
			opt.Checkpoint(CheckpointState{Shards: frontier, Shots: sh, Requested: budget,
				Events: ev, NoConverge: nc, State: out})
			ckSpan.End()
		}
		mergeSpan.End()
	}

	worker := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= nShards {
				return
			}
			mu.Lock()
			sa := stopAt
			mu.Unlock()
			if i >= sa {
				return
			}
			// The shard span's context doubles as the shard's cancellation
			// context: context.WithValue preserves Done(), so Continue's
			// polling is unchanged whether tracing is on or off.
			shardCtx, shardSpan := obs.StartSpan(ctx, "shard",
				obs.Int("shard", i), obs.Int("shots", shards[i].N))
			rng := rngPool.Get().(*rand.Rand)
			seedShardRNG(rng, shards[i].Seed)
			t := taskPool.Get().(*ShardTask)
			*t = ShardTask{
				Shard: shards[i],
				RNG:   rng,
				ctx:   shardCtx,
				every: opt.CheckEvery,
			}
			res, events, err := run(t)
			interrupted := t.interrupted
			*t = ShardTask{}
			taskPool.Put(t)
			rngPool.Put(rng)
			if interrupted {
				shardSpan.SetAttr(obs.Bool("interrupted", true))
			} else if err == nil && events >= 0 {
				shardSpan.SetAttr(obs.Int("events", events))
			}
			shardSpan.End()
			mu.Lock()
			if err != nil {
				recs[i].err = err
			} else if !interrupted {
				recs[i] = shardRecord[R]{res: res, events: events, done: true}
				commit()
			}
			mu.Unlock()
		}
	}

	if workers <= 1 {
		// Serial reference: same issuance, commit and merge logic, executed
		// inline — Workers=1 is the semantics the pool must reproduce.
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	// Surface the first shard error in shard order (deterministic pick).
	for i := range recs {
		if recs[i].err != nil {
			return zero, Status{}, recs[i].err
		}
	}

	// Decide the stop reason; the accumulator already holds exactly the
	// committed prefix [0, frontier) — when convergence fired, the commit
	// loop stopped at the converged boundary, so frontier == stopAt.
	switch {
	case reason == StopConverged:
	case frontier >= nShards:
		reason = StopCompleted
	case ctx.Err() == context.DeadlineExceeded:
		reason = StopDeadline
	default:
		reason = StopCanceled
	}

	completed := shardShots(budget, opt.ShardSize, frontier)
	if opt.Checkpoint != nil {
		// The Final flush: whatever stopped the run (SIGINT, deadline,
		// convergence, completion), the last committed prefix is persisted
		// before the caller sees the status.
		_, ckSpan := obs.StartSpan(ctx, "checkpoint.save",
			obs.Int("shards", frontier), obs.Bool("final", true))
		sh, ev, nc := tally.State()
		opt.Checkpoint(CheckpointState{Shards: frontier, Shots: sh, Requested: budget,
			Events: ev, NoConverge: nc, State: out, Final: true})
		ckSpan.End()
	}
	runSpan.SetAttr(obs.String("stop", reason), obs.Int("completed", completed))
	return out, Status{
		Requested:  budget,
		Completed:  completed,
		Truncated:  reason == StopCanceled || reason == StopDeadline,
		Converged:  reason == StopConverged,
		StopReason: reason,
	}, nil
}
