package simrun

import (
	"context"
	"sync"
	"testing"
)

// TestRunShardedProgressReportsCommittedPrefix: the Progress hook must see a
// non-decreasing sequence of committed shot counts ending at the full
// budget, for both the serial and the parallel path, without changing the
// merged result.
func TestRunShardedProgressReportsCommittedPrefix(t *testing.T) {
	const shots, shard = 1000, 64
	run := func(workers int) (int, []int) {
		var mu sync.Mutex
		var seen []int
		sum, st, err := RunSharded(context.Background(), shots, 42,
			Options{Workers: workers, ShardSize: shard, Progress: func(done, req int) {
				if req != shots {
					t.Errorf("progress requested=%d, want %d", req, shots)
				}
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			}},
			func(task *ShardTask) (int, int, error) {
				n := 0
				for i := 0; task.Continue(i); i++ {
					if task.RNG.Float64() < 0.5 {
						n++
					}
				}
				return n, -1, nil
			},
			func(dst *int, src int) { *dst += src })
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != shots {
			t.Fatalf("workers=%d completed %d/%d", workers, st.Completed, shots)
		}
		return sum, seen
	}

	serialSum, serialSeen := run(1)
	parSum, parSeen := run(4)
	if serialSum != parSum {
		t.Fatalf("progress hook perturbed determinism: serial %d vs parallel %d", serialSum, parSum)
	}
	for _, seen := range [][]int{serialSeen, parSeen} {
		if len(seen) == 0 {
			t.Fatal("progress hook never called")
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				t.Fatalf("progress went backwards: %v", seen)
			}
		}
		if last := seen[len(seen)-1]; last != shots {
			t.Fatalf("final progress %d, want %d", last, shots)
		}
	}
}
