// Package simrun is the robustness layer every long-running QIsim entry
// point flows through. It provides context-aware run options (deadline,
// shot budget, convergence targets, check interval) and a shot-loop Guard
// that turns cancellation into *partial, flagged* results instead of thrown
// away work: a truncated Monte-Carlo run reports the shots it completed,
// the best-so-far estimate, and Truncated=true, never a panic or a hang.
//
// The Guard also implements the MC convergence guard: an early exit when the
// binomial standard error of the estimate falls below a relative target,
// gated by a minimum-shot floor so a lucky early streak cannot terminate a
// sweep prematurely.
//
// Determinism contract: the Guard never consumes random numbers, so two runs
// with the same seed and options produce bit-identical results (possibly
// differing only in how many shots they complete when wall-clock deadlines
// fire — deadline truncation is the one intentionally non-deterministic
// stop).
package simrun

import (
	"context"
	"math"

	"qisim/internal/simerr"
)

// Stop reasons recorded in Status.StopReason.
const (
	StopCompleted = "completed"
	StopCanceled  = "canceled"
	StopDeadline  = "deadline"
	StopConverged = "converged"
)

// DefaultShardSize is the parallel engine's default shots-per-shard. It is
// the granularity of both parallelism and the cross-shard convergence check:
// small enough that short runs still fan out, large enough that per-shard
// setup (RNG construction, scratch buffers) amortises.
const DefaultShardSize = 512

// Options configure a context-aware simulation run.
type Options struct {
	// MaxShots caps the shot budget below the caller's request (0 = no cap).
	MaxShots int
	// MinShots is the convergence floor: the guard never stops on
	// convergence before this many shots (default 1000 when a convergence
	// target is set).
	MinShots int
	// TargetRelStdErr enables the convergence guard: stop once the relative
	// standard error of the binomial estimate drops below this (0 =
	// disabled, run the full budget).
	TargetRelStdErr float64
	// CheckEvery is the cancellation/convergence polling interval in shots
	// (default 256). Smaller = more responsive, larger = cheaper.
	CheckEvery int
	// Workers is the parallel engine's worker-goroutine count: 0 = one per
	// GOMAXPROCS, 1 = serial reference execution (no goroutines spawned).
	// The merged result is bit-identical for every worker count (see
	// RunSharded's determinism contract).
	Workers int
	// ShardSize is the shots-per-shard partition of the parallel engine
	// (default DefaultShardSize). It fixes the RNG stream layout: two runs
	// agree bit-exactly only when seed AND ShardSize agree.
	ShardSize int
	// Progress, when non-nil, is invoked by the parallel engine each time
	// the committed in-order shard prefix advances, with the shots merged so
	// far and the effective budget. It is strictly observational — it sees
	// only already-committed state and must not block: qisimd uses it to
	// publish live partial-progress for GET /v1/jobs/{id}. Called from
	// worker goroutines under the engine's commit lock; keep it O(1) (e.g.
	// two atomic stores).
	//
	// Reentrancy contract (shared with Checkpoint and the tracer's
	// merge/checkpoint spans, which fire at the same commit point): the
	// callback runs while the engine holds its commit mutex, AFTER the
	// shard fold for this commit has fully happened. A slow or even
	// permanently blocking callback therefore (a) stalls further commits —
	// workers finish their in-flight shard and then queue on the mutex —
	// but (b) can never deadlock the engine, because the engine acquires
	// nothing else while calling out and the callback is handed plain
	// values, and (c) can never reorder or skew the merge, whose in-order
	// fold completed before the callback observed it. The callback MUST NOT
	// call back into the same run's engine (that would be a self-deadlock
	// on the commit mutex); starting spans on the run's tracer is safe (the
	// tracer lock is leaf-level). TestRunShardedBlockingCallbacksCannotSkewMerge
	// pins this contract.
	Progress func(completed, requested int)
	// Checkpoint, when non-nil, is invoked by the parallel engine at shard-
	// boundary commits (the same commit point Progress piggybacks on) with
	// the committed-prefix state, and once more with Final=true when the run
	// stops for any reason. The handed-out State is the live accumulator:
	// serialize it synchronously inside the callback and do not retain it.
	// Called under the engine's commit lock — a slow callback (file I/O)
	// throttles commits, not correctness; see the reentrancy contract on
	// Progress. See internal/checkpoint.Saver for the durable-snapshot
	// implementation.
	Checkpoint func(CheckpointState)
	// Resume, when non-nil, seeds the engine with a previously committed
	// shard prefix (produced by a Checkpoint callback): the engine skips the
	// first Resume.Shards shards, pre-seeds the convergence tally, and
	// starts the accumulator from Resume.StateJSON. Because shard RNG
	// streams derive purely from (seed, shard index), the resumed run is
	// bit-identical to an uninterrupted one. The engine re-validates the
	// prefix geometry against the current budget and shard size and rejects
	// inconsistent snapshots with a typed error — it never double-counts or
	// silently replays shards.
	Resume *ResumeState
}

// CheckpointState is the committed-prefix state handed to the Checkpoint
// callback at each shard-boundary commit.
type CheckpointState struct {
	// Shards is the committed contiguous shard-prefix length.
	Shards int
	// Shots is the number of shots covered by the committed prefix.
	Shots int
	// Requested is the effective shot budget (after MaxShots capping).
	Requested int
	// Events is the committed binomial event count feeding the convergence
	// guard (0 when the estimator disabled convergence — see NoConverge).
	Events int
	// NoConverge is true when the estimator exposes no binomial statistic
	// (shard functions returned negative event counts).
	NoConverge bool
	// State is the accumulator merged over the committed prefix. It is the
	// engine's live value: serialize synchronously, do not retain.
	State any
	// Final is true for the one callback issued after the run stops
	// (completed, converged, canceled or deadline); the flush that makes
	// SIGINT-then-resume lossless.
	Final bool
}

// ResumeState seeds RunSharded with a previously committed prefix.
type ResumeState struct {
	// Shards is the committed shard-prefix length to skip.
	Shards int
	// Shots is the number of shots the prefix covered; must equal the shot
	// count of the first Shards shards under the current budget/ShardSize
	// (re-validated by the engine).
	Shots int
	// Events is the committed binomial event count.
	Events int
	// NoConverge restores the tally's "no binomial statistic" latch.
	NoConverge bool
	// StateJSON is the serialized accumulator (the Checkpoint callback's
	// State marshaled with encoding/json); it is unmarshaled into the shard
	// result type R. Empty means the zero accumulator (only valid with
	// Shards == 0).
	StateJSON []byte
}

// Validate checks the options for internal consistency against a requested
// shot budget.
func (o Options) Validate(requested int) error {
	if requested <= 0 {
		return simerr.Invalidf("simrun: requested shots must be positive, got %d", requested)
	}
	if o.MaxShots < 0 || o.MinShots < 0 || o.CheckEvery < 0 {
		return simerr.Invalidf("simrun: negative option (MaxShots %d, MinShots %d, CheckEvery %d)",
			o.MaxShots, o.MinShots, o.CheckEvery)
	}
	if o.Workers < 0 || o.ShardSize < 0 {
		return simerr.Invalidf("simrun: negative option (Workers %d, ShardSize %d)",
			o.Workers, o.ShardSize)
	}
	if o.TargetRelStdErr < 0 || math.IsNaN(o.TargetRelStdErr) {
		return simerr.Invalidf("simrun: TargetRelStdErr must be >= 0, got %v", o.TargetRelStdErr)
	}
	budget := requested
	if o.MaxShots > 0 && o.MaxShots < budget {
		budget = o.MaxShots
	}
	if o.MinShots > budget {
		return simerr.Budgetf("simrun: convergence floor MinShots=%d exceeds shot budget %d",
			o.MinShots, budget)
	}
	return nil
}

// Status is the flagged outcome of a guarded run, embedded in every
// context-aware result type.
type Status struct {
	// Requested is the shot budget asked for (after MaxShots capping).
	Requested int `json:"requested"`
	// Completed is the number of shots actually finished.
	Completed int `json:"completed"`
	// Truncated is true when the run stopped early on cancellation or
	// deadline: the result is a best-so-far partial estimate.
	Truncated bool `json:"truncated"`
	// Converged is true when the run stopped early because the convergence
	// guard was satisfied (the result is statistically complete).
	Converged bool `json:"converged"`
	// StopReason is one of the Stop* constants.
	StopReason string `json:"stop_reason"`
}

// Err converts a truncated status into a typed ErrInterrupted (nil
// otherwise) — for callers that prefer error control flow over flags.
func (s Status) Err() error {
	if !s.Truncated {
		return nil
	}
	return simerr.Interruptedf("simrun: run truncated after %d/%d shots (%s)",
		s.Completed, s.Requested, s.StopReason)
}

// Guard gates a shot loop on budget, cancellation and convergence. Use:
//
//	g, err := simrun.NewGuard(ctx, shots, opt)
//	if err != nil { return ..., err }
//	for s := 0; g.ContinueBinomial(s, failures); s++ { ... }
//	res.Status = g.Status(...)
//
// Concurrency contract: a Guard serves exactly ONE shot loop on ONE
// goroutine. Continue/ContinueBinomial/Status mutate unguarded fields, so a
// Guard must never be shared across workers — under `go test -race` a shared
// Guard is a reported data race, and a racy events tally would make the
// convergence check depend on worker scheduling, breaking the determinism
// contract. The parallel engine (RunSharded) therefore never hands a Guard
// to its workers: each shard loop polls its own ShardTask and the pool
// aggregates per-shard event counts through the locked Tally API, running
// the convergence test only over the committed in-order shard prefix.
type Guard struct {
	ctx        context.Context
	opt        Options
	requested  int
	stopReason string
	completed  int
}

// NewGuard validates the options and builds a guard over ctx. A nil ctx is
// treated as context.Background() (pure budget/convergence gating).
func NewGuard(ctx context.Context, requested int, opt Options) (*Guard, error) {
	if err := opt.Validate(requested); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.CheckEvery == 0 {
		opt.CheckEvery = 256
	}
	if opt.TargetRelStdErr > 0 && opt.MinShots == 0 {
		opt.MinShots = 1000
	}
	if opt.MaxShots > 0 && opt.MaxShots < requested {
		requested = opt.MaxShots
	}
	return &Guard{ctx: ctx, opt: opt, requested: requested}, nil
}

// Budget returns the effective shot budget after MaxShots capping.
func (g *Guard) Budget() int { return g.requested }

// Continue reports whether the shot loop should run shot number `done`
// (0-based): it returns false once the budget is exhausted or — polled every
// CheckEvery shots — the context is done.
func (g *Guard) Continue(done int) bool {
	return g.ContinueBinomial(done, -1)
}

// ContinueBinomial is Continue plus the convergence guard for binomial
// estimators: events is the running success/failure count whose rate
// events/done is being estimated (pass a negative value to disable the
// convergence check for this call).
func (g *Guard) ContinueBinomial(done, events int) bool {
	g.completed = done
	if g.stopReason != "" {
		return false
	}
	if done >= g.requested {
		g.stopReason = StopCompleted
		return false
	}
	if done == 0 || done%g.opt.CheckEvery != 0 {
		return true
	}
	if err := g.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			g.stopReason = StopDeadline
		} else {
			g.stopReason = StopCanceled
		}
		return false
	}
	if events >= 0 && g.opt.TargetRelStdErr > 0 && done >= g.opt.MinShots &&
		binomialConverged(events, done, g.opt.TargetRelStdErr) {
		g.stopReason = StopConverged
		return false
	}
	return true
}

// binomialConverged reports whether the relative standard error of the rate
// events/done is below target. A zero-event run never converges (its
// relative error is undefined and the true rate may simply be below the
// resolution of the budget so far).
func binomialConverged(events, done int, target float64) bool {
	if events <= 0 || events >= done {
		return false
	}
	p := float64(events) / float64(done)
	se := math.Sqrt(p * (1 - p) / float64(done))
	return se/p <= target
}

// Status finalises the guard after the loop exits, recording how many shots
// completed. Call exactly once, with the loop counter's final value.
func (g *Guard) Status(completed int) Status {
	reason := g.stopReason
	if reason == "" {
		// Loop exited on its own (e.g. caller break) — treat as completed
		// if the budget was met, canceled otherwise.
		if completed >= g.requested {
			reason = StopCompleted
		} else {
			reason = StopCanceled
		}
	}
	return Status{
		Requested:  g.requested,
		Completed:  completed,
		Truncated:  reason == StopCanceled || reason == StopDeadline,
		Converged:  reason == StopConverged,
		StopReason: reason,
	}
}
