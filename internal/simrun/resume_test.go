package simrun

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"qisim/internal/simerr"
)

// shardBody is the reference shard function used across the resume tests: a
// deterministic pseudo-MC with a float accumulator so merge order matters.
func shardBody(t *ShardTask) (float64, int, error) {
	var sum float64
	events := 0
	for i := 0; t.Continue(i); i++ {
		v := t.RNG.Float64()
		sum += v * float64(t.GlobalShot(i)%7+1)
		if v < 0.1 {
			events++
		}
	}
	return sum, events, nil
}

func mergeFloat(dst *float64, src float64) { *dst += src }

// runCold runs the reference body to completion and returns (result, status).
func runCold(t *testing.T, shots int, opt Options) (float64, Status) {
	t.Helper()
	res, st, err := RunSharded(context.Background(), shots, 42, opt, shardBody, mergeFloat)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	return res, st
}

// TestResumeBitIdentical kills the run at every shard boundary (via a
// checkpoint hook that captures state, then a fresh run resumed from it) and
// asserts the resumed result is bit-identical to the cold run for several
// worker counts.
func TestResumeBitIdentical(t *testing.T) {
	const shots = 1000
	base := Options{ShardSize: 64, Workers: 1}
	coldRes, coldSt := runCold(t, shots, base)

	// Capture the state at every commit of a serial run.
	var states []CheckpointState
	capOpt := base
	capOpt.Checkpoint = func(st CheckpointState) {
		if !st.Final {
			// Deep-copy: State is the live accumulator (float64 is a value,
			// but marshal anyway to mimic real persistence).
			b, err := json.Marshal(st.State)
			if err != nil {
				t.Errorf("marshal state: %v", err)
			}
			st.State = nil
			states = append(states, st)
			states[len(states)-1].State = json.RawMessage(b)
		}
	}
	runCold(t, shots, capOpt)
	if len(states) == 0 {
		t.Fatal("no checkpoint states captured")
	}

	for _, workers := range []int{1, 4, 7} {
		for _, st := range states {
			opt := Options{ShardSize: 64, Workers: workers, Resume: &ResumeState{
				Shards:     st.Shards,
				Shots:      st.Shots,
				Events:     st.Events,
				NoConverge: st.NoConverge,
				StateJSON:  st.State.(json.RawMessage),
			}}
			res, rst, err := RunSharded(context.Background(), shots, 42, opt, shardBody, mergeFloat)
			if err != nil {
				t.Fatalf("resume from %d shards (workers %d): %v", st.Shards, workers, err)
			}
			if res != coldRes {
				t.Fatalf("resume from %d shards (workers %d): result %v != cold %v",
					st.Shards, workers, res, coldRes)
			}
			if !reflect.DeepEqual(rst, coldSt) {
				t.Fatalf("resume from %d shards (workers %d): status %+v != cold %+v",
					st.Shards, workers, rst, coldSt)
			}
		}
	}
}

// TestResumeConvergedPrefix checks that resuming a run whose prefix already
// satisfies the convergence guard stops immediately with the identical
// converged result, and that resume from a complete snapshot returns the
// full result without spending shots.
func TestResumeConvergedPrefix(t *testing.T) {
	const shots = 4000
	opt := Options{ShardSize: 128, Workers: 1, TargetRelStdErr: 0.2, MinShots: 256, CheckEvery: 32}
	coldRes, coldSt := runCold(t, shots, opt)
	if !coldSt.Converged {
		t.Fatalf("expected converged cold run, got %+v", coldSt)
	}

	// Capture the final (converged) state.
	var final *CheckpointState
	capOpt := opt
	capOpt.Checkpoint = func(st CheckpointState) {
		if st.Final {
			b, _ := json.Marshal(st.State)
			c := st
			c.State = b
			final = &c
		}
	}
	runCold(t, shots, capOpt)
	if final == nil {
		t.Fatal("no final checkpoint state")
	}

	shardsRun := 0
	resOpt := opt
	resOpt.Resume = &ResumeState{
		Shards: final.Shards, Shots: final.Shots, Events: final.Events,
		NoConverge: final.NoConverge, StateJSON: final.State.([]byte),
	}
	res, st, err := RunSharded(context.Background(), shots, 42, resOpt,
		func(tk *ShardTask) (float64, int, error) {
			shardsRun++
			return shardBody(tk)
		}, mergeFloat)
	if err != nil {
		t.Fatalf("resume converged: %v", err)
	}
	if shardsRun != 0 {
		t.Fatalf("resume of a converged prefix ran %d shards, want 0", shardsRun)
	}
	if res != coldRes || st.Completed != coldSt.Completed || !st.Converged {
		t.Fatalf("resume converged: got (%v, %+v), want (%v, %+v)", res, st, coldRes, coldSt)
	}
}

// TestResumeMidShardKill cancels mid-shard (a torn shard is discarded, only
// the committed prefix survives), then resumes and checks bit-identity.
func TestResumeMidShardKill(t *testing.T) {
	const shots = 960
	base := Options{ShardSize: 64, Workers: 1}
	coldRes, _ := runCold(t, shots, base)

	ctx, cancel := context.WithCancel(context.Background())
	var last CheckpointState
	opt := base
	opt.CheckEvery = 1
	opt.Checkpoint = func(st CheckpointState) {
		if st.Final {
			return
		}
		b, _ := json.Marshal(st.State)
		c := st
		c.State = b
		last = c
		if st.Shards == 5 {
			cancel() // kill mid-run: the NEXT shard will be torn and discarded
		}
	}
	_, st, err := RunSharded(ctx, shots, 42, opt, shardBody, mergeFloat)
	if err != nil {
		t.Fatalf("killed run: %v", err)
	}
	if !st.Truncated {
		t.Fatalf("killed run not truncated: %+v", st)
	}
	if last.Shards == 0 {
		t.Fatal("no committed prefix before the kill")
	}

	res, rst, err := RunSharded(context.Background(), shots, 42, Options{
		ShardSize: 64, Workers: 4,
		Resume: &ResumeState{Shards: last.Shards, Shots: last.Shots, Events: last.Events,
			NoConverge: last.NoConverge, StateJSON: last.State.([]byte)},
	}, shardBody, mergeFloat)
	if err != nil {
		t.Fatalf("resume after mid-shard kill: %v", err)
	}
	if res != coldRes || rst.Completed != shots {
		t.Fatalf("resume after mid-shard kill: got (%v, %+v), want %v complete", res, rst, coldRes)
	}
}

// TestResumeRejectsInconsistentPrefix exercises the typed-rejection paths:
// geometry mismatch, missing state, undecodable state, out-of-plan prefix.
func TestResumeRejectsInconsistentPrefix(t *testing.T) {
	run := func(r *ResumeState) error {
		_, _, err := RunSharded(context.Background(), 1000, 42,
			Options{ShardSize: 64, Resume: r}, shardBody, mergeFloat)
		return err
	}
	cases := []struct {
		name string
		r    *ResumeState
	}{
		{"shots-mismatch", &ResumeState{Shards: 3, Shots: 100, StateJSON: []byte("1.5")}},
		{"negative-shards", &ResumeState{Shards: -1, Shots: 0}},
		{"beyond-plan", &ResumeState{Shards: 99, Shots: 99 * 64}},
		{"missing-state", &ResumeState{Shards: 2, Shots: 128}},
		{"undecodable-state", &ResumeState{Shards: 2, Shots: 128, StateJSON: []byte(`{"not":"a float"}`)}},
	}
	for _, tc := range cases {
		err := run(tc.r)
		if !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("%s: want ErrInvalidConfig, got %v", tc.name, err)
		}
	}
}

// TestCheckpointFinalFlush asserts the Final callback fires exactly once per
// run, for completed, canceled and converged stops alike.
func TestCheckpointFinalFlush(t *testing.T) {
	count := func(opt Options, ctx context.Context, shots int) int {
		finals := 0
		opt.Checkpoint = func(st CheckpointState) {
			if st.Final {
				finals++
			}
		}
		_, _, err := RunSharded(ctx, shots, 7, opt, shardBody, mergeFloat)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return finals
	}
	if n := count(Options{ShardSize: 64, Workers: 2}, context.Background(), 500); n != 1 {
		t.Errorf("completed run: %d final flushes, want 1", n)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if n := count(Options{ShardSize: 64, CheckEvery: 1}, canceled, 500); n != 1 {
		t.Errorf("canceled run: %d final flushes, want 1", n)
	}
	if n := count(Options{ShardSize: 64, TargetRelStdErr: 0.3, MinShots: 128}, context.Background(), 4000); n != 1 {
		t.Errorf("converged run: %d final flushes, want 1", n)
	}
}
