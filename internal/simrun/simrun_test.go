package simrun

import (
	"context"
	"errors"
	"testing"

	"qisim/internal/simerr"
)

func TestGuardFullBudget(t *testing.T) {
	g, err := NewGuard(context.Background(), 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; g.Continue(n); n++ {
	}
	st := g.Status(n)
	if n != 1000 || st.Truncated || st.Converged || st.StopReason != StopCompleted {
		t.Fatalf("full budget: n=%d status=%+v", n, st)
	}
	if st.Err() != nil {
		t.Fatalf("completed run must not report an error, got %v", st.Err())
	}
}

func TestGuardCancellationYieldsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g, err := NewGuard(ctx, 1_000_000, Options{CheckEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; g.Continue(n); n++ {
		if n == 5000 {
			cancel()
		}
	}
	st := g.Status(n)
	if !st.Truncated || st.StopReason != StopCanceled {
		t.Fatalf("want truncated/canceled, got %+v", st)
	}
	if st.Completed <= 5000 || st.Completed >= 6000 {
		t.Fatalf("cancellation should stop within one CheckEvery window, completed %d", st.Completed)
	}
	if !errors.Is(st.Err(), simerr.ErrInterrupted) {
		t.Fatalf("truncated status must map to ErrInterrupted, got %v", st.Err())
	}
}

func TestGuardConvergenceEarlyExit(t *testing.T) {
	g, err := NewGuard(nil, 1_000_000, Options{TargetRelStdErr: 0.05, MinShots: 2000, CheckEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated failure rate of 50%: rel-SE = sqrt(0.25/n)/0.5 = 1/sqrt(n),
	// below 0.05 at n = 400 — but the floor holds until 2000.
	n, fails := 0, 0
	for ; g.ContinueBinomial(n, fails); n++ {
		if n%2 == 0 {
			fails++
		}
	}
	st := g.Status(n)
	if !st.Converged || st.StopReason != StopConverged {
		t.Fatalf("want converged, got %+v", st)
	}
	if st.Completed < 2000 {
		t.Fatalf("convergence fired below the MinShots floor: %d", st.Completed)
	}
	if st.Completed > 3000 {
		t.Fatalf("convergence should fire shortly after the floor, got %d", st.Completed)
	}
}

func TestGuardZeroEventsNeverConverges(t *testing.T) {
	g, err := NewGuard(nil, 50_000, Options{TargetRelStdErr: 0.1, MinShots: 100, CheckEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; g.ContinueBinomial(n, 0); n++ {
	}
	if st := g.Status(n); st.Converged || st.Completed != 50_000 {
		t.Fatalf("zero-event run must use the full budget, got %+v", st)
	}
}

func TestGuardMaxShotsCap(t *testing.T) {
	g, err := NewGuard(nil, 10_000, Options{MaxShots: 500})
	if err != nil {
		t.Fatal(err)
	}
	if g.Budget() != 500 {
		t.Fatalf("budget not capped: %d", g.Budget())
	}
	n := 0
	for ; g.Continue(n); n++ {
	}
	if st := g.Status(n); st.Completed != 500 || st.Truncated {
		t.Fatalf("capped run should complete at the cap, got %+v", st)
	}
}

func TestGuardInfeasibleBudget(t *testing.T) {
	_, err := NewGuard(nil, 100, Options{MinShots: 1000})
	if !errors.Is(err, simerr.ErrBudgetInfeasible) {
		t.Fatalf("want ErrBudgetInfeasible, got %v", err)
	}
	_, err = NewGuard(nil, 100, Options{MaxShots: 50, MinShots: 80})
	if !errors.Is(err, simerr.ErrBudgetInfeasible) {
		t.Fatalf("MaxShots cap must participate in feasibility, got %v", err)
	}
}

func TestGuardInvalidOptions(t *testing.T) {
	cases := []struct {
		shots int
		opt   Options
	}{
		{0, Options{}},
		{-5, Options{}},
		{100, Options{MaxShots: -1}},
		{100, Options{TargetRelStdErr: -0.1}},
	}
	for _, c := range cases {
		if _, err := NewGuard(nil, c.shots, c.opt); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Fatalf("shots=%d opt=%+v: want ErrInvalidConfig, got %v", c.shots, c.opt, err)
		}
	}
}

func TestGuardDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done before the loop starts
	g, err := NewGuard(ctx, 1_000_000, Options{CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; g.Continue(n); n++ {
	}
	st := g.Status(n)
	if !st.Truncated {
		t.Fatalf("pre-canceled context must truncate, got %+v", st)
	}
}
