package simrun

import (
	"math/rand"
	"testing"
)

// TestSeedCacheBitstreamIdentical drives the memoized restore path twice per
// seed (miss then hit) and pins every draw kind the consumers use against a
// freshly constructed stream. This is the direct unit guarantee behind the
// engine-level determinism suites.
func TestSeedCacheBitstreamIdentical(t *testing.T) {
	if !seedCacheUsable() {
		t.Skip("seed cache disabled on this runtime; engine falls back to plain Seed")
	}
	r := rand.New(rand.NewSource(3))
	for _, seed := range []int64{5, -11, 0, 1 << 50, 5 /* repeat: cache hit */} {
		seedShardRNG(r, seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 256; i++ {
			if g, w := r.Float64(), want.Float64(); g != w {
				t.Fatalf("seed %d: Float64 draw %d = %v, want %v", seed, i, g, w)
			}
			if g, w := r.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("seed %d: NormFloat64 draw %d = %v, want %v", seed, i, g, w)
			}
			if g, w := r.Intn(97), want.Intn(97); g != w {
				t.Fatalf("seed %d: Intn draw %d = %v, want %v", seed, i, g, w)
			}
		}
	}
}

// TestFastSeedStateMatchesStdlib pins the reimplemented cold-seed fill
// (recovered rngCooked table + shift-add Lehmer step) against the stdlib
// Seed state, field for field, over a seed sweep much wider than the init
// probe. Any divergence here means fastSeedState must be disabled.
func TestFastSeedStateMatchesStdlib(t *testing.T) {
	if !seedCacheUsable() || !fastSeedOK {
		t.Skip("fast seeding disabled on this runtime; engine falls back to plain Seed")
	}
	donor := rand.New(rand.NewSource(1))
	dp := srcState(donor)
	if dp == nil {
		t.Fatal("srcState returned nil for a plain Go-1 source")
	}
	var got rngState
	seeds := []int64{0, 1, -1, 2, 89482311, 1<<31 - 1, 1 << 31, -(1 << 31), 1<<63 - 1, -(1 << 62)}
	for s := int64(0); s < 200; s++ {
		seeds = append(seeds, s*7919-300)
	}
	for _, seed := range seeds {
		donor.Seed(seed)
		fastSeedState(&got, seed)
		if got != *dp {
			t.Fatalf("fastSeedState(%d) diverges from rngSource.Seed", seed)
		}
	}
}
