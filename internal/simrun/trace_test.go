package simrun

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"qisim/internal/obs"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal checkpoint state: %v", err)
	}
	return b
}

// coinShard is the shared test shard func: count RNG draws below 0.5.
func coinShard(task *ShardTask) (int, int, error) {
	n := 0
	for i := 0; task.Continue(i); i++ {
		if task.RNG.Float64() < 0.5 {
			n++
		}
	}
	return n, n, nil
}

func sumMerge(dst *int, src int) { *dst += src }

// TestRunShardedTraceStructure: a traced run must produce a structurally
// valid span tree with one mc.run root, one shard span per shard, merge
// spans on the commit path and checkpoint.save spans (incl. the final
// flush), all nested under the root — and the result must be bit-identical
// to the untraced run.
func TestRunShardedTraceStructure(t *testing.T) {
	const shots, shard = 1000, 64
	nShards := (shots + shard - 1) / shard

	plain, stPlain, err := RunSharded(context.Background(), shots, 42,
		Options{Workers: 4, ShardSize: shard}, coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(obs.TracerConfig{ID: "test-run"})
	ctx := obs.WithTracer(context.Background(), tr)
	ckCalls := 0
	traced, stTraced, err := RunSharded(ctx, shots, 42,
		Options{Workers: 4, ShardSize: shard, Checkpoint: func(CheckpointState) { ckCalls++ }},
		coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	if plain != traced || stPlain != stTraced {
		t.Fatalf("tracing perturbed the run: plain=%d/%+v traced=%d/%+v",
			plain, stPlain, traced, stTraced)
	}

	trace := tr.Snapshot()
	if err := trace.Check(); err != nil {
		t.Fatalf("trace structurally invalid: %v", err)
	}
	root, ok := trace.Find("mc.run")
	if !ok {
		t.Fatal("no mc.run root span")
	}
	if root.Parent != 0 {
		t.Fatalf("mc.run has parent %d, want root", root.Parent)
	}
	if got := root.Attr("stop"); got != StopCompleted {
		t.Fatalf("mc.run stop attr = %q, want %q", got, StopCompleted)
	}
	if got := root.Attr("completed"); got != "1000" {
		t.Fatalf("mc.run completed attr = %q, want 1000", got)
	}
	if got := trace.Count("shard"); got != nShards {
		t.Fatalf("shard spans = %d, want %d", got, nShards)
	}
	if got := trace.Count("merge"); got == 0 {
		t.Fatal("no merge spans recorded")
	}
	if got := trace.Count("checkpoint.save"); got != ckCalls {
		t.Fatalf("checkpoint.save spans = %d, want %d (one per callback)", got, ckCalls)
	}
	// Every shard/merge span must hang under the run root (shard spans
	// directly, checkpoint.save under its merge span or the root).
	for _, s := range trace.Spans {
		switch s.Name {
		case "shard", "merge":
			if s.Parent != root.ID {
				t.Fatalf("%s span %d parented to %d, want mc.run %d", s.Name, s.ID, s.Parent, root.ID)
			}
		}
	}
	// The final checkpoint flush is stamped final=true.
	foundFinal := false
	for _, s := range trace.Spans {
		if s.Name == "checkpoint.save" && s.Attr("final") == "true" {
			foundFinal = true
		}
	}
	if !foundFinal {
		t.Fatal("no final checkpoint.save span")
	}
}

// TestRunShardedTraceBufferOverflowNeverBlocks: a tracer bound far smaller
// than the span volume must drop the excess (counted) while the engine
// completes the full budget with the exact untraced result.
func TestRunShardedTraceBufferOverflowNeverBlocks(t *testing.T) {
	const shots, shard = 2000, 16 // 125 shards, each emitting spans
	plain, _, err := RunSharded(context.Background(), shots, 7,
		Options{Workers: 4, ShardSize: shard}, coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TracerConfig{ID: "tiny", MaxSpans: 8})
	ctx := obs.WithTracer(context.Background(), tr)
	done := make(chan struct{})
	var traced int
	go func() {
		defer close(done)
		var st Status
		traced, st, err = RunSharded(ctx, shots, 7,
			Options{Workers: 4, ShardSize: shard}, coinShard, sumMerge)
		_ = st
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engine blocked on a full trace buffer")
	}
	if err != nil {
		t.Fatal(err)
	}
	if traced != plain {
		t.Fatalf("overflowing tracer perturbed result: %d vs %d", traced, plain)
	}
	if tr.Len() != 8 {
		t.Fatalf("recorded %d spans, want the 8-span bound", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("no spans counted as dropped despite overflow")
	}
	if err := tr.Snapshot().Check(); err != nil {
		t.Fatalf("overflowed trace invalid: %v", err)
	}
}

// TestRunShardedBlockingCallbacksCannotSkewMerge pins the reentrancy
// contract on Options.Progress/Checkpoint: a Progress callback that stalls
// (simulating slow span export or file I/O) delays commits but cannot
// deadlock the engine or change the merged result versus the serial
// reference run.
func TestRunShardedBlockingCallbacksCannotSkewMerge(t *testing.T) {
	const shots, shard = 800, 32
	serial, stSerial, err := RunSharded(context.Background(), shots, 99,
		Options{Workers: 1, ShardSize: shard}, coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(obs.TracerConfig{ID: "slow-hooks"})
	ctx := obs.WithTracer(context.Background(), tr)
	gate := make(chan struct{})
	var once sync.Once
	stalls := 0
	opt := Options{
		Workers:   7,
		ShardSize: shard,
		Progress: func(done, req int) {
			// First commit: block until an outside goroutine releases us,
			// while other workers pile up behind the commit lock. Also
			// exercise the "callbacks may use the tracer" guarantee.
			_, s := obs.StartSpan(ctx, "export")
			s.End()
			once.Do(func() {
				stalls++
				select {
				case <-gate:
				case <-time.After(10 * time.Second):
					panic("gate never opened: engine deadlocked?")
				}
			})
		},
		Checkpoint: func(cs CheckpointState) {
			time.Sleep(time.Millisecond) // sluggish persistent store
		},
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()

	doneCh := make(chan struct{})
	var par int
	var stPar Status
	go func() {
		defer close(doneCh)
		par, stPar, err = RunSharded(ctx, shots, 99, opt, coinShard, sumMerge)
	}()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("blocking Progress callback deadlocked the engine")
	}
	if err != nil {
		t.Fatal(err)
	}
	if stalls != 1 {
		t.Fatalf("gate closure ran %d times, want 1", stalls)
	}
	if par != serial || stPar != stSerial {
		t.Fatalf("blocking callbacks skewed the merge: serial=%d/%+v par=%d/%+v",
			serial, stSerial, par, stPar)
	}
	if err := tr.Snapshot().Check(); err != nil {
		t.Fatalf("trace under blocking callbacks invalid: %v", err)
	}
}

// TestRunShardedResumeTraced: a resumed run under tracing records a resume
// span and still reproduces the cold result byte-for-byte.
func TestRunShardedResumeTraced(t *testing.T) {
	const shots, shard = 640, 64
	var lastCk CheckpointState
	var lastJSON []byte
	cold, _, err := RunSharded(context.Background(), shots, 5,
		Options{Workers: 1, ShardSize: shard, Checkpoint: func(cs CheckpointState) {
			if !cs.Final && cs.Shards == 5 {
				lastCk = cs
				lastJSON = mustJSON(t, cs.State)
			}
		}}, coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if lastCk.Shards != 5 {
		t.Fatalf("no mid-run checkpoint captured (got %d shards)", lastCk.Shards)
	}

	tr := obs.NewTracer(obs.TracerConfig{ID: "resumed"})
	ctx := obs.WithTracer(context.Background(), tr)
	resumed, st, err := RunSharded(ctx, shots, 5,
		Options{Workers: 4, ShardSize: shard, Resume: &ResumeState{
			Shards: lastCk.Shards, Shots: lastCk.Shots, Events: lastCk.Events,
			NoConverge: lastCk.NoConverge, StateJSON: lastJSON,
		}}, coinShard, sumMerge)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != cold || st.Completed != shots {
		t.Fatalf("traced resume diverged: cold=%d resumed=%d completed=%d", cold, resumed, st.Completed)
	}
	trace := tr.Snapshot()
	if err := trace.Check(); err != nil {
		t.Fatalf("resumed trace invalid: %v", err)
	}
	rs, ok := trace.Find("resume")
	if !ok {
		t.Fatal("no resume span")
	}
	if rs.Attr("shards") != "5" {
		t.Fatalf("resume span shards attr = %q, want 5", rs.Attr("shards"))
	}
}
