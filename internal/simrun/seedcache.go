package simrun

import (
	"math/rand"
	"reflect"
	"sync"
	"unsafe"
)

// Fast re-seeding of the per-shard Go-1 RNG stream.
//
// Seeding math/rand's Go-1 source runs ~1900 LCG warm-up steps (≈15µs), and
// the engine re-seeds once per shard — at the small shard sizes the
// Monte-Carlo consumers use, seeding is 15–30% of a whole run. The post-seed
// state is a pure function of the seed, so it is memoized: the first use of
// a seed pays the normal Seed call and snapshots the source's 4.9 KiB state;
// later uses restore the snapshot with one copy (~100× cheaper). Restoring
// reproduces the exact state Seed would have produced, so the bitstream —
// and therefore every Monte-Carlo result — is unchanged.
//
// The restore path depends on the memory layout of math/rand's Rand and
// rngSource (frozen since Go 1). seedCacheUsable proves the layout with
// reflection and then proves behaviour by comparing restored-state draws
// against freshly seeded draws for a set of probe seeds; any mismatch
// disables the cache, so a stdlib change can only cost speed, never
// correctness. The determinism suites (parallel equivalence, goldens,
// golden-first-draw pins) cover the enabled path end to end.
//
// Cold seeds (never-before-seen, e.g. a fresh top-level seed fanning out to
// fresh shard seeds) additionally use fastSeedState: a reimplementation of
// rngSource.Seed's Lehmer-LCG fill that replaces the Schrage div/mod step
// with a Mersenne-prime shift-add reduction (~7× faster, same values). The
// unexported rngCooked xor-table it needs is recovered at init by seeding a
// donor source and xoring the known LCG chain back out of its state. The
// reimplementation is only enabled after it reproduces stdlib Seed's state
// bit-for-bit on the probe seeds; otherwise cold seeds take plain Seed.

const rngLen = 607

// rngState mirrors math/rand.rngSource.
type rngState struct {
	tap, feed int
	vec       [rngLen]int64
}

var (
	seedCacheOnce   sync.Once
	seedCacheOK     bool
	offSrc          uintptr // offset of Rand.src (interface)
	offReadVal      uintptr // offset of Rand.readVal (int64)
	offReadPos      uintptr // offset of Rand.readPos (int8)
	seedCacheMu     sync.RWMutex
	seedCacheStates = map[int64]*rngState{}
)

// seedCacheLimit bounds the memoized states (~4.9 KiB each). Beyond it, new
// seeds are still fast-seeded but no longer memoized — no eviction churn,
// bounded memory.
const seedCacheLimit = 1024

const lcgMod = 1<<31 - 1 // 2^31-1, the Lehmer modulus of seedrand

var (
	fastSeedOK bool
	cookedRec  [rngLen]int64 // recovered math/rand rngCooked table
	postTap    int           // rngSource tap immediately after Seed
	postFeed   int           // rngSource feed immediately after Seed
)

// lcgStep computes 48271*x mod 2^31-1, the seedrand recurrence, using the
// Mersenne-prime identity 2^31 ≡ 1 (mod 2^31-1) instead of Schrage division.
func lcgStep(x uint32) uint32 {
	p := uint64(x) * 48271
	v := uint32(p&lcgMod) + uint32(p>>31)
	if v >= lcgMod {
		v -= lcgMod
	}
	return v
}

// seedChainStart maps a seed through rngSource.Seed's preprocessing and the
// 20 warm-up LCG steps, returning the chain value just before the vec fill.
func seedChainStart(seed int64) uint32 {
	seed %= lcgMod
	if seed < 0 {
		seed += lcgMod
	}
	if seed == 0 {
		seed = 89482311
	}
	x := uint32(seed)
	for i := 0; i < 20; i++ {
		x = lcgStep(x)
	}
	return x
}

// fastSeedState writes into st the exact state rngSource.Seed(seed)
// produces. Only valid once fastSeedOK is set.
func fastSeedState(st *rngState, seed int64) {
	x := seedChainStart(seed)
	for i := 0; i < rngLen; i++ {
		x = lcgStep(x)
		u := int64(x) << 40
		x = lcgStep(x)
		u ^= int64(x) << 20
		x = lcgStep(x)
		u ^= int64(x)
		st.vec[i] = u ^ cookedRec[i]
	}
	st.tap = postTap
	st.feed = postFeed
}

// srcState returns the *rngState behind r's source, or nil if r does not
// wrap a plain Go-1 rngSource.
func srcState(r *rand.Rand) *rngState {
	iface := (*[2]unsafe.Pointer)(unsafe.Add(unsafe.Pointer(r), offSrc))
	if iface[1] == nil {
		return nil
	}
	return (*rngState)(iface[1])
}

// seedCacheUsable validates layout and behaviour once.
func seedCacheUsable() bool {
	seedCacheOnce.Do(func() {
		rt := reflect.TypeOf(rand.Rand{})
		fSrc, ok1 := rt.FieldByName("src")
		fVal, ok2 := rt.FieldByName("readVal")
		fPos, ok3 := rt.FieldByName("readPos")
		if !ok1 || !ok2 || !ok3 ||
			fSrc.Type.Kind() != reflect.Interface ||
			fVal.Type.Kind() != reflect.Int64 ||
			fPos.Type.Kind() != reflect.Int8 {
			return
		}
		offSrc, offReadVal, offReadPos = fSrc.Offset, fVal.Offset, fPos.Offset

		// The source must be a pointer to a struct laid out like rngState.
		st := reflect.TypeOf(rand.NewSource(1))
		if st.Kind() != reflect.Pointer || st.Elem().Kind() != reflect.Struct ||
			st.Elem().Size() != unsafe.Sizeof(rngState{}) {
			return
		}
		et := st.Elem()
		if et.NumField() != 3 {
			return
		}
		if et.Field(0).Type.Kind() != reflect.Int || et.Field(0).Offset != unsafe.Offsetof(rngState{}.tap) ||
			et.Field(1).Type.Kind() != reflect.Int || et.Field(1).Offset != unsafe.Offsetof(rngState{}.feed) ||
			et.Field(2).Type != reflect.TypeOf([rngLen]int64{}) || et.Field(2).Offset != unsafe.Offsetof(rngState{}.vec) {
			return
		}

		// Behavioural probe: a restored state must reproduce the exact draws
		// of a freshly seeded source, for several seeds and draw kinds.
		for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -987654321} {
			donor := rand.New(rand.NewSource(7))
			sp := srcState(donor)
			if sp == nil {
				return
			}
			donor.Seed(seed)
			snap := *sp
			_ = donor.Float64() // advance the donor past the snapshot

			got := rand.New(rand.NewSource(9))
			for i := 0; i < 3; i++ {
				got.NormFloat64() // dirty the read state
			}
			gp := srcState(got)
			if gp == nil {
				return
			}
			*gp = snap
			*(*int64)(unsafe.Add(unsafe.Pointer(got), offReadVal)) = 0
			*(*int8)(unsafe.Add(unsafe.Pointer(got), offReadPos)) = 0

			want := rand.New(rand.NewSource(seed))
			for i := 0; i < 64; i++ {
				if got.Uint64() != want.Uint64() || got.Float64() != want.Float64() ||
					got.NormFloat64() != want.NormFloat64() {
					return
				}
			}
		}
		seedCacheOK = true

		// Recover rngCooked by xoring the known LCG chain back out of a
		// seeded donor, then require fastSeedState to reproduce stdlib
		// Seed's full state on the probe seeds before trusting it.
		donor := rand.New(rand.NewSource(1))
		dp := srcState(donor)
		if dp == nil {
			return
		}
		const recSeed = 20240601
		donor.Seed(recSeed)
		postTap, postFeed = dp.tap, dp.feed
		x := seedChainStart(recSeed)
		for i := 0; i < rngLen; i++ {
			x = lcgStep(x)
			u := int64(x) << 40
			x = lcgStep(x)
			u ^= int64(x) << 20
			x = lcgStep(x)
			u ^= int64(x)
			cookedRec[i] = dp.vec[i] ^ u
		}
		var tmp rngState
		for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -987654321, recSeed} {
			donor.Seed(seed)
			fastSeedState(&tmp, seed)
			if tmp != *dp {
				return
			}
		}
		fastSeedOK = true
	})
	return seedCacheOK
}

// seedShardRNG puts r into the exact state rand.New(rand.NewSource(seed))
// would produce, using the memoized post-seed state when available.
func seedShardRNG(r *rand.Rand, seed int64) {
	if !seedCacheUsable() {
		r.Seed(seed)
		return
	}
	sp := srcState(r)
	if sp == nil {
		r.Seed(seed)
		return
	}
	seedCacheMu.RLock()
	st := seedCacheStates[seed]
	seedCacheMu.RUnlock()
	if st == nil {
		if fastSeedOK {
			fastSeedState(sp, seed)
			*(*int64)(unsafe.Add(unsafe.Pointer(r), offReadVal)) = 0
			*(*int8)(unsafe.Add(unsafe.Pointer(r), offReadPos)) = 0
		} else {
			r.Seed(seed)
		}
		snap := *sp
		seedCacheMu.Lock()
		if len(seedCacheStates) < seedCacheLimit {
			seedCacheStates[seed] = &snap
		}
		seedCacheMu.Unlock()
		return
	}
	*sp = *st
	*(*int64)(unsafe.Add(unsafe.Pointer(r), offReadVal)) = 0
	*(*int8)(unsafe.Add(unsafe.Pointer(r), offReadPos)) = 0
}
