package simrun

import (
	"math/rand"
	"testing"
)

// TestShardSeedDistinctStreams: distinct shard indices must map to distinct
// derived seeds (the derivation is a bijection on uint64 for a fixed top
// seed, so ANY collision is a bug, not bad luck).
func TestShardSeedDistinctStreams(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 12345, -98765, 1 << 62} {
		seen := make(map[int64]int, 20000)
		for shard := 0; shard < 20000; shard++ {
			ds := ShardSeed(seed, shard)
			if prev, dup := seen[ds]; dup {
				t.Fatalf("seed %d: shards %d and %d derive the same stream seed %d",
					seed, prev, shard, ds)
			}
			seen[ds] = shard
		}
	}
}

// TestShardSeedDistinctAcrossTopSeeds: different top-level seeds must not
// alias onto each other's shard streams for small shard indices (the common
// "seed, seed+1" CLI pattern).
func TestShardSeedDistinctAcrossTopSeeds(t *testing.T) {
	seen := make(map[int64][2]int64)
	for seed := int64(0); seed < 100; seed++ {
		for shard := 0; shard < 100; shard++ {
			ds := ShardSeed(seed, shard)
			key := [2]int64{seed, int64(shard)}
			if prev, dup := seen[ds]; dup {
				t.Fatalf("(seed,shard) (%d,%d) and (%d,%d) derive the same stream seed %d",
					prev[0], prev[1], seed, shard, ds)
			}
			seen[ds] = key
		}
	}
}

// TestShardSeedOrderIndependent: the derivation is a pure function of
// (seed, shard) — evaluating shards in any order, repeatedly, or
// interleaved across top seeds must give the same values. This is the
// property that makes shard results independent of worker scheduling.
func TestShardSeedOrderIndependent(t *testing.T) {
	seeds := []int64{3, -7, 1 << 33}
	shards := []int{9, 0, 4, 2, 7, 1, 8, 3, 6, 5}
	want := make(map[[2]int64]int64)
	for _, s := range seeds {
		for sh := 0; sh < 10; sh++ {
			want[[2]int64{s, int64(sh)}] = ShardSeed(s, sh)
		}
	}
	// Re-derive in shuffled order, twice, interleaving seeds.
	for pass := 0; pass < 2; pass++ {
		for _, sh := range shards {
			for i := len(seeds) - 1; i >= 0; i-- {
				s := seeds[i]
				if got := ShardSeed(s, sh); got != want[[2]int64{s, int64(sh)}] {
					t.Fatalf("pass %d: ShardSeed(%d,%d) = %d, want %d (derivation not order-independent)",
						pass, s, sh, got, want[[2]int64{s, int64(sh)}])
				}
			}
		}
	}
}

// TestShardSeedGoldenFirstDraws pins the derived seeds AND the first
// math/rand draw of each derived stream across refactors: any change to the
// SplitMix64 constants, the mixing steps, or the +1 shard offset shows up
// here as a loud diff, because changing them silently would invalidate every
// recorded result in the perf trajectory.
func TestShardSeedGoldenFirstDraws(t *testing.T) {
	golden := []struct {
		seed      int64
		shard     int
		derived   int64
		firstDraw float64
	}{
		{0, 0, -2152535657050944081, 0.93416558083597279},
		{0, 1, 7960286522194355700, 0.22805011839876949},
		{0, 2, 487617019471545679, 0.0033710549004466921},
		{0, 7, -4214222208109204676, 0.50584270605552484},
		{0, 1000, 3240954710329600481, 0.1194561498297535},
		{1, 0, -7995527694508729151, 0.72108531920413443},
		{1, 1, -4689498862643123097, 0.21193666984524567},
		{1, 2, -534904783426661026, 0.97799753320824601},
		{1, 7, -8797857673641491083, 0.18117439756112061},
		{1, 1000, 8601875543100917166, 0.47561624282653647},
		{17, 0, -9186087665489710237, 0.70021617766171329},
		{17, 1, 7220676901988789713, 0.18223722927836644},
		{17, 2, 6056616057409641356, 0.37156394712375068},
		{17, 7, -6391248413586241739, 0.27758761713001429},
		{17, 1000, -4987196511267838247, 0.80599080125319478},
		{-42, 0, 2847773986881678254, 0.74949248776656019},
		{-42, 1, -2782210818173456976, 0.18675011045881632},
		{-42, 2, 6904877152625194467, 0.084217367112004796},
		{-42, 7, 2371471779312057764, 0.90369108219031824},
		{-42, 1000, 5288184528861900019, 0.2346700938891397},
		{1 << 40, 0, 2296115805719413641, 0.77362068530679817},
		{1 << 40, 1, 424587152169931438, 0.57929562927805367},
		{1 << 40, 2, -2067593604140243248, 0.73755360320689423},
		{1 << 40, 7, -4860631610903693860, 0.93356830643298705},
		{1 << 40, 1000, 3877295224630147285, 0.75947074723627861},
	}
	for _, g := range golden {
		ds := ShardSeed(g.seed, g.shard)
		if ds != g.derived {
			t.Errorf("ShardSeed(%d,%d) = %d, want %d", g.seed, g.shard, ds, g.derived)
			continue
		}
		if draw := rand.New(rand.NewSource(ds)).Float64(); draw != g.firstDraw {
			t.Errorf("first draw of stream (%d,%d) = %v, want %v", g.seed, g.shard, draw, g.firstDraw)
		}
	}
}

func TestShardPlan(t *testing.T) {
	shards := shardPlan(1000, 256, 5)
	if len(shards) != 4 {
		t.Fatalf("want 4 shards, got %d", len(shards))
	}
	total := 0
	for i, sh := range shards {
		if sh.Index != i {
			t.Fatalf("shard %d has index %d", i, sh.Index)
		}
		if sh.Start != total {
			t.Fatalf("shard %d starts at %d, want %d", i, sh.Start, total)
		}
		if sh.Seed != ShardSeed(5, i) {
			t.Fatalf("shard %d seed mismatch", i)
		}
		total += sh.N
	}
	if total != 1000 {
		t.Fatalf("shards cover %d shots, want 1000", total)
	}
	if last := shards[3].N; last != 1000-3*256 {
		t.Fatalf("last shard has %d shots, want %d", last, 1000-3*256)
	}
	if got := shardShots(1000, 256, 4); got != 1000 {
		t.Fatalf("shardShots full = %d", got)
	}
	if got := shardShots(1000, 256, 2); got != 512 {
		t.Fatalf("shardShots prefix = %d", got)
	}
}
