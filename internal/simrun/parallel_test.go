package simrun

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/simerr"
)

// countingShard is a reference shard body: it counts "events" (draws below
// p) so engine-level results can be compared across worker counts without
// dragging a physics model into the package tests.
func countingShard(p float64) ShardFunc[int] {
	return func(t *ShardTask) (int, int, error) {
		ev := 0
		for i := 0; t.Continue(i); i++ {
			if t.RNG.Float64() < p {
				ev++
			}
		}
		return ev, ev, nil
	}
}

func addInt(dst *int, src int) { *dst += src }

// TestRunShardedWorkerCountInvariance: the merged result and Status must be
// bit-identical for every worker count, with and without an uneven final
// shard.
func TestRunShardedWorkerCountInvariance(t *testing.T) {
	for _, shots := range []int{1, 100, 1000, 1003} {
		opt := Options{ShardSize: 64}
		opt.Workers = 1
		ref, refStatus, err := RunSharded(context.Background(), shots, 42, opt, countingShard(0.1), addInt)
		if err != nil {
			t.Fatal(err)
		}
		if refStatus.Completed != shots || refStatus.StopReason != StopCompleted {
			t.Fatalf("serial run incomplete: %+v", refStatus)
		}
		for _, w := range []int{0, 2, 3, 4, 7, 16} {
			opt.Workers = w
			got, status, err := RunSharded(context.Background(), shots, 42, opt, countingShard(0.1), addInt)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref || status != refStatus {
				t.Fatalf("shots=%d workers=%d: got (%d,%+v), serial reference (%d,%+v)",
					shots, w, got, status, ref, refStatus)
			}
		}
	}
}

// TestRunShardedConvergenceDeterministic: the convergence early-stop is
// decided over the committed in-order shard prefix, so the converged prefix
// length — and the merged result — must also be worker-count invariant.
func TestRunShardedConvergenceDeterministic(t *testing.T) {
	opt := Options{ShardSize: 50, TargetRelStdErr: 0.1, MinShots: 200, Workers: 1}
	ref, refStatus, err := RunSharded(context.Background(), 100000, 7, opt, countingShard(0.2), addInt)
	if err != nil {
		t.Fatal(err)
	}
	if !refStatus.Converged || refStatus.StopReason != StopConverged {
		t.Fatalf("serial run did not converge: %+v", refStatus)
	}
	if refStatus.Completed >= 100000 || refStatus.Completed < 200 {
		t.Fatalf("implausible converged prefix: %+v", refStatus)
	}
	if refStatus.Completed%50 != 0 {
		t.Fatalf("converged prefix is not whole shards: %+v", refStatus)
	}
	for _, w := range []int{2, 5, 8} {
		opt.Workers = w
		got, status, err := RunSharded(context.Background(), 100000, 7, opt, countingShard(0.2), addInt)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref || status != refStatus {
			t.Fatalf("workers=%d: converged run differs: (%d,%+v) vs (%d,%+v)",
				w, got, status, ref, refStatus)
		}
	}
}

// TestRunShardedNoEventsNeverConverges: estimators reporting negative event
// counts opt out of the binomial guard; the run must exhaust its budget.
func TestRunShardedNoEventsNeverConverges(t *testing.T) {
	run := func(t_ *ShardTask) (int, int, error) {
		n := 0
		for i := 0; t_.Continue(i); i++ {
			_ = t_.RNG.Float64()
			n++
		}
		return n, -1, nil
	}
	opt := Options{ShardSize: 100, TargetRelStdErr: 0.5, MinShots: 100, Workers: 3}
	got, status, err := RunSharded(context.Background(), 2000, 1, opt, run, addInt)
	if err != nil {
		t.Fatal(err)
	}
	if status.Converged || status.StopReason != StopCompleted || got != 2000 {
		t.Fatalf("no-event run must complete its budget: got %d, %+v", got, status)
	}
}

// TestRunShardedPreCanceled: an already-canceled context yields a flagged,
// empty-prefix partial result, a typed ErrInterrupted from Status.Err, and
// no goroutine leak.
func TestRunShardedPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	got, status, err := RunSharded(ctx, 10000, 3, Options{ShardSize: 100, Workers: 4},
		countingShard(0.1), addInt)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Truncated || status.StopReason != StopCanceled {
		t.Fatalf("want canceled truncation, got %+v", status)
	}
	if got != 0 || status.Completed != 0 {
		t.Fatalf("pre-canceled run must merge zero shards, got %d (%+v)", got, status)
	}
	if !errors.Is(status.Err(), simerr.ErrInterrupted) {
		t.Fatalf("Status.Err() = %v, want ErrInterrupted", status.Err())
	}
	waitForGoroutines(t, before)
}

// TestRunShardedCancelMidRun: cancelling while the pool is working keeps a
// whole-shard prefix (Completed is a multiple of ShardSize), flags the
// result Truncated, and leaks no goroutines. The prefix itself is
// reproducible: rerunning with MaxShots pinned to the prefix regenerates the
// same merged value bit-exactly.
func TestRunShardedCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	slow := func(task *ShardTask) (int, int, error) {
		ev := 0
		for i := 0; task.Continue(i); i++ {
			if task.RNG.Float64() < 0.1 {
				ev++
			}
			// First shard to pass the halfway point pulls the plug.
			if task.Index > 2 && i == task.N/2 {
				once.Do(cancel)
			}
		}
		return ev, ev, nil
	}
	before := runtime.NumGoroutine()
	got, status, err := RunSharded(ctx, 1<<20, 99, Options{ShardSize: 256, Workers: 4, CheckEvery: 16}, slow, addInt)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Truncated || status.StopReason != StopCanceled {
		t.Fatalf("want canceled truncation, got %+v", status)
	}
	if status.Completed >= 1<<20 {
		t.Fatalf("cancelled run completed the whole budget: %+v", status)
	}
	if status.Completed%256 != 0 {
		t.Fatalf("partial result is not a whole-shard prefix: %+v", status)
	}
	waitForGoroutines(t, before)

	// Determinism of the partial: replay exactly the kept prefix serially.
	if status.Completed > 0 {
		replay, rStatus, err := RunSharded(context.Background(), status.Completed, 99,
			Options{ShardSize: 256, Workers: 1}, countingShard(0.1), addInt)
		if err != nil {
			t.Fatal(err)
		}
		if replay != got || rStatus.Completed != status.Completed {
			t.Fatalf("partial result not reproducible: kept %d, replay %d", got, replay)
		}
	}
}

// TestRunShardedDeadline: a deadline stop is reported as such.
func TestRunShardedDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	slow := func(task *ShardTask) (int, int, error) {
		for i := 0; task.Continue(i); i++ {
			time.Sleep(50 * time.Microsecond)
		}
		return 0, 0, nil
	}
	_, status, err := RunSharded(ctx, 1<<20, 1, Options{ShardSize: 1 << 10, Workers: 2, CheckEvery: 1}, slow, addInt)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Truncated || status.StopReason != StopDeadline {
		t.Fatalf("want deadline truncation, got %+v", status)
	}
}

// TestRunShardedShardError: a shard error aborts the run with the error of
// the LOWEST-index failing shard (deterministic pick under any scheduling).
func TestRunShardedShardError(t *testing.T) {
	boom := func(task *ShardTask) (int, int, error) {
		if task.Index >= 3 {
			return 0, 0, simerr.Numericalf("shard %d corrupted", task.Index)
		}
		return 0, 0, nil
	}
	_, _, err := RunSharded(context.Background(), 1000, 1, Options{ShardSize: 100, Workers: 4}, boom, addInt)
	if !errors.Is(err, simerr.ErrNumerical) {
		t.Fatalf("want ErrNumerical, got %v", err)
	}
	if want := "shard 3 corrupted"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("want lowest failing shard's error (%q), got %v", want, err)
	}
}

// TestRunShardedValidation: option validation errors surface before any
// shard runs.
func TestRunShardedValidation(t *testing.T) {
	cases := []Options{
		{Workers: -1},
		{ShardSize: -5},
		{MaxShots: -1},
	}
	for _, opt := range cases {
		_, _, err := RunSharded(context.Background(), 100, 1, opt, countingShard(0.1), addInt)
		if !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Fatalf("opt %+v: want ErrInvalidConfig, got %v", opt, err)
		}
	}
	if _, _, err := RunSharded(context.Background(), 0, 1, Options{}, countingShard(0.1), addInt); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("zero budget: want ErrInvalidConfig, got %v", err)
	}
	if _, _, err := RunSharded(context.Background(), 1000, 1, Options{MaxShots: 100, MinShots: 500, TargetRelStdErr: 0.1},
		countingShard(0.1), addInt); !errors.Is(err, simerr.ErrBudgetInfeasible) {
		t.Fatalf("infeasible floor: want ErrBudgetInfeasible, got %v", err)
	}
}

// TestRunShardedMaxShotsCap: MaxShots caps the budget exactly as the serial
// Guard did.
func TestRunShardedMaxShotsCap(t *testing.T) {
	got, status, err := RunSharded(context.Background(), 10000, 1, Options{MaxShots: 300, ShardSize: 128, Workers: 2},
		countingShard(0.5), addInt)
	if err != nil {
		t.Fatal(err)
	}
	if status.Requested != 300 || status.Completed != 300 || status.StopReason != StopCompleted {
		t.Fatalf("cap not applied: %+v (merged %d)", status, got)
	}
}

// TestShardWorkerCombinationsFuzz is the short shard-size/worker-count fuzz
// the race CI job leans on: every combination must agree with the
// fixed-layout serial reference and finish without data races.
func TestShardWorkerCombinationsFuzz(t *testing.T) {
	const shots = 700
	for _, size := range []int{1, 7, 64, 256, 701} {
		opt := Options{ShardSize: size, Workers: 1}
		ref, refStatus, err := RunSharded(context.Background(), shots, 11, opt, countingShard(0.3), addInt)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 5, 8, 13} {
			opt.Workers = w
			got, status, err := RunSharded(context.Background(), shots, 11, opt, countingShard(0.3), addInt)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref || status != refStatus {
				t.Fatalf("size=%d workers=%d: (%d,%+v) != serial (%d,%+v)",
					size, w, got, status, ref, refStatus)
			}
		}
	}
}

// TestTallyConcurrent exercises the locked Tally API from many goroutines —
// the concurrency contract the Guard explicitly does NOT provide.
func TestTallyConcurrent(t *testing.T) {
	var tally Tally
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tally.Add(2, 1)
			}
		}()
	}
	wg.Wait()
	shots, events := tally.Snapshot()
	if shots != 2*workers*per || events != workers*per {
		t.Fatalf("lost updates: shots %d events %d", shots, events)
	}
	if !tally.Converged(0.5, 1) {
		t.Fatal("tally with p=0.5 over 32k shots must converge at a 0.5 rel-SE target")
	}
	if tally.Converged(0, 1) {
		t.Fatal("zero target must never converge")
	}
	tally.Add(1, -1)
	if tally.Converged(0.5, 1) {
		t.Fatal("negative event count must latch convergence off")
	}
}

// TestGuardSingleConsumerContractDocumented pins the behavioural edge the
// Guard doc promises: Status after a caller-break reports canceled, and the
// guard alone (one goroutine) still enforces budget + convergence.
func TestGuardSingleConsumerContract(t *testing.T) {
	g, err := NewGuard(context.Background(), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := 0
	for ; g.Continue(s); s++ {
	}
	if st := g.Status(s); st.Completed != 100 || st.StopReason != StopCompleted {
		t.Fatalf("serial guard run: %+v", st)
	}
}

// waitForGoroutines polls for the goroutine count to drop back to (or
// below) the pre-run baseline, failing after a grace period — the
// no-goroutine-leak check of the cancellation scenarios.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
