package simrun

import (
	"context"
	"testing"
)

// TestShardMergePathAllocs pins the marginal allocation cost of dispatching
// and merging one shard, so the rngPool/taskPool wins (a ~5 KiB Go-1 RNG
// state plus the task header per shard before pooling) cannot quietly erode
// in later PRs. The pin measures the *difference* between a 9-shard and a
// 1-shard run, which isolates per-shard cost from the engine's fixed
// per-run overhead and keeps the test robust to unrelated setup changes.
func TestShardMergePathAllocs(t *testing.T) {
	run := func(task *ShardTask) (int, int, error) {
		c := 0
		for i := 0; task.Continue(i); i++ {
			if task.RNG.Float64() < 0.5 {
				c++
			}
		}
		return c, c, nil
	}
	merge := func(dst *int, src int) { *dst += src }
	exec := func(shards int) {
		_, _, err := RunSharded(context.Background(), shards*64, 1,
			Options{Workers: 1, ShardSize: 64}, run, merge)
		if err != nil {
			t.Fatal(err)
		}
	}
	exec(9) // warm the pools and any one-time lazies

	a1 := testing.AllocsPerRun(50, func() { exec(1) })
	a9 := testing.AllocsPerRun(50, func() { exec(9) })
	perShard := (a9 - a1) / 8
	// Steady state leaves only the span-attribute slices the dispatch path
	// builds per shard; the RNG and task come from the pools.
	if perShard > 4 {
		t.Fatalf("merge path allocates %.1f objects per shard (1-shard run: %.1f, 9-shard run: %.1f); the shard RNG/task pooling has regressed", perShard, a1, a9)
	}
}
