package simrun

// Shard is one fixed-size slice of a Monte-Carlo shot budget. The parallel
// engine partitions a budget of B shots into ceil(B/ShardSize) shards; shard
// i covers global shot indices [Start, Start+N) and owns an independent
// deterministic RNG stream seeded with Seed = ShardSeed(topSeed, i).
//
// Because Seed depends only on (topSeed, Index) — never on which worker runs
// the shard or when — a shard's contribution to the merged result is a pure
// function of the run parameters. Merging shards in Index order therefore
// produces a bit-identical result for every worker count, including the
// serial Workers=1 reference.
type Shard struct {
	// Index is the 0-based shard number.
	Index int
	// Start is the global index of the shard's first shot. Consumers whose
	// per-shot behaviour depends on the global shot index (e.g. alternating
	// state preparation) must use Start+i, not the local loop index, so the
	// behaviour is independent of the shard layout's realisation order.
	Start int
	// N is the number of shots in this shard (the last shard may be short).
	N int
	// Seed is the derived RNG seed for this shard's stream.
	Seed int64
}

// splitmix64 constants (Steele, Lea & Flood, "Fast splittable pseudorandom
// number generators", OOPSLA 2014). GAMMA is the golden-ratio increment; the
// two multipliers are the finalisation mix of the reference implementation.
const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMulA  = 0xBF58476D1CE4E5B9
	splitmixMulB  = 0x94D049BB133111EB
)

// ShardSeed derives the RNG seed of shard i from the top-level seed with a
// SplitMix64 finalisation step over seed + (i+1)·γ.
//
// Properties the parallel engine (and the property tests) rely on:
//
//   - Pure: the value depends only on (seed, shard) — not on worker
//     scheduling, call order, or any global state.
//   - Injective in shard for a fixed seed: both the γ-increment and the
//     xorshift-multiply finalisation are bijections on uint64, so distinct
//     shards always receive distinct derived seeds (and therefore distinct
//     math/rand streams).
//   - Decorrelated: consecutive shard indices land ~γ apart in the mixed
//     space, so neighbouring shards do not share low-bit structure the way
//     naive seed+i derivation does.
//
// The +1 offset keeps shard 0 from collapsing to a plain finalisation of the
// user seed, so ShardSeed(s, 0) != mix(s) for the common seed=0 case.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + (uint64(shard)+1)*splitmixGamma
	z = (z ^ (z >> 30)) * splitmixMulA
	z = (z ^ (z >> 27)) * splitmixMulB
	z ^= z >> 31
	return int64(z)
}

// shardPlan returns the shard layout for a budget: ceil(budget/size) shards
// of `size` shots each, the last one truncated to the remainder.
func shardPlan(budget, size int, seed int64) []Shard {
	n := (budget + size - 1) / size
	out := make([]Shard, n)
	for i := 0; i < n; i++ {
		start := i * size
		ns := size
		if start+ns > budget {
			ns = budget - start
		}
		out[i] = Shard{Index: i, Start: start, N: ns, Seed: ShardSeed(seed, i)}
	}
	return out
}

// shardShots returns the total shots covered by the first k shards of a
// budget partitioned at `size`.
func shardShots(budget, size, k int) int {
	s := k * size
	if s > budget {
		return budget
	}
	return s
}
