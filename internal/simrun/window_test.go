package simrun

import (
	"context"
	"errors"
	"testing"

	"qisim/internal/simerr"
)

// windowShardFunc is a deterministic shard function whose result encodes
// the shard's identity so reordering or replay is detectable.
func windowShardFunc(t *ShardTask) (int, int, error) {
	sum := 0
	for s := 0; t.Continue(s); s++ {
		sum += int(t.RNG.Int63() % 1000)
	}
	return sum + t.Index*1_000_000, 0, nil
}

func TestRunWindowMatchesFullPlanFold(t *testing.T) {
	const shots, seed, size = 2000, 7, 128
	opt := Options{ShardSize: size, Workers: 1}

	full, st, err := RunSharded(context.Background(), shots, seed, opt, windowShardFunc,
		func(dst *int, src int) { *dst += src })
	if err != nil || st.Completed != shots {
		t.Fatalf("full run: err=%v status=%+v", err, st)
	}

	n := PlanShards(shots, size)
	for _, workers := range []int{1, 4} {
		// Split the plan into two windows at an arbitrary boundary and fold
		// emissions in global order: must equal the full-plan fold.
		sumAll := 0
		prev := -1
		for _, w := range [][2]int{{0, n / 2}, {n / 2, n}} {
			wo := opt
			wo.Workers = workers
			err := RunWindow(context.Background(), shots, seed, wo, w[0], w[1],
				windowShardFunc, func(sh Shard, res, events int) error {
					if sh.Index != prev+1 {
						t.Fatalf("out-of-order emit: shard %d after %d", sh.Index, prev)
					}
					prev = sh.Index
					sumAll += res
					return nil
				})
			if err != nil {
				t.Fatalf("window %v (workers=%d): %v", w, workers, err)
			}
		}
		if sumAll != full {
			t.Fatalf("workers=%d: window fold %d != full fold %d", workers, sumAll, full)
		}
	}
}

func TestRunWindowValidatesRange(t *testing.T) {
	opt := Options{ShardSize: 128}
	emit := func(Shard, int, int) error { return nil }
	for _, w := range [][2]int{{-1, 2}, {0, 999}, {3, 2}} {
		err := RunWindow(context.Background(), 1000, 1, opt, w[0], w[1], windowShardFunc, emit)
		if !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Fatalf("window %v: want ErrInvalidConfig, got %v", w, err)
		}
	}
	// Empty window is a no-op, not an error.
	if err := RunWindow(context.Background(), 1000, 1, opt, 2, 2, windowShardFunc, emit); err != nil {
		t.Fatalf("empty window: %v", err)
	}
}

func TestRunWindowCancellationIsTyped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{ShardSize: 64, CheckEvery: 1}
	err := RunWindow(ctx, 10_000, 3, opt, 0, 4, windowShardFunc,
		func(Shard, int, int) error { return nil })
	if !errors.Is(err, simerr.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted for a canceled window, got %v", err)
	}
}

func TestRunWindowSurfacesEmitError(t *testing.T) {
	boom := errors.New("sink full")
	err := RunWindow(context.Background(), 2000, 7, Options{ShardSize: 128}, 0, 3,
		windowShardFunc, func(sh Shard, res, events int) error {
			if sh.Index == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want emit error surfaced, got %v", err)
	}
}

func TestPlanShardsAndShots(t *testing.T) {
	if got := PlanShards(1000, 128); got != 8 {
		t.Fatalf("PlanShards(1000,128) = %d, want 8", got)
	}
	if got := PlanShots(1000, 128, 8); got != 1000 {
		t.Fatalf("PlanShots full prefix = %d, want 1000", got)
	}
	if got := PlanShots(1000, 128, 3); got != 384 {
		t.Fatalf("PlanShots(3) = %d, want 384", got)
	}
	if got := PlanShards(1000, 0); got != PlanShards(1000, DefaultShardSize) {
		t.Fatalf("zero size must default: got %d", got)
	}
}
