// Package compile lowers parsed OpenQASM programs to the per-qubit FIFO
// instruction queues the cycle-accurate simulator executes (Section 4.2):
// every gate becomes a timed instruction with its Table 2 latency; two-qubit
// gates are enqueued on both participants with a shared id so the simulator
// can enforce the true dependency; barriers synchronise all queues.
package compile

import (
	"fmt"

	"qisim/internal/phys"
	"qisim/internal/qasm"
	"qisim/internal/simerr"
)

// Kind classifies instructions for the simulator and the power model.
type Kind int

const (
	OneQ Kind = iota
	TwoQ
	Measure
	Barrier
)

func (k Kind) String() string {
	switch k {
	case OneQ:
		return "1q"
	case TwoQ:
		return "2q"
	case Measure:
		return "measure"
	default:
		return "barrier"
	}
}

// Instr is one lowered instruction.
type Instr struct {
	ID       int
	Kind     Kind
	Name     string
	Param    float64
	Qubit    int
	Partner  int // the other qubit of a 2Q gate, else -1
	Duration float64
	// Virtual marks zero-duration software operations (virtual Rz).
	Virtual bool
}

// GateKey identifies broadcast-mergeable gates (same physical pulse).
func (in Instr) GateKey() string {
	return fmt.Sprintf("%s/%.9f", in.Name, in.Param)
}

// Executable is the compiled program: one FIFO per qubit.
type Executable struct {
	NQubits int
	Queues  [][]Instr
	// Counts per kind, for traffic accounting.
	NumOneQ, NumTwoQ, NumMeasure int
}

// Options control the lowering.
type Options struct {
	Specs phys.OperationSpecs
	// VirtualRz lowers rz/z/s/t-family gates to zero-duration phase updates
	// (the extended NCO datapath of Section 3.3.1). Without it they occupy
	// the drive circuit like any other 1Q gate.
	VirtualRz bool
	// ReadoutTime overrides Specs.Readout.Latency when > 0 (e.g. the
	// Opt-#7 multi-round expected latency or a JPM pipeline latency).
	ReadoutTime float64
}

// DefaultOptions lowers with the CMOS Table 2 latencies and virtual Rz.
func DefaultOptions() Options {
	return Options{Specs: phys.CMOSOperationSpecs(), VirtualRz: true}
}

var zFamily = map[string]bool{"z": true, "s": true, "sdg": true, "t": true, "tdg": true, "rz": true}

// Compile lowers a program. Corrupted instruction streams — out-of-range
// qubit indices, wrong arity, non-finite parameters — are rejected with a
// typed ErrInvalidConfig before lowering; no input program can make Compile
// panic.
func Compile(p *qasm.Program, opt Options) (ex *Executable, err error) {
	defer simerr.RecoverInto(&err, simerr.ErrInvalidConfig)
	if verr := p.Validate(); verr != nil {
		return nil, verr
	}
	ex = &Executable{NQubits: p.NQubits, Queues: make([][]Instr, p.NQubits)}
	ro := opt.Specs.Readout.Latency
	if opt.ReadoutTime > 0 {
		ro = opt.ReadoutTime
	}
	id := 0
	push := func(q int, in Instr) {
		ex.Queues[q] = append(ex.Queues[q], in)
	}
	for _, g := range p.Gates {
		id++
		switch {
		case g.Name == "barrier":
			for q := 0; q < p.NQubits; q++ {
				push(q, Instr{ID: id, Kind: Barrier, Name: "barrier", Qubit: q, Partner: -1})
			}
		case g.Name == "measure":
			ex.NumMeasure++
			push(g.Qubits[0], Instr{
				ID: id, Kind: Measure, Name: "measure", Qubit: g.Qubits[0],
				Partner: -1, Duration: ro,
			})
		case g.Name == "cx", g.Name == "cz", g.Name == "swap":
			a, b := g.Qubits[0], g.Qubits[1]
			pushH := func(q int) {
				id++
				ex.NumOneQ++
				push(q, Instr{
					ID: id, Kind: OneQ, Name: "h", Qubit: q,
					Partner: -1, Duration: opt.Specs.OneQ.Latency,
				})
			}
			pushCZ := func() {
				id++
				ex.NumTwoQ++
				in := Instr{ID: id, Kind: TwoQ, Name: "cz", Qubit: a, Partner: b, Duration: opt.Specs.TwoQ.Latency}
				push(a, in)
				in.Qubit, in.Partner = b, a
				push(b, in)
			}
			switch g.Name {
			case "cz":
				id-- // pushCZ assigns its own id
				pushCZ()
			case "cx":
				// cx = (I⊗H)·CZ·(I⊗H): H target, CZ, H target.
				id--
				pushH(b)
				pushCZ()
				pushH(b)
			case "swap":
				// Three CZ-class interactions with basis changes.
				id--
				pushCZ()
				pushH(a)
				pushH(b)
				pushCZ()
				pushH(a)
				pushH(b)
				pushCZ()
			}
		default: // single-qubit gates
			param := 0.0
			if len(g.Params) > 0 {
				param = g.Params[0]
			}
			in := Instr{
				ID: id, Kind: OneQ, Name: g.Name, Param: param,
				Qubit: g.Qubits[0], Partner: -1, Duration: opt.Specs.OneQ.Latency,
			}
			if opt.VirtualRz && zFamily[g.Name] {
				in.Duration = 0
				in.Virtual = true
			} else {
				ex.NumOneQ++
			}
			push(g.Qubits[0], in)
		}
	}
	return ex, nil
}
