package compile

import "math"

// FuseHRz applies the Opt-#6 basis-gate change on a compiled executable: in
// lattice-surgery circuits adjacent single-qubit pairs are always H·Rz(nπ/4)
// (or Rz·H), which one Ry(π/2)·Rz(nπ/4) pulse realises. The pass scans each
// qubit's queue and merges such pairs into a single physical instruction,
// halving the drive instruction stream. It returns the fused-pair count.
func FuseHRz(ex *Executable) int {
	fused := 0
	for q := range ex.Queues {
		in := ex.Queues[q]
		var out []Instr
		for i := 0; i < len(in); i++ {
			cur := in[i]
			if i+1 < len(in) && fusable(cur, in[i+1]) {
				next := in[i+1]
				phi := cur.Param
				if cur.Name == "h" {
					phi = next.Param
				}
				phi = canonicalRz(cur, next, phi)
				merged := Instr{
					ID:       cur.ID,
					Kind:     OneQ,
					Name:     "ryrz",
					Param:    phi,
					Qubit:    cur.Qubit,
					Partner:  -1,
					Duration: maxDur(cur.Duration, next.Duration),
				}
				out = append(out, merged)
				fused++
				i++
				continue
			}
			out = append(out, cur)
		}
		ex.Queues[q] = out
	}
	// The physical 1Q op count shrinks by the H gates absorbed.
	ex.NumOneQ -= fused
	return fused
}

// fusable reports whether a, b form an H·Rz or Rz·H pair on one qubit.
func fusable(a, b Instr) bool {
	if a.Kind != OneQ || b.Kind != OneQ || a.Qubit != b.Qubit {
		return false
	}
	hFirst := a.Name == "h" && isRzFamily(b.Name)
	rzFirst := isRzFamily(a.Name) && b.Name == "h"
	return hFirst || rzFirst
}

func isRzFamily(name string) bool {
	switch name {
	case "rz", "z", "s", "sdg", "t", "tdg":
		return true
	}
	return false
}

// canonicalRz maps the z-family gate of the pair to its angle.
func canonicalRz(a, b Instr, phi float64) float64 {
	g := a
	if a.Name == "h" {
		g = b
	}
	switch g.Name {
	case "z":
		return math.Pi
	case "s":
		return math.Pi / 2
	case "sdg":
		return -math.Pi / 2
	case "t":
		return math.Pi / 4
	case "tdg":
		return -math.Pi / 4
	default:
		return phi
	}
}

func maxDur(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
