package compile

import (
	"math"
	"testing"

	"qisim/internal/qasm"
)

func compileFor(t *testing.T, src string, virtualRz bool) *Executable {
	t.Helper()
	p, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.VirtualRz = virtualRz
	ex, err := Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestFuseHRzPair(t *testing.T) {
	// h then t: one Ry(π/2)·Rz(π/4) instruction.
	ex := compileFor(t, "qreg q[1]; h q[0]; t q[0];", false)
	n := FuseHRz(ex)
	if n != 1 {
		t.Fatalf("fused %d pairs, want 1", n)
	}
	if len(ex.Queues[0]) != 1 {
		t.Fatalf("queue length %d, want 1", len(ex.Queues[0]))
	}
	in := ex.Queues[0][0]
	if in.Name != "ryrz" || math.Abs(in.Param-math.Pi/4) > 1e-12 {
		t.Fatalf("fused instruction wrong: %+v", in)
	}
}

func TestFuseRzHPairAndAngles(t *testing.T) {
	cases := map[string]float64{
		"z":   math.Pi,
		"s":   math.Pi / 2,
		"sdg": -math.Pi / 2,
		"tdg": -math.Pi / 4,
	}
	for g, want := range cases {
		ex := compileFor(t, "qreg q[1]; "+g+" q[0]; h q[0];", false)
		if n := FuseHRz(ex); n != 1 {
			t.Fatalf("%s·h: fused %d", g, n)
		}
		if got := ex.Queues[0][0].Param; math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s·h: angle %v, want %v", g, got, want)
		}
	}
}

func TestFuseLeavesUnpairedGates(t *testing.T) {
	ex := compileFor(t, "qreg q[2]; h q[0]; x q[0]; h q[1];", false)
	if n := FuseHRz(ex); n != 0 {
		t.Fatalf("nothing fusable, but fused %d", n)
	}
	if len(ex.Queues[0]) != 2 || len(ex.Queues[1]) != 1 {
		t.Fatal("queues changed without fusion")
	}
}

func TestFuseHalvesESMStyleStream(t *testing.T) {
	// A lattice-surgery-like stream: alternating h/t layers fuse fully.
	src := "qreg q[1]; h q[0]; t q[0]; h q[0]; s q[0]; h q[0]; tdg q[0];"
	ex := compileFor(t, src, false)
	before := ex.NumOneQ
	n := FuseHRz(ex)
	if n != 3 {
		t.Fatalf("fused %d, want 3", n)
	}
	if ex.NumOneQ != before-3 {
		t.Fatalf("NumOneQ accounting wrong: %d → %d", before, ex.NumOneQ)
	}
	if len(ex.Queues[0]) != 3 {
		t.Fatalf("stream length %d, want 3", len(ex.Queues[0]))
	}
}

func TestFuseDoesNotCrossCZ(t *testing.T) {
	ex := compileFor(t, "qreg q[2]; h q[0]; cz q[0],q[1]; t q[0];", false)
	if n := FuseHRz(ex); n != 0 {
		t.Fatalf("fusion crossed a CZ: %d", n)
	}
}

func TestFuseRzParamGate(t *testing.T) {
	ex := compileFor(t, "qreg q[1]; h q[0]; rz(0.7) q[0];", false)
	FuseHRz(ex)
	if got := ex.Queues[0][0].Param; math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("rz angle %v, want 0.7", got)
	}
}
