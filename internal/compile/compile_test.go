package compile

import (
	"testing"

	"qisim/internal/phys"
	"qisim/internal/qasm"
)

func mustParse(t *testing.T, src string) *qasm.Program {
	t.Helper()
	p, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileSingleQubit(t *testing.T) {
	p := mustParse(t, "qreg q[2]; h q[0]; x q[1];")
	ex, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Queues[0]) != 1 || len(ex.Queues[1]) != 1 {
		t.Fatalf("queue lengths %d/%d", len(ex.Queues[0]), len(ex.Queues[1]))
	}
	if ex.Queues[0][0].Duration != phys.CMOSOperationSpecs().OneQ.Latency {
		t.Fatal("1Q latency should come from Table 2")
	}
	if ex.NumOneQ != 2 {
		t.Fatalf("NumOneQ = %d", ex.NumOneQ)
	}
}

func TestVirtualRz(t *testing.T) {
	p := mustParse(t, "qreg q[1]; rz(0.5) q[0]; s q[0]; t q[0];")
	ex, _ := Compile(p, DefaultOptions())
	for _, in := range ex.Queues[0] {
		if !in.Virtual || in.Duration != 0 {
			t.Fatalf("z-family gate should be virtual: %+v", in)
		}
	}
	if ex.NumOneQ != 0 {
		t.Fatal("virtual gates must not count as physical 1Q ops")
	}
	// Without virtual Rz they are physical.
	opt := DefaultOptions()
	opt.VirtualRz = false
	ex2, _ := Compile(p, opt)
	if ex2.NumOneQ != 3 {
		t.Fatalf("non-virtual lowering: NumOneQ = %d, want 3", ex2.NumOneQ)
	}
}

func TestCompileCZSharedID(t *testing.T) {
	p := mustParse(t, "qreg q[2]; cz q[0],q[1];")
	ex, _ := Compile(p, DefaultOptions())
	a, b := ex.Queues[0][0], ex.Queues[1][0]
	if a.ID != b.ID || a.Kind != TwoQ || b.Kind != TwoQ {
		t.Fatalf("CZ must appear on both queues with shared id: %+v %+v", a, b)
	}
	if a.Partner != 1 || b.Partner != 0 {
		t.Fatal("partners wrong")
	}
}

func TestCompileCXDecomposition(t *testing.T) {
	p := mustParse(t, "qreg q[2]; cx q[0],q[1];")
	ex, _ := Compile(p, DefaultOptions())
	// Target queue: H, CZ, H. Control queue: CZ.
	if len(ex.Queues[1]) != 3 || len(ex.Queues[0]) != 1 {
		t.Fatalf("cx queues %d/%d, want 1/3", len(ex.Queues[0]), len(ex.Queues[1]))
	}
	if ex.Queues[1][0].Name != "h" || ex.Queues[1][1].Name != "cz" || ex.Queues[1][2].Name != "h" {
		t.Fatalf("cx target order wrong: %+v", ex.Queues[1])
	}
}

func TestCompileSwap(t *testing.T) {
	p := mustParse(t, "qreg q[2]; swap q[0],q[1];")
	ex, _ := Compile(p, DefaultOptions())
	if ex.NumTwoQ != 3 {
		t.Fatalf("swap should lower to 3 CZ-class ops, got %d", ex.NumTwoQ)
	}
}

func TestCompileMeasureReadoutOverride(t *testing.T) {
	p := mustParse(t, "qreg q[1]; creg c[1]; measure q[0] -> c[0];")
	opt := DefaultOptions()
	opt.ReadoutTime = 306e-9
	ex, _ := Compile(p, opt)
	if ex.Queues[0][0].Duration != 306e-9 {
		t.Fatal("readout override not applied")
	}
	if ex.NumMeasure != 1 {
		t.Fatal("measure not counted")
	}
}

func TestCompileBarrierOnAllQueues(t *testing.T) {
	p := mustParse(t, "qreg q[3]; h q[0]; barrier q; h q[1];")
	ex, _ := Compile(p, DefaultOptions())
	for q := 0; q < 3; q++ {
		found := false
		for _, in := range ex.Queues[q] {
			if in.Kind == Barrier {
				found = true
			}
		}
		if !found {
			t.Fatalf("qubit %d missing barrier", q)
		}
	}
}

func TestGateKeyDistinguishesParams(t *testing.T) {
	a := Instr{Name: "ry", Param: 0.5}
	b := Instr{Name: "ry", Param: 0.25}
	if a.GateKey() == b.GateKey() {
		t.Fatal("gate keys must include the parameter")
	}
}
