// Package cmos is QIsim's cryogenic CMOS device model — the stand-in for the
// paper's CryoModel + Design Compiler synthesis flow. It predicts per-
// component static and dynamic power for the 4 K CMOS QCI's digital parts
// across technology nodes (45/22/14/7 nm), operating temperatures, and
// voltage scalings, plus the fixed analog powers the paper takes from the
// Horse Ridge publications.
//
// The model is deliberately coarse-grained: each digital component is a gate
// count plus memory traffic, converted to power with per-node energy
// coefficients calibrated against the Horse Ridge I/II anchor points of
// Fig. 8 and the per-qubit power breakdown of Section 6.3.1 (RX digital
// 54.7%, drive digital 13.3% of the baseline 4 K device power).
package cmos

import (
	"fmt"
	"log/slog"
	"math"

	"qisim/internal/obs"
)

// logger is the package's structured-logging seam: silent by default so the
// power model stays pure, it can be pointed at a shared slog.Logger
// (SetLogger) to surface per-qubit breakdowns at debug level.
var logger = obs.Discard()

// SetLogger installs the structured logger the package's debug diagnostics
// go to. Call once at process startup (before concurrent use); nil restores
// the silent default.
func SetLogger(l *slog.Logger) { logger = obs.OrDiscard(l) }

// Node is a CMOS technology node with its power scaling relative to the
// 45 nm FreePDK baseline (the same role as the paper's Eq. 2 + ITRS table).
type Node struct {
	Name string
	// DynScale multiplies dynamic power relative to 45 nm at nominal Vdd.
	DynScale float64
	// FMaxHz is the achievable clock at 4 K (synthesis objective is 2.5 GHz
	// for every node we use, matching Horse Ridge).
	FMaxHz float64
}

// The node table. The 7 nm entry encodes the paper's 4.15x technology
// scaling from 14 nm (Section 6.4.1).
var (
	Node45 = Node{Name: "45nm", DynScale: 1.0, FMaxHz: 3.0e9}
	Node22 = Node{Name: "22nm", DynScale: 0.30, FMaxHz: 3.4e9}
	Node14 = Node{Name: "14nm", DynScale: 0.18, FMaxHz: 3.8e9}
	Node7  = Node{Name: "7nm", DynScale: 0.18 / 4.15, FMaxHz: 4.2e9}
)

// Conditions captures operating temperature and voltage scaling.
type Conditions struct {
	TempK float64
	// VddScale scales the supply relative to the node's nominal; power goes
	// with its square twice over (the paper's 16x from Vdd+Vth scaling is
	// VddScale = 0.25).
	VddScale float64
	// PowerGated zeroes idle static power (applied to 4 K CMOS, where the
	// leakage collapse makes gating nearly free).
	PowerGated bool
}

// Cryo4K returns the nominal 4 K operating point.
func Cryo4K() Conditions { return Conditions{TempK: 4, VddScale: 1, PowerGated: true} }

// Advanced4K returns the long-term voltage-scaled point (power /16).
func Advanced4K() Conditions { return Conditions{TempK: 4, VddScale: 0.25, PowerGated: true} }

// Room300K returns the room-temperature point (for 300 K QCIs).
func Room300K() Conditions { return Conditions{TempK: 300, VddScale: 1} }

// powerScale: dynamic power goes with Vdd²; the paper's 16x headline is the
// joint Vdd+Vth scaling to a quarter of nominal (0.25² → 1/16).
func (c Conditions) powerScale() float64 { return c.VddScale * c.VddScale }

// Component is one digital block of a QCI circuit.
type Component struct {
	Name string
	// Gates is the equivalent NAND2 gate count.
	Gates int
	// Activity is the average toggle probability per gate per cycle.
	Activity float64
	// MemBytes and MemAccessPerCycle describe SRAM traffic.
	MemBytes          int
	MemAccessPerCycle float64
	// BitScaling, when non-zero, marks the component's power as scaling with
	// the datapath bit width as (0.45 + 0.55·bits/14) — the Opt-#2 lever.
	BitScaling bool
}

// Energy coefficients at the 45 nm / 300 K baseline.
const (
	gateEnergy45 = 1.0e-15  // J per gate toggle
	memEnergy45  = 1.16e-12 // J per access of a 32 KiB SRAM bank
	memRefBytes  = 32 * 1024
	// staticFrac300K is leakage as a fraction of dynamic power at 300 K.
	staticFrac300K = 0.30
)

// Power returns (static, dynamic) watts for the component at clock f with
// datapath width bits (use 14 for the Horse Ridge default).
func (c Component) Power(n Node, cond Conditions, f float64, bits int) (static, dynamic float64) {
	scale := n.DynScale * cond.powerScale()
	bitScale := 1.0
	if c.BitScaling && bits > 0 {
		bitScale = 0.45 + 0.55*float64(bits)/14
	}
	gateP := float64(c.Gates) * c.Activity * f * gateEnergy45 * scale * bitScale
	memP := 0.0
	if c.MemBytes > 0 && c.MemAccessPerCycle > 0 {
		e := memEnergy45 * math.Sqrt(float64(c.MemBytes)/memRefBytes)
		memP = c.MemAccessPerCycle * f * e * scale * bitScale
	}
	dynamic = gateP + memP
	if cond.TempK >= 100 {
		static = dynamic * staticFrac300K
	} else if !cond.PowerGated {
		static = dynamic * 0.01
	}
	return static, dynamic
}

// Circuit is a named set of components plus a fixed analog power (taken from
// the published Horse Ridge / Kang et al. analog front-ends, which do not
// scale with digital technology).
type Circuit struct {
	Name       string
	Components []Component
	AnalogW    float64
	// Qubits is the number of qubits sharing this circuit (FDM degree).
	Qubits int
}

// DigitalPower sums component power at clock f and bit width bits.
func (c Circuit) DigitalPower(n Node, cond Conditions, f float64, bits int) float64 {
	var total float64
	for _, comp := range c.Components {
		s, d := comp.Power(n, cond, f, bits)
		total += s + d
	}
	return total
}

// TotalPower is digital + analog.
func (c Circuit) TotalPower(n Node, cond Conditions, f float64, bits int) float64 {
	return c.DigitalPower(n, cond, f, bits) + c.AnalogW
}

// PerQubitPower divides by the FDM degree.
func (c Circuit) PerQubitPower(n Node, cond Conditions, f float64, bits int) float64 {
	return c.TotalPower(n, cond, f, bits) / float64(c.Qubits)
}

func (c Circuit) String() string {
	return fmt.Sprintf("%s{%d components, %d qubits}", c.Name, len(c.Components), c.Qubits)
}

// DriveCircuit builds the 4 K CMOS drive circuit digital part (Fig. 4(a-b)):
// per-qubit NCOs with the new virtual-Rz datapath and Z-correction table,
// two polar-modulation banks, and the envelope memory. fdm is the
// frequency-multiplexing degree (32 baseline, 20 after Opt-#7).
func DriveCircuit(fdm int) Circuit {
	return Circuit{
		Name:   "drive",
		Qubits: fdm,
		Components: []Component{
			{Name: "nco", Gates: 2700 * fdm, Activity: 0.18, BitScaling: true},
			{Name: "z-correction-table", Gates: 500 * fdm, Activity: 0.05, BitScaling: true},
			{Name: "polar-modulator", Gates: 14000, Activity: 0.25, BitScaling: true},
			// Per-qubit 2 KiB envelope banks; the two active digital banks
			// stream one access per cycle each.
			{Name: "envelope-memory", MemBytes: 2048, MemAccessPerCycle: 2, BitScaling: true},
		},
		// Per-qubit upconversion chains: 0.2 mW/qubit (Van Dijk et al.),
		// so the per-circuit analog scales with the FDM degree.
		AnalogW: 0.0002 * float64(fdm),
	}
}

// PulseCircuitCMOS builds the per-qubit CZ pulse circuit with the arbitrary
// ramp-up/down instruction+amplitude memories of Section 3.3.2.
func PulseCircuitCMOS() Circuit {
	return Circuit{
		Name:   "pulse",
		Qubits: 1,
		Components: []Component{
			{Name: "instruction-table", Gates: 2200, Activity: 0.10},
			{Name: "amplitude-memory", MemBytes: 2048, MemAccessPerCycle: 0.5},
		},
		AnalogW: 0.0001, // Park et al. pulse DAC
	}
}

// TXCircuit builds the readout-drive circuit shared by fdm qubits (8).
func TXCircuit(fdm int) Circuit {
	return Circuit{
		Name:   "tx",
		Qubits: fdm,
		Components: []Component{
			{Name: "nco-banks", Gates: 400 * fdm, Activity: 0.15},
			{Name: "sincos-lut", MemBytes: 512, MemAccessPerCycle: float64(fdm)},
		},
		AnalogW: 0.00044,
	}
}

// RXCircuit builds the readout-receive circuit shared by fdm qubits (8).
// binCounter selects the Horse Ridge II bin-counting decision unit with its
// per-qubit 32 KiB memory; Opt-#1 replaces it with the memory-less streaming
// comparator (a 32-bit counter per qubit).
func RXCircuit(fdm int, binCounter bool) Circuit {
	comps := []Component{
		{Name: "rx-nco-mixer", Gates: 1500 * fdm, Activity: 0.20},
		{Name: "decision-logic", Gates: 100 * fdm, Activity: 0.20},
	}
	if binCounter {
		// Per-qubit 32 KiB bin bank, read+written every cycle (×fdm banks).
		comps = append(comps, Component{
			Name:              "bin-counter-memory",
			MemBytes:          32 * 1024,
			MemAccessPerCycle: 2 * float64(fdm),
		})
	}
	return Circuit{
		Name:       "rx",
		Qubits:     fdm,
		Components: comps,
		AnalogW:    0.0011, // LNA/mixer (Kang), amp/ADC (Park)
	}
}

// QCIConfig bundles a full 4 K CMOS QCI configuration.
type QCIConfig struct {
	Node       Node
	Cond       Conditions
	ClockHz    float64
	DriveFDM   int
	ReadoutFDM int
	DriveBits  int
	BinCounter bool
	// AnalogScale scales the fixed analog powers (1 = published values; the
	// long-term analysis co-scales analog with the wholesale 4.15×16
	// reduction the paper applies to the 4 K power).
	AnalogScale float64
}

// Baseline14nm returns the Section 6 baseline: 14 nm, 2.5 GHz, FDM 32/8,
// 14-bit drive, bin-counting RX.
func Baseline14nm() QCIConfig {
	return QCIConfig{
		Node: Node14, Cond: Cryo4K(), ClockHz: 2.5e9,
		DriveFDM: 32, ReadoutFDM: 8, DriveBits: 14, BinCounter: true,
		AnalogScale: 1,
	}
}

// Optimized14nm returns the near-term Opt-#1+#2 design (Fig. 13(a)).
func Optimized14nm() QCIConfig {
	cfg := Baseline14nm()
	cfg.BinCounter = false
	cfg.DriveBits = 6
	return cfg
}

// Advanced7nm returns the long-term technology+voltage-scaled design of
// Section 6.4.1 (before Opt-#6/#7).
func Advanced7nm() QCIConfig {
	cfg := Optimized14nm()
	cfg.Node = Node7
	cfg.Cond = Advanced4K()
	cfg.AnalogScale = 1 / (4.15 * 16)
	return cfg
}

// PerQubitBreakdown reports the per-qubit power split of a configuration.
type PerQubitBreakdown struct {
	DriveDigital float64
	DriveAnalog  float64
	Pulse        float64
	TX           float64
	RXDigital    float64
	RXAnalog     float64
}

// Total sums the breakdown.
func (b PerQubitBreakdown) Total() float64 {
	return b.DriveDigital + b.DriveAnalog + b.Pulse + b.TX + b.RXDigital + b.RXAnalog
}

// Breakdown computes the per-qubit device power split for a configuration.
func Breakdown(cfg QCIConfig) PerQubitBreakdown {
	as := cfg.AnalogScale
	if as == 0 {
		as = 1
	}
	drive := DriveCircuit(cfg.DriveFDM)
	pulse := PulseCircuitCMOS()
	tx := TXCircuit(cfg.ReadoutFDM)
	rx := RXCircuit(cfg.ReadoutFDM, cfg.BinCounter)
	var b PerQubitBreakdown
	b.DriveDigital = drive.DigitalPower(cfg.Node, cfg.Cond, cfg.ClockHz, cfg.DriveBits) / float64(cfg.DriveFDM)
	b.DriveAnalog = drive.AnalogW * as / float64(cfg.DriveFDM)
	b.Pulse = pulse.DigitalPower(cfg.Node, cfg.Cond, cfg.ClockHz, 14) + pulse.AnalogW*as
	b.TX = (tx.DigitalPower(cfg.Node, cfg.Cond, cfg.ClockHz, 14) + tx.AnalogW*as) / float64(cfg.ReadoutFDM)
	b.RXDigital = rx.DigitalPower(cfg.Node, cfg.Cond, cfg.ClockHz, 14) / float64(cfg.ReadoutFDM)
	b.RXAnalog = rx.AnalogW * as / float64(cfg.ReadoutFDM)
	logger.Debug("per-qubit power breakdown",
		"node", cfg.Node.Name, "total_w", b.Total(),
		"drive_digital_w", b.DriveDigital, "rx_digital_w", b.RXDigital)
	return b
}
