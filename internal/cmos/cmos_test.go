package cmos

import (
	"math"
	"testing"
)

func TestBaselineBreakdownShares(t *testing.T) {
	// Section 6.3.1: RX digital 54.7% and drive digital 13.3% of the
	// baseline per-qubit 4 K device power.
	b := Breakdown(Baseline14nm())
	tot := b.Total()
	if tot < 1.9e-3 || tot > 2.5e-3 {
		t.Fatalf("baseline per-qubit power %.3g W, want ~2.16 mW", tot)
	}
	if share := b.RXDigital / tot; share < 0.50 || share > 0.60 {
		t.Fatalf("RX digital share %.3f, want ~0.547", share)
	}
	if share := b.DriveDigital / tot; share < 0.10 || share > 0.17 {
		t.Fatalf("drive digital share %.3f, want ~0.133", share)
	}
}

func TestBaselineQubitLimit(t *testing.T) {
	// Fig. 13(a): the baseline 4 K CMOS QCI supports <700 qubits under the
	// 1.5 W budget from device power alone.
	b := Breakdown(Baseline14nm())
	n := int(1.5 / b.Total())
	if n < 580 || n >= 700 {
		t.Fatalf("baseline device-power qubit limit %d, want <700 (~675)", n)
	}
}

func TestOpt1BinCounterRemoval(t *testing.T) {
	base := Breakdown(Baseline14nm())
	cfg := Baseline14nm()
	cfg.BinCounter = false
	opt := Breakdown(cfg)
	rxRed := 1 - opt.RXDigital/base.RXDigital
	totRed := 1 - opt.Total()/base.Total()
	if rxRed < 0.84 || rxRed > 0.92 {
		t.Fatalf("Opt-#1 RX reduction %.3f, want ~0.884", rxRed)
	}
	if totRed < 0.42 || totRed > 0.53 {
		t.Fatalf("Opt-#1 total reduction %.3f, want ~0.483", totRed)
	}
}

func TestOpt2DrivePrecision(t *testing.T) {
	cfg := Baseline14nm()
	cfg.BinCounter = false
	base := Breakdown(cfg)
	cfg.DriveBits = 6
	opt := Breakdown(cfg)
	dRed := 1 - opt.DriveDigital/base.DriveDigital
	if dRed < 0.27 || dRed > 0.36 {
		t.Fatalf("Opt-#2 drive digital reduction %.3f, want ~0.309", dRed)
	}
}

func TestOptimizedReachesNearTermTarget(t *testing.T) {
	// Fig. 13(a): Opt-#1+#2 lift the 4 K CMOS QCI to ~1,399 qubits.
	b := Breakdown(Optimized14nm())
	n := int(1.5 / b.Total())
	if n < 1250 || n > 1550 {
		t.Fatalf("optimized qubit limit %d, want ~1,399 (>1,152 near-term target)", n)
	}
	if n < 1152 {
		t.Fatal("must reach the 1,152-qubit near-term target")
	}
}

func TestAdvancedScaling(t *testing.T) {
	// Section 6.4.1: technology (4.15x) + voltage (16x) scaling → ~66x lower
	// device power.
	opt := Breakdown(Optimized14nm()).Total()
	adv := Breakdown(Advanced7nm()).Total()
	ratio := opt / adv
	if ratio < 55 || ratio > 75 {
		t.Fatalf("advanced scaling ratio %.1f, want ~66 (4.15 x 16)", ratio)
	}
}

func TestVoltageScalingQuadratic(t *testing.T) {
	cfg := Baseline14nm()
	cfg.AnalogScale = 1e-9 // isolate digital
	base := Breakdown(cfg).Total()
	cfg.Cond.VddScale = 0.5
	half := Breakdown(cfg).Total()
	if math.Abs(base/half-4) > 0.01 {
		t.Fatalf("Vdd/2 should quarter digital power, got ratio %.3f", base/half)
	}
}

func TestNodeScalingOrdering(t *testing.T) {
	if !(Node45.DynScale > Node22.DynScale && Node22.DynScale > Node14.DynScale && Node14.DynScale > Node7.DynScale) {
		t.Fatal("node power scaling must be monotonic")
	}
	if math.Abs(Node14.DynScale/Node7.DynScale-4.15) > 0.01 {
		t.Fatal("7 nm node must encode the 4.15x scaling from 14 nm")
	}
}

func TestStaticPowerByTemperature(t *testing.T) {
	comp := Component{Name: "x", Gates: 1000, Activity: 0.2}
	s300, d300 := comp.Power(Node22, Room300K(), 2.5e9, 14)
	if s300 <= 0 || math.Abs(s300-0.30*d300) > 1e-12 {
		t.Fatalf("300 K static should be 30%% of dynamic, got %v vs %v", s300, d300)
	}
	s4, _ := comp.Power(Node22, Cryo4K(), 2.5e9, 14)
	if s4 != 0 {
		t.Fatal("power-gated 4 K static should be zero (leakage collapse)")
	}
}

func TestBitScalingOnlyWhereMarked(t *testing.T) {
	bitful := Component{Name: "a", Gates: 1000, Activity: 0.2, BitScaling: true}
	bitless := Component{Name: "b", Gates: 1000, Activity: 0.2}
	_, d14 := bitful.Power(Node14, Cryo4K(), 2.5e9, 14)
	_, d6 := bitful.Power(Node14, Cryo4K(), 2.5e9, 6)
	if d6 >= d14 {
		t.Fatal("bit-scaled component must shrink with fewer bits")
	}
	_, e14 := bitless.Power(Node14, Cryo4K(), 2.5e9, 14)
	_, e6 := bitless.Power(Node14, Cryo4K(), 2.5e9, 6)
	if e14 != e6 {
		t.Fatal("unscaled component must ignore bit width")
	}
}

func TestFDMReductionRaisesPerQubitDrivePower(t *testing.T) {
	// Opt-#7 context: FDM 32→20 means fewer qubits amortise each circuit.
	cfg := Optimized14nm()
	b32 := Breakdown(cfg)
	cfg.DriveFDM = 20
	b20 := Breakdown(cfg)
	if b20.DriveDigital+b20.DriveAnalog <= b32.DriveDigital+b32.DriveAnalog {
		t.Fatal("lower FDM should raise per-qubit drive power")
	}
	// But the polar modulator is per-circuit, so the increase is sub-linear.
	if r := b20.DriveDigital / b32.DriveDigital; r > 32.0/20.0+1e-9 {
		t.Fatalf("drive digital growth %.3f should not exceed 32/20", r)
	}
}

func TestClockMeetsHorseRidge(t *testing.T) {
	// Our model takes 2.5 GHz as the synthesis objective; every node we use
	// must close timing there.
	for _, n := range []Node{Node22, Node14, Node7} {
		if n.FMaxHz < 2.5e9 {
			t.Fatalf("%s cannot reach the 2.5 GHz Horse Ridge clock", n.Name)
		}
	}
}

func TestAdvancedDevicePowerBand(t *testing.T) {
	// The advanced design must land near 16 µW/qubit so that wire power
	// dominates (Fig. 18(a): wire ≈ 81%).
	tot := Breakdown(Advanced7nm()).Total()
	if tot < 10e-6 || tot > 25e-6 {
		t.Fatalf("advanced per-qubit device power %.3g W, want ~16 µW", tot)
	}
}
