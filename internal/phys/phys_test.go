package phys

import (
	"math"
	"testing"
)

func TestDefaultTransmonTable2(t *testing.T) {
	q := DefaultTransmon()
	if q.T1 != 122e-6 || q.T2 != 118e-6 {
		t.Fatalf("T1/T2 = %v/%v, want Table 2 values 122us/118us", q.T1, q.T2)
	}
	if q.AnharmonicityHz >= 0 {
		t.Fatal("transmon anharmonicity must be negative")
	}
	if got := q.Omega(); math.Abs(got-2*math.Pi*q.FreqHz) > 1 {
		t.Fatalf("Omega = %v", got)
	}
}

func TestCMOSOperationSpecs(t *testing.T) {
	s := CMOSOperationSpecs()
	if s.OneQ.Latency != 25e-9 || s.TwoQ.Latency != 50e-9 || s.Readout.Latency != 517e-9 {
		t.Fatal("CMOS latencies do not match Table 2")
	}
	if s.OneQ.Error != 8.17e-7 || s.TwoQ.Error != 7.8e-4 || s.Readout.Error != 1.00e-3 {
		t.Fatal("CMOS errors do not match Table 2")
	}
}

func TestSFQReadoutSpec(t *testing.T) {
	_, ro := SFQOperationSpecs()
	total := ro.TotalLatency()
	want := 578.2e-9 + 12.8e-9 + 4e-9 + 70e-9 // 665 ns
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("SFQ readout latency = %v, want %v", total, want)
	}
	if e := ro.TotalError(); e < 7.8e-3 || e > 1.6e-2 {
		t.Fatalf("SFQ readout total error = %v, outside plausible Table 2 band", e)
	}
}

func TestSFQOperationSpecs(t *testing.T) {
	s, _ := SFQOperationSpecs()
	if s.OneQ.Error != 1.18e-4 || s.TwoQ.Error != 1.09e-3 {
		t.Fatal("SFQ gate errors do not match Table 2")
	}
}

func TestResonatorDerived(t *testing.T) {
	r := DefaultResonator()
	if r.RingUpTime() <= 0 {
		t.Fatal("ring-up time must be positive")
	}
	// ~2/kappa with kappa = 2π·2.7e6 → ~118 ns.
	if r.RingUpTime() > 200e-9 || r.RingUpTime() < 50e-9 {
		t.Fatalf("ring-up time %v ns implausible", r.RingUpTime()*1e9)
	}
}

func TestDefaultClocks(t *testing.T) {
	c := DefaultClocks()
	if c.CMOS4KHz != 2.5e9 || c.SFQHz != 24e9 || c.SFQBoostHz != 48e9 {
		t.Fatal("clock defaults do not match Table 2 / Opt-#8")
	}
	if c.SFQBoostHz != 2*c.SFQHz {
		t.Fatal("Opt-#8 boost should double the SFQ clock")
	}
}

func TestJPMProbabilitiesConsistent(t *testing.T) {
	j := DefaultJPM()
	if j.BrightTunnelProb <= j.DarkTunnelProb {
		t.Fatal("bright-state tunnelling must dominate dark counts")
	}
	// Symmetric error: miss + dark ≈ 2·(1-bright) with our defaults.
	miss := 1 - j.BrightTunnelProb
	if math.Abs(miss-j.DarkTunnelProb) > 1e-9 {
		t.Fatalf("default JPM should be symmetric: miss=%v dark=%v", miss, j.DarkTunnelProb)
	}
}
