package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFluxCurveSweetSpot(t *testing.T) {
	f := DefaultFluxTunable()
	if got := f.FreqAt(0); math.Abs(got-f.FMaxHz) > 1 {
		t.Fatalf("sweet-spot frequency %v, want %v", got, f.FMaxHz)
	}
	// Half a flux quantum kills the frequency.
	if got := f.FreqAt(0.5); got > 1e6 {
		t.Fatalf("f(Φ0/2) = %v, want ~0", got)
	}
}

func TestFluxForInvertsFreqAt(t *testing.T) {
	f := DefaultFluxTunable()
	for _, det := range []float64{50e6, 300e6, 800e6, 2e9} {
		phi := f.FluxFor(det)
		if math.IsNaN(phi) {
			t.Fatalf("detuning %v should be reachable", det)
		}
		back := f.FMaxHz - f.FreqAt(phi)
		if math.Abs(back-det) > 1 {
			t.Fatalf("detuning %v maps to flux %v which detunes %v", det, phi, back)
		}
	}
}

func TestFluxForOutOfRange(t *testing.T) {
	f := DefaultFluxTunable()
	if !math.IsNaN(f.FluxFor(-1e6)) || !math.IsNaN(f.FluxFor(6e9)) {
		t.Fatal("out-of-range detunings must return NaN")
	}
}

func TestCZOperatingPointVoltage(t *testing.T) {
	// The CZ interaction point of the gate-error model sits 500 MHz below
	// the sweet spot (idle 800 MHz − resonance 300 MHz): the DAC voltage
	// must be finite and modest.
	f := DefaultFluxTunable()
	v := f.VoltageFor(500e6)
	if math.IsNaN(v) || v <= 0 || v > 1 {
		t.Fatalf("CZ flux-pulse voltage %v V implausible", v)
	}
}

func TestSensitivityGrowsAwayFromSweetSpot(t *testing.T) {
	f := DefaultFluxTunable()
	if s0 := f.Sensitivity(0); s0 != 0 {
		t.Fatalf("sweet-spot sensitivity %v, want 0", s0)
	}
	s1 := f.Sensitivity(0.1)
	s2 := f.Sensitivity(0.3)
	if !(s2 > s1 && s1 > 0) {
		t.Fatal("flux sensitivity must grow away from the sweet spot")
	}
	// Dephasing scales with it.
	if f.DephasingScale(0.3, 1e-6) <= f.DephasingScale(0.1, 1e-6) {
		t.Fatal("dephasing scale must follow sensitivity")
	}
}

func TestQuickFreqMonotoneOnBranch(t *testing.T) {
	f := DefaultFluxTunable()
	q := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 0.49))
		y := math.Abs(math.Mod(b, 0.49))
		if x > y {
			x, y = y, x
		}
		return f.FreqAt(x) >= f.FreqAt(y)-1e-6
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
