package phys

import "math"

// FluxTunable models the frequency-vs-flux curve of a flux-tunable
// (symmetric-SQUID) transmon:
//
//	f(Φ) = f_max · √|cos(πΦ/Φ0)|
//
// The CZ pulse circuit detunes a qubit by driving its flux line; this model
// converts the detunings the gate-error models work with into the flux (and
// hence DAC amplitude) the pulse circuit must deliver.
type FluxTunable struct {
	// FMaxHz is the sweet-spot (zero-flux) frequency.
	FMaxHz float64
	// FluxPerVolt converts pulse-DAC output voltage to flux in units of Φ0
	// (mutual-inductance coupling of the flux line).
	FluxPerVolt float64
}

// DefaultFluxTunable returns a 5 GHz sweet-spot transmon with a typical
// flux-line coupling.
func DefaultFluxTunable() FluxTunable {
	return FluxTunable{FMaxHz: 5.0e9, FluxPerVolt: 0.5}
}

// FreqAt returns f(Φ) for flux in units of Φ0.
func (f FluxTunable) FreqAt(fluxPhi0 float64) float64 {
	return f.FMaxHz * math.Sqrt(math.Abs(math.Cos(math.Pi*fluxPhi0)))
}

// FluxFor returns the (smallest non-negative) flux in Φ0 units that detunes
// the qubit DOWN by detuneHz from the sweet spot. Detunings beyond the
// tuning range return NaN.
func (f FluxTunable) FluxFor(detuneHz float64) float64 {
	target := f.FMaxHz - detuneHz
	if target > f.FMaxHz || target < 0 {
		return math.NaN()
	}
	// cos(πΦ) = (target/fmax)²
	c := (target / f.FMaxHz) * (target / f.FMaxHz)
	return math.Acos(c) / math.Pi
}

// VoltageFor converts a downward detuning to the pulse-DAC voltage.
func (f FluxTunable) VoltageFor(detuneHz float64) float64 {
	return f.FluxFor(detuneHz) / f.FluxPerVolt
}

// Sensitivity returns |df/dΦ| (Hz per Φ0) at a flux point — the flux-noise
// susceptibility, which vanishes at the sweet spot and grows toward the CZ
// interaction point (why detuned qubits dephase faster).
func (f FluxTunable) Sensitivity(fluxPhi0 float64) float64 {
	c := math.Cos(math.Pi * fluxPhi0)
	if c == 0 {
		return math.Inf(1)
	}
	s := math.Sin(math.Pi * fluxPhi0)
	return math.Abs(f.FMaxHz * math.Pi * s / (2 * math.Sqrt(math.Abs(c))))
}

// DephasingScale returns the relative T2-degradation factor at a flux point
// versus the sweet spot, for a given 1/f flux-noise amplitude (in Φ0):
// Γφ ∝ sensitivity × noise.
func (f FluxTunable) DephasingScale(fluxPhi0, noisePhi0 float64) float64 {
	return f.Sensitivity(fluxPhi0) * noisePhi0
}
