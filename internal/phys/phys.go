// Package phys defines the physical parameter sets QIsim's models consume:
// transmon qubits, readout resonators, Josephson photomultipliers (JPMs), and
// the operation specifications of Table 2 of the paper. All frequencies are
// angular unless suffixed Hz; all times are in seconds.
package phys

import "math"

// Physical constants.
const (
	// Phi0 is the magnetic flux quantum in Wb, the SFQ information carrier.
	Phi0 = 2.067833848e-15
	// BoltzmannK in J/K.
	BoltzmannK = 1.380649e-23
	// PlanckH in J·s.
	PlanckH = 6.62607015e-34
)

// Transmon describes a flux-tunable transmon qubit.
type Transmon struct {
	// FreqHz is the |0>→|1> transition frequency.
	FreqHz float64
	// AnharmonicityHz is f12 - f01 (negative for transmons).
	AnharmonicityHz float64
	// T1 and T2 are relaxation and dephasing times in seconds.
	T1, T2 float64
}

// Omega returns the angular qubit frequency.
func (t Transmon) Omega() float64 { return 2 * math.Pi * t.FreqHz }

// Alpha returns the angular anharmonicity.
func (t Transmon) Alpha() float64 { return 2 * math.Pi * t.AnharmonicityHz }

// DefaultTransmon returns the flux-tunable transmon used throughout the
// scalability analysis. T1/T2 follow Table 2 (ibm_mumbai, 2022-11-03).
func DefaultTransmon() Transmon {
	return Transmon{
		FreqHz:          5.0e9,
		AnharmonicityHz: -330e6,
		T1:              122e-6,
		T2:              118e-6,
	}
}

// Resonator describes a readout resonator dispersively coupled to a qubit.
type Resonator struct {
	// FreqHz is the bare resonator frequency.
	FreqHz float64
	// KappaHz is the linewidth (photon decay rate) in Hz.
	KappaHz float64
	// ChiHz is the dispersive shift in Hz (state-dependent pull is ±Chi).
	ChiHz float64
}

// Omega returns the angular resonator frequency.
func (r Resonator) Omega() float64 { return 2 * math.Pi * r.FreqHz }

// Kappa returns the angular linewidth.
func (r Resonator) Kappa() float64 { return 2 * math.Pi * r.KappaHz }

// Chi returns the angular dispersive shift.
func (r Resonator) Chi() float64 { return 2 * math.Pi * r.ChiHz }

// RingUpTime returns the ~2/κ time for the resonator field to reach its
// steady state, which bounds how early readout samples are informative.
func (r Resonator) RingUpTime() float64 { return 2 / r.Kappa() }

// DefaultResonator returns readout-resonator parameters consistent with the
// 517 ns readout of Table 2.
func DefaultResonator() Resonator {
	return Resonator{
		FreqHz:  6.8e9,
		KappaHz: 2.7e6,
		ChiHz:   1.5e6,
	}
}

// JPM describes a Josephson photomultiplier used by the SFQ readout path.
type JPM struct {
	// FreqHz is the JPM plasma frequency when biased for tunnelling.
	FreqHz float64
	// BrightTunnelProb is the probability the JPM tunnels when the coupled
	// resonator holds the bright (qubit |1>) coherent state.
	BrightTunnelProb float64
	// DarkTunnelProb is the dark-count probability for the qubit |0> state.
	DarkTunnelProb float64
	// ResetTime is the flux-off reset duration in seconds (Table 2: 70 ns).
	ResetTime float64
	// ResetError is the residual error of the reset stage (from the CMOS
	// microwave-photon-counter experiment the paper adopts).
	ResetError float64
}

// DefaultJPM returns JPM parameters tuned so the full SFQ readout error lands
// at the Table 2 value (resonator driving + tunnelling 7.8e-3, readout 0,
// reset 7.0e-3 folded into the reference comparisons).
func DefaultJPM() JPM {
	return JPM{
		FreqHz:           6.8e9,
		BrightTunnelProb: 0.9961,
		DarkTunnelProb:   0.0039,
		ResetTime:        70e-9,
		ResetError:       0.0,
	}
}

// OpSpec gives the latency and intrinsic (decoherence-free) error of one
// quantum operation category, following Table 2.
type OpSpec struct {
	Error   float64
	Latency float64 // seconds
}

// OperationSpecs bundles the Table 2 quantum-operation specification for one
// technology family.
type OperationSpecs struct {
	OneQ    OpSpec
	TwoQ    OpSpec
	Readout OpSpec
}

// CMOSOperationSpecs returns the 300K/4K CMOS column of Table 2.
func CMOSOperationSpecs() OperationSpecs {
	return OperationSpecs{
		OneQ:    OpSpec{Error: 8.17e-7, Latency: 25e-9},
		TwoQ:    OpSpec{Error: 7.8e-4, Latency: 50e-9},
		Readout: OpSpec{Error: 1.00e-3, Latency: 517e-9},
	}
}

// SFQReadoutSpec details the four-stage SFQ readout of Table 2.
type SFQReadoutSpec struct {
	ResonatorDriving OpSpec // 578.2 ns; error shared with tunnelling
	JPMTunneling     OpSpec // 12.8 ns
	JPMReadout       OpSpec // 4 ns, zero observed error
	Reset            OpSpec // 70 ns
}

// TotalLatency returns the end-to-end latency of one unshared SFQ readout.
func (s SFQReadoutSpec) TotalLatency() float64 {
	return s.ResonatorDriving.Latency + s.JPMTunneling.Latency + s.JPMReadout.Latency + s.Reset.Latency
}

// TotalError returns the combined readout error across stages.
func (s SFQReadoutSpec) TotalError() float64 {
	e := 1.0
	for _, st := range []OpSpec{s.ResonatorDriving, s.JPMTunneling, s.JPMReadout, s.Reset} {
		e *= 1 - st.Error
	}
	return 1 - e
}

// SFQOperationSpecs returns the SFQ column of Table 2 plus the staged readout.
func SFQOperationSpecs() (OperationSpecs, SFQReadoutSpec) {
	ro := SFQReadoutSpec{
		// Table 2 attributes 7.8e-3 to driving+tunnelling jointly; we put it
		// on the driving stage and keep tunnelling at zero extra error.
		ResonatorDriving: OpSpec{Error: 7.8e-3, Latency: 578.2e-9},
		JPMTunneling:     OpSpec{Error: 0, Latency: 12.8e-9},
		JPMReadout:       OpSpec{Error: 0, Latency: 4e-9},
		Reset:            OpSpec{Error: 7.0e-3, Latency: 70e-9},
	}
	return OperationSpecs{
		OneQ:    OpSpec{Error: 1.18e-4, Latency: 25e-9},
		TwoQ:    OpSpec{Error: 1.09e-3, Latency: 50e-9},
		Readout: OpSpec{Error: ro.TotalError(), Latency: ro.TotalLatency()},
	}, ro
}

// ClockFreqs gives the Table 2 controller clock frequencies.
type ClockFreqs struct {
	CMOS4KHz float64
	SFQHz    float64
	// SFQBoostHz is the maximum SFQ frequency used by Opt-#8 fast driving.
	SFQBoostHz float64
}

// DefaultClocks returns 2.5 GHz (4K CMOS), 24 GHz (SFQ) and the 48 GHz
// selective boost of Opt-#8.
func DefaultClocks() ClockFreqs {
	return ClockFreqs{CMOS4KHz: 2.5e9, SFQHz: 24e9, SFQBoostHz: 48e9}
}
