package verilog

import (
	"strings"
	"testing"
)

func TestGenerateQCIBundleChecks(t *testing.T) {
	for _, cfg := range []struct {
		fdm, phase, amp, iq int
		bin                 bool
	}{
		{32, 24, 14, 7, true},
		{32, 24, 6, 7, false}, // the Opt-#1/#2 variant
		{20, 24, 6, 7, false}, // the Opt-#7 FDM
		{8, 16, 8, 5, true},
	} {
		mods := GenerateQCI(cfg.fdm, cfg.phase, cfg.amp, cfg.iq, cfg.bin)
		if err := CheckBundle(mods); err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
	}
}

func TestNCOHasVirtualRzDatapath(t *testing.T) {
	m := NCO(24, 14)
	for _, sig := range []string{"rz_mode", "rz_angle", "zcorr_valid", "zcorr_angle", "phase_acc"} {
		if !strings.Contains(m.Source, sig) {
			t.Fatalf("NCO missing the %q path (Fig. 4(b))", sig)
		}
	}
}

func TestPulseCircuitHasAWGWalker(t *testing.T) {
	m := PulseCircuit(14, 10, 64)
	for _, sig := range []string{"amp_mem", "len_mem", "addr_cnt", "len_cnt", "cz_target"} {
		if !strings.Contains(m.Source, sig) {
			t.Fatalf("pulse circuit missing %q (Fig. 4(c))", sig)
		}
	}
}

func TestDecisionUnitVariants(t *testing.T) {
	bin := DecisionUnit(7, true)
	if !strings.Contains(bin.Source, "bin_mem") {
		t.Fatal("bin-counting unit must have the bin memory")
	}
	stream := DecisionUnit(7, false)
	if strings.Contains(stream.Source, "bin_mem") {
		t.Fatal("Opt-#1 unit must not have a bin memory")
	}
	if !strings.Contains(stream.Source, "diff_cnt") {
		t.Fatal("Opt-#1 unit needs its 32-bit counter")
	}
}

func TestControlDataBufferShape(t *testing.T) {
	m := ControlDataBuffer(29)
	for _, sig := range []string{"shift_reg", "ndro_reg", "valid", "go"} {
		if !strings.Contains(m.Source, sig) {
			t.Fatalf("SFQ buffer missing %q (Fig. 5(b))", sig)
		}
	}
}

func TestCheckerCatchesImbalance(t *testing.T) {
	bad := Module{Name: "bad", Source: "module bad (input wire a);\nalways @(posedge a) begin\nendmodule\n"}
	if err := CheckModule(bad, nil); err == nil {
		t.Fatal("unbalanced begin must be rejected")
	}
}

func TestCheckerCatchesUndeclared(t *testing.T) {
	bad := Module{Name: "bad2", Source: "module bad2 (input wire a, output wire b);\nassign b = a & ghost_wire;\nendmodule\n"}
	if err := CheckModule(bad2Fix(bad), nil); err == nil || !strings.Contains(err.Error(), "ghost_wire") {
		t.Fatalf("undeclared identifier must be reported, got %v", err)
	}
}

func bad2Fix(m Module) Module { return m }

func TestCheckerAcceptsCleanModule(t *testing.T) {
	ok := Module{Name: "ok", Source: `module ok (
  input  wire a,
  output wire b
);
  assign b = ~a;
endmodule
`}
	if err := CheckModule(ok, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerIgnoresComments(t *testing.T) {
	ok := Module{Name: "okc", Source: `module okc (input wire a, output reg b);
  // this comment mentions end and begin and ghost_wire
  always @(posedge a) begin
    b <= ~b;
  end
endmodule
`}
	if err := CheckModule(ok, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 64: 6, 65: 7}
	for n, want := range cases {
		if got := clog2(n); got != want {
			t.Fatalf("clog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDriveTopInstantiatesPerQubitNCOs(t *testing.T) {
	m := DriveTop(32, 24, 14)
	if !strings.Contains(m.Source, "generate") || !strings.Contains(m.Source, "nco_p24_a14") {
		t.Fatal("drive top must generate per-qubit NCO instances")
	}
	if !strings.Contains(m.Source, "NQ      = 32") {
		t.Fatal("drive top must parameterise the FDM degree")
	}
}
