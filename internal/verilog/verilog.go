// Package verilog is QIsim's Verilog code generator (Section 4.1.1): it
// emits the fully parameterised RTL of the QCI digital parts — the extended
// drive-circuit NCO with virtual-Rz and Z-correction (Fig. 4(b)), the
// arbitrary-waveform pulse circuit (Fig. 4(c)), the RX decision units
// (bin-counting and the Opt-#1 memory-less comparator), and the SFQ
// control-data buffer (Fig. 5(b)) — and provides an elaboration checker (the
// stand-in for the paper's IVerilog/Vivado functional validation) that
// verifies module structure, port/identifier consistency, and block balance.
package verilog

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Module is a generated Verilog module with metadata for checking.
type Module struct {
	Name   string
	Source string
}

// clog2 returns ceil(log2(n)) for address widths.
func clog2(n int) int {
	w := 0
	for (1 << w) < n {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// NCO generates the extended drive NCO of Fig. 4(b): a phase accumulator
// clocked at the sample rate, the per-qubit frequency control word, the
// virtual-Rz accumulation path (rz_mode), and the Z-correction input applied
// at end-of-gate.
func NCO(phaseBits, ampBits int) Module {
	name := fmt.Sprintf("nco_p%d_a%d", phaseBits, ampBits)
	var b strings.Builder
	fmt.Fprintf(&b, `// Extended Horse Ridge NCO: virtual Rz + Z correction (QIsim Fig. 4(b))
module %s #(
  parameter PHASE_W = %d,
  parameter AMP_W   = %d
) (
  input  wire                clk,
  input  wire                rst,
  input  wire [PHASE_W-1:0]  freq_word,
  input  wire                gate_active,
  input  wire                rz_mode,
  input  wire [PHASE_W-1:0]  rz_angle,
  input  wire                zcorr_valid,
  input  wire [PHASE_W-1:0]  zcorr_angle,
  input  wire [PHASE_W-1:0]  gate_phase,
  input  wire [AMP_W-1:0]    envelope,
  output reg  [AMP_W-1:0]    i_out,
  output reg  [AMP_W-1:0]    q_out
);
  reg  [PHASE_W-1:0] phase_acc;
  wire [PHASE_W-1:0] phase_sum;
  wire [PHASE_W-1:0] theta;

  assign phase_sum = phase_acc + freq_word;
  assign theta     = phase_acc + gate_phase;

  always @(posedge clk) begin
    if (rst) begin
      phase_acc <= {PHASE_W{1'b0}};
    end else if (rz_mode) begin
      // Virtual Rz: fold the angle into the accumulator, no pulse emitted.
      phase_acc <= phase_acc + rz_angle;
    end else if (zcorr_valid) begin
      // AC-Stark Z correction at end of a neighbour's Rx/Ry gate.
      phase_acc <= phase_acc + zcorr_angle;
    end else if (gate_active) begin
      phase_acc <= phase_sum;
    end
  end

  // Polar modulation: I/Q = envelope * cos/sin(theta) via the shared LUTs.
  wire [AMP_W-1:0] cos_lut_out;
  wire [AMP_W-1:0] sin_lut_out;
  sincos_lut #(.PHASE_W(PHASE_W), .AMP_W(AMP_W)) lut (
    .theta(theta), .cos_out(cos_lut_out), .sin_out(sin_lut_out)
  );

  always @(posedge clk) begin
    if (rst) begin
      i_out <= {AMP_W{1'b0}};
      q_out <= {AMP_W{1'b0}};
    end else begin
      i_out <= gate_active ? (envelope & cos_lut_out) : {AMP_W{1'b0}};
      q_out <= gate_active ? (envelope & sin_lut_out) : {AMP_W{1'b0}};
    end
  end
endmodule
`, name, phaseBits, ampBits)
	return Module{Name: name, Source: b.String()}
}

// SinCosLUT generates the shared sine/cosine lookup table.
func SinCosLUT(phaseBits, ampBits int) Module {
	name := "sincos_lut"
	var b strings.Builder
	fmt.Fprintf(&b, `module %s #(
  parameter PHASE_W = %d,
  parameter AMP_W   = %d
) (
  input  wire [PHASE_W-1:0] theta,
  output wire [AMP_W-1:0]   cos_out,
  output wire [AMP_W-1:0]   sin_out
);
  reg [AMP_W-1:0] cos_rom [0:(1<<8)-1];
  reg [AMP_W-1:0] sin_rom [0:(1<<8)-1];
  wire [7:0] addr;
  assign addr    = theta[PHASE_W-1:PHASE_W-8];
  assign cos_out = cos_rom[addr];
  assign sin_out = sin_rom[addr];
endmodule
`, name, phaseBits, ampBits)
	return Module{Name: name, Source: b.String()}
}

// PulseCircuit generates the new AWG pulse circuit of Fig. 4(c): the
// instruction table walker with amplitude/length pairs for arbitrary
// ramp-up/down waveforms.
func PulseCircuit(ampBits, lenBits, tableDepth int) Module {
	name := fmt.Sprintf("pulse_awg_a%d_l%d", ampBits, lenBits)
	addrW := clog2(tableDepth)
	var b strings.Builder
	fmt.Fprintf(&b, `// QIsim arbitrary ramp-up/down pulse circuit (Fig. 4(c))
module %s #(
  parameter AMP_W  = %d,
  parameter LEN_W  = %d,
  parameter ADDR_W = %d
) (
  input  wire              clk,
  input  wire              rst,
  input  wire              start,
  input  wire [1:0]        cz_target,
  output reg  [AMP_W-1:0]  dac_out,
  output wire              busy
);
  reg [AMP_W-1:0] amp_mem [0:(1<<ADDR_W)-1];
  reg [LEN_W-1:0] len_mem [0:(1<<ADDR_W)-1];
  reg [ADDR_W-1:0] addr_cnt;
  reg [LEN_W-1:0]  len_cnt;
  reg              active;

  assign busy = active;

  always @(posedge clk) begin
    if (rst) begin
      addr_cnt <= {ADDR_W{1'b0}};
      len_cnt  <= {LEN_W{1'b0}};
      active   <= 1'b0;
      dac_out  <= {AMP_W{1'b0}};
    end else if (start) begin
      // cz_target selects the per-neighbour waveform bank's base address.
      addr_cnt <= {cz_target, {(ADDR_W-2){1'b0}}};
      len_cnt  <= {LEN_W{1'b0}};
      active   <= 1'b1;
    end else if (active) begin
      dac_out <= amp_mem[addr_cnt];
      if (len_cnt == len_mem[addr_cnt]) begin
        len_cnt  <= {LEN_W{1'b0}};
        addr_cnt <= addr_cnt + 1'b1;
        if (len_mem[addr_cnt] == {LEN_W{1'b0}}) begin
          active  <= 1'b0;
          dac_out <= {AMP_W{1'b0}};
        end
      end else begin
        len_cnt <= len_cnt + 1'b1;
      end
    end
  end
endmodule
`, name, ampBits, lenBits, addrW)
	return Module{Name: name, Source: b.String()}
}

// DecisionUnit generates the RX state-decision unit: the Horse Ridge II
// bin-counting variant with its per-coordinate memory, or the Opt-#1
// memory-less streaming comparator (a single counter).
func DecisionUnit(iqBits int, binCounter bool) Module {
	if binCounter {
		name := fmt.Sprintf("decision_bin_%db", iqBits)
		var b strings.Builder
		fmt.Fprintf(&b, `// Horse Ridge II bin-counting decision unit (per-qubit %d-bit I/Q memory)
module %s #(
  parameter IQ_W = %d
) (
  input  wire              clk,
  input  wire              rst,
  input  wire              sample_valid,
  input  wire [IQ_W-1:0]   i_sample,
  input  wire [IQ_W-1:0]   q_sample,
  input  wire              finish,
  output reg               state_out
);
  reg [15:0] bin_mem [0:(1<<(2*IQ_W))-1];
  wire [2*IQ_W-1:0] coord;
  assign coord = {i_sample, q_sample};

  reg [31:0] above;
  reg [31:0] below;

  always @(posedge clk) begin
    if (rst) begin
      above <= 32'd0;
      below <= 32'd0;
      state_out <= 1'b0;
    end else if (sample_valid) begin
      // Two memory accesses per cycle: read-modify-write of the bin.
      bin_mem[coord] <= bin_mem[coord] + 16'd1;
    end else if (finish) begin
      // Compare the populations on each side of the discriminating line
      // (accumulated by the sweep logic into above/below).
      state_out <= (above > below);
    end
  end
endmodule
`, iqBits, name, iqBits)
		return Module{Name: name, Source: b.String()}
	}
	name := fmt.Sprintf("decision_streaming_%db", iqBits)
	var b strings.Builder
	fmt.Fprintf(&b, `// Opt-#1 memory-less decision unit: compare each sample against the
// discriminating line on the fly; one 32-bit signed counter replaces the
// 32 KiB bin memory.
module %s #(
  parameter IQ_W = %d
) (
  input  wire              clk,
  input  wire              rst,
  input  wire              sample_valid,
  input  wire [IQ_W-1:0]   i_sample,
  input  wire [IQ_W-1:0]   q_sample,
  input  wire signed [IQ_W:0] line_a,
  input  wire signed [IQ_W:0] line_b,
  input  wire              finish,
  output reg               state_out
);
  reg signed [31:0] diff_cnt;
  wire signed [2*IQ_W+1:0] side;
  assign side = $signed({1'b0, i_sample}) * line_a + $signed({1'b0, q_sample}) * line_b;

  always @(posedge clk) begin
    if (rst) begin
      diff_cnt  <= 32'sd0;
      state_out <= 1'b0;
    end else if (sample_valid) begin
      diff_cnt <= (side >= 0) ? (diff_cnt + 32'sd1) : (diff_cnt - 32'sd1);
    end else if (finish) begin
      state_out <= ~diff_cnt[31];
    end
  end
endmodule
`, name, iqBits)
	return Module{Name: name, Source: b.String()}
}

// ControlDataBuffer generates the SFQ control-data buffer of Fig. 5(b) as
// behavioural Verilog: valid-clocked shift registers feeding an NDRO
// (non-destructive read-out) register broadcast every cycle.
func ControlDataBuffer(bits int) Module {
	name := fmt.Sprintf("sfq_cdb_%db", bits)
	var b strings.Builder
	fmt.Fprintf(&b, `// SFQ control-data buffer (Fig. 5(b)): shift registers collect the next
// instruction on 'valid'; NDRO latches on 'go' and broadcasts every cycle.
module %s #(
  parameter W = %d
) (
  input  wire         clk,
  input  wire         rst,
  input  wire         valid,
  input  wire         bit_in,
  input  wire         go,
  output wire [W-1:0] instr_out
);
  reg [W-1:0] shift_reg;
  reg [W-1:0] ndro_reg;

  always @(posedge clk) begin
    if (rst) begin
      shift_reg <= {W{1'b0}};
      ndro_reg  <= {W{1'b0}};
    end else begin
      if (valid) begin
        shift_reg <= {shift_reg[W-2:0], bit_in};
      end
      if (go) begin
        ndro_reg <= shift_reg;
      end
    end
  end
  assign instr_out = ndro_reg;
endmodule
`, name, bits)
	return Module{Name: name, Source: b.String()}
}

// DriveTop generates the drive-circuit top level instantiating per-qubit
// NCOs — the "fully parameterized" composition the circuit synthesizer
// consumes.
func DriveTop(fdm, phaseBits, ampBits int) Module {
	name := fmt.Sprintf("drive_top_q%d", fdm)
	var b strings.Builder
	fmt.Fprintf(&b, `module %s #(
  parameter NQ      = %d,
  parameter PHASE_W = %d,
  parameter AMP_W   = %d
) (
  input  wire                    clk,
  input  wire                    rst,
  input  wire [NQ*PHASE_W-1:0]   freq_words,
  input  wire [NQ-1:0]           gate_active,
  input  wire [NQ-1:0]           rz_mode,
  input  wire [NQ*PHASE_W-1:0]   rz_angles,
  input  wire [AMP_W-1:0]        envelope,
  output wire [NQ*AMP_W-1:0]     i_bus,
  output wire [NQ*AMP_W-1:0]     q_bus
);
  genvar g;
  generate
    for (g = 0; g < NQ; g = g + 1) begin : qubit
      nco_p%d_a%d nco_i (
        .clk(clk),
        .rst(rst),
        .freq_word(freq_words[(g+1)*PHASE_W-1:g*PHASE_W]),
        .gate_active(gate_active[g]),
        .rz_mode(rz_mode[g]),
        .rz_angle(rz_angles[(g+1)*PHASE_W-1:g*PHASE_W]),
        .zcorr_valid(1'b0),
        .zcorr_angle({PHASE_W{1'b0}}),
        .gate_phase({PHASE_W{1'b0}}),
        .envelope(envelope),
        .i_out(i_bus[(g+1)*AMP_W-1:g*AMP_W]),
        .q_out(q_bus[(g+1)*AMP_W-1:g*AMP_W])
      );
    end
  endgenerate
endmodule
`, name, fdm, phaseBits, ampBits, phaseBits, ampBits)
	return Module{Name: name, Source: b.String()}
}

// GenerateQCI emits the full digital-part RTL bundle for a drive FDM degree
// and bit widths, ready for the checker (and, outside this repo, for a real
// synthesis flow).
func GenerateQCI(fdm, phaseBits, ampBits, iqBits int, binCounter bool) []Module {
	return []Module{
		SinCosLUT(phaseBits, ampBits),
		NCO(phaseBits, ampBits),
		DriveTop(fdm, phaseBits, ampBits),
		PulseCircuit(ampBits, 10, 64),
		DecisionUnit(iqBits, binCounter),
		ControlDataBuffer(21 + fdm),
	}
}

// ---- Elaboration checker (IVerilog-substitute functional lint) ----

var (
	identRe    = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_$]*`)
	moduleRe   = regexp.MustCompile(`(?m)^\s*module\s+([A-Za-z_][A-Za-z0-9_]*)`)
	portDeclRe = regexp.MustCompile(`(input|output|inout)\s+(wire\s+|reg\s+)?(signed\s+)?(\[[^\]]+\]\s*)?([A-Za-z_][A-Za-z0-9_]*)`)
	netDeclRe  = regexp.MustCompile(`(?m)^\s*(wire|reg|genvar)\s+(signed\s+)?(\[[^\]]+\]\s*)?([A-Za-z_][A-Za-z0-9_]*)`)
	paramRe    = regexp.MustCompile(`parameter\s+([A-Za-z_][A-Za-z0-9_]*)`)
	keywordRe  = regexp.MustCompile(`^(module|endmodule|input|output|inout|wire|reg|assign|always|posedge|negedge|if|else|begin|end|parameter|generate|endgenerate|genvar|for|signed|case|endcase|default|localparam)$`)
)

// CheckModule performs structural checks on one module's source:
// module/endmodule and begin/end balance, and every used identifier being
// declared (port, wire/reg, parameter, genvar, or instance name).
func CheckModule(m Module, known map[string]bool) error {
	src := regexp.MustCompile(`//[^\n]*`).ReplaceAllString(m.Source, "")
	if c := strings.Count(src, "module ") - strings.Count(src, "endmodule"); c != 0 {
		// note: "endmodule" does not contain "module " (space), so the
		// counts are independent.
		return fmt.Errorf("verilog: %s: module/endmodule imbalance (%+d)", m.Name, c)
	}
	if b, e := countWord(src, "begin"), countWord(src, "end"); b != e {
		return fmt.Errorf("verilog: %s: begin/end imbalance (%d vs %d)", m.Name, b, e)
	}
	if g, eg := countWord(src, "generate"), countWord(src, "endgenerate"); g != eg {
		return fmt.Errorf("verilog: %s: generate imbalance", m.Name)
	}

	declared := map[string]bool{}
	for _, mm := range moduleRe.FindAllStringSubmatch(src, -1) {
		declared[mm[1]] = true
	}
	for _, d := range portDeclRe.FindAllStringSubmatch(src, -1) {
		declared[d[5]] = true
	}
	for _, d := range netDeclRe.FindAllStringSubmatch(src, -1) {
		declared[d[4]] = true
	}
	for _, p := range paramRe.FindAllStringSubmatch(src, -1) {
		declared[p[1]] = true
	}
	// Instance names and labels (x y ( → y is the instance; also block
	// labels after ':').
	instRe := regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(`)
	for _, in := range instRe.FindAllStringSubmatch(src, -1) {
		declared[in[2]] = true
	}
	// Parameterised instances: `type #(...) inst (` — the instance name sits
	// after the closing parenthesis of the parameter list.
	paramInstRe := regexp.MustCompile(`\)\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(`)
	for _, in := range paramInstRe.FindAllStringSubmatch(src, -1) {
		declared[in[1]] = true
	}
	labelRe := regexp.MustCompile(`:\s*([A-Za-z_][A-Za-z0-9_]*)`)
	for _, lb := range labelRe.FindAllStringSubmatch(src, -1) {
		declared[lb[1]] = true
	}

	// Strip port-connection names (.port(...)); comments are already gone.
	clean := regexp.MustCompile(`\.[A-Za-z_][A-Za-z0-9_]*\s*\(`).ReplaceAllString(src, "(")
	for _, id := range identRe.FindAllString(clean, -1) {
		if keywordRe.MatchString(id) || declared[id] || known[id] {
			continue
		}
		if strings.HasPrefix(id, "$") {
			continue
		}
		// Numeric bases like 32'sd0 leave pure-alpha fragments "sd0" etc.
		if regexp.MustCompile(`^[sb]?[dhob][0-9a-fA-F_]+$`).MatchString(id) {
			continue
		}
		return fmt.Errorf("verilog: %s: undeclared identifier %q", m.Name, id)
	}
	return nil
}

// CheckBundle validates a set of modules together: per-module checks plus
// cross-module instance resolution (every instantiated module type exists).
func CheckBundle(mods []Module) error {
	known := map[string]bool{}
	for _, m := range mods {
		known[m.Name] = true
	}
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, m := range mods {
		if err := CheckModule(m, known); err != nil {
			return err
		}
	}
	return nil
}

func countWord(src, w string) int {
	re := regexp.MustCompile(`\b` + w + `\b`)
	return len(re.FindAllString(src, -1))
}
