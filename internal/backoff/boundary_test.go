package backoff

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// Boundary and property tests: every case drives Policy through a seeded
// RNG so a failure reproduces exactly.

func TestCeilingCapSaturation(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 50 * time.Millisecond, Factor: 3}
	sawCap := false
	prev := time.Duration(-1)
	for n := 0; n < 200; n++ {
		c := p.Ceiling(n)
		if c > p.Cap {
			t.Fatalf("Ceiling(%d) = %v exceeds cap %v", n, c, p.Cap)
		}
		if c < prev {
			t.Fatalf("Ceiling(%d) = %v shrank below Ceiling(%d) = %v", n, c, n-1, prev)
		}
		prev = c
		if c == p.Cap {
			sawCap = true
		}
	}
	if !sawCap {
		t.Fatal("ceiling never saturated at the cap")
	}
	// Factor large enough to overflow float64 → still the cap, not Inf/NaN.
	huge := Policy{Base: time.Hour, Cap: time.Hour, Factor: 1e300}
	if got := huge.Ceiling(500); got != time.Hour {
		t.Fatalf("overflowing growth must clamp to cap, got %v", got)
	}
}

func TestZeroAndNegativeFieldsNormalize(t *testing.T) {
	cases := []Policy{
		{},
		{Base: -time.Second},
		{Cap: -time.Minute},
		{Factor: -2},
		{Factor: 0.5}, // sub-1 factor would shrink; must fall back to default
		{Base: -1, Cap: -1, Factor: -1},
	}
	d := Default()
	for i, p := range cases {
		n := p.normalized()
		if n.Base <= 0 || n.Cap <= 0 || n.Factor < 1 {
			t.Fatalf("case %d: normalized to invalid policy %+v", i, n)
		}
		if p.Base <= 0 && n.Base != d.Base {
			t.Fatalf("case %d: base %v, want default %v", i, n.Base, d.Base)
		}
		// Public surface must already be safe without explicit normalization.
		if c := p.Ceiling(3); c <= 0 || c > d.Cap {
			t.Fatalf("case %d: Ceiling(3) = %v out of (0, default cap]", i, c)
		}
	}
}

func TestDelayJitterBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 2000; trial++ {
		p := Policy{
			Base:   time.Duration(1+rng.Intn(1_000_000)) * time.Microsecond,
			Cap:    time.Duration(1+rng.Intn(5_000_000)) * time.Microsecond,
			Factor: 1 + rng.Float64()*4,
		}
		attempt := rng.Intn(64) - 4 // include negatives
		d := p.Delay(attempt, rng.Float64)
		ceil := p.Ceiling(attempt)
		if d < 0 || d > ceil {
			t.Fatalf("trial %d: Delay(%d) = %v outside [0, %v] for %+v",
				trial, attempt, d, ceil, p)
		}
	}
}

func TestDelayJitterCoversRange(t *testing.T) {
	// Full jitter must actually use the whole [0, ceiling] range, not
	// cluster — check the empirical spread over a seeded sample.
	rng := rand.New(rand.NewSource(99))
	p := Policy{Base: time.Second, Cap: time.Second, Factor: 2}
	var lo, hi time.Duration = time.Hour, 0
	for i := 0; i < 1000; i++ {
		d := p.Delay(0, rng.Float64)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo > 100*time.Millisecond || hi < 900*time.Millisecond {
		t.Fatalf("jitter spread [%v, %v] too narrow for a 1s ceiling", lo, hi)
	}
}

func TestRetryHintGetsJitterOnTop(t *testing.T) {
	// The server hint is a floor: the sleep is hint + Delay, never bare
	// hint, so synchronized clients fan out. Measure by timing a retry
	// around a hint with a pinned rnd.
	p := Policy{Base: 40 * time.Millisecond, Cap: 40 * time.Millisecond, Factor: 2}
	transient := errors.New("transient")
	calls := 0
	start := time.Now()
	err := Retry(context.Background(), p, 2, func() float64 { return 1.0 },
		func(context.Context) (bool, time.Duration, error) {
			calls++
			return true, 30 * time.Millisecond, transient
		})
	elapsed := time.Since(start)
	if !errors.Is(err, transient) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Sleep must be ≥ hint (30ms) + full jitter draw (rnd=1 → 40ms) = 70ms.
	if elapsed < 65*time.Millisecond {
		t.Fatalf("hint not jittered: slept only %v, want ≥ 70ms", elapsed)
	}

	// And with rnd pinned to 0 the sleep is the bare hint — the floor.
	start = time.Now()
	calls = 0
	_ = Retry(context.Background(), p, 2, func() float64 { return 0 },
		func(context.Context) (bool, time.Duration, error) {
			calls++
			return true, 30 * time.Millisecond, transient
		})
	elapsed = time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Fatalf("hint floor not honored: slept only %v", elapsed)
	}
}

func TestRetryCancelMidSleep(t *testing.T) {
	// Cancellation during the backoff sleep must end the loop promptly
	// with the last error — not wait the full delay, not call fn again.
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("transient")
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, Policy{Base: time.Hour, Cap: time.Hour, Factor: 2}, 5, nil,
			func(context.Context) (bool, time.Duration, error) {
				calls++
				return true, 0, transient
			})
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt start sleeping
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, transient) {
			t.Fatalf("want last error after cancel, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return after cancel mid-sleep")
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestSleepCancelMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if Sleep(ctx, time.Hour) {
		t.Fatal("Sleep must report false when canceled mid-sleep")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on cancel")
	}
}
