package backoff

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestCeilingGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Ceiling(i); got != w {
			t.Fatalf("Ceiling(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Ceiling(10_000); got != time.Second {
		t.Fatalf("huge attempt must hit the cap, got %v", got)
	}
	if got := p.Ceiling(-3); got != 100*time.Millisecond {
		t.Fatalf("negative attempt clamps to 0, got %v", got)
	}
}

func TestDelayFullJitter(t *testing.T) {
	p := Policy{Base: time.Second, Cap: time.Second, Factor: 2}
	if got := p.Delay(0, func() float64 { return 0 }); got != 0 {
		t.Fatalf("rnd=0 must give zero delay, got %v", got)
	}
	if got := p.Delay(0, func() float64 { return 0.5 }); got != 500*time.Millisecond {
		t.Fatalf("rnd=0.5 must halve the ceiling, got %v", got)
	}
	if got := p.Delay(3, nil); got != time.Second {
		t.Fatalf("nil rnd must return the ceiling, got %v", got)
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got, want := p.Ceiling(0), Default().Base; got != want {
		t.Fatalf("zero policy Ceiling(0) = %v, want default base %v", got, want)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	if _, ok := RetryAfter(resp); ok {
		t.Fatal("absent header must report ok=false")
	}
	resp.Header.Set("Retry-After", "3")
	if d, ok := RetryAfter(resp); !ok || d != 3*time.Second {
		t.Fatalf("delta-seconds form: got (%v, %v)", d, ok)
	}
	resp.Header.Set("Retry-After", "bogus")
	if _, ok := RetryAfter(resp); ok {
		t.Fatal("unparseable header must report ok=false")
	}
	resp.Header.Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := RetryAfter(resp); !ok || d <= 0 || d > 2*time.Second {
		t.Fatalf("HTTP-date form: got (%v, %v)", d, ok)
	}
	if _, ok := RetryAfter(nil); ok {
		t.Fatal("nil response must report ok=false")
	}
}

func TestRetryStopsOnSuccessAndNonRetryable(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond, Factor: 2}
	calls := 0
	err := Retry(context.Background(), p, 5, nil, func(context.Context) (bool, time.Duration, error) {
		calls++
		if calls < 3 {
			return true, 0, errors.New("transient")
		}
		return false, 0, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success after 3 calls, got err=%v calls=%d", err, calls)
	}

	hard := errors.New("hard")
	calls = 0
	err = Retry(context.Background(), p, 5, nil, func(context.Context) (bool, time.Duration, error) {
		calls++
		return false, 0, hard
	})
	if !errors.Is(err, hard) || calls != 1 {
		t.Fatalf("non-retryable must stop immediately: err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond, Factor: 2}
	transient := errors.New("transient")
	calls := 0
	err := Retry(context.Background(), p, 3, nil, func(context.Context) (bool, time.Duration, error) {
		calls++
		return true, 0, transient
	})
	if !errors.Is(err, transient) || calls != 3 {
		t.Fatalf("want last error after 3 attempts, got err=%v calls=%d", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	transient := errors.New("transient")
	calls := 0
	err := Retry(ctx, Policy{Base: time.Hour, Cap: time.Hour, Factor: 2}, 5, nil,
		func(context.Context) (bool, time.Duration, error) {
			calls++
			return true, 0, transient
		})
	if !errors.Is(err, transient) || calls != 1 {
		t.Fatalf("canceled ctx must stop after the first attempt: err=%v calls=%d", err, calls)
	}
}

func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if Sleep(ctx, time.Hour) {
		t.Fatal("Sleep on a canceled context must return false")
	}
	if !Sleep(context.Background(), 0) {
		t.Fatal("zero-duration Sleep on a live context must return true")
	}
}
