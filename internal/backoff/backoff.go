// Package backoff is the shared retry-delay policy of the distributed
// layer: capped exponential backoff with full jitter (the AWS architecture
// blog's "full jitter" variant), used by the coordinator to pace lease
// requeues and by the worker's HTTP client to pace retries against a busy
// or briefly unreachable coordinator. It is also the helper CLI users are
// expected to reach for when a qisimd returns 429 with a Retry-After
// header.
//
// Determinism: Policy.Delay takes the random source as an argument, so
// tests (and the coordinator, which seeds one RNG per dispatch) get
// reproducible jitter sequences; nothing here reads global randomness.
package backoff

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Policy is a capped exponential backoff: attempt n (0-based) draws a delay
// uniformly from [0, min(Cap, Base·Factor^n)] — "full jitter", which
// decorrelates retry storms better than equal or decorrelated jitter for
// the fleet sizes qisimd targets.
type Policy struct {
	// Base is the first attempt's maximum delay (default 100ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 10s).
	Cap time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
}

// Default is the policy the distributed layer uses when a zero Policy is
// supplied.
func Default() Policy {
	return Policy{Base: 100 * time.Millisecond, Cap: 10 * time.Second, Factor: 2}
}

// normalized fills zero fields with the defaults.
func (p Policy) normalized() Policy {
	d := Default()
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Cap <= 0 {
		p.Cap = d.Cap
	}
	if p.Factor < 1 {
		p.Factor = d.Factor
	}
	return p
}

// Ceiling returns attempt n's maximum delay: min(Cap, Base·Factor^n),
// without jitter. Exposed so callers can report "retrying in ≤ d".
func (p Policy) Ceiling(attempt int) time.Duration {
	p = p.normalized()
	if attempt < 0 {
		attempt = 0
	}
	f := float64(p.Base) * math.Pow(p.Factor, float64(attempt))
	if f >= float64(p.Cap) || math.IsInf(f, 1) {
		return p.Cap
	}
	return time.Duration(f)
}

// Delay draws attempt n's full-jitter delay from rnd, a uniform [0,1)
// source (rand.Float64 or a test stub). A nil rnd returns the ceiling
// (deterministic worst case).
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	ceil := p.Ceiling(attempt)
	if rnd == nil {
		return ceil
	}
	return time.Duration(rnd() * float64(ceil))
}

// RetryAfter extracts a 429/503 response's Retry-After header as a
// duration (both the delta-seconds and HTTP-date forms). ok is false when
// the header is absent or unparseable — the caller falls back to its
// Policy.
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	if resp == nil {
		return 0, false
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Sleep waits for d or until ctx is done, whichever comes first, and
// reports whether the full delay elapsed (false = canceled).
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Retry runs fn up to maxAttempts times, sleeping a jittered policy delay
// between attempts. When fn returns a positive server hint (Retry-After),
// the hint is a FLOOR, not the delay: the jittered policy delay is added on
// top, so a fleet of clients all told "retry after 1s" does not reconverge
// into a synchronized storm one second later. fn reports (retryable, hint,
// err): a nil err stops with success, a non-retryable error stops
// immediately, and exhausting the attempts returns the last error. rnd may
// be nil (worst-case delays).
func Retry(ctx context.Context, p Policy, maxAttempts int, rnd func() float64,
	fn func(ctx context.Context) (retryable bool, hint time.Duration, err error)) error {

	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		retryable, hint, err := fn(ctx)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt == maxAttempts-1 {
			return lastErr
		}
		d := p.Delay(attempt, rnd)
		if hint > 0 {
			d = hint + d
		}
		if !Sleep(ctx, d) {
			return lastErr
		}
	}
	return lastErr
}
