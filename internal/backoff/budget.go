package backoff

import (
	"sync"
)

// Budget is a token-bucket retry budget (the Finagle / SRE-book "retry
// budget"): every FIRST attempt deposits Ratio tokens, every retry
// withdraws one whole token, and a retry is only allowed while a token is
// available. The effect is a hard system-wide bound — retries can never
// exceed ~Ratio of first-attempt traffic, so a degraded coordinator sees
// load shrink instead of the N× amplification naive per-request retry
// loops produce. MinReserve keeps a small floor of tokens so low-traffic
// clients (a worker doing one claim at a time) can still retry at all.
//
// The zero value is unusable; build with NewBudget. A nil *Budget is a
// valid "unlimited" budget: Deposit is a no-op and Withdraw always
// allows, so callers thread an optional budget without nil checks.
type Budget struct {
	mu      sync.Mutex
	ratio   float64 // tokens per first attempt
	reserve float64 // floor the bucket refills toward, and its starting level
	cap     float64 // bucket ceiling
	tokens  float64

	allowed int64 // retries granted
	denied  int64 // retries refused
}

// NewBudget builds a retry budget depositing ratio tokens per first
// attempt (ratio <= 0 → 0.1, i.e. retries bounded at ~10% of traffic)
// with a reserve of minReserve tokens (minReserve <= 0 → 10). The bucket
// caps at 10× the reserve so long quiet periods cannot bank an unbounded
// retry burst.
func NewBudget(ratio float64, minReserve int) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if minReserve <= 0 {
		minReserve = 10
	}
	r := float64(minReserve)
	return &Budget{ratio: ratio, reserve: r, cap: 10 * r, tokens: r}
}

// Deposit credits the budget for one first attempt. Call it once per
// logical RPC, not per retry.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// Withdraw spends one token for a retry and reports whether the retry is
// allowed. A false return means the budget is exhausted — the caller must
// surface the last error instead of retrying.
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.allowed++
	return true
}

// Stats reports how many retries the budget has allowed and denied.
func (b *Budget) Stats() (allowed, denied int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowed, b.denied
}

// Tokens returns the current token level (tests and debug endpoints).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
