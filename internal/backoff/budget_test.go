package backoff

import (
	"sync"
	"testing"
)

func TestBudgetStartsWithReserve(t *testing.T) {
	b := NewBudget(0.1, 3)
	for i := 0; i < 3; i++ {
		if !b.Withdraw() {
			t.Fatalf("reserve withdrawal %d denied", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdrawal beyond the reserve must be denied")
	}
	allowed, denied := b.Stats()
	if allowed != 3 || denied != 1 {
		t.Fatalf("stats = (%d, %d), want (3, 1)", allowed, denied)
	}
}

func TestBudgetDepositsRefill(t *testing.T) {
	b := NewBudget(0.5, 1)
	if !b.Withdraw() { // spend the reserve
		t.Fatal("reserve denied")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a retry")
	}
	b.Deposit() // +0.5 → still < 1
	if b.Withdraw() {
		t.Fatal("half a token allowed a retry")
	}
	b.Deposit() // +0.5 → 1 full token
	if !b.Withdraw() {
		t.Fatal("full token denied")
	}
}

func TestBudgetRatioBoundsRetryFraction(t *testing.T) {
	// 1000 first attempts at ratio 0.1 fund at most ~100 retries beyond
	// the starting reserve.
	b := NewBudget(0.1, 10)
	for i := 0; i < 1000; i++ {
		b.Deposit()
	}
	granted := 0
	for b.Withdraw() {
		granted++
		if granted > 1000 {
			t.Fatal("budget never exhausted")
		}
	}
	if granted < 90 || granted > 110+10 {
		t.Fatalf("granted %d retries for 1000 deposits at ratio 0.1", granted)
	}
}

func TestBudgetCapStopsBanking(t *testing.T) {
	// A long quiet period of deposits cannot bank an unbounded burst: the
	// bucket caps at 10× the reserve.
	b := NewBudget(1.0, 5)
	for i := 0; i < 10_000; i++ {
		b.Deposit()
	}
	granted := 0
	for b.Withdraw() {
		granted++
	}
	if granted > 50 {
		t.Fatalf("cap leak: %d retries granted, want ≤ 50", granted)
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := NewBudget(0, 0)
	if b.ratio != 0.1 || b.reserve != 10 {
		t.Fatalf("defaults = ratio %v reserve %v", b.ratio, b.reserve)
	}
	if b.Tokens() != 10 {
		t.Fatalf("starting tokens = %v, want 10", b.Tokens())
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	b.Deposit() // must not panic
	for i := 0; i < 100; i++ {
		if !b.Withdraw() {
			t.Fatal("nil budget denied a retry")
		}
	}
	if a, d := b.Stats(); a != 0 || d != 0 {
		t.Fatalf("nil budget stats = (%d, %d)", a, d)
	}
	if b.Tokens() != 0 {
		t.Fatal("nil budget tokens must read 0")
	}
}

func TestBudgetConcurrentSafety(t *testing.T) {
	b := NewBudget(0.5, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Deposit()
				b.Withdraw()
			}
		}()
	}
	wg.Wait()
	allowed, denied := b.Stats()
	if allowed+denied != 8*500 {
		t.Fatalf("lost withdrawals: allowed %d + denied %d != 4000", allowed, denied)
	}
	// Conservation: tokens never went negative and ≤ cap.
	if tok := b.Tokens(); tok < 0 || tok > b.cap {
		t.Fatalf("tokens %v outside [0, %v]", tok, b.cap)
	}
}
