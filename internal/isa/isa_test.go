package isa

import (
	"math"
	"testing"
)

func TestHorseRidgeDrive42Bits(t *testing.T) {
	// Fig. 18(a): 42 bits per single-qubit operation.
	if got := HorseRidgeDrive().Bits(); got != 42 {
		t.Fatalf("Horse Ridge drive ISA = %d bits, want 42", got)
	}
}

func TestExtendedDriveAddsRzMode(t *testing.T) {
	if got := ExtendedDrive().Bits(); got != 43 {
		t.Fatalf("extended drive ISA = %d bits, want 43 (42 + rz-mode)", got)
	}
}

func TestMaskedDriveCompression(t *testing.T) {
	// Opt-#6 headline: ~93% wire bandwidth reduction for the drive stream.
	c := MaskingCompression(32)
	if c < 0.90 || c > 0.97 {
		t.Fatalf("masked-drive compression %.3f, want ~0.93", c)
	}
	// Per-qubit cost shrinks with group size.
	if MaskedDrive(32).BitsPerQubitOp() >= MaskedDrive(8).BitsPerQubitOp() {
		t.Fatal("larger groups should amortise the shared fields")
	}
}

func TestBandwidthComputation(t *testing.T) {
	tr := ESMTraffic(1e-6)
	bw := Bandwidth(HorseRidgeDrive(), HorseRidgePulse(), HorseRidgeReadout(), tr)
	// 2·42 + 4·48 + 1·34 = 310 bits per µs = 310 Mb/s.
	if math.Abs(bw-310e6) > 1 {
		t.Fatalf("ESM bandwidth %v, want 310 Mb/s", bw)
	}
}

func TestOpt6EndToEndReduction(t *testing.T) {
	// Baseline vs masked ISA triple under the same round time: ~90%+
	// total bandwidth reduction (paper: 93%).
	rt := 1373e-9
	base := BaselineCMOSBandwidth(rt)
	opt := MaskedCMOSBandwidth(rt, 32)
	red := 1 - opt/base
	if red < 0.88 || red > 0.99 {
		t.Fatalf("Opt-#6 total reduction %.3f, want ~0.93", red)
	}
}

func TestSFQBandwidthModest(t *testing.T) {
	// The SFQ broadcast ISA is already compact: well under the Horse Ridge
	// baseline at the same round time.
	rt := 915e-9
	sfq := SFQBandwidth(rt, 8, 8)
	cmos := BaselineCMOSBandwidth(rt)
	if sfq >= cmos/3 {
		t.Fatalf("SFQ bandwidth %.3g should be far below CMOS baseline %.3g", sfq, cmos)
	}
}

func TestSFQDriveSelectWidth(t *testing.T) {
	// 8 lanes need 4 select bits (values 0..8 incl. no-op).
	f := SFQDrive(8, 8)
	if f.Bits() != 21+8*4 {
		t.Fatalf("SFQ drive bits = %d, want 53", f.Bits())
	}
	f1 := SFQDrive(8, 1)
	if f1.Bits() >= f.Bits() {
		t.Fatal("#BS=1 should shrink the per-qubit select")
	}
}

func TestFormatString(t *testing.T) {
	s := HorseRidgeDrive().String()
	if s == "" {
		t.Fatal("empty format description")
	}
}

func TestPulseISAMaskFields(t *testing.T) {
	f := PulseISA(8)
	// 24 + 8 valid + 16 cz-target = 48 bits over 8 qubits = 6 bits/qubit-op.
	if f.Bits() != 48 || math.Abs(f.BitsPerQubitOp()-6) > 1e-12 {
		t.Fatalf("pulse ISA = %d bits (%.1f/qubit), want 48 (6)", f.Bits(), f.BitsPerQubitOp())
	}
}
