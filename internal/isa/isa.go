// Package isa defines the QCI instruction-set encodings of Sections 3.3/3.4
// and the 300 K→4 K bandwidth accounting that drives the wire-power model:
// the Horse Ridge drive ISA (42 bits/op), our extended virtual-Rz/Z-corrected
// variant, the mask-based pulse and SFQ ISAs, and the Opt-#6 FTQC-friendly
// instruction masking that compresses the single-qubit stream by ~93%.
package isa

import "fmt"

// Field is one instruction field.
type Field struct {
	Name string
	Bits int
}

// Format is a named instruction encoding.
type Format struct {
	Name   string
	Fields []Field
	// QubitsPerInstr is how many qubits one instruction addresses (mask
	// formats address a whole group at once).
	QubitsPerInstr int
}

// Bits returns the instruction width.
func (f Format) Bits() int {
	total := 0
	for _, fl := range f.Fields {
		total += fl.Bits
	}
	return total
}

// BitsPerQubitOp returns the effective bits charged per single-qubit
// operation.
func (f Format) BitsPerQubitOp() float64 {
	q := f.QubitsPerInstr
	if q < 1 {
		q = 1
	}
	return float64(f.Bits()) / float64(q)
}

func (f Format) String() string {
	return fmt.Sprintf("%s(%d bits, %d qubits/instr)", f.Name, f.Bits(), f.QubitsPerInstr)
}

// HorseRidgeDrive is the baseline single-qubit drive ISA (42 bits per
// operation: start time, target qubit, gate-table address — Fig. 18(a)).
func HorseRidgeDrive() Format {
	return Format{
		Name: "horse-ridge-drive",
		Fields: []Field{
			{"start-time", 24},
			{"target-qubit", 5},
			{"gate-address", 13},
		},
		QubitsPerInstr: 1,
	}
}

// ExtendedDrive is our Section 3.3.1 extension with the virtual-Rz mode bit
// (the gate-address field doubles as the Rz angle when the mode bit is set).
func ExtendedDrive() Format {
	f := HorseRidgeDrive()
	f.Name = "extended-drive"
	f.Fields = append(f.Fields, Field{"rz-mode", 1})
	return f
}

// MaskedDrive is the Opt-#6 FTQC-friendly ISA: a shared instruction-select
// plus a per-qubit mask over the drive group. With the Ry(π/2)·Rz(nπ/4)
// basis-gate set, lattice-surgery single-qubit layers compress to one
// instruction per group (Fig. 18(b)).
func MaskedDrive(groupSize int) Format {
	return Format{
		Name: "masked-drive",
		Fields: []Field{
			{"instruction-select", 3},
			{"start-time", 24},
			{"per-qubit-mask", groupSize},
		},
		QubitsPerInstr: groupSize,
	}
}

// HorseRidgePulse is the baseline per-qubit CZ pulse ISA (start time,
// length, amplitude — Section 3.3.2 "existing design").
func HorseRidgePulse() Format {
	return Format{
		Name: "horse-ridge-pulse",
		Fields: []Field{
			{"start-time", 24},
			{"length", 10},
			{"amplitude", 14},
		},
		QubitsPerInstr: 1,
	}
}

// HorseRidgeReadout is the baseline per-qubit readout trigger.
func HorseRidgeReadout() Format {
	return Format{
		Name: "horse-ridge-readout",
		Fields: []Field{
			{"start-time", 24},
			{"duration", 10},
		},
		QubitsPerInstr: 1,
	}
}

// PulseISA is the Section 3.3.2 mask-based CZ ISA: per-qubit valid bit plus
// a 2-bit CZ-target (which of the four lattice neighbours), with a shared
// start time.
func PulseISA(groupSize int) Format {
	return Format{
		Name: "pulse",
		Fields: []Field{
			{"start-time", 24},
			{"per-qubit-valid", groupSize},
			{"per-qubit-cz-target", 2 * groupSize},
		},
		QubitsPerInstr: groupSize,
	}
}

// SFQDrive is the DigiQ-style drive ISA: bitstream select (5-bit Ry + 16-bit
// Rz) broadcast to the group plus per-qubit gate-select bits.
func SFQDrive(groupSize, bs int) Format {
	sel := 1
	for (1 << sel) < bs+1 {
		sel++
	}
	return Format{
		Name: "sfq-drive",
		Fields: []Field{
			{"bitstream-select", 21},
			{"per-qubit-gate-select", groupSize * sel},
		},
		QubitsPerInstr: groupSize,
	}
}

// SFQPulse is the Section 3.4.2 SFQ pulse ISA: per-subgroup CZ select plus
// the per-qubit mask.
func SFQPulse(groupSize, subgroups int) Format {
	return Format{
		Name: "sfq-pulse",
		Fields: []Field{
			{"cz-select", 2 * subgroups},
			{"per-qubit-mask", groupSize},
		},
		QubitsPerInstr: groupSize,
	}
}

// ReadoutISA is the TX/RX trigger (start time + duration + enables).
func ReadoutISA(groupSize int) Format {
	return Format{
		Name: "readout",
		Fields: []Field{
			{"start-time", 24},
			{"duration", 10},
			{"per-qubit-enable", groupSize},
		},
		QubitsPerInstr: groupSize,
	}
}

// Traffic summarises an instruction stream's bandwidth demand.
type Traffic struct {
	// OpsPerQubitPerRound counts instruction-issues per qubit per ESM round
	// for each stream.
	DriveOps, PulseOps, ReadoutOps float64
	// RoundTime is the ESM round duration in seconds.
	RoundTime float64
}

// ESMTraffic returns the canonical ESM instruction counts: two single-qubit
// layers, four CZ layers, one readout per round (per the Fig. 1(b) circuit;
// data qubits idle through the drive stream under masking).
func ESMTraffic(roundTime float64) Traffic {
	return Traffic{DriveOps: 2, PulseOps: 4, ReadoutOps: 1, RoundTime: roundTime}
}

// Bandwidth computes the per-qubit 300 K→4 K bandwidth (bits/s) of an ISA
// triple under the given traffic.
func Bandwidth(drive, pulse, readout Format, tr Traffic) float64 {
	bits := tr.DriveOps*drive.BitsPerQubitOp() +
		tr.PulseOps*pulse.BitsPerQubitOp() +
		tr.ReadoutOps*readout.BitsPerQubitOp()
	return bits / tr.RoundTime
}

// MaskingCompression returns the drive-stream compression of Opt-#6 versus
// the Horse Ridge ISA (the paper reports 93%).
func MaskingCompression(groupSize int) float64 {
	base := HorseRidgeDrive().BitsPerQubitOp()
	masked := MaskedDrive(groupSize).BitsPerQubitOp()
	return 1 - masked/base
}

// BaselineCMOSBandwidth returns the per-qubit 300 K→4 K bandwidth of the
// baseline Horse Ridge ISA triple under ESM traffic.
func BaselineCMOSBandwidth(roundTime float64) float64 {
	tr := ESMTraffic(roundTime)
	return Bandwidth(HorseRidgeDrive(), HorseRidgePulse(), HorseRidgeReadout(), tr)
}

// MaskedCMOSBandwidth returns the Opt-#6 bandwidth: masked drive ISA with
// the Ry(π/2)·Rz(nπ/4) basis-gate fusion (each H·Rz pair becomes one drive
// instruction, so drive ops fall 2 → 1 per round), trigger-only pulse
// re-issues (the per-neighbour CZ amplitude/target tables persist in the
// 4 K instruction memories across the repetitive ESM rounds), and a grouped
// readout trigger.
func MaskedCMOSBandwidth(roundTime float64, groupSize int) float64 {
	tr := ESMTraffic(roundTime)
	tr.DriveOps = 1
	trigger := Format{
		Name:           "pulse-trigger",
		Fields:         []Field{{"start-time", 24}, {"table-select", 6}},
		QubitsPerInstr: groupSize,
	}
	return Bandwidth(MaskedDrive(groupSize), trigger, ReadoutISA(groupSize), tr)
}

// SFQBandwidth returns the per-qubit bandwidth of the SFQ ISA triple.
func SFQBandwidth(roundTime float64, groupSize, bs int) float64 {
	tr := ESMTraffic(roundTime)
	return Bandwidth(SFQDrive(groupSize, bs), SFQPulse(groupSize, 4), ReadoutISA(groupSize), tr)
}
