package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDriveEncodeDecodeRoundTrip(t *testing.T) {
	in := DriveInstr{StartTime: 123456, Target: 17, GateAddr: 4095, RzMode: true}
	w, err := EncodeDrive(in)
	if err != nil {
		t.Fatal(err)
	}
	if w.Width != 43 {
		t.Fatalf("extended drive word is %d bits, want 43", w.Width)
	}
	out, err := DecodeDrive(w)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the instruction: %+v vs %+v", out, in)
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	if _, err := EncodeDrive(DriveInstr{Target: 64}); err == nil {
		t.Fatal("5-bit target field must reject 64")
	}
	if _, err := EncodeDrive(DriveInstr{GateAddr: 1 << 13}); err == nil {
		t.Fatal("13-bit gate-address field must reject 2^13")
	}
}

func TestEncoderRejectsWideFormats(t *testing.T) {
	f := Format{Name: "huge", Fields: []Field{{"a", 40}, {"b", 40}}}
	if _, err := NewEncoder(f); err == nil {
		t.Fatal("formats over 64 bits must be rejected")
	}
}

func TestEncoderMissingField(t *testing.T) {
	enc, err := NewEncoder(HorseRidgeDrive())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(map[string]uint64{"start-time": 1}); err == nil {
		t.Fatal("missing fields must be reported")
	}
}

func TestQuickDriveRoundTrip(t *testing.T) {
	f := func(start uint32, target uint8, addr uint16, rz bool) bool {
		in := DriveInstr{
			StartTime: uint64(start) & ((1 << 24) - 1),
			Target:    int(target & 31),
			GateAddr:  uint64(addr) & ((1 << 13) - 1),
			RzMode:    rz,
		}
		w, err := EncodeDrive(in)
		if err != nil {
			return false
		}
		out, err := DecodeDrive(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRzAngleWordResolution(t *testing.T) {
	for _, phi := range []float64{0, math.Pi / 4, math.Pi, 1.234, -0.5, 7.0} {
		w, repr := RzAngleWord(phi)
		if w >= 1<<13 {
			t.Fatalf("angle word %d exceeds 13 bits", w)
		}
		// Representable angle within half a step of the request (mod 2π).
		step := 2 * math.Pi / float64(uint64(1)<<13)
		diff := math.Mod(repr-phi, 2*math.Pi)
		if diff > math.Pi {
			diff -= 2 * math.Pi
		}
		if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		if math.Abs(diff) > step/2+1e-12 {
			t.Fatalf("angle %v quantised to %v (err %v > step/2)", phi, repr, diff)
		}
	}
}

func TestMaskRoundTrip(t *testing.T) {
	qs := []int{0, 3, 7, 31}
	m, err := MaskWord(qs, 32)
	if err != nil {
		t.Fatal(err)
	}
	back := MaskQubits(m, 32)
	if len(back) != len(qs) {
		t.Fatalf("mask round trip %v → %v", qs, back)
	}
	for i := range qs {
		if back[i] != qs[i] {
			t.Fatalf("mask round trip %v → %v", qs, back)
		}
	}
	if _, err := MaskWord([]int{32}, 32); err == nil {
		t.Fatal("out-of-group qubit must be rejected")
	}
	if _, err := MaskWord(nil, 128); err == nil {
		t.Fatal("groups over 64 must be rejected")
	}
}
