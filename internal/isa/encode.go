package isa

import (
	"fmt"
	"math"
)

// Word is a packed instruction as raw bits (LSB-first field order).
type Word struct {
	Bits  uint64
	Width int
}

// Encoder packs field values into instruction words for a Format. Field
// order follows the Format definition; values must fit their widths.
type Encoder struct {
	f Format
}

// NewEncoder returns an encoder for the format (total width ≤ 64 bits).
func NewEncoder(f Format) (*Encoder, error) {
	if f.Bits() > 64 {
		return nil, fmt.Errorf("isa: %s is %d bits; encoder supports ≤ 64", f.Name, f.Bits())
	}
	return &Encoder{f: f}, nil
}

// Encode packs one value per field.
func (e *Encoder) Encode(values map[string]uint64) (Word, error) {
	var w Word
	shift := 0
	for _, fl := range e.f.Fields {
		v, ok := values[fl.Name]
		if !ok {
			return Word{}, fmt.Errorf("isa: missing field %q", fl.Name)
		}
		if fl.Bits < 64 && v >= uint64(1)<<fl.Bits {
			return Word{}, fmt.Errorf("isa: field %q value %d exceeds %d bits", fl.Name, v, fl.Bits)
		}
		w.Bits |= v << shift
		shift += fl.Bits
	}
	w.Width = shift
	return w, nil
}

// Decode unpacks a word back into field values.
func (e *Encoder) Decode(w Word) (map[string]uint64, error) {
	if w.Width != e.f.Bits() {
		return nil, fmt.Errorf("isa: word width %d != format width %d", w.Width, e.f.Bits())
	}
	out := make(map[string]uint64, len(e.f.Fields))
	shift := 0
	for _, fl := range e.f.Fields {
		mask := uint64(math.MaxUint64)
		if fl.Bits < 64 {
			mask = (uint64(1) << fl.Bits) - 1
		}
		out[fl.Name] = (w.Bits >> shift) & mask
		shift += fl.Bits
	}
	return out, nil
}

// DriveInstr is a decoded extended-drive instruction (Section 3.3.1 ISA).
type DriveInstr struct {
	StartTime uint64
	Target    int
	// GateAddr doubles as the Rz angle when RzMode is set (the field-reuse
	// trick of the extended ISA).
	GateAddr uint64
	RzMode   bool
}

// EncodeDrive packs a drive instruction in the extended format.
func EncodeDrive(in DriveInstr) (Word, error) {
	enc, err := NewEncoder(ExtendedDrive())
	if err != nil {
		return Word{}, err
	}
	rz := uint64(0)
	if in.RzMode {
		rz = 1
	}
	return enc.Encode(map[string]uint64{
		"start-time":   in.StartTime,
		"target-qubit": uint64(in.Target),
		"gate-address": in.GateAddr,
		"rz-mode":      rz,
	})
}

// DecodeDrive unpacks an extended-drive word.
func DecodeDrive(w Word) (DriveInstr, error) {
	enc, err := NewEncoder(ExtendedDrive())
	if err != nil {
		return DriveInstr{}, err
	}
	m, err := enc.Decode(w)
	if err != nil {
		return DriveInstr{}, err
	}
	return DriveInstr{
		StartTime: m["start-time"],
		Target:    int(m["target-qubit"]),
		GateAddr:  m["gate-address"],
		RzMode:    m["rz-mode"] == 1,
	}, nil
}

// RzAngleWord quantises an angle to the gate-address field's resolution
// (the 13-bit reuse): returns the word and the representable angle.
func RzAngleWord(phi float64) (uint64, float64) {
	const bits = 13
	steps := float64(uint64(1) << bits)
	turns := phi / (2 * math.Pi)
	turns -= math.Floor(turns)
	w := uint64(math.Round(turns*steps)) % (1 << bits)
	return w, float64(w) / steps * 2 * math.Pi
}

// MaskWord packs a per-qubit mask (Opt-#6 / pulse ISAs).
func MaskWord(qubits []int, groupSize int) (uint64, error) {
	if groupSize > 64 {
		return 0, fmt.Errorf("isa: mask group %d exceeds 64", groupSize)
	}
	var m uint64
	for _, q := range qubits {
		if q < 0 || q >= groupSize {
			return 0, fmt.Errorf("isa: qubit %d outside mask group %d", q, groupSize)
		}
		m |= 1 << uint(q)
	}
	return m, nil
}

// MaskQubits unpacks a mask word.
func MaskQubits(mask uint64, groupSize int) []int {
	var out []int
	for q := 0; q < groupSize; q++ {
		if mask&(1<<uint(q)) != 0 {
			out = append(out, q)
		}
	}
	return out
}
