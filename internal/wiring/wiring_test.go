package wiring

import (
	"math"
	"testing"
)

func TestTable2CoaxLoads(t *testing.T) {
	l := CoaxialCable.Load(Stage100mK)
	if l.PassiveW != 400e-9 || l.ActiveW != 7.9e-9 {
		t.Fatalf("coax 100mK load %+v does not match Table 2", l)
	}
	if CoaxialCable.Load(Stage4K).PassiveW != 1e-3 {
		t.Fatal("coax 4K passive must be 1 mW (Table 2)")
	}
}

func TestPhotonicPDActiveLoad(t *testing.T) {
	l := PhotonicLink.Load(Stage20mK)
	if l.ActiveW != 790e-9 {
		t.Fatal("photodetector active load must be 790 nW at 20 mK")
	}
	// Passive load of fiber is negligible vs coax.
	if l.PassiveW >= CoaxialCable.Load(Stage20mK).PassiveW/100 {
		t.Fatal("fiber passive load should be negligible vs coax")
	}
}

func TestSuperconductingCoax7p4x(t *testing.T) {
	r := CoaxialCable.Load(Stage100mK).PassiveW / SuperconductingCoax.Load(Stage100mK).PassiveW
	if math.Abs(r-7.4) > 1e-9 {
		t.Fatalf("superconducting coax passive ratio %.2f, want 7.4 (Table 2 note)", r)
	}
}

func TestLoadActivityScaling(t *testing.T) {
	l := Load{PassiveW: 100e-9, ActiveW: 10e-9}
	if l.At(0) != 100e-9 {
		t.Fatal("zero activity should leave only passive load")
	}
	if math.Abs(l.At(1)-110e-9) > 1e-18 {
		t.Fatal("full activity should add the whole active load")
	}
	if math.Abs(l.At(0.5)-105e-9) > 1e-18 {
		t.Fatal("active load must scale linearly with duty cycle")
	}
}

func TestMissingStageIsZero(t *testing.T) {
	if SuperconductingMicrostrip.Load(Stage4K) != (Load{}) {
		t.Fatal("a 4K-mK cable places no load at 4K in this model")
	}
}

func TestDataLinkBandwidthProportional(t *testing.T) {
	d := DefaultDataLink()
	p1 := d.PowerAt4K(100e6)
	p2 := d.PowerAt4K(200e6)
	if math.Abs(p2-2*p1) > 1e-15 {
		t.Fatal("data-link power must be proportional to bandwidth")
	}
	if d.PowerAt4K(0) != 0 {
		t.Fatal("zero bandwidth costs nothing")
	}
}

func TestDataLinkCalibration(t *testing.T) {
	// The Fig. 18 calibration: ~226 Mb/s per qubit of Horse Ridge ISA
	// traffic costs ~70 µW — the dominant (81%) share of the advanced
	// design's 4 K power.
	d := DefaultDataLink()
	p := d.PowerAt4K(226e6)
	if p < 55e-6 || p > 85e-6 {
		t.Fatalf("per-qubit wire power %.3g W, want ~70 µW", p)
	}
}

func TestDataLinkCableCount(t *testing.T) {
	d := DefaultDataLink()
	if n := d.Cables(2.5e9); n != 1 {
		t.Fatalf("one full cable expected, got %d", n)
	}
	if n := d.Cables(2.6e9); n != 2 {
		t.Fatalf("spillover should need 2 cables, got %d", n)
	}
	if d.Cables(0) != 0 {
		t.Fatal("no bandwidth, no cables")
	}
}

func TestStageString(t *testing.T) {
	if Stage4K.String() != "4K" || Stage100mK.String() != "100mK" || Stage20mK.String() != "20mK" {
		t.Fatal("stage names changed")
	}
}
