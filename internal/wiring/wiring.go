// Package wiring models the interconnect technologies of Table 2: the
// passive (heat-conduction/attenuation) and active (signal-dissipation) load
// each cable type places on the 4 K, 100 mK and 20 mK stages, and the
// bandwidth-driven power of the 300 K→4 K digital instruction links.
package wiring

// Stage identifies a refrigerator temperature stage.
type Stage int

const (
	Stage4K Stage = iota
	Stage100mK
	Stage20mK
	// Stage70K is the higher-budget stage of the Section 7.3 extension
	// (30 W cooling capacity per Krinner et al.), to which power-hungry
	// components can be offloaded.
	Stage70K
)

func (s Stage) String() string {
	switch s {
	case Stage4K:
		return "4K"
	case Stage100mK:
		return "100mK"
	case Stage20mK:
		return "20mK"
	case Stage70K:
		return "70K"
	default:
		return "?"
	}
}

// Load is a per-cable (passive, active) load in watts; active is at 100%
// activation and scales with the cable's duty cycle.
type Load struct {
	PassiveW float64
	ActiveW  float64
}

// At returns the dissipation at the given activity factor (0..1).
func (l Load) At(activity float64) float64 {
	return l.PassiveW + l.ActiveW*activity
}

// CableType is one interconnect technology of Table 2.
type CableType struct {
	Name  string
	Loads map[Stage]Load
}

// Load returns the per-cable load at a stage (zero if the cable does not
// reach that stage).
func (c CableType) Load(s Stage) Load { return c.Loads[s] }

// The Table 2 wiring rows (per cable, active loads at 100% activation).
var (
	// CoaxialCable is the 300 K-mK stainless coax (COAX SC-086/50-SS-SS).
	CoaxialCable = CableType{
		Name: "coaxial-cable",
		Loads: map[Stage]Load{
			Stage4K:    {PassiveW: 1e-3, ActiveW: 7.9e-6},
			Stage100mK: {PassiveW: 400e-9, ActiveW: 7.9e-9},
			Stage20mK:  {PassiveW: 13e-9, ActiveW: 0.79e-9},
		},
	}
	// Microstrip is the flexible multi-channel cable (DelftCircuits CrioFlex).
	Microstrip = CableType{
		Name: "microstrip",
		Loads: map[Stage]Load{
			Stage4K:    {PassiveW: 315e-6, ActiveW: 7.9e-6},
			Stage100mK: {PassiveW: 210e-9, ActiveW: 7.9e-9},
			Stage20mK:  {PassiveW: 4.3e-9, ActiveW: 0.79e-9},
		},
	}
	// PhotonicLink is the optical fiber with a 20 mK photodetector; the PD's
	// 790 nW active load is the scalability killer of Fig. 12(c).
	PhotonicLink = CableType{
		Name: "photonic-link",
		Loads: map[Stage]Load{
			Stage4K:    {PassiveW: 250e-9},
			Stage100mK: {PassiveW: 0.1e-9},
			Stage20mK:  {PassiveW: 0.003e-9, ActiveW: 790e-9},
		},
	}
	// SuperconductingCoax is the 4 K-mK NbTi coax (COAX SC-033/50-NbTi-CN):
	// 7.4x lower passive load than the 300 K coax at similar attenuation.
	SuperconductingCoax = CableType{
		Name: "superconducting-coax",
		Loads: map[Stage]Load{
			Stage100mK: {PassiveW: 400e-9 / 7.4, ActiveW: 7.9e-9},
			Stage20mK:  {PassiveW: 13e-9 / 7.4, ActiveW: 0.79e-9},
		},
	}
	// SuperconductingMicrostrip is the 4 K flexible Nb microstrip (Tuckerman
	// et al.), the long-term 4 K-mK interconnect.
	SuperconductingMicrostrip = CableType{
		Name: "superconducting-microstrip",
		Loads: map[Stage]Load{
			Stage100mK: {PassiveW: 0.1e-9, ActiveW: 7.9e-9},
			Stage20mK:  {PassiveW: 0.003e-9, ActiveW: 0.79e-9},
		},
	}
	// RoomTempDataMicrostrip is the 300 K→4 K digital instruction link used
	// by the 4 K QCIs (315 µW passive at 4 K per cable).
	RoomTempDataMicrostrip = CableType{
		Name: "data-microstrip",
		Loads: map[Stage]Load{
			Stage4K: {PassiveW: 315e-6, ActiveW: 7.9e-6},
		},
	}
)

// DataLink models the 300 K→4 K instruction stream as a bandwidth cost: the
// per-bit link energy dissipated at 4 K plus a passive share per physical
// cable. Opt-#6's 93% instruction-bandwidth compression attacks exactly this
// term (Fig. 18).
type DataLink struct {
	// EnergyPerBitJ is the 4 K dissipation per transported bit (calibrated
	// to the Fig. 18 wire share: 0.58 pJ/bit for the microstrip link).
	EnergyPerBitJ float64
	// CableCapacityBps is one physical cable's capacity.
	CableCapacityBps float64
	// Cable carries the per-cable passive load.
	Cable CableType
}

// DefaultDataLink returns the calibrated 300 K→4 K microstrip link.
func DefaultDataLink() DataLink {
	return DataLink{
		EnergyPerBitJ:    0.31e-12,
		CableCapacityBps: 2.5e9,
		Cable:            RoomTempDataMicrostrip,
	}
}

// PowerAt4K returns the 4 K wire power of an instruction stream with the
// given aggregate bandwidth (bits/s). EnergyPerBitJ is the all-in per-bit
// 4 K cost (drivers, receivers, and the amortised passive load of the
// multi-channel ribbon), which is how the link stays bandwidth-proportional
// — the property Opt-#6's 93% compression exploits.
func (d DataLink) PowerAt4K(bandwidthBps float64) float64 {
	if bandwidthBps <= 0 {
		return 0
	}
	return bandwidthBps * d.EnergyPerBitJ
}

// Cables returns the physical cable count needed for a bandwidth.
func (d DataLink) Cables(bandwidthBps float64) int {
	if bandwidthBps <= 0 {
		return 0
	}
	n := int(bandwidthBps / d.CableCapacityBps)
	if float64(n)*d.CableCapacityBps < bandwidthBps {
		n++
	}
	return n
}
