package readout

import (
	"testing"

	"qisim/internal/simrun"
)

// TestMultiRoundShotLoopAllocs pins the steady-state allocation count of a
// whole batched multi-round trajectory shard — 256 shots of sequential
// decision rounds — at zero. All per-shot state (the round-increment
// constants, the decay window, the diff accumulator) lives in locals, so any
// future allocation inside the shot loop is a regression this catches.
func TestMultiRoundShotLoopAllocs(t *testing.T) {
	c, tm := DefaultChain(), DefaultTiming()
	cfg := DefaultMultiRoundConfig()
	cfg.Shots = 256
	_, run, _, err := MultiRoundCore(c, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := simrun.NewShardTask(nil, simrun.Shard{Index: 0, Start: 0, N: 256, Seed: 7}, 0)
	if _, _, err := run(task); err != nil { // warm any one-time lazies
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := run(task); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("batched multi-round shard allocates %.1f objects per 256-shot step; the shot loop must stay allocation-free", allocs)
	}
}
