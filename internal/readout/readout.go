// Package readout implements QIsim's CMOS dispersive-readout error model
// (Section 4.4.4) and the three state-decision units the paper studies:
//
//   - bin-counting (Horse Ridge II; the baseline, lowest-error method),
//   - single-point averaging (Google/IBM style), and
//   - the fast multi-round early-decision method of Opt-#7.
//
// The model has two tiers. The fast tier treats the post-ring-up IQ samples
// as i.i.d. draws around the two pointer states with a heavy-tailed amplifier
// noise mixture and a T1-decay channel, and evaluates each decision unit
// analytically (binomial/Gaussian) or with round-level Monte-Carlo. The slow
// tier (TrajectoryMC) draws full cavity trajectories from the dispersive
// model in internal/ham and replays the decision units sample by sample; it
// cross-checks the fast tier and feeds the benchmarks.
package readout

import (
	"context"
	"math"

	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// Chain models the readout signal chain after demodulation: the per-sample
// separation-to-noise ratio of the two pointer states, the heavy-tailed
// outlier component contributed by the parametric-amplifier chain, and the
// probability that the qubit decays during the full integration window.
type Chain struct {
	// SNRPerSample is |α1-α0| / σ per IQ sample along the discriminating
	// axis (TWPA + HEMT + digital noise folded into σ).
	SNRPerSample float64
	// OutlierProb is the per-sample probability of an amplifier glitch.
	OutlierProb float64
	// OutlierFactor multiplies σ during a glitch.
	OutlierFactor float64
	// DecayProb is the probability the qubit relaxes |1>→|0> during the
	// full (all-rounds) integration window: T_int/T1.
	DecayProb float64
	// IQBits quantises each IQ coordinate before the decision unit
	// (Horse Ridge II bin memory uses 7-bit I/Q); 0 = ideal.
	IQBits int
}

// DefaultChain is calibrated so the 8-round (400 ns @ 2.5 GS/s after 117 ns
// ring-up → 517 ns total, Table 2) bin-counting error lands at ~1.0e-3.
func DefaultChain() Chain {
	return Chain{
		SNRPerSample:  0.282,
		OutlierProb:   0.003,
		OutlierFactor: 20,
		DecayProb:     400e-9 / 122e-6,
		IQBits:        7,
	}
}

// Timing describes the Horse Ridge II readout schedule.
type Timing struct {
	RingUp       float64 // resonator ring-up before sampling (117 ns)
	RoundTime    float64 // one decision round (50 ns)
	RoundSamples int     // samples per round (125 at 2.5 GS/s)
	MaxRounds    int     // full integration (8 rounds → 400 ns)
}

// DefaultTiming returns the Table 2 / Opt-#7 schedule.
func DefaultTiming() Timing {
	return Timing{RingUp: 117e-9, RoundTime: 50e-9, RoundSamples: 125, MaxRounds: 8}
}

// TotalTime returns ring-up plus n rounds.
func (t Timing) TotalTime(rounds float64) float64 {
	return t.RingUp + rounds*t.RoundTime
}

// perSampleCorrectProb returns the probability one IQ sample falls on the
// correct side of the discriminating line.
func (c Chain) perSampleCorrectProb() float64 {
	snr := c.SNRPerSample
	if c.IQBits > 0 {
		// Quantisation adds step²/12 variance with step = full-scale/2^bits;
		// full scale ≈ 8σ, so σq = 8σ/2^bits/√12.
		step := 8.0 / float64(int64(1)<<c.IQBits)
		snr /= math.Sqrt(1 + step*step/12)
	}
	clean := phi(snr / 2)
	glitch := phi(snr / (2 * c.OutlierFactor))
	return (1-c.OutlierProb)*clean + c.OutlierProb*glitch
}

// meanNoiseInflation is the single-point penalty: outliers inflate the
// variance of the sample mean (majority voting is immune to their size).
func (c Chain) meanNoiseInflation() float64 {
	of := c.OutlierFactor * c.OutlierFactor
	return math.Sqrt(1 + c.OutlierProb*(of-1))
}

// BinCountingError returns the misclassification probability of the
// bin-counting decision unit over the given number of rounds: a majority
// vote of all samples' sides, plus the decay penalty (a |1> qubit decaying in
// the first half of the window flips the majority).
func BinCountingError(c Chain, t Timing, rounds int) float64 {
	n := float64(rounds * t.RoundSamples)
	q := c.perSampleCorrectProb()
	// Normal approximation to P(Binom(n,q) <= n/2).
	z := (q - 0.5) * math.Sqrt(n) / math.Sqrt(q*(1-q))
	gauss := phi(-z)
	decay := c.decayPenalty(rounds, t)
	return gauss + decay
}

// SinglePointError returns the misclassification probability of averaging
// all samples into one IQ point and thresholding it. Outlier samples drag
// the mean, which is why Fig. 19(b) ranks this above bin counting.
func SinglePointError(c Chain, t Timing, rounds int) float64 {
	n := float64(rounds * t.RoundSamples)
	snr := c.SNRPerSample
	if c.IQBits > 0 {
		step := 8.0 / float64(int64(1)<<c.IQBits)
		snr /= math.Sqrt(1 + step*step/12)
	}
	z := snr * math.Sqrt(n) / 2 / c.meanNoiseInflation()
	gauss := phi(-z)
	decay := c.decayPenalty(rounds, t)
	return gauss + decay
}

// decayPenalty: qubit decays with prob DecayProb scaled to the window used;
// a decay in the first half of the window flips the decision for a prepared
// |1>, and prepared states are equiprobable → /4.
func (c Chain) decayPenalty(rounds int, t Timing) float64 {
	frac := float64(rounds) / float64(t.MaxRounds)
	return c.DecayProb * frac / 4
}

// MultiRoundConfig parameterises the Opt-#7 early-decision unit: after each
// round the cumulative side-count difference is compared against a decision
// range; values outside ±Range decide immediately, values inside trigger one
// more round, and the final round forces a decision.
type MultiRoundConfig struct {
	Range     float64 // indecision half-width in side-count difference
	MaxRounds int
	Shots     int
	Seed      int64
}

// DefaultMultiRoundConfig is tuned so the multi-round unit matches the 8-round
// bin-counting error while finishing ~40% sooner on average (Fig. 19).
func DefaultMultiRoundConfig() MultiRoundConfig {
	return MultiRoundConfig{Range: 40, MaxRounds: 8, Shots: 400000, Seed: 11}
}

// MultiRoundResult reports the sequential decision unit's performance.
type MultiRoundResult struct {
	Error          float64 `json:"error"`            // misclassification probability
	MeanRounds     float64 `json:"mean_rounds"`      // expected rounds used
	MeanTime       float64 `json:"mean_time"`        // ring-up + expected rounds (seconds)
	FracDecidedBy3 float64 `json:"frac_decided_by3"` // fraction of shots decided within 3 rounds
	Speedup        float64 `json:"speedup"`          // 1 - MeanTime/full-integration time
	// Status flags truncation/convergence for the context-aware entry point.
	Status simrun.Status `json:"status"`
}

// MultiRoundError Monte-Carlo simulates the sequential test at round
// granularity: each round's side-count difference increment is
// Normal(m(2q-1), 4mq(1-q)) for m samples with per-sample correctness q,
// with decay events injected at exponential times.
func MultiRoundError(c Chain, t Timing, cfg MultiRoundConfig) MultiRoundResult {
	res, err := MultiRoundErrorCtx(context.Background(), c, t, cfg, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res
}

// MultiRoundTally is the multi-round MC's per-shard accumulator. Fields
// are exported so the accumulator JSON round-trips bit-exactly through
// checkpoint/resume (internal/checkpoint) and the distributed shard-result
// wire format (internal/dist).
type MultiRoundTally struct{ Errs, TotalRounds, DecidedBy3 int }

// MultiRoundCore validates and normalizes the multi-round MC configuration
// and returns (normalized cfg, per-shard sampler, in-order merge) — the
// pieces a distributed executor needs to run an arbitrary shard window of
// this model and fold it bit-identically to a local run.
func MultiRoundCore(c Chain, t Timing, cfg MultiRoundConfig) (MultiRoundConfig, simrun.ShardFunc[MultiRoundTally], func(*MultiRoundTally, MultiRoundTally), error) {
	if cfg.Shots <= 0 {
		cfg.Shots = 400000
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = t.MaxRounds
	}
	if cfg.MaxRounds <= 0 || t.RoundSamples <= 0 {
		return cfg, nil, nil, simerr.Invalidf("readout: timing needs positive MaxRounds and RoundSamples (got %d, %d)",
			cfg.MaxRounds, t.RoundSamples)
	}
	if math.IsNaN(cfg.Range) || cfg.Range < 0 {
		return cfg, nil, nil, simerr.Invalidf("readout: decision range %v must be >= 0", cfg.Range)
	}
	q := c.perSampleCorrectProb()
	m := float64(t.RoundSamples)
	mu := m * (2*q - 1)
	sigma := 2 * math.Sqrt(m*q*(1-q))

	run := func(task *simrun.ShardTask) (MultiRoundTally, int, error) {
		var tl MultiRoundTally
		for s := 0; task.Continue(s); s++ {
			// Decay time in units of rounds (only matters for prepared
			// |1>, half of shots; we model the symmetric average by
			// applying to all shots with half weight via alternating
			// preparation — keyed to the GLOBAL shot index so the
			// preparation sequence is shard-layout invariant).
			prepared1 := task.GlobalShot(s)%2 == 1
			decayRound := math.Inf(1)
			if prepared1 && task.RNG.Float64() < c.DecayProb {
				decayRound = task.RNG.Float64() * float64(t.MaxRounds)
			}
			var diff float64
			rounds := 0
			decided := false
			var wrong bool
			if math.IsInf(decayRound, 1) {
				// No decay this shot (the overwhelmingly common case): the
				// per-round mean is always +mu, so skip the decay-window
				// comparisons. One NormFloat64 per executed round with the
				// same stop rule — the draw sequence is unchanged.
				for r := 0; r < cfg.MaxRounds; r++ {
					diff += mu + sigma*task.RNG.NormFloat64()
					rounds = r + 1
					if math.Abs(diff) > cfg.Range || r == cfg.MaxRounds-1 {
						wrong = diff < 0
						decided = true
						break
					}
				}
			} else {
				for r := 0; r < cfg.MaxRounds; r++ {
					rmu := mu
					// After decay the signal flips sign for a prepared |1>.
					if float64(r) >= decayRound {
						rmu = -mu
					} else if float64(r+1) > decayRound && float64(r) < decayRound {
						f := decayRound - float64(r)
						rmu = mu * (2*f - 1)
					}
					diff += rmu + sigma*task.RNG.NormFloat64()
					rounds = r + 1
					if math.Abs(diff) > cfg.Range || r == cfg.MaxRounds-1 {
						wrong = diff < 0
						decided = true
						break
					}
				}
			}
			if !decided {
				wrong = diff < 0
				rounds = cfg.MaxRounds
			}
			if wrong {
				tl.Errs++
			}
			tl.TotalRounds += rounds
			if rounds <= 3 {
				tl.DecidedBy3++
			}
		}
		return tl, tl.Errs, nil
	}
	merge := func(dst *MultiRoundTally, src MultiRoundTally) {
		dst.Errs += src.Errs
		dst.TotalRounds += src.TotalRounds
		dst.DecidedBy3 += src.DecidedBy3
	}
	return cfg, run, merge, nil
}

// MultiRoundResultFrom assembles the multi-round result from a folded
// tally and the run's status — shared by the local path and the
// distributed merge so both produce identical result bytes.
func MultiRoundResultFrom(t Timing, sum MultiRoundTally, status simrun.Status) MultiRoundResult {
	res := MultiRoundResult{Status: status}
	if status.Completed > 0 {
		n := float64(status.Completed)
		mr := float64(sum.TotalRounds) / n
		res.Error = float64(sum.Errs) / n
		res.MeanRounds = mr
		res.MeanTime = t.TotalTime(mr)
		res.FracDecidedBy3 = float64(sum.DecidedBy3) / n
		full := t.TotalTime(float64(t.MaxRounds))
		if full > 0 {
			res.Speedup = 1 - res.MeanTime/full
		}
	}
	return res
}

// MultiRoundErrorCtx is the context-aware MultiRoundError: cancellation
// stops the shot loop at the next check interval and returns the partial,
// Truncated-flagged statistics over the completed shots.
func MultiRoundErrorCtx(ctx context.Context, c Chain, t Timing, cfg MultiRoundConfig, opt simrun.Options) (MultiRoundResult, error) {
	cfg, run, merge, err := MultiRoundCore(c, t, cfg)
	if err != nil {
		return MultiRoundResult{}, err
	}
	sum, status, gerr := simrun.RunSharded(ctx, cfg.Shots, cfg.Seed, opt, run, merge)
	if gerr != nil {
		return MultiRoundResult{}, gerr
	}
	return MultiRoundResultFrom(t, sum, status), nil
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
