package readout

import (
	"math"
	"testing"
)

func TestBinCountingTable2Anchor(t *testing.T) {
	// Table 2: CMOS readout error 1.00e-3 at the full 517 ns schedule.
	e := BinCountingError(DefaultChain(), DefaultTiming(), 8)
	if e < 5e-4 || e > 2e-3 {
		t.Fatalf("bin-counting error %.3g outside Table 2 anchor band around 1e-3", e)
	}
}

func TestMethodRankingFig19(t *testing.T) {
	// Fig. 19(b): bin-counting has the lowest error among representative
	// methods; single-point is measurably worse on the same chain.
	c, tm := DefaultChain(), DefaultTiming()
	bin := BinCountingError(c, tm, 8)
	single := SinglePointError(c, tm, 8)
	if single <= bin {
		t.Fatalf("single-point (%.3g) should be worse than bin-counting (%.3g)", single, bin)
	}
	if single > 5*bin {
		t.Fatalf("single-point penalty implausibly large: %.3g vs %.3g", single, bin)
	}
}

func TestErrorFallsWithRounds(t *testing.T) {
	c, tm := DefaultChain(), DefaultTiming()
	prev := math.Inf(1)
	for rounds := 1; rounds <= 8; rounds++ {
		e := BinCountingError(c, tm, rounds)
		if e > prev {
			t.Fatalf("bin error should fall with integration: round %d: %.3g > %.3g", rounds, e, prev)
		}
		prev = e
	}
}

func TestShortReadoutAccuracy(t *testing.T) {
	// Opt-#7 observation 1: "98.6% accuracy within 267 ns" — i.e. a 3-round
	// readout is already ~98-99% accurate.
	c, tm := DefaultChain(), DefaultTiming()
	acc := 1 - BinCountingError(c, tm, 3)
	if acc < 0.95 || acc > 0.999 {
		t.Fatalf("3-round accuracy %.4f, want ~0.986", acc)
	}
	if got := tm.TotalTime(3); math.Abs(got-267e-9) > 1e-12 {
		t.Fatalf("3-round readout time %v ns, want 267 ns", got*1e9)
	}
}

func TestTimingTable2(t *testing.T) {
	tm := DefaultTiming()
	if got := tm.TotalTime(8); math.Abs(got-517e-9) > 1e-12 {
		t.Fatalf("full readout %v ns, want Table 2's 517 ns", got*1e9)
	}
}

func TestMultiRoundFig19(t *testing.T) {
	// Opt-#7 headline: ~40.9% faster readout at the same error.
	c, tm := DefaultChain(), DefaultTiming()
	bin := BinCountingError(c, tm, 8)
	r := MultiRoundError(c, tm, DefaultMultiRoundConfig())
	if r.Error > 1.3*bin {
		t.Fatalf("multi-round error %.3g should match bin-counting %.3g", r.Error, bin)
	}
	if r.Speedup < 0.30 || r.Speedup > 0.55 {
		t.Fatalf("multi-round speedup %.3f outside the ~0.409 band", r.Speedup)
	}
	if r.MeanRounds >= 8 || r.MeanRounds < 1 {
		t.Fatalf("mean rounds %.2f implausible", r.MeanRounds)
	}
}

func TestMultiRoundRangeTradeoff(t *testing.T) {
	// A wider indecision range uses more rounds (slower, more cautious).
	c, tm := DefaultChain(), DefaultTiming()
	narrow := DefaultMultiRoundConfig()
	narrow.Range, narrow.Shots = 15, 50000
	wide := DefaultMultiRoundConfig()
	wide.Range, wide.Shots = 60, 50000
	rn := MultiRoundError(c, tm, narrow)
	rw := MultiRoundError(c, tm, wide)
	if rn.MeanRounds >= rw.MeanRounds {
		t.Fatalf("narrow range should finish sooner: %.2f vs %.2f rounds", rn.MeanRounds, rw.MeanRounds)
	}
	if rn.Error < rw.Error {
		t.Fatalf("narrow range should not be more accurate: %.3g vs %.3g", rn.Error, rw.Error)
	}
}

func TestMultiRoundDeterministic(t *testing.T) {
	c, tm := DefaultChain(), DefaultTiming()
	cfg := DefaultMultiRoundConfig()
	cfg.Shots = 20000
	a := MultiRoundError(c, tm, cfg)
	b := MultiRoundError(c, tm, cfg)
	if a.Error != b.Error || a.MeanRounds != b.MeanRounds {
		t.Fatal("seeded multi-round MC must be deterministic")
	}
}

func TestIQBitsSaturation(t *testing.T) {
	// Opt-#1 justification: the 7-bit IQ precision is at the error-saturating
	// point — dropping the bin memory (same precision, streaming compare)
	// cannot change the error; going very coarse does.
	c, tm := DefaultChain(), DefaultTiming()
	e7 := BinCountingError(c, tm, 8)
	c.IQBits = 0 // ideal precision
	eInf := BinCountingError(c, tm, 8)
	if math.Abs(e7-eInf)/eInf > 0.02 {
		t.Fatalf("7-bit IQ should be saturated: %.4g vs ideal %.4g", e7, eInf)
	}
	c.IQBits = 2
	e2 := BinCountingError(c, tm, 8)
	if e2 <= eInf*1.05 {
		t.Fatalf("2-bit IQ should visibly hurt: %.4g vs %.4g", e2, eInf)
	}
}

func TestDecayPenaltyScalesWithWindow(t *testing.T) {
	c, tm := DefaultChain(), DefaultTiming()
	c.SNRPerSample = 10 // make Gaussian part negligible
	e8 := BinCountingError(c, tm, 8)
	e4 := BinCountingError(c, tm, 4)
	if e4 >= e8 {
		t.Fatalf("shorter window should see less decay: %.3g vs %.3g", e4, e8)
	}
	// With SNR huge, error ≈ decayProb·frac/4.
	want := c.DecayProb / 4
	if math.Abs(e8-want)/want > 0.05 {
		t.Fatalf("decay-dominated error %.3g, want %.3g", e8, want)
	}
}

func TestTrajectoryMCConsistentWithAnalytic(t *testing.T) {
	// The physics-level MC must agree with the fast tier within MC error.
	cfg := DefaultTrajectoryConfig()
	cfg.Shots = 4000
	c, tm := DefaultChain(), DefaultTiming()
	res := TrajectoryMC(cfg, c)
	bin := BinCountingError(c, tm, 8)
	// 4000 shots at p~1e-3: expect a handful of errors; accept 0..5x band.
	if res.BinError > 5*bin+1e-3 {
		t.Fatalf("trajectory bin error %.3g inconsistent with analytic %.3g", res.BinError, bin)
	}
	if res.SingleError < res.BinError {
		// ranking must match (allow ties at zero errors)
		if res.SingleError != 0 {
			t.Fatalf("trajectory ranking inverted: single %.3g < bin %.3g", res.SingleError, res.BinError)
		}
	}
	if res.Separation <= 0 {
		t.Fatal("pointer separation must be positive")
	}
}

func TestChainPerSampleProb(t *testing.T) {
	c := DefaultChain()
	q := c.perSampleCorrectProb()
	if q <= 0.5 || q >= 0.6 {
		t.Fatalf("per-sample correctness %.4f should be slightly above chance", q)
	}
	// Outliers reduce q.
	c2 := c
	c2.OutlierProb = 0
	if c2.perSampleCorrectProb() <= q {
		t.Fatal("removing outliers should improve per-sample correctness")
	}
}
