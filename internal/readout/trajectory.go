package readout

import (
	"context"
	"math"
	"math/cmplx"

	"qisim/internal/cmath"
	"qisim/internal/ham"
	"qisim/internal/phys"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// TrajectoryConfig drives the slow, physics-level readout Monte-Carlo: full
// cavity trajectories from the dispersive model with per-sample noise, the
// square TX envelope of Section 4.4.4, and T1 decay mid-readout.
type TrajectoryConfig struct {
	Resonator    phys.Resonator
	Qubit        phys.Transmon
	DriveEps     float64 // TX drive amplitude (rad/s)
	SampleRateHz float64
	Timing       Timing
	NoiseSigma   float64 // per-sample IQ noise σ in units of |α| steady state
	Shots        int
	Seed         int64
}

// DefaultTrajectoryConfig returns a setup consistent with DefaultChain.
func DefaultTrajectoryConfig() TrajectoryConfig {
	return TrajectoryConfig{
		Resonator:    phys.DefaultResonator(),
		Qubit:        phys.DefaultTransmon(),
		DriveEps:     2 * math.Pi * 2e6,
		SampleRateHz: 2.5e9,
		Timing:       DefaultTiming(),
		NoiseSigma:   0, // filled from chain SNR when zero
		Shots:        2000,
		Seed:         5,
	}
}

// TrajectoryResult reports the physics-level MC outcome for one decision
// method.
type TrajectoryResult struct {
	BinError    float64 `json:"bin_error"`
	SingleError float64 `json:"single_error"`
	Separation  float64 `json:"separation"` // steady-state pointer separation |α1-α0|
	// Status flags truncation for the context-aware entry point.
	Status simrun.Status `json:"status"`
}

// TrajectoryMC draws full readout records and replays the bin-counting and
// single-point decision units on the same records. It cross-checks the fast
// analytic tier: with the noise scaled to the same per-sample SNR the error
// rates must agree to MC precision.
func TrajectoryMC(cfg TrajectoryConfig, chain Chain) TrajectoryResult {
	res, err := TrajectoryMCCtx(context.Background(), cfg, chain, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res
}

// TrajectoryMCCtx is the context-aware TrajectoryMC: cancellation stops the
// shot loop and returns the partial, Truncated-flagged error rates over the
// completed shots. A non-finite trajectory (corrupted resonator parameters)
// surfaces as ErrNumerical before any shot runs.
func TrajectoryMCCtx(ctx context.Context, cfg TrajectoryConfig, chain Chain, opt simrun.Options) (TrajectoryResult, error) {
	if cfg.SampleRateHz <= 0 || math.IsNaN(cfg.SampleRateHz) {
		return TrajectoryResult{}, simerr.Invalidf("readout: sample rate %v must be positive", cfg.SampleRateHz)
	}
	if cfg.Timing.MaxRounds <= 0 || cfg.Timing.RoundSamples <= 0 {
		return TrajectoryResult{}, simerr.Invalidf("readout: timing needs positive MaxRounds and RoundSamples")
	}
	r := ham.DispersiveResonator{
		DetuningRad: 0,
		ChiRad:      cfg.Resonator.Chi(),
		KappaRad:    cfg.Resonator.Kappa(),
	}
	dt := 1 / cfg.SampleRateHz
	nRing := int(cfg.Timing.RingUp * cfg.SampleRateHz)
	nSamp := cfg.Timing.MaxRounds * cfg.Timing.RoundSamples
	total := nRing + nSamp

	drive := func(t float64) float64 { return cfg.DriveEps }
	traj0 := r.Trajectory(-1, drive, total, dt)
	traj1 := r.Trajectory(+1, drive, total, dt)

	s0 := r.SteadyState(-1, cfg.DriveEps)
	s1 := r.SteadyState(+1, cfg.DriveEps)
	sep := cmplx.Abs(s1 - s0)
	if err := cmath.CheckFiniteVec("TrajectoryMC pointer states", []complex128{s0, s1}); err != nil {
		return TrajectoryResult{}, err
	}
	if sep == 0 {
		return TrajectoryResult{}, simerr.Numericalf("readout: degenerate pointer states (zero separation)")
	}

	// Discriminating axis: unit vector from α0 to α1; line through midpoint.
	// The projection is inlined in the sample loop via ax/ay.
	axis := (s1 - s0) / complex(sep, 0)
	mid := (s1 + s0) / 2
	ax, ay := real(axis), imag(axis)

	sigma := cfg.NoiseSigma
	if sigma <= 0 {
		sigma = sep / chain.SNRPerSample
	}
	// Per-shot constants hoisted out of the shot loop. negHalfKappa keeps
	// the original -κ/2 · Δk · dt multiplication order so the decay factor
	// rounds identically.
	pDecay := chain.DecayProb * float64(total) / float64(nSamp)
	negHalfKappa := -r.KappaRad / 2

	// The precomputed trajectories and the projection closure are read-only
	// across shards; each shard draws noise from its private RNG stream and
	// alternates preparation on the GLOBAL shot index, so the merged error
	// counts are bit-identical for every worker count.
	// Exported fields: the accumulator must JSON round-trip bit-exactly for
	// checkpoint/resume (internal/checkpoint).
	type tallies struct{ Bin, Single int }
	sum, status, gerr := simrun.RunSharded(ctx, cfg.Shots, cfg.Seed, opt,
		func(task *simrun.ShardTask) (tallies, int, error) {
			var tl tallies
			for s := 0; task.Continue(s); s++ {
				prepared1 := task.GlobalShot(s)%2 == 1
				traj := traj0
				if prepared1 {
					traj = traj1
				}
				// Decay: prepared |1> relaxes at an exponential time;
				// afterwards the cavity relaxes toward the |0> pointer with
				// rate κ/2.
				decayAt := math.Inf(1)
				if prepared1 && task.RNG.Float64() < pDecay {
					decayAt = float64(nRing) + task.RNG.Float64()*float64(nSamp)
				}
				var count, sumProj float64
				used := 0
				for k := nRing; k < total; k++ {
					mean := traj[k]
					if fk := float64(k); fk > decayAt {
						// exponential pull toward the |0> trajectory
						lam := math.Exp(negHalfKappa * (fk - decayAt) * dt)
						mean = traj1[k]*complex(lam, 0) + traj0[k]*complex(1-lam, 0)
					}
					ns := sigma
					if task.RNG.Float64() < chain.OutlierProb {
						ns *= chain.OutlierFactor
					}
					sample := mean + complex(ns*task.RNG.NormFloat64(), ns*task.RNG.NormFloat64())
					d := sample - mid
					p := real(d)*ax + imag(d)*ay
					if p > 0 {
						count++
					}
					sumProj += p
					used++
				}
				majority1 := count > float64(used)/2
				mean1 := sumProj > 0
				if majority1 != prepared1 {
					tl.Bin++
				}
				if mean1 != prepared1 {
					tl.Single++
				}
			}
			return tl, tl.Bin, nil
		},
		func(dst *tallies, src tallies) {
			dst.Bin += src.Bin
			dst.Single += src.Single
		})
	if gerr != nil {
		return TrajectoryResult{}, gerr
	}
	res := TrajectoryResult{Separation: sep, Status: status}
	if status.Completed > 0 {
		res.BinError = float64(sum.Bin) / float64(status.Completed)
		res.SingleError = float64(sum.Single) / float64(status.Completed)
	}
	return res, nil
}
