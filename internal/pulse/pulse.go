// Package pulse implements QIsim's waveform substrate: the digital sample
// streams the QCI drive/pulse/TX circuits emit, the analog imperfections the
// gate-error models inject (bit quantisation, SNR-limited Gaussian noise), and
// the SFQ pulse trains of the SFQ-based QCI.
package pulse

import (
	"math"
	"math/rand"
)

// Envelope is a pulse envelope A(t) normalised to [0, 1], defined on [0, T].
type Envelope interface {
	// Amplitude returns the envelope value at time t for total duration T.
	Amplitude(t, total float64) float64
}

// GaussianEnvelope is the standard single-qubit drive envelope, truncated at
// ±NumSigma standard deviations and shifted so it starts and ends at zero.
type GaussianEnvelope struct {
	NumSigma float64 // typically 2–3
}

// Amplitude implements Envelope.
func (g GaussianEnvelope) Amplitude(t, total float64) float64 {
	ns := g.NumSigma
	if ns <= 0 {
		ns = 2.5
	}
	sigma := total / (2 * ns)
	mid := total / 2
	raw := math.Exp(-((t - mid) * (t - mid)) / (2 * sigma * sigma))
	floor := math.Exp(-(mid * mid) / (2 * sigma * sigma))
	return (raw - floor) / (1 - floor)
}

// CosineEnvelope is 0.5(1-cos(2πt/T)): zero-ended, smooth, cheap to store.
type CosineEnvelope struct{}

// Amplitude implements Envelope.
func (CosineEnvelope) Amplitude(t, total float64) float64 {
	return 0.5 * (1 - math.Cos(2*math.Pi*t/total))
}

// FlatTopEnvelope is the CZ flux-pulse shape: raised-cosine ramp-up, flat
// hold, raised-cosine ramp-down. RampFrac is the fraction of the total
// duration spent in EACH ramp (e.g. 0.15 → 15% up, 70% hold, 15% down).
type FlatTopEnvelope struct {
	RampFrac float64
}

// Amplitude implements Envelope.
func (f FlatTopEnvelope) Amplitude(t, total float64) float64 {
	rf := f.RampFrac
	if rf <= 0 {
		rf = 0.15
	}
	ramp := rf * total
	switch {
	case t < 0 || t > total:
		return 0
	case t < ramp:
		return 0.5 * (1 - math.Cos(math.Pi*t/ramp))
	case t > total-ramp:
		return 0.5 * (1 - math.Cos(math.Pi*(total-t)/ramp))
	default:
		return 1
	}
}

// UnitStepEnvelope is the pathological Horse Ridge II pulse shape: full
// amplitude instantly, no ramps. The paper's Hamiltonian simulation shows it
// "almost cannot realize the CZ gate"; ours reproduces that.
type UnitStepEnvelope struct{}

// Amplitude implements Envelope.
func (UnitStepEnvelope) Amplitude(t, total float64) float64 {
	if t < 0 || t > total {
		return 0
	}
	return 1
}

// SquareEnvelope is an alias for the readout TX square envelope.
type SquareEnvelope = UnitStepEnvelope

// Samples evaluates env at n uniformly spaced sample instants across total.
func Samples(env Envelope, n int, total float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = env.Amplitude(total/2, total)
		return out
	}
	dt := total / float64(n-1)
	for i := range out {
		out[i] = env.Amplitude(float64(i)*dt, total)
	}
	return out
}

// Quantize rounds each sample to the grid of a signed DAC with the given bit
// precision over full-scale [-1, 1]. This is the Opt-#2 lever: fewer bits →
// cheaper drive digital logic but coarser waveforms.
func Quantize(samples []float64, bits int) []float64 {
	if bits <= 0 || bits >= 52 {
		out := make([]float64, len(samples))
		copy(out, samples)
		return out
	}
	levels := float64(int64(1) << (bits - 1)) // signed: 2^(b-1) steps per side
	out := make([]float64, len(samples))
	for i, s := range samples {
		q := math.Round(s*levels) / levels
		if q > 1 {
			q = 1
		}
		if q < -1 {
			q = -1
		}
		out[i] = q
	}
	return out
}

// QuantizeValue quantises a single value with the same convention.
func QuantizeValue(v float64, bits int) float64 {
	if bits <= 0 || bits >= 52 {
		return v
	}
	levels := float64(int64(1) << (bits - 1))
	q := math.Round(v*levels) / levels
	if q > 1 {
		return 1
	}
	if q < -1 {
		return -1
	}
	return q
}

// AddNoiseSNR adds zero-mean Gaussian noise whose power is set by the given
// SNR in dB relative to the RMS signal power, reproducing the noisy-analog
// stage of the gate-error model (Fig. 7, step 1→2).
func AddNoiseSNR(samples []float64, snrDB float64, rng *rand.Rand) []float64 {
	var power float64
	for _, s := range samples {
		power += s * s
	}
	if len(samples) > 0 {
		power /= float64(len(samples))
	}
	sigma := math.Sqrt(power / math.Pow(10, snrDB/10))
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s + sigma*rng.NormFloat64()
	}
	return out
}

// IQSample is one complex baseband sample of the drive NCO.
type IQSample struct{ I, Q float64 }

// NCOConfig mirrors the Horse Ridge drive-circuit NCO extended with virtual-Rz
// support (Section 3.3.1 of the paper): a per-qubit phase accumulator with a
// qubit-specific rotating frequency, combined with gate envelope/phase tables.
type NCOConfig struct {
	// SampleRateHz is the digital sample rate (2.5 GHz in Table 2).
	SampleRateHz float64
	// FreqHz is the NCO rotating frequency ω_NCO/2π (IF frequency).
	FreqHz float64
	// PhaseBits quantises the accumulated phase word (0 = ideal).
	PhaseBits int
	// AmplitudeBits quantises envelope amplitude samples (0 = ideal).
	AmplitudeBits int
}

// NCO is the numerically controlled oscillator of the drive digital bank.
type NCO struct {
	cfg   NCOConfig
	phase float64 // accumulated qubit phase Φ_Q in radians
}

// NewNCO returns an NCO with zero accumulated phase.
func NewNCO(cfg NCOConfig) *NCO { return &NCO{cfg: cfg} }

// Phase returns the accumulated qubit phase Φ_Q.
func (n *NCO) Phase() float64 { return n.phase }

// AccumulatePhase implements the virtual-Rz datapath: Rz(φ) is realised by
// adding φ to the per-qubit phase accumulator, costing zero pulse time.
func (n *NCO) AccumulatePhase(phi float64) {
	n.phase = wrapPhase(n.phase + quantizePhase(phi, n.cfg.PhaseBits))
}

// GenerateIQ produces the digital I/Q sample stream of Eq. (1):
//
//	I[k] = A[k]·cos(ω_NCO·k·Ts + Φ_Q + Φ_G[k])
//	Q[k] = A[k]·sin(ω_NCO·k·Ts + Φ_Q + Φ_G[k])
//
// for a gate of the given duration, envelope and gate phase. The phase
// accumulator advances by the gate duration so subsequent gates stay coherent.
func (n *NCO) GenerateIQ(env Envelope, duration float64, gatePhase float64) []IQSample {
	ns := int(math.Round(duration * n.cfg.SampleRateHz))
	if ns < 1 {
		ns = 1
	}
	amps := Samples(env, ns, duration)
	if n.cfg.AmplitudeBits > 0 {
		amps = Quantize(amps, n.cfg.AmplitudeBits)
	}
	omega := 2 * math.Pi * n.cfg.FreqHz
	ts := 1 / n.cfg.SampleRateHz
	out := make([]IQSample, ns)
	gp := quantizePhase(gatePhase, n.cfg.PhaseBits)
	for k := 0; k < ns; k++ {
		theta := omega*float64(k)*ts + n.phase + gp
		out[k] = IQSample{I: amps[k] * math.Cos(theta), Q: amps[k] * math.Sin(theta)}
	}
	return out
}

// ZCorrectionTable holds the per-victim AC-Stark-shift correction phases that
// the extended NCO applies after each Rx/Ry on a frequency-multiplexed line
// (Section 3.3.1, "Z correction").
type ZCorrectionTable struct {
	// Phases[target][victim] is the Rz correction applied to victim after a
	// gate on target sharing the same drive line.
	Phases map[int]map[int]float64
}

// NewZCorrectionTable returns an empty table.
func NewZCorrectionTable() *ZCorrectionTable {
	return &ZCorrectionTable{Phases: make(map[int]map[int]float64)}
}

// Set records the correction phase for victim after a gate on target.
func (z *ZCorrectionTable) Set(target, victim int, phi float64) {
	m, ok := z.Phases[target]
	if !ok {
		m = make(map[int]float64)
		z.Phases[target] = m
	}
	m[victim] = phi
}

// CorrectionsFor returns the victim→phase map for a gate on target.
func (z *ZCorrectionTable) CorrectionsFor(target int) map[int]float64 {
	return z.Phases[target]
}

// SFQTrain is a binary pulse train emitted at the SFQ clock rate: element k
// is true when an SFQ pulse is launched in clock cycle k.
type SFQTrain []bool

// PeriodicTrain returns a train of n cycles with a pulse every period cycles,
// the resonator-driving pattern of the SFQ readout (Opt-#8 speeds this up by
// raising the clock so more pulses fit in a half resonator period).
func PeriodicTrain(n, period int) SFQTrain {
	t := make(SFQTrain, n)
	for i := 0; i < n; i += period {
		t[i] = true
	}
	return t
}

// AlignedTrain returns a train of n cycles that launches burst consecutive
// pulses each time the resonator phase completes a full turn: pulse groups
// stay phase-locked to the resonator even when the clock-to-resonator
// frequency ratio is irrational. This is how the SFQ resonator-driving
// circuit of Section 3.4.3 constructs its pulse train.
func AlignedTrain(n int, fresHz, fclkHz float64, burst int) SFQTrain {
	if burst < 1 {
		burst = 1
	}
	t := make(SFQTrain, n)
	ratio := fresHz / fclkHz
	prev := 0.0
	pending := 0
	for k := 0; k < n; k++ {
		cur := float64(k+1) * ratio
		if math.Floor(cur) > math.Floor(prev) {
			pending = burst
		}
		if pending > 0 {
			t[k] = true
			pending--
		}
		prev = cur
	}
	return t
}

// BurstTrain returns a train of n cycles that launches burst consecutive
// pulses at the start of every period. This is the Opt-#8 fast-driving
// pattern: at a boosted clock, several pulses fit inside a half resonator
// period and accumulate near-coherently, raising drive energy per unit time.
func BurstTrain(n, period, burst int) SFQTrain {
	t := make(SFQTrain, n)
	for i := 0; i < n; i += period {
		for b := 0; b < burst && i+b < n; b++ {
			t[i+b] = true
		}
	}
	return t
}

// Count returns the number of pulses in the train.
func (t SFQTrain) Count() int {
	c := 0
	for _, b := range t {
		if b {
			c++
		}
	}
	return c
}

// DriveEnergyAt computes the magnitude of the frequency-domain component of
// the pulse train at frequency fHz given clock fclkHz: each pulse is a phasor
// rotating at the resonator frequency; coherent accumulation measures how
// effectively the train drives the resonator (Section 3.4.3-i / Opt-#8).
func (t SFQTrain) DriveEnergyAt(fHz, fclkHz float64) float64 {
	var re, im float64
	for k, b := range t {
		if !b {
			continue
		}
		theta := 2 * math.Pi * fHz * float64(k) / fclkHz
		re += math.Cos(theta)
		im += math.Sin(theta)
	}
	return math.Hypot(re, im)
}

func quantizePhase(phi float64, bits int) float64 {
	if bits <= 0 || bits >= 52 {
		return phi
	}
	steps := float64(int64(1) << bits)
	return math.Round(phi/(2*math.Pi)*steps) / steps * 2 * math.Pi
}

func wrapPhase(phi float64) float64 {
	phi = math.Mod(phi, 2*math.Pi)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	return phi
}
