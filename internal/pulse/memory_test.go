package pulse

import "testing"

func TestIntelBudgetSufficient(t *testing.T) {
	// Section 6.1: Intel's 7.65 KB/qubit envelope memory is "enough to
	// support eight drive, four pulse, and one TX envelopes per qubit" at
	// 2.5 GS/s with 25/50/517 ns durations. Verify by construction.
	img := BuildMemoryImage(IntelSpec(), 2.5e9, 14)
	if got := img.Bytes(14); got > 7650 {
		t.Fatalf("memory image %d bytes exceeds the 7.65 KB Intel budget", got)
	}
	if got := img.Bytes(14); got < 3000 {
		t.Fatalf("memory image %d bytes implausibly small", got)
	}
	if len(img.Entries) != 13 {
		t.Fatalf("Intel spec stores 13 envelopes, got %d", len(img.Entries))
	}
}

func TestMemoryImageWordCounts(t *testing.T) {
	img := BuildMemoryImage(IntelSpec(), 2.5e9, 14)
	// Drive: ~62 samples x 2 words (IQ); pulse: 125 x 1; TX: ~1292 x 1.
	if n := len(img.Entries["drive0"]); n < 120 || n > 130 {
		t.Fatalf("drive envelope words %d, want ~124", n)
	}
	if n := len(img.Entries["pulse0"]); n != 125 {
		t.Fatalf("pulse envelope words %d, want 125", n)
	}
	if n := len(img.Entries["tx"]); n < 1280 || n > 1300 {
		t.Fatalf("TX envelope words %d, want ~1293", n)
	}
}

func TestOpt2ShrinksNothingInWordCount(t *testing.T) {
	// Opt-#2 cuts bit PRECISION, not sample counts: a 6-bit image has the
	// same word counts but packs into single bytes.
	img14 := BuildMemoryImage(IntelSpec(), 2.5e9, 14)
	img6 := BuildMemoryImage(IntelSpec(), 2.5e9, 6)
	if len(img14.Entries["drive0"]) != len(img6.Entries["drive0"]) {
		t.Fatal("bit precision must not change sample counts")
	}
	if img6.Bytes(6) >= img14.Bytes(14) {
		t.Fatal("6-bit image must be smaller in bytes")
	}
}

func TestAddressTableContiguous(t *testing.T) {
	img := BuildMemoryImage(IntelSpec(), 2.5e9, 14)
	tbl := img.AddressTable()
	if len(tbl) != len(img.Entries) {
		t.Fatal("address table incomplete")
	}
	// Ranges must be non-overlapping and exactly cover the image.
	total := 0
	covered := 0
	for name, r := range tbl {
		if r[1] <= r[0] {
			t.Fatalf("%s: empty range %v", name, r)
		}
		covered += r[1] - r[0]
		total += len(img.Entries[name])
	}
	if covered != total {
		t.Fatalf("address table covers %d words, image has %d", covered, total)
	}
}

func TestEnvelopeWordsBounded(t *testing.T) {
	img := BuildMemoryImage(IntelSpec(), 2.5e9, 14)
	max := uint16(1<<14 - 1)
	for name, words := range img.Entries {
		for i, w := range words {
			if w > max {
				t.Fatalf("%s[%d] = %d exceeds 14 bits", name, i, w)
			}
		}
	}
}
