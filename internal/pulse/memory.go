package pulse

import (
	"fmt"
	"math"
)

// MemoryImage is a QCI envelope-memory image: the bytes the drive/pulse/TX
// circuits stream every gate. Section 6.1 adopts Intel's per-qubit budget
// (7.65 KB/qubit) sized for eight drive, four pulse and one TX envelope per
// qubit at 2.5 GS/s with 25/50/517 ns durations.
type MemoryImage struct {
	// Entries maps envelope names to their sample words.
	Entries map[string][]uint16
}

// EnvelopeSpec sizes one stored envelope.
type EnvelopeSpec struct {
	Name     string
	Env      Envelope
	Duration float64
	// IQ doubles storage (drive envelopes carry amplitude and phase words).
	IQ bool
}

// IntelSpec returns the Section 6.1 memory plan: 8 drive + 4 pulse + 1 TX
// envelopes per qubit.
func IntelSpec() []EnvelopeSpec {
	specs := make([]EnvelopeSpec, 0, 13)
	for i := 0; i < 8; i++ {
		specs = append(specs, EnvelopeSpec{
			Name: fmt.Sprintf("drive%d", i), Env: GaussianEnvelope{}, Duration: 25e-9, IQ: true,
		})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, EnvelopeSpec{
			Name: fmt.Sprintf("pulse%d", i), Env: FlatTopEnvelope{RampFrac: 0.14}, Duration: 50e-9,
		})
	}
	specs = append(specs, EnvelopeSpec{Name: "tx", Env: SquareEnvelope{}, Duration: 517e-9})
	return specs
}

// BuildMemoryImage samples every envelope at the given rate and bit width.
func BuildMemoryImage(specs []EnvelopeSpec, sampleRateHz float64, bits int) *MemoryImage {
	img := &MemoryImage{Entries: make(map[string][]uint16, len(specs))}
	scale := float64(uint64(1)<<uint(bits)) - 1
	for _, s := range specs {
		n := int(math.Round(s.Duration * sampleRateHz))
		if n < 1 {
			n = 1
		}
		samples := Samples(s.Env, n, s.Duration)
		words := make([]uint16, 0, n*wordsPerSample(s.IQ))
		for _, a := range samples {
			w := uint16(math.Round(a * scale))
			words = append(words, w)
			if s.IQ {
				words = append(words, w) // phase word slot
			}
		}
		img.Entries[s.Name] = words
	}
	return img
}

func wordsPerSample(iq bool) int {
	if iq {
		return 2
	}
	return 1
}

// Bytes returns the total image size with each word stored in ceil(bits/8)
// bytes (14-bit words occupy two bytes in the Intel layout).
func (m *MemoryImage) Bytes(bits int) int {
	per := (bits + 7) / 8
	total := 0
	for _, words := range m.Entries {
		total += len(words) * per
	}
	return total
}

// AddressTable builds the gate-table address ranges (start, end) per
// envelope — the "gate table address" field of the drive ISA points here.
func (m *MemoryImage) AddressTable() map[string][2]int {
	// Deterministic order: sort names.
	names := make([]string, 0, len(m.Entries))
	for n := range m.Entries {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make(map[string][2]int, len(names))
	addr := 0
	for _, n := range names {
		end := addr + len(m.Entries[n])
		out[n] = [2]int{addr, end}
		addr = end
	}
	return out
}
