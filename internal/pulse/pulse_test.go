package pulse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianEnvelopeShape(t *testing.T) {
	g := GaussianEnvelope{NumSigma: 2.5}
	T := 25e-9
	if a := g.Amplitude(0, T); math.Abs(a) > 1e-12 {
		t.Fatalf("gaussian should start at 0, got %v", a)
	}
	if a := g.Amplitude(T, T); math.Abs(a) > 1e-12 {
		t.Fatalf("gaussian should end at 0, got %v", a)
	}
	if a := g.Amplitude(T/2, T); math.Abs(a-1) > 1e-12 {
		t.Fatalf("gaussian peak should be 1, got %v", a)
	}
	// Symmetric.
	if math.Abs(g.Amplitude(0.3*T, T)-g.Amplitude(0.7*T, T)) > 1e-12 {
		t.Fatal("gaussian should be symmetric")
	}
}

func TestCosineEnvelope(t *testing.T) {
	c := CosineEnvelope{}
	T := 1.0
	if math.Abs(c.Amplitude(0, T)) > 1e-12 || math.Abs(c.Amplitude(T, T)) > 1e-9 {
		t.Fatal("cosine envelope must be zero-ended")
	}
	if math.Abs(c.Amplitude(T/2, T)-1) > 1e-12 {
		t.Fatal("cosine envelope peak must be 1")
	}
}

func TestFlatTopEnvelope(t *testing.T) {
	f := FlatTopEnvelope{RampFrac: 0.2}
	T := 50e-9
	if math.Abs(f.Amplitude(0, T)) > 1e-12 {
		t.Fatal("flat-top must start at zero")
	}
	// Hold region is flat at 1.
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(f.Amplitude(frac*T, T)-1) > 1e-12 {
			t.Fatalf("flat-top hold at %v not 1", frac)
		}
	}
	// Monotonic ramp-up.
	prev := -1.0
	for i := 0; i <= 20; i++ {
		a := f.Amplitude(float64(i)/20*0.2*T, T)
		if a < prev-1e-12 {
			t.Fatal("ramp-up not monotonic")
		}
		prev = a
	}
}

func TestUnitStepEnvelope(t *testing.T) {
	u := UnitStepEnvelope{}
	if u.Amplitude(0, 1) != 1 || u.Amplitude(0.5, 1) != 1 || u.Amplitude(1, 1) != 1 {
		t.Fatal("unit step must be 1 inside the pulse")
	}
	if u.Amplitude(-0.1, 1) != 0 || u.Amplitude(1.1, 1) != 0 {
		t.Fatal("unit step must be 0 outside the pulse")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	in := []float64{0, 0.5, -0.5, 1, -1, 0.123456}
	out := Quantize(in, 14)
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1.0/(1<<13) {
			t.Fatalf("14-bit quantisation error too large at %d: %v vs %v", i, out[i], in[i])
		}
	}
	// Exact grid points survive.
	if out[1] != 0.5 || out[3] != 1 {
		t.Fatal("grid points should be exact")
	}
}

func TestQuantizeCoarse(t *testing.T) {
	// 2-bit signed: grid is multiples of 1/2.
	out := Quantize([]float64{0.3, 0.74}, 2)
	if out[0] != 0.5 || out[1] != 0.5 {
		t.Fatalf("2-bit quantisation = %v, want [0.5 0.5]", out)
	}
}

func TestQuantizeErrorDecreasesWithBits(t *testing.T) {
	env := Samples(GaussianEnvelope{}, 64, 25e-9)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{3, 5, 7, 9, 12} {
		q := Quantize(env, bits)
		var rms float64
		for i := range env {
			d := q[i] - env[i]
			rms += d * d
		}
		rms = math.Sqrt(rms / float64(len(env)))
		if rms > prev+1e-15 {
			t.Fatalf("quantisation RMS error should not grow with bits (bits=%d: %v > %v)", bits, rms, prev)
		}
		prev = rms
	}
}

func TestAddNoiseSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sig := make([]float64, 20000)
	for i := range sig {
		sig[i] = math.Sin(float64(i) / 10)
	}
	noisy := AddNoiseSNR(sig, 20, rng) // 20 dB → noise power = signal/100
	var np, sp float64
	for i := range sig {
		d := noisy[i] - sig[i]
		np += d * d
		sp += sig[i] * sig[i]
	}
	ratio := 10 * math.Log10(sp/np)
	if math.Abs(ratio-20) > 0.5 {
		t.Fatalf("achieved SNR %.2f dB, want ~20 dB", ratio)
	}
}

func TestNCOVirtualRz(t *testing.T) {
	n := NewNCO(NCOConfig{SampleRateHz: 2.5e9, FreqHz: 200e6})
	n.AccumulatePhase(math.Pi / 2)
	if math.Abs(n.Phase()-math.Pi/2) > 1e-12 {
		t.Fatalf("phase accumulator = %v, want π/2", n.Phase())
	}
	// Accumulation wraps.
	n.AccumulatePhase(2 * math.Pi)
	if math.Abs(n.Phase()-math.Pi/2) > 1e-12 {
		t.Fatal("phase accumulator should wrap modulo 2π")
	}
}

func TestNCOGenerateIQ(t *testing.T) {
	n := NewNCO(NCOConfig{SampleRateHz: 2.5e9, FreqHz: 0})
	iq := n.GenerateIQ(GaussianEnvelope{}, 25e-9, 0)
	if len(iq) != 62 && len(iq) != 63 {
		t.Fatalf("25ns at 2.5GHz should give ~62 samples, got %d", len(iq))
	}
	// With zero NCO frequency and zero phases, Q must be 0 and I the envelope.
	for i, s := range iq {
		if math.Abs(s.Q) > 1e-12 {
			t.Fatalf("sample %d: Q=%v, want 0", i, s.Q)
		}
		if s.I < -1e-12 || s.I > 1+1e-12 {
			t.Fatalf("sample %d: I=%v outside [0,1]", i, s.I)
		}
	}
}

func TestNCOGatePhaseRotatesIQ(t *testing.T) {
	n := NewNCO(NCOConfig{SampleRateHz: 2.5e9, FreqHz: 0})
	iqX := n.GenerateIQ(UnitStepEnvelope{}, 4e-9, 0)
	iqY := n.GenerateIQ(UnitStepEnvelope{}, 4e-9, math.Pi/2)
	for i := range iqX {
		if math.Abs(iqX[i].I-iqY[i].Q) > 1e-12 || math.Abs(iqX[i].Q+iqY[i].I) > 1e-9 {
			t.Fatal("π/2 gate phase should rotate I into Q")
		}
	}
}

func TestZCorrectionTable(t *testing.T) {
	z := NewZCorrectionTable()
	z.Set(3, 1, 0.01)
	z.Set(3, 2, -0.02)
	c := z.CorrectionsFor(3)
	if len(c) != 2 || c[1] != 0.01 || c[2] != -0.02 {
		t.Fatalf("corrections = %v", c)
	}
	if z.CorrectionsFor(9) != nil {
		t.Fatal("missing target should return nil")
	}
}

func TestPeriodicTrain(t *testing.T) {
	tr := PeriodicTrain(12, 4)
	if tr.Count() != 3 {
		t.Fatalf("count = %d, want 3", tr.Count())
	}
	if !tr[0] || !tr[4] || !tr[8] || tr[1] {
		t.Fatal("pulse positions wrong")
	}
}

func TestDriveEnergyResonant(t *testing.T) {
	// A train periodic at the resonator frequency accumulates coherently;
	// off-resonant trains accumulate far less.
	fclk := 24e9
	fres := 6.0e9 // period = 4 clock cycles
	tr := PeriodicTrain(400, 4)
	onRes := tr.DriveEnergyAt(fres, fclk)
	offRes := tr.DriveEnergyAt(fres*1.13, fclk)
	if onRes < float64(tr.Count())*0.999 {
		t.Fatalf("resonant drive energy %v should equal pulse count %d", onRes, tr.Count())
	}
	if offRes > onRes/5 {
		t.Fatalf("off-resonant energy %v should be much smaller than %v", offRes, onRes)
	}
}

func TestFastDrivingDoubleRate(t *testing.T) {
	// Opt-#8: doubling the clock packs twice the pulses per time window at the
	// same resonator frequency → about twice the drive energy per unit time.
	fres := 6.0e9
	slow := PeriodicTrain(100, 4) // 24 GHz clock, one pulse per resonator period
	fast := BurstTrain(200, 8, 2) // 48 GHz clock: same wall time, 2 pulses/period
	eSlow := slow.DriveEnergyAt(fres, 24e9)
	eFast := fast.DriveEnergyAt(fres, 48e9)
	// Two pulses π/4 apart add to |1+e^{iπ/4}| ≈ 1.85 per period.
	if eFast < 1.8*eSlow {
		t.Fatalf("fast driving should ~double drive energy: %v vs %v", eFast, eSlow)
	}
	if fast.Count() != 2*slow.Count() {
		t.Fatal("burst train should double the pulse count")
	}
}

func TestQuickQuantizeBounded(t *testing.T) {
	f := func(v float64, bits uint8) bool {
		b := int(bits%14) + 1
		in := math.Mod(v, 1)
		q := QuantizeValue(in, b)
		return q >= -1 && q <= 1 && math.Abs(q-in) <= 1.0/float64(int64(1)<<(b-1))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnvelopesBounded(t *testing.T) {
	envs := []Envelope{GaussianEnvelope{}, CosineEnvelope{}, FlatTopEnvelope{}, UnitStepEnvelope{}}
	f := func(frac float64) bool {
		x := math.Abs(math.Mod(frac, 1))
		for _, e := range envs {
			a := e.Amplitude(x*50e-9, 50e-9)
			if a < -1e-9 || a > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedTrainPhaseLock(t *testing.T) {
	// One pulse group per resonator period even for irrational ratios.
	tr := AlignedTrain(4096, 6.8e9, 24e9, 1)
	want := int(math.Floor(6.8 / 24.0 * 4096.0))
	if c := tr.Count(); c < want-2 || c > want+2 {
		t.Fatalf("aligned train fired %d times, want ~%d", c, want)
	}
	// Its coherent energy at the resonator frequency approaches the count.
	e := tr.DriveEnergyAt(6.8e9, 24e9)
	if e < 0.85*float64(tr.Count()) {
		t.Fatalf("aligned train not phase-locked: energy %v of %d pulses", e, tr.Count())
	}
	// Burst variant doubles the count.
	tr2 := AlignedTrain(4096, 6.8e9, 48e9, 2)
	if tr2.Count() < int(math.Floor(1.8*6.8/48.0*4096.0)) {
		t.Fatalf("burst aligned train too sparse: %d", tr2.Count())
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	// bits <= 0 and huge bit widths pass samples through unchanged.
	in := []float64{0.123, -0.5}
	for _, bits := range []int{0, -3, 60} {
		out := Quantize(in, bits)
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("bits=%d should pass through, got %v", bits, out)
			}
		}
		if v := QuantizeValue(0.123, bits); v != 0.123 {
			t.Fatalf("QuantizeValue bits=%d should pass through", bits)
		}
	}
	// Saturation at the rails.
	if q := QuantizeValue(1.7, 4); q != 1 {
		t.Fatalf("over-range should clamp to 1, got %v", q)
	}
	if q := QuantizeValue(-1.7, 4); q != -1 {
		t.Fatalf("under-range should clamp to -1, got %v", q)
	}
}

func TestSamplesSinglePoint(t *testing.T) {
	s := Samples(CosineEnvelope{}, 1, 50e-9)
	if len(s) != 1 || math.Abs(s[0]-1) > 1e-12 {
		t.Fatalf("single-sample envelope should sit at the midpoint peak: %v", s)
	}
}

func TestPhaseQuantization(t *testing.T) {
	n := NewNCO(NCOConfig{SampleRateHz: 2.5e9, FreqHz: 0, PhaseBits: 4})
	// 4-bit phase: grid of 2π/16; an odd angle snaps to it.
	n.AccumulatePhase(0.5)
	grid := 2 * math.Pi / 16
	snapped := math.Round(0.5/grid) * grid
	if math.Abs(n.Phase()-snapped) > 1e-12 {
		t.Fatalf("phase %v, want snapped %v", n.Phase(), snapped)
	}
	// Negative accumulation wraps into [0, 2π).
	n2 := NewNCO(NCOConfig{SampleRateHz: 2.5e9})
	n2.AccumulatePhase(-math.Pi / 2)
	if n2.Phase() < 0 || n2.Phase() >= 2*math.Pi {
		t.Fatalf("phase %v not wrapped", n2.Phase())
	}
}
