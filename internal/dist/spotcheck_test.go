package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"qisim/internal/metrics"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qisim/internal/backoff"
	"qisim/internal/checkpoint"
)

// frameForTest wraps a raw payload in a valid QISNAP01 container — the CRC
// is correct, so only the content digest stands between a rewritten
// payload and the fold.
func frameForTest(payload []byte) []byte { return checkpoint.EncodeContainer(payload) }

func TestUnitResultDigestRejectsTampering(t *testing.T) {
	u := UnitResult{Kind: "toy", Key: "k-digest", Start: 0, End: 2,
		States: []json.RawMessage{[]byte("11"), []byte("22")}, Events: []int{1, 1}}
	b, err := EncodeUnitResult(u)
	if err != nil {
		t.Fatal(err)
	}
	// Re-frame the container with a mutated state but a fresh, valid CRC:
	// the CRC passes, the digest must not. Decode, alter, re-encode keeping
	// the ORIGINAL digest.
	good, err := DecodeUnitResult(b)
	if err != nil {
		t.Fatal(err)
	}
	forged := good
	forged.States = []json.RawMessage{[]byte("99"), []byte("22")}
	// Marshal directly (bypassing EncodeUnitResult's digest restamp) to
	// simulate an attacker or middlebox rewriting payload JSON in flight.
	payload, err := json.Marshal(forged)
	if err != nil {
		t.Fatal(err)
	}
	reframed := frameForTest(payload)
	if _, err := DecodeUnitResult(reframed); err == nil {
		t.Fatal("tampered states with stale digest must not decode")
	}
	// A missing digest (legacy v1-style payload) is also rejected.
	forged.States = good.States
	forged.Digest = ""
	payload, _ = json.Marshal(forged)
	if _, err := DecodeUnitResult(frameForTest(payload)); err == nil {
		t.Fatal("digest-less payload must not decode")
	}
}

func TestSpotCheckPassRaisesTrust(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)
	c.Register(context.Background(), WorkerInfo{ID: "honest"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-spot-pass", core, toyPlan)
	g := waitGrant(t, c, "honest")
	for g != nil {
		report(t, c, core, "honest", g)
		var err error
		if g, err = c.Claim(context.Background(), "honest", ""); err != nil {
			t.Fatal(err)
		}
	}
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("spot-checked bytes differ from standalone:\n%s\n%s", o.body, want)
	}
	st := c.Stats()
	if st.SpotChecksPassed == 0 || st.SpotChecksFailed != 0 || st.Quarantines != 0 {
		t.Fatalf("want only passed spot-checks, got %+v", st)
	}
}

func TestSpotCheckMismatchQuarantinesAndCompletes(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1, QuarantineFor: 10 * time.Minute})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)
	c.Register(context.Background(), WorkerInfo{ID: "liar"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-spot-fail", core, toyPlan)

	// The liar claims one unit and reports forged states: valid JSON ints
	// (they decode), wrong values (they cannot match the re-execution).
	g := waitGrant(t, c, "liar")
	n := g.End - g.Start
	states := make([]json.RawMessage, n)
	events := make([]int, n)
	for i := range states {
		states[i] = json.RawMessage(fmt.Sprintf("%d", 7_777_000+i))
		events[i] = 1
	}
	body, err := EncodeUnitResult(UnitResult{Kind: g.Kind, Key: g.Key, Start: g.Start,
		End: g.End, States: states, Events: events, Worker: "liar"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), "liar", body); err != nil {
		t.Fatal(err)
	}

	// Quarantined: no grants, and a further report is told to abandon.
	if g2, err := c.Claim(context.Background(), "liar", ""); err != nil || g2 != nil {
		t.Fatalf("quarantined worker claimed a grant: %v %v", g2, err)
	}
	if err := c.Report(context.Background(), "liar", body); !errors.Is(err, ErrGone) {
		t.Fatalf("quarantined report: want ErrGone, got %v", err)
	}

	// With the only worker shunned, the local lane finishes the job and
	// the forged unit's truth comes from the coordinator's own re-run.
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("post-quarantine bytes differ from standalone:\n%s\n%s", o.body, want)
	}
	st := c.Stats()
	if st.SpotChecksFailed != 1 || st.Quarantines != 1 {
		t.Fatalf("quarantine not observed: %+v", st)
	}

	// Timed re-admission: after QuarantineFor the worker may claim again.
	clk.Advance(11 * time.Minute)
	if _, err := c.Claim(context.Background(), "liar", ""); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.QuarantineReadmits != 1 {
		t.Fatalf("timed re-admission not observed: %+v", st)
	}
}

// forgedReport builds a unit-result container for g whose states are valid
// JSON ints but cannot match any honest re-execution.
func forgedReport(t *testing.T, g *LeaseGrant, worker string, salt int) []byte {
	t.Helper()
	n := g.End - g.Start
	states := make([]json.RawMessage, n)
	events := make([]int, n)
	for i := range states {
		states[i] = json.RawMessage(fmt.Sprintf("%d", salt+i))
		events[i] = 1
	}
	body, err := EncodeUnitResult(UnitResult{Kind: g.Kind, Key: g.Key, Start: g.Start,
		End: g.End, States: states, Events: events, Worker: worker})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// gatedCore wraps a Core so a test can hold one RunWindow open — standing
// in for a slow spot-check re-execution — while further reports arrive.
type gatedCore struct {
	Core
	mu      sync.Mutex
	block   chan struct{} // non-nil: the next RunWindow waits on it (one-shot)
	entered chan struct{} // closed when that RunWindow begins
}

func (g *gatedCore) RunWindow(ctx context.Context, p Plan, start, end int) ([]json.RawMessage, []int, error) {
	g.mu.Lock()
	block, entered := g.block, g.entered
	g.block, g.entered = nil, nil
	g.mu.Unlock()
	if entered != nil {
		close(entered)
	}
	if block != nil {
		<-block
	}
	return g.Core.RunWindow(ctx, p, start, end)
}

// TestDuplicateReportDuringVerifyStillAudited closes the double-send
// evasion: while a unit's spot-check is in flight, a duplicated delivery of
// the same forged report must not complete the unit unaudited (which would
// let the in-flight audit bail before comparing). The chaos duplicate fault
// triggers this organically; a malicious worker can trigger it on purpose.
func TestDuplicateReportDuringVerifyStillAudited(t *testing.T) {
	clk := newFakeClock()
	core := &gatedCore{Core: toyCore(1)}
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1, QuarantineFor: 10 * time.Minute})
	want := runFullBytes(t, toyCore(1), toyPlan)
	c.Register(context.Background(), WorkerInfo{ID: "liar"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-dup-verify", core, toyPlan)
	g := waitGrant(t, c, "liar")
	body := forgedReport(t, g, "liar", 4_444_000)

	release := make(chan struct{})
	entered := make(chan struct{})
	core.mu.Lock()
	core.block, core.entered = release, entered
	core.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- c.Report(context.Background(), "liar", body) }()
	<-entered // the audit re-execution is in flight, coordinator lock released

	// The duplicated delivery of the same forged report: it must be parked
	// as a duplicate, not accepted into the fold.
	if err := c.Report(context.Background(), "liar", body); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SpotChecksFailed != 1 || st.Quarantines != 1 {
		t.Fatalf("duplicate delivery evaded the audit: %+v", st)
	}
	if st.DupReports == 0 {
		t.Fatalf("duplicate delivery not parked: %+v", st)
	}
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("bytes differ from standalone after double-sent forgery:\n%s\n%s", o.body, want)
	}
}

// TestSpotCheckSurvivesReporterDisconnect closes the hang-up evasion: the
// audit re-execution must not run under the reporter's request context, or
// a worker that disconnects right after uploading (or whose client deadline
// fires during a slow re-run) gets its forgery accepted unaudited.
func TestSpotCheckSurvivesReporterDisconnect(t *testing.T) {
	clk := newFakeClock()
	core := toyCore(1)
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1, QuarantineFor: 10 * time.Minute})
	want := runFullBytes(t, core, toyPlan)
	c.Register(context.Background(), WorkerInfo{ID: "liar"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-dead-ctx", core, toyPlan)
	g := waitGrant(t, c, "liar")
	body := forgedReport(t, g, "liar", 5_555_000)

	rctx, cancel := context.WithCancel(context.Background())
	cancel() // the reporter hung up the moment the upload landed
	if err := c.Report(rctx, "liar", body); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SpotChecksFailed != 1 || st.Quarantines != 1 {
		t.Fatalf("cancelled report context evaded the audit: %+v", st)
	}
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("bytes differ from standalone after disconnect forgery:\n%s\n%s", o.body, want)
	}
}

func TestTouchDoesNotClearQuarantine(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute,
		QuarantineFor: time.Hour})
	c.Register(context.Background(), WorkerInfo{ID: "w"}) //nolint:errcheck
	c.mu.Lock()
	c.quarantineLocked(c.workers["w"], clk.Now())
	c.mu.Unlock()
	// Registration, claims, renew attempts — none of them lift quarantine.
	c.Register(context.Background(), WorkerInfo{ID: "w"}) //nolint:errcheck
	if g, _ := c.Claim(context.Background(), "w", ""); g != nil {
		t.Fatal("quarantined worker got a grant after re-register")
	}
	c.mu.Lock()
	still := c.workers["w"].quarantined
	c.mu.Unlock()
	if !still {
		t.Fatal("interaction cleared quarantine; only time may")
	}
}

func TestClaimIdempotencyKeyReplaysGrant(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "w1"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-idem", core, toyPlan)

	g1 := waitGrantIdem(t, c, "w1", "claim-1")
	grantsAfterFirst := c.Stats().Grants
	// The duplicated delivery: same idempotency key → the SAME grant, no
	// second lease, no extra grant counted.
	g1b, err := c.Claim(context.Background(), "w1", "claim-1")
	if err != nil {
		t.Fatal(err)
	}
	if g1b == nil || g1b.Start != g1.Start || g1b.End != g1.End {
		t.Fatalf("replay returned %+v, want the original grant [%d,%d)", g1b, g1.Start, g1.End)
	}
	st := c.Stats()
	if st.Grants != grantsAfterFirst || st.IdemReplays != 1 {
		t.Fatalf("replay leaked a grant: %+v (had %d grants)", st, grantsAfterFirst)
	}
	// A fresh key gets fresh work.
	g2, err := c.Claim(context.Background(), "w1", "claim-2")
	if err != nil {
		t.Fatal(err)
	}
	if g2 == nil || g2.Start == g1.Start {
		t.Fatalf("fresh key got %+v, want the next unit", g2)
	}
	// Finish the job cleanly.
	report(t, c, core, "w1", g1)
	report(t, c, core, "w1", g2)
	for {
		g, err := c.Claim(context.Background(), "w1", "")
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			break
		}
		report(t, c, core, "w1", g)
	}
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
}

// waitGrantIdem polls Claim with a fixed idempotency key until granted.
func waitGrantIdem(t *testing.T, c *Coordinator, worker, idemKey string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g, err := c.Claim(context.Background(), worker, idemKey)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			return g
		}
		// The recorded no-work outcome would replay forever: advance the
		// key per poll but keep the caller's key for the granted claim by
		// retrying the same key after a beat.
		time.Sleep(time.Millisecond)
		c.mu.Lock()
		if w := c.workers[worker]; w != nil && w.lastIdemKey == idemKey {
			w.lastIdemKey, w.lastGrant = "", nil
		}
		c.mu.Unlock()
	}
	t.Fatal("no grant became available")
	return nil
}

// ---- HTTP client hardening ----

func TestClientHonorsRetryAfterOn429And503(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(status)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}))
		cl := &Client{Base: srv.URL, MaxAttempts: 3,
			Backoff: backoff.Policy{Base: 50 * time.Millisecond, Cap: 50 * time.Millisecond, Factor: 2},
			Rand:    func() float64 { return 1.0 },
		}
		start := time.Now()
		err := cl.Register(context.Background(), WorkerInfo{ID: "w"})
		elapsed := time.Since(start)
		srv.Close()
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if calls.Load() != 2 {
			t.Fatalf("status %d: %d calls, want 2", status, calls.Load())
		}
		// Sleep must be ≥ hint (1s) + full-jitter draw (rnd=1 → 50ms): the
		// hint is honored AND decorrelated, on both status codes.
		if elapsed < 1050*time.Millisecond {
			t.Fatalf("status %d: retried after %v, want ≥ 1.05s (hint + jitter)", status, elapsed)
		}
	}
}

func TestClientRetryBudgetExhaustionStopsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	budget := backoff.NewBudget(0.1, 1) // reserve of exactly one retry
	cl := &Client{Base: srv.URL, MaxAttempts: 10, Budget: budget,
		Backoff: backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 2},
		Rand:    func() float64 { return 0 },
	}
	err := cl.Register(context.Background(), WorkerInfo{ID: "w"})
	if err == nil {
		t.Fatal("want error from exhausted budget")
	}
	// First attempt + the single budgeted retry = 2 calls, not 10.
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2 (budget must stop the retry loop)", calls.Load())
	}
	if allowed, denied := budget.Stats(); allowed != 1 || denied == 0 {
		t.Fatalf("budget stats (%d, %d), want 1 allowed and ≥1 denied", allowed, denied)
	}
}

func TestClientPerRPCTimeout(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall) // LIFO: release the handler before Close waits on it
	cl := &Client{Base: srv.URL, MaxAttempts: 1, RPCTimeout: 50 * time.Millisecond}
	start := time.Now()
	err := cl.Register(context.Background(), WorkerInfo{ID: "w"})
	if err == nil {
		t.Fatal("want timeout error from a stalled coordinator")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("per-RPC deadline did not fire: waited %v", el)
	}
}

func TestClientRejectsTamperedGrant(t *testing.T) {
	grant := LeaseGrant{Kind: "toy", Key: "k-grant", Plan: Plan{Shots: 64, Seed: 3, ShardSize: 16},
		Start: 0, End: 2, TTLMS: 1000}
	grant.Digest = grantDigest(grant)
	tampered := grant
	tampered.Start, tampered.End = 2, 4 // rewritten in flight; digest now stale
	undigested := grant
	undigested.Digest = ""
	for name, g := range map[string]LeaseGrant{"stale-digest": tampered, "no-digest": undigested} {
		g := g
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(g) //nolint:errcheck
		}))
		cl := &Client{Base: srv.URL, MaxAttempts: 1}
		_, err := cl.Claim(context.Background(), "w", "c1")
		srv.Close()
		if err == nil {
			t.Fatalf("%s: corrupted grant accepted", name)
		}
	}
	// The untampered grant still round-trips.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(grant) //nolint:errcheck
	}))
	defer srv.Close()
	cl := &Client{Base: srv.URL, MaxAttempts: 1}
	got, err := cl.Claim(context.Background(), "w", "c1")
	if err != nil || got == nil || got.Start != grant.Start || got.End != grant.End {
		t.Fatalf("valid grant refused: %+v %v", got, err)
	}
}

// TestClaimDigestMismatchRetriesSameIdemKey: a corrupted claim response
// must be re-claimed under the SAME idempotency key so the coordinator
// replays the already-recorded grant, instead of failing terminally and
// stranding the leased unit until TTL expiry (the caller's next logical
// claim mints a fresh key).
func TestClaimDigestMismatchRetriesSameIdemKey(t *testing.T) {
	grant := LeaseGrant{Kind: "toy", Key: "k-idem-retry", Plan: Plan{Shots: 64, Seed: 3, ShardSize: 16},
		Start: 0, End: 2, TTLMS: 1000}
	grant.Digest = grantDigest(grant)
	tampered := grant
	tampered.Start, tampered.End = 2, 4 // rewritten in flight; digest now stale

	var mu sync.Mutex
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		mu.Lock()
		keys = append(keys, req.IdemKey)
		first := len(keys) == 1
		mu.Unlock()
		if first {
			json.NewEncoder(w).Encode(tampered) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(grant) //nolint:errcheck
	}))
	defer srv.Close()
	cl := &Client{Base: srv.URL, MaxAttempts: 3,
		Backoff: backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 2},
		Rand:    func() float64 { return 0 },
	}
	got, err := cl.Claim(context.Background(), "w", "claim-7")
	if err != nil || got == nil || got.Start != grant.Start || got.End != grant.End {
		t.Fatalf("claim after corrupted first response: %+v %v", got, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] != "claim-7" || keys[1] != "claim-7" {
		t.Fatalf("idem keys %v, want the re-claim to reuse claim-7", keys)
	}
}

// goneReportCoord is a CoordinatorAPI whose Report always answers ErrGone
// (quarantined worker / vanished job).
type goneReportCoord struct {
	reports atomic.Int64
}

func (f *goneReportCoord) Register(context.Context, WorkerInfo) error { return nil }
func (f *goneReportCoord) Claim(context.Context, string, string) (*LeaseGrant, error) {
	return nil, nil
}
func (f *goneReportCoord) Renew(context.Context, string, string, int, int, *metrics.Summary) error {
	return nil
}
func (f *goneReportCoord) Report(context.Context, string, []byte) error {
	f.reports.Add(1)
	return ErrGone
}

// TestWorkerAbandonsUnitOnGoneReport: a 410 on the result upload means the
// coordinator refuses the unit outright — the worker must abandon it after
// one attempt, not re-push the rejected upload through its retry budget.
func TestWorkerAbandonsUnitOnGoneReport(t *testing.T) {
	coord := &goneReportCoord{}
	w, err := NewWorker(WorkerConfig{ID: "w1", Coordinator: coord,
		Cores:   func(string, json.RawMessage) (Core, error) { return toyCore(1), nil },
		Backoff: backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := &LeaseGrant{Kind: "toy", Key: "k-gone", Plan: Plan{Shots: 64, Seed: 3, ShardSize: 16},
		Start: 0, End: 2}
	w.runUnit(context.Background(), g)
	if n := coord.reports.Load(); n != 1 {
		t.Fatalf("worker re-pushed a 410-refused upload %d times, want 1 attempt", n)
	}
	if n := w.abandoned.Load(); n != 1 {
		t.Fatalf("abandoned = %d, want 1", n)
	}
}
