package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qisim/internal/backoff"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/simerr"
)

// CoordinatorAPI is the coordinator surface a worker drives. The
// Coordinator implements it directly (in-process fleets, tests); Client
// implements it over HTTP (real fleets).
type CoordinatorAPI interface {
	Register(ctx context.Context, info WorkerInfo) error
	// Claim returns the next work unit, or nil when none is available.
	// idemKey is the claim's idempotency key: a duplicated delivery of the
	// same key replays the same outcome instead of leasing a second unit
	// ("" opts out).
	Claim(ctx context.Context, workerID, idemKey string) (*LeaseGrant, error)
	// Renew extends a lease; ErrGone means abandon the unit. sum, when
	// non-nil, piggybacks the worker's metrics summary on the heartbeat
	// (the federation path — see Coordinator.Renew).
	Renew(ctx context.Context, workerID, key string, start, end int, sum *metrics.Summary) error
	// Report uploads a unit result container (idempotent).
	Report(ctx context.Context, workerID string, container []byte) error
}

// CoreBuilder rebuilds a job kind's execution core from the grant's
// parameters on the worker side.
type CoreBuilder func(kind string, params json.RawMessage) (Core, error)

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	ID          string
	Coordinator CoordinatorAPI
	// Advertise is the worker's own base URL, registered for health
	// probes ("" = unprobeable).
	Advertise string
	// Cores rebuilds the per-kind execution core for claimed grants.
	Cores CoreBuilder
	// PollInterval paces claim attempts when no work is available
	// (default 250ms).
	PollInterval time.Duration
	// Backoff paces retries of failed coordinator calls (zero =
	// backoff.Default).
	Backoff backoff.Policy
	// Seed seeds the poll-jitter RNG (0 = 1). Jitter never touches
	// simulation results.
	Seed   int64
	Logger *slog.Logger
	// Trace enables per-unit tracing: each executed window records a
	// local trace shipped with the report, which the coordinator grafts
	// into the job's cross-node trace.
	Trace bool
	// Metrics, when set, samples the worker's metrics summary to piggyback
	// on lease renewals and unit reports (federation). Typically the
	// worker-local registry's Summary method.
	Metrics func() metrics.Summary
	// Flight, when set, records the worker-side lease lifecycle (claims,
	// reports, abandons) into the worker's flight-recorder ring.
	Flight *obs.FlightRecorder
	// UnitSeconds, when set, observes each fully executed unit's wall
	// clock — the feed for the worker-local qisimd_worker_unit_seconds
	// histogram that federation folds into qisimd_fleet_unit_seconds.
	UnitSeconds func(seconds float64)
}

// Worker is the claim → execute → report loop of one fleet member.
type Worker struct {
	cfg WorkerConfig
	rnd *rand.Rand

	draining  atomic.Bool
	mu        sync.Mutex // guards rnd
	claimSeq  atomic.Int64
	claims    atomic.Int64
	execs     atomic.Int64 // units fully executed (the chaos tests' re-run counter)
	reports   atomic.Int64
	abandoned atomic.Int64
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, simerr.Invalidf("dist: worker needs an ID")
	}
	if cfg.Coordinator == nil || cfg.Cores == nil {
		return nil, simerr.Invalidf("dist: worker needs a coordinator and a core builder")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	return &Worker{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Executions returns how many units this worker fully executed (claimed,
// ran to completion, and attempted to report).
func (w *Worker) Executions() int64 { return w.execs.Load() }

// WorkerStats is a snapshot of the worker loop's lifetime counters.
type WorkerStats struct {
	// Claims counts granted leases; Executions the units run to
	// completion; Reports the accepted uploads; Abandoned the units
	// dropped on ErrGone (lease lost or upload refused).
	Claims, Executions, Reports, Abandoned int64
}

// Stats snapshots the worker's counters (the worker-local registry exports
// them as qisimd_worker_* for federation).
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Claims:     w.claims.Load(),
		Executions: w.execs.Load(),
		Reports:    w.reports.Load(),
		Abandoned:  w.abandoned.Load(),
	}
}

// Drain stops the claim loop after the in-flight unit: the worker finishes
// what it holds (its lease stays valid but non-renewable once the
// coordinator notices the drain), reports, and Run returns.
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain was called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Run registers and then loops claim → execute → report until ctx is done
// or Drain is called. Each in-flight unit is heartbeat-renewed at TTL/3; a
// renewal answered with ErrGone abandons the unit (its lease expired and
// the coordinator re-dispatched it — finishing would only produce a
// harmless duplicate report, so the worker stops wasting the cycles).
func (w *Worker) Run(ctx context.Context) error {
	if err := w.cfg.Coordinator.Register(ctx, WorkerInfo{ID: w.cfg.ID, Addr: w.cfg.Advertise}); err != nil {
		return fmt.Errorf("dist: worker %s register: %w", w.cfg.ID, err)
	}
	for ctx.Err() == nil && !w.draining.Load() {
		// One idempotency key per logical claim: transport-level retries
		// and duplicated deliveries of THIS claim collapse to one lease.
		idemKey := fmt.Sprintf("%s.c%d", w.cfg.ID, w.claimSeq.Add(1))
		grant, err := w.cfg.Coordinator.Claim(ctx, w.cfg.ID, idemKey)
		if err != nil {
			w.cfg.Logger.Warn("dist: claim failed", "worker", w.cfg.ID, "err", err)
			if !backoff.Sleep(ctx, w.cfg.Backoff.Delay(0, w.randFloat)) {
				break
			}
			continue
		}
		if grant == nil {
			// No work: jittered poll so an idle fleet does not stampede.
			d := w.cfg.PollInterval/2 + time.Duration(w.randFloat()*float64(w.cfg.PollInterval))
			if !backoff.Sleep(ctx, d) {
				break
			}
			continue
		}
		w.claims.Add(1)
		w.cfg.Flight.Record("worker.claim", obs.String("worker", w.cfg.ID),
			obs.String("key", grant.Key), obs.Int("start", grant.Start), obs.Int("end", grant.End))
		w.runUnit(ctx, grant)
	}
	return ctx.Err()
}

func (w *Worker) randFloat() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rnd.Float64()
}

// runUnit executes one claimed grant: window execution under the
// propagated deadline, heartbeat renewal, and idempotent report.
func (w *Worker) runUnit(ctx context.Context, g *LeaseGrant) {
	core, err := w.cfg.Cores(g.Kind, g.Params)
	if err != nil {
		w.cfg.Logger.Warn("dist: cannot build core for grant", "kind", g.Kind, "err", err)
		return // lease expires; the coordinator retries elsewhere
	}

	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if g.DeadlineMS > 0 {
		var cancelDL context.CancelFunc
		unitCtx, cancelDL = context.WithTimeout(unitCtx, time.Duration(g.DeadlineMS)*time.Millisecond)
		defer cancelDL()
	}

	var tracer *obs.Tracer
	if w.cfg.Trace {
		tracer = obs.NewTracer(obs.TracerConfig{ID: w.cfg.ID})
		unitCtx = obs.WithTracer(unitCtx, tracer)
	}

	// Heartbeat: renew at TTL/3; ErrGone cancels the window (all-or-
	// nothing, so nothing partial is ever reported).
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if g.TTLMS > 0 {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			t := time.NewTicker(time.Duration(g.TTLMS) * time.Millisecond / 3)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-unitCtx.Done():
					return
				case <-t.C:
					err := w.cfg.Coordinator.Renew(unitCtx, w.cfg.ID, g.Key, g.Start, g.End, w.summary())
					if errors.Is(err, ErrGone) {
						w.abandoned.Add(1)
						w.cfg.Flight.Record("worker.abandon", obs.String("worker", w.cfg.ID),
							obs.String("key", g.Key), obs.Int("start", g.Start), obs.Int("end", g.End),
							obs.String("cause", "renew-gone"))
						cancel()
						return
					}
					if err != nil {
						w.cfg.Logger.Warn("dist: renew failed", "worker", w.cfg.ID, "err", err)
					}
				}
			}
		}()
	}

	unitStart := time.Now()
	states, events, runErr := core.RunWindow(unitCtx, g.Plan, g.Start, g.End)
	if runErr == nil && w.cfg.UnitSeconds != nil {
		w.cfg.UnitSeconds(time.Since(unitStart).Seconds())
	}
	close(hbStop)
	hbWG.Wait()
	if runErr != nil {
		// Interrupted or failed: report nothing — the lease expires and
		// the range re-runs elsewhere, reproducing the same bytes.
		w.cfg.Logger.Warn("dist: window failed", "worker", w.cfg.ID,
			"key", g.Key, "start", g.Start, "end", g.End, "err", runErr)
		return
	}
	w.execs.Add(1)

	res := UnitResult{Kind: g.Kind, Key: g.Key, Start: g.Start, End: g.End,
		States: states, Events: events, Worker: w.cfg.ID}
	if tracer != nil {
		tr := tracer.Snapshot()
		res.Trace = &tr
	}
	res.Metrics = w.summary()
	body, err := EncodeUnitResult(res)
	if err != nil {
		w.cfg.Logger.Warn("dist: encode unit result", "err", err)
		return
	}
	// Report with retries on a background-ish context: the work is done
	// and the upload is idempotent, so even a draining worker pushes the
	// result out (parent cancellation still applies through ctx).
	err = backoff.Retry(ctx, w.cfg.Backoff, 4, w.randFloat,
		func(rctx context.Context) (bool, time.Duration, error) {
			if err := w.cfg.Coordinator.Report(rctx, w.cfg.ID, body); err != nil {
				if errors.Is(err, ErrGone) {
					return false, 0, err // 410: the upload is refused outright, not worth retrying
				}
				return true, 0, err
			}
			return false, 0, nil
		})
	if errors.Is(err, ErrGone) {
		// Quarantined reporter or vanished job: abandon the unit as the
		// 410 instructs instead of re-pushing a rejected upload.
		w.abandoned.Add(1)
		w.cfg.Flight.Record("worker.abandon", obs.String("worker", w.cfg.ID),
			obs.String("key", g.Key), obs.Int("start", g.Start), obs.Int("end", g.End),
			obs.String("cause", "report-refused"))
		w.cfg.Logger.Warn("dist: report refused; abandoning unit", "worker", w.cfg.ID,
			"key", g.Key, "start", g.Start, "end", g.End)
		return
	}
	if err != nil {
		w.cfg.Logger.Warn("dist: report failed", "worker", w.cfg.ID, "err", err)
		return
	}
	w.reports.Add(1)
	w.cfg.Flight.Record("worker.report", obs.String("worker", w.cfg.ID),
		obs.String("key", g.Key), obs.Int("start", g.Start), obs.Int("end", g.End))
}

// summary samples the configured metrics provider (nil when unset).
func (w *Worker) summary() *metrics.Summary {
	if w.cfg.Metrics == nil {
		return nil
	}
	s := w.cfg.Metrics()
	return &s
}

// Client is the HTTP implementation of CoordinatorAPI, speaking qisimd's
// /v1/dist endpoints with capped-exponential/full-jitter retries that
// honor Retry-After hints (on 429 AND 503, with jitter layered on top so
// a hinted fleet fans back out instead of stampeding in lockstep), a
// per-RPC deadline on every attempt, and an optional token-bucket retry
// budget that hard-bounds retry amplification under coordinator overload.
type Client struct {
	// Base is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Backoff paces retries (zero = backoff.Default).
	Backoff backoff.Policy
	// MaxAttempts bounds retries per call (default 4).
	MaxAttempts int
	// RPCTimeout caps each individual attempt (default 15s; negative
	// disables). Without it one black-holed TCP connection stalls the
	// whole claim loop for the kernel's timeout, not ours.
	RPCTimeout time.Duration
	// Budget, when non-nil, is the shared token-bucket retry budget:
	// every logical RPC deposits, every retry withdraws, and an empty
	// bucket turns the retryable error into a terminal one. Share one
	// Budget across a process's clients so the bound is per-node.
	Budget *backoff.Budget
	// Rand is the jitter source (nil = worst-case delays).
	Rand func() float64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *Client) rpcTimeout() time.Duration {
	if c.RPCTimeout < 0 {
		return 0
	}
	if c.RPCTimeout == 0 {
		return 15 * time.Second
	}
	return c.RPCTimeout
}

// attemptCtx applies the per-RPC deadline to one attempt.
func (c *Client) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := c.rpcTimeout(); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// budgetGate converts a retryable verdict into a terminal one when the
// retry budget is exhausted.
func (c *Client) budgetGate(retryable bool, err error) (bool, error) {
	if !retryable || c.Budget.Withdraw() {
		return retryable, err
	}
	return false, fmt.Errorf("dist: retry budget exhausted: %w", err)
}

// post sends one JSON (or raw) body and decodes the response into out
// (when non-nil). Retryable statuses: 429, 502, 503, 504 and transport
// errors. 410 maps to ErrGone, 204 to (false-ish) noContent.
func (c *Client) post(ctx context.Context, path, contentType string, body []byte, out any) (noContent bool, err error) {
	c.Budget.Deposit()
	err = backoff.Retry(ctx, c.Backoff, c.attempts(), c.Rand,
		func(rctx context.Context) (bool, time.Duration, error) {
			actx, cancel := c.attemptCtx(rctx)
			defer cancel()
			req, err := http.NewRequestWithContext(actx, http.MethodPost, c.Base+path, bytes.NewReader(body))
			if err != nil {
				return false, 0, err
			}
			req.Header.Set("Content-Type", contentType)
			resp, err := c.http().Do(req)
			if err != nil {
				if ctx.Err() != nil {
					return false, 0, err // caller gone, not the network
				}
				retryable, err := c.budgetGate(true, err)
				return retryable, 0, err
			}
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusNoContent:
				noContent = true
				return false, 0, nil
			case resp.StatusCode == http.StatusGone:
				return false, 0, ErrGone
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusBadGateway ||
				resp.StatusCode == http.StatusServiceUnavailable ||
				resp.StatusCode == http.StatusGatewayTimeout:
				// Retry-After is honored on 429 and 503 alike (a draining
				// coordinator answers 503 with a hint); backoff.Retry adds
				// full jitter on top of the hint.
				hint, _ := backoff.RetryAfter(resp)
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				retryable, err := c.budgetGate(true,
					fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg)))
				return retryable, hint, err
			case resp.StatusCode != http.StatusOK:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return false, 0, fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
			}
			if out == nil {
				io.Copy(io.Discard, resp.Body)
				return false, 0, nil
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return false, 0, fmt.Errorf("dist: %s: decode response: %w", path, err)
			}
			return false, 0, nil
		})
	return noContent, err
}

// Register implements CoordinatorAPI.
func (c *Client) Register(ctx context.Context, info WorkerInfo) error {
	body, err := json.Marshal(info)
	if err != nil {
		return err
	}
	_, err = c.post(ctx, "/v1/dist/register", "application/json", body, nil)
	return err
}

type claimRequest struct {
	Worker string `json:"worker"`
	// IdemKey is the claim's idempotency key (see CoordinatorAPI.Claim).
	IdemKey string `json:"idem_key,omitempty"`
}

// Claim implements CoordinatorAPI (nil grant = no work, from 204).
func (c *Client) Claim(ctx context.Context, workerID, idemKey string) (*LeaseGrant, error) {
	body, err := json.Marshal(claimRequest{Worker: workerID, IdemKey: idemKey})
	if err != nil {
		return nil, err
	}
	// A grant corrupted in transit can survive JSON decoding with a wrong
	// window, seed or plan — the worker would then compute honest bytes
	// over garbage and fail the coordinator's spot-check. Refuse such a
	// grant and re-claim with the SAME idempotency key: the coordinator has
	// already recorded the lease under that key, so the replay returns the
	// recorded grant intact. Failing terminally here would strand the
	// leased unit until TTL expiry (the caller's next claim mints a fresh
	// key, which grants a different unit).
	for attempt := 0; ; attempt++ {
		var g LeaseGrant
		noContent, err := c.post(ctx, "/v1/dist/claim", "application/json", body, &g)
		if err != nil {
			return nil, err
		}
		if noContent {
			return nil, nil
		}
		if g.Digest != "" && g.Digest == grantDigest(LeaseGrant{
			Kind: g.Kind, Key: g.Key, Params: g.Params, Plan: g.Plan,
			Start: g.Start, End: g.End, TTLMS: g.TTLMS, DeadlineMS: g.DeadlineMS,
		}) {
			return &g, nil
		}
		if attempt+1 >= c.attempts() {
			return nil, fmt.Errorf("dist: claim: grant digest mismatch (response corrupted in transit)")
		}
		retryable, derr := c.budgetGate(true,
			fmt.Errorf("dist: claim: grant digest mismatch (response corrupted in transit)"))
		if !retryable {
			return nil, derr
		}
		if !backoff.Sleep(ctx, c.Backoff.Delay(attempt, c.Rand)) {
			return nil, ctx.Err()
		}
	}
}

type renewRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
	// Metrics piggybacks the worker's federated summary on the heartbeat.
	Metrics *metrics.Summary `json:"metrics,omitempty"`
}

// Renew implements CoordinatorAPI (410 → ErrGone, not retried).
func (c *Client) Renew(ctx context.Context, workerID, key string, start, end int, sum *metrics.Summary) error {
	body, err := json.Marshal(renewRequest{Worker: workerID, Key: key, Start: start, End: end, Metrics: sum})
	if err != nil {
		return err
	}
	_, err = c.post(ctx, "/v1/dist/renew", "application/json", body, nil)
	return err
}

// Report implements CoordinatorAPI: the body is the QISNAP01 unit
// container; the worker identity rides in a header.
func (c *Client) Report(ctx context.Context, workerID string, container []byte) error {
	c.Budget.Deposit()
	err := backoff.Retry(ctx, c.Backoff, c.attempts(), c.Rand,
		func(rctx context.Context) (bool, time.Duration, error) {
			actx, cancel := c.attemptCtx(rctx)
			defer cancel()
			req, err := http.NewRequestWithContext(actx, http.MethodPost, c.Base+"/v1/dist/report", bytes.NewReader(container))
			if err != nil {
				return false, 0, err
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			req.Header.Set("X-QIsim-Worker", workerID)
			resp, err := c.http().Do(req)
			if err != nil {
				if ctx.Err() != nil {
					return false, 0, err
				}
				retryable, err := c.budgetGate(true, err)
				return retryable, 0, err
			}
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent:
				io.Copy(io.Discard, resp.Body)
				return false, 0, nil
			case resp.StatusCode == http.StatusGone:
				return false, 0, ErrGone
			case resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusBadGateway ||
				resp.StatusCode == http.StatusServiceUnavailable ||
				resp.StatusCode == http.StatusGatewayTimeout:
				hint, _ := backoff.RetryAfter(resp)
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				retryable, err := c.budgetGate(true,
					fmt.Errorf("dist: report: %s: %s", resp.Status, bytes.TrimSpace(msg)))
				return retryable, hint, err
			default:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return false, 0, fmt.Errorf("dist: report: %s: %s", resp.Status, bytes.TrimSpace(msg))
			}
		})
	return err
}

// ProbeHTTP returns a Config.Probe that GETs {addr}/readyz and reports the
// JSON status field ("ok" on 200, the advertised status on 503, an error
// on transport failure).
func ProbeHTTP(client *http.Client, timeout time.Duration) func(ctx context.Context, addr string) (string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return func(ctx context.Context, addr string) (string, error) {
		pctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/readyz", nil)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var st struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&st); err != nil || st.Status == "" {
			if resp.StatusCode == http.StatusOK {
				return "ok", nil
			}
			return "", fmt.Errorf("dist: probe %s: %s", addr, resp.Status)
		}
		return st.Status, nil
	}
}
