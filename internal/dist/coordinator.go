package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"qisim/internal/backoff"
	"qisim/internal/jobs"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// Hooks are the coordinator's observability callbacks (the service layer
// maps them onto Prometheus metrics; tests onto counters). All optional,
// all called under the coordinator lock — keep them O(1) and non-blocking.
type Hooks struct {
	// Lease fires per lease event: "granted", "renewed", "expired",
	// "done", "adopted".
	Lease func(event string)
	// Retry fires when an expired/failed unit requeues with backoff.
	Retry func()
	// Steal fires when a straggler unit is hedge-dispatched to a second
	// worker.
	Steal func()
	// Evict/Readmit fire on worker health transitions.
	Evict   func()
	Readmit func()
	// Local fires when a unit falls back to the coordinator's local lane.
	Local func()
	// UnitDone fires when a unit's result is accepted, with the reporting
	// worker ("local" for the local lane) and the unit's wall time.
	UnitDone func(worker string, seconds float64)
	// SpotCheck fires per spot-check verdict: "pass", "fail", or "error"
	// (the re-execution itself failed and the report was accepted
	// unverified).
	SpotCheck func(result string)
	// Quarantine fires when a worker is quarantined after a failed
	// spot-check.
	Quarantine func()
}

// Config parameterises a Coordinator.
type Config struct {
	// LeaseTTL is a lease's deadline extension per grant/renewal
	// (default 15s).
	LeaseTTL time.Duration
	// UnitShards is the work-unit granularity in shards (default 4).
	UnitShards int
	// MaxAttempts is the remote grant budget per unit before it degrades
	// to the local lane (default 4).
	MaxAttempts int
	// Backoff paces unit requeues after lease expiry (zero = backoff.Default).
	Backoff backoff.Policy
	// HedgeAfter is the straggler threshold: a leased unit older than this
	// with no pending work left is re-dispatched to a second worker
	// (default 2×LeaseTTL).
	HedgeAfter time.Duration
	// SweepInterval paces the background expiry sweep (default LeaseTTL/4).
	SweepInterval time.Duration
	// ProbeInterval paces worker health probes (default LeaseTTL).
	ProbeInterval time.Duration
	// ProbeFailLimit evicts a worker after this many consecutive probe
	// failures (default 3).
	ProbeFailLimit int
	// Probe checks one worker's health endpoint, returning its readiness
	// status ("ok", "draining", "saturated", ...) or an error for
	// unreachable. Nil disables probing (workers die by lease expiry only).
	Probe func(ctx context.Context, addr string) (string, error)
	// UnitDir, when set, persists accepted unit results as QISNAP01
	// containers so a restarted coordinator resumes a job without
	// re-running already-reported shard ranges.
	UnitDir string
	// Journal, when set, records lease grants/resolutions in the job WAL
	// so a coordinator crash can reconstruct in-flight assignments.
	Journal *jobs.Journal
	// Cache, when set, is the shared content-addressed result tier
	// consulted per unit before dispatch.
	Cache *rescache.Cache
	// Clock injects time for tests (default time.Now).
	Clock func() time.Time
	// SpotCheck is the untrusted-worker defense: the seeded fraction of
	// remote unit reports the coordinator re-executes locally and compares
	// byte-for-byte before trusting. 0 disables spot-checking. A worker
	// whose report mismatches is quarantined (leases stripped, no grants,
	// reports ignored) for QuarantineFor and its trust resets.
	SpotCheck float64
	// SpotCheckProbation is the elevated check fraction applied to workers
	// below SpotCheckMinTrust — fresh arrivals and quarantine returnees
	// prove themselves before dropping to the base rate (default 0.5, and
	// never below SpotCheck).
	SpotCheckProbation float64
	// SpotCheckMinTrust is the number of passed spot-checks after which a
	// worker graduates from the probation rate (default 3).
	SpotCheckMinTrust int
	// QuarantineFor is how long a quarantined worker is shunned before
	// timed re-admission (default 4×LeaseTTL). Unlike eviction, quarantine
	// is NOT cleared by claims, reports, or probes — only by time.
	QuarantineFor time.Duration
	// Seed seeds the jitter RNG (0 = 1); jitter is the only randomness
	// here and never touches simulation results.
	Seed   int64
	Logger *slog.Logger
	Hooks  Hooks
	// Flight, when set, records lease transitions, retries, evictions,
	// quarantines and spot-check verdicts into the shared flight-recorder
	// ring (nil disables; every Record call is nil-safe).
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.UnitShards <= 0 {
		c.UnitShards = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 2 * c.LeaseTTL
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 4
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = c.LeaseTTL
	}
	if c.ProbeFailLimit <= 0 {
		c.ProbeFailLimit = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.SpotCheckProbation <= 0 {
		c.SpotCheckProbation = 0.5
	}
	if c.SpotCheckProbation < c.SpotCheck {
		c.SpotCheckProbation = c.SpotCheck
	}
	if c.SpotCheckMinTrust <= 0 {
		c.SpotCheckMinTrust = 3
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 4 * c.LeaseTTL
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	}
	return c
}

// Stats is a snapshot of the coordinator's cumulative counters.
type Stats struct {
	Grants      int // lease grants (primary + hedged)
	Renewals    int
	Expired     int // leases lost to deadline expiry
	UnitRetries int // units requeued after losing all leases
	Steals      int // hedged duplicate grants
	Evictions   int
	Readmits    int
	LocalUnits  int // units run on the coordinator's local lane
	UnitsDone   int
	DupReports  int // idempotent duplicate uploads dropped
	CacheHits   int // units answered from the shared result tier
	FileReloads int // units reloaded from UnitDir after a restart

	SpotChecksPassed   int // spot-checked reports matching the local re-run
	SpotChecksFailed   int // mismatches → worker quarantined
	Quarantines        int // workers quarantined
	QuarantineReadmits int // workers re-admitted after QuarantineFor
	IdemReplays        int // duplicate claim deliveries answered from the idempotency record
}

// Unit states.
const (
	unitPending = iota
	unitLeased
	unitDone
)

type unit struct {
	idx        int
	start, end int // global shard range [start,end)
	state      int
	attempts   int                  // primary grants so far
	notBefore  time.Time            // backoff gate for re-dispatch
	leases     map[string]time.Time // worker -> expiry (2 entries max: primary + hedge)
	firstGrant time.Time            // straggler age reference
	localOnly  bool                 // degraded to the local lane
	localInFly bool                 // local lane currently executing it
	verifying  bool                 // spot-check re-execution in flight
	states     []json.RawMessage    // per-shard results once done
	events     []int
}

type distJob struct {
	kind   string
	key    string
	params json.RawMessage
	plan   Plan
	core   Core
	units  []*unit

	deadline    time.Time
	hasDeadline bool
	tracer      *obs.Tracer
	span        *obs.Span

	fold          Fold
	tally         simrun.Tally
	progress      func(completed, requested int) // nil = silent
	frontierUnit  int                            // next unit awaiting fold
	frontierShard int                            // next global shard awaiting fold
	stopReason    string
	finished      bool
	result        []byte
	status        simrun.Status
	err           error
}

type workerState struct {
	id         string
	addr       string
	draining   bool
	evicted    bool
	probeFails int
	registered bool

	// Untrusted-worker defense state. Quarantine is deliberately separate
	// from eviction: eviction is a health verdict any sign of life
	// reverses, quarantine is an integrity verdict only time reverses.
	trust            int       // passed spot-checks since last reset
	quarantined      bool      // shunned: no grants, reports ignored
	quarantinedUntil time.Time // timed re-admission point

	// Claim idempotency: duplicated deliveries of the same claim replay
	// the recorded grant instead of leaking a second lease. Deliveries of
	// one claim are adjacent on the wire, so one slot per worker suffices.
	lastIdemKey string
	lastGrant   *LeaseGrant

	// Federation: the worker's latest piggybacked metrics summary and the
	// time of its last sign of life (claim, renewal, report, register).
	summary  *metrics.Summary
	lastSeen time.Time
}

// Coordinator splits jobs into leased work units across a worker fleet and
// folds reported shard results back into byte-exact job results. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	rnd     *rand.Rand
	jobs    map[string]*distJob
	order   []string // job admission order (claim fairness)
	workers map[string]*workerState
	adopted []jobs.PendingLease
	stats   Stats
}

// NewCoordinator builds a coordinator; if cfg.Journal is set, outstanding
// leases from a previous life are adopted and re-applied when their jobs
// are re-submitted via Execute.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		rnd:     rand.New(rand.NewSource(cfg.Seed)),
		jobs:    map[string]*distJob{},
		workers: map[string]*workerState{},
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.Journal != nil {
		c.adopted = cfg.Journal.PendingLeases()
	}
	return c
}

// Stats returns a snapshot of the cumulative counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WorkerInfo is a worker's registration record.
type WorkerInfo struct {
	ID string `json:"id"`
	// Addr is the worker's advertised base URL for health probes
	// ("" = unprobeable: the worker lives until its leases expire).
	Addr string `json:"addr,omitempty"`
}

// Register admits (or re-admits) a worker into the fleet.
func (c *Coordinator) Register(_ context.Context, info WorkerInfo) error {
	if info.ID == "" {
		return simerr.Invalidf("dist: register: empty worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[info.ID]
	if w == nil {
		w = &workerState{id: info.ID}
		c.workers[info.ID] = w
	}
	w.addr = info.Addr
	w.registered = true
	w.lastSeen = c.cfg.Clock()
	c.cfg.Flight.Record("worker.register", obs.String("worker", info.ID))
	if w.evicted {
		c.stats.Readmits++
		if c.cfg.Hooks.Readmit != nil {
			c.cfg.Hooks.Readmit()
		}
	}
	w.evicted = false
	w.draining = false
	w.probeFails = 0
	c.cond.Broadcast()
	return nil
}

// MarkDraining flags a worker as draining: its leases stay valid but are
// no longer renewable and it receives no new grants. Used by the probe
// loop (readyz 503 "draining") and by in-process drain notification.
func (c *Coordinator) MarkDraining(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.draining = true
	}
	c.cond.Broadcast()
}

// liveWorkerLocked reports whether at least one registered worker can
// accept new grants.
func (c *Coordinator) liveWorkerLocked() bool {
	now := c.cfg.Clock()
	for _, w := range c.workers {
		if w.registered && !w.evicted && !w.draining && !c.quarantinedLocked(w, now) {
			return true
		}
	}
	return false
}

// quarantinedLocked reports whether w is still quarantined, lazily
// re-admitting it once QuarantineFor has elapsed. Re-admitted workers keep
// trust 0, so they re-enter on the probation spot-check rate.
func (c *Coordinator) quarantinedLocked(w *workerState, now time.Time) bool {
	if !w.quarantined {
		return false
	}
	if now.Before(w.quarantinedUntil) {
		return true
	}
	w.quarantined = false
	c.stats.QuarantineReadmits++
	if c.cfg.Hooks.Readmit != nil {
		c.cfg.Hooks.Readmit()
	}
	c.cfg.Flight.Record("worker.readmit", obs.String("worker", w.id), obs.String("cause", "quarantine-expired"))
	return false
}

// quarantineLocked shuns a worker whose report failed its spot-check:
// leases stripped and requeued, trust reset, no grants and no accepted
// reports until the timed re-admission.
func (c *Coordinator) quarantineLocked(w *workerState, now time.Time) {
	w.quarantined = true
	w.quarantinedUntil = now.Add(c.cfg.QuarantineFor)
	w.trust = 0
	w.lastIdemKey, w.lastGrant = "", nil
	c.stats.Quarantines++
	if c.cfg.Hooks.Quarantine != nil {
		c.cfg.Hooks.Quarantine()
	}
	c.cfg.Flight.Record("worker.quarantine", obs.String("worker", w.id),
		obs.String("until", w.quarantinedUntil.UTC().Format(time.RFC3339)))
	c.cfg.Logger.Warn("dist: worker quarantined after spot-check mismatch",
		"worker", w.id, "until", w.quarantinedUntil)
	c.evictLeasesLocked(w.id, now)
}

// touchWorkerLocked counts any interaction as proof of life: a claim or
// report from an "evicted" worker re-admits it (the probe was wrong or the
// partition healed).
func (c *Coordinator) touchWorkerLocked(id string) *workerState {
	w := c.workers[id]
	if w == nil {
		w = &workerState{id: id, registered: true}
		c.workers[id] = w
	}
	w.registered = true
	w.lastSeen = c.cfg.Clock()
	if w.evicted {
		w.evicted = false
		c.stats.Readmits++
		if c.cfg.Hooks.Readmit != nil {
			c.cfg.Hooks.Readmit()
		}
		c.cfg.Flight.Record("worker.readmit", obs.String("worker", id), obs.String("cause", "contact"))
	}
	w.probeFails = 0
	return w
}

// LeaseGrant is one claimed work unit: everything a worker needs to
// rebuild the job's core, execute the shard window, and report.
type LeaseGrant struct {
	Kind   string          `json:"kind"`
	Key    string          `json:"key"`
	Params json.RawMessage `json:"params,omitempty"`
	Plan   Plan            `json:"plan"`
	Start  int             `json:"start"`
	End    int             `json:"end"`
	// TTLMS is the lease deadline budget: the worker must report or renew
	// within it.
	TTLMS int64 `json:"ttl_ms"`
	// DeadlineMS, when positive, is the job deadline remaining at grant
	// time, propagated from the client request so shard execution respects
	// it end to end.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Digest is the SHA-256 over every other field, stamped at grant time.
	// The HTTP client refuses a grant whose digest does not verify: a
	// claim response corrupted in flight into still-valid JSON would
	// otherwise hand the worker a wrong window, seed, or plan — the worker
	// would compute honestly over garbage and be quarantined for it.
	Digest string `json:"digest,omitempty"`
}

// Claim hands the worker its next work unit, or nil when none is
// available. Pending units gate on their backoff window; when nothing is
// pending, an old straggler unit may be hedge-dispatched as a duplicate
// lease (work stealing — first report wins).
//
// idemKey makes the claim safe under duplicated delivery: a repeat of the
// worker's most recent key replays the recorded outcome (grant or no-work)
// instead of leasing a second unit. Workers mint a fresh key per logical
// claim; "" opts out (in-process callers that cannot be duplicated).
func (c *Coordinator) Claim(_ context.Context, workerID, idemKey string) (*LeaseGrant, error) {
	if workerID == "" {
		return nil, simerr.Invalidf("dist: claim: empty worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorkerLocked(workerID)
	now := c.cfg.Clock()
	if idemKey != "" && idemKey == w.lastIdemKey {
		c.stats.IdemReplays++
		return w.lastGrant, nil
	}
	record := func(g *LeaseGrant) *LeaseGrant {
		if idemKey != "" {
			w.lastIdemKey, w.lastGrant = idemKey, g
		}
		return g
	}
	if w.draining || c.quarantinedLocked(w, now) {
		return record(nil), nil
	}

	// Primary grants: first admitted job with a runnable pending unit.
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil || j.finished || j.err != nil {
			continue
		}
		for _, u := range j.units {
			if u.state != unitPending || u.localOnly || u.localInFly || now.Before(u.notBefore) {
				continue
			}
			return record(c.grantLocked(j, u, w, now, false)), nil
		}
	}
	// Work stealing: hedge the oldest straggler not already held by this
	// worker.
	var (
		hj *distJob
		hu *unit
	)
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil || j.finished || j.err != nil {
			continue
		}
		for _, u := range j.units {
			if u.state != unitLeased || len(u.leases) >= 2 {
				continue
			}
			if _, mine := u.leases[workerID]; mine {
				continue
			}
			if now.Sub(u.firstGrant) < c.cfg.HedgeAfter {
				continue
			}
			if hu == nil || u.firstGrant.Before(hu.firstGrant) {
				hj, hu = j, u
			}
		}
	}
	if hu != nil {
		return record(c.grantLocked(hj, hu, w, now, true)), nil
	}
	return record(nil), nil
}

// grantLocked records a lease on u for w and builds the grant.
func (c *Coordinator) grantLocked(j *distJob, u *unit, w *workerState, now time.Time, hedge bool) *LeaseGrant {
	expires := now.Add(c.cfg.LeaseTTL)
	if u.leases == nil {
		u.leases = map[string]time.Time{}
	}
	u.leases[w.id] = expires
	if u.state == unitPending {
		u.state = unitLeased
		u.firstGrant = now
		u.attempts++
	}
	if hedge {
		c.stats.Steals++
		if c.cfg.Hooks.Steal != nil {
			c.cfg.Hooks.Steal()
		}
	}
	c.stats.Grants++
	if c.cfg.Hooks.Lease != nil {
		c.cfg.Hooks.Lease("granted")
	}
	c.cfg.Flight.Record("lease.grant", obs.String("worker", w.id), obs.String("key", j.key),
		obs.Int("start", u.start), obs.Int("end", u.end), obs.Bool("hedge", hedge))
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.AppendLease(jobs.OpLease, jobs.Kind(j.kind), rescache.Key(j.key),
			u.start, u.end, w.id, expires.UnixMilli()); err != nil {
			c.cfg.Logger.Warn("dist: lease journal append failed", "err", err)
		}
	}
	g := &LeaseGrant{
		Kind: j.kind, Key: j.key, Params: j.params, Plan: j.plan,
		Start: u.start, End: u.end, TTLMS: c.cfg.LeaseTTL.Milliseconds(),
	}
	if j.hasDeadline {
		if rem := j.deadline.Sub(now); rem > 0 {
			g.DeadlineMS = rem.Milliseconds()
		} else {
			g.DeadlineMS = 1 // already past due: worker fails fast
		}
	}
	g.Digest = grantDigest(*g)
	return g
}

// Renew extends a worker's lease by one TTL. A draining worker's renewal
// is accepted but does not extend the deadline (lease-non-renewable). A
// lease the coordinator no longer recognises returns ErrGone: the worker
// abandons the unit.
//
// sum, when non-nil, is the worker's piggybacked metrics summary — the
// federation heartbeat. It is folded into the fleet view even when the
// lease itself is gone: stale-lease workers are still alive and their
// telemetry is still true.
func (c *Coordinator) Renew(_ context.Context, workerID, key string, start, end int, sum *metrics.Summary) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sum != nil && workerID != "" {
		// Deliberately NOT touchWorkerLocked: a summary is telemetry, not
		// proof the probe verdict was wrong — eviction reversal stays tied
		// to claims/reports/probes.
		if w := c.workers[workerID]; w != nil {
			w.summary = sum
			w.lastSeen = c.cfg.Clock()
		}
	}
	j := c.jobs[key]
	if j == nil || j.finished || j.err != nil {
		return ErrGone
	}
	u := j.unitAt(start, end)
	if u == nil || u.state != unitLeased {
		return ErrGone
	}
	if _, ok := u.leases[workerID]; !ok {
		return ErrGone
	}
	w := c.touchWorkerLocked(workerID)
	if w.draining {
		return nil // alive, but the lease runs out its current deadline
	}
	u.leases[workerID] = c.cfg.Clock().Add(c.cfg.LeaseTTL)
	c.stats.Renewals++
	if c.cfg.Hooks.Lease != nil {
		c.cfg.Hooks.Lease("renewed")
	}
	return nil
}

// unitAt returns the unit exactly covering [start,end), or nil.
func (j *distJob) unitAt(start, end int) *unit {
	for _, u := range j.units {
		if u.start == start && u.end == end {
			return u
		}
	}
	return nil
}

// Report accepts an uploaded unit result (a QISNAP01 container). The
// upload is idempotent by (job key, shard range): duplicates and late
// hedged completions are dropped, never double-counted. A report for an
// unknown job (finished, or a pre-restart orphan) is persisted to UnitDir
// when configured and acknowledged — re-reporting must always be safe.
//
// When Config.SpotCheck is set, a seeded fraction of remote reports is
// re-executed locally and compared byte-for-byte before the fold sees it;
// a mismatch quarantines the reporter and the locally recomputed states —
// authoritative, since the engine is deterministic — are accepted in its
// place, so a lying worker costs one local window, never a wrong result.
func (c *Coordinator) Report(ctx context.Context, workerID string, container []byte) error {
	u, err := DecodeUnitResult(container)
	if err != nil {
		return err
	}
	if workerID != "" && u.Worker == "" {
		u.Worker = workerID
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var w *workerState
	if workerID != "" {
		w = c.touchWorkerLocked(workerID)
		if u.Metrics != nil {
			w.summary = u.Metrics
		}
		if c.quarantinedLocked(w, c.cfg.Clock()) {
			// A quarantined worker's word is worthless either way: tell it
			// to abandon the unit (already requeued at quarantine time).
			return ErrGone
		}
	}
	j := c.jobs[u.Key]
	if j == nil || j.finished || j.err != nil {
		// Late or orphaned: keep the bytes for a future life, ack the
		// worker so it stops retrying.
		c.persistUnitLocked(u)
		return nil
	}
	tu := j.unitAt(u.Start, u.End)
	if tu == nil {
		return simerr.Invalidf("dist: report range [%d,%d) does not align with job %.16s's unit plan",
			u.Start, u.End, u.Key)
	}
	if tu.state == unitDone {
		c.stats.DupReports++
		return nil
	}
	if tu.verifying {
		// An audit of this range is already in flight. Accepting this
		// delivery now would complete the unit unaudited and let the
		// in-flight spot-check bail out before comparing — a duplicated
		// (or deliberately double-sent) forged report would then never be
		// adjudicated. The audit's verdict settles the unit; this delivery
		// is acked as a duplicate.
		c.stats.DupReports++
		return nil
	}
	if w != nil && c.shouldSpotCheckLocked(j, tu, w) {
		return c.spotCheckLocked(ctx, j, tu, u, w)
	}
	c.acceptUnitLocked(j, tu, u.States, u.Events, u.Worker, u.Trace)
	return nil
}

// shouldSpotCheckLocked draws the seeded spot-check decision for one
// (job, unit, worker) report: pure in (Config.Seed, job key, unit range,
// worker id), so a replayed fleet run replays its audit schedule too.
// Workers below SpotCheckMinTrust face the probation rate.
func (c *Coordinator) shouldSpotCheckLocked(j *distJob, u *unit, w *workerState) bool {
	p := c.cfg.SpotCheck
	if p <= 0 {
		return false
	}
	if w.trust < c.cfg.SpotCheckMinTrust {
		p = c.cfg.SpotCheckProbation
	}
	h := fnv.New64a()
	h.Write([]byte(j.key)) //nolint:errcheck
	h.Write([]byte{0})     //nolint:errcheck
	h.Write([]byte(w.id))  //nolint:errcheck
	var rng [8]byte
	binary.LittleEndian.PutUint64(rng[:], uint64(int64(u.start)))
	h.Write(rng[:]) //nolint:errcheck
	z := uint64(c.cfg.Seed) + h.Sum64()*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < p
}

// spotCheckLocked re-executes a reported unit locally (lock released
// during the run) and adjudicates: match raises the worker's trust and
// accepts the report; mismatch quarantines the worker and accepts the
// local bytes. Called with c.mu held; returns with it held.
func (c *Coordinator) spotCheckLocked(ctx context.Context, j *distJob, tu *unit, u UnitResult, w *workerState) error {
	tu.verifying = true
	core, plan := j.core, j.plan
	c.mu.Unlock()
	// The re-execution must not live or die with the reporter's RPC: a
	// worker that disconnects right after uploading — or whose client-side
	// deadline fires during a slow local re-run — would otherwise cancel
	// the audit and get its report accepted unaudited, a worker-controlled
	// evasion route. Keep the request's values, drop its cancellation.
	states, events, verr := core.RunWindow(context.WithoutCancel(ctx), plan, tu.start, tu.end)
	c.mu.Lock()
	tu.verifying = false

	if verr != nil {
		// Could not verify (resource failure): the world may have moved
		// while the lock was released; otherwise accept the report
		// unaudited rather than stall the job, but say so.
		if j.finished || j.err != nil {
			c.persistUnitLocked(u)
			return nil
		}
		if tu.state == unitDone {
			c.stats.DupReports++
			return nil
		}
		c.cfg.Logger.Warn("dist: spot-check re-execution failed; accepting unaudited",
			"worker", w.id, "key", j.key, "start", tu.start, "end", tu.end, "err", verr)
		if c.cfg.Hooks.SpotCheck != nil {
			c.cfg.Hooks.SpotCheck("error")
		}
		c.acceptUnitLocked(j, tu, u.States, u.Events, u.Worker, u.Trace)
		return nil
	}

	// The verdict stands no matter what happened while the lock was
	// released (job finished, unit resolved by the local lane): trust and
	// quarantine judge the worker, not the unit, and skipping the
	// adjudication here would be exactly the evasion the audit exists to
	// close.
	match := unitStatesEqual(states, events, u.States, u.Events)
	c.cfg.Flight.Record("worker.spotcheck", obs.String("worker", w.id), obs.String("key", j.key),
		obs.Int("start", tu.start), obs.Int("end", tu.end), obs.Bool("match", match))
	if match {
		c.stats.SpotChecksPassed++
		if c.cfg.Hooks.SpotCheck != nil {
			c.cfg.Hooks.SpotCheck("pass")
		}
		w.trust++
	} else {
		c.stats.SpotChecksFailed++
		if c.cfg.Hooks.SpotCheck != nil {
			c.cfg.Hooks.SpotCheck("fail")
		}
		c.quarantineLocked(w, c.cfg.Clock())
	}
	if j.finished || j.err != nil {
		if match {
			c.persistUnitLocked(u)
		}
		return nil
	}
	if tu.state == unitDone {
		c.stats.DupReports++
		return nil
	}
	if match {
		c.acceptUnitLocked(j, tu, u.States, u.Events, u.Worker, u.Trace)
		return nil
	}
	// The local re-run is the truth; the job proceeds without the liar.
	c.acceptUnitLocked(j, tu, states, events, "local", nil)
	return nil
}

// unitStatesEqual compares two per-shard result sets byte-for-byte.
func unitStatesEqual(aStates []json.RawMessage, aEvents []int, bStates []json.RawMessage, bEvents []int) bool {
	if len(aStates) != len(bStates) || len(aEvents) != len(bEvents) {
		return false
	}
	for i := range aStates {
		if !bytes.Equal(aStates[i], bStates[i]) {
			return false
		}
	}
	for i := range aEvents {
		if aEvents[i] != bEvents[i] {
			return false
		}
	}
	return true
}

// acceptUnitLocked marks a unit done, persists + caches its result,
// resolves its leases, grafts the worker trace, and advances the fold.
func (c *Coordinator) acceptUnitLocked(j *distJob, u *unit, states []json.RawMessage, events []int, worker string, trace *obs.Trace) {
	now := c.cfg.Clock()
	u.states = states
	u.events = events
	u.state = unitDone
	u.leases = nil
	u.localInFly = false
	c.stats.UnitsDone++
	if c.cfg.Hooks.UnitDone != nil {
		secs := 0.0
		if !u.firstGrant.IsZero() {
			secs = now.Sub(u.firstGrant).Seconds()
		}
		c.cfg.Hooks.UnitDone(worker, secs)
	}
	if c.cfg.Hooks.Lease != nil {
		c.cfg.Hooks.Lease("done")
	}
	c.cfg.Flight.Record("lease.done", obs.String("worker", worker), obs.String("key", j.key),
		obs.Int("start", u.start), obs.Int("end", u.end))
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.AppendLease(jobs.OpLeaseDone, jobs.Kind(j.kind), rescache.Key(j.key),
			u.start, u.end, worker, 0); err != nil {
			c.cfg.Logger.Warn("dist: lease-done journal append failed", "err", err)
		}
	}
	res := UnitResult{Kind: j.kind, Key: j.key, Start: u.start, End: u.end,
		States: states, Events: events, Worker: worker}
	c.persistUnitLocked(res)
	if c.cfg.Cache != nil {
		if key, err := UnitCacheKey(j.kind, j.key, u.start, u.end, j.plan); err == nil {
			if body, err := EncodeUnitResult(res); err == nil {
				c.cfg.Cache.Put(key, "dist.unit."+j.kind, body)
			}
		}
	}
	if trace != nil && j.tracer != nil {
		j.tracer.Graft(j.span, *trace,
			obs.String("worker", worker), obs.Int("unit", u.idx))
	}
	c.advanceLocked(j)
	c.cond.Broadcast()
}

// persistUnitLocked best-effort writes a unit result container to UnitDir.
func (c *Coordinator) persistUnitLocked(u UnitResult) {
	if c.cfg.UnitDir == "" {
		return
	}
	body, err := EncodeUnitResult(u)
	if err != nil {
		return
	}
	path := c.unitPath(u.Key, u.Start, u.End)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.cfg.Logger.Warn("dist: unit dir", "err", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		c.cfg.Logger.Warn("dist: unit write", "err", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		c.cfg.Logger.Warn("dist: unit rename", "err", err)
	}
}

func (c *Coordinator) unitPath(key string, start, end int) string {
	safe := make([]byte, 0, len(key))
	for i := 0; i < len(key) && i < 32; i++ {
		ch := key[i]
		if ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9' {
			safe = append(safe, ch)
		} else {
			safe = append(safe, '_')
		}
	}
	return filepath.Join(c.cfg.UnitDir, fmt.Sprintf("%s-%d-%d.unit", safe, start, end))
}

// advanceLocked folds the contiguous done-unit prefix shard by shard,
// running the convergence guard at every shard boundary in global order —
// exactly the walk simrun.RunSharded performs, so the first convergence
// crossing (and therefore the converged bytes) is identical to a
// standalone run.
func (c *Coordinator) advanceLocked(j *distJob) {
	if j.finished || j.err != nil {
		return
	}
	before := j.frontierShard
	defer func() {
		if j.progress != nil && j.frontierShard > before && j.err == nil {
			j.progress(j.plan.PrefixShots(j.frontierShard), j.plan.Shots)
		}
	}()
	for j.frontierUnit < len(j.units) && j.units[j.frontierUnit].state == unitDone {
		u := j.units[j.frontierUnit]
		for k := u.start; k < u.end; k++ {
			st := u.states[k-u.start]
			if err := j.fold.Add(st); err != nil {
				j.err = err
				return
			}
			j.tally.Add(j.plan.ShardShots(k), u.events[k-u.start])
			j.frontierShard = k + 1
			if j.tally.Converged(j.plan.TargetRelStdErr, j.plan.MinShots) {
				j.stopReason = simrun.StopConverged
				c.finishLocked(j)
				return
			}
		}
		j.frontierUnit++
	}
	if j.frontierUnit == len(j.units) {
		j.stopReason = simrun.StopCompleted
		c.finishLocked(j)
	}
}

// finishLocked assembles the job result from the folded prefix.
func (c *Coordinator) finishLocked(j *distJob) {
	st := simrun.Status{
		Requested:  j.plan.Shots,
		Completed:  j.plan.PrefixShots(j.frontierShard),
		Truncated:  j.stopReason == simrun.StopCanceled || j.stopReason == simrun.StopDeadline,
		Converged:  j.stopReason == simrun.StopConverged,
		StopReason: j.stopReason,
	}
	body, err := j.fold.Finish(st)
	if err != nil {
		j.err = err
		return
	}
	j.result = body
	j.status = st
	j.finished = true
}

// Sweep expires overdue leases, requeues their units with jittered
// backoff, and degrades units that exhausted their remote attempts to the
// local lane. Driven by Start's ticker in production and called directly
// (with an injected clock) in tests.
func (c *Coordinator) Sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil || j.finished || j.err != nil {
			continue
		}
		for _, u := range j.units {
			if u.state != unitLeased {
				continue
			}
			for w, exp := range u.leases {
				if exp.After(now) {
					continue
				}
				delete(u.leases, w)
				c.stats.Expired++
				if c.cfg.Hooks.Lease != nil {
					c.cfg.Hooks.Lease("expired")
				}
				c.cfg.Flight.Record("lease.expire", obs.String("worker", w), obs.String("key", key),
					obs.Int("start", u.start), obs.Int("end", u.end))
			}
			if len(u.leases) == 0 {
				c.requeueLocked(u, now)
			}
		}
	}
	c.cond.Broadcast()
}

// requeueLocked returns a lease-less unit to pending with a jittered
// backoff gate, degrading it to the local lane once its remote attempts
// are spent.
func (c *Coordinator) requeueLocked(u *unit, now time.Time) {
	u.state = unitPending
	c.stats.UnitRetries++
	if c.cfg.Hooks.Retry != nil {
		c.cfg.Hooks.Retry()
	}
	c.cfg.Flight.Record("unit.retry", obs.Int("start", u.start), obs.Int("end", u.end),
		obs.Int("attempts", u.attempts))
	if u.attempts >= c.cfg.MaxAttempts {
		u.localOnly = true
		if c.cfg.Hooks.Local != nil {
			c.cfg.Hooks.Local()
		}
		u.notBefore = now
		return
	}
	u.notBefore = now.Add(c.cfg.Backoff.Delay(u.attempts-1, c.rnd.Float64))
}

// ProbeAll health-checks every probeable worker and applies eviction /
// re-admission / draining transitions. Eviction requeues the worker's
// leases immediately instead of waiting for expiry.
func (c *Coordinator) ProbeAll(ctx context.Context) {
	c.mu.Lock()
	type target struct{ id, addr string }
	var targets []target
	for id, w := range c.workers {
		if w.registered && w.addr != "" {
			targets = append(targets, target{id, w.addr})
		}
	}
	probe := c.cfg.Probe
	c.mu.Unlock()
	if probe == nil {
		return
	}
	sort.Slice(targets, func(i, k int) bool { return targets[i].id < targets[k].id })

	type outcome struct {
		id     string
		status string
		err    error
	}
	results := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			status, err := probe(ctx, t.addr)
			results[i] = outcome{t.id, status, err}
		}(i, t)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	for _, r := range results {
		w := c.workers[r.id]
		if w == nil {
			continue
		}
		if r.err != nil {
			w.probeFails++
			if w.probeFails >= c.cfg.ProbeFailLimit && !w.evicted {
				w.evicted = true
				c.stats.Evictions++
				if c.cfg.Hooks.Evict != nil {
					c.cfg.Hooks.Evict()
				}
				c.cfg.Flight.Record("worker.evict", obs.String("worker", r.id),
					obs.Int("probe_fails", w.probeFails))
				c.evictLeasesLocked(r.id, now)
			}
			continue
		}
		w.probeFails = 0
		w.lastSeen = now
		if w.evicted {
			w.evicted = false
			c.stats.Readmits++
			if c.cfg.Hooks.Readmit != nil {
				c.cfg.Hooks.Readmit()
			}
			c.cfg.Flight.Record("worker.readmit", obs.String("worker", r.id), obs.String("cause", "probe"))
		}
		// Only an explicit drain is non-renewable; "saturated" and
		// "recovering" workers are alive, just busy.
		w.draining = r.status == "draining"
	}
	c.cond.Broadcast()
}

// evictLeasesLocked strips every lease held by a worker and requeues
// lease-less units immediately.
func (c *Coordinator) evictLeasesLocked(workerID string, now time.Time) {
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil || j.finished || j.err != nil {
			continue
		}
		for _, u := range j.units {
			if u.state != unitLeased {
				continue
			}
			if _, ok := u.leases[workerID]; !ok {
				continue
			}
			delete(u.leases, workerID)
			c.stats.Expired++
			if c.cfg.Hooks.Lease != nil {
				c.cfg.Hooks.Lease("expired")
			}
			c.cfg.Flight.Record("lease.expire", obs.String("worker", workerID), obs.String("key", key),
				obs.Int("start", u.start), obs.Int("end", u.end), obs.String("cause", "evict"))
			if len(u.leases) == 0 {
				c.requeueLocked(u, now)
			}
		}
	}
}

// Start runs the background sweep + probe loops until ctx is done.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		sweep := time.NewTicker(c.cfg.SweepInterval)
		probe := time.NewTicker(c.cfg.ProbeInterval)
		defer sweep.Stop()
		defer probe.Stop()
		for {
			select {
			case <-ctx.Done():
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			case <-sweep.C:
				c.Sweep(c.cfg.Clock())
			case <-probe.C:
				c.ProbeAll(ctx)
			}
		}
	}()
}

// Execute distributes one job across the fleet and blocks until its
// result is complete (or ctx truncates it). The merged result is
// byte-identical to core.RunFull over the same plan.
//
// progress, when non-nil, observes the committed shard frontier after
// every fold advance (completed shots out of the plan's requested shots) —
// the same signal a standalone run feeds through simrun.Options.Progress,
// so a distributed job's live progress looks identical to a local one's.
// It is invoked under the coordinator lock: keep it cheap and never call
// back into the coordinator.
//
// Degradation ladder: zero live workers at admission returns ErrNoWorkers
// (the caller runs fully local); units that exhaust remote attempts — or
// find the fleet empty mid-job — run on the local lane inside this call.
func (c *Coordinator) Execute(ctx context.Context, kind, key string, params json.RawMessage, core Core, plan Plan, progress func(completed, requested int)) ([]byte, simrun.Status, error) {
	plan = plan.Normalized()
	if plan.Shots <= 0 {
		return nil, simrun.Status{}, simerr.Invalidf("dist: plan has no shots")
	}
	n := plan.NumShards()

	c.mu.Lock()
	if !c.liveWorkerLocked() {
		c.mu.Unlock()
		return nil, simrun.Status{}, ErrNoWorkers
	}
	if _, dup := c.jobs[key]; dup {
		c.mu.Unlock()
		return nil, simrun.Status{}, simerr.Invalidf("dist: job %.16s already executing", key)
	}
	j := &distJob{
		kind: kind, key: key, params: params, plan: plan, core: core,
		fold:     core.NewFold(),
		progress: progress,
		tracer:   obs.FromContext(ctx),
		span:     obs.SpanFromContext(ctx),
	}
	if dl, ok := ctx.Deadline(); ok {
		j.deadline, j.hasDeadline = dl, true
	}
	for start := 0; start < n; start += c.cfg.UnitShards {
		end := start + c.cfg.UnitShards
		if end > n {
			end = n
		}
		j.units = append(j.units, &unit{idx: len(j.units), start: start, end: end})
	}
	c.jobs[key] = j
	c.order = append(c.order, key)
	c.preloadUnitsLocked(j)
	c.adoptLeasesLocked(j)
	c.advanceLocked(j)
	c.cond.Broadcast()

	// Wake the wait loop on ctx cancellation.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()

	for !j.finished && j.err == nil {
		if ctx.Err() != nil {
			// Truncate at the folded prefix — a valid contiguous shard
			// prefix, same as a standalone cancellation.
			if ctx.Err() == context.DeadlineExceeded {
				j.stopReason = simrun.StopDeadline
			} else {
				j.stopReason = simrun.StopCanceled
			}
			c.finishLocked(j)
			break
		}
		if u := c.nextLocalUnitLocked(j); u != nil {
			u.localInFly = true
			c.stats.LocalUnits++
			if c.cfg.Hooks.Local != nil && !u.localOnly {
				c.cfg.Hooks.Local()
			}
			c.mu.Unlock()
			states, events, err := core.RunWindow(ctx, plan, u.start, u.end)
			c.mu.Lock()
			u.localInFly = false
			switch {
			case err == nil:
				if u.state != unitDone {
					c.acceptUnitLocked(j, u, states, events, "local", nil)
				}
			case ctx.Err() != nil:
				// Interrupted window: loop truncates on the next pass.
			default:
				j.err = err
			}
			continue
		}
		c.cond.Wait()
	}

	result, status, err := j.result, j.status, j.err
	complete := j.finished && !j.status.Truncated
	delete(c.jobs, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.mu.Unlock()

	if complete && c.cfg.UnitDir != "" {
		// The job is durably resolved in the jobs journal; its unit files
		// are now garbage.
		for _, u := range j.units {
			os.Remove(c.unitPath(key, u.start, u.end))
		}
	}
	if err != nil {
		return nil, simrun.Status{}, err
	}
	return result, status, nil
}

// nextLocalUnitLocked picks a unit the coordinator itself must run: one
// degraded to the local lane, or — when the fleet has zero live workers
// mid-job — any runnable pending unit (graceful degradation instead of a
// stalled job).
func (c *Coordinator) nextLocalUnitLocked(j *distJob) *unit {
	fleetDown := !c.liveWorkerLocked()
	for _, u := range j.units {
		if u.state != unitPending || u.localInFly {
			continue
		}
		if u.localOnly || fleetDown {
			return u
		}
	}
	return nil
}

// preloadUnitsLocked answers units from the shared result cache and (after
// a restart) from UnitDir, so already-reported shard ranges never re-run.
func (c *Coordinator) preloadUnitsLocked(j *distJob) {
	for _, u := range j.units {
		if u.state == unitDone {
			continue
		}
		if c.cfg.Cache != nil {
			if key, err := UnitCacheKey(j.kind, j.key, u.start, u.end, j.plan); err == nil {
				if body, ok := c.cfg.Cache.Get(key); ok {
					if res, err := DecodeUnitResult(body); err == nil && res.Key == j.key &&
						res.Start == u.start && res.End == u.end {
						u.states, u.events = res.States, res.Events
						u.state = unitDone
						c.stats.CacheHits++
						continue
					}
				}
			}
		}
		if c.cfg.UnitDir != "" {
			body, err := os.ReadFile(c.unitPath(j.key, u.start, u.end))
			if err != nil {
				continue
			}
			res, err := DecodeUnitResult(body)
			if err != nil || res.Key != j.key || res.Start != u.start || res.End != u.end {
				continue // corrupt or mismatched: re-run the unit
			}
			u.states, u.events = res.States, res.Events
			u.state = unitDone
			c.stats.FileReloads++
		}
	}
}

// adoptLeasesLocked re-applies journal-recovered lease assignments to a
// re-submitted job: adopted units start leased until their recorded expiry
// (floored to one TTL from now, since renewals are not journaled), so a
// restarted coordinator waits for in-flight workers to report instead of
// instantly double-dispatching.
func (c *Coordinator) adoptLeasesLocked(j *distJob) {
	if len(c.adopted) == 0 {
		return
	}
	now := c.cfg.Clock()
	kept := c.adopted[:0]
	for _, l := range c.adopted {
		if string(l.Key) != j.key {
			kept = append(kept, l)
			continue
		}
		u := j.unitAt(l.Start, l.End)
		if u == nil || u.state != unitPending {
			continue
		}
		exp := time.UnixMilli(l.ExpiresMS)
		if min := now.Add(c.cfg.LeaseTTL); exp.Before(min) {
			exp = min
		}
		if u.leases == nil {
			u.leases = map[string]time.Time{}
		}
		u.leases[l.Worker] = exp
		u.state = unitLeased
		u.firstGrant = now
		u.attempts++
		if c.cfg.Hooks.Lease != nil {
			c.cfg.Hooks.Lease("adopted")
		}
	}
	c.adopted = kept
}

// FleetWorker is one worker's row in the fleet status view.
type FleetWorker struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// State is the precedence-resolved health verdict:
	// quarantined > evicted > draining > healthy.
	State      string `json:"state"`
	Trust      int    `json:"trust"`
	ProbeFails int    `json:"probe_fails,omitempty"`
	// Leases counts the worker's outstanding (unexpired-by-sweep) leases.
	Leases int `json:"leases"`
	// LastSeenAgeMS is milliseconds since the last sign of life (claim,
	// renewal, report, register, successful probe); -1 when never seen.
	LastSeenAgeMS int64 `json:"last_seen_age_ms"`
	// QuarantineLeftMS is the remaining shun time for quarantined workers.
	QuarantineLeftMS int64 `json:"quarantine_left_ms,omitempty"`
	// Summary is the worker's latest federated metrics snapshot. It feeds
	// the coordinator's qisimd_fleet_* series and the status endpoint's
	// derived fields, but stays out of the status JSON itself (bulk).
	Summary *metrics.Summary `json:"-"`
}

// FleetJob is one in-flight distributed job's dispatch progress.
type FleetJob struct {
	Key            string `json:"key"`
	Kind           string `json:"kind"`
	Units          int    `json:"units"`
	UnitsDone      int    `json:"units_done"`
	UnitsLeased    int    `json:"units_leased"`
	UnitsPending   int    `json:"units_pending"`
	UnitsLocalOnly int    `json:"units_local_only,omitempty"`
	FrontierShard  int    `json:"frontier_shard"`
	CompletedShots int    `json:"completed_shots"`
	RequestedShots int    `json:"requested_shots"`
}

// FleetStatus is the coordinator's aggregate fleet view, the data behind
// GET /v1/fleet/status and the qisimd_fleet_* metric families.
type FleetStatus struct {
	Workers []FleetWorker `json:"workers"`
	Jobs    []FleetJob    `json:"jobs"`
	Stats   Stats         `json:"stats"`
}

// FleetSnapshot copies the fleet state under the coordinator lock. Workers
// sort by ID and jobs keep admission order, so consecutive snapshots of a
// quiet fleet are identical (deterministic scrapes and diffable tests).
// Read-only: it never flips lazy state like timed quarantine re-admission.
func (c *Coordinator) FleetSnapshot() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()

	leases := map[string]int{}
	st := FleetStatus{Workers: []FleetWorker{}, Jobs: []FleetJob{}, Stats: c.stats}
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil {
			continue
		}
		fj := FleetJob{
			Key: j.key, Kind: j.kind, Units: len(j.units),
			FrontierShard:  j.frontierShard,
			CompletedShots: j.plan.PrefixShots(j.frontierShard),
			RequestedShots: j.plan.Shots,
		}
		for _, u := range j.units {
			switch u.state {
			case unitDone:
				fj.UnitsDone++
			case unitLeased:
				fj.UnitsLeased++
				for w := range u.leases {
					leases[w]++
				}
			default:
				fj.UnitsPending++
			}
			if u.localOnly {
				fj.UnitsLocalOnly++
			}
		}
		st.Jobs = append(st.Jobs, fj)
	}

	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		fw := FleetWorker{
			ID: w.id, Addr: w.addr, State: "healthy",
			Trust: w.trust, ProbeFails: w.probeFails,
			Leases: leases[w.id], LastSeenAgeMS: -1,
			Summary: w.summary,
		}
		switch {
		case w.quarantined && now.Before(w.quarantinedUntil):
			fw.State = "quarantined"
			fw.QuarantineLeftMS = w.quarantinedUntil.Sub(now).Milliseconds()
		case w.evicted:
			fw.State = "evicted"
		case w.draining:
			fw.State = "draining"
		}
		if !w.lastSeen.IsZero() {
			fw.LastSeenAgeMS = now.Sub(w.lastSeen).Milliseconds()
		}
		st.Workers = append(st.Workers, fw)
	}
	return st
}
