package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkDistDispatch measures end-to-end coordinator overhead: one job
// dispatched across an in-process 4-worker fleet (claim/execute/report via
// the direct CoordinatorAPI, no HTTP), relative to the trivial toy core.
func BenchmarkDistDispatch(b *testing.B) {
	const fleet = 4
	cores := func(kind string, _ json.RawMessage) (Core, error) {
		return toyCore(1), nil
	}
	for i := 0; i < b.N; i++ {
		c := NewCoordinator(Config{LeaseTTL: 10 * time.Second, UnitShards: 2})
		ctx, cancel := context.WithCancel(context.Background())
		for w := 0; w < fleet; w++ {
			if err := c.Register(ctx, WorkerInfo{ID: fmt.Sprintf("w%d", w)}); err != nil {
				b.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for wid := 0; wid < fleet; wid++ {
			w, err := NewWorker(WorkerConfig{
				ID: fmt.Sprintf("w%d", wid), Coordinator: c, Cores: cores,
				PollInterval: time.Millisecond, Seed: int64(wid + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.Run(ctx)
			}()
		}
		if _, _, err := c.Execute(ctx, "toy", "bench", nil, toyCore(1), toyPlan, nil); err != nil {
			b.Fatal(err)
		}
		cancel()
		wg.Wait()
	}
}

// BenchmarkDistFold measures the coordinator-side fold path alone:
// decoding and merging pre-computed unit results in shard order.
func BenchmarkDistFold(b *testing.B) {
	core := toyCore(1)
	n := toyPlan.NumShards()
	states, events, err := core.RunWindow(context.Background(), toyPlan, 0, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fold := core.NewFold()
		for k := 0; k < n; k++ {
			if err := fold.Add(states[k]); err != nil {
				b.Fatal(err)
			}
			_ = events[k]
		}
	}
}
