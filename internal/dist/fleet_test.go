package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"qisim/internal/metrics"
	"qisim/internal/obs"
)

// TestFleetSnapshotStatesAndJobs pins the /v1/fleet/status source of truth:
// worker rows (ID-sorted, correct state precedence, lease counts, last-seen
// ages) and job rows (unit-state tallies and dispatch progress), without
// ever mutating coordinator state from the read path.
func TestFleetSnapshotStatesAndJobs(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "w-b", Addr: "http://b"}) //nolint:errcheck
	c.Register(context.Background(), WorkerInfo{ID: "w-a"})                   //nolint:errcheck

	snap := c.FleetSnapshot()
	if len(snap.Workers) != 2 || snap.Workers[0].ID != "w-a" || snap.Workers[1].ID != "w-b" {
		t.Fatalf("workers not ID-sorted: %+v", snap.Workers)
	}
	for _, w := range snap.Workers {
		if w.State != "healthy" || w.Leases != 0 {
			t.Fatalf("fresh worker row: %+v", w)
		}
		if w.LastSeenAgeMS != 0 {
			t.Fatalf("just-registered worker must have age 0, got %d", w.LastSeenAgeMS)
		}
	}

	ch := startExecute(c, context.Background(), "k-snapshot", core, toyPlan)
	g := waitGrant(t, c, "w-a")

	clk.Advance(2 * time.Second)
	snap = c.FleetSnapshot()
	if len(snap.Jobs) != 1 {
		t.Fatalf("want 1 job, got %+v", snap.Jobs)
	}
	j := snap.Jobs[0]
	if j.Kind != "toy" || j.Key != "k-snapshot" {
		t.Fatalf("job identity: %+v", j)
	}
	if j.Units != 4 || j.UnitsLeased != 1 || j.UnitsPending != 3 || j.UnitsDone != 0 {
		t.Fatalf("unit tallies: %+v", j)
	}
	if j.RequestedShots != toyPlan.Shots {
		t.Fatalf("requested shots: %+v", j)
	}
	var wa FleetWorker
	for _, w := range snap.Workers {
		if w.ID == "w-a" {
			wa = w
		}
	}
	if wa.Leases != 1 {
		t.Fatalf("w-a lease count: %+v", wa)
	}
	if wa.LastSeenAgeMS != 2000 {
		t.Fatalf("w-a last-seen age: want 2000ms, got %d", wa.LastSeenAgeMS)
	}

	report(t, c, core, "w-a", g)
	for {
		var err error
		if g, err = c.Claim(context.Background(), "w-a", ""); err != nil {
			t.Fatal(err)
		}
		if g == nil {
			break
		}
		report(t, c, core, "w-a", g)
	}
	if o := waitOutcome(t, ch); o.err != nil {
		t.Fatal(o.err)
	}
	snap = c.FleetSnapshot()
	if len(snap.Jobs) != 0 {
		t.Fatalf("finished job still listed: %+v", snap.Jobs)
	}
}

// TestFleetSnapshotQuarantineIsReadOnly pins two properties: a quarantined
// worker is reported as "quarantined" with its remaining window, and
// reading the snapshot after the window elapses reports the lazy state
// ("evicted"-free readmission is claim/report's job) WITHOUT flipping the
// stored quarantine bit — status scrapes must never advance fleet state.
func TestFleetSnapshotQuarantineIsReadOnly(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1, QuarantineFor: 10 * time.Minute})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "liar"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-snap-quarantine", core, toyPlan)
	g := waitGrant(t, c, "liar")
	if err := c.Report(context.Background(), "liar", forgedReport(t, g, "liar", 5_000_000)); err != nil {
		t.Fatal(err)
	}

	snap := c.FleetSnapshot()
	if len(snap.Workers) != 1 || snap.Workers[0].State != "quarantined" {
		t.Fatalf("want quarantined, got %+v", snap.Workers)
	}
	if left := snap.Workers[0].QuarantineLeftMS; left <= 0 || left > 10*60*1000 {
		t.Fatalf("quarantine window: %d ms", left)
	}

	clk.Advance(11 * time.Minute)
	snap = c.FleetSnapshot()
	if snap.Workers[0].State == "quarantined" {
		t.Fatalf("elapsed quarantine still reported: %+v", snap.Workers[0])
	}
	// The scrape must not have consumed the readmission: the counter
	// belongs to the claim/report path.
	if st := c.Stats(); st.QuarantineReadmits != 0 {
		t.Fatalf("snapshot flipped quarantine state: %+v", st)
	}
	g, err := c.Claim(context.Background(), "liar", "")
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.QuarantineReadmits != 1 {
		t.Fatalf("claim did not readmit: %+v", st)
	}
	// Drive the readmitted worker (now honest) until the job completes:
	// leaving a claimed grant unreported would stall Execute.
	for g != nil {
		report(t, c, core, "liar", g)
		if g, err = c.Claim(context.Background(), "liar", ""); err != nil {
			t.Fatal(err)
		}
	}
	if o := waitOutcome(t, ch); o.err != nil {
		t.Fatal(o.err)
	}
}

// TestRenewStoresSummaryWithoutRevival pins the federation/trust split: a
// lease renewal's piggybacked summary is stored (and refreshes last-seen)
// even when the lease is gone, but it does NOT count as proof-of-life for
// an evicted worker — only claims, reports and probes reverse eviction.
func TestRenewStoresSummaryWithoutRevival(t *testing.T) {
	clk := newFakeClock()
	probeErr := errors.New("unreachable")
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		ProbeFailLimit: 1,
		Probe:          func(context.Context, string) (string, error) { return "", probeErr }})
	c.Register(context.Background(), WorkerInfo{ID: "w1", Addr: "http://w1"}) //nolint:errcheck
	c.ProbeAll(context.Background())
	if snap := c.FleetSnapshot(); snap.Workers[0].State != "evicted" {
		t.Fatalf("probe eviction not visible: %+v", snap.Workers)
	}

	sum := &metrics.Summary{Counters: map[string]float64{"qisimd_worker_units_total": 3}}
	err := c.Renew(context.Background(), "w1", "no-such-job", 0, 4, sum)
	if !errors.Is(err, ErrGone) {
		t.Fatalf("renew of unknown lease: want ErrGone, got %v", err)
	}
	snap := c.FleetSnapshot()
	w := snap.Workers[0]
	if w.State != "evicted" {
		t.Fatalf("summary delivery revived an evicted worker: %+v", w)
	}
	if w.Summary == nil || w.Summary.CounterSum("qisimd_worker_units_total") != 3 {
		t.Fatalf("summary not stored: %+v", w.Summary)
	}
}

// TestCoordinatorFlightEvents drives one full manual fleet run — register,
// grant, expiry, retry, report — and pins the lease-lifecycle kinds the
// flight recorder must capture.
func TestCoordinatorFlightEvents(t *testing.T) {
	clk := newFakeClock()
	fr := obs.NewFlightRecorder(256)
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4, Flight: fr})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "w1"}) //nolint:errcheck
	ch := startExecute(c, context.Background(), "k-flight", core, toyPlan)

	// First grant expires (lease.expire + unit.retry), then the worker
	// finishes the job cleanly (lease.grant + lease.done).
	waitGrant(t, c, "w1")
	clk.Advance(2 * time.Minute)
	c.Sweep(clk.Now())
	// The expired unit requeues with backoff on the fake clock: keep
	// advancing past the not-before whenever no grant is available.
	var done *execOutcome
	for deadline := time.Now().Add(10 * time.Second); done == nil && time.Now().Before(deadline); {
		g, err := c.Claim(context.Background(), "w1", "")
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			report(t, c, core, "w1", g)
			continue
		}
		select {
		case o := <-ch:
			done = &o
		default:
			clk.Advance(5 * time.Second)
			time.Sleep(time.Millisecond)
		}
	}
	if done == nil {
		t.Fatal("Execute did not finish")
	}
	if done.err != nil {
		t.Fatal(done.err)
	}

	got := map[string]int{}
	for _, ev := range fr.Snapshot().Events {
		got[ev.Kind]++
	}
	for _, kind := range []string{"worker.register", "lease.grant", "lease.expire", "unit.retry", "lease.done"} {
		if got[kind] == 0 {
			t.Errorf("flight recorder missing %q events (got %v)", kind, got)
		}
	}
}

// TestQuarantinedMidJobTraceGraftsOnce pins trace stitching under
// mid-job quarantine: a worker's honestly reported (and audited) unit is
// grafted into the job trace exactly once, and after the worker is
// quarantined on a later forged unit, nothing of it is grafted again —
// neither a duplicate of the accepted unit nor the refused one.
func TestQuarantinedMidJobTraceGraftsOnce(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Minute, UnitShards: 4,
		SpotCheck: 1, SpotCheckProbation: 1, QuarantineFor: time.Hour})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "shady"}) //nolint:errcheck

	tracer := obs.NewTracer(obs.TracerConfig{ID: "job"})
	root := tracer.Start("executor", nil)
	ctx := obs.ContextWithSpan(context.Background(), tracer, root)
	ch := startExecute(c, ctx, "k-graft-once", core, toyPlan)

	// Unit 1: honest report WITH a worker trace. The spot-check passes
	// and the trace is grafted.
	g1 := waitGrant(t, c, "shady")
	states, events, err := core.RunWindow(context.Background(), g1.Plan, g1.Start, g1.End)
	if err != nil {
		t.Fatal(err)
	}
	wt := obs.NewTracer(obs.TracerConfig{ID: "shady"})
	wt.Start("unit.window", nil, obs.Int("start", g1.Start)).End()
	snap := wt.Snapshot()
	body, err := EncodeUnitResult(UnitResult{Kind: g1.Kind, Key: g1.Key, Start: g1.Start,
		End: g1.End, States: states, Events: events, Worker: "shady", Trace: &snap})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), "shady", body); err != nil {
		t.Fatal(err)
	}

	// Unit 2: forged — the audit quarantines the worker mid-job. Its
	// re-report (with the same trace attached) is refused with ErrGone.
	g2 := waitGrant(t, c, "shady")
	if err := c.Report(context.Background(), "shady", forgedReport(t, g2, "shady", 9_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), "shady", body); !errors.Is(err, ErrGone) {
		t.Fatalf("post-quarantine re-report: want ErrGone, got %v", err)
	}

	// The local lane finishes the job (the only worker is shunned).
	if o := waitOutcome(t, ch); o.err != nil {
		t.Fatal(o.err)
	}
	root.End()

	trace := tracer.Snapshot()
	grafts := 0
	for _, sp := range trace.Spans {
		if sp.Attr("worker") == "shady" {
			grafts++
			if sp.Name != "unit.window" {
				t.Errorf("unexpected grafted span %q", sp.Name)
			}
			if sp.Attr("unit") != fmt.Sprintf("%d", g1.Start/4) && sp.Attr("unit") == "" {
				t.Errorf("graft lost unit attribution: %+v", sp.Attrs)
			}
		}
	}
	if grafts != 1 {
		var names []string
		for _, sp := range trace.Spans {
			names = append(names, fmt.Sprintf("%s(worker=%s)", sp.Name, sp.Attr("worker")))
		}
		t.Fatalf("want exactly 1 grafted span from the quarantined worker, got %d: %s",
			grafts, strings.Join(names, ", "))
	}
	if err := trace.Check(); err != nil {
		t.Fatalf("grafted trace fails invariants: %v", err)
	}
}
