package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qisim/internal/simrun"
)

// toyCore builds a deterministic int-sum core whose per-shard result
// encodes the shard identity, so any reordering, double-count, or replay
// shows up in the folded sum.
func toyCore(engineWorkers int) Core {
	return NewCore(CoreSpec[int]{
		Run: func(t *simrun.ShardTask) (int, int, error) {
			sum := 0
			for s := 0; t.Continue(s); s++ {
				sum += int(t.RNG.Int63() % 1000)
			}
			return sum + t.Index*1_000_000, 1, nil
		},
		Merge: func(dst *int, src int) { *dst += src },
		Finish: func(acc int, st simrun.Status) ([]byte, error) {
			return json.Marshal(struct {
				Sum    int           `json:"sum"`
				Status simrun.Status `json:"status"`
			}{acc, st})
		},
		Options: simrun.Options{Workers: engineWorkers},
	})
}

var toyPlan = Plan{Shots: 2000, Seed: 7, ShardSize: 128}

// fakeClock is a mutex-guarded manual clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	return f.now
}

func TestUnitResultWireRoundTrip(t *testing.T) {
	u := UnitResult{Kind: "toy", Key: "k1", Start: 2, End: 4,
		States: []json.RawMessage{[]byte("1"), []byte("2")}, Events: []int{1, 1}, Worker: "w1"}
	b, err := EncodeUnitResult(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUnitResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "k1" || got.Start != 2 || got.End != 4 || len(got.States) != 2 || got.Version != 2 {
		t.Fatalf("round trip wrong: %+v", got)
	}
	// Corruption is rejected at the framing layer.
	b[len(b)-1] ^= 0xff
	if _, err := DecodeUnitResult(b); err == nil {
		t.Fatal("corrupted container must not decode")
	}
	// Mismatched state count is rejected.
	u.States = u.States[:1]
	if _, err := EncodeUnitResult(u); err == nil {
		t.Fatal("state/range mismatch must not encode")
	}
}

// runFullBytes runs the standalone reference path.
func runFullBytes(t *testing.T, core Core, p Plan) []byte {
	t.Helper()
	b, st, err := core.RunFull(context.Background(), p)
	if err != nil {
		t.Fatalf("RunFull: %v", err)
	}
	if st.StopReason == "" {
		t.Fatalf("RunFull status empty: %+v", st)
	}
	return b
}

// TestWindowFoldMatchesRunFull is the core determinism contract at the
// dist layer: RunWindow states folded in order == RunFull bytes.
func TestWindowFoldMatchesRunFull(t *testing.T) {
	for _, engineWorkers := range []int{1, 4} {
		core := toyCore(engineWorkers)
		want := runFullBytes(t, core, toyPlan)

		n := toyPlan.NumShards()
		fold := core.NewFold()
		var tally simrun.Tally
		shard := 0
		for start := 0; start < n; start += 3 {
			end := start + 3
			if end > n {
				end = n
			}
			states, events, err := core.RunWindow(context.Background(), toyPlan, start, end)
			if err != nil {
				t.Fatal(err)
			}
			for i, st := range states {
				if err := fold.Add(st); err != nil {
					t.Fatal(err)
				}
				tally.Add(toyPlan.ShardShots(shard), events[i])
				shard++
			}
		}
		got, err := fold.Finish(simrun.Status{
			Requested: toyPlan.Shots, Completed: toyPlan.PrefixShots(n),
			StopReason: simrun.StopCompleted,
		})
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("engineWorkers=%d: fold bytes differ\n got %s\nwant %s", engineWorkers, got, want)
		}
	}
}

// startExecute launches Execute in a goroutine and returns a channel with
// its outcome.
type execOutcome struct {
	body   []byte
	status simrun.Status
	err    error
}

func startExecute(c *Coordinator, ctx context.Context, key string, core Core, p Plan) chan execOutcome {
	ch := make(chan execOutcome, 1)
	go func() {
		b, st, err := c.Execute(ctx, "toy", key, nil, core, p, nil)
		ch <- execOutcome{b, st, err}
	}()
	return ch
}

// drainClaims pulls every available grant for a worker.
func drainClaims(t *testing.T, c *Coordinator, worker string) []*LeaseGrant {
	t.Helper()
	var out []*LeaseGrant
	for {
		g, err := c.Claim(context.Background(), worker, "")
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			return out
		}
		out = append(out, g)
	}
}

// waitGrant polls Claim until the Execute goroutine has admitted the job
// and a grant is available.
func waitGrant(t *testing.T, c *Coordinator, worker string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g, err := c.Claim(context.Background(), worker, "")
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			return g
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no grant became available")
	return nil
}

// report executes a grant's window and uploads the result.
func report(t *testing.T, c *Coordinator, core Core, worker string, g *LeaseGrant) {
	t.Helper()
	states, events, err := core.RunWindow(context.Background(), g.Plan, g.Start, g.End)
	if err != nil {
		t.Fatal(err)
	}
	body, err := EncodeUnitResult(UnitResult{Kind: g.Kind, Key: g.Key, Start: g.Start,
		End: g.End, States: states, Events: events, Worker: worker})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), worker, body); err != nil {
		t.Fatal(err)
	}
}

func waitOutcome(t *testing.T, ch chan execOutcome) execOutcome {
	t.Helper()
	select {
	case o := <-ch:
		return o
	case <-time.After(30 * time.Second):
		t.Fatal("Execute did not finish")
		return execOutcome{}
	}
}

func TestExecuteNoWorkersIsTyped(t *testing.T) {
	c := NewCoordinator(Config{})
	core := toyCore(1)
	_, _, err := c.Execute(context.Background(), "toy", "kx", nil, core, toyPlan, nil)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("want ErrNoWorkers, got %v", err)
	}
}

func TestExecuteManualFleetMatchesRunFull(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Second, UnitShards: 3})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	if err := c.Register(context.Background(), WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)

	// 16 shards at UnitShards=3 → 6 units; claim and report them all.
	deadline := time.Now().Add(10 * time.Second)
	done := 0
	for done < 6 && time.Now().Before(deadline) {
		grants := drainClaims(t, c, "w1")
		for _, g := range grants {
			report(t, c, core, "w1", g)
			done++
		}
		if len(grants) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("fleet bytes differ\n got %s\nwant %s", o.body, want)
	}
	if o.status.StopReason != simrun.StopCompleted || o.status.Completed != toyPlan.Shots {
		t.Fatalf("status wrong: %+v", o.status)
	}
}

// TestLeaseExpiryRequeuesAndRetries kills a worker mid-shard (it claims
// and never reports); the lease expires, the unit requeues with backoff,
// and a second worker completes the job with bytes identical to
// standalone.
func TestLeaseExpiryRequeuesAndRetries(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Second, UnitShards: 8})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	c.Register(context.Background(), WorkerInfo{ID: "dead"})
	c.Register(context.Background(), WorkerInfo{ID: "alive"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)

	// The doomed worker grabs the first unit and dies.
	var dead *LeaseGrant
	for dead == nil {
		g, err := c.Claim(context.Background(), "dead", "")
		if err != nil {
			t.Fatal(err)
		}
		dead = g
	}
	// Its renewals work while the lease lives...
	if err := c.Renew(context.Background(), "dead", dead.Key, dead.Start, dead.End, nil); err != nil {
		t.Fatal(err)
	}
	// ...but after TTL + renewal expiry the sweep reclaims the unit.
	clk.Advance(3 * time.Second)
	c.Sweep(clk.Now())
	if err := c.Renew(context.Background(), "dead", dead.Key, dead.Start, dead.End, nil); !errors.Is(err, ErrGone) {
		t.Fatalf("post-expiry renew: want ErrGone, got %v", err)
	}

	// Backoff gates the requeued unit; jump past it and let the healthy
	// worker finish everything.
	clk.Advance(time.Minute)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		grants := drainClaims(t, c, "alive")
		for _, g := range grants {
			report(t, c, core, "alive", g)
		}
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatal(o.err)
			}
			if string(o.body) != string(want) {
				t.Fatalf("retried bytes differ\n got %s\nwant %s", o.body, want)
			}
			st := c.Stats()
			if st.Expired == 0 || st.UnitRetries == 0 {
				t.Fatalf("expiry path not exercised: %+v", st)
			}
			return
		default:
		}
		clk.Advance(time.Second)
		c.Sweep(clk.Now())
	}
	t.Fatal("job did not finish")
}

// TestDuplicateReportIsDeduplicated reports the same unit twice (and once
// more after job completion): accepted once, never double-counted.
func TestDuplicateReportIsDeduplicated(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Second, UnitShards: 8})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	c.Register(context.Background(), WorkerInfo{ID: "w1"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)

	// 16 shards at UnitShards=8 → 2 units; finish the first one twice.
	g := waitGrant(t, c, "w1")
	states, events, err := core.RunWindow(context.Background(), g.Plan, g.Start, g.End)
	if err != nil {
		t.Fatal(err)
	}
	body, err := EncodeUnitResult(UnitResult{Kind: g.Kind, Key: g.Key, Start: g.Start,
		End: g.End, States: states, Events: events, Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(context.Background(), "w1", body); err != nil {
		t.Fatal(err)
	}
	// Same unit again while the job is live: acknowledged, not recounted.
	if err := c.Report(context.Background(), "w2", body); err != nil {
		t.Fatalf("duplicate report must be acknowledged, got %v", err)
	}
	report(t, c, core, "w1", waitGrant(t, c, "w1"))
	o := waitOutcome(t, ch)
	if o.err != nil || string(o.body) != string(want) {
		t.Fatalf("deduped bytes differ (err=%v)\n got %s\nwant %s", o.err, o.body, want)
	}
	// A late report after completion is an orphan ack, not an error.
	if err := c.Report(context.Background(), "w1", body); err != nil {
		t.Fatalf("late report: %v", err)
	}
	if st := c.Stats(); st.DupReports != 1 || st.UnitsDone != 2 {
		t.Fatalf("dedupe counters wrong: %+v", st)
	}
}

// TestHedgedStealFirstReportWins: with no pending work left, an old
// straggler lease is hedge-granted to a second worker; whichever reports
// first wins and the loser's duplicate is dropped.
func TestHedgedStealFirstReportWins(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: 10 * time.Second,
		HedgeAfter: 2 * time.Second, UnitShards: 16})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	c.Register(context.Background(), WorkerInfo{ID: "slow"})
	c.Register(context.Background(), WorkerInfo{ID: "fast"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)

	slow := waitGrant(t, c, "slow")
	// Not yet old enough to hedge.
	if g, _ := c.Claim(context.Background(), "fast", ""); g != nil {
		t.Fatalf("premature hedge: %+v", g)
	}
	clk.Advance(3 * time.Second) // straggler threshold crossed, lease still live
	hedge, err := c.Claim(context.Background(), "fast", "")
	if err != nil || hedge == nil {
		t.Fatalf("expected hedged grant, got %+v err=%v", hedge, err)
	}
	if hedge.Start != slow.Start || hedge.End != slow.End {
		t.Fatalf("hedge covers [%d,%d), want [%d,%d)", hedge.Start, hedge.End, slow.Start, slow.End)
	}
	report(t, c, core, "fast", hedge)
	o := waitOutcome(t, ch)
	if o.err != nil || string(o.body) != string(want) {
		t.Fatalf("hedged bytes differ (err=%v)", o.err)
	}
	// The slow worker's late report dedupes; its renewal says gone.
	report(t, c, core, "slow", slow)
	if err := c.Renew(context.Background(), "slow", slow.Key, slow.Start, slow.End, nil); !errors.Is(err, ErrGone) {
		t.Fatalf("want ErrGone for finished unit, got %v", err)
	}
	if st := c.Stats(); st.Steals != 1 {
		t.Fatalf("steal not counted: %+v", st)
	}
}

// TestProbeEvictionRequeuesAndReadmits: consecutive probe failures evict a
// worker (leases requeue immediately); a successful probe re-admits it.
func TestProbeEvictionRequeuesAndReadmits(t *testing.T) {
	clk := newFakeClock()
	var probeMu sync.Mutex
	probeErr := map[string]error{}
	probe := func(_ context.Context, addr string) (string, error) {
		probeMu.Lock()
		defer probeMu.Unlock()
		if err := probeErr[addr]; err != nil {
			return "", err
		}
		return "ok", nil
	}
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: time.Hour,
		ProbeFailLimit: 2, Probe: probe, UnitShards: 16})
	core := toyCore(1)

	c.Register(context.Background(), WorkerInfo{ID: "w1", Addr: "http://w1"})
	// A second healthy worker keeps the fleet alive so eviction exercises
	// requeue/readmission rather than the zero-worker local fallback.
	c.Register(context.Background(), WorkerInfo{ID: "keeper", Addr: "http://keeper"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)
	g := waitGrant(t, c, "w1")

	probeMu.Lock()
	probeErr["http://w1"] = errors.New("connection refused")
	probeMu.Unlock()
	c.ProbeAll(context.Background())
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("one failure must not evict: %+v", st)
	}
	c.ProbeAll(context.Background())
	st := c.Stats()
	if st.Evictions != 1 || st.Expired == 0 {
		t.Fatalf("eviction must requeue the lease: %+v", st)
	}
	if err := c.Renew(context.Background(), "w1", g.Key, g.Start, g.End, nil); !errors.Is(err, ErrGone) {
		t.Fatalf("evicted worker's renew: want ErrGone, got %v", err)
	}

	// The partition heals: probe succeeds, worker re-admitted and claims
	// the requeued unit (backoff gate jumped).
	probeMu.Lock()
	delete(probeErr, "http://w1")
	probeMu.Unlock()
	c.ProbeAll(context.Background())
	if st := c.Stats(); st.Readmits != 1 {
		t.Fatalf("readmission not counted: %+v", st)
	}
	clk.Advance(time.Minute)
	g2, err := c.Claim(context.Background(), "w1", "")
	if err != nil || g2 == nil {
		t.Fatalf("re-admitted worker got no work: %+v err=%v", g2, err)
	}
	report(t, c, core, "w1", g2)
	if o := waitOutcome(t, ch); o.err != nil {
		t.Fatal(o.err)
	}
}

// TestDrainingWorkerIsLeaseNonRenewable: a draining worker keeps its
// lease but renewals stop extending, and it receives no new grants.
func TestDrainingWorkerIsLeaseNonRenewable(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Clock: clk.Now, LeaseTTL: 10 * time.Second, UnitShards: 4})
	core := toyCore(1)

	c.Register(context.Background(), WorkerInfo{ID: "w1"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)
	g := waitGrant(t, c, "w1")
	c.MarkDraining("w1")

	// Renewal is accepted (the worker is alive, finishing its unit) but
	// does not extend: after the original TTL the lease expires.
	if err := c.Renew(context.Background(), "w1", g.Key, g.Start, g.End, nil); err != nil {
		t.Fatalf("draining renew must be accepted: %v", err)
	}
	if g2, _ := c.Claim(context.Background(), "w1", ""); g2 != nil {
		t.Fatalf("draining worker must get no new work, got %+v", g2)
	}
	clk.Advance(11 * time.Second)
	c.Sweep(clk.Now())
	if err := c.Renew(context.Background(), "w1", g.Key, g.Start, g.End, nil); !errors.Is(err, ErrGone) {
		t.Fatalf("lease must expire at original TTL: got %v", err)
	}
	if st := c.Stats(); st.Renewals != 0 {
		t.Fatalf("draining renew must not count as an extension: %+v", st)
	}

	// Cancel the hanging job.
	report(t, c, core, "w2", mustGrant(t, c, clk, "w2"))
	drainAll(t, c, core, "w2", ch)
}

func mustGrant(t *testing.T, c *Coordinator, clk *fakeClock, worker string) *LeaseGrant {
	t.Helper()
	c.Register(context.Background(), WorkerInfo{ID: worker})
	clk.Advance(time.Minute)
	c.Sweep(clk.Now())
	g, err := c.Claim(context.Background(), worker, "")
	if err != nil || g == nil {
		t.Fatalf("no grant for %s (err=%v)", worker, err)
	}
	return g
}

func drainAll(t *testing.T, c *Coordinator, core Core, worker string, ch chan execOutcome) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, g := range drainClaims(t, c, worker) {
			report(t, c, core, worker, g)
		}
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatal(o.err)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("job did not finish")
}

// TestInProcessWorkerFleet runs real Worker loops against the coordinator
// (direct CoordinatorAPI, no HTTP): bytes match standalone, for 1 and 4
// fleet workers.
func TestInProcessWorkerFleet(t *testing.T) {
	for _, fleet := range []int{1, 4} {
		core := toyCore(1)
		want := runFullBytes(t, core, toyPlan)
		c := NewCoordinator(Config{LeaseTTL: 2 * time.Second, UnitShards: 2})
		ctx, cancel := context.WithCancel(context.Background())
		c.Start(ctx)

		// Pre-register so Execute's admission check sees a live fleet even
		// if the worker goroutines haven't called Register yet.
		for i := 0; i < fleet; i++ {
			if err := c.Register(ctx, WorkerInfo{ID: fmt.Sprintf("w%d", i)}); err != nil {
				t.Fatal(err)
			}
		}

		cores := func(kind string, _ json.RawMessage) (Core, error) {
			if kind != "toy" {
				return nil, fmt.Errorf("unknown kind %q", kind)
			}
			return toyCore(1), nil
		}
		var wg sync.WaitGroup
		for i := 0; i < fleet; i++ {
			w, err := NewWorker(WorkerConfig{
				ID: fmt.Sprintf("w%d", i), Coordinator: c, Cores: cores,
				PollInterval: 2 * time.Millisecond, Seed: int64(i + 1), Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.Run(ctx)
			}()
		}
		body, st, err := c.Execute(ctx, "toy", "k1", nil, core, toyPlan, nil)
		cancel()
		wg.Wait()
		if err != nil {
			t.Fatalf("fleet=%d: %v", fleet, err)
		}
		if string(body) != string(want) {
			t.Fatalf("fleet=%d: bytes differ\n got %s\nwant %s", fleet, body, want)
		}
		if st.Completed != toyPlan.Shots {
			t.Fatalf("fleet=%d: status %+v", fleet, st)
		}
	}
}

// TestConvergenceBoundaryMatchesStandalone: with a convergence target the
// distributed fold must stop at the same shard boundary as RunSharded.
func TestConvergenceBoundaryMatchesStandalone(t *testing.T) {
	plan := Plan{Shots: 4000, Seed: 5, ShardSize: 128, TargetRelStdErr: 0.05}
	core := toyCore(1)
	want, wantSt, err := core.RunFull(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !wantSt.Converged {
		t.Skip("toy core did not converge at this target; pick a looser target")
	}

	c := NewCoordinator(Config{LeaseTTL: 5 * time.Second, UnitShards: 3})
	c.Register(context.Background(), WorkerInfo{ID: "w1"})
	ch := startExecute(c, context.Background(), "kc", core, plan)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, g := range drainClaims(t, c, "w1") {
			report(t, c, core, "w1", g)
		}
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatal(o.err)
			}
			if !o.status.Converged || o.status.Completed != wantSt.Completed {
				t.Fatalf("dist status %+v, standalone %+v", o.status, wantSt)
			}
			if string(o.body) != string(want) {
				t.Fatalf("converged bytes differ\n got %s\nwant %s", o.body, want)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("job did not converge")
}

// TestExecuteCancellationTruncates: canceling Execute's ctx returns the
// folded prefix as a Truncated partial.
func TestExecuteCancellationTruncates(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Hour, UnitShards: 4})
	core := toyCore(1)
	c.Register(context.Background(), WorkerInfo{ID: "w1"})
	ctx, cancel := context.WithCancel(context.Background())
	ch := startExecute(c, ctx, "k1", core, toyPlan)

	// Complete exactly the first unit, then cancel.
	g := waitGrant(t, c, "w1")
	if g.Start != 0 {
		t.Fatalf("first grant wrong: %+v", g)
	}
	report(t, c, core, "w1", g)
	cancel()
	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if !o.status.Truncated || o.status.StopReason != simrun.StopCanceled {
		t.Fatalf("want truncated cancel, got %+v", o.status)
	}
	if o.status.Completed != toyPlan.PrefixShots(g.End) {
		t.Fatalf("completed %d, want prefix %d", o.status.Completed, toyPlan.PrefixShots(g.End))
	}
}

// TestMidJobFleetLossFallsBackLocal: the fleet dies mid-job (eviction) and
// the remaining units run on the coordinator's local lane, bytes intact.
func TestMidJobFleetLossFallsBackLocal(t *testing.T) {
	var probeMu sync.Mutex
	dead := false
	probe := func(_ context.Context, _ string) (string, error) {
		probeMu.Lock()
		defer probeMu.Unlock()
		if dead {
			return "", errors.New("unreachable")
		}
		return "ok", nil
	}
	c := NewCoordinator(Config{LeaseTTL: time.Hour, UnitShards: 8,
		ProbeFailLimit: 1, Probe: probe})
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	c.Register(context.Background(), WorkerInfo{ID: "w1", Addr: "http://w1"})
	ch := startExecute(c, context.Background(), "k1", core, toyPlan)
	g := waitGrant(t, c, "w1")
	report(t, c, core, "w1", g)

	probeMu.Lock()
	dead = true
	probeMu.Unlock()
	c.ProbeAll(context.Background())

	o := waitOutcome(t, ch)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("local-fallback bytes differ\n got %s\nwant %s", o.body, want)
	}
	if st := c.Stats(); st.LocalUnits == 0 || st.Evictions != 1 {
		t.Fatalf("local lane not exercised: %+v", st)
	}
}

// TestExecuteProgressFrontier: the progress callback must track the
// committed shard frontier — monotone, never past the fold, ending at the
// full shot count on a completed run.
func TestExecuteProgressFrontier(t *testing.T) {
	core := toyCore(1)
	c := NewCoordinator(Config{LeaseTTL: 5 * time.Second, UnitShards: 2})
	c.Register(context.Background(), WorkerInfo{ID: "w1"})

	var mu sync.Mutex
	var completed []int
	progress := func(done, requested int) {
		if requested != toyPlan.Shots {
			t.Errorf("progress requested = %d, want %d", requested, toyPlan.Shots)
		}
		mu.Lock()
		completed = append(completed, done)
		mu.Unlock()
	}

	ch := make(chan execOutcome, 1)
	go func() {
		b, st, err := c.Execute(context.Background(), "toy", "kp", nil, core, toyPlan, progress)
		ch <- execOutcome{b, st, err}
	}()

	deadline := time.Now().Add(10 * time.Second)
	var out execOutcome
	done := false
	for !done && time.Now().Before(deadline) {
		for _, g := range drainClaims(t, c, "w1") {
			report(t, c, core, "w1", g)
		}
		select {
		case out = <-ch:
			done = true
		case <-time.After(time.Millisecond):
		}
	}
	if !done {
		t.Fatal("Execute did not finish")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(completed) == 0 {
		t.Fatal("progress callback never fired")
	}
	for i := 1; i < len(completed); i++ {
		if completed[i] < completed[i-1] {
			t.Fatalf("progress regressed: %v", completed)
		}
	}
	last := completed[len(completed)-1]
	if last != toyPlan.Shots {
		t.Fatalf("final progress = %d, want %d (all %v)", last, toyPlan.Shots, completed)
	}
	if out.status.Completed != toyPlan.Shots {
		t.Fatalf("status %+v", out.status)
	}
}
