// Package dist is QIsim's fault-tolerant distributed execution layer: a
// coordinator that splits a Monte-Carlo job's shard plan into leased work
// units across a fleet of qisimd workers, plus the worker-side
// claim/execute/report loop.
//
// Failure handling is first-class, not bolted on:
//
//   - every lease carries a deadline and is renewed by worker heartbeats;
//     an expired lease requeues its unit for retry with capped exponential
//     backoff + full jitter (internal/backoff),
//   - straggler tails are hedged: when no pending work remains, an old
//     enough outstanding unit is re-dispatched to a second worker and the
//     first result wins (work stealing),
//   - workers are health-probed and evicted after consecutive failures
//     (their leases requeue immediately), re-admitted on any successful
//     probe, claim, or report,
//   - shard-result upload is idempotent, keyed by (job, shard range):
//     duplicate and late completions are deduplicated, never
//     double-counted,
//   - degradation is graceful: a unit that exhausts its remote attempts
//     falls back to the coordinator's local lane, and a job admitted with
//     zero reachable workers runs fully in-process (ErrNoWorkers tells the
//     caller to take the standalone path).
//
// Determinism contract: a job's merged result is byte-identical whether it
// runs standalone, on a healthy fleet, or on a fleet with killed,
// restarted, partitioned, or slow workers. The mechanism is exact fold
// replay — workers return *per-shard* serialized accumulator states (not
// window-merged results), and the coordinator folds them in global shard
// order through the same merge and finish functions the standalone path
// uses, checking the convergence guard at every shard boundary exactly
// like simrun.RunSharded. The wire format is the QISNAP01 CRC-guarded
// container (internal/checkpoint), so a torn or bit-rotted upload is
// rejected, never merged.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"math"

	"qisim/internal/checkpoint"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"

	"context"
)

// ErrNoWorkers is returned by Coordinator.Execute when the fleet has zero
// live workers at admission: the caller should run the job fully locally
// (graceful degradation) rather than fail it.
var ErrNoWorkers = errors.New("dist: no live workers")

// ErrGone is the renewal/report verdict for a lease the coordinator no
// longer recognises (expired and re-dispatched, job finished, or
// coordinator restarted): the worker abandons the unit.
var ErrGone = errors.New("dist: lease gone")

// Plan fixes a job's shard geometry and convergence policy — everything a
// coordinator and its workers must agree on for the fold to be exact.
type Plan struct {
	// Shots is the effective shot budget (the caller resolves MaxShots
	// before planning).
	Shots int `json:"shots"`
	// Seed is the top-level RNG seed; per-shard streams derive from it.
	Seed int64 `json:"seed"`
	// ShardSize is the shots-per-shard partition (0 = DefaultShardSize).
	ShardSize int `json:"shard_size"`
	// TargetRelStdErr enables the coordinator-side convergence guard,
	// checked at every shard boundary of the contiguous done prefix.
	TargetRelStdErr float64 `json:"target_rel_std_err,omitempty"`
	// MinShots is the convergence floor (0 with a target = 1000, matching
	// simrun).
	MinShots int `json:"min_shots,omitempty"`
}

// Normalized fills the defaults simrun.RunSharded would apply, so geometry
// computed here matches a standalone run exactly.
func (p Plan) Normalized() Plan {
	if p.ShardSize <= 0 {
		p.ShardSize = simrun.DefaultShardSize
	}
	if p.TargetRelStdErr > 0 && p.MinShots == 0 {
		p.MinShots = 1000
	}
	return p
}

// NumShards returns the plan's shard count.
func (p Plan) NumShards() int {
	p = p.Normalized()
	return simrun.PlanShards(p.Shots, p.ShardSize)
}

// PrefixShots returns the shots covered by the first k shards.
func (p Plan) PrefixShots(k int) int {
	p = p.Normalized()
	return simrun.PlanShots(p.Shots, p.ShardSize, k)
}

// ShardShots returns shard i's shot count.
func (p Plan) ShardShots(i int) int {
	return p.PrefixShots(i+1) - p.PrefixShots(i)
}

// Fold consumes per-shard serialized accumulator states in strictly
// ascending global shard order and finishes into the job's result bytes —
// the coordinator-side half of the determinism contract.
type Fold interface {
	// Add folds the next shard's state (ascending order is the caller's
	// obligation).
	Add(state json.RawMessage) error
	// Finish assembles the result bytes from the folded accumulator and
	// the run status the coordinator computed.
	Finish(status simrun.Status) ([]byte, error)
}

// Core is the type-erased per-kind execution engine a Coordinator or
// Worker drives. NewCore adapts a generic (ShardFunc, MergeFunc, finish)
// triple; the concrete R never crosses the dist API.
type Core interface {
	// RunWindow executes shards [start,end) of the plan and returns each
	// shard's serialized accumulator state plus its event count, in shard
	// order. All-or-nothing: an interrupted window returns an error and no
	// states.
	RunWindow(ctx context.Context, p Plan, start, end int) (states []json.RawMessage, events []int, err error)
	// NewFold starts a fresh coordinator-side fold.
	NewFold() Fold
	// RunFull runs the whole plan locally through simrun.RunSharded — the
	// standalone reference path, sharing merge and finish with the fold so
	// local and distributed results cannot drift.
	RunFull(ctx context.Context, p Plan) ([]byte, simrun.Status, error)
}

// CoreSpec is the generic recipe NewCore adapts into a Core.
type CoreSpec[R any] struct {
	// Run is the per-shard sampler (pure given (Shard, RNG)).
	Run simrun.ShardFunc[R]
	// Merge folds one shard's partial into the accumulator, called in
	// strictly ascending shard order.
	Merge simrun.MergeFunc[R]
	// Finish assembles the job's result bytes from the folded accumulator
	// and the run status.
	Finish func(acc R, status simrun.Status) ([]byte, error)
	// Options carries engine tuning (Workers, CheckEvery) and — for
	// RunFull only — checkpoint/resume/progress hooks. RunWindow strips
	// convergence and checkpointing: a window is a dumb slice of work.
	Options simrun.Options
}

// NewCore adapts a CoreSpec into the type-erased Core interface.
func NewCore[R any](spec CoreSpec[R]) Core { return &core[R]{spec: spec} }

type core[R any] struct{ spec CoreSpec[R] }

func (c *core[R]) RunWindow(ctx context.Context, p Plan, start, end int) ([]json.RawMessage, []int, error) {
	p = p.Normalized()
	opt := c.spec.Options
	opt.ShardSize = p.ShardSize
	// A window has no stop decisions of its own: no convergence, no
	// budget cap, no checkpointing — those belong to the coordinator.
	opt.TargetRelStdErr = 0
	opt.MinShots = 0
	opt.MaxShots = 0
	opt.Checkpoint = nil
	opt.Resume = nil
	opt.Progress = nil
	states := make([]json.RawMessage, 0, end-start)
	events := make([]int, 0, end-start)
	err := simrun.RunWindow(ctx, p.Shots, p.Seed, opt, start, end, c.spec.Run,
		func(sh simrun.Shard, res R, ev int) error {
			b, err := json.Marshal(res)
			if err != nil {
				return simerr.Invalidf("dist: marshal shard %d state: %v", sh.Index, err)
			}
			states = append(states, b)
			events = append(events, ev)
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return states, events, nil
}

func (c *core[R]) NewFold() Fold { return &fold[R]{spec: &c.spec} }

func (c *core[R]) RunFull(ctx context.Context, p Plan) ([]byte, simrun.Status, error) {
	p = p.Normalized()
	opt := c.spec.Options
	opt.ShardSize = p.ShardSize
	opt.TargetRelStdErr = p.TargetRelStdErr
	opt.MinShots = p.MinShots
	acc, st, err := simrun.RunSharded(ctx, p.Shots, p.Seed, opt, c.spec.Run, c.spec.Merge)
	if err != nil {
		return nil, st, err
	}
	body, err := c.spec.Finish(acc, st)
	return body, st, err
}

type fold[R any] struct {
	spec *CoreSpec[R]
	acc  R
}

func (f *fold[R]) Add(state json.RawMessage) error {
	var r R
	dec := json.NewDecoder(bytes.NewReader(state))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return simerr.Invalidf("dist: shard state does not decode into %T: %v", r, err)
	}
	f.spec.Merge(&f.acc, r)
	return nil
}

func (f *fold[R]) Finish(status simrun.Status) ([]byte, error) {
	return f.spec.Finish(f.acc, status)
}

// UnitResult is the idempotent shard-result upload: one work unit's
// per-shard states and event counts, keyed by (job key, shard range). It
// travels inside a QISNAP01 container so torn or corrupted uploads are
// rejected at the framing layer.
type UnitResult struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Key     string `json:"key"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	// States holds one serialized accumulator state per shard of
	// [Start,End), in shard order; Events the matching event counts.
	States []json.RawMessage `json:"states"`
	Events []int             `json:"events"`
	// Worker identifies the reporter (observability only — dedup is by
	// key+range, so two workers racing the same hedged unit collapse).
	Worker string `json:"worker,omitempty"`
	// Trace is the worker-side window trace, grafted into the job trace
	// by the coordinator so /v1/jobs/{id}/trace stitches a cross-node
	// tree.
	Trace *obs.Trace `json:"trace,omitempty"`
	// Metrics is the worker's federated metrics summary, piggybacked on the
	// upload (observability only, like Worker and Trace — deliberately
	// outside the content digest so federation can never invalidate a
	// result).
	Metrics *metrics.Summary `json:"metrics,omitempty"`
	// Digest is the SHA-256 over the semantic payload (kind, key, range,
	// states, events) — defense in depth past the container CRC: the CRC
	// catches wire corruption of the frame, the digest pins the *content*
	// the worker claims to have computed, so a proxy or middlebox that
	// rewrites JSON in flight (or a buggy worker that mutates states after
	// digesting) is caught before the fold.
	Digest string `json:"digest"`
}

// unitResultVersion is the current UnitResult schema version. v2 added the
// mandatory content digest; v1 payloads (pre-digest) are rejected and
// their units simply re-run.
const unitResultVersion = 2

// unitDigest hashes the semantic content of a unit result — the fields the
// fold consumes — with length framing so no two distinct payloads collide
// by concatenation. Worker/Trace/Version stay out: they are observability,
// not content.
func unitDigest(u UnitResult) string {
	h := sha256.New()
	var num [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(num[:], uint64(int64(v)))
		h.Write(num[:])
	}
	writeBytes := func(b []byte) {
		writeInt(len(b))
		h.Write(b)
	}
	writeBytes([]byte(u.Kind))
	writeBytes([]byte(u.Key))
	writeInt(u.Start)
	writeInt(u.End)
	for i, s := range u.States {
		writeBytes(s)
		writeInt(u.Events[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// grantDigest hashes a lease grant's every semantic field with length
// framing (Digest itself excluded). Stamped by the coordinator at grant
// time and verified by Client.Claim, so a grant corrupted in transit into
// still-parseable JSON is rejected instead of executed.
func grantDigest(g LeaseGrant) string {
	h := sha256.New()
	var num [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(num[:], v)
		h.Write(num[:])
	}
	writeBytes := func(b []byte) {
		writeU64(uint64(len(b)))
		h.Write(b)
	}
	writeBytes([]byte(g.Kind))
	writeBytes([]byte(g.Key))
	writeBytes(g.Params)
	writeU64(uint64(int64(g.Plan.Shots)))
	writeU64(uint64(g.Plan.Seed))
	writeU64(uint64(int64(g.Plan.ShardSize)))
	writeU64(math.Float64bits(g.Plan.TargetRelStdErr))
	writeU64(uint64(int64(g.Plan.MinShots)))
	writeU64(uint64(int64(g.Start)))
	writeU64(uint64(int64(g.End)))
	writeU64(uint64(g.TTLMS))
	writeU64(uint64(g.DeadlineMS))
	return hex.EncodeToString(h.Sum(nil))
}

// EncodeUnitResult frames a unit result for upload, stamping the content
// digest.
func EncodeUnitResult(u UnitResult) ([]byte, error) {
	u.Version = unitResultVersion
	if len(u.States) != u.End-u.Start || len(u.Events) != u.End-u.Start {
		return nil, simerr.Invalidf("dist: unit [%d,%d) has %d states / %d events, want %d",
			u.Start, u.End, len(u.States), len(u.Events), u.End-u.Start)
	}
	u.Digest = unitDigest(u)
	payload, err := json.Marshal(u)
	if err != nil {
		return nil, simerr.Invalidf("dist: marshal unit result: %v", err)
	}
	return checkpoint.EncodeContainer(payload), nil
}

// DecodeUnitResult verifies and parses an uploaded unit result.
func DecodeUnitResult(b []byte) (UnitResult, error) {
	payload, err := checkpoint.DecodeContainer(b)
	if err != nil {
		return UnitResult{}, err
	}
	var u UnitResult
	if err := json.Unmarshal(payload, &u); err != nil {
		return UnitResult{}, simerr.Invalidf("dist: undecodable unit result: %v", err)
	}
	if u.Version != unitResultVersion {
		return UnitResult{}, simerr.Invalidf("dist: unit result version %d unsupported (want %d)",
			u.Version, unitResultVersion)
	}
	if u.Key == "" || u.Kind == "" || u.Start < 0 || u.End <= u.Start {
		return UnitResult{}, simerr.Invalidf("dist: unit result missing key/kind or bad range [%d,%d)",
			u.Start, u.End)
	}
	if len(u.States) != u.End-u.Start || len(u.Events) != u.End-u.Start {
		return UnitResult{}, simerr.Invalidf("dist: unit [%d,%d) carries %d states / %d events, want %d",
			u.Start, u.End, len(u.States), len(u.Events), u.End-u.Start)
	}
	if u.Digest == "" {
		return UnitResult{}, simerr.Invalidf("dist: unit [%d,%d) missing content digest", u.Start, u.End)
	}
	if want := unitDigest(u); u.Digest != want {
		return UnitResult{}, simerr.Invalidf("dist: unit [%d,%d) digest mismatch (payload altered in flight)",
			u.Start, u.End)
	}
	return u, nil
}

// UnitCacheKey derives the content-addressed result-cache key for one work
// unit of a job, so a re-dispatched or re-submitted unit can be answered
// from the shared result tier without re-execution.
func UnitCacheKey(kind, jobKey string, start, end int, p Plan) (rescache.Key, error) {
	p = p.Normalized()
	return rescache.KeyFor("dist.unit."+kind, struct {
		Key   string `json:"key"`
		Start int    `json:"start"`
		End   int    `json:"end"`
		Shots int    `json:"shots"`
	}{jobKey, start, end, p.Shots}, p.Seed, p.ShardSize)
}
