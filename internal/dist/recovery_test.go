package dist

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qisim/internal/jobs"
	"qisim/internal/rescache"
)

// countingCore wraps a Core and counts shards actually executed through
// RunWindow — the proof that recovered ranges never re-run.
type countingCore struct {
	Core
	mu     sync.Mutex
	shards int
}

func (cc *countingCore) RunWindow(ctx context.Context, p Plan, start, end int) ([]json.RawMessage, []int, error) {
	cc.mu.Lock()
	cc.shards += end - start
	cc.mu.Unlock()
	return cc.Core.RunWindow(ctx, p, start, end)
}

func (cc *countingCore) executed() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.shards
}

// TestCoordinatorCrashRecovery simulates a coordinator crash with one unit
// reported, one lease outstanding, and two units untouched. The restarted
// coordinator reloads the reported unit from UnitDir (never re-running it),
// adopts the outstanding lease from the journal, and completes the job with
// bytes identical to standalone.
func TestCoordinatorCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.wal")
	unitDir := filepath.Join(dir, "units")
	const key = "kr"

	ref := toyCore(1)
	want := runFullBytes(t, ref, toyPlan)

	jrn, err := jobs.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := jrn.Append(jobs.OpSubmit, jobs.Kind("toy"), rescache.Key(key), nil); err != nil {
		t.Fatal(err)
	}

	// --- Life 1: report unit 0, leave unit 1's lease outstanding, crash.
	c1 := NewCoordinator(Config{Journal: jrn, UnitDir: unitDir,
		LeaseTTL: time.Minute, UnitShards: 4})
	c1.Register(context.Background(), WorkerInfo{ID: "w1"})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ch1 := startExecute(c1, ctx1, key, ref, toyPlan)

	g0 := waitGrant(t, c1, "w1")
	if g0.Start != 0 || g0.End != 4 {
		t.Fatalf("first grant [%d,%d), want [0,4)", g0.Start, g0.End)
	}
	report(t, c1, ref, "w1", g0)
	g1 := waitGrant(t, c1, "w1") // claimed, never reported
	if g1.Start != 4 {
		t.Fatalf("second grant start %d, want 4", g1.Start)
	}
	cancel1()
	if o := waitOutcome(t, ch1); o.err != nil || !o.status.Truncated {
		t.Fatalf("crash-cut Execute: err=%v status=%+v", o.err, o.status)
	}
	if err := jrn.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Life 2: reopen the journal, rebuild the coordinator.
	jrn2, err := jobs.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jrn2.Close()
	leases := jrn2.PendingLeases()
	if len(leases) != 1 || leases[0].Start != g1.Start || leases[0].End != g1.End || leases[0].Worker != "w1" {
		t.Fatalf("recovered leases = %+v, want exactly w1 [%d,%d)", leases, g1.Start, g1.End)
	}

	cc := &countingCore{Core: toyCore(1)}
	c2 := NewCoordinator(Config{Journal: jrn2, UnitDir: unitDir,
		LeaseTTL: time.Minute, UnitShards: 4})
	c2.Register(context.Background(), WorkerInfo{ID: "w1"})
	ch2 := startExecute(c2, context.Background(), key, cc, toyPlan)

	// Unit 0 must come back from disk, not execution.
	deadline := time.Now().Add(10 * time.Second)
	for c2.Stats().FileReloads == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := c2.Stats(); st.FileReloads != 1 {
		t.Fatalf("unit 0 not reloaded from UnitDir: %+v", st)
	}

	// The adopted lease keeps unit 1 assigned to w1, so fresh claims get
	// units 2 and 3 only.
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		g := waitGrant(t, c2, "w1")
		if g.Start == g1.Start {
			t.Fatalf("adopted-leased unit re-granted: %+v", g)
		}
		seen[g.Start] = true
		report(t, c2, cc, "w1", g)
	}
	if len(seen) != 2 {
		t.Fatalf("grants covered %v, want two distinct units", seen)
	}
	// The in-flight worker (which survived the coordinator crash) finally
	// reports the adopted unit.
	report(t, c2, cc, "w1", g1)

	o := waitOutcome(t, ch2)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if string(o.body) != string(want) {
		t.Fatalf("recovered bytes differ\n got %s\nwant %s", o.body, want)
	}
	// 16 shards total; unit 0's 4 came from disk. Execution counter proves
	// the reported range never re-ran.
	if n := cc.executed(); n != 12 {
		t.Fatalf("executed %d shards after recovery, want 12", n)
	}
	// Clean completion garbage-collects the unit files.
	if ms, _ := filepath.Glob(filepath.Join(unitDir, "*.unit")); len(ms) != 0 {
		t.Fatalf("unit files not cleaned up: %v", ms)
	}
}

// TestSharedCacheAnswersUnitsBeforeDispatch: a job whose units are already
// in the shared result cache completes without granting any leases.
func TestSharedCacheAnswersUnitsBeforeDispatch(t *testing.T) {
	cache := rescache.New(64)
	core := toyCore(1)
	want := runFullBytes(t, core, toyPlan)

	// First run populates the cache through normal reports.
	c1 := NewCoordinator(Config{Cache: cache, LeaseTTL: time.Minute, UnitShards: 4})
	c1.Register(context.Background(), WorkerInfo{ID: "w1"})
	ch1 := startExecute(c1, context.Background(), "kc", core, toyPlan)
	drainAll(t, c1, core, "w1", ch1)

	// Second run of the same key on a fresh coordinator: all units are
	// cache hits, no grants needed.
	c2 := NewCoordinator(Config{Cache: cache, LeaseTTL: time.Minute, UnitShards: 4})
	c2.Register(context.Background(), WorkerInfo{ID: "w1"})
	body, st, err := c2.Execute(context.Background(), "toy", "kc", nil, core, toyPlan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) || st.Completed != toyPlan.Shots {
		t.Fatalf("cache-served run wrong: status %+v", st)
	}
	if s := c2.Stats(); s.CacheHits != 4 || s.Grants != 0 {
		t.Fatalf("expected 4 cache hits and no grants: %+v", s)
	}
}
