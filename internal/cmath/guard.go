package cmath

import (
	"math"

	"qisim/internal/simerr"
)

// This file adds the NaN/Inf sentinels of the robustness layer: cmath keeps
// hot-path panics for programmer errors (shape mismatches), but numerical
// corruption — NaN or Inf appearing in a kernel's input or output — must be
// caught where it originates and surfaced as a typed ErrNumerical instead of
// poisoning every downstream fidelity and power figure. The *Checked
// variants wrap the three kernels the error models depend on (Expm, EigenH,
// AverageGateFidelity); the predicates are cheap enough to call anywhere.

// IsFinite reports whether every entry of the matrix is finite (no NaN/Inf
// in either component).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.Data {
		if !finiteC(v) {
			return false
		}
	}
	return true
}

func finiteC(v complex128) bool {
	return !math.IsNaN(real(v)) && !math.IsInf(real(v), 0) &&
		!math.IsNaN(imag(v)) && !math.IsInf(imag(v), 0)
}

// CheckFinite returns a typed ErrNumerical naming op when the matrix
// contains a NaN/Inf entry, nil otherwise.
func CheckFinite(op string, m *Matrix) error {
	if m == nil {
		return simerr.Numericalf("cmath: %s: nil matrix", op)
	}
	for i, v := range m.Data {
		if !finiteC(v) {
			return simerr.Numericalf("cmath: %s: non-finite entry (%v) at [%d,%d]",
				op, v, i/m.Cols, i%m.Cols)
		}
	}
	return nil
}

// CheckFiniteVec is CheckFinite for state vectors.
func CheckFiniteVec(op string, v []complex128) error {
	for i, x := range v {
		if !finiteC(x) {
			return simerr.Numericalf("cmath: %s: non-finite amplitude (%v) at [%d]", op, x, i)
		}
	}
	return nil
}

// CheckFiniteScalar is CheckFinite for real scalars (fidelities, error
// rates, power figures).
func CheckFiniteScalar(op string, x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return simerr.Numericalf("cmath: %s: non-finite value %v", op, x)
	}
	return nil
}

// ExpmChecked is Expm with NaN/Inf sentinels on both sides: corrupted input
// (e.g. a NaN pulse sample folded into a Hamiltonian) and any overflow the
// scaling-and-squaring loop produces surface as ErrNumerical.
func ExpmChecked(m *Matrix) (*Matrix, error) {
	if !m.IsSquare() {
		return nil, simerr.Invalidf("cmath: Expm of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	if err := CheckFinite("Expm input", m); err != nil {
		return nil, err
	}
	out := Expm(m)
	if err := CheckFinite("Expm output", out); err != nil {
		return nil, err
	}
	return out, nil
}

// EigenHChecked is EigenH with NaN/Inf sentinels on the input matrix and the
// returned spectrum.
func EigenHChecked(h *Matrix) ([]float64, *Matrix, error) {
	if !h.IsSquare() {
		return nil, nil, simerr.Invalidf("cmath: EigenH of non-square %dx%d matrix", h.Rows, h.Cols)
	}
	if err := CheckFinite("EigenH input", h); err != nil {
		return nil, nil, err
	}
	vals, vecs := EigenH(h)
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, simerr.Numericalf("cmath: EigenH: non-finite eigenvalue %v at [%d]", v, i)
		}
	}
	if err := CheckFinite("EigenH eigenvectors", vecs); err != nil {
		return nil, nil, err
	}
	return vals, vecs, nil
}

// AverageGateFidelityChecked is AverageGateFidelity with sentinels: the
// operands must be finite and the fidelity must land in [0, 1] (within a
// small tolerance for sub-unitary leakage round-off).
func AverageGateFidelityChecked(ideal, actual *Matrix) (float64, error) {
	if ideal.Rows != actual.Rows || ideal.Cols != actual.Cols || !ideal.IsSquare() {
		return 0, simerr.Invalidf("cmath: AverageGateFidelity shape mismatch %dx%d vs %dx%d",
			ideal.Rows, ideal.Cols, actual.Rows, actual.Cols)
	}
	if err := CheckFinite("AverageGateFidelity ideal", ideal); err != nil {
		return 0, err
	}
	if err := CheckFinite("AverageGateFidelity actual", actual); err != nil {
		return 0, err
	}
	f := AverageGateFidelity(ideal, actual)
	if err := CheckFiniteScalar("AverageGateFidelity", f); err != nil {
		return 0, err
	}
	const tol = 1e-9
	if f < -tol || f > 1+tol {
		return 0, simerr.Numericalf("cmath: AverageGateFidelity %v outside [0,1]", f)
	}
	return f, nil
}
