package cmath

import (
	"math"
	"math/rand"
	"testing"
)

func randHermitian(r *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(r.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(r.NormFloat64(), r.NormFloat64())
			a.Set(i, j, v)
			a.Set(j, i, complex(real(v), -imag(v)))
		}
	}
	return a
}

func TestEigenHDiagonal(t *testing.T) {
	d := NewMatrix(3, 3)
	d.Set(0, 0, 3)
	d.Set(1, 1, -1)
	d.Set(2, 2, 7)
	vals, _ := EigenH(d)
	want := []float64{-1, 3, 7}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestEigenHPauliX(t *testing.T) {
	vals, vecs := EigenH(PauliX())
	if math.Abs(vals[0]+1) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("X eigenvalues %v, want ±1", vals)
	}
	// Eigenvector of +1 is |+>: components equal in magnitude.
	if math.Abs(realAbs(vecs.At(0, 1))-realAbs(vecs.At(1, 1))) > 1e-8 {
		t.Fatalf("X eigenvector wrong: %v %v", vecs.At(0, 1), vecs.At(1, 1))
	}
}

func realAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestEigenHReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 3, 5, 9} {
		h := randHermitian(r, n)
		vals, vecs := EigenH(h)
		// H·v_k = λ_k·v_k for every column.
		for k := 0; k < n; k++ {
			col := make([]complex128, n)
			for i := 0; i < n; i++ {
				col[i] = vecs.At(i, k)
			}
			hv := h.ApplyTo(col)
			for i := 0; i < n; i++ {
				diff := hv[i] - complex(vals[k], 0)*col[i]
				if realAbs(diff) > 1e-7 {
					t.Fatalf("n=%d: eigenpair %d fails: residual %v", n, k, diff)
				}
			}
		}
		// Eigenvalues ascend.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1]-1e-12 {
				t.Fatal("eigenvalues not sorted")
			}
		}
		// Trace preserved.
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-real(Trace(h))) > 1e-8 {
			t.Fatal("eigenvalue sum != trace")
		}
	}
}

func TestEigenVectorsUnitary(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	h := randHermitian(r, 4)
	_, vecs := EigenH(h)
	if !IsUnitary(vecs, 1e-8) {
		t.Fatal("eigenvector matrix must be unitary")
	}
}

func TestAvoidedCrossingGap(t *testing.T) {
	// Physics check for the CZ model: at the |11>↔|20> resonance of two
	// coupled transmons, the dressed-state gap equals 2√2·g. Build the
	// two-level block directly: H = [[0, √2 g], [√2 g, 0]].
	g := 2 * math.Pi * 10e6
	h := NewMatrix(2, 2)
	h.Set(0, 1, complex(math.Sqrt2*g, 0))
	h.Set(1, 0, complex(math.Sqrt2*g, 0))
	vals, _ := EigenH(h)
	gap := vals[1] - vals[0]
	want := 2 * math.Sqrt2 * g
	if math.Abs(gap-want)/want > 1e-10 {
		t.Fatalf("avoided-crossing gap %v, want 2√2·g = %v", gap, want)
	}
}
