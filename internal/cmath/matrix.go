// Package cmath provides dense complex linear algebra for the Hamiltonian
// simulations that underpin QIsim's gate- and readout-error models.
//
// The package is deliberately small: square and rectangular dense matrices of
// complex128, the handful of operations quantum dynamics needs (products,
// Kronecker products, daggers, matrix exponentials), and the fidelity measures
// used to score noisy unitaries against ideal gates. Everything is stdlib-only
// and allocation-conscious so the error models can run inside test suites and
// benchmarks without external dependencies.
package cmath

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmath: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		panic("cmath: FromRows requires at least one row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("cmath: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	mustSameShape(a, b, "Add")
	c := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape(a, b, "Sub")
	c := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
	return c
}

// Scale returns s*m.
func Scale(s complex128, m *Matrix) *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = s * v
	}
	return c
}

// AddInPlace accumulates s*b into a.
func AddInPlace(a *Matrix, s complex128, b *Matrix) {
	mustSameShape(a, b, "AddInPlace")
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmath: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// mulBlockJ is the column-tile width of the blocked MulInto kernel: 64
// complex128 values keep one tile of a b-row (1 KiB) plus the matching
// dst-row tile resident in L1 while the k-loop streams over them. Blocking
// is over i and j only — each dst element still accumulates its k-terms in
// ascending order, so the blocked kernel is bit-identical to the naive
// triple loop (see kernel_equiv_test.go).
const mulBlockJ = 64

// MulInto computes dst = a·b, reusing dst's storage. dst must not alias a or
// b. The kernel is cache-blocked over output columns; the floating-point
// accumulation order per element (ascending k) is the same as the naive
// product, so results are bit-identical to Mul for any blocking.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("cmath: MulInto shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	bc := b.Cols
	for jj := 0; jj < bc; jj += mulBlockJ {
		jhi := jj + mulBlockJ
		if jhi > bc {
			jhi = bc
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			crow := dst.Data[i*bc+jj : i*bc+jhi]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*bc+jj : k*bc+jhi]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// Dagger returns the conjugate transpose of m.
func Dagger(m *Matrix) *Matrix {
	d := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			d.Data[j*d.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return d
}

// Kron returns the Kronecker product a⊗b.
func Kron(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.Data[i*a.Cols+j]
			if av == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				for l := 0; l < b.Cols; l++ {
					c.Data[(i*b.Rows+k)*c.Cols+(j*b.Cols+l)] = av * b.Data[k*b.Cols+l]
				}
			}
		}
	}
	return c
}

// Trace returns the trace of a square matrix.
func Trace(m *Matrix) complex128 {
	if !m.IsSquare() {
		panic("cmath: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbs returns the largest element magnitude, used for exponential scaling.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// OneNorm returns the maximum absolute column sum.
func (m *Matrix) OneNorm() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += cmplx.Abs(m.Data[i*m.Cols+j])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum |a_ij|^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// Expm returns the matrix exponential exp(m) computed by scaling-and-squaring
// with a truncated Taylor series. The series order is chosen so the truncation
// error is far below the physical noise floors the simulators care about.
func Expm(m *Matrix) *Matrix {
	if !m.IsSquare() {
		panic("cmath: Expm of non-square matrix")
	}
	norm := m.OneNorm()
	// Scale so the scaled norm is <= 0.5, then square back up.
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := Scale(complex(1/math.Pow(2, float64(s)), 0), m)

	// Taylor series: with norm <= 0.5, 18 terms give ~1e-17 truncation error.
	result := Identity(m.Rows)
	term := Identity(m.Rows)
	tmp := NewMatrix(m.Rows, m.Cols)
	for k := 1; k <= 18; k++ {
		MulInto(tmp, term, scaled)
		term, tmp = tmp, term
		invK := complex(1/float64(k), 0)
		for i := range term.Data {
			term.Data[i] *= invK
		}
		for i := range result.Data {
			result.Data[i] += term.Data[i]
		}
	}
	// Square s times.
	sq := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < s; i++ {
		MulInto(sq, result, result)
		result, sq = sq, result
	}
	return result
}

// ApplyKron computes (a⊗b)·v without materializing the Kronecker product.
// len(v) must equal a.Cols*b.Cols; the result has length a.Rows*b.Rows.
// Each output element accumulates its column terms in the same ascending
// order as Kron(a, b).ApplyTo(v), so the result is bit-identical to the
// materialized product (zero rows of a are skipped, which only drops exact
// +0 contributions).
func ApplyKron(a, b *Matrix, v []complex128) []complex128 {
	out := make([]complex128, a.Rows*b.Rows)
	ApplyKronInto(out, a, b, v)
	return out
}

// ApplyKronInto is ApplyKron writing into dst, which must have length
// a.Rows*b.Rows and must not alias v.
func ApplyKronInto(dst []complex128, a, b *Matrix, v []complex128) {
	if len(v) != a.Cols*b.Cols {
		panic("cmath: ApplyKron input length mismatch")
	}
	if len(dst) != a.Rows*b.Rows {
		panic("cmath: ApplyKron output length mismatch")
	}
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k := 0; k < b.Rows; k++ {
			brow := b.Data[k*bc : (k+1)*bc]
			var s complex128
			for j, av := range arow {
				if av == 0 {
					continue
				}
				vseg := v[j*bc : (j+1)*bc]
				for l, bv := range brow {
					// (av*bv)*v — same product grouping as the
					// materialized Kron entry times v.
					s += av * bv * vseg[l]
				}
			}
			dst[i*b.Rows+k] = s
		}
	}
}

// ExpmWorkspace holds the scratch matrices Expm needs so repeated
// exponentials of same-sized matrices (time-stepped Hamiltonian evolution)
// allocate nothing after the first call. The zero value is ready to use.
type ExpmWorkspace struct {
	scaled, result, term, tmp *Matrix
}

func (w *ExpmWorkspace) ensure(n int) {
	if w.scaled == nil || w.scaled.Rows != n {
		w.scaled = NewMatrix(n, n)
		w.result = NewMatrix(n, n)
		w.term = NewMatrix(n, n)
		w.tmp = NewMatrix(n, n)
	}
}

// ExpmInto computes dst = exp(m) using the workspace's scratch buffers. The
// operation sequence replays Expm exactly, so the result is bit-identical to
// the allocating path. dst may alias m; it must not be a workspace buffer.
func (w *ExpmWorkspace) ExpmInto(dst, m *Matrix) {
	if !m.IsSquare() {
		panic("cmath: Expm of non-square matrix")
	}
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic("cmath: ExpmInto shape mismatch")
	}
	n := m.Rows
	w.ensure(n)

	norm := m.OneNorm()
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	inv := complex(1/math.Pow(2, float64(s)), 0)
	for i, v := range m.Data {
		w.scaled.Data[i] = inv * v
	}

	result, term, tmp := w.result, w.term, w.tmp
	setIdentity(result)
	setIdentity(term)
	for k := 1; k <= 18; k++ {
		MulInto(tmp, term, w.scaled)
		term, tmp = tmp, term
		invK := complex(1/float64(k), 0)
		for i := range term.Data {
			term.Data[i] *= invK
		}
		for i := range result.Data {
			result.Data[i] += term.Data[i]
		}
	}
	sq := tmp
	for i := 0; i < s; i++ {
		MulInto(sq, result, result)
		result, sq = sq, result
	}
	copy(dst.Data, result.Data)
}

func setIdentity(m *Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// ApplyTo computes m·v for a vector v.
func (m *Matrix) ApplyTo(v []complex128) []complex128 {
	return m.ApplyToInto(make([]complex128, m.Rows), v)
}

// ApplyToInto computes m·v into dst (len m.Rows) and returns dst, with the
// same accumulation order as ApplyTo. dst must not alias v.
func (m *Matrix) ApplyToInto(dst, v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic("cmath: ApplyTo length mismatch")
	}
	if len(dst) != m.Rows {
		panic("cmath: ApplyToInto destination length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return dst
}

// IsUnitary reports whether m†m ≈ I within tol (Frobenius norm of deviation).
func IsUnitary(m *Matrix, tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	p := Mul(Dagger(m), m)
	dev := Sub(p, Identity(m.Rows))
	return dev.FrobeniusNorm() < tol
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%+.4f%+.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func mustSameShape(a, b *Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("cmath: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
