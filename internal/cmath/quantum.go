package cmath

import (
	"math"
	"math/cmplx"
)

// Standard single-qubit operators in the computational basis.
func PauliX() *Matrix {
	return FromRows([][]complex128{{0, 1}, {1, 0}})
}

func PauliY() *Matrix {
	return FromRows([][]complex128{{0, -1i}, {1i, 0}})
}

func PauliZ() *Matrix {
	return FromRows([][]complex128{{1, 0}, {0, -1}})
}

// Hadamard returns the single-qubit Hadamard gate.
func Hadamard() *Matrix {
	s := complex(1/math.Sqrt2, 0)
	return FromRows([][]complex128{{s, s}, {s, -s}})
}

// Rx returns the rotation exp(-i θ X / 2).
func Rx(theta float64) *Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return FromRows([][]complex128{{c, s}, {s, c}})
}

// Ry returns the rotation exp(-i θ Y / 2).
func Ry(theta float64) *Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return FromRows([][]complex128{{c, -s}, {s, c}})
}

// Rz returns the rotation exp(-i θ Z / 2).
func Rz(theta float64) *Matrix {
	return FromRows([][]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	})
}

// CZ returns the two-qubit controlled-Z gate.
func CZ() *Matrix {
	m := Identity(4)
	m.Set(3, 3, -1)
	return m
}

// CNOT returns the two-qubit controlled-X gate (control = qubit 0).
func CNOT() *Matrix {
	m := Identity(4)
	m.Set(2, 2, 0)
	m.Set(3, 3, 0)
	m.Set(2, 3, 1)
	m.Set(3, 2, 1)
	return m
}

// Destroy returns the truncated annihilation operator on n levels.
func Destroy(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n-1; i++ {
		m.Set(i, i+1, complex(math.Sqrt(float64(i+1)), 0))
	}
	return m
}

// Create returns the truncated creation operator on n levels.
func Create(n int) *Matrix { return Dagger(Destroy(n)) }

// NumberOp returns the truncated number operator diag(0, 1, ..., n-1).
func NumberOp(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(float64(i), 0))
	}
	return m
}

// Projector returns |k><k| on an n-level system.
func Projector(n, k int) *Matrix {
	m := NewMatrix(n, n)
	m.Set(k, k, 1)
	return m
}

// EmbedQubit lifts a 2x2 qubit operator into the first two levels of an
// n-level system (identity on the leakage levels).
func EmbedQubit(u *Matrix, n int) *Matrix {
	if u.Rows != 2 || u.Cols != 2 {
		panic("cmath: EmbedQubit requires a 2x2 input")
	}
	m := Identity(n)
	m.Set(0, 0, u.At(0, 0))
	m.Set(0, 1, u.At(0, 1))
	m.Set(1, 0, u.At(1, 0))
	m.Set(1, 1, u.At(1, 1))
	return m
}

// QubitSubspace extracts the 2x2 computational-basis block of an n-level
// operator. For two coupled d-level systems use QubitSubspace2.
func QubitSubspace(u *Matrix) *Matrix {
	m := NewMatrix(2, 2)
	m.Set(0, 0, u.At(0, 0))
	m.Set(0, 1, u.At(0, 1))
	m.Set(1, 0, u.At(1, 0))
	m.Set(1, 1, u.At(1, 1))
	return m
}

// QubitSubspace2 extracts the 4x4 two-qubit computational block from an
// operator on two d-level transmons ordered as |q1 q2> with q-index = i*d+j.
func QubitSubspace2(u *Matrix, d int) *Matrix {
	idx := []int{0, 1, d, d + 1} // |00>, |01>, |10>, |11>
	m := NewMatrix(4, 4)
	for a, ia := range idx {
		for b, ib := range idx {
			m.Set(a, b, u.At(ia, ib))
		}
	}
	return m
}

// AverageGateFidelity returns the average gate fidelity between the ideal and
// actual unitaries on a Hilbert space of dimension d:
//
//	F_avg = (|Tr(U†V)|² + d) / (d(d+1))
//
// When the actual operator is sub-unitary (leakage out of the computational
// subspace), the same formula penalises the lost norm, which is exactly the
// behaviour the gate-error models need.
func AverageGateFidelity(ideal, actual *Matrix) float64 {
	if ideal.Rows != actual.Rows || ideal.Cols != actual.Cols || !ideal.IsSquare() {
		panic("cmath: AverageGateFidelity shape mismatch")
	}
	d := float64(ideal.Rows)
	tr := Trace(Mul(Dagger(ideal), actual))
	return (cmplx.Abs(tr)*cmplx.Abs(tr) + d) / (d * (d + 1))
}

// GateError returns 1 - AverageGateFidelity, clamped to [0, 1].
func GateError(ideal, actual *Matrix) float64 {
	e := 1 - AverageGateFidelity(ideal, actual)
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// GlobalPhaseAlign returns actual scaled by a global phase that maximises
// overlap with ideal; useful when comparing unitaries defined up to phase.
func GlobalPhaseAlign(ideal, actual *Matrix) *Matrix {
	tr := Trace(Mul(Dagger(actual), ideal))
	if cmplx.Abs(tr) == 0 {
		return actual.Clone()
	}
	phase := tr / complex(cmplx.Abs(tr), 0)
	return Scale(phase, actual)
}

// VecNorm returns the Euclidean norm of a state vector.
func VecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// NormalizeVec scales v to unit norm in place and returns it.
func NormalizeVec(v []complex128) []complex128 {
	n := VecNorm(v)
	if n == 0 {
		return v
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// BasisVec returns the n-dimensional basis vector |k>.
func BasisVec(n, k int) []complex128 {
	v := make([]complex128, n)
	v[k] = 1
	return v
}

// Overlap returns <a|b>.
func Overlap(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("cmath: Overlap length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}
