package cmath

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// This file pins the bit-identity contract of the optimized kernels: the
// cache-blocked MulInto, the non-materializing ApplyKron, and the
// scratch-reusing ExpmWorkspace must produce results exactly == to the
// naive reference implementations kept below. Every comparison is ==, not
// approximate: the optimizations are only allowed to change memory traffic,
// never a single floating-point operation's order per output element.

// mulRef is the textbook ijk matrix product: each output element sums its
// k-terms in ascending order into a local accumulator.
func mulRef(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s complex128
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// applyKronRef materializes the Kronecker product and applies it.
func applyKronRef(a, b *Matrix, v []complex128) []complex128 {
	return Kron(a, b).ApplyTo(v)
}

func randMatrixRC(rng *rand.Rand, rows, cols int, sparse bool) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if sparse && rng.Intn(3) == 0 {
			continue // leave exact zeros to exercise the skip paths
		}
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func eqMatrix(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, wv := range want.Data {
		if got.Data[i] != wv {
			t.Fatalf("%s: element %d = %v, want %v (not bit-identical)", name, i, got.Data[i], wv)
		}
	}
}

func eqVec(t *testing.T, name string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
	}
	for i, wv := range want {
		if got[i] != wv {
			t.Fatalf("%s: element %d = %v, want %v (not bit-identical)", name, i, got[i], wv)
		}
	}
}

// mulShapes spans size-1 edges, odd sizes, non-square shapes, and sizes
// straddling the mulBlockJ tile boundary (63/64/65, 130) so every branch of
// the blocked kernel is exercised.
var mulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 1, 7},
	{7, 1, 1},
	{1, 9, 1},
	{2, 2, 2},
	{3, 5, 4},
	{8, 8, 8},
	{5, 17, 3},
	{16, 16, 16},
	{10, 4, 63},
	{9, 3, 64},
	{7, 6, 65},
	{4, 70, 130},
	{33, 33, 33},
}

func TestMulIntoMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, sh := range mulShapes {
		for trial := 0; trial < 4; trial++ {
			sparse := trial%2 == 1
			a := randMatrixRC(rng, sh.m, sh.k, sparse)
			b := randMatrixRC(rng, sh.k, sh.n, sparse)
			want := mulRef(a, b)
			got := NewMatrix(sh.m, sh.n)
			// Pre-poison dst to prove MulInto fully overwrites it.
			for i := range got.Data {
				got.Data[i] = complex(1e300, -1e300)
			}
			MulInto(got, a, b)
			eqMatrix(t, "MulInto", got, want)
			eqMatrix(t, "Mul", Mul(a, b), want)
		}
	}
}

func TestMulIntoShapePanics(t *testing.T) {
	a, b := NewMatrix(2, 3), NewMatrix(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MulInto accepted mismatched inner dimensions")
		}
	}()
	MulInto(NewMatrix(2, 2), a, b)
}

func TestApplyKronMatchesMaterializedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	shapes := []struct{ ar, ac, br, bc int }{
		{1, 1, 1, 1},
		{1, 1, 4, 4},
		{3, 3, 1, 1},
		{2, 2, 2, 2},
		{2, 3, 4, 2}, // non-square both factors
		{1, 5, 3, 1}, // row vector ⊗ column vector
		{5, 1, 1, 6},
		{4, 4, 3, 3},
		{3, 2, 5, 5},
		{8, 8, 2, 2},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 4; trial++ {
			sparse := trial%2 == 1
			a := randMatrixRC(rng, sh.ar, sh.ac, sparse)
			b := randMatrixRC(rng, sh.br, sh.bc, sparse)
			v := randVec(rng, sh.ac*sh.bc)
			want := applyKronRef(a, b, v)
			eqVec(t, "ApplyKron", ApplyKron(a, b, v), want)
			dst := make([]complex128, sh.ar*sh.br)
			ApplyKronInto(dst, a, b, v)
			eqVec(t, "ApplyKronInto", dst, want)
		}
	}
}

func TestApplyKronLengthPanics(t *testing.T) {
	a, b := NewMatrix(2, 2), NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyKron accepted a wrong-length vector")
		}
	}()
	ApplyKron(a, b, make([]complex128, 3))
}

func TestExpmWorkspaceMatchesExpm(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	var w ExpmWorkspace
	for _, n := range []int{1, 2, 3, 4, 6, 9, 15} {
		for trial := 0; trial < 3; trial++ {
			// Anti-Hermitian generators (-i·H·t shape) like the evolution
			// code feeds Expm, at norms on both sides of the scaling cutoff.
			h := randMatrixRC(rng, n, n, false)
			gen := Scale(complex(0, -rng.Float64()*3), Add(h, Dagger(h)))
			want := Expm(gen)
			got := NewMatrix(n, n)
			got.Data[0] = complex(1e300, 0) // poison
			w.ExpmInto(got, gen)
			eqMatrix(t, "ExpmInto", got, want)
			// Aliased dst == m must also work: the input is fully consumed
			// before dst is written.
			alias := gen.Clone()
			w.ExpmInto(alias, alias)
			eqMatrix(t, "ExpmInto-aliased", alias, want)
		}
	}
}

func TestDaggerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, sh := range []struct{ r, c int }{{1, 1}, {1, 5}, {4, 1}, {3, 3}, {5, 7}} {
		m := randMatrixRC(rng, sh.r, sh.c, true)
		eqMatrix(t, "Dagger∘Dagger", Dagger(Dagger(m)), m)
		// (a⊗b)† == a†⊗b† bit-exactly: conjugation only negates imaginary
		// parts, which commutes with the product av*bv at the bit level.
		a := randMatrixRC(rng, 2, 3, false)
		eqMatrix(t, "Dagger-of-Kron", Dagger(Kron(a, m)), Kron(Dagger(a), Dagger(m)))
	}
}

func TestTraceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for _, n := range []int{1, 2, 5, 9} {
		m := randMatrixRC(rng, n, n, true)
		// tr(m†) == conj(tr(m)) exactly: conjugation distributes over the
		// sum without reordering it.
		if got, want := Trace(Dagger(m)), cmplx.Conj(Trace(m)); got != want {
			t.Fatalf("Trace(Dagger): %v, want %v", got, want)
		}
		if got := Trace(Identity(n)); got != complex(float64(n), 0) {
			t.Fatalf("Trace(I_%d) = %v", n, got)
		}
	}
}
