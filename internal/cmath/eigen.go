package cmath

import (
	"math"
	"math/cmplx"
)

// EigenH computes the eigenvalues and eigenvectors of a Hermitian matrix by
// the cyclic complex Jacobi method. Eigenvalues are returned in ascending
// order; column k of the returned matrix is the corresponding eigenvector.
// The spectral analyses (avoided crossings, dressed states) of the
// Hamiltonian models use this.
func EigenH(h *Matrix) ([]float64, *Matrix) {
	if !h.IsSquare() {
		panic("cmath: EigenH requires a square matrix")
	}
	n := h.Rows
	a := h.Clone()
	v := Identity(n)

	offdiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					s += cmplx.Abs(a.At(i, j)) * cmplx.Abs(a.At(i, j))
				}
			}
		}
		return s
	}

	for sweep := 0; sweep < 100 && offdiag() > 1e-24; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if cmplx.Abs(apq) < 1e-18 {
					continue
				}
				app := real(a.At(p, p))
				aqq := real(a.At(q, q))
				// Complex Jacobi rotation: phase out apq, then rotate.
				phase := apq / complex(cmplx.Abs(apq), 0)
				theta := 0.5 * math.Atan2(2*cmplx.Abs(apq), aqq-app)
				c := complex(math.Cos(theta), 0)
				s := complex(math.Sin(theta), 0) * phase

				// Apply the rotation G on the right of V and G† A G on A:
				// columns p and q mix.
				for i := 0; i < n; i++ {
					aip := a.At(i, p)
					aiq := a.At(i, q)
					a.Set(i, p, aip*c-aiq*cmplx.Conj(s))
					a.Set(i, q, aip*s+aiq*c)
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, vip*c-viq*cmplx.Conj(s))
					v.Set(i, q, vip*s+viq*c)
				}
				for j := 0; j < n; j++ {
					apj := a.At(p, j)
					aqj := a.At(q, j)
					a.Set(p, j, c*apj-s*aqj)
					a.Set(q, j, cmplx.Conj(s)*apj+c*aqj)
				}
			}
		}
	}

	// Extract and sort.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{real(a.At(i, i)), i}
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pairs[j].val < pairs[j-1].val; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	vals := make([]float64, n)
	vecs := NewMatrix(n, n)
	for k, pr := range pairs {
		vals[k] = pr.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, pr.idx))
		}
	}
	return vals, vecs
}
