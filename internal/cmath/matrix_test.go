package cmath

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-10

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func cApprox(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

func matApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return Sub(a, b).FrobeniusNorm() <= tol
}

func randMatrix(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 9} {
		m := randMatrix(r, n)
		if !matApprox(Mul(Identity(n), m), m, eps) {
			t.Errorf("I*m != m for n=%d", n)
		}
		if !matApprox(Mul(m, Identity(n)), m, eps) {
			t.Errorf("m*I != m for n=%d", n)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b, c := randMatrix(r, 4), randMatrix(r, 4), randMatrix(r, 4)
	lhs := Mul(Mul(a, b), c)
	rhs := Mul(a, Mul(b, c))
	if !matApprox(lhs, rhs, 1e-9) {
		t.Fatal("(ab)c != a(bc)")
	}
}

func TestDaggerProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randMatrix(r, 3), randMatrix(r, 3)
	// (AB)† = B†A†
	if !matApprox(Dagger(Mul(a, b)), Mul(Dagger(b), Dagger(a)), 1e-9) {
		t.Fatal("(AB)† != B†A†")
	}
	// (A†)† = A
	if !matApprox(Dagger(Dagger(a)), a, eps) {
		t.Fatal("double dagger is not identity")
	}
}

func TestKronDimensionsAndTrace(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a, b := randMatrix(r, 2), randMatrix(r, 3)
	k := Kron(a, b)
	if k.Rows != 6 || k.Cols != 6 {
		t.Fatalf("kron shape = %dx%d, want 6x6", k.Rows, k.Cols)
	}
	// Tr(A⊗B) = Tr(A)Tr(B)
	if !cApprox(Trace(k), Trace(a)*Trace(b), 1e-9) {
		t.Fatal("Tr(A⊗B) != Tr(A)Tr(B)")
	}
}

func TestKronMixedProduct(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, b := randMatrix(r, 2), randMatrix(r, 2)
	c, d := randMatrix(r, 2), randMatrix(r, 2)
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !matApprox(lhs, rhs, 1e-8) {
		t.Fatal("Kron mixed-product identity failed")
	}
}

func TestExpmZeroIsIdentity(t *testing.T) {
	if !matApprox(Expm(NewMatrix(3, 3)), Identity(3), eps) {
		t.Fatal("exp(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, complex(0, 1.3))
	m.Set(1, 1, complex(-0.4, 0.2))
	e := Expm(m)
	if !cApprox(e.At(0, 0), cmplx.Exp(complex(0, 1.3)), eps) {
		t.Fatal("diagonal exp mismatch at (0,0)")
	}
	if !cApprox(e.At(1, 1), cmplx.Exp(complex(-0.4, 0.2)), eps) {
		t.Fatal("diagonal exp mismatch at (1,1)")
	}
	if !cApprox(e.At(0, 1), 0, eps) {
		t.Fatal("off-diagonal should be zero")
	}
}

func TestExpmPauliRotation(t *testing.T) {
	// exp(-i θ X / 2) must match the closed-form Rx(θ).
	for _, theta := range []float64{0.1, math.Pi / 2, math.Pi, 2.7, -1.1} {
		h := Scale(complex(0, -theta/2), PauliX())
		if !matApprox(Expm(h), Rx(theta), 1e-9) {
			t.Errorf("Expm rotation mismatch for θ=%v", theta)
		}
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Large-norm Hermitian generator: exp(-iH) must stay unitary.
	r := rand.New(rand.NewSource(6))
	a := randMatrix(r, 4)
	h := Scale(0.5, Add(a, Dagger(a))) // Hermitian
	h = Scale(50, h)                   // large norm forces scaling&squaring
	u := Expm(Scale(complex(0, -1), h))
	if !IsUnitary(u, 1e-7) {
		t.Fatal("exp(-iH) not unitary for large-norm H")
	}
}

func TestExpmAdditiveCommuting(t *testing.T) {
	// exp(A+B) = exp(A)exp(B) when [A,B]=0 (use polynomials of one matrix).
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 3)
	a = Scale(0.3, a)
	b := Mul(a, a) // commutes with a
	lhs := Expm(Add(a, b))
	rhs := Mul(Expm(a), Expm(b))
	if !matApprox(lhs, rhs, 1e-8) {
		t.Fatal("exp(A+B) != exp(A)exp(B) for commuting A,B")
	}
}

func TestPauliAlgebra(t *testing.T) {
	x, y, z := PauliX(), PauliY(), PauliZ()
	// X² = Y² = Z² = I
	for name, p := range map[string]*Matrix{"X": x, "Y": y, "Z": z} {
		if !matApprox(Mul(p, p), Identity(2), eps) {
			t.Errorf("%s² != I", name)
		}
	}
	// XY = iZ
	if !matApprox(Mul(x, y), Scale(1i, z), eps) {
		t.Fatal("XY != iZ")
	}
	// Hadamard: HXH = Z
	h := Hadamard()
	if !matApprox(Mul(Mul(h, x), h), z, eps) {
		t.Fatal("HXH != Z")
	}
}

func TestRotationComposition(t *testing.T) {
	// Rz(a)Rz(b) = Rz(a+b)
	if !matApprox(Mul(Rz(0.7), Rz(0.5)), Rz(1.2), eps) {
		t.Fatal("Rz composition failed")
	}
	// Ry(π) maps |0> to |1> up to phase.
	v := Ry(math.Pi).ApplyTo(BasisVec(2, 0))
	if !approx(cmplx.Abs(v[1]), 1, eps) {
		t.Fatal("Ry(π)|0> != |1>")
	}
}

func TestGateErrorIdenticalIsZero(t *testing.T) {
	for _, u := range []*Matrix{Rx(0.3), Ry(1.1), Rz(2.2), Hadamard(), CZ()} {
		if e := GateError(u, u); e > 1e-12 {
			t.Errorf("GateError(U,U) = %g, want 0", e)
		}
	}
}

func TestGateErrorOrthogonal(t *testing.T) {
	// X vs I on a qubit: |Tr(X†I)|² = 0 → F = 2/6 = 1/3, error = 2/3.
	e := GateError(PauliX(), Identity(2))
	if !approx(e, 2.0/3.0, eps) {
		t.Fatalf("GateError(X, I) = %v, want 2/3", e)
	}
}

func TestGateErrorPhaseInvariance(t *testing.T) {
	u := Ry(0.8)
	v := Scale(cmplx.Exp(0.31i), u)
	if e := GateError(u, v); e > 1e-12 {
		t.Fatalf("gate error should be global-phase invariant, got %g", e)
	}
}

func TestGlobalPhaseAlign(t *testing.T) {
	u := Hadamard()
	v := Scale(cmplx.Exp(1.2i), u)
	aligned := GlobalPhaseAlign(u, v)
	if !matApprox(aligned, u, 1e-9) {
		t.Fatal("GlobalPhaseAlign failed to remove phase")
	}
}

func TestDestroyCreateCommutator(t *testing.T) {
	// [a, a†] = I on the non-truncated block.
	n := 6
	a, ad := Destroy(n), Create(n)
	comm := Sub(Mul(a, ad), Mul(ad, a))
	for i := 0; i < n-1; i++ {
		if !cApprox(comm.At(i, i), 1, eps) {
			t.Fatalf("[a,a†] diagonal %d = %v, want 1", i, comm.At(i, i))
		}
	}
	// Number operator = a†a.
	if !matApprox(Mul(ad, a), NumberOp(n), eps) {
		t.Fatal("a†a != N")
	}
}

func TestEmbedAndExtractQubit(t *testing.T) {
	u := Ry(0.9)
	e := EmbedQubit(u, 3)
	if !matApprox(QubitSubspace(e), u, eps) {
		t.Fatal("embed/extract roundtrip failed")
	}
	if !cApprox(e.At(2, 2), 1, eps) {
		t.Fatal("leakage level should be identity")
	}
}

func TestQubitSubspace2(t *testing.T) {
	// Build CZ on two 3-level systems and extract the 4x4 block.
	d := 3
	u := Identity(d * d)
	u.Set(1*d+1, 1*d+1, -1) // |11> phase flip
	got := QubitSubspace2(u, d)
	if !matApprox(got, CZ(), eps) {
		t.Fatal("QubitSubspace2 failed to extract CZ")
	}
}

func TestVectorHelpers(t *testing.T) {
	v := []complex128{3, 4i}
	if !approx(VecNorm(v), 5, eps) {
		t.Fatal("VecNorm failed")
	}
	NormalizeVec(v)
	if !approx(VecNorm(v), 1, eps) {
		t.Fatal("NormalizeVec failed")
	}
	if !cApprox(Overlap(BasisVec(4, 2), BasisVec(4, 2)), 1, eps) {
		t.Fatal("Overlap of identical basis vectors should be 1")
	}
	if !cApprox(Overlap(BasisVec(4, 1), BasisVec(4, 2)), 0, eps) {
		t.Fatal("Overlap of distinct basis vectors should be 0")
	}
}

// Property: unitarity is preserved by products of generated rotations.
func TestQuickUnitaryProducts(t *testing.T) {
	f := func(a, b, c float64) bool {
		u := Mul(Mul(Rx(math.Mod(a, 10)), Ry(math.Mod(b, 10))), Rz(math.Mod(c, 10)))
		return IsUnitary(u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GateError is symmetric and within [0,1] for random rotations.
func TestQuickGateErrorBounds(t *testing.T) {
	f := func(a, b float64) bool {
		u, v := Ry(math.Mod(a, 10)), Ry(math.Mod(b, 10))
		e1, e2 := GateError(u, v), GateError(v, u)
		return e1 >= 0 && e1 <= 1 && math.Abs(e1-e2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Expm of anti-Hermitian matrices is unitary.
func TestQuickExpmUnitary(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		a := randMatrix(r, 3)
		h := Scale(0.5, Add(a, Dagger(a)))
		u := Expm(Scale(complex(0, -1), h))
		return IsUnitary(u, 1e-8)
	}
	for i := 0; i < 50; i++ {
		if !f() {
			t.Fatal("Expm(-iH) not unitary")
		}
	}
}

func TestTraceLinear(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a, b := randMatrix(r, 4), randMatrix(r, 4)
	if !cApprox(Trace(Add(a, b)), Trace(a)+Trace(b), 1e-9) {
		t.Fatal("trace not linear")
	}
	// Cyclic: Tr(AB) = Tr(BA)
	if !cApprox(Trace(Mul(a, b)), Trace(Mul(b, a)), 1e-9) {
		t.Fatal("trace not cyclic")
	}
}

func TestCNOTAndCZRelation(t *testing.T) {
	// CNOT = (I⊗H) CZ (I⊗H)
	ih := Kron(Identity(2), Hadamard())
	got := Mul(Mul(ih, CZ()), ih)
	if !matApprox(got, CNOT(), eps) {
		t.Fatal("CNOT != (I⊗H)CZ(I⊗H)")
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestAddInPlaceAccumulates(t *testing.T) {
	a := Identity(2)
	AddInPlace(a, 2, PauliZ())
	if !cApprox(a.At(0, 0), 3, eps) || !cApprox(a.At(1, 1), -1, eps) {
		t.Fatalf("AddInPlace wrong: %v", a)
	}
}

func TestMaxAbsAndString(t *testing.T) {
	m := FromRows([][]complex128{{1, -3}, {2i, 0.5}})
	if !approx(m.MaxAbs(), 3, eps) {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("String should render")
	}
}

func TestProjector(t *testing.T) {
	p := Projector(3, 1)
	if !cApprox(Trace(p), 1, eps) || !cApprox(p.At(1, 1), 1, eps) || !cApprox(p.At(0, 0), 0, eps) {
		t.Fatalf("projector wrong: %v", p)
	}
	// Idempotent.
	if !matApprox(Mul(p, p), p, eps) {
		t.Fatal("projector not idempotent")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestAddShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(NewMatrix(2, 2), NewMatrix(3, 3))
}
