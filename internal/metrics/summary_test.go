package metrics

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSummarySnapshotsEveryInstrumentKind(t *testing.T) {
	r := New()
	r.Counter("c_total", "plain counter").Add(3)
	r.Gauge("g", "plain gauge").Set(7)
	r.CounterVec("cv_total", "labelled counter", "kind").With("mc").Add(2)
	r.GaugeFunc("gf", "callback gauge", func() float64 { return 11 })
	r.CounterFunc("cf_total", "callback counter", func() float64 { return 13 })
	r.GaugeFuncVec("gfv", "callback gauge vec", "k", func() map[string]float64 {
		return map[string]float64{"a": 1, "b": 2}
	})
	r.CounterFuncVec("cfv_total", "callback counter vec", "k", func() map[string]float64 {
		return map[string]float64{"x": 5}
	})
	r.CounterFuncN("cfn_total", "multi-label callback counter", []string{"side", "fault"},
		func() []Sample { return []Sample{{Values: []string{"server", "drop"}, Value: 4}} })
	h := r.Histogram("h_seconds", "histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	r.HistogramFunc("hf_seconds", "callback histogram", func() HistogramSummary {
		return HistogramSummary{Bounds: []float64{1}, Buckets: []uint64{1}, Sum: 0.25, Count: 1}
	})

	s := r.Summary()
	wantCounters := map[string]float64{
		"c_total":                               3,
		`cv_total{kind="mc"}`:                   2,
		"cf_total":                              13,
		`cfv_total{k="x"}`:                      5,
		`cfn_total{side="server",fault="drop"}`: 4,
	}
	for k, want := range wantCounters {
		if got := s.Counters[k]; got != want {
			t.Errorf("Counters[%s] = %v, want %v (have %v)", k, got, want, s.Counters)
		}
	}
	if s.Gauges["g"] != 7 || s.Gauges["gf"] != 11 {
		t.Errorf("gauges: %v", s.Gauges)
	}
	if s.Gauges[`gfv{k="a"}`] != 1 || s.Gauges[`gfv{k="b"}`] != 2 {
		t.Errorf("gauge func vec: %v", s.Gauges)
	}
	hs := s.Histograms["h_seconds"]
	if hs.Count != 2 || hs.Sum != 2 || hs.Buckets[0] != 1 || hs.Buckets[1] != 2 {
		t.Errorf("histogram summary: %+v", hs)
	}
	if s.Histograms["hf_seconds"].Count != 1 {
		t.Errorf("histogram func summary: %+v", s.Histograms["hf_seconds"])
	}

	// Must round-trip through JSON (the federation wire format).
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["c_total"] != 3 || back.Histograms["h_seconds"].Count != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestSummaryCounterSumAndHistogramMerge(t *testing.T) {
	s := &Summary{
		Counters: map[string]float64{
			"x_total":            1,
			`x_total{k="a"}`:     2,
			`x_total_sub{k="a"}`: 100, // different family, must not match
		},
		Histograms: map[string]HistogramSummary{
			`h{w="1"}`: {Bounds: []float64{1, 2}, Buckets: []uint64{1, 2}, Sum: 1, Count: 2},
			`h{w="2"}`: {Bounds: []float64{1, 2}, Buckets: []uint64{0, 1}, Sum: 2, Count: 1},
		},
	}
	if got := s.CounterSum("x_total"); got != 3 {
		t.Fatalf("CounterSum = %v, want 3", got)
	}
	m := s.HistogramMerge("h")
	if m.Count != 3 || m.Sum != 3 || m.Buckets[0] != 1 || m.Buckets[1] != 3 {
		t.Fatalf("HistogramMerge = %+v", m)
	}
}

func TestHistogramSummaryQuantile(t *testing.T) {
	// 10 observations spread: 5 in (0,1], 4 in (1,2], 1 beyond 2.
	s := HistogramSummary{Bounds: []float64{1, 2}, Buckets: []uint64{5, 9}, Count: 10, Sum: 12}
	if q := s.Quantile(0.5); q != 1.0 {
		t.Fatalf("p50 = %v, want 1.0", q)
	}
	if q := s.Quantile(0.9); math.Abs(q-2.0) > 1e-9 {
		t.Fatalf("p90 = %v, want 2.0", q)
	}
	if q := s.Quantile(0.99); q != 2 { // +Inf bucket clamps to last bound
		t.Fatalf("p99 = %v, want 2", q)
	}
	if q := (HistogramSummary{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestParseSeries(t *testing.T) {
	name, labels, err := ParseSeries(`qisimd_chaos_injected_total{side="client",fault="a\"b"}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if name != "qisimd_chaos_injected_total" || labels["side"] != "client" || labels["fault"] != `a"b` {
		t.Fatalf("got %q %v", name, labels)
	}
	if n, l, err := ParseSeries("plain_total"); err != nil || n != "plain_total" || l != nil {
		t.Fatalf("plain: %q %v %v", n, l, err)
	}
	for _, bad := range []string{`x{`, `x{k}`, `x{k="v`, `x{k=v}`} {
		if _, _, err := ParseSeries(bad); err == nil {
			t.Errorf("ParseSeries(%q) should fail", bad)
		}
	}
}

func TestGaugeVec(t *testing.T) {
	r := New()
	gv := r.GaugeVec("build_info", "build metadata", "version", "vcs")
	gv.With("v1.2", "abc").Set(1)
	if g := gv.With("v1.2", "abc"); g.Value() != 1 {
		t.Fatalf("same labels must return same gauge")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `build_info{version="v1.2",vcs="abc"} 1`) {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestCounterFuncNRendersSorted(t *testing.T) {
	r := New()
	r.CounterFuncN("inj_total", "injections", []string{"side", "fault"}, func() []Sample {
		return []Sample{
			{Values: []string{"server", "drop"}, Value: 2},
			{Values: []string{"client", "reset"}, Value: 1},
		}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ci := strings.Index(out, `inj_total{side="client",fault="reset"} 1`)
	si := strings.Index(out, `inj_total{side="server",fault="drop"} 2`)
	if ci < 0 || si < 0 || ci > si {
		t.Fatalf("series missing or unsorted:\n%s", out)
	}
}

func TestREDMiddleware(t *testing.T) {
	r := New()
	red := NewRED(r)

	ok := red.Wrap("/v1/jobs/{id}", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	implicit := red.Wrap("/healthz", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	boom := red.Wrap("/v1/dist/claim", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/abc", nil))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	implicit.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate through RED")
			}
		}()
		boom.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/dist/claim", nil))
	}()

	s := r.Summary()
	if got := s.Counters[`qisimd_http_requests_total{route="/v1/jobs/{id}",method="GET",code="202"}`]; got != 3 {
		t.Fatalf("202 count = %v, want 3 (%v)", got, s.Counters)
	}
	if got := s.Counters[`qisimd_http_requests_total{route="/healthz",method="GET",code="200"}`]; got != 1 {
		t.Fatalf("implicit 200 count = %v, want 1", got)
	}
	if got := s.Counters[`qisimd_http_requests_total{route="/v1/dist/claim",method="POST",code="aborted"}`]; got != 1 {
		t.Fatalf("aborted count = %v, want 1", got)
	}
	if hs := s.Histograms[`qisimd_http_request_seconds{route="/v1/jobs/{id}"}`]; hs.Count != 3 {
		t.Fatalf("latency count = %d, want 3", hs.Count)
	}
	if hs := s.Histograms[`qisimd_http_request_seconds{route="/v1/dist/claim"}`]; hs.Count != 1 {
		t.Fatalf("aborted request must still record latency")
	}
}

func TestREDStatusWriterFlushAndUnwrap(t *testing.T) {
	r := New()
	red := NewRED(r)
	flushed := false
	h := red.Wrap("/v1/jobs/{id}/events", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
			flushed = true
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j/events", nil))
	if !flushed {
		t.Fatal("statusWriter must satisfy http.Flusher for SSE")
	}
	if !rec.Flushed {
		t.Fatal("Flush must forward to the underlying writer")
	}
}
