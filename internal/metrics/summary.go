package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the federation half of the package: Summary snapshots a
// whole registry into a compact JSON-serialisable form that workers ship to
// the coordinator on lease renewals and unit reports, and the coordinator
// folds back into qisimd_fleet_* series. Keys are full series identities in
// exposition syntax — `name` or `name{label="value",...}` — so a summary
// round-trips losslessly into per-worker labelled series.

// HistogramSummary is a point-in-time copy of a cumulative histogram.
// Buckets are cumulative counts per corresponding Bounds entry (the +Inf
// bucket is Count).
type HistogramSummary struct {
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) with the same linear
// interpolation Prometheus' histogram_quantile uses. Returns 0 for an empty
// histogram; observations past the last finite bound clamp to that bound.
func (s HistogramSummary) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, ub := range s.Bounds {
		var cum uint64
		if i < len(s.Buckets) {
			cum = s.Buckets[i]
		}
		if float64(cum) >= rank {
			lower, prev := 0.0, uint64(0)
			if i > 0 {
				lower = s.Bounds[i-1]
				prev = s.Buckets[i-1]
			}
			inBucket := cum - prev
			if inBucket == 0 {
				return ub
			}
			return lower + (ub-lower)*(rank-float64(prev))/float64(inBucket)
		}
	}
	// Rank falls in the +Inf bucket: clamp to the last finite bound.
	return s.Bounds[len(s.Bounds)-1]
}

// Merge folds o into s. Matching bucket layouts add bucket-wise; mismatched
// layouts (or an empty receiver) degrade gracefully: Sum and Count still
// accumulate, and the receiver adopts o's layout when it has none.
func (s *HistogramSummary) Merge(o HistogramSummary) {
	if len(s.Bounds) == 0 {
		s.Bounds = append([]float64(nil), o.Bounds...)
		s.Buckets = append([]uint64(nil), o.Buckets...)
	} else if len(s.Bounds) == len(o.Bounds) {
		for i := range s.Buckets {
			if i < len(o.Buckets) {
				s.Buckets[i] += o.Buckets[i]
			}
		}
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Summary is a snapshot of every series in a registry, keyed by series
// identity (`name{labels}`). Callback instruments are sampled at snapshot
// time, so a worker's summary reflects live state the same way a scrape
// would.
type Summary struct {
	Counters   map[string]float64          `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Summary snapshots the registry.
func (r *Registry) Summary() Summary {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	s := Summary{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	for _, f := range fams {
		f.mu.Lock()
		for sig, rd := range f.series {
			key := f.name + sig
			switch v := rd.(type) {
			case *Counter:
				s.Counters[key] = v.Value()
			case *Gauge:
				s.Gauges[key] = v.Value()
			case *Histogram:
				s.Histograms[key] = v.Summary()
			case histFuncRenderer:
				s.Histograms[key] = v()
			case funcRenderer:
				if f.typ == "counter" {
					s.Counters[key] = v()
				} else {
					s.Gauges[key] = v()
				}
			case funcVecRenderer:
				for k, val := range v.fn() {
					s.scalar(f.typ)[f.name+mergeLabels(sig, v.label, k)] = val
				}
			case sampleFuncRenderer:
				for _, smp := range v.fn() {
					s.scalar(f.typ)[f.name+renderLabels(v.labels, smp.Values)] = smp.Value
				}
			}
		}
		f.mu.Unlock()
	}
	return s
}

func (s *Summary) scalar(typ string) map[string]float64 {
	if typ == "counter" {
		return s.Counters
	}
	return s.Gauges
}

// CounterSum sums every counter series of the named family (the exact
// unlabelled series plus all labelled ones).
func (s *Summary) CounterSum(name string) float64 {
	if s == nil {
		return 0
	}
	var sum float64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// HistogramMerge folds every histogram series of the named family into one.
func (s *Summary) HistogramMerge(name string) HistogramSummary {
	var out HistogramSummary
	if s == nil {
		return out
	}
	for k, v := range s.Histograms {
		if k == name || strings.HasPrefix(k, name+"{") {
			out.Merge(v)
		}
	}
	return out
}

// ParseSeries splits a series identity into its family name and label map.
// It accepts exactly what renderLabels/mergeLabels produce (Go %q escaping,
// which is a superset of the Prometheus label escapes).
func ParseSeries(series string) (name string, labels map[string]string, err error) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil, nil
	}
	if !strings.HasSuffix(series, "}") {
		return "", nil, fmt.Errorf("metrics: malformed series %q", series)
	}
	name = series[:i]
	labels = map[string]string{}
	rest := series[i+1 : len(series)-1]
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, fmt.Errorf("metrics: malformed labels in %q", series)
		}
		key := rest[:eq]
		// Scan the quoted value honouring backslash escapes.
		j := eq + 2
		for j < len(rest) && rest[j] != '"' {
			if rest[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(rest) {
			return "", nil, fmt.Errorf("metrics: unterminated label value in %q", series)
		}
		val, uerr := strconv.Unquote(rest[eq+1 : j+1])
		if uerr != nil {
			return "", nil, fmt.Errorf("metrics: bad label value in %q: %v", series, uerr)
		}
		labels[key] = val
		rest = rest[j+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return name, labels, nil
}
