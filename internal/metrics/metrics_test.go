package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusFormat pins the exposition format: HELP/TYPE headers,
// sorted families, sorted label series, integer rendering.
func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	c := r.Counter("zz_last_total", "renders last")
	c.Add(3)
	g := r.Gauge("aa_first", "renders first")
	g.Set(2.5)
	cv := r.CounterVec("jobs_total", "jobs by kind", "kind", "state")
	cv.With("surface.mc", "done").Inc()
	cv.With("pauli.mc", "failed").Add(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP aa_first renders first",
		"# TYPE aa_first gauge",
		"aa_first 2.5",
		"# TYPE jobs_total counter",
		`jobs_total{kind="pauli.mc",state="failed"} 2`,
		`jobs_total{kind="surface.mc",state="done"} 1`,
		"# TYPE zz_last_total counter",
		"zz_last_total 3",
	}
	idx := -1
	for _, w := range want {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
		if i < idx {
			t.Fatalf("output line %q out of order:\n%s", w, out)
		}
		idx = i
	}
}

// TestHistogramCumulativeBuckets verifies the cumulative-bucket contract:
// each le bucket counts all samples at or below its bound, +Inf counts all.
func TestHistogramCumulativeBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	// Exact binary fractions so the rendered sum is reproducible.
	for _, v := range []float64{0.0625, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 55.5625",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("histogram output missing %q:\n%s", w, out)
		}
	}
}

// TestHistogramVecSharesBuckets: labelled histograms render per-series with
// the shared bucket layout and the le label merged into the signature.
func TestHistogramVecSharesBuckets(t *testing.T) {
	r := New()
	hv := r.HistogramVec("job_seconds", "job latency", []float64{1}, "kind")
	hv.With("sweep").Observe(0.5)
	hv.With("mc").Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`job_seconds_bucket{kind="mc",le="1"} 0`,
		`job_seconds_bucket{kind="mc",le="+Inf"} 1`,
		`job_seconds_bucket{kind="sweep",le="1"} 1`,
		`job_seconds_count{kind="sweep"} 1`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("histogram vec output missing %q:\n%s", w, out)
		}
	}
}

// TestConcurrentCounters hammers one counter and one gauge from many
// goroutines; the totals must be exact (run under -race in the service CI
// job).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("hits_total", "")
	g := r.Gauge("depth", "")
	cv := r.CounterVec("by_kind_total", "", "kind")
	var wg sync.WaitGroup
	const workers, n = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				cv.With("k").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*n {
		t.Errorf("counter = %v, want %d", got, workers*n)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := cv.With("k").Value(); got != workers*n {
		t.Errorf("counter vec = %v, want %d", got, workers*n)
	}
}

// TestGaugeFuncSampledAtScrape: callback gauges read live state at scrape
// time, and the HTTP handler sets the exposition content type.
func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := New()
	depth := 0
	r.GaugeFunc("queue_depth", "live queue depth", func() float64 { return float64(depth) })
	r.CounterFunc("evictions_total", "", func() float64 { return 7 })
	depth = 42

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "queue_depth 42") {
		t.Errorf("gauge func not sampled at scrape:\n%s", body)
	}
	if !strings.Contains(body, "evictions_total 7") {
		t.Errorf("counter func not sampled at scrape:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
}

// TestCounterIgnoresNegative preserves monotonicity.
func TestCounterIgnoresNegative(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
}

func TestGaugeFuncVec(t *testing.T) {
	r := New()
	r.GaugeFuncVec("cache_by_kind", "Entries per kind.", "kind", func() map[string]float64 {
		return map[string]float64{"surface.mc": 3, "dse.point": 12}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP cache_by_kind Entries per kind.\n" +
		"# TYPE cache_by_kind gauge\n" +
		`cache_by_kind{kind="dse.point"} 12` + "\n" +
		`cache_by_kind{kind="surface.mc"} 3` + "\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}
