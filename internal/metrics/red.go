package metrics

import (
	"net/http"
	"strconv"
	"time"
)

// RED instruments HTTP routes with the classic Rate/Errors/Duration pair:
//
//	qisimd_http_requests_total{route,method,code}
//	qisimd_http_request_seconds{route}
//
// The route label is the registered mux pattern (e.g. "/v1/jobs/{id}"), not
// the raw URL path, so cardinality stays bounded. Wrap composes OUTSIDE any
// fault-injection middleware: a chaos-injected 503 or aborted connection is
// a real client-visible outcome and must be measured like one.
type RED struct {
	reqs *CounterVec
	secs *HistogramVec
}

// NewRED registers the RED families on r.
func NewRED(r *Registry) *RED {
	return &RED{
		reqs: r.CounterVec("qisimd_http_requests_total",
			"HTTP requests by route pattern, method and status code.",
			"route", "method", "code"),
		secs: r.HistogramVec("qisimd_http_request_seconds",
			"HTTP request latency in seconds by route pattern.",
			DefaultLatencyBuckets(), "route"),
	}
}

// Wrap returns next instrumented under the given route label. Handlers that
// panic (including chaos connection aborts via http.ErrAbortHandler) are
// counted with code="aborted" and the panic is re-raised.
func (red *RED) Wrap(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			red.secs.With(route).Observe(time.Since(start).Seconds())
			if p := recover(); p != nil {
				red.reqs.With(route, r.Method, "aborted").Inc()
				panic(p)
			}
			red.reqs.With(route, r.Method, strconv.Itoa(sw.Status())).Inc()
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter captures the status code while staying transparent to
// streaming handlers: Flush forwards to the underlying writer (the SSE
// endpoint type-asserts http.Flusher) and Unwrap supports
// http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Status returns the code sent to the client (200 when the handler returned
// without writing anything, matching net/http's implicit header).
func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }
