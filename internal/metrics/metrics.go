// Package metrics is a small, dependency-free metrics registry exposing the
// Prometheus text exposition format (version 0.0.4). It provides exactly the
// instrument set qisimd's observability needs — counters, gauges (including
// callback gauges for sampling live state like queue depth), and cumulative
// histograms, each optionally labelled — without pulling the Prometheus
// client library into the module.
//
// Concurrency: every instrument is safe for concurrent use. Counters and
// gauges are lock-free (atomic float64 bit-casts); histograms and labelled
// families take a small mutex. WritePrometheus renders a consistent snapshot
// under the registry lock with families and label series in sorted order, so
// scrapes are deterministic and diffable in tests.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in Prometheus
// text format. The zero value is not usable; call New.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help, typ string
	// fixed-label instruments (vecs) and the single unlabelled instrument
	// share one series map keyed by rendered label signature ("" for none).
	mu     sync.Mutex
	series map[string]renderer
}

// renderer emits one label-series' sample lines.
type renderer interface {
	render(w io.Writer, name, labels string)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: map[string]renderer{}}
	r.fams[name] = f
	return f
}

func (f *family) add(labels string, rd renderer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[labels]; ok {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", f.name, labels))
	}
	f.series[labels] = rd
}

// value is a lock-free float64 cell shared by Counter and Gauge.
type value struct{ bits atomic.Uint64 }

func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }
func (v *value) store(x float64) {
	v.bits.Store(math.Float64bits(x))
}
func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (v *value) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v.load()))
}

// Counter is a monotonically increasing metric.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds d, which must be >= 0 (negative deltas are dropped to preserve
// counter monotonicity).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.v.add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) render(w io.Writer, name, labels string) { c.v.render(w, name, labels) }

// Gauge is a metric that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) { g.v.store(x) }

// Add adjusts the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) render(w io.Writer, name, labels string) { g.v.render(w, name, labels) }

// funcRenderer samples a callback at scrape time.
type funcRenderer func() float64

func (f funcRenderer) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f()))
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter")
	c := &Counter{}
	f.add("", c)
	return c
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge")
	g := &Gauge{}
	f.add("", g)
	return g
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape time
// — the idiom for live state (queue depth, cache entries, goroutines).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "gauge")
	f.add("", funcRenderer(fn))
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time. fn must be monotonically non-decreasing (e.g. reading a stats
// struct's cumulative totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "counter")
	f.add("", funcRenderer(fn))
}

// funcVecRenderer samples a callback returning one value per label value at
// scrape time, emitting label series in sorted order.
type funcVecRenderer struct {
	label string
	fn    func() map[string]float64
}

func (g funcVecRenderer) render(w io.Writer, name, labels string) {
	vals := g.fn()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %s\n", name, mergeLabels(labels, g.label, k), formatFloat(vals[k]))
	}
}

// GaugeFuncVec registers a gauge family with one dynamic label, sampled
// from fn at scrape time — fn returns the current value per label value,
// and keys absent from one scrape simply emit no series. The idiom for
// live breakdowns whose label values aren't known up front, like resident
// cache entries by job kind.
func (r *Registry) GaugeFuncVec(name, help, label string, fn func() map[string]float64) {
	f := r.family(name, help, "gauge")
	f.add("", funcVecRenderer{label: label, fn: fn})
}

// CounterFuncVec registers a counter family with one dynamic label, sampled
// from fn at scrape time — the counter twin of GaugeFuncVec, for cumulative
// totals kept by another subsystem (e.g. federated per-worker counters whose
// label values only appear as workers register). fn must be monotonically
// non-decreasing per key.
func (r *Registry) CounterFuncVec(name, help, label string, fn func() map[string]float64) {
	f := r.family(name, help, "counter")
	f.add("", funcVecRenderer{label: label, fn: fn})
}

// Sample is one label-value tuple with its value, returned wholesale by
// multi-label scrape-time callbacks. Values must match the label-name set
// the family was registered with.
type Sample struct {
	Values []string
	Value  float64
}

// sampleFuncRenderer emits a whole multi-label series set from one callback
// at scrape time, in sorted signature order.
type sampleFuncRenderer struct {
	labels []string
	fn     func() []Sample
}

func (s sampleFuncRenderer) render(w io.Writer, name, labels string) {
	samples := s.fn()
	lines := make([]string, 0, len(samples))
	for _, smp := range samples {
		lines = append(lines, fmt.Sprintf("%s%s %s\n",
			name, renderLabels(s.labels, smp.Values), formatFloat(smp.Value)))
	}
	sort.Strings(lines)
	for _, ln := range lines {
		io.WriteString(w, ln)
	}
}

// CounterFuncN registers a counter family over a fixed multi-label set whose
// series are produced wholesale by fn at scrape time. Used where the series
// population is owned elsewhere (e.g. chaos injector stats keyed by side and
// fault).
func (r *Registry) CounterFuncN(name, help string, labels []string, fn func() []Sample) {
	f := r.family(name, help, "counter")
	f.add("", sampleFuncRenderer{labels: labels, fn: fn})
}

// CounterVec is a family of counters partitioned by a fixed label set.
type CounterVec struct {
	f      *family
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter"), labels: labels, kids: map[string]*Counter{}}
}

// With returns the counter for the given label values (len must match the
// label names), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	sig := renderLabels(cv.labels, values)
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok := cv.kids[sig]; ok {
		return c
	}
	c := &Counter{}
	cv.kids[sig] = c
	cv.f.add(sig, c)
	return c
}

// GaugeVec is a family of gauges partitioned by a fixed label set.
type GaugeVec struct {
	f      *family
	labels []string
	mu     sync.Mutex
	kids   map[string]*Gauge
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, "gauge"), labels: labels, kids: map[string]*Gauge{}}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (gv *GaugeVec) With(values ...string) *Gauge {
	sig := renderLabels(gv.labels, values)
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if g, ok := gv.kids[sig]; ok {
		return g
	}
	g := &Gauge{}
	gv.kids[sig] = g
	gv.f.add(sig, g)
	return g
}

// Histogram is a cumulative histogram with fixed upper-bound buckets (+Inf
// is implicit).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []uint64
	sum     float64
	count   uint64
}

// Histogram registers an unlabelled histogram. bounds must be sorted
// ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.family(name, help, "histogram").add("", h)
	return h
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic("metrics: histogram bounds must be sorted ascending")
	}
	return &Histogram{bounds: b, buckets: make([]uint64, len(b))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i]++
		}
	}
	h.sum += v
	h.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) render(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatFloat(ub)), h.buckets[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), h.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count)
}

// Summary returns a point-in-time copy of the histogram.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSummary{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]uint64(nil), h.buckets...),
		Sum:     h.sum,
		Count:   h.count,
	}
}

// histFuncRenderer renders a histogram whose state lives elsewhere, sampled
// as a HistogramSummary at scrape time.
type histFuncRenderer func() HistogramSummary

func (f histFuncRenderer) render(w io.Writer, name, labels string) {
	f().render(w, name, labels)
}

func (s HistogramSummary) render(w io.Writer, name, labels string) {
	for i, ub := range s.Bounds {
		var n uint64
		if i < len(s.Buckets) {
			n = s.Buckets[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatFloat(ub)), n)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// HistogramFunc registers a histogram sampled from fn at scrape time — for
// aggregates folded from state owned elsewhere, like the fleet-wide merge of
// federated worker histograms.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSummary) {
	r.family(name, help, "histogram").add("", histFuncRenderer(fn))
}

// HistogramVec is a family of histograms partitioned by a fixed label set,
// sharing one bucket layout.
type HistogramVec struct {
	f      *family
	labels []string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{
		f: r.family(name, help, "histogram"), labels: labels,
		bounds: bounds, kids: map[string]*Histogram{},
	}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) *Histogram {
	sig := renderLabels(hv.labels, values)
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if h, ok := hv.kids[sig]; ok {
		return h
	}
	h := newHistogram(hv.bounds)
	hv.kids[sig] = h
	hv.f.add(sig, h)
	return h
}

// Summaries returns a point-in-time copy of every series in the family,
// keyed by rendered label signature (e.g. `{worker="w1"}`).
func (hv *HistogramVec) Summaries() map[string]HistogramSummary {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	out := make(map[string]HistogramSummary, len(hv.kids))
	for sig, h := range hv.kids {
		out[sig] = h.Summary()
	}
	return out
}

// DefaultLatencyBuckets spans 1 ms to ~100 s in powers of ~3 — wide enough
// for both a cached lookup and a multi-minute sweep.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}
}

// WritePrometheus renders every family in the text exposition format, with
// families and series in sorted order (deterministic scrapes).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, s := range sigs {
			f.series[s].render(&b, f.name, s)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in text format — the
// body behind GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// renderLabels builds the canonical `{k="v",...}` signature. Label names
// keep their given order (callers use fixed label sets).
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q yields exactly the Prometheus label escapes: \\ \" \n.
		fmt.Fprintf(&b, `%s=%q`, n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends one extra label (the histogram `le`) to an existing
// signature.
func mergeLabels(labels, name, value string) string {
	extra := fmt.Sprintf(`%s=%q`, name, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value: integers without exponent, +Inf as
// Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
