package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qisim/internal/jobs"
	"qisim/internal/obs"
)

// getBody fetches a URL and returns status + raw body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestTraceEndpointStateMachine walks GET /v1/jobs/{id}/trace through its
// documented states: 404 unknown, 202 while in flight, 200 when done (in all
// three formats), 400 for a bogus format, and 404 again when tracing is
// disabled server-wide.
func TestTraceEndpointStateMachine(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	if code, _ := getBody(t, ts.URL+"/v1/jobs/j-424242/trace"); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", code)
	}

	// A slow job pins one worker; its trace must answer 202 while the job is
	// queued or running (drain at cleanup truncates it harmlessly). The small
	// job that follows completes on the second worker.
	slow := `{"kind":"surface.mc","params":{"distance":11,"shots":100000000,"shard_size":64,"seed":77}}`
	code, sr := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit slow: status %d", code)
	}
	if code, body := getBody(t, ts.URL+"/v1/jobs/"+sr.Job.ID+"/trace"); code != http.StatusAccepted {
		t.Fatalf("in-flight trace: status %d body %s, want 202", code, body)
	}

	// A small job runs to completion; its trace serves 200 in every format.
	code, sr2 := postJob(t, ts, `{"kind":"surface.mc","params":{"distance":3,"shots":128,"shard_size":64,"seed":9}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit small: status %d", code)
	}
	waitDone(t, ts, sr2.Job.ID)

	var tr obs.Trace
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr2.Job.ID+"/trace", &tr); code != http.StatusOK {
		t.Fatalf("done trace: status %d, want 200", code)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("served trace fails validation: %v", err)
	}
	if tr.ID != sr2.Job.ID {
		t.Fatalf("trace ID %q, want job ID %q", tr.ID, sr2.Job.ID)
	}

	code, chromeBody := getBody(t, ts.URL+"/v1/jobs/"+sr2.Job.ID+"/trace?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome trace: status %d", code)
	}
	parsed, err := obs.ParseChrome(strings.NewReader(string(chromeBody)))
	if err != nil {
		t.Fatalf("chrome body does not round-trip: %v", err)
	}
	if len(parsed.Spans) != len(tr.Spans) {
		t.Fatalf("chrome round-trip lost spans: %d != %d", len(parsed.Spans), len(tr.Spans))
	}

	code, treeBody := getBody(t, ts.URL+"/v1/jobs/"+sr2.Job.ID+"/trace?format=tree")
	if code != http.StatusOK || !strings.Contains(string(treeBody), "trace "+sr2.Job.ID) {
		t.Fatalf("tree trace: status %d body %q", code, treeBody)
	}

	if code, _ := getBody(t, ts.URL+"/v1/jobs/"+sr2.Job.ID+"/trace?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d, want 400", code)
	}
}

// TestTraceEndpointDisabledTracing: with TraceMaxSpans < 0 no job records a
// trace, so even a finished job answers 404.
func TestTraceEndpointDisabledTracing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TraceMaxSpans: -1})
	code, sr := postJob(t, ts, smallMC)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("job finished %s", snap.State)
	}
	if code, body := getBody(t, ts.URL+"/v1/jobs/"+sr.Job.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("disabled tracing trace: status %d body %s, want 404", code, body)
	}
}

// TestTraceE2ESpanTree is the acceptance walk: run a Monte-Carlo job on a
// crash-safe server and assert the retrieved span tree holds the queue-wait,
// executor, engine, per-shard, merge and checkpoint spans with consistent
// nesting and monotonic timestamps.
func TestTraceE2ESpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DataDir: t.TempDir()})

	// 256 shots / shard_size 64 → exactly 4 shards.
	code, sr := postJob(t, ts, smallMC)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", snap.State, snap.Error)
	}

	var tr obs.Trace
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sr.Job.ID+"/trace", &tr); code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("trace invariants: %v\n%s", err, tr.TreeString())
	}
	if tr.Dropped != 0 {
		t.Fatalf("trace dropped %d spans with the default buffer", tr.Dropped)
	}

	root, ok := tr.Find("job")
	if !ok || root.Parent != 0 {
		t.Fatalf("no root job span (%+v)", root)
	}
	queueWait, ok := tr.Find("queue.wait")
	if !ok || queueWait.Parent != root.ID {
		t.Fatalf("queue.wait missing or mis-parented (%+v)", queueWait)
	}
	exec, ok := tr.Find("executor")
	if !ok || exec.Parent != root.ID {
		t.Fatalf("executor missing or mis-parented (%+v)", exec)
	}
	if queueWait.EndNS > exec.EndNS {
		t.Fatalf("queue.wait [%d,%d] outlives executor end %d",
			queueWait.StartNS, queueWait.EndNS, exec.EndNS)
	}
	run, ok := tr.Find("mc.run")
	if !ok {
		t.Fatal("no mc.run engine span")
	}
	// The engine root must sit under the executor (directly or transitively).
	if run.Parent != exec.ID {
		t.Fatalf("mc.run parent %d, want executor %d\n%s", run.Parent, exec.ID, tr.TreeString())
	}

	if n := tr.Count("shard"); n != 4 {
		t.Fatalf("shard spans = %d, want 4 (256 shots / 64)\n%s", n, tr.TreeString())
	}
	if n := tr.Count("merge"); n < 1 {
		t.Fatal("no merge spans")
	}
	if n := tr.Count("checkpoint.save"); n < 1 {
		t.Fatal("no checkpoint.save spans (DataDir is set)")
	}
	if n := tr.Count("journal.append"); n < 2 {
		t.Fatalf("journal.append spans = %d, want >= 2 (submit + terminal)", n)
	}
	for _, s := range tr.Spans {
		switch s.Name {
		case "shard":
			if s.Parent != run.ID {
				t.Fatalf("shard span %d parented to %d, want mc.run %d", s.ID, s.Parent, run.ID)
			}
			if s.Attr("shots") == "" {
				t.Fatalf("shard span %d carries no shots attribute: %+v", s.ID, s.Attrs)
			}
		case "merge":
			if s.Parent != run.ID {
				t.Fatalf("merge span %d parented to %d, want mc.run %d", s.ID, s.Parent, run.ID)
			}
		}
	}
}

// TestStageHistogramsFromTraces: a finished job's trace must fold into the
// qisimd_stage_seconds / qisimd_shard_seconds / qisimd_queue_wait_seconds
// histograms, visible through /metrics in exposition format.
func TestStageHistogramsFromTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, sr := postJob(t, ts, smallMC)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitDone(t, ts, sr.Job.ID)

	for series, want := range map[string]float64{
		`qisimd_stage_seconds_count{stage="executor"}`:   1,
		`qisimd_stage_seconds_count{stage="queue.wait"}`: 1,
		`qisimd_stage_seconds_count{stage="mc.run"}`:     1,
		`qisimd_stage_seconds_count{stage="shard"}`:      4,
		`qisimd_shard_seconds_count`:                     4,
		`qisimd_queue_wait_seconds_count`:                1,
	} {
		if got := scrapeMetric(t, ts, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// The exposition is well-formed: cumulative buckets ending at +Inf equal
	// the count, and the family is declared a histogram.
	_, raw := getBody(t, ts.URL+"/metrics")
	text := string(raw)
	if !strings.Contains(text, "# TYPE qisimd_shard_seconds histogram") {
		t.Fatal("qisimd_shard_seconds not declared as a histogram")
	}
	inf := fmt.Sprintf(`qisimd_shard_seconds_bucket{le="+Inf"} %d`, 4)
	if !strings.Contains(text, inf) {
		t.Fatalf("missing terminal bucket %q in exposition:\n%s", inf, text)
	}
}

// TestPprofMuxE2E: the separate pprof mux serves live profiles — the same
// handler qisimd mounts on -pprof.
func TestPprofMuxE2E(t *testing.T) {
	ts := httptest.NewServer(obs.PprofMux())
	defer ts.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
		"/debug/pprof/profile?seconds=1",
	} {
		code, body := getBody(t, ts.URL+path)
		if code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, code)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}
