package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/jobs"
)

// newTestServer spins up the full HTTP stack around a Server; the cleanup
// drains the pool so no worker goroutines outlive the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return resp.StatusCode, sr
}

func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls GET /v1/jobs/{id} until the job leaves the queue.
func waitDone(t *testing.T, ts *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var snap jobs.Snapshot
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &snap); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if snap.State == jobs.StateDone || snap.State == jobs.StateFailed {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobs.Snapshot{}
}

// scrapeMetric reads one series (exact name{labels} prefix) from /metrics.
func scrapeMetric(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

const smallMC = `{"kind":"surface.mc","params":{"distance":3,"shots":256,"shard_size":64,"seed":5}}`

// TestSubmitPollFetchE2E walks the whole contract: submit → 202 queued →
// poll to done → result envelope → byte-identical replay from
// /v1/results/{key} and from a cached resubmission (with the cache-hit
// metric incrementing).
func TestSubmitPollFetchE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, sr := postJob(t, ts, smallMC)
	if code != http.StatusAccepted || sr.Outcome != "queued" {
		t.Fatalf("submit: status %d outcome %q, want 202 queued", code, sr.Outcome)
	}
	if sr.Job.Kind != jobs.KindSurfaceMC || !sr.Job.Key.Valid() {
		t.Fatalf("submit snapshot malformed: %+v", sr.Job)
	}

	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s: %s)", snap.State, snap.ErrorClass, snap.Error)
	}
	if snap.Status == nil || snap.Status.Truncated {
		t.Fatalf("unexpected status %+v", snap.Status)
	}
	if snap.Progress.Completed != 256 || snap.Progress.Requested != 256 {
		t.Fatalf("progress %+v, want 256/256", snap.Progress)
	}
	if len(snap.Result) == 0 {
		t.Fatal("done job has no result")
	}
	var env struct {
		Kind   string          `json:"kind"`
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(snap.Result, &env); err != nil {
		t.Fatalf("result envelope: %v", err)
	}
	if env.Kind != "surface.mc" || env.Key != string(sr.Job.Key) || len(env.Result) == 0 {
		t.Fatalf("envelope mismatch: %+v", env)
	}

	// The cached body replays byte-exactly from /v1/results/{key}.
	resp, err := http.Get(ts.URL + "/v1/results/" + string(sr.Job.Key))
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", resp.StatusCode)
	}
	if !bytes.Equal(stored, []byte(snap.Result)) {
		t.Fatalf("stored body differs from job result:\n%s\n%s", stored, snap.Result)
	}

	// Resubmission (different field order) is a cache hit with the same bytes.
	hitsBefore := scrapeMetric(t, ts, "qisimd_cache_hits_total")
	code, sr2 := postJob(t, ts,
		`{"kind":"surface.mc","params":{"seed":5,"shard_size":64,"shots":256,"distance":3}}`)
	if code != http.StatusOK || sr2.Outcome != "cached" {
		t.Fatalf("resubmit: status %d outcome %q, want 200 cached", code, sr2.Outcome)
	}
	if !sr2.Job.Cached || !bytes.Equal(sr2.Job.Result, snap.Result) {
		t.Fatal("cached resubmission did not return the byte-identical body")
	}
	if hits := scrapeMetric(t, ts, "qisimd_cache_hits_total"); hits != hitsBefore+1 {
		t.Fatalf("qisimd_cache_hits_total = %v, want %v", hits, hitsBefore+1)
	}
}

// TestConcurrentDuplicatesCoalesce: N identical submissions racing through
// the HTTP layer must produce exactly ONE computation — the rest coalesce
// onto the in-flight job or hit the cache.
func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	const dupes = 16
	var wg sync.WaitGroup
	ids := make([]string, dupes)
	outcomes := make([]string, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, sr := postJob(t, ts, smallMC)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("dupe %d: status %d", i, code)
				return
			}
			ids[i], outcomes[i] = sr.Job.ID, sr.Outcome
		}(i)
	}
	wg.Wait()

	// Everyone attached to a job; wait for all referenced jobs to settle.
	for _, id := range ids {
		if id != "" {
			waitDone(t, ts, id)
		}
	}
	queued := 0
	for _, o := range outcomes {
		if o == "queued" {
			queued++
		}
	}
	if queued != 1 {
		t.Fatalf("%d computations enqueued for %d duplicates, want exactly 1 (outcomes %v)",
			queued, dupes, outcomes)
	}
	if n := scrapeMetric(t, ts, `qisimd_jobs_finished_total{kind="surface.mc",state="done"}`); n != 1 {
		t.Fatalf("finished{done} = %v, want 1 execution", n)
	}
	if srv.Cache().Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", srv.Cache().Len())
	}
}

// TestErrorStatusMapping: typed configuration errors map to the documented
// HTTP statuses, mirroring the CLI exit-code contract.
func TestErrorStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, body string
		status     int
		class      string
	}{
		{"unknown kind", `{"kind":"bogus","params":{}}`, 400, "invalid-config"},
		{"typo'd param", `{"kind":"surface.mc","params":{"distanec":3}}`, 400, "invalid-config"},
		{"bad body", `{"kind":`, 400, "invalid-config"},
		{"unsupported qasm", `{"kind":"pauli.mc","params":{"qasm":"OPENQASM 2.0; qreg q[1]; h q[0]; ccx q[0],q[0],q[0];"}}`, 501, "unsupported-qasm"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != c.status || er.Class != c.class {
			t.Errorf("%s: got %d class %q, want %d %q (%s)",
				c.name, resp.StatusCode, er.Class, c.status, c.class, er.Error)
		}
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	missing := strings.Repeat("ab", 32) // well-formed key, nothing stored
	if code := getJSON(t, ts.URL+"/v1/results/"+missing, nil); code != http.StatusNotFound {
		t.Errorf("missing result: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/not-a-key", nil); code != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", code)
	}
}

// TestQueueFullMapsTo429: once the bounded queue rejects, the HTTP layer
// answers 429 and the rejection metric counts it.
func TestQueueFullMapsTo429(t *testing.T) {
	// One worker pinned by a slow job + depth-1 queue: the third distinct
	// submission must be refused.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	slow := func(seed int) string {
		return fmt.Sprintf(`{"kind":"surface.mc","params":{"distance":9,"shots":2000000,"shard_size":64,"seed":%d}}`, seed)
	}
	// Occupy the worker and the queue slot (distinct seeds → distinct keys).
	postJob(t, ts, slow(101))
	postJob(t, ts, slow(102))
	code := 0
	for seed := 103; seed < 120; seed++ { // races with the worker picking up
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow(seed)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code = resp.StatusCode; code == http.StatusTooManyRequests {
			break
		}
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue never refused: last status %d, want 429", code)
	}
	if n := scrapeMetric(t, ts, `qisimd_jobs_rejected_total{reason="queue-full"}`); n < 1 {
		t.Fatalf("rejected{queue-full} = %v, want >= 1", n)
	}
}

// TestHealthz: healthy while serving.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
}
