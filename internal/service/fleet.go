// Fleet observability plane: the /v1/fleet/status and /v1/debug/flight
// endpoints, the qisimd_fleet_* federation fold, and the
// qisimd_chaos_injected_total export.
//
// Federation model: every worker piggybacks a metrics.Summary (counter and
// gauge snapshot plus histogram buckets of its local registry) on lease
// renewals and unit reports. The coordinator keeps only the latest summary
// per worker — summaries are cumulative snapshots, so "latest wins" is the
// correct fold and a lost renewal costs freshness, never correctness. The
// qisimd_fleet_* series below are computed from those summaries at scrape
// time; nothing here ever touches the dispatch path or simulation results.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"qisim/internal/chaos"
	"qisim/internal/dist"
	"qisim/internal/metrics"
	"qisim/internal/simerr"
)

// ---- chaos-injection export ----

// chaosSource is one registered chaos injector (a server-side /v1/dist
// middleware or a worker's client transport) feeding the
// qisimd_chaos_injected_total{side,fault} export.
type chaosSource struct {
	side  string
	stats func() chaos.Stats
}

// RegisterChaosStats adds a chaos injector's live counters to the
// qisimd_chaos_injected_total{side,fault} series. side is "server" for
// middleware around served endpoints and "client" for a worker's outbound
// transport. Safe to call after New (the export samples at scrape time).
func (s *Server) RegisterChaosStats(side string, stats func() chaos.Stats) {
	s.chaosMu.Lock()
	s.chaosSources = append(s.chaosSources, chaosSource{side: side, stats: stats})
	s.chaosMu.Unlock()
}

// chaosSamples folds every registered injector into per-(side,fault)
// totals. The "requests" key is the injector's traffic counter, not a
// fault, and stays out of the export.
func (s *Server) chaosSamples() []metrics.Sample {
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	totals := map[string]map[string]int64{}
	for _, src := range s.chaosSources {
		for fault, n := range src.stats() {
			if fault == "requests" || n == 0 {
				continue
			}
			if totals[src.side] == nil {
				totals[src.side] = map[string]int64{}
			}
			totals[src.side][fault] += n
		}
	}
	var out []metrics.Sample
	for side, faults := range totals {
		for fault, n := range faults {
			out = append(out, metrics.Sample{Values: []string{side, fault}, Value: float64(n)})
		}
	}
	return out
}

// ---- flight-recorder persistence and endpoint ----

// persistFlight writes the flight ring to <data-dir>/flight-last.json so a
// crash's preceding events survive the process. Best-effort: an in-memory
// server (no DataDir) or a failed write silently keeps the in-process ring
// as the only copy.
func (s *Server) persistFlight() {
	if s.dataDir == "" {
		return
	}
	body, err := json.MarshalIndent(s.flight.Snapshot(), "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(s.dataDir, "flight-last.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		s.log.Warn("flight persistence failed", "path", path, "err", err)
	}
}

// handleFlight serves GET /v1/debug/flight: the flight ring as JSON, or as
// the same text rendering the SIGQUIT handler emits with ?format=text.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	dump := s.flight.Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, dump)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		dump.WriteText(w)
	default:
		s.writeError(w, simerr.Invalidf("service: unknown flight format %q (want json|text)", format))
	}
}

// ---- /v1/fleet/status ----

// fleetWorkerView is one worker row of the status document: the
// coordinator's own bookkeeping (dist.FleetWorker) enriched with the
// coordinator-observed unit latency quantiles and the worker's federated
// counters.
type fleetWorkerView struct {
	dist.FleetWorker
	UnitP50 float64 `json:"unit_p50_seconds,omitempty"`
	UnitP90 float64 `json:"unit_p90_seconds,omitempty"`
	UnitP99 float64 `json:"unit_p99_seconds,omitempty"`
	// UnitsDone / ChaosInjected come from the worker's federated summary
	// (its own counting), not the coordinator's; a gap between UnitsDone
	// here and the coordinator's lease bookkeeping is renewal lag.
	UnitsDone     float64 `json:"units_done,omitempty"`
	ChaosInjected float64 `json:"chaos_injected,omitempty"`
	Federated     bool    `json:"federated"` // a summary has arrived
}

// fleetStatusView is the GET /v1/fleet/status body.
type fleetStatusView struct {
	Enabled bool              `json:"enabled"`
	Workers []fleetWorkerView `json:"workers,omitempty"`
	Jobs    []dist.FleetJob   `json:"jobs,omitempty"`
	Stats   dist.Stats        `json:"stats"`
}

func (s *Server) fleetStatus() fleetStatusView {
	if s.dist == nil {
		return fleetStatusView{}
	}
	snap := s.dist.FleetSnapshot()
	var unitSummaries map[string]metrics.HistogramSummary
	if s.mDistUnitSeconds != nil {
		unitSummaries = s.mDistUnitSeconds.Summaries()
	}
	view := fleetStatusView{
		Enabled: true,
		Workers: make([]fleetWorkerView, 0, len(snap.Workers)),
		Jobs:    snap.Jobs,
		Stats:   snap.Stats,
	}
	for _, w := range snap.Workers {
		row := fleetWorkerView{FleetWorker: w}
		if hs, ok := unitSummaries[fmt.Sprintf(`{worker=%q}`, w.ID)]; ok && hs.Count > 0 {
			row.UnitP50 = hs.Quantile(0.50)
			row.UnitP90 = hs.Quantile(0.90)
			row.UnitP99 = hs.Quantile(0.99)
		}
		if w.Summary != nil {
			row.Federated = true
			row.UnitsDone = w.Summary.CounterSum("qisimd_worker_units_total")
			row.ChaosInjected = w.Summary.CounterSum("qisimd_chaos_injected_total")
		}
		view.Workers = append(view.Workers, row)
	}
	return view
}

// handleFleetStatus serves GET /v1/fleet/status (?format=json|tree). On a
// non-coordinator the document is {"enabled": false} rather than an error,
// so one dashboard query works against any role.
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	view := s.fleetStatus()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, view)
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeFleetTree(w, view)
	default:
		s.writeError(w, simerr.Invalidf("service: unknown fleet format %q (want json|tree)", format))
	}
}

// writeFleetTree renders the status document in the same text-tree style as
// the trace endpoint's ?format=tree.
func writeFleetTree(w http.ResponseWriter, v fleetStatusView) {
	if !v.Enabled {
		fmt.Fprintln(w, "fleet: not a coordinator")
		return
	}
	byState := map[string]int{}
	for _, wk := range v.Workers {
		byState[wk.State]++
	}
	var states []string
	for _, st := range []string{"healthy", "draining", "evicted", "quarantined"} {
		if byState[st] > 0 {
			states = append(states, fmt.Sprintf("%d %s", byState[st], st))
		}
	}
	summary := strings.Join(states, ", ")
	if summary == "" {
		summary = "none registered"
	}
	fmt.Fprintf(w, "fleet: %d workers (%s), %d jobs\n", len(v.Workers), summary, len(v.Jobs))
	for i, wk := range v.Workers {
		branch := treeBranch(i == len(v.Workers)-1 && len(v.Jobs) == 0)
		fmt.Fprintf(w, "%s%s %s trust=%d leases=%d", branch, wk.ID, wk.State, wk.Trust, wk.Leases)
		if wk.ProbeFails > 0 {
			fmt.Fprintf(w, " probe-fails=%d", wk.ProbeFails)
		}
		if wk.LastSeenAgeMS >= 0 {
			fmt.Fprintf(w, " last-seen=%dms", wk.LastSeenAgeMS)
		} else {
			fmt.Fprint(w, " last-seen=never")
		}
		if wk.QuarantineLeftMS > 0 {
			fmt.Fprintf(w, " quarantine-left=%dms", wk.QuarantineLeftMS)
		}
		if wk.UnitP50 > 0 || wk.UnitP99 > 0 {
			fmt.Fprintf(w, " unit-p50=%.3fs p90=%.3fs p99=%.3fs", wk.UnitP50, wk.UnitP90, wk.UnitP99)
		}
		if wk.Federated {
			fmt.Fprintf(w, " units=%v chaos=%v", wk.UnitsDone, wk.ChaosInjected)
		}
		fmt.Fprintln(w)
	}
	for i, j := range v.Jobs {
		branch := treeBranch(i == len(v.Jobs)-1)
		fmt.Fprintf(w, "%s%s %s units %d (%d done, %d leased, %d pending",
			branch, j.Kind, j.Key, j.Units, j.UnitsDone, j.UnitsLeased, j.UnitsPending)
		if j.UnitsLocalOnly > 0 {
			fmt.Fprintf(w, ", %d local-only", j.UnitsLocalOnly)
		}
		fmt.Fprintf(w, ") shots %d/%d frontier=%d\n", j.CompletedShots, j.RequestedShots, j.FrontierShard)
	}
}

func treeBranch(last bool) string {
	if last {
		return "└─ "
	}
	return "├─ "
}

// ---- qisimd_fleet_* federation fold ----

// registerFleetMetrics installs the coordinator's scrape-time fleet series.
// Per-worker series come and go with registration — a scrape never caches a
// dead worker beyond its eviction.
func (s *Server) registerFleetMetrics() {
	s.reg.GaugeFuncVec("qisimd_fleet_workers",
		"Registered fleet workers by state.", "state",
		func() map[string]float64 {
			out := map[string]float64{"healthy": 0, "draining": 0, "evicted": 0, "quarantined": 0}
			for _, w := range s.dist.FleetSnapshot().Workers {
				out[w.State]++
			}
			return out
		})
	s.reg.GaugeFuncVec("qisimd_fleet_worker_trust",
		"Per-worker trust score (spot-check passes minus decay; negative pending quarantine).", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				out[w.ID] = float64(w.Trust)
			}
			return out
		})
	s.reg.GaugeFuncVec("qisimd_fleet_worker_leases",
		"Outstanding leases per worker.", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				out[w.ID] = float64(w.Leases)
			}
			return out
		})
	s.reg.GaugeFuncVec("qisimd_fleet_worker_probe_failures",
		"Consecutive failed health probes per worker.", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				out[w.ID] = float64(w.ProbeFails)
			}
			return out
		})
	s.reg.GaugeFuncVec("qisimd_fleet_worker_last_seen_seconds",
		"Age of each worker's last contact or federated summary (-1 = never heard from).", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				if w.LastSeenAgeMS < 0 {
					out[w.ID] = -1
					continue
				}
				out[w.ID] = float64(w.LastSeenAgeMS) / 1e3
			}
			return out
		})
	s.reg.CounterFuncVec("qisimd_fleet_worker_units_total",
		"Units executed as counted by each worker's own federated summary.", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				if w.Summary != nil {
					out[w.ID] = w.Summary.CounterSum("qisimd_worker_units_total")
				}
			}
			return out
		})
	s.reg.CounterFuncVec("qisimd_fleet_worker_chaos_injected_total",
		"Client-side chaos injections per worker, from its federated summary.", "worker",
		func() map[string]float64 {
			out := map[string]float64{}
			for _, w := range s.dist.FleetSnapshot().Workers {
				if w.Summary != nil {
					out[w.ID] = w.Summary.CounterSum("qisimd_chaos_injected_total")
				}
			}
			return out
		})
	s.reg.HistogramFunc("qisimd_fleet_unit_seconds",
		"Unit wall clock across the whole fleet: every worker's federated qisimd_worker_unit_seconds merged.",
		func() metrics.HistogramSummary {
			var out metrics.HistogramSummary
			snap := s.dist.FleetSnapshot()
			// Deterministic merge order (workers are already ID-sorted,
			// but be explicit: the fold must not depend on map order).
			sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
			for _, w := range snap.Workers {
				if w.Summary != nil {
					out.Merge(w.Summary.HistogramMerge("qisimd_worker_unit_seconds"))
				}
			}
			return out
		})
}
