package service

import (
	"encoding/json"
	"testing"

	"qisim/internal/jobs"
)

func keyOf(t *testing.T, kind, params string) (jobs.Kind, string) {
	t.Helper()
	k, key, run, err := buildJob(jobRequest{Kind: kind, Params: json.RawMessage(params)}, buildEnv{})
	if err != nil {
		t.Fatalf("buildJob(%s, %s): %v", kind, params, err)
	}
	if run == nil {
		t.Fatalf("buildJob(%s) returned nil runner", kind)
	}
	if !key.Valid() {
		t.Fatalf("buildJob(%s) returned malformed key %q", kind, key)
	}
	return k, string(key)
}

// TestKeyFieldOrderIndependence: the JSON field order of the params object
// must not change the cache key — the same request written two ways is the
// same computation.
func TestKeyFieldOrderIndependence(t *testing.T) {
	_, a := keyOf(t, "surface.mc", `{"distance":7,"p":0.004,"q":0.004,"shots":1000,"seed":9}`)
	_, b := keyOf(t, "surface.mc", `{"seed":9,"shots":1000,"q":0.004,"p":0.004,"distance":7}`)
	if a != b {
		t.Fatalf("field order changed the key:\n  %s\n  %s", a, b)
	}
}

// TestKeyDefaultVsExplicitEquivalence: omitting an option and writing its
// default explicitly must key identically, for every kind with defaults.
func TestKeyDefaultVsExplicitEquivalence(t *testing.T) {
	cases := []struct{ kind, omitted, explicit string }{
		{"surface.mc", `{}`,
			`{"distance":11,"p":0.005,"q":0.005,"rounds":11,"shots":200000,"seed":1,"rel_se":0,"shard_size":512}`},
		{"readout.mc", `{}`,
			`{"range":40,"max_rounds":8,"shots":400000,"seed":11,"shard_size":512}`},
		{"scalability.analyze", `{}`, `{"distance":23,"extended":false}`},
		{"scalability.sweep", `{"design":"4K-CMOS-baseline","qubit_counts":[100]}`,
			`{"design":"4K-CMOS-baseline","qubit_counts":[100],"distance":23,"extended":false}`},
	}
	for _, c := range cases {
		_, a := keyOf(t, c.kind, c.omitted)
		_, b := keyOf(t, c.kind, c.explicit)
		if a != b {
			t.Errorf("%s: omitted defaults key differently from explicit defaults:\n  %s\n  %s", c.kind, a, b)
		}
	}
}

// TestKeyIgnoresWorkers: the worker count is an execution hint — the sharded
// engine produces bit-identical bytes for every value — so it must not
// fragment the cache.
func TestKeyIgnoresWorkers(t *testing.T) {
	_, a := keyOf(t, "surface.mc", `{"distance":7,"shots":1000}`)
	_, b := keyOf(t, "surface.mc", `{"distance":7,"shots":1000,"workers":8}`)
	if a != b {
		t.Fatalf("workers leaked into the key:\n  %s\n  %s", a, b)
	}
}

// TestKeyDiscriminates: anything that changes the result bytes must change
// the key.
func TestKeyDiscriminates(t *testing.T) {
	_, base := keyOf(t, "surface.mc", `{"distance":7,"shots":1000}`)
	for name, alt := range map[string]string{
		"distance":   `{"distance":9,"shots":1000}`,
		"shots":      `{"distance":7,"shots":2000}`,
		"seed":       `{"distance":7,"shots":1000,"seed":2}`,
		"shard_size": `{"distance":7,"shots":1000,"shard_size":64}`,
	} {
		if _, k := keyOf(t, "surface.mc", alt); k == base {
			t.Errorf("%s change did not change the key", name)
		}
	}
	// Same params under a different kind must also differ.
	_, analyze := keyOf(t, "scalability.analyze", `{}`)
	if analyze == base {
		t.Fatal("kinds share a key")
	}
}

// TestKeyGolden pins the canonical key derivation: if this breaks, every
// deployed cache is invalidated, so the envelope version (rescache.KeyVersion)
// must be bumped deliberately rather than silently.
func TestKeyGolden(t *testing.T) {
	const golden = "8821fcf9f571e4391704ab30dd77db58a0d31f64657b83e4e773424c4bf54706"
	_, got := keyOf(t, "surface.mc", `{"distance":7,"p":0.004,"q":0.004,"shots":1000,"seed":9}`)
	if got != golden {
		t.Fatalf("golden key changed:\n  got  %s\n  want %s\n(bump rescache.KeyVersion if this is intentional)", got, golden)
	}
}

// TestBuildJobRejects: malformed requests must fail at build time with a
// typed invalid-config error (HTTP 400), never reach the queue.
func TestBuildJobRejects(t *testing.T) {
	for name, req := range map[string]jobRequest{
		"unknown kind":    {Kind: "bogus.kind"},
		"unknown field":   {Kind: "surface.mc", Params: json.RawMessage(`{"distanec":7}`)},
		"unknown design":  {Kind: "scalability.sweep", Params: json.RawMessage(`{"design":"nope","qubit_counts":[1]}`)},
		"no qubit counts": {Kind: "scalability.sweep", Params: json.RawMessage(`{"design":"4K-CMOS-baseline"}`)},
		"missing qasm":    {Kind: "pauli.mc", Params: json.RawMessage(`{}`)},
		"bad arch":        {Kind: "pauli.mc", Params: json.RawMessage(`{"qasm":"OPENQASM 2.0;","arch":"gaas"}`)},
	} {
		if _, _, _, err := buildJob(req, buildEnv{}); err == nil {
			t.Errorf("%s: buildJob accepted a bad request", name)
		}
	}
}
