// Request parsing, normalization, cache keying and per-kind executors.
//
// The normalization contract behind the cache key (see DESIGN.md "Cache
// keying"):
//
//  1. params JSON is decoded strictly (unknown fields rejected) into a typed
//     struct — incoming field ORDER therefore cannot matter;
//  2. defaults are applied BEFORE keying, so an omitted option and its
//     explicit default value key identically;
//  3. the worker count is stripped — the deterministic sharded engine makes
//     the result bit-identical for every worker count, so it must not
//     fragment the cache;
//  4. seed and shard size ARE part of the key — they fix the RNG stream
//     layout, so different values genuinely produce different bytes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"time"

	"qisim/internal/checkpoint"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/dist"
	"qisim/internal/jobs"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/pauli"
	"qisim/internal/qasm"
	"qisim/internal/readout"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/validate"
)

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params"`
	// TimeoutMS, when positive, bounds this run's wall clock. The deadline
	// rides the job context, so on a coordinator it propagates into every
	// lease grant and fleet workers stop at the same wall-clock fence.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// withTimeout bounds a runner's wall clock. Hitting the deadline truncates
// the run at the last committed shard exactly like a cancellation — the
// engine's Stop* status machinery reports the reason.
func withTimeout(run jobs.Runner, d time.Duration) jobs.Runner {
	return func(ctx context.Context, progress func(completed, requested int)) ([]byte, simrun.Status, error) {
		tctx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		return run(tctx, progress)
	}
}

// buildEnv carries the server-side execution environment into the per-kind
// builders: where checkpoints live and the observability hooks that count
// what the runners did. The zero value disables checkpointing (tests, and
// daemons running without -data-dir).
type buildEnv struct {
	// ckptDir is the crash-safe snapshot directory ("" = checkpointing off).
	ckptDir string
	// onSaves receives the number of snapshots a finished run wrote.
	onSaves func(n int)
	// onResume fires when a runner actually resumed from a snapshot instead
	// of starting cold.
	onResume func()
	// dist, when set, routes Monte-Carlo runs through the fleet coordinator;
	// ErrNoWorkers degrades gracefully to the in-process path below.
	dist *dist.Coordinator
	// onDegraded fires when a coordinator-routed run falls back to the
	// local path because the fleet has zero live workers.
	onDegraded func()
	// mgr lets orchestrator runners (dse.sweep) fan children out through
	// the job queue, wait on them and inspect their snapshots. Nil outside
	// a server (worker-side core building never runs orchestrators).
	mgr *jobs.Manager
	// onChild observes each child submission's outcome so the service
	// counts internally fanned-out jobs like HTTP submissions.
	onChild func(kind jobs.Kind, outcome jobs.Outcome)
	// publish streams a custom event on a job's event log (nil = no-op).
	publish func(id, typ string, data any)
}

// runDist dispatches one MC run across the worker fleet. The bool reports
// whether the dist lane produced (or definitively failed) the run; false
// means "no live workers — take the standalone path" (counted as a
// degraded run). The merged bytes are byte-identical to the standalone
// path by the dist fold-replay contract. The job's progress callback is
// fed from the coordinator's committed shard frontier, so fleet-routed
// runs report live progress exactly like local ones.
func (env buildEnv) runDist(ctx context.Context, kind jobs.Kind, key rescache.Key,
	core dist.Core, plan dist.Plan, params any, progress func(int, int)) ([]byte, simrun.Status, bool, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, simrun.Status{}, true, simerr.Invalidf("service: marshal dist params: %v", err)
	}
	body, st, err := env.dist.Execute(ctx, string(kind), string(key), raw, core, plan, progress)
	if errors.Is(err, dist.ErrNoWorkers) {
		if env.onDegraded != nil {
			env.onDegraded()
		}
		return nil, simrun.Status{}, false, nil
	}
	return body, st, true, err
}

// attachCheckpoint wires crash-safe checkpointing into a runner's engine
// options (no-op without a checkpoint dir). Resume is always attempted: a
// missing snapshot starts cold, a snapshot from an interrupted earlier life
// (or an interrupted earlier submission of the same request) continues from
// the committed prefix — the deterministic engine makes the final bytes
// identical either way. A corrupted or mismatched snapshot is a typed
// runtime error on the job, never a silent replay.
func (env buildEnv) attachCheckpoint(ctx context.Context, opt *simrun.Options, meta checkpoint.Meta) (*checkpoint.Saver, error) {
	if env.ckptDir == "" {
		return nil, nil
	}
	_, span := obs.StartSpan(ctx, "checkpoint.load")
	sv, snap, err := checkpoint.Attach(opt, env.ckptDir, true, 1, meta)
	if err != nil {
		span.SetAttr(obs.String("error", simerr.Class(err)))
		span.End()
		return nil, err
	}
	span.SetAttr(obs.Bool("resumed", snap != nil))
	span.End()
	if snap != nil && env.onResume != nil {
		env.onResume()
	}
	return sv, nil
}

// finishCheckpoint reports snapshot-write counts and retires the snapshot of
// a complete (non-truncated) run — the result is cached now, so the
// checkpoint has nothing left to protect. Truncated runs keep theirs: it is
// the resume point for the journal-driven retry.
func (env buildEnv) finishCheckpoint(sv *checkpoint.Saver, truncated bool) {
	if sv == nil {
		return
	}
	if env.onSaves != nil {
		env.onSaves(sv.Saves())
	}
	if !truncated {
		os.Remove(sv.Path) //nolint:errcheck // best-effort cleanup
	}
}

// buildJob validates and normalizes one request, returning its kind, cache
// key and executor. All *configuration* errors surface here (mapped to HTTP
// status codes by the caller); *runtime* errors surface on the job record.
func buildJob(req jobRequest, env buildEnv) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	kind := jobs.Kind(req.Kind)
	if !kind.Valid() {
		return "", "", nil, simerr.Invalidf("service: unknown job kind %q (kinds: %v)", req.Kind, jobs.Kinds())
	}
	switch kind {
	case jobs.KindSurfaceMC:
		return buildSurfaceMC(req.Params, env)
	case jobs.KindPauliMC:
		return buildPauliMC(req.Params, env)
	case jobs.KindReadoutMC:
		return buildReadoutMC(req.Params, env)
	case jobs.KindScalabilityAnalyze:
		return buildScalabilityAnalyze(req.Params)
	case jobs.KindDSEPoint:
		return buildDSEPoint(req.Params)
	case jobs.KindDSESweep:
		return buildDSESweep(req.Params, env)
	default:
		return buildScalabilitySweep(req.Params)
	}
}

// decodeParams strictly decodes raw params into dst (nil/empty raw = all
// defaults). Unknown fields are configuration errors so a typo'd option can
// never silently fall back to a default.
func decodeParams(raw json.RawMessage, dst any) error {
	if len(raw) == 0 {
		raw = json.RawMessage("{}")
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return simerr.Invalidf("service: bad params: %v", err)
	}
	return nil
}

// keyedParams projects normalized params into the canonical key/body form:
// the worker count is removed (execution hint — does not change the result
// bytes), everything else is kept.
func keyedParams(params any) (map[string]any, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, simerr.Invalidf("service: marshal params: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, simerr.Invalidf("service: reparse params: %v", err)
	}
	delete(m, "workers")
	return m, nil
}

// requestKey derives the content address of a normalized request.
func requestKey(kind jobs.Kind, params any, seed int64, shardSize int) (rescache.Key, map[string]any, error) {
	m, err := keyedParams(params)
	if err != nil {
		return "", nil, err
	}
	// seed and shard_size live in the envelope, not the params object.
	delete(m, "seed")
	delete(m, "shard_size")
	key, err := rescache.KeyFor(string(kind), m, seed, shardSize)
	if err != nil {
		return "", nil, simerr.Invalidf("service: key request: %v", err)
	}
	return key, m, nil
}

// resultEnvelope is the stored/streamed result body: self-describing
// (kind + the exact normalized request that produced it) and byte-
// deterministic — encoding/json sorts all map keys, and the embedded result
// structs marshal deterministically.
type resultEnvelope struct {
	Kind      string         `json:"kind"`
	Key       rescache.Key   `json:"key"`
	Params    map[string]any `json:"params"`
	Seed      int64          `json:"seed"`
	ShardSize int            `json:"shard_size,omitempty"`
	Result    any            `json:"result"`
}

func marshalEnvelope(kind jobs.Kind, key rescache.Key, params map[string]any, seed int64, shardSize int, result any) ([]byte, error) {
	body, err := json.Marshal(resultEnvelope{
		Kind: string(kind), Key: key, Params: params, Seed: seed, ShardSize: shardSize, Result: result,
	})
	if err != nil {
		return nil, simerr.Numericalf("service: marshal result: %v", err)
	}
	return body, nil
}

// ---- surface.mc: phenomenological surface-code Monte-Carlo decoder ----

type surfaceMCParams struct {
	Distance  int      `json:"distance"`
	P         *float64 `json:"p"`
	Q         *float64 `json:"q"`
	Rounds    int      `json:"rounds"`
	Shots     int      `json:"shots"`
	Seed      int64    `json:"seed"`
	RelSE     float64  `json:"rel_se"`
	ShardSize int      `json:"shard_size"`
	Workers   int      `json:"workers,omitempty"`
}

// normalizeSurfaceMC decodes and defaults surface.mc params. The same
// normalization runs on the submitting server and on fleet workers
// rebuilding a core from a grant, so both sides agree on the geometry.
func normalizeSurfaceMC(raw json.RawMessage) (surfaceMCParams, error) {
	var p surfaceMCParams
	if err := decodeParams(raw, &p); err != nil {
		return p, err
	}
	// Defaults mirror `qisim mc` (zero seed means "the default seed").
	if p.Distance == 0 {
		p.Distance = 11
	}
	if p.P == nil {
		p.P = f64(0.005)
	}
	if p.Q == nil {
		p.Q = f64(0.005)
	}
	if p.Rounds == 0 {
		p.Rounds = p.Distance
	}
	if p.Shots == 0 {
		p.Shots = 200000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ShardSize == 0 {
		p.ShardSize = simrun.DefaultShardSize
	}
	return p, nil
}

func buildSurfaceMC(raw json.RawMessage, env buildEnv) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	p, err := normalizeSurfaceMC(raw)
	if err != nil {
		return "", "", nil, err
	}
	key, keyed, err := requestKey(jobs.KindSurfaceMC, p, p.Seed, p.ShardSize)
	if err != nil {
		return "", "", nil, err
	}
	pp := p // captured normalized copy
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		if env.dist != nil {
			core, err := surfaceCore(pp, key, keyed)
			if err != nil {
				return nil, simrun.Status{}, err
			}
			body, st, handled, err := env.runDist(ctx, jobs.KindSurfaceMC, key, core, surfacePlan(pp), pp, progress)
			if handled {
				return body, st, err
			}
		}
		opt := simrun.Options{Workers: pp.Workers, ShardSize: pp.ShardSize,
			TargetRelStdErr: pp.RelSE, Progress: progress}
		sv, err := env.attachCheckpoint(ctx, &opt, checkpoint.Meta{
			Kind: string(jobs.KindSurfaceMC), Key: string(key), Seed: pp.Seed,
			ShardSize: pp.ShardSize, Budget: pp.Shots, TargetRelStdErr: pp.RelSE,
		})
		if err != nil {
			return nil, simrun.Status{}, err
		}
		res, err := surface.MonteCarloPhenomenologicalCtx(ctx, pp.Distance, *pp.P, *pp.Q,
			pp.Rounds, pp.Shots, pp.Seed, opt)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		env.finishCheckpoint(sv, res.Status.Truncated)
		out := struct {
			surface.DecoderResult
			Rate float64 `json:"logical_error_rate"`
		}{res, res.Rate()}
		body, err := marshalEnvelope(jobs.KindSurfaceMC, key, keyed, pp.Seed, pp.ShardSize, out)
		return body, res.Status, err
	}
	return jobs.KindSurfaceMC, key, run, nil
}

// ---- pauli.mc: QASM → compile → cycle sim → Pauli-channel fidelity MC ----

type pauliMCParams struct {
	QASM      string  `json:"qasm"`
	Machine   string  `json:"machine"`
	Arch      string  `json:"arch"`
	Shots     int     `json:"shots"`
	Seed      int64   `json:"seed"`
	PeriodNS  float64 `json:"period_ns"`
	RelSE     float64 `json:"rel_se"`
	ShardSize int     `json:"shard_size"`
	Workers   int     `json:"workers,omitempty"`
}

// normalizePauliMC decodes and defaults pauli.mc params, resolves the
// machine's error rates and compiles the program — malformed requests
// surface here as typed configuration errors (before a queue slot is
// spent server-side, before any execution worker-side).
func normalizePauliMC(raw json.RawMessage) (pauliMCParams, pauli.ErrorRates, *compile.Executable, error) {
	var p pauliMCParams
	if err := decodeParams(raw, &p); err != nil {
		return p, pauli.ErrorRates{}, nil, err
	}
	if p.QASM == "" {
		return p, pauli.ErrorRates{}, nil, simerr.Invalidf("service: pauli.mc needs a qasm program")
	}
	if p.Machine == "" {
		p.Machine = "ibm_mumbai"
	}
	if p.Arch == "" {
		p.Arch = "cmos"
	}
	if p.Arch != "cmos" && p.Arch != "sfq" {
		return p, pauli.ErrorRates{}, nil, simerr.Invalidf("service: arch must be cmos or sfq, got %q", p.Arch)
	}
	if p.Shots == 0 {
		p.Shots = 4000
	}
	if p.Seed == 0 {
		p.Seed = 3
	}
	if p.PeriodNS == 0 {
		p.PeriodNS = 100
	}
	if p.PeriodNS < 0 {
		return p, pauli.ErrorRates{}, nil, simerr.Invalidf("service: period_ns must be positive, got %v", p.PeriodNS)
	}
	if p.ShardSize == 0 {
		p.ShardSize = simrun.DefaultShardSize
	}
	var rates pauli.ErrorRates
	found := false
	for _, m := range validate.Machines() {
		if m.Name == p.Machine {
			rates, found = m.Rates, true
			break
		}
	}
	if !found {
		return p, pauli.ErrorRates{}, nil, simerr.Invalidf("service: unknown machine %q", p.Machine)
	}
	prog, err := qasm.Parse(p.QASM)
	if err != nil {
		return p, pauli.ErrorRates{}, nil, err
	}
	ex, err := compileProgram(prog)
	if err != nil {
		return p, pauli.ErrorRates{}, nil, err
	}
	return p, rates, ex, nil
}

func buildPauliMC(raw json.RawMessage, env buildEnv) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	p, rates, ex, err := normalizePauliMC(raw)
	if err != nil {
		return "", "", nil, err
	}
	key, keyed, err := requestKey(jobs.KindPauliMC, p, p.Seed, p.ShardSize)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		if env.dist != nil {
			core, err := pauliCore(pp, rates, ex, key, keyed)
			if err != nil {
				return nil, simrun.Status{}, err
			}
			body, st, handled, err := env.runDist(ctx, jobs.KindPauliMC, key, core, pauliPlan(pp), pp, progress)
			if handled {
				return body, st, err
			}
		}
		cfg := cyclesim.CMOSConfig()
		if pp.Arch == "sfq" {
			cfg = cyclesim.SFQConfig(1)
		}
		simRes, err := cyclesim.Run(ex, cfg)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		pcfg := pauli.DefaultConfig(rates)
		pcfg.Shots = pp.Shots
		pcfg.Seed = pp.Seed
		pcfg.DecoherencePeriod = pp.PeriodNS * 1e-9
		opt := simrun.Options{Workers: pp.Workers, ShardSize: pp.ShardSize,
			TargetRelStdErr: pp.RelSE, Progress: progress}
		sv, err := env.attachCheckpoint(ctx, &opt, checkpoint.Meta{
			Kind: string(jobs.KindPauliMC), Key: string(key), Seed: pp.Seed,
			ShardSize: pp.ShardSize, Budget: pp.Shots, TargetRelStdErr: pp.RelSE,
		})
		if err != nil {
			return nil, simrun.Status{}, err
		}
		mc, err := pauli.MonteCarloCtx(ctx, simRes, pcfg, opt)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		env.finishCheckpoint(sv, mc.Status.Truncated)
		out := struct {
			pauli.MCResult
			ESP        float64 `json:"esp"`
			MakespanNS float64 `json:"makespan_ns"`
		}{mc, pauli.ESP(simRes, pcfg), simRes.TotalTime * 1e9}
		body, err := marshalEnvelope(jobs.KindPauliMC, key, keyed, pp.Seed, pp.ShardSize, out)
		return body, mc.Status, err
	}
	return jobs.KindPauliMC, key, run, nil
}

// ---- readout.mc: multi-round early-decision readout Monte-Carlo ----

type readoutMCParams struct {
	Range     *float64 `json:"range"`
	MaxRounds int      `json:"max_rounds"`
	Shots     int      `json:"shots"`
	Seed      int64    `json:"seed"`
	RelSE     float64  `json:"rel_se"`
	ShardSize int      `json:"shard_size"`
	Workers   int      `json:"workers,omitempty"`
}

// normalizeReadoutMC decodes and defaults readout.mc params.
func normalizeReadoutMC(raw json.RawMessage) (readoutMCParams, error) {
	var p readoutMCParams
	if err := decodeParams(raw, &p); err != nil {
		return p, err
	}
	def := readout.DefaultMultiRoundConfig()
	if p.Range == nil {
		p.Range = f64(def.Range) // explicit 0 is a meaningful (degenerate) range
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = def.MaxRounds
	}
	if p.Shots == 0 {
		p.Shots = def.Shots
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.ShardSize == 0 {
		p.ShardSize = simrun.DefaultShardSize
	}
	return p, nil
}

func buildReadoutMC(raw json.RawMessage, env buildEnv) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	p, err := normalizeReadoutMC(raw)
	if err != nil {
		return "", "", nil, err
	}
	key, keyed, err := requestKey(jobs.KindReadoutMC, p, p.Seed, p.ShardSize)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		if env.dist != nil {
			core, err := readoutCore(pp, key, keyed)
			if err != nil {
				return nil, simrun.Status{}, err
			}
			body, st, handled, err := env.runDist(ctx, jobs.KindReadoutMC, key, core, readoutPlan(pp), pp, progress)
			if handled {
				return body, st, err
			}
		}
		cfg := readout.MultiRoundConfig{
			Range: *pp.Range, MaxRounds: pp.MaxRounds, Shots: pp.Shots, Seed: pp.Seed,
		}
		opt := simrun.Options{Workers: pp.Workers, ShardSize: pp.ShardSize,
			TargetRelStdErr: pp.RelSE, Progress: progress}
		sv, err := env.attachCheckpoint(ctx, &opt, checkpoint.Meta{
			Kind: string(jobs.KindReadoutMC), Key: string(key), Seed: pp.Seed,
			ShardSize: pp.ShardSize, Budget: pp.Shots, TargetRelStdErr: pp.RelSE,
		})
		if err != nil {
			return nil, simrun.Status{}, err
		}
		res, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), cfg, opt)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		env.finishCheckpoint(sv, res.Status.Truncated)
		body, err := marshalEnvelope(jobs.KindReadoutMC, key, keyed, pp.Seed, pp.ShardSize, res)
		return body, res.Status, err
	}
	return jobs.KindReadoutMC, key, run, nil
}

// ---- scalability.analyze: design-point scalability verdicts ----

type scalabilityAnalyzeParams struct {
	Designs  []string `json:"designs"`
	Distance int      `json:"distance"`
	Extended bool     `json:"extended"`
	Workers  int      `json:"workers,omitempty"`
}

func scalabilityOptions(distance int, extended bool) scalability.Options {
	opt := scalability.DefaultOptions()
	if extended {
		opt = scalability.ExtendedOptions()
	}
	opt.Distance = distance
	return opt
}

func buildScalabilityAnalyze(raw json.RawMessage) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	var p scalabilityAnalyzeParams
	if err := decodeParams(raw, &p); err != nil {
		return "", "", nil, err
	}
	if p.Distance == 0 {
		p.Distance = 23
	}
	for _, name := range p.Designs {
		if _, ok := findDesign(name); !ok {
			return "", "", nil, simerr.Invalidf("service: unknown design %q", name)
		}
	}
	// Analyses are deterministic and seedless: seed 0 / shard 0 in the key.
	key, keyed, err := requestKey(jobs.KindScalabilityAnalyze, p, 0, 0)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		opt := scalabilityOptions(pp.Distance, pp.Extended)
		opt.Workers = pp.Workers
		opt.Progress = progress
		var as []scalability.Analysis
		var status simrun.Status
		if len(pp.Designs) == 0 {
			var err error
			as, status, err = scalability.AnalyzeAllCtx(ctx, opt)
			if err != nil {
				return nil, simrun.Status{}, err
			}
		} else {
			status = simrun.Status{Requested: len(pp.Designs), StopReason: simrun.StopCompleted}
			for i, name := range pp.Designs {
				if cerr := ctx.Err(); cerr != nil {
					status.Truncated = true
					status.StopReason = simrun.StopCanceled
					break
				}
				d, _ := findDesign(name)
				a, err := scalability.AnalyzeChecked(d, opt)
				if err != nil {
					return nil, simrun.Status{}, err
				}
				as = append(as, a)
				status.Completed = i + 1
				progress(i+1, len(pp.Designs))
			}
		}
		exported := make([]scalability.ExportedAnalysis, len(as))
		for i, a := range as {
			exported[i] = scalability.Export(a)
		}
		out := struct {
			Analyses []scalability.ExportedAnalysis `json:"analyses"`
			Status   simrun.Status                  `json:"status"`
		}{exported, status}
		body, err := marshalEnvelope(jobs.KindScalabilityAnalyze, key, keyed, 0, 0, out)
		return body, status, err
	}
	return jobs.KindScalabilityAnalyze, key, run, nil
}

// ---- scalability.sweep: qubit-count sweep of one design ----

type scalabilitySweepParams struct {
	Design      string `json:"design"`
	QubitCounts []int  `json:"qubit_counts"`
	Distance    int    `json:"distance"`
	Extended    bool   `json:"extended"`
	Workers     int    `json:"workers,omitempty"`
}

func buildScalabilitySweep(raw json.RawMessage) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	var p scalabilitySweepParams
	if err := decodeParams(raw, &p); err != nil {
		return "", "", nil, err
	}
	if p.Distance == 0 {
		p.Distance = 23
	}
	if p.Design == "" {
		return "", "", nil, simerr.Invalidf("service: scalability.sweep needs a design name")
	}
	d, ok := findDesign(p.Design)
	if !ok {
		return "", "", nil, simerr.Invalidf("service: unknown design %q", p.Design)
	}
	if len(p.QubitCounts) == 0 {
		return "", "", nil, simerr.Invalidf("service: scalability.sweep needs at least one qubit count")
	}
	for _, n := range p.QubitCounts {
		if n <= 0 {
			return "", "", nil, simerr.Invalidf("service: qubit count must be positive, got %d", n)
		}
	}
	key, keyed, err := requestKey(jobs.KindScalabilitySweep, p, 0, 0)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		opt := scalabilityOptions(pp.Distance, pp.Extended)
		opt.Workers = pp.Workers
		opt.Progress = progress
		res, err := scalability.SweepCtx(ctx, d, pp.QubitCounts, opt)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		body, err := marshalEnvelope(jobs.KindScalabilitySweep, key, keyed, 0, 0, res)
		return body, res.Status, err
	}
	return jobs.KindScalabilitySweep, key, run, nil
}

func findDesign(name string) (microarch.Design, bool) {
	for _, d := range microarch.AllDesigns() {
		if d.Name == name {
			return d, true
		}
	}
	return microarch.Design{}, false
}

func f64(v float64) *float64 { return &v }

// compileProgram is the QASM→executable step (kept tiny so the pauli.mc
// builder reads linearly).
func compileProgram(prog *qasm.Program) (*compile.Executable, error) {
	return compile.Compile(prog, compile.DefaultOptions())
}
