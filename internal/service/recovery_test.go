package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qisim/internal/checkpoint"
	"qisim/internal/jobs"
	"qisim/internal/rescache"
	"qisim/internal/simrun"
)

// slowMC is a run long enough to be killed mid-flight but bounded enough to
// finish promptly when resumed (serial worker, small shards → many commits).
const slowMCParams = `{"distance":5,"shots":40000,"shard_size":256,"seed":9,"workers":1}`

func submitRaw(t *testing.T, ts *httptest.Server, body string) (int, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

// TestRecoveryResumesInterruptedJob is the daemon-crash contract end to
// end: life 1 accepts a job, journals it, checkpoints its shard prefix and
// "crashes" (base-context cancel + drain → the job lands truncated,
// journaled as still-pending). Life 2 on the same data dir replays the
// journal, resumes the job from its checkpoint, and completes it — with
// result bytes identical to a never-interrupted run, the recovery counters
// set, the completed result cacheable, and the checkpoint retired.
func TestRecoveryResumesInterruptedJob(t *testing.T) {
	dataDir := t.TempDir()
	req := fmt.Sprintf(`{"kind":"surface.mc","params":%s}`, slowMCParams)

	// Cold reference: the same request on a pristine in-memory server.
	coldSrv, coldTS := newTestServer(t, Config{Workers: 2})
	_, coldSub := submitRaw(t, coldTS, req)
	coldSnap, err := coldSrv.Manager().Wait(context.Background(), coldSub.Job.ID)
	if err != nil || coldSnap.State != jobs.StateDone {
		t.Fatalf("cold run: %v (%+v)", err, coldSnap)
	}
	coldBytes := string(coldSnap.Result)

	// Life 1: accept the job, let it commit some shards, then "crash".
	base1, crash := context.WithCancel(context.Background())
	srv1, err := New(Config{Workers: 1, DataDir: dataDir, BaseContext: base1})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	if _, err := srv1.Recover(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	code, sub := submitRaw(t, ts1, req)
	if code != http.StatusAccepted {
		t.Fatalf("life-1 submit: HTTP %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := srv1.Manager().Get(sub.Job.ID)
		if snap.Progress.Completed >= 2*256 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never committed a shard prefix")
		}
		time.Sleep(2 * time.Millisecond)
	}
	crash() // the "power cut": every in-flight run is cancelled mid-flight
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv1.Drain(dctx); err != nil {
		t.Fatalf("life-1 drain: %v", err)
	}
	ts1.Close()
	killed, _ := srv1.Manager().Get(sub.Job.ID)
	if killed.State != jobs.StateDone || killed.Status == nil || !killed.Status.Truncated {
		t.Fatalf("life-1 job not a truncated partial: %+v", killed)
	}
	ckpt := checkpoint.PathFor(filepath.Join(dataDir, "checkpoints"), string(sub.Job.Key))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}

	// Life 2: fresh server, same data dir.
	srv2, err := New(Config{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Drain(ctx)
	})
	n, err := srv2.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v, want exactly the interrupted job", n, err)
	}
	// Wait for the recovered job to finish, then fetch it via the cache:
	// a resumed-complete result must be cacheable.
	for srv2.Manager().InFlight() > 0 {
		if time.Now().After(deadline.Add(20 * time.Second)) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	body, ok := srv2.Cache().Get(rescache.Key(sub.Job.Key))
	if !ok {
		t.Fatal("recovered result not cached")
	}
	if string(body) != coldBytes {
		t.Fatalf("recovered result differs from the uninterrupted run:\n got  %.120s...\n want %.120s...", body, coldBytes)
	}
	if v := scrapeMetric(t, ts2, "qisimd_jobs_recovered_total"); v != 1 {
		t.Errorf("qisimd_jobs_recovered_total = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts2, "qisimd_jobs_resumed_total"); v != 1 {
		t.Errorf("qisimd_jobs_resumed_total = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts2, "qisimd_journal_replayed_entries_total"); v < 2 {
		t.Errorf("qisimd_journal_replayed_entries_total = %v, want >= 2 (submit + truncated)", v)
	}
	if v := scrapeMetric(t, ts2, "qisimd_checkpoints_saved_total"); v < 1 {
		t.Errorf("qisimd_checkpoints_saved_total = %v, want >= 1", v)
	}
	// The completed job's checkpoint is retired; the journal resolves it.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not retired after completion: %v", err)
	}
}

// TestRecoveryColdStartWithoutCheckpoint covers the journal-entry-without-
// checkpoint case: the daemon died after accepting a job but before its
// first shard committed. Recovery must simply run it cold to the same
// result — a missing snapshot is a cold start, never an error.
func TestRecoveryColdStartWithoutCheckpoint(t *testing.T) {
	dataDir := t.TempDir()
	// Write the journal of a life that accepted one job and died instantly.
	j, err := jobs.OpenJournal(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	params := json.RawMessage(`{"distance":3,"shots":256,"shard_size":64,"seed":5}`)
	_, key, _, err := buildJob(jobRequest{Kind: "surface.mc", Params: params}, buildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(jobs.OpSubmit, jobs.KindSurfaceMC, key, params); err != nil {
		t.Fatal(err)
	}
	j.Close()

	srv, err := New(Config{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	n, err := srv.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for srv.Manager().InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	body, ok := srv.Cache().Get(key)
	if !ok {
		t.Fatal("cold-recovered job did not complete into the cache")
	}
	// Cross-check against the in-memory reference server.
	refSrv, _ := newTestServer(t, Config{Workers: 1})
	kind, _, run, err := buildJob(jobRequest{Kind: "surface.mc", Params: params}, buildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := refSrv.Manager().Submit(kind, key, params, run)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refSrv.Manager().Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(ref.Result) {
		t.Fatal("cold-recovered result differs from reference")
	}
}

// TestReadyzGates walks the readiness lifecycle: recovering → ready →
// saturated → draining, while /healthz stays a pure liveness signal.
func TestReadyzGates(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]string
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m["status"]
	}

	if code, st := status("/readyz"); code != http.StatusServiceUnavailable || st != "recovering" {
		t.Fatalf("pre-recovery readyz: %d %q, want 503 recovering", code, st)
	}
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must be live during recovery, got %d", code)
	}
	if _, err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	if code, st := status("/readyz"); code != http.StatusOK || st != "ready" {
		t.Fatalf("post-recovery readyz: %d %q", code, st)
	}

	// Saturate: one job occupies the single worker, one fills the queue.
	block := make(chan struct{})
	release := func() { close(block) }
	slow := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return []byte(`{}`), simrun.Status{StopReason: simrun.StopCompleted}, nil
	}
	if _, _, err := srv.Manager().Submit(jobs.KindSurfaceMC, rescache.Key(strings.Repeat("1", 64)), nil, slow); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Manager().QueueDepth() > 0 { // wait for the worker to take it
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := srv.Manager().Submit(jobs.KindSurfaceMC, rescache.Key(strings.Repeat("2", 64)), nil, slow); err != nil {
		t.Fatal(err)
	}
	if code, st := status("/readyz"); code != http.StatusServiceUnavailable || st != "saturated" {
		t.Fatalf("saturated readyz: %d %q", code, st)
	}
	release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, st := status("/readyz"); code != http.StatusServiceUnavailable || st != "draining" {
		t.Fatalf("draining readyz: %d %q", code, st)
	}
	if code, _ := status("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", code)
	}
}

// TestSubmitBodyTooLarge checks the request-body bound: an oversized POST is
// refused with 413 before it is buffered, and counted under its own
// rejection reason.
func TestSubmitBodyTooLarge(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	_ = srv
	big := fmt.Sprintf(`{"kind":"pauli.mc","params":{"qasm":%q}}`,
		strings.Repeat("x", 4096))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	if v := scrapeMetric(t, ts, `qisimd_jobs_rejected_total{reason="too-large"}`); v != 1 {
		t.Errorf("too-large rejections = %v, want 1", v)
	}
	// A regular small request still goes through on the same server.
	code, _ := submitRaw(t, ts, smallMC)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("small request after a 413: HTTP %d", code)
	}
}
