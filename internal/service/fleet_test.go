package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/chaos"
	"qisim/internal/dist"
	"qisim/internal/metrics"
	"qisim/internal/obs"
)

// startObservedFleet is startFleet with the federation wiring a real
// `qisimd -role worker` process carries: each worker samples its own
// registry's summary onto renewals and reports, observes unit wall clock
// into qisimd_worker_unit_seconds, and exports qisimd_worker_units_total.
func startObservedFleet(t *testing.T, ts *httptest.Server, n int) []*dist.Worker {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	workers := make([]*dist.Worker, n)
	for i := 0; i < n; i++ {
		client := &dist.Client{Base: ts.URL}
		id := fmt.Sprintf("obs-w%d", i)
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			cancel()
			t.Fatalf("pre-register %s: %v", id, err)
		}
		wreg := metrics.New()
		unitSeconds := wreg.Histogram("qisimd_worker_unit_seconds",
			"Work-unit execution wall clock on this worker.",
			metrics.DefaultLatencyBuckets())
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1), Trace: true,
			Metrics: wreg.Summary, UnitSeconds: unitSeconds.Observe,
		})
		if err != nil {
			cancel()
			t.Fatalf("NewWorker: %v", err)
		}
		fw := w
		wreg.CounterFunc("qisimd_worker_units_total",
			"Work units fully executed by this worker.",
			func() float64 { return float64(fw.Stats().Executions) })
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return workers
}

// TestFleetStatusEndpoint covers /v1/fleet/status on a coordinator: every
// registered worker appears with its state and last-heartbeat age, the
// dispatch stats are present, ?format=tree renders, and an unknown format
// is a 400.
func TestFleetStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Dist: DistConfig{
		Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4,
	}})
	startFleet(t, ts, 2)
	runToBytes(t, ts, `{"kind":"surface.mc","params":{"distance":3,"shots":2000,"shard_size":128,"seed":11}}`)

	code, body := getBody(t, ts.URL+"/v1/fleet/status")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var view fleetStatusView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !view.Enabled || len(view.Workers) != 2 {
		t.Fatalf("want an enabled view with 2 workers, got %+v", view)
	}
	for _, w := range view.Workers {
		if w.State != "healthy" {
			t.Errorf("worker %s state %q, want healthy", w.ID, w.State)
		}
		if w.LastSeenAgeMS < 0 {
			t.Errorf("worker %s never seen despite finishing a job", w.ID)
		}
	}
	if view.Stats.UnitsDone == 0 {
		t.Fatalf("dispatch stats missing from status: %+v", view.Stats)
	}

	code, body = getBody(t, ts.URL+"/v1/fleet/status?format=tree")
	if code != http.StatusOK || !strings.Contains(string(body), "fleet: 2 workers") {
		t.Fatalf("tree render (%d):\n%s", code, body)
	}
	if code, _ = getBody(t, ts.URL+"/v1/fleet/status?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", code)
	}
}

// TestFleetStatusOnStandalone: a non-coordinator answers the same query
// with enabled=false instead of erroring, so one dashboard query works
// against any role.
func TestFleetStatusOnStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body := getBody(t, ts.URL+"/v1/fleet/status")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var view fleetStatusView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Enabled || len(view.Workers) != 0 {
		t.Fatalf("standalone fleet view: %+v", view)
	}
	if code, body := getBody(t, ts.URL+"/v1/fleet/status?format=tree"); code != http.StatusOK ||
		!strings.Contains(string(body), "not a coordinator") {
		t.Fatalf("tree on standalone (%d): %s", code, body)
	}
}

// TestFederatedFleetSeries: after a fleet run with summary-shipping
// workers, the coordinator's own /metrics carries per-worker qisimd_fleet_*
// series — both its bookkeeping gauges and the workers' federated counters
// and merged unit-seconds histogram — and /v1/fleet/status marks the rows
// federated.
func TestFederatedFleetSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Dist: DistConfig{
		Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4,
	}})
	startObservedFleet(t, ts, 2)
	runToBytes(t, ts, `{"kind":"surface.mc","params":{"distance":3,"shots":2000,"shard_size":128,"seed":11}}`)

	if n := scrapeMetric(t, ts, `qisimd_fleet_workers{state="healthy"}`); n != 2 {
		t.Fatalf("fleet_workers{healthy} = %v, want 2", n)
	}
	var unitsTotal float64
	for i := 0; i < 2; i++ {
		series := fmt.Sprintf(`qisimd_fleet_worker_leases{worker="obs-w%d"}`, i)
		if got := scrapeMetric(t, ts, series); got != 0 {
			t.Errorf("%s = %v after the job drained, want 0", series, got)
		}
		unitsTotal += scrapeMetric(t, ts,
			fmt.Sprintf(`qisimd_fleet_worker_units_total{worker="obs-w%d"}`, i))
	}
	if unitsTotal == 0 {
		t.Fatal("no qisimd_fleet_worker_units_total series — federated summaries never arrived")
	}
	if n := scrapeMetric(t, ts, "qisimd_fleet_unit_seconds_count"); n == 0 {
		t.Fatal("federated qisimd_fleet_unit_seconds histogram is empty")
	}

	var view fleetStatusView
	_, body := getBody(t, ts.URL+"/v1/fleet/status")
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	var federated int
	for _, w := range view.Workers {
		if w.Federated && w.UnitsDone > 0 {
			federated++
		}
	}
	if federated == 0 {
		t.Fatalf("no federated worker rows in fleet status: %s", body)
	}
}

// TestREDSeriesOnRoutes: the RED middleware measures every route under its
// mux pattern — explicit statuses, implicit 200s, and pattern-labelled
// errors (no per-URL series explosion).
func TestREDSeriesOnRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
			t.Fatalf("healthz: %d", code)
		}
	}
	if n := scrapeMetric(t, ts, `qisimd_http_requests_total{route="/healthz",method="GET",code="200"}`); n != 3 {
		t.Fatalf("healthz RED count = %v, want 3", n)
	}
	if n := scrapeMetric(t, ts, `qisimd_http_request_seconds_count{route="/healthz"}`); n != 3 {
		t.Fatalf("healthz latency count = %v, want 3", n)
	}
	if code, _ := getBody(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
	if n := scrapeMetric(t, ts, `qisimd_http_requests_total{route="/v1/jobs/{id}",method="GET",code="404"}`); n != 1 {
		t.Fatalf("pattern-labelled 404 count = %v, want 1", n)
	}
}

// TestChaosInjectionExportAndFlight: injected faults surface in
// qisimd_chaos_injected_total{side,fault} and the flight recorder; a
// registered client-side source folds into the same family; and because
// RED composes OUTSIDE the chaos middleware, the injected 5xx responses
// are measured as real traffic.
func TestChaosInjectionExportAndFlight(t *testing.T) {
	spec := &chaos.Spec{Seed: 42, Error5xx: chaos.Burst5xxSpec{P: 1}} // every dist request 5xxes
	srv, ts := newTestServer(t, Config{Workers: 1, Dist: DistConfig{
		Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4, Chaos: spec,
	}})
	srv.RegisterChaosStats("client", func() chaos.Stats {
		return chaos.Stats{"requests": 9, chaos.FaultDrop: 4}
	})

	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/dist/claim", "application/json",
			strings.NewReader(`{"worker":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503 injected", i, resp.StatusCode)
		}
	}
	if n := scrapeMetric(t, ts, `qisimd_chaos_injected_total{side="server",fault="error5xx"}`); n < 1 {
		t.Fatalf("server error5xx injections = %v, want >= 1", n)
	}
	if n := scrapeMetric(t, ts, `qisimd_chaos_injected_total{side="client",fault="drop"}`); n != 4 {
		t.Fatalf("client drop injections = %v, want 4", n)
	}
	// The injectors' raw-traffic counter is not a fault and must stay out.
	if n := scrapeMetric(t, ts, `qisimd_chaos_injected_total{side="client",fault="requests"}`); n != 0 {
		t.Fatalf("traffic counter leaked into the fault export: %v", n)
	}
	var chaosEvents int
	for _, ev := range srv.Flight().Snapshot().Events {
		if ev.Kind == "chaos.inject" {
			chaosEvents++
		}
	}
	if chaosEvents == 0 {
		t.Fatal("no chaos.inject flight events recorded")
	}
	if n := scrapeMetric(t, ts, `qisimd_http_requests_total{route="/v1/dist/claim",method="POST",code="503"}`); n != 5 {
		t.Fatalf("RED did not measure the injected 5xxes: %v, want 5", n)
	}
}

// TestBuildInfoGauge: the constant build-identity series is always present.
func TestBuildInfoGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `qisimd_build_info{version=`) {
		t.Fatalf("qisimd_build_info missing from /metrics")
	}
}

// TestFlightEndpointAndPersistence: /v1/debug/flight serves the ring as
// JSON and text, rejects unknown formats, and persistFlight (the panic
// backstop's sink) writes a decodable flight-last.json under the data dir.
func TestFlightEndpointAndPersistence(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	srv.Flight().Record("test.marker", obs.String("k", "v"))

	code, body := getBody(t, ts.URL+"/v1/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("flight: %d", code)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("decode flight dump: %v", err)
	}
	found := false
	for _, ev := range dump.Events {
		if ev.Kind == "test.marker" {
			found = true
		}
	}
	if !found {
		t.Fatalf("marker event missing from dump (%d events)", len(dump.Events))
	}
	if code, body := getBody(t, ts.URL+"/v1/debug/flight?format=text"); code != http.StatusOK ||
		!strings.Contains(string(body), "test.marker") {
		t.Fatalf("text dump (%d):\n%s", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/v1/debug/flight?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", code)
	}

	srv.persistFlight()
	raw, err := os.ReadFile(filepath.Join(dir, "flight-last.json"))
	if err != nil {
		t.Fatalf("flight-last.json: %v", err)
	}
	var persisted obs.FlightDump
	if err := json.Unmarshal(raw, &persisted); err != nil {
		t.Fatalf("decode persisted dump: %v", err)
	}
	if persisted.Recorded == 0 {
		t.Fatal("persisted dump is empty")
	}
}

// TestCoordinatorShutdownLeaksNoGoroutines: the observability plane's
// scrape-time funcs plus the coordinator's sweep/probe loops and a full
// fleet run through the federation path must all terminate on Drain —
// the goroutine count returns to the pre-server baseline.
func TestCoordinatorShutdownLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, err := New(Config{Workers: 2, Dist: DistConfig{
		Enabled: true, LeaseTTL: time.Second, UnitShards: 4,
	}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	// A fleet managed inline (not via t.Cleanup) so its goroutines are
	// provably gone before the final count.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		client := &dist.Client{Base: ts.URL}
		id := fmt.Sprintf("leak-w%d", i)
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
		wreg := metrics.New()
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1),
			Metrics: wreg.Summary,
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	runToBytes(t, ts, `{"kind":"surface.mc","params":{"distance":3,"shots":2000,"shard_size":128,"seed":11}}`)
	getBody(t, ts.URL+"/v1/fleet/status")
	getBody(t, ts.URL+"/metrics")

	cancel()
	wg.Wait()
	ts.Close()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitForGoroutines(t, baseline)
}
