package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/dist"
	"qisim/internal/jobs"
)

// runToBytes submits one job and returns its final result body.
func runToBytes(t *testing.T, ts *httptest.Server, body string) []byte {
	t.Helper()
	code, sr := postJob(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s: %s)", snap.State, snap.ErrorClass, snap.Error)
	}
	return []byte(snap.Result)
}

// startFleet registers and runs n HTTP workers against a coordinator server.
// Registration happens synchronously before return, so a job submitted
// afterwards sees a live fleet (no degraded fallback racing the test).
func startFleet(t *testing.T, ts *httptest.Server, n int) []*dist.Worker {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	workers := make([]*dist.Worker, n)
	for i := 0; i < n; i++ {
		client := &dist.Client{Base: ts.URL}
		id := fmt.Sprintf("fleet-w%d", i)
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			cancel()
			t.Fatalf("pre-register %s: %v", id, err)
		}
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1), Trace: true,
		})
		if err != nil {
			cancel()
			t.Fatalf("NewWorker: %v", err)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return workers
}

// TestFleetE2EMatchesStandalone is the service-level determinism pin: the
// same submission produces byte-identical result bodies from a standalone
// server and from a coordinator dispatching over real HTTP workers — and the
// fleet genuinely did the work (units were claimed, executed and reported
// remotely, not absorbed by the degraded local lane).
func TestFleetE2EMatchesStandalone(t *testing.T) {
	job := `{"kind":"surface.mc","params":{"distance":3,"shots":2000,"shard_size":128,"seed":11}}`

	_, solo := newTestServer(t, Config{Workers: 2})
	want := runToBytes(t, solo, job)

	coord, ts := newTestServer(t, Config{Workers: 2, Dist: DistConfig{
		Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4,
	}})
	workers := startFleet(t, ts, 2)
	got := runToBytes(t, ts, job)

	if !bytes.Equal(want, got) {
		t.Fatalf("fleet result differs from standalone:\n%s\n%s", clip(want), clip(got))
	}
	st := coord.Dist().Stats()
	if st.UnitsDone == 0 || st.Grants == 0 {
		t.Fatalf("fleet stats %+v — coordinator never dispatched remotely", st)
	}
	var execs int64
	for _, w := range workers {
		execs += w.Executions()
	}
	if execs == 0 {
		t.Fatal("no worker executed a unit — result came from the local lane")
	}
	if n := scrapeMetric(t, ts, "qisimd_degraded_runs_total"); n != 0 {
		t.Fatalf("degraded_runs_total = %v with a live fleet, want 0", n)
	}
	if n := scrapeMetric(t, ts, `qisimd_dist_leases_total{event="granted"}`); n < 1 {
		t.Fatalf("leases_total{granted} = %v, want >= 1", n)
	}
}

// TestDistDegradedFallsBackToLocal: a coordinator with zero registered
// workers still answers every submission — the run degrades to the
// in-process path, the result is byte-identical to a standalone server's,
// and qisimd_degraded_runs_total counts the fallback.
func TestDistDegradedFallsBackToLocal(t *testing.T) {
	job := `{"kind":"readout.mc","params":{"shots":2000,"shard_size":256,"seed":3}}`

	_, solo := newTestServer(t, Config{Workers: 2})
	want := runToBytes(t, solo, job)

	_, ts := newTestServer(t, Config{Workers: 2, Dist: DistConfig{
		Enabled: true, LeaseTTL: time.Second,
	}})
	got := runToBytes(t, ts, job)

	if !bytes.Equal(want, got) {
		t.Fatalf("degraded result differs from standalone:\n%s\n%s", clip(want), clip(got))
	}
	if n := scrapeMetric(t, ts, "qisimd_degraded_runs_total"); n < 1 {
		t.Fatalf("qisimd_degraded_runs_total = %v, want >= 1", n)
	}
}

// TestProbeSeesDrainingWorker: the coordinator's health probe reads a
// worker-side qisimd's /readyz — "ready" while serving, "draining" once the
// worker begins shutdown. Draining is a distinct state from dead: the
// coordinator stops extending its leases but does not evict it.
func TestProbeSeesDrainingWorker(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	probe := dist.ProbeHTTP(nil, 0)

	status, err := probe(context.Background(), ts.URL)
	if err != nil || status != "ready" {
		t.Fatalf("probe healthy: %q, %v; want \"ready\"", status, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, err = probe(context.Background(), ts.URL)
	if err != nil || status != "draining" {
		t.Fatalf("probe draining: %q, %v; want \"draining\"", status, err)
	}
}

// TestQueueFull429CarriesRetryAfter: satellite contract for well-behaved
// clients — a queue-full rejection tells them when to come back, and the
// shared backoff helper honors exactly this header.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	slow := func(seed int) string {
		return fmt.Sprintf(`{"kind":"surface.mc","params":{"distance":9,"shots":2000000,"shard_size":64,"seed":%d}}`, seed)
	}
	postJob(t, ts, slow(201))
	postJob(t, ts, slow(202))
	for seed := 203; seed < 220; seed++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow(seed)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 response missing Retry-After header")
			}
			return
		}
	}
	t.Fatal("queue never refused; cannot observe Retry-After")
}

// TestSubmitTimeoutTruncates: a per-request timeout_ms deadline truncates
// the run at the last committed shard — state DONE with a flagged partial,
// exactly like a drain, never a failure.
func TestSubmitTimeoutTruncates(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	long := `{"kind":"surface.mc","params":{"distance":9,"shots":4000000,"shard_size":64,"seed":13},"timeout_ms":150}`
	code, sr := postJob(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("timed-out job state %s (%s: %s), want done", snap.State, snap.ErrorClass, snap.Error)
	}
	if snap.Status == nil || !snap.Status.Truncated {
		t.Fatalf("status %+v, want Truncated", snap.Status)
	}
	if snap.Status.Completed >= snap.Status.Requested {
		t.Fatal("deadline did not actually truncate the run")
	}
}
