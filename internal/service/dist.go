// Fleet-coordinator wiring: per-kind dist execution cores, the
// /v1/dist/* worker endpoints, and the coordinator's metrics bridge.
//
// The same normalization + core construction runs on the coordinator (to
// fold and finish) and on every worker (to execute shard windows), so the
// merged result of a distributed run is byte-identical to the standalone
// path — see internal/dist's determinism contract.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"qisim/internal/chaos"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/dist"
	"qisim/internal/jobs"
	"qisim/internal/metrics"
	"qisim/internal/pauli"
	"qisim/internal/readout"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/surface"
)

// DistConfig turns the server into a fleet coordinator: Monte-Carlo jobs
// are split into leased work units across registered workers (with retry,
// work stealing, health-probe eviction and local-fallback degradation),
// and the /v1/dist/{register,claim,renew,report} endpoints are served.
// Workers run `qisimd -role worker -coordinator-url <this server>`.
type DistConfig struct {
	Enabled bool
	// LeaseTTL is the per-lease heartbeat deadline (default 15s).
	LeaseTTL time.Duration
	// UnitShards is the work-unit granularity in shards (default 4).
	UnitShards int
	// MaxAttempts bounds remote grants per unit before the unit degrades
	// to the coordinator's local lane (default 4).
	MaxAttempts int
	// SweepInterval / ProbeInterval pace expiry sweeps and worker health
	// probes (defaults LeaseTTL/4 and LeaseTTL).
	SweepInterval time.Duration
	ProbeInterval time.Duration
	// ProbeFailLimit evicts a worker after this many consecutive failed
	// probes (default 3).
	ProbeFailLimit int
	// SpotCheck is the seeded fraction of remote unit reports the
	// coordinator re-executes locally and compares byte-for-byte; a
	// mismatch quarantines the reporting worker (0 = off). See
	// dist.Config.SpotCheck.
	SpotCheck float64
	// Chaos, when non-nil, wraps the /v1/dist/* endpoints in the seeded
	// fault-injection middleware (latency, 5xx bursts, aborts, duplicated
	// deliveries) — the coordinator-side half of a chaos drill.
	Chaos *chaos.Spec
}

// distReportBodyLimit bounds a unit-result upload (per-shard states plus
// an optional worker trace — far below this in practice).
const distReportBodyLimit = 4 << 20

// initDist builds the coordinator, bridges its hooks into the metrics
// registry, and wires the shared result cache, journal and unit directory.
func (s *Server) initDist(cfg Config) {
	leases := s.reg.CounterVec("qisimd_dist_leases_total",
		"Lease events by type (granted, renewed, expired, done, adopted).", "event")
	retries := s.reg.Counter("qisimd_dist_unit_retries_total",
		"Work units requeued with backoff after losing every lease.")
	steals := s.reg.Counter("qisimd_dist_steals_total",
		"Straggler units hedge-dispatched to a second worker (first report wins).")
	evicts := s.reg.Counter("qisimd_dist_workers_evicted_total",
		"Workers evicted after consecutive health-probe failures.")
	readmits := s.reg.Counter("qisimd_dist_workers_readmitted_total",
		"Evicted workers re-admitted after a successful probe, claim or report.")
	localUnits := s.reg.Counter("qisimd_dist_local_units_total",
		"Work units executed on the coordinator's local lane (degraded or fleet down).")
	spotchecks := s.reg.CounterVec("qisimd_dist_spotcheck_total",
		"Spot-check verdicts on remote unit reports (pass, fail, error).", "result")
	quarantines := s.reg.Counter("qisimd_dist_quarantine_total",
		"Workers quarantined after a spot-check mismatch.")
	s.mDistUnitSeconds = s.reg.HistogramVec("qisimd_dist_unit_seconds",
		"Work-unit wall clock from grant to accepted report, per worker.",
		metrics.DefaultLatencyBuckets(), "worker")

	unitDir := ""
	if cfg.DataDir != "" {
		unitDir = filepath.Join(cfg.DataDir, "units")
	}
	s.dist = dist.NewCoordinator(dist.Config{
		LeaseTTL:       cfg.Dist.LeaseTTL,
		UnitShards:     cfg.Dist.UnitShards,
		MaxAttempts:    cfg.Dist.MaxAttempts,
		SweepInterval:  cfg.Dist.SweepInterval,
		ProbeInterval:  cfg.Dist.ProbeInterval,
		ProbeFailLimit: cfg.Dist.ProbeFailLimit,
		SpotCheck:      cfg.Dist.SpotCheck,
		Probe:          dist.ProbeHTTP(nil, 0),
		UnitDir:        unitDir,
		Journal:        s.journal,
		Cache:          s.cache,
		Logger:         cfg.Logger,
		Flight:         s.flight,
		Hooks: dist.Hooks{
			Lease:   func(event string) { leases.With(event).Inc() },
			Retry:   func() { retries.Inc() },
			Steal:   func() { steals.Inc() },
			Evict:   func() { evicts.Inc() },
			Readmit: func() { readmits.Inc() },
			Local:   func() { localUnits.Inc() },
			UnitDone: func(worker string, seconds float64) {
				s.mDistUnitSeconds.With(worker).Observe(seconds)
			},
			SpotCheck:  func(result string) { spotchecks.With(result).Inc() },
			Quarantine: func() { quarantines.Inc() },
		},
	})
	s.reg.CounterFunc("qisimd_dist_units_done_total",
		"Work units accepted into the fold.",
		func() float64 { return float64(s.dist.Stats().UnitsDone) })
	s.reg.CounterFunc("qisimd_dist_dup_reports_total",
		"Duplicate unit uploads dropped by the idempotent report path.",
		func() float64 { return float64(s.dist.Stats().DupReports) })
	s.reg.CounterFunc("qisimd_dist_unit_cache_hits_total",
		"Work units answered from the shared result tier before dispatch.",
		func() float64 { return float64(s.dist.Stats().CacheHits) })
	s.reg.CounterFunc("qisimd_dist_unit_file_reloads_total",
		"Work units reloaded from the unit directory after a coordinator restart.",
		func() float64 { return float64(s.dist.Stats().FileReloads) })
	s.reg.CounterFunc("qisimd_dist_idem_replays_total",
		"Duplicate claim deliveries answered from the idempotency record.",
		func() float64 { return float64(s.dist.Stats().IdemReplays) })
	s.reg.CounterFunc("qisimd_dist_quarantine_readmits_total",
		"Quarantined workers re-admitted after the quarantine window elapsed.",
		func() float64 { return float64(s.dist.Stats().QuarantineReadmits) })
	s.registerFleetMetrics()
}

// Dist exposes the fleet coordinator (nil unless DistConfig.Enabled).
func (s *Server) Dist() *dist.Coordinator { return s.dist }

// ---- /v1/dist/* worker endpoints ----

func (s *Server) handleDistRegister(w http.ResponseWriter, r *http.Request) {
	var info dist.WorkerInfo
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&info); err != nil {
		s.writeError(w, simerr.Invalidf("service: bad register body: %v", err))
		return
	}
	if err := s.dist.Register(r.Context(), info); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type distClaimRequest struct {
	Worker  string `json:"worker"`
	IdemKey string `json:"idem_key,omitempty"`
}

func (s *Server) handleDistClaim(w http.ResponseWriter, r *http.Request) {
	var req distClaimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		s.writeError(w, simerr.Invalidf("service: claim needs a worker id"))
		return
	}
	if s.mgr.Draining() {
		// A draining coordinator grants nothing; Retry-After tells the
		// fleet how long to back off before asking again.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "coordinator draining"})
		return
	}
	grant, err := s.dist.Claim(r.Context(), req.Worker, req.IdemKey)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

type distRenewRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
	// Metrics is the worker's piggybacked federation summary (optional).
	Metrics *metrics.Summary `json:"metrics,omitempty"`
}

// distRenewBodyLimit bounds a renew body: the base request is tiny, but the
// piggybacked metrics summary grows with the worker's registry.
const distRenewBodyLimit = 1 << 20

func (s *Server) handleDistRenew(w http.ResponseWriter, r *http.Request) {
	var req distRenewRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, distRenewBodyLimit)).Decode(&req); err != nil || req.Worker == "" {
		s.writeError(w, simerr.Invalidf("service: renew needs worker, key and range"))
		return
	}
	err := s.dist.Renew(r.Context(), req.Worker, req.Key, req.Start, req.End, req.Metrics)
	switch {
	case errors.Is(err, dist.ErrGone):
		writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
	case err != nil:
		s.writeError(w, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleDistReport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, distReportBodyLimit))
	if err != nil {
		s.writeError(w, err) // MaxBytesError → 413
		return
	}
	err = s.dist.Report(r.Context(), r.Header.Get("X-QIsim-Worker"), body)
	switch {
	case errors.Is(err, dist.ErrGone):
		// Quarantined reporter: abandon the unit, stop retrying.
		writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
	case err != nil:
		s.writeError(w, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// ---- per-kind execution cores ----
//
// Each core pairs the kind's shard sampler with a Finish that assembles
// the exact result envelope the standalone path marshals, so folded
// distributed results and local results cannot drift by a byte.

// BuildCore is the worker-side dist.CoreBuilder: it rebuilds a job kind's
// execution core from the raw normalized params carried in a lease grant.
func BuildCore(kind string, params json.RawMessage) (dist.Core, error) {
	switch jobs.Kind(kind) {
	case jobs.KindSurfaceMC:
		pp, err := normalizeSurfaceMC(params)
		if err != nil {
			return nil, err
		}
		key, keyed, err := requestKey(jobs.KindSurfaceMC, pp, pp.Seed, pp.ShardSize)
		if err != nil {
			return nil, err
		}
		return surfaceCore(pp, key, keyed)
	case jobs.KindPauliMC:
		pp, rates, ex, err := normalizePauliMC(params)
		if err != nil {
			return nil, err
		}
		key, keyed, err := requestKey(jobs.KindPauliMC, pp, pp.Seed, pp.ShardSize)
		if err != nil {
			return nil, err
		}
		return pauliCore(pp, rates, ex, key, keyed)
	case jobs.KindReadoutMC:
		pp, err := normalizeReadoutMC(params)
		if err != nil {
			return nil, err
		}
		key, keyed, err := requestKey(jobs.KindReadoutMC, pp, pp.Seed, pp.ShardSize)
		if err != nil {
			return nil, err
		}
		return readoutCore(pp, key, keyed)
	default:
		return nil, simerr.Invalidf("service: kind %q is not distributable", kind)
	}
}

func surfacePlan(pp surfaceMCParams) dist.Plan {
	return dist.Plan{Shots: pp.Shots, Seed: pp.Seed, ShardSize: pp.ShardSize,
		TargetRelStdErr: pp.RelSE}
}

func surfaceCore(pp surfaceMCParams, key rescache.Key, keyed map[string]any) (dist.Core, error) {
	run, merge, err := surface.PhenomenologicalCore(pp.Distance, *pp.P, *pp.Q, pp.Rounds)
	if err != nil {
		return nil, err
	}
	return dist.NewCore(dist.CoreSpec[int]{
		Run:   run,
		Merge: merge,
		Finish: func(failures int, st simrun.Status) ([]byte, error) {
			res := surface.DecoderResultFrom(failures, st)
			out := struct {
				surface.DecoderResult
				Rate float64 `json:"logical_error_rate"`
			}{res, res.Rate()}
			return marshalEnvelope(jobs.KindSurfaceMC, key, keyed, pp.Seed, pp.ShardSize, out)
		},
		Options: simrun.Options{Workers: pp.Workers},
	}), nil
}

func pauliPlan(pp pauliMCParams) dist.Plan {
	return dist.Plan{Shots: pp.Shots, Seed: pp.Seed, ShardSize: pp.ShardSize,
		TargetRelStdErr: pp.RelSE}
}

func pauliCore(pp pauliMCParams, rates pauli.ErrorRates, ex *compile.Executable,
	key rescache.Key, keyed map[string]any) (dist.Core, error) {
	simCfg := cyclesim.CMOSConfig()
	if pp.Arch == "sfq" {
		simCfg = cyclesim.SFQConfig(1)
	}
	simRes, err := cyclesim.Run(ex, simCfg)
	if err != nil {
		return nil, err
	}
	pcfg := pauli.DefaultConfig(rates)
	pcfg.Shots = pp.Shots
	pcfg.Seed = pp.Seed
	pcfg.DecoherencePeriod = pp.PeriodNS * 1e-9
	_, run, merge, err := pauli.MonteCarloCore(simRes, pcfg)
	if err != nil {
		return nil, err
	}
	return dist.NewCore(dist.CoreSpec[int]{
		Run:   run,
		Merge: merge,
		Finish: func(success int, st simrun.Status) ([]byte, error) {
			mc := pauli.MCResultFrom(success, st)
			out := struct {
				pauli.MCResult
				ESP        float64 `json:"esp"`
				MakespanNS float64 `json:"makespan_ns"`
			}{mc, pauli.ESP(simRes, pcfg), simRes.TotalTime * 1e9}
			return marshalEnvelope(jobs.KindPauliMC, key, keyed, pp.Seed, pp.ShardSize, out)
		},
		Options: simrun.Options{Workers: pp.Workers},
	}), nil
}

func readoutPlan(pp readoutMCParams) dist.Plan {
	return dist.Plan{Shots: pp.Shots, Seed: pp.Seed, ShardSize: pp.ShardSize,
		TargetRelStdErr: pp.RelSE}
}

func readoutCore(pp readoutMCParams, key rescache.Key, keyed map[string]any) (dist.Core, error) {
	chain, timing := readout.DefaultChain(), readout.DefaultTiming()
	cfg := readout.MultiRoundConfig{
		Range: *pp.Range, MaxRounds: pp.MaxRounds, Shots: pp.Shots, Seed: pp.Seed,
	}
	_, run, merge, err := readout.MultiRoundCore(chain, timing, cfg)
	if err != nil {
		return nil, err
	}
	return dist.NewCore(dist.CoreSpec[readout.MultiRoundTally]{
		Run:   run,
		Merge: merge,
		Finish: func(sum readout.MultiRoundTally, st simrun.Status) ([]byte, error) {
			res := readout.MultiRoundResultFrom(timing, sum, st)
			return marshalEnvelope(jobs.KindReadoutMC, key, keyed, pp.Seed, pp.ShardSize, res)
		},
		Options: simrun.Options{Workers: pp.Workers},
	}), nil
}

// startDist launches the coordinator's sweep/probe loops (idempotent).
func (s *Server) startDist() {
	if s.dist == nil || s.distCancel != nil {
		return
	}
	base := s.baseCtx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	s.distCancel = cancel
	s.dist.Start(ctx)
}
