package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"qisim/internal/dse"
	"qisim/internal/jobs"
	"qisim/internal/microarch"
	"qisim/internal/scalability"
)

func TestDSEPointEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"kind":"dse.point","params":{"design":"ERSFQ-opt8","distance":23,"extra_gate_error":1e-5}}`
	code, sr := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("state %s (%s)", snap.State, snap.Error)
	}
	var envl struct {
		Result map[string]float64 `json:"result"`
	}
	if err := json.Unmarshal(snap.Result, &envl); err != nil {
		t.Fatal(err)
	}
	opt := scalability.DefaultOptions()
	opt.Distance = 23
	d, _ := findDesign("ERSFQ-opt8")
	want, err := scalability.AnalyzePointChecked(d, 1e-5, opt)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if envl.Result[k] != v {
			t.Errorf("metric %s = %v, want %v", k, envl.Result[k], v)
		}
	}
	// A resubmission is served byte-exactly from the cache.
	code2, sr2 := postJob(t, ts, body)
	if code2 != http.StatusOK || sr2.Outcome != "cached" {
		t.Fatalf("resubmit: status %d outcome %q, want 200 cached", code2, sr2.Outcome)
	}
	if !bytes.Equal(sr2.Job.Result, snap.Result) {
		t.Error("cached result differs from the computed one")
	}
	// Unknown design and malformed distance are config errors (400).
	if code, _ := postJob(t, ts, `{"kind":"dse.point","params":{"design":"no-such"}}`); code != http.StatusBadRequest {
		t.Errorf("unknown design: status %d, want 400", code)
	}
	if code, _ := postJob(t, ts, `{"kind":"dse.point","params":{"design":"ERSFQ-opt8","distance":4}}`); code != http.StatusBadRequest {
		t.Errorf("even distance: status %d, want 400", code)
	}
}

const smallSweep = `{"kind":"dse.sweep","params":{
	"axes":[
		{"name":"design","values":["4K-CMOS-baseline","ERSFQ-opt8","RSFQ-opt345"]},
		{"name":"extra_gate_error","log_range":{"from":1e-6,"to":1e-4,"points":4}}],
	"wave":5}}`

// sweepResultOf decodes a dse.sweep result envelope.
func sweepResultOf(t *testing.T, raw json.RawMessage) sweepResult {
	t.Helper()
	var envl struct {
		Result sweepResult `json:"result"`
	}
	if err := json.Unmarshal(raw, &envl); err != nil {
		t.Fatalf("decode sweep envelope: %v", err)
	}
	return envl.Result
}

func TestDSESweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	code, sr := postJob(t, ts, smallSweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	parent := waitDone(t, ts, sr.Job.ID)
	if parent.State != jobs.StateDone {
		t.Fatalf("sweep failed: %s (%s)", parent.ErrorClass, parent.Error)
	}
	res := sweepResultOf(t, parent.Result)
	if res.GridSize != 12 {
		t.Fatalf("grid size %d, want 12", res.GridSize)
	}
	if res.Evaluated+res.Pruned != 12 {
		t.Fatalf("evaluated %d + pruned %d != 12", res.Evaluated, res.Pruned)
	}
	if len(res.Frontier.Points) == 0 {
		t.Fatal("empty final frontier")
	}
	if res.Status.StopReason != "completed" || res.Status.Truncated {
		t.Fatalf("status %+v, want completed", res.Status)
	}
	// Dominance sanity on the final frontier: no member dominates another.
	objs := res.Frontier.Objectives
	for _, a := range res.Frontier.Points {
		for _, b := range res.Frontier.Points {
			if a.Index != b.Index && dse.Dominates(objs, a.Metrics, b.Metrics) {
				t.Errorf("frontier member %d dominates member %d", a.Index, b.Index)
			}
		}
	}
	// The parent snapshot aggregates its children, all done.
	if parent.Children == nil || parent.Children.Total != res.Evaluated {
		t.Fatalf("children stats %+v, want total %d", parent.Children, res.Evaluated)
	}
	if parent.Children.Done != parent.Children.Total {
		t.Errorf("children %+v, want all done", parent.Children)
	}

	// The list endpoint sees the children under their parent.
	var list struct {
		Jobs  []jobs.Snapshot `json:"jobs"`
		Count int             `json:"count"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?parent="+parent.ID+"&kind=dse.point", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if list.Count != res.Evaluated {
		t.Errorf("list count %d, want %d", list.Count, res.Evaluated)
	}
	for _, j := range list.Jobs {
		if j.Result != nil {
			t.Error("list snapshots must strip result bodies")
		}
		if j.State != jobs.StateDone {
			t.Errorf("child %s state %s", j.ID, j.State)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?limit=2", &list); code != http.StatusOK || list.Count != 2 {
		t.Errorf("limit=2: status %d count %d", code, list.Count)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?kind=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bogus kind filter: status %d, want 400", code)
	}

	// Resubmitting the identical sweep is a byte-exact cache hit.
	code2, sr2 := postJob(t, ts, smallSweep)
	if code2 != http.StatusOK || sr2.Outcome != "cached" {
		t.Fatalf("resubmit: status %d outcome %q, want 200 cached", code2, sr2.Outcome)
	}
	if !bytes.Equal(sr2.Job.Result, parent.Result) {
		t.Error("cached sweep result differs")
	}
}

// TestDSESweepDeterministicAcrossWorkers pins the tentpole contract: the
// same sweep on 1-worker and 4-worker servers produces byte-identical
// result envelopes.
func TestDSESweepDeterministicAcrossWorkers(t *testing.T) {
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers, QueueDepth: 16})
		_, sr := postJob(t, ts, smallSweep)
		snap := waitDone(t, ts, sr.Job.ID)
		if snap.State != jobs.StateDone {
			t.Fatalf("workers=%d: sweep failed: %s", workers, snap.Error)
		}
		bodies = append(bodies, snap.Result)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("sweep result differs between 1-worker and 4-worker servers")
	}
}

// TestDSESweepEventsSSE replays a finished sweep's event log over the SSE
// endpoint: per-wave frontier events in order, terminal state event last.
func TestDSESweepEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	_, sr := postJob(t, ts, smallSweep)
	parent := waitDone(t, ts, sr.Job.ID)
	if parent.State != jobs.StateDone {
		t.Fatalf("sweep failed: %s", parent.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + parent.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	type sse struct {
		id    string
		event string
		data  string
	}
	var events []sse
	var cur sse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			events = append(events, cur)
			cur = sse{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	frontiers := 0
	for i, ev := range events {
		if ev.id != fmt.Sprint(i+1) {
			t.Errorf("event %d has id %q, want contiguous seq", i, ev.id)
		}
		if ev.event == "frontier" {
			frontiers++
			var pr dse.Progress
			if err := json.Unmarshal([]byte(ev.data), &pr); err != nil {
				t.Fatalf("frontier event payload: %v", err)
			}
			if pr.Wave < 1 || pr.Wave > pr.Waves {
				t.Errorf("frontier wave %d of %d out of range", pr.Wave, pr.Waves)
			}
		}
	}
	// 12 points at wave 5 → 3 waves → 3 frontier events.
	if frontiers != 3 {
		t.Errorf("%d frontier events, want 3", frontiers)
	}
	last := events[len(events)-1]
	if last.event != "state" || !strings.Contains(last.data, `"done"`) {
		t.Errorf("last event %q %q, want terminal done state", last.event, last.data)
	}

	// Unknown job → 404.
	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", code)
	}
}

// TestTenantQuotaHTTP exercises the quota 429: a distinct quota-exceeded
// body and metric, no interference with other tenants, and release on
// cancel.
func TestTenantQuotaHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, TenantQuota: 1})

	post := func(tenant, body string) (*http.Response, submitResponse) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-QIsim-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr submitResponse
		json.NewDecoder(resp.Body).Decode(&sr) //nolint:errcheck
		return resp, sr
	}

	// A long-running job pins tenant alice at her quota of 1 (rel_se 0 and a
	// huge budget: it will not finish until cancelled).
	big := `{"kind":"surface.mc","params":{"distance":3,"shots":50000000,"shard_size":512,"seed":11}}`
	resp, sr := post("alice", big)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	held := sr.Job.ID

	// Second top-level job for alice: 429 with the distinct quota body.
	resp2, _ := post("alice", `{"kind":"surface.mc","params":{"distance":3,"shots":256,"shard_size":64,"seed":12}}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("over-quota response missing Retry-After")
	}
	var eresp errorResponse
	{
		r3, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"kind":"surface.mc","params":{"distance":3,"shots":256,"shard_size":64,"seed":12}}`))
		r3.Header.Set("X-QIsim-Tenant", "alice")
		resp3, err := http.DefaultClient.Do(r3)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp3.Body).Decode(&eresp); err != nil {
			t.Fatal(err)
		}
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusTooManyRequests || eresp.Class != "quota-exceeded" {
			t.Fatalf("over-quota body: status %d class %q, want 429 quota-exceeded", resp3.StatusCode, eresp.Class)
		}
	}
	if got := scrapeMetric(t, ts, "qisimd_quota_rejections_total"); got < 2 {
		t.Errorf("qisimd_quota_rejections_total = %v, want >= 2", got)
	}
	if got := scrapeMetric(t, ts, `qisimd_jobs_rejected_total{reason="quota-exceeded"}`); got < 2 {
		t.Errorf(`rejected{quota-exceeded} = %v, want >= 2`, got)
	}

	// Another tenant is unaffected by alice's quota (the job queues behind
	// the held one — the single worker is busy until the cancel below).
	respB, srB := post("bob", `{"kind":"surface.mc","params":{"distance":3,"shots":256,"shard_size":64,"seed":13}}`)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's submit: status %d, want 202", respB.StatusCode)
	}

	// Cancelling alice's held job frees her quota slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+held, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", dresp.StatusCode)
	}
	heldSnap := waitDone(t, ts, held)
	if heldSnap.Status == nil || !heldSnap.Status.Truncated {
		t.Fatalf("cancelled job status %+v, want truncated partial", heldSnap.Status)
	}
	waitDone(t, ts, srB.Job.ID)
	resp4, sr4 := post("alice", `{"kind":"surface.mc","params":{"distance":3,"shots":256,"shard_size":64,"seed":14}}`)
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d, want 202", resp4.StatusCode)
	}
	waitDone(t, ts, sr4.Job.ID)

	// DELETE on an unknown job is a 404.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-424242", nil)
	nresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown: status %d, want 404", nresp.StatusCode)
	}
}

// TestDSESweepValidation covers sweep config errors surfacing as 400s.
func TestDSESweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"unknown axis":     `{"kind":"dse.sweep","params":{"axes":[{"name":"coolant","values":[1]}]}}`,
		"unknown design":   `{"kind":"dse.sweep","params":{"axes":[{"name":"design","values":["nope"]}]}}`,
		"bad distance val": `{"kind":"dse.sweep","params":{"axes":[{"name":"distance","values":[4]}]}}`,
		"bad extra":        `{"kind":"dse.sweep","params":{"axes":[{"name":"extra_gate_error","values":[2.5]}]}}`,
		"bad objective":    `{"kind":"dse.sweep","params":{"objectives":[{"metric":"nope","goal":"max"}]}}`,
		"bad goal":         `{"kind":"dse.sweep","params":{"objectives":[{"metric":"max_qubits","goal":"upward"}]}}`,
		"negative wave":    `{"kind":"dse.sweep","params":{"wave":-3}}`,
	} {
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// The default grid (no axes) sweeps every named design.
	code, sr := postJob(t, ts, `{"kind":"dse.sweep","params":{}}`)
	if code != http.StatusAccepted {
		t.Fatalf("default sweep: status %d", code)
	}
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("default sweep failed: %s", snap.Error)
	}
	res := sweepResultOf(t, snap.Result)
	if want := len(microarch.AllDesigns()); res.GridSize != want {
		t.Errorf("default grid size %d, want %d", res.GridSize, want)
	}
}
